// Profile comparison: run Ball-Larus path profiling (PP), targeted
// path profiling (TPP), and practical path profiling (PPP) on one of
// the SPEC2000-shaped workloads, reproducing a single row of the
// paper's Figures 9-12 with all the intermediate detail.
package main

import (
	"fmt"
	"log"
	"os"

	"pathprof/internal/bench"
	"pathprof/internal/core"
	"pathprof/internal/eval"
	"pathprof/internal/workloads"
)

func main() {
	name := "twolf"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, ok := workloads.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q (choose from %v)", name, workloads.Names())
	}
	fmt.Printf("workload %s: %s\n\n", w.Name, w.Desc)

	staged, err := core.NewPipeline(w.Name, w.Source).Stage()
	if err != nil {
		log.Fatal(err)
	}
	stats := core.StatsOf(staged.Base)
	fmt.Printf("after inlining (%.0f%% of calls) and unrolling: %d paths, %.2f branches/path\n\n",
		100*staged.PctCallsInlined(), stats.DynPaths, stats.AvgBranches)

	fmt.Printf("%-8s %10s %10s %10s %12s %8s\n",
		"profiler", "overhead", "accuracy", "coverage", "instrumented", "hashed")
	var hot []eval.HotPath
	for _, p := range core.Profilers() {
		pr, err := staged.Profile(p.Name, p.Tech)
		if err != nil {
			log.Fatal(err)
		}
		if hot == nil {
			hot = pr.Eval.HotPaths(bench.HotTheta) // PP measures everything
		}
		acc := eval.Accuracy(hot, pr.Eval.EstimatedProfile(bench.HotTheta))
		frac := pr.Eval.InstrumentedFraction()
		fmt.Printf("%-8s %9.1f%% %9.1f%% %9.1f%% %11.1f%% %7.1f%%\n",
			p.Name, 100*pr.Overhead(), 100*acc, 100*pr.Eval.Coverage().Value(),
			100*frac.Total(), 100*frac.Hash)
	}

	// The edge-profile baseline for reference.
	pp, err := staged.Profile("PP", core.Profilers()[0].Tech)
	if err != nil {
		log.Fatal(err)
	}
	edgeAcc := eval.Accuracy(hot, pp.Eval.EdgeEstimatedProfile(bench.HotTheta))
	fmt.Printf("%-8s %10s %9.1f%% %9.1f%% %12s %8s\n",
		"edge", "~0%", 100*edgeAcc, 100*pp.Eval.EdgeCoverage().Value(), "0.0%", "")
}
