// Quickstart: compile a small mini-C program, run the staged pipeline
// (profile-guided inlining and unrolling), instrument it with
// practical path profiling (PPP), and print the hot paths it measures
// together with its runtime overhead.
package main

import (
	"fmt"
	"log"

	"pathprof/internal/bench"
	"pathprof/internal/core"
	"pathprof/internal/instr"
)

const src = `
var checksum = 0;
array histogram[64];

func bucket(v) { return v * 2654435761 % 64; }

func record(v) {
	var b = bucket(v);
	if (b < 0) { b = 0 - b; }
	histogram[b] = histogram[b] + 1;
	if (histogram[b] % 2 == 0) { checksum = checksum + b; } else { checksum = checksum + 1; }
	if (v / 64 % 2 == 0) { checksum = checksum + 2; }
	return b;
}

func main() {
	var i = 0;
	while (i < 20000) {
		record(i * 37 + 11);
		if (i % 3 == 0) { checksum = checksum + 1; }
		i = i + 1;
	}
	print(checksum);
	return checksum;
}
`

func main() {
	// Stage: compile, profile, inline and unroll under the paper's
	// budgets, and re-profile the optimized program.
	staged, err := core.NewPipeline("quickstart", src).Stage()
	if err != nil {
		log.Fatal(err)
	}
	stats := core.StatsOf(staged.Base)
	fmt.Printf("program executes %d paths, avg %.1f branches per path\n",
		stats.DynPaths, stats.AvgBranches)

	// Profile with PPP: plan instrumentation per routine, rerun with
	// the instrumentation executing under the cost model.
	pr, err := staged.Profile("PPP", instr.PPP())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPP overhead: %.1f%%\n", 100*pr.Overhead())

	hot := pr.Eval.HotPaths(bench.HotTheta)
	fmt.Printf("hot paths (>= %.3f%% of branch flow):\n", 100*bench.HotTheta)
	for i, h := range hot {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(hot)-8)
			break
		}
		fmt.Printf("  %7d x %s | %s\n", h.Freq, h.Routine, h.Path)
	}
}
