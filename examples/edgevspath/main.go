// Edge profiles versus path profiles: the correlated-branch case the
// paper's Figures 7-8 motivate.
//
// The program below takes two branches per iteration whose outcomes
// are perfectly correlated: it executes only the paths TT and FF,
// never TF or FT. The edge profile sees both branches as 50/50 and
// cannot tell the four paths apart — its potential-flow estimate ranks
// all four equally, so it predicts at most half the hot path flow.
// PPP measures the two real paths directly at ~5% overhead.
package main

import (
	"fmt"
	"log"

	"pathprof/internal/bench"
	"pathprof/internal/core"
	"pathprof/internal/eval"
	"pathprof/internal/instr"
)

const src = `
var acc = 0;

func step(i) {
	var parity = i % 2;
	// Branch 1 and branch 2 always agree: only TT and FF happen.
	if (parity == 0) { acc = acc + 3; } else { acc = acc - 1; }
	acc = acc + i % 5;
	if (parity == 0) { acc = acc + 7; } else { acc = acc - 2; }
	return acc;
}

func main() {
	var i = 0;
	while (i < 30000) {
		step(i);
		i = i + 1;
	}
	print(acc);
	return acc;
}
`

func main() {
	staged, err := core.NewPipeline("edgevspath", src).Stage()
	if err != nil {
		log.Fatal(err)
	}
	pr, err := staged.Profile("PPP", instr.PPP())
	if err != nil {
		log.Fatal(err)
	}

	hot := pr.Eval.HotPaths(bench.HotTheta)
	fmt.Println("actual hot paths:")
	for _, h := range hot {
		fmt.Printf("  %7d x %s\n", h.Freq, h.Path)
	}

	edgeEst := pr.Eval.EdgeEstimatedProfile(bench.HotTheta)
	fmt.Println("\nedge profile's best guesses (potential flow):")
	for i, e := range edgeEst {
		if i == 4 {
			break
		}
		fmt.Printf("  %7d ? %s\n", e.Freq, e.Path)
	}

	edgeAcc := eval.Accuracy(hot, edgeEst)
	pppAcc := eval.Accuracy(hot, pr.Eval.EstimatedProfile(bench.HotTheta))
	fmt.Printf("\nedge-profile accuracy: %.0f%% (cannot separate correlated branches)\n", 100*edgeAcc)
	fmt.Printf("PPP accuracy:          %.0f%% at %.1f%% runtime overhead\n",
		100*pppAcc, 100*pr.Overhead())
	fmt.Printf("edge-profile coverage: %.0f%%, PPP coverage: %.0f%%\n",
		100*pr.Eval.EdgeCoverage().Value(), 100*pr.Eval.Coverage().Value())
}
