// Superblock formation: the complete dynamic-optimizer loop the paper
// targets. Collect a PPP path profile at ~5% overhead, turn the
// measured hot paths into superblock traces (tail duplication +
// straightening), and measure the speedup of the optimized program —
// against both the original and a cleanup-only baseline, to isolate
// what the *path* information buys.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"pathprof/internal/bench"
	"pathprof/internal/core"
	"pathprof/internal/instr"
	"pathprof/internal/superblock"
	"pathprof/internal/vm"
	"pathprof/internal/workloads"
)

func main() {
	name := "vpr"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, ok := workloads.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q", name)
	}

	// Stage twice: one copy stays as the cleanup-only baseline.
	staged, err := core.NewPipeline(w.Name, w.Source).Stage()
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := core.NewPipeline(w.Name, w.Source).Stage()
	if err != nil {
		log.Fatal(err)
	}

	plain, err := vm.Run(staged.Prog, vm.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Profile with PPP: this is the measurement a dynamic optimizer
	// would pay ~5% for.
	pr, err := staged.Profile("PPP", instr.PPP())
	if err != nil {
		log.Fatal(err)
	}
	hot := pr.Eval.HotPaths(bench.HotTheta)
	var traces []superblock.Trace
	for _, h := range hot {
		if tr, ok := superblock.TraceFromPath(h.Routine, h.Path); ok {
			tr.Freq = h.Freq
			traces = append(traces, tr)
		}
	}
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Freq > traces[j].Freq })

	res, err := superblock.Form(staged.Prog, traces, superblock.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	opt, err := vm.Run(staged.Prog, vm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if opt.Ret != plain.Ret {
		log.Fatalf("transformation changed the program result")
	}

	superblock.Cleanup(baseline.Prog)
	clean, err := vm.Run(baseline.Prog, vm.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s\n", w.Name)
	fmt.Printf("PPP profiling overhead:        %5.1f%%\n", 100*pr.Overhead())
	fmt.Printf("traces formed:                 %d (%d blocks cloned, %d merged, +%.0f%% code)\n",
		res.TracesFormed, res.BlocksCloned, res.BlocksMerged,
		100*(float64(res.SizeTo)/float64(res.SizeFrom)-1))
	speedup := func(c int64) float64 { return float64(plain.BaseCost)/float64(c) - 1 }
	fmt.Printf("cleanup-only speedup:          %5.1f%%\n", 100*speedup(clean.BaseCost))
	fmt.Printf("superblock speedup:            %5.1f%%\n", 100*speedup(opt.BaseCost))
	fmt.Printf("path-profile-specific benefit: %5.1f%%\n",
		100*(float64(clean.BaseCost)/float64(opt.BaseCost)-1))
	fmt.Println("\nthe last line is what edge profiles cannot provide: knowing which")
	fmt.Println("joins to duplicate away. It concentrates where hot paths cross joins")
	fmt.Println("(branchy loop bodies: vpr, bzip2); straight-line kernels get their")
	fmt.Println("win from generic straightening alone.")
}
