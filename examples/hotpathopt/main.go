// Hot-path optimization: use a PPP profile the way a dynamic optimizer
// would — to select traces (superblock/fragment candidates) and decide
// how much code to translate.
//
// A trace-based system like Dynamo translates hot paths into a code
// cache; its win depends on how much execution the selected traces
// cover, and its cost on how many traces it translates. This example
// selects traces greedily from (a) the PPP-measured path profile and
// (b) the edge profile's potential-flow estimate, and compares the
// execution coverage both achieve for the same trace budget —
// quantifying the paper's argument (Section 2) that wider, more
// accurate path coverage lets a dynamic optimizer distinguish "a few
// dominant hot paths" from "many warm paths".
package main

import (
	"fmt"
	"log"

	"pathprof/internal/bench"
	"pathprof/internal/core"
	"pathprof/internal/eval"
	"pathprof/internal/instr"
	"pathprof/internal/workloads"
)

func main() {
	w, _ := workloads.ByName("crafty")
	staged, err := core.NewPipeline(w.Name, w.Source).Stage()
	if err != nil {
		log.Fatal(err)
	}
	pr, err := staged.Profile("PPP", instr.PPP())
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: how much flow each path really carries.
	actual := map[string]int64{}
	var totalFlow int64
	for _, h := range pr.Eval.HotPaths(0) {
		actual[h.Key] = h.Flow
		totalFlow += h.Flow
	}

	// Trace selection from an estimated profile: take its top-N paths
	// and measure the actual flow they cover.
	coverage := func(est []eval.Estimate, budget int) float64 {
		var covered int64
		for i, e := range est {
			if i >= budget {
				break
			}
			covered += actual[e.Key]
		}
		return float64(covered) / float64(totalFlow)
	}

	ppp := pr.Eval.EstimatedProfile(bench.HotTheta)
	edge := pr.Eval.EdgeEstimatedProfile(bench.HotTheta)

	fmt.Printf("trace selection on %s (%d distinct paths, PPP overhead %.1f%%)\n\n",
		w.Name, pr.Eval.DistinctPaths(), 100*pr.Overhead())
	fmt.Printf("%-12s %18s %18s\n", "trace budget", "PPP-guided", "edge-guided")
	for _, budget := range []int{1, 2, 4, 8, 16, 32, 64} {
		fmt.Printf("%-12d %17.1f%% %17.1f%%\n",
			budget, 100*coverage(ppp, budget), 100*coverage(edge, budget))
	}
	fmt.Println("\ncoverage = fraction of real execution flow the selected traces contain;")
	fmt.Println("a code cache sized for the budget captures that much of the program.")
}
