package planir_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/instr"
	"pathprof/internal/planir"
)

// plansFor builds plans for a spread of random profiled graphs under
// the given techniques.
func plansFor(t *testing.T, tech instr.Techniques, seeds ...int64) map[string]*instr.Plan {
	t.Helper()
	plans := map[string]*instr.Plan{}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		g := cfgtest.Random(rng, 24)
		cfgtest.Profile(g, rng, 400, 200)
		p, err := instr.Build(g, tech, instr.DefaultParams(), 400)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		plans[g.Name] = p
	}
	return plans
}

func TestFromPlanFusesBackEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := cfgtest.Random(rng, 30)
	cfgtest.Profile(g, rng, 500, 300)
	p, err := instr.Build(g, instr.PP(), instr.DefaultParams(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Instrumented {
		t.Skip("seed produced an uninstrumented plan")
	}
	r := planir.FromPlan(p)
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// Rebuild the expected fusion straight from the plan and compare
	// against every transition.
	exitOps := map[int][]instr.Op{}
	entryOps := map[int][]instr.Op{}
	realOps := map[[2]int][]instr.Op{}
	for _, e := range p.D.Edges {
		switch e.Kind {
		case cfg.ExitDummy:
			exitOps[e.Src.ID] = p.Ops[e.ID]
		case cfg.EntryDummy:
			entryOps[e.Dst.ID] = p.Ops[e.ID]
		case cfg.RealEdge:
			realOps[[2]int{e.Src.ID, e.Dst.ID}] = p.Ops[e.ID]
		}
	}
	if len(r.Transitions) != len(p.D.G.Edges) {
		t.Fatalf("%d transitions for %d CFG edges", len(r.Transitions), len(p.D.G.Edges))
	}
	for i, e := range p.D.G.Edges {
		tr := r.Transitions[i]
		if int(tr.Src) != e.Src.ID || int(tr.Dst) != e.Dst.ID || tr.Back != e.Back {
			t.Fatalf("transition %d is %d->%d back=%v, want %d->%d back=%v",
				i, tr.Src, tr.Dst, tr.Back, e.Src.ID, e.Dst.ID, e.Back)
		}
		var want []instr.Op
		if e.Back {
			want = append(append([]instr.Op{}, exitOps[e.Src.ID]...), entryOps[e.Dst.ID]...)
		} else {
			want = realOps[[2]int{e.Src.ID, e.Dst.ID}]
		}
		if len(tr.Ops) != len(want) {
			t.Fatalf("transition %d->%d has %d ops, want %d", tr.Src, tr.Dst, len(tr.Ops), len(want))
		}
		for j := range want {
			if tr.Ops[j].Kind != planir.OpKind(want[j].Kind) || tr.Ops[j].V != want[j].V {
				t.Fatalf("transition %d->%d op %d = %v, want %v", tr.Src, tr.Dst, j, tr.Ops[j], want[j])
			}
		}
	}
}

func TestValidateAcceptsPlannerOutput(t *testing.T) {
	techs := map[string]instr.Techniques{
		"pp":  instr.PP(),
		"tpp": instr.TPP(),
		"ppp": instr.PPP(),
	}
	// Check-based poisoning (free poisoning ablated) exercises the
	// NegPoison rule.
	noFP := instr.PPP()
	noFP.FreePoison = false
	techs["ppp-nofp"] = noFP
	for name, tech := range techs {
		for _, seed := range []int64{1, 2, 3, 4, 5, 11, 12, 13} {
			rng := rand.New(rand.NewSource(seed))
			g := cfgtest.Random(rng, 40)
			cfgtest.Profile(g, rng, 600, 300)
			p, err := instr.Build(g, tech, instr.DefaultParams(), 600)
			if err != nil {
				t.Fatal(err)
			}
			r := planir.FromPlan(p)
			if err := r.Validate(); err != nil {
				t.Errorf("%s seed %d: %v\n%s", name, seed, err, p.Dump())
			}
		}
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	plans := plansFor(t, instr.PP(), 21, 22, 23, 24)
	var r *planir.Routine
	for _, p := range plans {
		c := planir.FromPlan(p)
		if c.Instrumented && len(c.Transitions) > 0 {
			r = c
			break
		}
	}
	if r == nil {
		t.Fatal("no instrumented plan among seeds")
	}

	// Tampered transition stream: diverges from the edge fusion. The
	// replacement slice leaves the (possibly aliased) edge ops intact.
	for i := range r.Transitions {
		if len(r.Transitions[i].Ops) > 0 {
			orig := r.Transitions[i].Ops
			tampered := append([]planir.Op(nil), orig...)
			tampered[0].V += 99
			r.Transitions[i].Ops = tampered
			if err := r.Validate(); err == nil {
				t.Error("Validate accepted a tampered transition stream")
			}
			r.Transitions[i].Ops = orig
			break
		}
	}
	// Out-of-range block reference.
	origSrc := r.Transitions[0].Src
	r.Transitions[0].Src = r.NBlocks + 5
	if err := r.Validate(); err == nil {
		t.Error("Validate accepted an out-of-range transition source")
	}
	r.Transitions[0].Src = origSrc
	// A disconnected edge must carry no ops.
	for i := range r.Edges {
		if len(r.Edges[i].Ops) > 0 {
			r.Edges[i].Disc = true
			if err := r.Validate(); err == nil {
				t.Error("Validate accepted ops on a disconnected edge")
			}
			r.Edges[i].Disc = false
			break
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("restored routine no longer validates: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, tech := range []instr.Techniques{instr.PP(), instr.TPP(), instr.PPP()} {
		prog := planir.FromPlans(plansFor(t, tech, 31, 32, 33, 34, 35))
		if err := prog.Validate(); err != nil {
			t.Fatal(err)
		}
		enc := prog.Encode()
		dec, err := planir.Decode(enc)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !reflect.DeepEqual(prog, dec) {
			t.Fatal("decoded program diverges from original")
		}
		re := dec.Encode()
		if !bytes.Equal(enc, re) {
			t.Fatal("re-encoding is not byte-identical")
		}
		if prog.Fingerprint() != dec.Fingerprint() {
			t.Fatal("fingerprint changed across a round trip")
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := planir.FromPlans(plansFor(t, instr.PPP(), 41, 42, 43))
	b := planir.FromPlans(plansFor(t, instr.PPP(), 41, 42, 43))
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("two lowerings of identical plans encode differently")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	prog := planir.FromPlans(plansFor(t, instr.PP(), 51))
	enc := prog.Encode()
	if _, err := planir.Decode(enc[:len(enc)-1]); err == nil {
		t.Error("Decode accepted a truncated encoding")
	}
	bad := append([]byte(nil), enc...)
	bad[len(bad)/2] ^= 0x40
	if _, err := planir.Decode(bad); err == nil {
		t.Error("Decode accepted a corrupted body (checksum miss)")
	}
	bad2 := append([]byte(nil), enc...)
	bad2[0] = 'X'
	if _, err := planir.Decode(bad2); err == nil {
		t.Error("Decode accepted a bad magic")
	}
}

func TestEncodeDecodeRoundTripMinCost(t *testing.T) {
	// v2 placement fields: min-cost plans carry a placement byte and a
	// probe list that must survive the codec bit-for-bit.
	plans := map[string]*instr.Plan{}
	par := instr.DefaultParams()
	par.Placement = instr.PlaceMinCost
	for _, seed := range []int64{61, 62, 63, 64} {
		rng := rand.New(rand.NewSource(seed))
		g := cfgtest.Random(rng, 24)
		cfgtest.Profile(g, rng, 400, 200)
		p, err := instr.Build(g, instr.PPP(), par, 400)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		plans[g.Name] = p
	}
	prog := planir.FromPlans(plans)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	probed := 0
	for _, r := range prog.Routines {
		if r.Placement == planir.PlaceMinCost && len(r.Probes) > 0 {
			probed++
		}
	}
	if probed == 0 {
		t.Fatal("no routine lowered with a min-cost probe list")
	}
	enc := prog.Encode()
	dec, err := planir.Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(prog, dec) {
		t.Fatal("decoded min-cost program diverges from original")
	}
	if !bytes.Equal(enc, dec.Encode()) {
		t.Fatal("re-encoding is not byte-identical")
	}
	if prog.Fingerprint() != dec.Fingerprint() {
		t.Fatal("fingerprint changed across a round trip")
	}
}
