package planir

import (
	"sort"

	"pathprof/internal/cfg"
	"pathprof/internal/instr"
)

// FromPlan lowers a planner plan into its pure-data artifact. The
// per-transition streams apply the back-edge fusion executors need: a
// back edge runs its tail's exit-dummy ops (finish the truncated path)
// followed by its header's entry-dummy ops (start the next one).
// Returns nil for a nil plan.
func FromPlan(p *instr.Plan) *Routine {
	if p == nil {
		return nil
	}
	r := &Routine{
		Name:         p.G.Name,
		NBlocks:      int32(len(p.G.Blocks)),
		Instrumented: p.Instrumented,
		Reason:       p.Reason,
		N:            p.N,
		TableSize:    p.TableSize,
		Hash:         p.Hash,
		PoisonCheck:  p.PoisonCheck,
	}
	var entryDummy, exitDummy map[int]*cfg.DAGEdge
	if p.D != nil {
		entryDummy = map[int]*cfg.DAGEdge{}
		exitDummy = map[int]*cfg.DAGEdge{}
		r.Edges = make([]Edge, len(p.D.Edges))
		for i, e := range p.D.Edges {
			ie := Edge{
				ID:  int32(e.ID),
				Src: int32(e.Src.ID),
				Dst: int32(e.Dst.ID),
			}
			switch e.Kind {
			case cfg.EntryDummy:
				ie.Kind = EntryDummy
				entryDummy[e.Dst.ID] = e
			case cfg.ExitDummy:
				ie.Kind = ExitDummy
				exitDummy[e.Src.ID] = e
			}
			if p.Cold != nil {
				ie.Cold = p.Cold[e.ID]
			}
			if p.Disc != nil {
				ie.Disc = p.Disc[e.ID]
			}
			if p.Ops != nil {
				ie.Ops = convertOps(p.Ops[e.ID])
			}
			r.Edges[i] = ie
		}
	}
	if p.Instrumented {
		r.Transitions = make([]Transition, 0, len(p.D.G.Edges))
		for _, e := range p.D.G.Edges {
			t := Transition{Src: int32(e.Src.ID), Dst: int32(e.Dst.ID), Back: e.Back}
			if e.Back {
				var ops []Op
				if xd := exitDummy[e.Src.ID]; xd != nil {
					ops = append(ops, r.Edges[xd.ID].Ops...)
				}
				if ed := entryDummy[e.Dst.ID]; ed != nil {
					ops = append(ops, r.Edges[ed.ID].Ops...)
				}
				t.Ops = ops
			} else {
				t.Ops = r.Edges[findReal(r.Edges, t.Src, t.Dst)].Ops
			}
			r.Transitions = append(r.Transitions, t)
		}
	}
	for _, a := range p.Attr {
		ia := Attr{Num: a.Num, EdgeID: -1}
		if a.Edge != nil {
			ia.EdgeID = int32(a.Edge.ID)
		}
		r.Attr = append(r.Attr, ia)
	}
	if p.Placement == instr.PlaceMinCost && p.Probes != nil {
		r.Placement = PlaceMinCost
		r.Probes = make([]EdgeProbe, len(p.Probes.Probes))
		for i, pr := range p.Probes.Probes {
			r.Probes[i] = EdgeProbe{Src: int32(pr.Src), Dst: int32(pr.Dst), Index: int32(pr.Index)}
		}
	}
	return r
}

// findReal locates the real DAG edge src->dst (every non-back CFG edge
// has exactly one).
func findReal(edges []Edge, src, dst int32) int {
	for i := range edges {
		if edges[i].Kind == Real && edges[i].Src == src && edges[i].Dst == dst {
			return i
		}
	}
	return -1
}

func convertOps(ops []instr.Op) []Op {
	if len(ops) == 0 {
		return nil
	}
	out := make([]Op, len(ops))
	for i, op := range ops {
		out[i] = Op{Kind: OpKind(op.Kind), V: op.V}
	}
	return out
}

// FromPlans lowers a plan map into a Program with routines in name
// order. Nil plans are skipped.
func FromPlans(plans map[string]*instr.Plan) *Program {
	names := make([]string, 0, len(plans))
	for n, p := range plans {
		if p != nil {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	prog := &Program{Routines: make([]*Routine, 0, len(names))}
	for _, n := range names {
		prog.Routines = append(prog.Routines, FromPlan(plans[n]))
	}
	return prog
}
