package planir

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
)

// The canonical binary encoding: a magic+version header, each routine's
// fields in declaration order with varint scalars (zigzag for signed)
// and length-prefixed strings, and a trailing CRC-32 of everything
// before it. The encoder has exactly one output per Program value, so
// encoded bytes double as the plan's identity: Fingerprint hashes them.

const (
	magic   = "PPIR"
	version = 2 // v2 added the placement byte and min-cost probe list
)

type encoder struct{ buf []byte }

func (e *encoder) u(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) i(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) b(v bool)   { e.buf = append(e.buf, boolByte(v)) }
func (e *encoder) s(v string) { e.u(uint64(len(v))); e.buf = append(e.buf, v...) }
func (e *encoder) ops(v []Op) {
	e.u(uint64(len(v)))
	for _, op := range v {
		e.buf = append(e.buf, byte(op.Kind))
		e.i(op.V)
	}
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// Encode renders the program in its canonical binary form.
func (p *Program) Encode() []byte {
	e := &encoder{buf: make([]byte, 0, 256)}
	e.buf = append(e.buf, magic...)
	e.buf = append(e.buf, version)
	e.u(uint64(len(p.Routines)))
	for _, r := range p.Routines {
		e.s(r.Name)
		e.u(uint64(r.NBlocks))
		e.b(r.Instrumented)
		e.s(r.Reason)
		e.i(r.N)
		e.i(r.TableSize)
		e.b(r.Hash)
		e.b(r.PoisonCheck)
		e.u(uint64(len(r.Edges)))
		for i := range r.Edges {
			ed := &r.Edges[i]
			e.u(uint64(ed.Src))
			e.u(uint64(ed.Dst))
			e.buf = append(e.buf, byte(ed.Kind), boolByte(ed.Cold), boolByte(ed.Disc))
			e.ops(ed.Ops)
		}
		e.u(uint64(len(r.Transitions)))
		for i := range r.Transitions {
			t := &r.Transitions[i]
			e.u(uint64(t.Src))
			e.u(uint64(t.Dst))
			e.b(t.Back)
			e.ops(t.Ops)
		}
		e.u(uint64(len(r.Attr)))
		for _, a := range r.Attr {
			e.i(a.Num)
			e.i(int64(a.EdgeID))
		}
		e.buf = append(e.buf, byte(r.Placement))
		e.u(uint64(len(r.Probes)))
		for _, pr := range r.Probes {
			e.u(uint64(pr.Src))
			e.u(uint64(pr.Dst))
		}
	}
	sum := crc32.ChecksumIEEE(e.buf)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, sum)
	return e.buf
}

// Fingerprint hashes the canonical encoding: two programs share a
// fingerprint iff their artifacts are identical.
func (p *Program) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write(p.Encode())
	return h.Sum64()
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) fail(what string) error {
	return fmt.Errorf("planir: truncated or corrupt %s at offset %d", what, d.off)
}

func (d *decoder) u() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, d.fail("uvarint")
	}
	d.off += n
	return v, nil
}

func (d *decoder) i() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, d.fail("varint")
	}
	d.off += n
	return v, nil
}

func (d *decoder) b() (bool, error) {
	if d.off >= len(d.buf) {
		return false, d.fail("bool")
	}
	v := d.buf[d.off]
	d.off++
	if v > 1 {
		return false, d.fail("bool")
	}
	return v == 1, nil
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, d.fail("byte")
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) s() (string, error) {
	n, err := d.u()
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)-d.off) < n {
		return "", d.fail("string")
	}
	v := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return v, nil
}

// count reads a length prefix, bounding it by the bytes remaining so a
// corrupt length cannot drive a huge allocation.
func (d *decoder) count(what string) (int, error) {
	n, err := d.u()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(d.buf)-d.off) {
		return 0, d.fail(what + " count")
	}
	return int(n), nil
}

func (d *decoder) ops() ([]Op, error) {
	n, err := d.count("op")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]Op, n)
	for i := range out {
		k, err := d.byte()
		if err != nil {
			return nil, err
		}
		v, err := d.i()
		if err != nil {
			return nil, err
		}
		out[i] = Op{Kind: OpKind(k), V: v}
	}
	return out, nil
}

// Decode parses a canonical encoding, verifying the header and
// checksum. The result re-encodes to the identical bytes.
func Decode(data []byte) (*Program, error) {
	if len(data) < len(magic)+1+4 {
		return nil, fmt.Errorf("planir: encoding too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("planir: bad magic %q", data[:len(magic)])
	}
	if data[len(magic)] != version {
		return nil, fmt.Errorf("planir: unsupported version %d", data[len(magic)])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("planir: checksum mismatch: %08x vs %08x", got, want)
	}
	d := &decoder{buf: body, off: len(magic) + 1}
	nr, err := d.count("routine")
	if err != nil {
		return nil, err
	}
	p := &Program{Routines: make([]*Routine, 0, nr)}
	for ri := 0; ri < nr; ri++ {
		r := &Routine{}
		if r.Name, err = d.s(); err != nil {
			return nil, err
		}
		nb, err := d.u()
		if err != nil {
			return nil, err
		}
		r.NBlocks = int32(nb)
		if r.Instrumented, err = d.b(); err != nil {
			return nil, err
		}
		if r.Reason, err = d.s(); err != nil {
			return nil, err
		}
		if r.N, err = d.i(); err != nil {
			return nil, err
		}
		if r.TableSize, err = d.i(); err != nil {
			return nil, err
		}
		if r.Hash, err = d.b(); err != nil {
			return nil, err
		}
		if r.PoisonCheck, err = d.b(); err != nil {
			return nil, err
		}
		ne, err := d.count("edge")
		if err != nil {
			return nil, err
		}
		if ne > 0 {
			r.Edges = make([]Edge, ne)
		}
		for i := 0; i < ne; i++ {
			ed := &r.Edges[i]
			ed.ID = int32(i)
			src, err := d.u()
			if err != nil {
				return nil, err
			}
			dst, err := d.u()
			if err != nil {
				return nil, err
			}
			ed.Src, ed.Dst = int32(src), int32(dst)
			k, err := d.byte()
			if err != nil {
				return nil, err
			}
			ed.Kind = EdgeKind(k)
			if ed.Cold, err = d.b(); err != nil {
				return nil, err
			}
			if ed.Disc, err = d.b(); err != nil {
				return nil, err
			}
			if ed.Ops, err = d.ops(); err != nil {
				return nil, err
			}
		}
		nt, err := d.count("transition")
		if err != nil {
			return nil, err
		}
		if nt > 0 {
			r.Transitions = make([]Transition, nt)
		}
		for i := 0; i < nt; i++ {
			t := &r.Transitions[i]
			src, err := d.u()
			if err != nil {
				return nil, err
			}
			dst, err := d.u()
			if err != nil {
				return nil, err
			}
			t.Src, t.Dst = int32(src), int32(dst)
			if t.Back, err = d.b(); err != nil {
				return nil, err
			}
			if t.Ops, err = d.ops(); err != nil {
				return nil, err
			}
		}
		na, err := d.count("attr")
		if err != nil {
			return nil, err
		}
		for i := 0; i < na; i++ {
			var a Attr
			if a.Num, err = d.i(); err != nil {
				return nil, err
			}
			eid, err := d.i()
			if err != nil {
				return nil, err
			}
			a.EdgeID = int32(eid)
			r.Attr = append(r.Attr, a)
		}
		pl, err := d.byte()
		if err != nil {
			return nil, err
		}
		r.Placement = Placement(pl)
		np, err := d.count("probe")
		if err != nil {
			return nil, err
		}
		if np > 0 {
			r.Probes = make([]EdgeProbe, np)
		}
		for i := 0; i < np; i++ {
			src, err := d.u()
			if err != nil {
				return nil, err
			}
			dst, err := d.u()
			if err != nil {
				return nil, err
			}
			// Probe indices are dense by construction: position is index.
			r.Probes[i] = EdgeProbe{Src: int32(src), Dst: int32(dst), Index: int32(i)}
		}
		p.Routines = append(p.Routines, r)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("planir: %d trailing bytes after last routine", len(body)-d.off)
	}
	return p, nil
}
