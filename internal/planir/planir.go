// Package planir is the pure-data instrumentation-plan IR: everything
// an executor needs to run a routine's path-profiling instrumentation
// — per-DAG-edge op streams, the lowered per-transition op streams
// (back-edge exit/entry dummy fusion already applied), the hot-ID
// counter-table shape, and the free-poisoning cold range — decoupled
// from the planner that produced it.
//
// The planner (internal/instr) builds plans against live cfg.DAG
// structures; planir.FromPlan lowers one into a Routine, a closed value
// of slices and scalars with a canonical binary encoding. The
// interpreter, the threaded-code compiler (internal/vm/compile), and
// the static verifier all consume this one artifact instead of
// re-deriving the lowering from planner internals, so a plan that
// round-trips through the codec executes identically to the original.
package planir

import (
	"fmt"
	"math"
)

// OpKind enumerates the instrumentation operations, mirroring
// instr.OpKind value-for-value (the codec depends on the numbering).
type OpKind uint8

const (
	// OpInc adds V to the path register: r += V.
	OpInc OpKind = iota
	// OpSet assigns V to the path register: r = V.
	OpSet
	// OpCountR increments the counter indexed by the path register.
	OpCountR
	// OpCountRV increments the counter at a register offset: r+V.
	OpCountRV
	// OpCountC increments the counter at constant index V.
	OpCountC
)

func (k OpKind) String() string {
	switch k {
	case OpInc:
		return "r+="
	case OpSet:
		return "r="
	case OpCountR:
		return "count[r]++"
	case OpCountRV:
		return "count[r+v]++"
	case OpCountC:
		return "count[c]++"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// IsCount reports whether the op updates a counter (as opposed to the
// path register).
func (k OpKind) IsCount() bool { return k >= OpCountR }

// Op is one instrumentation operation.
type Op struct {
	Kind OpKind
	V    int64
}

// EdgeKind mirrors cfg.DAGEdgeKind for the per-edge op table.
type EdgeKind uint8

const (
	// Real is an original (non-back) CFG edge.
	Real EdgeKind = iota
	// EntryDummy stands for path starts at a loop header.
	EntryDummy
	// ExitDummy stands for path ends at a loop back edge.
	ExitDummy
)

// NegPoison is the poison value of check-based poisoning (free
// poisoning off); mirrors instr.NegPoison.
const NegPoison = math.MinInt64 / 4

// Edge is one DAG edge's slice of the plan: its place in the DAG and
// the op stream the planner assigned to it.
type Edge struct {
	ID       int32
	Src, Dst int32 // CFG block IDs
	Kind     EdgeKind
	Cold     bool // poisoned edge
	Disc     bool // disconnected obvious-loop dummy: carries no ops
	Ops      []Op
}

// Transition is the executable lowering of one CFG edge: the op stream
// an executor runs when control flows src -> dst. For back edges the
// stream is the exit-dummy ops followed by the entry-dummy ops (the
// path truncation fusion both executors would otherwise each apply).
type Transition struct {
	Src, Dst int32
	Back     bool
	Ops      []Op
}

// Attr records a path estimated from the edge profile instead of
// counted: path number Num (or -1) is attributed the frequency of DAG
// edge EdgeID.
type Attr struct {
	Num    int64
	EdgeID int32
}

// Placement mirrors instr.Placement: how edge-counter probes are
// placed when a run instruments edges.
type Placement uint8

const (
	// PlaceSpanning: a counter on every CFG transition.
	PlaceSpanning Placement = iota
	// PlaceMinCost: counters only on the cotree chords listed in
	// Probes; all other edge counts are recovered from flow
	// conservation after the run.
	PlaceMinCost
)

// EdgeProbe is one min-cost probe site: executions of the CFG
// transition Src->Dst bump dense counter Index.
type EdgeProbe struct {
	Src, Dst int32
	Index    int32
}

// Routine is the complete instrumentation artifact for one routine.
type Routine struct {
	Name    string
	NBlocks int32

	// Instrumented is false when the routine gets no instrumentation;
	// Reason says why. Non-instrumented routines still carry Attr for
	// all-obvious attribution.
	Instrumented bool
	Reason       string

	// N is the hot path count: hot counters occupy IDs [0, N). Hash
	// selects the 701-slot hash table over an array of TableSize
	// counters; with free poisoning cold executions land in the cold
	// range [N, TableSize). PoisonCheck is set when free poisoning is
	// off and every count op carries an r < 0 check.
	N           int64
	TableSize   int64
	Hash        bool
	PoisonCheck bool

	// Edges lists the DAG edges in ID order with their op streams.
	Edges []Edge
	// Transitions lists the lowered per-CFG-edge op streams, in CFG
	// edge order. Present only on instrumented routines.
	Transitions []Transition
	// Attr lists edge-attributed paths.
	Attr []Attr

	// Placement says how edge counters are placed when a run collects
	// instrumented edge profiles. Under PlaceMinCost, Probes lists the
	// chord probe sites in dense index order; it applies to every
	// routine (instrumented or not), since edge counting is orthogonal
	// to the path pipeline.
	Placement Placement
	Probes    []EdgeProbe
}

// ColdRange returns the counter-index interval [lo, hi) reserved for
// poisoned (cold) executions. Empty when the routine has no cold
// region.
func (r *Routine) ColdRange() (lo, hi int64) { return r.N, r.TableSize }

// TransitionOps returns the lowered op stream for the CFG edge
// src -> dst (nil when the transition carries no instrumentation).
// Intended for set-up code; executors should index Transitions once.
func (r *Routine) TransitionOps(src, dst int) []Op {
	for i := range r.Transitions {
		t := &r.Transitions[i]
		if int(t.Src) == src && int(t.Dst) == dst {
			return t.Ops
		}
	}
	return nil
}

// Validate checks the artifact's structural invariants: index ranges,
// the op rules for cold and disconnected edges, count bounds against
// the table shape, and — the invariant executors depend on — that every
// transition's op stream is exactly the declared fusion of its edges'
// streams. It does not re-derive the planner's flow analysis; semantic
// checks against a CFG live in internal/verify.
func (r *Routine) Validate() error {
	if r.NBlocks < 0 {
		return fmt.Errorf("planir %s: negative block count %d", r.Name, r.NBlocks)
	}
	inRange := func(b int32) bool { return b >= 0 && b < r.NBlocks }
	real := map[[2]int32]int{}
	entryDummy := map[int32]int{} // by header block
	exitDummy := map[int32]int{}  // by tail block
	for i := range r.Edges {
		e := &r.Edges[i]
		if int(e.ID) != i {
			return fmt.Errorf("planir %s: edge %d has ID %d", r.Name, i, e.ID)
		}
		if !inRange(e.Src) || !inRange(e.Dst) {
			return fmt.Errorf("planir %s: edge %d endpoints %d->%d outside %d blocks",
				r.Name, i, e.Src, e.Dst, r.NBlocks)
		}
		switch e.Kind {
		case Real:
			real[[2]int32{e.Src, e.Dst}] = i
		case EntryDummy:
			entryDummy[e.Dst] = i
		case ExitDummy:
			exitDummy[e.Src] = i
		default:
			return fmt.Errorf("planir %s: edge %d has kind %d", r.Name, i, e.Kind)
		}
		if err := r.validateOps(e); err != nil {
			return err
		}
	}
	if err := r.validatePlacement(); err != nil {
		return err
	}
	if !r.Instrumented {
		if len(r.Transitions) != 0 {
			return fmt.Errorf("planir %s: %d transitions on a non-instrumented routine",
				r.Name, len(r.Transitions))
		}
		return nil
	}
	if r.N < 1 {
		return fmt.Errorf("planir %s: instrumented with N=%d", r.Name, r.N)
	}
	if r.TableSize < r.N {
		return fmt.Errorf("planir %s: table size %d below hot count %d", r.Name, r.TableSize, r.N)
	}
	for i := range r.Transitions {
		t := &r.Transitions[i]
		if !inRange(t.Src) || !inRange(t.Dst) {
			return fmt.Errorf("planir %s: transition %d endpoints %d->%d outside %d blocks",
				r.Name, i, t.Src, t.Dst, r.NBlocks)
		}
		var want []Op
		if t.Back {
			if xi, ok := exitDummy[t.Src]; ok {
				want = append(want, r.Edges[xi].Ops...)
			}
			if ei, ok := entryDummy[t.Dst]; ok {
				want = append(want, r.Edges[ei].Ops...)
			}
		} else {
			if ri, ok := real[[2]int32{t.Src, t.Dst}]; ok {
				want = r.Edges[ri].Ops
			} else {
				return fmt.Errorf("planir %s: transition %d->%d has no real DAG edge",
					r.Name, t.Src, t.Dst)
			}
		}
		if !opsEqual(t.Ops, want) {
			return fmt.Errorf("planir %s: transition %d->%d ops %v diverge from edge fusion %v",
				r.Name, t.Src, t.Dst, t.Ops, want)
		}
	}
	return nil
}

// validatePlacement checks the min-cost probe list: dense distinct
// indices over in-range, pairwise-distinct transitions, and — when the
// routine carries its CFG edge set as Transitions — that the probes
// are exactly a cotree: the unprobed transitions form an acyclic set
// of NBlocks-2 edges (a spanning tree once the virtual exit->entry
// edge joins its two components), which is what makes every unprobed
// count recoverable from flow conservation. Whether the tree really
// spans entry and exit is a graph-level fact checked in
// internal/verify.
func (r *Routine) validatePlacement() error {
	switch r.Placement {
	case PlaceSpanning:
		if len(r.Probes) != 0 {
			return fmt.Errorf("planir %s: %d probes under spanning placement", r.Name, len(r.Probes))
		}
		return nil
	case PlaceMinCost:
	default:
		return fmt.Errorf("planir %s: placement %d", r.Name, r.Placement)
	}
	probed := make(map[[2]int32]bool, len(r.Probes))
	for i := range r.Probes {
		p := &r.Probes[i]
		if int(p.Index) != i {
			return fmt.Errorf("planir %s: probe %d has index %d", r.Name, i, p.Index)
		}
		if p.Src < 0 || p.Src >= r.NBlocks || p.Dst < 0 || p.Dst >= r.NBlocks {
			return fmt.Errorf("planir %s: probe %d endpoints %d->%d outside %d blocks",
				r.Name, i, p.Src, p.Dst, r.NBlocks)
		}
		key := [2]int32{p.Src, p.Dst}
		if probed[key] {
			return fmt.Errorf("planir %s: duplicate probe on %d->%d", r.Name, p.Src, p.Dst)
		}
		probed[key] = true
	}
	if len(r.Transitions) == 0 {
		return nil
	}
	// With the full transition set in hand, check the cotree property.
	parent := make([]int32, r.NBlocks)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	unprobed := 0
	for i := range r.Transitions {
		t := &r.Transitions[i]
		if probed[[2]int32{t.Src, t.Dst}] {
			continue
		}
		unprobed++
		a, b := find(t.Src), find(t.Dst)
		if a == b {
			return fmt.Errorf("planir %s: unprobed transitions contain a cycle through %d->%d",
				r.Name, t.Src, t.Dst)
		}
		parent[a] = b
	}
	if probes := len(r.Transitions) - unprobed; probes != len(r.Probes) {
		return fmt.Errorf("planir %s: %d probes but %d probed transitions",
			r.Name, len(r.Probes), probes)
	}
	// The unprobed (tree) edges number NBlocks-2 in general — the
	// virtual exit->entry edge, absent from Transitions, is the tree's
	// remaining edge — or NBlocks-1 when entry == exit and the virtual
	// edge degenerates to a self-loop. The routine carries no
	// entry/exit identity, so accept both; the verifier, which has the
	// graph, enforces the exact count.
	if unprobed != int(r.NBlocks)-2 && unprobed != int(r.NBlocks)-1 {
		return fmt.Errorf("planir %s: %d unprobed transitions, want %d or %d (minimal cotree)",
			r.Name, unprobed, r.NBlocks-2, r.NBlocks-1)
	}
	return nil
}

// validateOps checks one edge's op stream against the cold/disc rules
// and the table bounds.
func (r *Routine) validateOps(e *Edge) error {
	if e.Disc && len(e.Ops) > 0 {
		return fmt.Errorf("planir %s: disconnected edge %d carries %d ops", r.Name, e.ID, len(e.Ops))
	}
	if e.Cold && !e.Disc && len(e.Ops) > 0 {
		// A poisoned edge carries exactly one assignment.
		if len(e.Ops) != 1 || e.Ops[0].Kind != OpSet {
			return fmt.Errorf("planir %s: cold edge %d ops %v are not a single poison assignment",
				r.Name, e.ID, e.Ops)
		}
		if r.PoisonCheck && e.Ops[0].V != NegPoison {
			return fmt.Errorf("planir %s: cold edge %d poisons r=%d under check-based poisoning",
				r.Name, e.ID, e.Ops[0].V)
		}
	}
	for _, op := range e.Ops {
		if op.Kind > OpCountC {
			return fmt.Errorf("planir %s: edge %d has op kind %d", r.Name, e.ID, op.Kind)
		}
		if op.Kind == OpCountC && !r.Hash && (op.V < 0 || op.V >= r.TableSize) {
			return fmt.Errorf("planir %s: edge %d constant count index %d outside table [0,%d)",
				r.Name, e.ID, op.V, r.TableSize)
		}
	}
	return nil
}

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Program is a set of routines sorted by name — the unit the codec
// serializes and fingerprints.
type Program struct {
	Routines []*Routine
}

// Validate validates every routine and the name ordering.
func (p *Program) Validate() error {
	for i, r := range p.Routines {
		if i > 0 && p.Routines[i-1].Name >= r.Name {
			return fmt.Errorf("planir: routines out of order: %q before %q",
				p.Routines[i-1].Name, r.Name)
		}
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}
