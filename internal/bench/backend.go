package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pathprof/internal/vm"
)

// BackendWorkers are the worker counts the backend smoke sweeps: the
// sequential baseline and the widest sharded configuration.
var BackendWorkers = []int{1, 8}

// BackendCompileStat records one routine's threaded-code compilation:
// how big it was and how long specializing it took.
type BackendCompileStat struct {
	Workload string  `json:"workload"`
	Routine  string  `json:"routine"`
	Blocks   int     `json:"blocks"`
	Closures int     `json:"closures"`
	Micros   float64 `json:"compile_micros"`
}

// BackendReport is the dense-vs-compiled comparison over the full
// workload sweep: wall clock per backend, the resulting speedup,
// per-routine compile cost, and any fingerprint divergence (which must
// be empty — the backends are contractually bit-identical).
type BackendReport struct {
	Replicas     int                  `json:"replicas"`
	Workers      []int                `json:"workers"`
	Workloads    int                  `json:"workloads"`
	DenseSecs    float64              `json:"dense_seconds"`
	CompiledSecs float64              `json:"compiled_seconds"`
	Speedup      float64              `json:"speedup"`
	Divergent    []string             `json:"divergent,omitempty"`
	CompileStats []BackendCompileStat `json:"compile_stats"`
	CompileSecs  float64              `json:"compile_total_seconds"`
}

// BackendCompare runs every workload's PP-instrumented profiling
// configuration through vm.RunReplicated on both backends at
// BackendWorkers worker counts, diffing merged fingerprints across
// backends and worker counts, and accumulating wall clock per backend.
// Per-routine compile stats come from each workload's compiled engine
// (compilation happens once per workload, not per replica or worker).
func (s *Suite) BackendCompare(replicas int) (*BackendReport, error) {
	if replicas <= 0 {
		replicas = DefaultThroughputReplicas
	}
	rep := &BackendReport{Replicas: replicas, Workers: BackendWorkers, Workloads: len(s.Workloads)}
	var denseNS, compiledNS, compileNS time.Duration
	for _, wl := range s.Workloads {
		wr, err := s.Run(wl.Name)
		if err != nil {
			return nil, err
		}
		opts := vm.Options{Plans: wr.Profilers["PP"].Plans, CollectPaths: true}
		var want uint64
		haveWant := false
		for _, be := range []vm.Backend{vm.BackendDense, vm.BackendCompiled} {
			opts.Backend = be
			for _, par := range BackendWorkers {
				rr, err := vm.RunReplicated(wr.Staged.Prog, opts, replicas, par)
				if err != nil {
					return nil, fmt.Errorf("%s/%s w=%d: %w", wl.Name, be, par, err)
				}
				switch be {
				case vm.BackendDense:
					denseNS += rr.Elapsed
				case vm.BackendCompiled:
					compiledNS += rr.Elapsed
					if par == BackendWorkers[0] {
						for _, st := range rr.CompileStats {
							rep.CompileStats = append(rep.CompileStats, BackendCompileStat{
								Workload: wl.Name, Routine: st.Name,
								Blocks: st.Blocks, Closures: st.Closures,
								Micros: float64(st.Elapsed) / float64(time.Microsecond),
							})
							compileNS += st.Elapsed
						}
					}
				}
				fp := rr.Merged.Fingerprint()
				if !haveWant {
					want, haveWant = fp, true
				} else if fp != want {
					rep.Divergent = append(rep.Divergent,
						fmt.Sprintf("%s backend=%s w=%d: %#x != %#x", wl.Name, be, par, fp, want))
				}
			}
		}
	}
	sort.Slice(rep.CompileStats, func(i, j int) bool {
		a, b := rep.CompileStats[i], rep.CompileStats[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.Routine < b.Routine
	})
	rep.DenseSecs = denseNS.Seconds()
	rep.CompiledSecs = compiledNS.Seconds()
	rep.CompileSecs = compileNS.Seconds()
	if rep.CompiledSecs > 0 {
		rep.Speedup = rep.DenseSecs / rep.CompiledSecs
	}
	return rep, nil
}

// BackendSmoke renders BackendCompare as the CI smoke check: the
// full-suite sweep on both backends, failing (with an error) on any
// fingerprint divergence. The wall-clock numbers are informational;
// the divergence check is the part CI gates on.
func (s *Suite) BackendSmoke(w io.Writer, replicas int) (*BackendReport, error) {
	rep, err := s.BackendCompare(replicas)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Backend smoke: %d workloads x PP-instrumented x %d replicas at workers %v\n",
		rep.Workloads, rep.Replicas, rep.Workers)
	fmt.Fprintf(w, "%-10s %8.3fs\n", "dense", rep.DenseSecs)
	fmt.Fprintf(w, "%-10s %8.3fs  (compile %0.1fms across %d routines)\n",
		"compiled", rep.CompiledSecs, rep.CompileSecs*1000, len(rep.CompileStats))
	fmt.Fprintf(w, "speedup: %.2fx, fingerprints: ", rep.Speedup)
	if len(rep.Divergent) == 0 {
		fmt.Fprintf(w, "identical across backends and worker counts\n")
		return rep, nil
	}
	fmt.Fprintf(w, "DIVERGED\n")
	for _, d := range rep.Divergent {
		fmt.Fprintf(w, "  %s\n", d)
	}
	return rep, fmt.Errorf("bench: %d backend fingerprint divergence(s)", len(rep.Divergent))
}
