package bench_test

import (
	"strings"
	"testing"

	"pathprof/internal/bench"
	"pathprof/internal/workloads"
)

// smallSuite runs only two cheap workloads so the smoke tests stay
// fast; the full suite is exercised by the repository benchmarks.
func smallSuite(t *testing.T) *bench.Suite {
	t.Helper()
	s := bench.NewSuite()
	var sel []workloads.Workload
	for _, n := range []string{"mcf", "swim"} {
		w, ok := workloads.ByName(n)
		if !ok {
			t.Fatalf("missing workload %s", n)
		}
		sel = append(sel, w)
	}
	s.Workloads = sel
	return s
}

func TestSuiteRunCaches(t *testing.T) {
	s := smallSuite(t)
	a, err := s.Run("mcf")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Run did not cache")
	}
	if _, err := s.Run("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestTablesRender(t *testing.T) {
	s := smallSuite(t)
	cases := []struct {
		name string
		run  func(*strings.Builder) error
		want []string
	}{
		{"table1", func(b *strings.Builder) error { return s.Table1(b) },
			[]string{"Table 1", "mcf", "swim", "INT avg", "FP avg", "speedup"}},
		{"table2", func(b *strings.Builder) error { return s.Table2(b) },
			[]string{"Table 2", "distinct", "hot.125"}},
		{"fig9", func(b *strings.Builder) error { return s.Figure9(b) },
			[]string{"Figure 9", "edge", "TPP", "PPP"}},
		{"fig10", func(b *strings.Builder) error { return s.Figure10(b) },
			[]string{"Figure 10", "coverage"}},
		{"fig11", func(b *strings.Builder) error { return s.Figure11(b) },
			[]string{"Figure 11", "hashed"}},
		{"fig12", func(b *strings.Builder) error { return s.Figure12(b) },
			[]string{"Figure 12", "overhead"}},
		{"fig13", func(b *strings.Builder) error { return s.Figure13(b) },
			[]string{"Figure 13", "-SPN", "-FP"}},
		{"sac", func(b *strings.Builder) error { return s.SACReport(b) },
			[]string{"self-adjusting", "routine(s) adjusted"}},
		{"net", func(b *strings.Builder) error { return s.NETReport(b) },
			[]string{"NET", "traces", "avg"}},
		{"static", func(b *strings.Builder) error { return s.StaticReport(b) },
			[]string{"Static instrumentation", "total ops"}},
	}
	for _, c := range cases {
		var sb strings.Builder
		if err := c.run(&sb); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, w := range c.want {
			if !strings.Contains(sb.String(), w) {
				t.Errorf("%s output missing %q:\n%s", c.name, w, sb.String())
			}
		}
	}
}

func TestHeadlineResults(t *testing.T) {
	// The paper's headline claims, checked on the two-workload subset:
	// accuracy of TPP and PPP near-perfect and far above the edge
	// baseline's minimum guarantees; PPP overhead at most TPP's.
	s := smallSuite(t)
	for _, name := range []string{"mcf", "swim"} {
		wr, err := s.Run(name)
		if err != nil {
			t.Fatal(err)
		}
		_, tppAcc, pppAcc := wr.Accuracy()
		if tppAcc < 0.9 || pppAcc < 0.85 {
			t.Errorf("%s: accuracy TPP=%v PPP=%v below the paper's floor", name, tppAcc, pppAcc)
		}
		edgeCov, tppCov, pppCov := wr.Coverage()
		if tppCov < edgeCov-1e-9 {
			t.Errorf("%s: TPP coverage %v below edge coverage %v", name, tppCov, edgeCov)
		}
		if pppCov <= 0 {
			t.Errorf("%s: PPP coverage %v", name, pppCov)
		}
		pp := wr.Profilers["PP"].Overhead()
		tpp := wr.Profilers["TPP"].Overhead()
		ppp := wr.Profilers["PPP"].Overhead()
		if !(pp >= tpp && tpp >= ppp-1e-9) {
			t.Errorf("%s: overhead ordering broken: PP=%v TPP=%v PPP=%v", name, pp, tpp, ppp)
		}
	}
}

func TestEdgeOverheadPositive(t *testing.T) {
	s := smallSuite(t)
	oh, err := s.EdgeOverhead("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if oh <= 0 {
		t.Errorf("edge overhead = %v", oh)
	}
}

func TestAblateUnknown(t *testing.T) {
	s := smallSuite(t)
	if _, err := s.Ablate("mcf", "XYZ"); err == nil {
		t.Error("unknown ablation accepted")
	}
	pr, err := s.Ablate("mcf", "FP")
	if err != nil {
		t.Fatal(err)
	}
	if pr.Name != "PPP-FP" {
		t.Errorf("ablation name = %q", pr.Name)
	}
	again, err := s.Ablate("mcf", "FP")
	if err != nil || again != pr {
		t.Error("Ablate did not cache")
	}
}
