package bench_test

import (
	"strings"
	"testing"

	"pathprof/internal/instr"
)

// TestPlacementTableRenders runs the spanning-vs-mincost head-to-head
// over the small suite. Beyond rendering, this is the end-to-end
// acceptance check for min-cost placement: every mincost cell's
// recovered snapshot must fingerprint identically to the spanning run
// at every worker count on both backends, and mincost must place
// strictly fewer probe sites.
func TestPlacementTableRenders(t *testing.T) {
	s := smallSuite(t)
	var sb strings.Builder
	rep, err := s.PlacementTable(&sb, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Probe placement head-to-head", "mcf", "swim", "bit-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if rep.SiteWins != len(s.Workloads) {
		t.Errorf("mincost should win sites on every workload, got %d/%d", rep.SiteWins, len(s.Workloads))
	}
	for _, row := range rep.Rows {
		if row.MinCostSites >= row.SpanningSites {
			t.Errorf("%s: mincost sites %d not below spanning %d", row.Workload, row.MinCostSites, row.SpanningSites)
		}
		for _, p := range row.Profilers {
			if p.StaticOps < 0 {
				t.Errorf("%s/%s: negative static ops", row.Workload, p.Profiler)
			}
			if p.MinCost.OverheadPct <= 0 || p.Spanning.OverheadPct <= 0 {
				t.Errorf("%s/%s: non-positive overhead (span %.2f, minc %.2f)",
					row.Workload, p.Profiler, p.Spanning.OverheadPct, p.MinCost.OverheadPct)
			}
		}
	}
}

// TestSuiteMinCostPlacementIdenticalFigures runs a whole suite with
// Placement=mincost and requires the headline metrics to match the
// spanning suite exactly: probe placement changes how edge counts are
// acquired, never what any figure reports.
func TestSuiteMinCostPlacementIdenticalFigures(t *testing.T) {
	span := smallSuite(t)
	minc := smallSuite(t)
	minc.Placement = instr.PlaceMinCost
	h1, err := span.Headline()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := minc.Headline()
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range h1 {
		if h2[k] != v {
			t.Errorf("headline %s: spanning %v != mincost %v", k, v, h2[k])
		}
	}
}
