package bench

import (
	"fmt"
	"io"
	"runtime"

	"pathprof/internal/telemetry"
	"pathprof/internal/vm"
	"pathprof/internal/workloads"
)

// ThroughputWorkers are the worker counts of the scaling sweep.
var ThroughputWorkers = []int{1, 2, 4, 8}

// DefaultThroughputReplicas is the replica count per measurement.
const DefaultThroughputReplicas = 16

// ThroughputReport measures sharded concurrent collection
// (vm.RunReplicated) on representative workloads: replicas/sec at
// 1/2/4/8 workers, speedup and scaling efficiency at the best worker
// count, and a merge-determinism check — the merged profile snapshot
// must be bit-identical at every worker count. Two collection modes
// run per workload: "exact" (cost-free edge+path profiles, the ground
// truth collector) and "PP" (Ball-Larus instrumentation executing
// against the per-shard counter tables, including hash tables where PP
// needs them). When the suite has a telemetry registry, a third
// "PP+tel" mode repeats PP with VM metrics installed, and a closing
// line compares the two at w=1 — the live measurement of the nil-sink
// contract (installed-sink overhead must stay within a few percent).
//
// Unlike the paper's tables, the throughput numbers are wall-clock
// measurements and vary run to run; the determinism column is the part
// that must never vary.
//
// Every mode runs under both VM backends (dense interpreter, compiled
// threaded code); the merge column checks fingerprints across worker
// counts AND across backends, so a compiled-backend divergence from
// the interpreter shows up as DIVERGED, not as a plausible number.
func (s *Suite) ThroughputReport(w io.Writer, replicas int) error {
	if replicas <= 0 {
		replicas = DefaultThroughputReplicas
	}
	sel := s.throughputWorkloads()
	fmt.Fprintf(w, "Sharded collection throughput: %d replicas/run, GOMAXPROCS=%d, %d CPUs\n",
		replicas, runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Fprintf(w, "%-10s %-6s %-8s", "bench", "mode", "backend")
	for _, par := range ThroughputWorkers {
		fmt.Fprintf(w, " %11s", fmt.Sprintf("w=%d", par))
	}
	fmt.Fprintf(w, " %8s %6s  %s\n", "speedup", "eff", "merge")
	backends := []vm.Backend{vm.BackendDense, vm.BackendCompiled}
	for _, wl := range sel {
		wr, err := s.Run(wl.Name)
		if err != nil {
			return err
		}
		modes := []struct {
			name string
			opts vm.Options
		}{
			{"exact", vm.Options{CollectEdges: true, CollectPaths: true}},
			{"PP", vm.Options{Plans: wr.Profilers["PP"].Plans, CollectPaths: true}},
		}
		if s.Telemetry != nil {
			modes = append(modes, struct {
				name string
				opts vm.Options
			}{"PP+tel", vm.Options{
				Plans: wr.Profilers["PP"].Plans, CollectPaths: true,
				Metrics: telemetry.NewVMMetrics(s.Telemetry),
			}})
		}
		baseRPS := map[string]float64{} // mode/backend -> w=1 replicas/sec
		for _, mode := range modes {
			var modeFPs []uint64 // all worker counts x both backends
			for _, be := range backends {
				fmt.Fprintf(w, "%-10s %-6s %-8s", wl.Name, mode.name, be)
				opts := mode.opts
				opts.Backend = be
				var rps []float64
				for _, par := range ThroughputWorkers {
					rr, err := vm.RunReplicated(wr.Staged.Prog, opts, replicas, par)
					if err != nil {
						return err
					}
					rps = append(rps, rr.RunsPerSec())
					modeFPs = append(modeFPs, rr.Merged.Fingerprint())
					fmt.Fprintf(w, " %9.1f/s", rr.RunsPerSec())
				}
				baseRPS[mode.name+"/"+be.String()] = rps[0]
				best := 0
				for i := range rps {
					if rps[i] > rps[best] {
						best = i
					}
				}
				speedup := 1.0
				if rps[0] > 0 {
					speedup = rps[best] / rps[0]
				}
				eff := speedup / float64(ThroughputWorkers[best])
				merge := "identical"
				for _, f := range modeFPs {
					if f != modeFPs[0] {
						merge = "DIVERGED"
					}
				}
				fmt.Fprintf(w, " %7.2fx %5.0f%%  %s\n", speedup, 100*eff, merge)
			}
		}
		if pp, tel := baseRPS["PP/dense"], baseRPS["PP+tel/dense"]; pp > 0 && tel > 0 {
			fmt.Fprintf(w, "%-10s telemetry overhead at w=1 (dense): %+.1f%%\n",
				"", 100*(pp-tel)/pp)
		}
		if d, c := baseRPS["PP/dense"], baseRPS["PP/compiled"]; d > 0 && c > 0 {
			fmt.Fprintf(w, "%-10s compiled speedup at w=1 (PP): %.2fx\n", "", c/d)
		}
	}
	return nil
}

// throughputWorkloads picks the workloads the scaling sweep runs over:
// an explicit -workloads subset verbatim, otherwise a representative
// trio — crafty (complex INT, many warm paths), bzip2 (hash pressure
// under PP), swim (loop-dominated FP) — so the sweep stays fast.
func (s *Suite) throughputWorkloads() []workloads.Workload {
	if len(s.Workloads) < len(workloads.All()) {
		return s.Workloads
	}
	var sel []workloads.Workload
	for _, name := range []string{"crafty", "bzip2", "swim"} {
		for _, wl := range s.Workloads {
			if wl.Name == name {
				sel = append(sel, wl)
			}
		}
	}
	if len(sel) == 0 {
		return s.Workloads
	}
	return sel
}
