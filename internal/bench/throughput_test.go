package bench_test

import (
	"strings"
	"testing"

	"pathprof/internal/vm"
)

// TestThroughputReportRenders runs the scaling sweep over the small
// suite and requires the merge-determinism check to pass for every
// workload and mode.
func TestThroughputReportRenders(t *testing.T) {
	s := smallSuite(t)
	var sb strings.Builder
	if err := s.ThroughputReport(&sb, 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Sharded collection throughput", "mcf", "swim", "exact", "PP", "identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DIVERGED") {
		t.Errorf("merged snapshots diverged across worker counts:\n%s", out)
	}
}

// TestReplicatedWorkloadBitIdentical drives a staged workload through
// RunReplicated at several worker counts and requires the merged
// edge/path profiles and instrumented-table totals to be bit-identical
// to the sequential replicated run — the acceptance bar for the
// sharded collector on real workload programs.
func TestReplicatedWorkloadBitIdentical(t *testing.T) {
	s := smallSuite(t)
	wr, err := s.Run("mcf")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts vm.Options
	}{
		{"exact", vm.Options{CollectEdges: true, CollectPaths: true}},
		{"PP", vm.Options{Plans: wr.Profilers["PP"].Plans, CollectPaths: true}},
	} {
		seq, err := vm.RunReplicated(wr.Staged.Prog, mode.opts, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Ret != wr.Staged.Base.Ret {
			t.Fatalf("%s: replicated result %d != staged %d", mode.name, seq.Ret, wr.Staged.Base.Ret)
		}
		want := seq.Merged.Fingerprint()
		for _, par := range []int{2, 4} {
			rr, err := vm.RunReplicated(wr.Staged.Prog, mode.opts, 4, par)
			if err != nil {
				t.Fatal(err)
			}
			if fp := rr.Merged.Fingerprint(); fp != want {
				t.Errorf("%s par=%d: merged fingerprint %#x != sequential %#x", mode.name, par, fp, want)
			}
			for fn, tab := range seq.Merged.Tables {
				if got := rr.Merged.Tables[fn]; got.ColdTotal() != tab.ColdTotal() {
					t.Errorf("%s par=%d %s: cold total %d != %d", mode.name, par, fn, got.ColdTotal(), tab.ColdTotal())
				}
			}
		}
	}
}

// TestNETReportUsesCachedRun checks the tee: the NET predictor is
// populated during staging, so NETReport must work (and agree with a
// fresh predictor run) without re-executing any workload.
func TestNETReportUsesCachedRun(t *testing.T) {
	s := smallSuite(t)
	wr, err := s.Run("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if wr.NET == nil || wr.NET.Heads() == 0 {
		t.Fatal("staging did not feed the NET predictor")
	}
	var sb strings.Builder
	if err := s.NETReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mcf") {
		t.Errorf("NET report missing workload:\n%s", sb.String())
	}
}
