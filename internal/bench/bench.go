// Package bench regenerates the paper's tables and figures over the
// synthetic workload suite: Table 1 (path characteristics under
// inlining+unrolling), Table 2 (hot paths), Figure 9 (accuracy),
// Figure 10 (coverage), Figure 11 (fraction of paths instrumented),
// Figure 12 (overhead), and Figure 13 (leave-one-out ablation), plus
// the Section 4.3 self-adjusting-criterion report.
package bench

import (
	"fmt"
	"io"
	"sort"

	"pathprof/internal/core"
	"pathprof/internal/eval"
	"pathprof/internal/workloads"
)

// HotTheta is the hot-path threshold used throughout the evaluation
// (0.125% of total program flow, Section 8.1).
const HotTheta = 0.00125

// WorkloadResult caches everything computed for one workload.
type WorkloadResult struct {
	W         workloads.Workload
	Staged    *core.Staged
	Orig, Opt core.PathStats
	Profilers map[string]*core.ProfilerResult // PP, TPP, PPP
	hot       []eval.HotPath
}

// Hot returns the actual hot set at HotTheta, computed once from the
// PP run (which measures every path).
func (wr *WorkloadResult) Hot() []eval.HotPath {
	if wr.hot == nil {
		wr.hot = wr.Profilers["PP"].Eval.HotPaths(HotTheta)
	}
	return wr.hot
}

// Suite runs workloads once each and caches results.
type Suite struct {
	Workloads []workloads.Workload
	// Log receives progress lines (nil = silent).
	Log io.Writer

	results map[string]*WorkloadResult
	ablated map[string]*core.ProfilerResult
}

// NewSuite returns a suite over all workloads.
func NewSuite() *Suite {
	return &Suite{Workloads: workloads.All()}
}

func (s *Suite) logf(format string, args ...interface{}) {
	if s.Log != nil {
		fmt.Fprintf(s.Log, format+"\n", args...)
	}
}

// Run stages the named workload and profiles it with PP, TPP, and PPP.
func (s *Suite) Run(name string) (*WorkloadResult, error) {
	if s.results == nil {
		s.results = map[string]*WorkloadResult{}
	}
	if wr, ok := s.results[name]; ok {
		return wr, nil
	}
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown workload %q", name)
	}
	s.logf("staging %s", name)
	staged, err := core.NewPipeline(w.Name, w.Source).Stage()
	if err != nil {
		return nil, err
	}
	wr := &WorkloadResult{
		W:         w,
		Staged:    staged,
		Orig:      core.StatsOf(staged.OriginalRun),
		Opt:       core.StatsOf(staged.Base),
		Profilers: map[string]*core.ProfilerResult{},
	}
	for _, p := range core.Profilers() {
		s.logf("  profiling %s with %s", name, p.Name)
		pr, err := staged.Profile(p.Name, p.Tech)
		if err != nil {
			return nil, err
		}
		wr.Profilers[p.Name] = pr
	}
	s.results[name] = wr
	return wr, nil
}

// Ablate profiles the named workload with one PPP technique disabled
// (Figure 13), caching the result.
func (s *Suite) Ablate(name, technique string) (*core.ProfilerResult, error) {
	key := name + "/" + technique
	if s.ablated == nil {
		s.ablated = map[string]*core.ProfilerResult{}
	}
	if pr, ok := s.ablated[key]; ok {
		return pr, nil
	}
	tech, ok := core.Ablations()[technique]
	if !ok {
		return nil, fmt.Errorf("bench: unknown ablation %q", technique)
	}
	wr, err := s.Run(name)
	if err != nil {
		return nil, err
	}
	s.logf("  ablating %s without %s", name, technique)
	pr, err := wr.Staged.Profile("PPP-"+technique, tech)
	if err != nil {
		return nil, err
	}
	s.ablated[key] = pr
	return pr, nil
}

// RunAll runs every workload in the suite.
func (s *Suite) RunAll() ([]*WorkloadResult, error) {
	var out []*WorkloadResult
	for _, w := range s.Workloads {
		wr, err := s.Run(w.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, wr)
	}
	return out, nil
}

// EdgeOverhead measures software edge-counter overhead for reference.
func (s *Suite) EdgeOverhead(name string) (float64, error) {
	wr, err := s.Run(name)
	if err != nil {
		return 0, err
	}
	res, err := wr.Staged.EdgeOverheadRun()
	if err != nil {
		return 0, err
	}
	return res.Overhead(), nil
}

// Accuracy returns the Figure 9 numbers for one workload: edge, TPP,
// and PPP accuracy against the actual hot set.
func (wr *WorkloadResult) Accuracy() (edge, tpp, ppp float64) {
	hot := wr.Hot()
	edge = eval.Accuracy(hot, wr.Profilers["PP"].Eval.EdgeEstimatedProfile(HotTheta))
	tpp = eval.Accuracy(hot, wr.Profilers["TPP"].Eval.EstimatedProfile(HotTheta))
	ppp = eval.Accuracy(hot, wr.Profilers["PPP"].Eval.EstimatedProfile(HotTheta))
	return edge, tpp, ppp
}

// Coverage returns the Figure 10 numbers for one workload.
func (wr *WorkloadResult) Coverage() (edge, tpp, ppp float64) {
	edge = wr.Profilers["PP"].Eval.EdgeCoverage().Value()
	tpp = wr.Profilers["TPP"].Eval.Coverage().Value()
	ppp = wr.Profilers["PPP"].Eval.Coverage().Value()
	return edge, tpp, ppp
}

// geomeanSafe and mean helpers for table footers.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// classRows splits results into INT, FP, and all, preserving order.
func classRows(rs []*WorkloadResult) (ints, fps []*WorkloadResult) {
	for _, r := range rs {
		if r.W.Class == "INT" {
			ints = append(ints, r)
		} else {
			fps = append(fps, r)
		}
	}
	return ints, fps
}

// sortedNames returns map keys sorted, for deterministic iteration.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
