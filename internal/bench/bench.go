// Package bench regenerates the paper's tables and figures over the
// synthetic workload suite: Table 1 (path characteristics under
// inlining+unrolling), Table 2 (hot paths), Figure 9 (accuracy),
// Figure 10 (coverage), Figure 11 (fraction of paths instrumented),
// Figure 12 (overhead), and Figure 13 (leave-one-out ablation), plus
// the Section 4.3 self-adjusting-criterion report.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"pathprof/internal/core"
	"pathprof/internal/eval"
	"pathprof/internal/instr"
	"pathprof/internal/netprof"
	"pathprof/internal/telemetry"
	"pathprof/internal/vm"
	"pathprof/internal/workloads"
)

// HotTheta is the hot-path threshold used throughout the evaluation
// (0.125% of total program flow, Section 8.1).
const HotTheta = 0.00125

// WorkloadResult caches everything computed for one workload.
type WorkloadResult struct {
	W         workloads.Workload
	Staged    *core.Staged
	Orig, Opt core.PathStats
	Profilers map[string]*core.ProfilerResult // PP, TPP, PPP
	// NET is Dynamo's predictor, fed by a PathHook tee off the staging
	// run that produced Staged.Base — NETReport reads it without a
	// second execution of the workload.
	NET *netprof.Predictor
	hot []eval.HotPath
}

// Hot returns the actual hot set at HotTheta, computed once from the
// PP run (which measures every path).
func (wr *WorkloadResult) Hot() []eval.HotPath {
	if wr.hot == nil {
		wr.hot = wr.Profilers["PP"].Eval.HotPaths(HotTheta)
	}
	return wr.hot
}

// Suite runs workloads once each and caches results. Workloads are
// independent, so RunAll and the Figure-13 ablation sweep fan out over
// a bounded worker pool; each workload/ablation is still computed
// exactly once (concurrent callers share the first computation), and
// all table and figure output stays deterministic because rendering
// happens sequentially after the sweep.
type Suite struct {
	Workloads []workloads.Workload
	// Log receives progress lines (nil = silent). Under a parallel
	// sweep, lines from different workloads interleave.
	Log io.Writer
	// Parallelism bounds concurrent workload runs (0 = GOMAXPROCS,
	// 1 = sequential).
	Parallelism int
	// Telemetry collects the suite's metrics and decision trace. Every
	// workload's planner emits into its trace (the trace is internally
	// synchronized, and per-unit export order is deterministic); reports
	// publish gauges into it. Nil disables all of it.
	Telemetry *telemetry.Registry
	// Backend selects the VM execution strategy for every pipeline run
	// (dense interpreter or compiled threaded code). All tables and
	// figures are identical under either; only wall clock differs.
	Backend vm.Backend
	// Placement selects the edge-probe placement every pipeline in the
	// suite plans under: spanning full counters (the default) or
	// min-cost cotree-chord probes. All tables and figures are identical
	// under either — placement only decides how edge counts are
	// acquired, and the suite's instrumented runs recover them exactly.
	Placement instr.Placement

	mu      sync.Mutex
	logMu   sync.Mutex
	results map[string]*workloadEntry
	ablated map[string]*ablateEntry
}

type workloadEntry struct {
	once sync.Once
	wr   *WorkloadResult
	err  error
}

type ablateEntry struct {
	once sync.Once
	pr   *core.ProfilerResult
	err  error
}

// NewSuite returns a suite over all workloads with telemetry enabled
// (sized for the replicated throughput sweep's widest worker count).
func NewSuite() *Suite {
	return &Suite{
		Workloads: workloads.All(),
		Telemetry: telemetry.NewRegistry(8),
	}
}

func (s *Suite) parallelism() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (s *Suite) logf(format string, args ...interface{}) {
	if s.Log != nil {
		s.logMu.Lock()
		fmt.Fprintf(s.Log, format+"\n", args...)
		s.logMu.Unlock()
	}
}

// Run stages the named workload and profiles it with PP, TPP, and PPP.
// Safe for concurrent use; the result is computed once and cached.
func (s *Suite) Run(name string) (*WorkloadResult, error) {
	s.mu.Lock()
	if s.results == nil {
		s.results = map[string]*workloadEntry{}
	}
	e := s.results[name]
	if e == nil {
		e = &workloadEntry{}
		s.results[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.wr, e.err = s.runWorkload(name) })
	return e.wr, e.err
}

func (s *Suite) runWorkload(name string) (*WorkloadResult, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown workload %q", name)
	}
	s.logf("staging %s", name)
	pred := netprof.New(netprof.DefaultThreshold)
	pl := core.NewPipeline(w.Name, w.Source)
	pl.PathHook = pred.Hook()
	pl.Backend = s.Backend
	pl.Instr.Placement = s.Placement
	pl.Instr.Trace = s.Telemetry.Trace()
	staged, err := pl.Stage()
	if err != nil {
		return nil, err
	}
	wr := &WorkloadResult{
		W:         w,
		Staged:    staged,
		Orig:      core.StatsOf(staged.OriginalRun),
		Opt:       core.StatsOf(staged.Base),
		Profilers: map[string]*core.ProfilerResult{},
		NET:       pred,
	}
	for _, p := range core.Profilers() {
		s.logf("  profiling %s with %s", name, p.Name)
		pr, err := staged.Profile(p.Name, p.Tech)
		if err != nil {
			return nil, err
		}
		wr.Profilers[p.Name] = pr
	}
	return wr, nil
}

// Ablate profiles the named workload with one PPP technique disabled
// (Figure 13), caching the result. Safe for concurrent use.
func (s *Suite) Ablate(name, technique string) (*core.ProfilerResult, error) {
	tech, ok := core.Ablations()[technique]
	if !ok {
		return nil, fmt.Errorf("bench: unknown ablation %q", technique)
	}
	key := name + "/" + technique
	s.mu.Lock()
	if s.ablated == nil {
		s.ablated = map[string]*ablateEntry{}
	}
	e := s.ablated[key]
	if e == nil {
		e = &ablateEntry{}
		s.ablated[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		wr, err := s.Run(name)
		if err != nil {
			e.err = err
			return
		}
		s.logf("  ablating %s without %s", name, technique)
		e.pr, e.err = wr.Staged.Profile("PPP-"+technique, tech)
	})
	return e.pr, e.err
}

// RunAll runs every workload in the suite, fanning out across the
// worker pool. Results come back in suite order regardless of which
// worker finished first; the first error (in suite order) is
// returned.
func (s *Suite) RunAll() ([]*WorkloadResult, error) {
	out := make([]*WorkloadResult, len(s.Workloads))
	errs := make([]error, len(s.Workloads))
	s.forEach(len(s.Workloads), func(i int) {
		out[i], errs[i] = s.Run(s.Workloads[i].Name)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// forEach runs fn(0..n-1) on the suite's bounded worker pool.
func (s *Suite) forEach(n int, fn func(i int)) {
	par := s.parallelism()
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Headline computes the suite-average metrics the paper leads with:
// accuracy and coverage per profiler (Figures 9-10) and runtime
// overhead (Figure 12), as percentages.
func (s *Suite) Headline() (map[string]float64, error) {
	rs, err := s.RunAll()
	if err != nil {
		return nil, err
	}
	if len(rs) == 0 {
		return map[string]float64{}, nil
	}
	var accE, accT, accP, covE, covT, covP, ohPP, ohTPP, ohPPP float64
	for _, r := range rs {
		e, t, p := r.Accuracy()
		accE, accT, accP = accE+e, accT+t, accP+p
		e, t, p = r.Coverage()
		covE, covT, covP = covE+e, covT+t, covP+p
		ohPP += r.Profilers["PP"].Overhead()
		ohTPP += r.Profilers["TPP"].Overhead()
		ohPPP += r.Profilers["PPP"].Overhead()
	}
	n := float64(len(rs))
	return map[string]float64{
		"edge_accuracy_pct": 100 * accE / n,
		"tpp_accuracy_pct":  100 * accT / n,
		"ppp_accuracy_pct":  100 * accP / n,
		"edge_coverage_pct": 100 * covE / n,
		"tpp_coverage_pct":  100 * covT / n,
		"ppp_coverage_pct":  100 * covP / n,
		"pp_overhead_pct":   100 * ohPP / n,
		"tpp_overhead_pct":  100 * ohTPP / n,
		"ppp_overhead_pct":  100 * ohPPP / n,
	}, nil
}

// EdgeOverhead measures software edge-counter overhead for reference.
func (s *Suite) EdgeOverhead(name string) (float64, error) {
	wr, err := s.Run(name)
	if err != nil {
		return 0, err
	}
	res, err := wr.Staged.EdgeOverheadRun()
	if err != nil {
		return 0, err
	}
	return res.Overhead(), nil
}

// Accuracy returns the Figure 9 numbers for one workload: edge, TPP,
// and PPP accuracy against the actual hot set.
func (wr *WorkloadResult) Accuracy() (edge, tpp, ppp float64) {
	hot := wr.Hot()
	edge = eval.Accuracy(hot, wr.Profilers["PP"].Eval.EdgeEstimatedProfile(HotTheta))
	tpp = eval.Accuracy(hot, wr.Profilers["TPP"].Eval.EstimatedProfile(HotTheta))
	ppp = eval.Accuracy(hot, wr.Profilers["PPP"].Eval.EstimatedProfile(HotTheta))
	return edge, tpp, ppp
}

// Coverage returns the Figure 10 numbers for one workload.
func (wr *WorkloadResult) Coverage() (edge, tpp, ppp float64) {
	edge = wr.Profilers["PP"].Eval.EdgeCoverage().Value()
	tpp = wr.Profilers["TPP"].Eval.Coverage().Value()
	ppp = wr.Profilers["PPP"].Eval.Coverage().Value()
	return edge, tpp, ppp
}

// geomeanSafe and mean helpers for table footers.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// classRows splits results into INT, FP, and all, preserving order.
func classRows(rs []*WorkloadResult) (ints, fps []*WorkloadResult) {
	for _, r := range rs {
		if r.W.Class == "INT" {
			ints = append(ints, r)
		} else {
			fps = append(fps, r)
		}
	}
	return ints, fps
}

// sortedNames returns map keys sorted, for deterministic iteration.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
