package bench

import (
	"fmt"
	"io"
	"time"

	"pathprof/internal/verify"
	"pathprof/internal/vm"
)

// StaticOpsRow is the machine-readable static-instrumentation record
// for one routine under one profiler: inserted path-profiling ops, the
// edge-counter probe sites the plan's placement implies, and the cost
// of the static proofs run over the plan — the all-paths verifier
// (verify.ModeProof) and the compiled backend's translation validation
// (vm ValidateOn), both in wall-clock microseconds.
type StaticOpsRow struct {
	Workload      string `json:"workload"`
	Routine       string `json:"routine"`
	Profiler      string `json:"profiler"`
	Ops           int    `json:"static_ops"`
	EdgeSites     int    `json:"static_edge_sites"`
	Instrumented  bool   `json:"instrumented"`
	VerifyProofUs int64  `json:"verify_proof_us"`
	ValidateUs    int64  `json:"validate_us"`
}

// StaticOpsRows flattens every workload x routine x profiler plan into
// rows for pppbench's JSON report, in deterministic order (suite
// workload order, then routine name, then PP/TPP/PPP). The timing
// fields are measured here: the proof verifier runs once per plan, and
// one compiled engine per workload x profiler captures per-routine
// translation-validation time.
func (s *Suite) StaticOpsRows() ([]StaticOpsRow, error) {
	rs, err := s.RunAll()
	if err != nil {
		return nil, err
	}
	var rows []StaticOpsRow
	for _, r := range rs {
		pl := r.Staged.Pipeline
		validateUs := map[string]map[string]int64{}
		for _, p := range []string{"PP", "TPP", "PPP"} {
			eng, err := vm.NewEngine(r.Staged.Prog, vm.Options{
				Costs: pl.Costs, Entry: pl.Entry, MaxSteps: pl.MaxSteps,
				Plans: r.Profilers[p].Plans, CollectPaths: true,
				Backend: vm.BackendCompiled,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: compiled engine: %w", r.W.Name, p, err)
			}
			validateUs[p] = eng.ValidateUs()
		}
		for _, rn := range sortedNames(r.Profilers["PP"].Plans) {
			for _, p := range []string{"PP", "TPP", "PPP"} {
				plan := r.Profilers[p].Plans[rn]
				if plan == nil {
					continue
				}
				start := time.Now()
				rep := verify.CheckWith(plan, verify.Options{Mode: verify.ModeProof})
				proofUs := time.Since(start).Microseconds()
				if !rep.OK() {
					return nil, fmt.Errorf("bench: %s/%s/%s: plan fails the all-paths proof:\n%s",
						r.W.Name, p, rn, rep)
				}
				rows = append(rows, StaticOpsRow{
					Workload:      r.W.Name,
					Routine:       rn,
					Profiler:      p,
					Ops:           plan.StaticOps(),
					EdgeSites:     plan.StaticEdgeSites(),
					Instrumented:  plan.Instrumented,
					VerifyProofUs: proofUs,
					ValidateUs:    validateUs[p][rn],
				})
			}
		}
	}
	return rows, nil
}

// StaticReport summarises the compile-time side of each profiler
// (Section 4.7 discusses PPP's analysis cost qualitatively): the
// number of instrumentation operations inserted, the number of
// instrumented routines, hash-table routines, and attributed paths.
// PPP inserts markedly fewer static operations than PP even before any
// dynamic savings.
func (s *Suite) StaticReport(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Static instrumentation (ops inserted / routines instrumented / hashed / attributed paths)\n")
	fmt.Fprintf(w, "%-10s %22s %22s %22s\n", "bench", "PP", "TPP", "PPP")
	totals := map[string]int{}
	for _, r := range rs {
		fmt.Fprintf(w, "%-10s", r.W.Name)
		for _, p := range []string{"PP", "TPP", "PPP"} {
			pr := r.Profilers[p]
			ops, instrd, attr := 0, 0, 0
			for _, plan := range pr.Plans {
				ops += plan.StaticOps()
				if plan.Instrumented {
					instrd++
				}
				attr += len(plan.Attr)
			}
			totals[p] += ops
			fmt.Fprintf(w, " %7d/%3d/%2d/%4d", ops, instrd, pr.HashedRoutines, attr)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "total ops")
	for _, p := range []string{"PP", "TPP", "PPP"} {
		fmt.Fprintf(w, " %22d", totals[p])
	}
	fmt.Fprintln(w)
	return nil
}
