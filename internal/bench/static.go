package bench

import (
	"fmt"
	"io"
)

// StaticReport summarises the compile-time side of each profiler
// (Section 4.7 discusses PPP's analysis cost qualitatively): the
// number of instrumentation operations inserted, the number of
// instrumented routines, hash-table routines, and attributed paths.
// PPP inserts markedly fewer static operations than PP even before any
// dynamic savings.
func (s *Suite) StaticReport(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Static instrumentation (ops inserted / routines instrumented / hashed / attributed paths)\n")
	fmt.Fprintf(w, "%-10s %22s %22s %22s\n", "bench", "PP", "TPP", "PPP")
	totals := map[string]int{}
	for _, r := range rs {
		fmt.Fprintf(w, "%-10s", r.W.Name)
		for _, p := range []string{"PP", "TPP", "PPP"} {
			pr := r.Profilers[p]
			ops, instrd, attr := 0, 0, 0
			for _, plan := range pr.Plans {
				ops += plan.StaticOps()
				if plan.Instrumented {
					instrd++
				}
				attr += len(plan.Attr)
			}
			totals[p] += ops
			fmt.Fprintf(w, " %7d/%3d/%2d/%4d", ops, instrd, pr.HashedRoutines, attr)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "total ops")
	for _, p := range []string{"PP", "TPP", "PPP"} {
		fmt.Fprintf(w, " %22d", totals[p])
	}
	fmt.Fprintln(w)
	return nil
}
