package bench

import (
	"fmt"
	"io"

	"pathprof/internal/core"
)

// Table1 prints dynamic path characteristics with and without
// inlining and unrolling, per the paper's Table 1.
func (s *Suite) Table1(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 1: dynamic path characteristics (original vs inlined+unrolled)\n")
	fmt.Fprintf(w, "%-10s %10s %8s %8s %10s %8s %8s %8s %7s %8s\n",
		"bench", "paths(K)", "branch", "instrs", "paths(K)", "branch", "instrs", "%inl", "unroll", "speedup")
	print := func(rows []*WorkloadResult, label string, showRows bool) {
		var oB, oI, nB, nI, inl, unr, spd []float64
		var oP, nP float64
		for _, r := range rows {
			avgUnroll := avgUnrollOf(r)
			if showRows {
				fmt.Fprintf(w, "%-10s %10.1f %8.2f %8.2f %10.1f %8.2f %8.2f %7.0f%% %7.2f %8.2f\n",
					r.W.Name,
					float64(r.Orig.DynPaths)/1000, r.Orig.AvgBranches, r.Orig.AvgInstrs,
					float64(r.Opt.DynPaths)/1000, r.Opt.AvgBranches, r.Opt.AvgInstrs,
					100*r.Staged.PctCallsInlined(), avgUnroll, r.Staged.Speedup())
			}
			oP += float64(r.Orig.DynPaths) / 1000
			nP += float64(r.Opt.DynPaths) / 1000
			oB = append(oB, r.Orig.AvgBranches)
			oI = append(oI, r.Orig.AvgInstrs)
			nB = append(nB, r.Opt.AvgBranches)
			nI = append(nI, r.Opt.AvgInstrs)
			inl = append(inl, r.Staged.PctCallsInlined())
			unr = append(unr, avgUnroll)
			spd = append(spd, r.Staged.Speedup())
		}
		fmt.Fprintf(w, "%-10s %10.1f %8.2f %8.2f %10.1f %8.2f %8.2f %7.0f%% %7.2f %8.2f\n",
			label, oP/float64(len(rows)), mean(oB), mean(oI),
			nP/float64(len(rows)), mean(nB), mean(nI),
			100*mean(inl), mean(unr), mean(spd))
	}
	ints, fps := classRows(rs)
	print(ints, "INT avg", true)
	print(fps, "FP avg", true)
	print(rs, "ALL avg", false)
	return nil
}

func avgUnrollOf(r *WorkloadResult) float64 {
	return avgUnroll(r)
}

func avgUnroll(r *WorkloadResult) float64 {
	// Weighted over dynamic loop iterations, per Table 1.
	var num, den float64
	for _, d := range r.Staged.UnrollDecisions {
		num += float64(d.Factor) * float64(d.Iters)
		den += float64(d.Iters)
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// Table2 prints distinct paths and hot-path statistics at the 0.125%
// and 1% thresholds, per the paper's Table 2.
func (s *Suite) Table2(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 2: hot paths (thresholds 0.125%% and 1%% of total branch flow)\n")
	fmt.Fprintf(w, "%-10s %9s %9s %9s %9s %9s\n",
		"bench", "distinct", "hot.125", "flow.125", "hot1", "flow1")
	print := func(rows []*WorkloadResult, label string, showRows bool) {
		var f125, f1 []float64
		for _, r := range rows {
			e := r.Profilers["PP"].Eval
			n125, s125 := e.HotStats(0.00125)
			n1, s1 := e.HotStats(0.01)
			if showRows {
				fmt.Fprintf(w, "%-10s %9d %9d %8.1f%% %9d %8.1f%%\n",
					r.W.Name, e.DistinctPaths(), n125, 100*s125, n1, 100*s1)
			}
			f125 = append(f125, s125)
			f1 = append(f1, s1)
		}
		fmt.Fprintf(w, "%-10s %9s %9s %8.1f%% %9s %8.1f%%\n",
			label, "", "", 100*mean(f125), "", 100*mean(f1))
	}
	ints, fps := classRows(rs)
	print(ints, "INT avg", true)
	print(fps, "FP avg", true)
	print(rs, "ALL avg", false)
	return nil
}

// Figure9 prints hot-path prediction accuracy for edge profiling,
// TPP, and PPP.
func (s *Suite) Figure9(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 9: accuracy (fraction of hot path flow predicted)\n")
	fmt.Fprintf(w, "%-10s %8s %8s %8s\n", "bench", "edge", "TPP", "PPP")
	print := func(rows []*WorkloadResult, label string, showRows bool) {
		var es, ts, ps []float64
		for _, r := range rows {
			e, t, p := r.Accuracy()
			if showRows {
				fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%% %7.1f%%\n", r.W.Name, 100*e, 100*t, 100*p)
			}
			es, ts, ps = append(es, e), append(ts, t), append(ps, p)
		}
		fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%% %7.1f%%\n", label, 100*mean(es), 100*mean(ts), 100*mean(ps))
	}
	ints, fps := classRows(rs)
	print(ints, "INT avg", true)
	print(fps, "FP avg", true)
	print(rs, "ALL avg", false)
	return nil
}

// Figure10 prints coverage for edge profiling, TPP, and PPP.
func (s *Suite) Figure10(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 10: coverage (fraction of path profile definitely measured)\n")
	fmt.Fprintf(w, "%-10s %8s %8s %8s\n", "bench", "edge", "TPP", "PPP")
	print := func(rows []*WorkloadResult, label string, showRows bool) {
		var es, ts, ps []float64
		for _, r := range rows {
			e, t, p := r.Coverage()
			if showRows {
				fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%% %7.1f%%\n", r.W.Name, 100*e, 100*t, 100*p)
			}
			es, ts, ps = append(es, e), append(ts, t), append(ps, p)
		}
		fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%% %7.1f%%\n", label, 100*mean(es), 100*mean(ts), 100*mean(ps))
	}
	ints, fps := classRows(rs)
	print(ints, "INT avg", true)
	print(fps, "FP avg", true)
	print(rs, "ALL avg", false)
	return nil
}

// Figure11 prints the fraction of dynamic paths each profiler
// instruments, with the hashed portion broken out.
func (s *Suite) Figure11(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 11: fraction of dynamic paths instrumented (hashed portion in parens)\n")
	fmt.Fprintf(w, "%-10s %16s %16s %16s\n", "bench", "PP", "TPP", "PPP")
	print := func(rows []*WorkloadResult, label string, showRows bool) {
		sums := map[string][]float64{}
		for _, r := range rows {
			if showRows {
				fmt.Fprintf(w, "%-10s", r.W.Name)
			}
			for _, p := range []string{"PP", "TPP", "PPP"} {
				f := r.Profilers[p].Eval.InstrumentedFraction()
				if showRows {
					fmt.Fprintf(w, " %7.1f%% (%4.1f%%)", 100*f.Total(), 100*f.Hash)
				}
				sums[p] = append(sums[p], f.Total())
			}
			if showRows {
				fmt.Fprintln(w)
			}
		}
		fmt.Fprintf(w, "%-10s", label)
		for _, p := range []string{"PP", "TPP", "PPP"} {
			fmt.Fprintf(w, " %7.1f%% %7s", 100*mean(sums[p]), "")
		}
		fmt.Fprintln(w)
	}
	ints, fps := classRows(rs)
	print(ints, "INT avg", true)
	print(fps, "FP avg", true)
	print(rs, "ALL avg", false)
	return nil
}

// Figure12 prints runtime overheads of PP, TPP, and PPP.
func (s *Suite) Figure12(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 12: runtime overhead of path profiling\n")
	fmt.Fprintf(w, "%-10s %8s %8s %8s\n", "bench", "PP", "TPP", "PPP")
	print := func(rows []*WorkloadResult, label string, showRows bool) {
		var pp, tpp, ppp []float64
		for _, r := range rows {
			a := r.Profilers["PP"].Overhead()
			b := r.Profilers["TPP"].Overhead()
			c := r.Profilers["PPP"].Overhead()
			if showRows {
				fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%% %7.1f%%\n", r.W.Name, 100*a, 100*b, 100*c)
			}
			pp, tpp, ppp = append(pp, a), append(tpp, b), append(ppp, c)
		}
		fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%% %7.1f%%\n", label, 100*mean(pp), 100*mean(tpp), 100*mean(ppp))
	}
	ints, fps := classRows(rs)
	print(ints, "INT avg", true)
	print(fps, "FP avg", true)
	print(rs, "ALL avg", false)
	return nil
}

// Figure13 prints the leave-one-out ablation for the workloads where
// PPP improves on TPP by more than 5% of program runtime, with each
// variant's overhead normalized to TPP's, per the paper's Figure 13.
func (s *Suite) Figure13(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	techniques := sortedNames(core.Ablations())
	// The paper's inclusion rule is "PPP improves more than 5% of
	// program runtime over TPP"; our overheads run at about half
	// the paper's absolute scale, so the proportional cut is ~3
	// points of runtime.
	var rows []*WorkloadResult
	for _, r := range rs {
		if r.Profilers["TPP"].Overhead()-r.Profilers["PPP"].Overhead() > 0.03 {
			rows = append(rows, r)
		}
	}
	// Prefetch the whole (workload, technique) sweep on the worker
	// pool; rendering below reads the cache sequentially, so the
	// table stays deterministic.
	type cell struct {
		name, tech string
	}
	var cells []cell
	for _, r := range rows {
		for _, t := range techniques {
			cells = append(cells, cell{r.W.Name, t})
		}
	}
	errs := make([]error, len(cells))
	s.forEach(len(cells), func(i int) {
		_, errs[i] = s.Ablate(cells[i].name, cells[i].tech)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "Figure 13: leave-one-out, overhead normalized to TPP (lower is better)\n")
	fmt.Fprintf(w, "%-10s %8s", "bench", "PPP")
	for _, t := range techniques {
		fmt.Fprintf(w, " %8s", "-"+t)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		tpp := r.Profilers["TPP"].Overhead()
		norm := func(x float64) float64 {
			if tpp == 0 {
				return 1
			}
			return x / tpp
		}
		fmt.Fprintf(w, "%-10s %8.2f", r.W.Name, norm(r.Profilers["PPP"].Overhead()))
		for _, t := range techniques {
			pr, err := s.Ablate(r.W.Name, t)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %8.2f", norm(pr.Overhead()))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// SACReport verifies the Section 4.3 claim: the self-adjusting
// criterion engages for few routines and converges in few iterations.
func (s *Suite) SACReport(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Section 4.3: self-adjusting criterion activity under PPP\n")
	total, maxIter := 0, 0
	for _, r := range rs {
		pr := r.Profilers["PPP"]
		if pr.SACAdjusted > 0 {
			fmt.Fprintf(w, "%-10s adjusted %d routine(s), max %d iteration(s)\n",
				r.W.Name, pr.SACAdjusted, pr.MaxSACIterations)
			total += pr.SACAdjusted
			if pr.MaxSACIterations > maxIter {
				maxIter = pr.MaxSACIterations
			}
		}
	}
	fmt.Fprintf(w, "total: %d routine(s) adjusted, max %d iteration(s)\n", total, maxIter)
	return nil
}
