package bench

import (
	"fmt"
	"io"
)

// NETReport quantifies the Section 2 comparison with Dynamo's NET
// predictor: for each workload, the fraction of actual hot-path flow
// covered by NET's one-trace-per-head selection versus by PPP's
// estimated profile (taking the same number of paths as there are
// actual hot paths). NET is cheap but cannot tell a few dominant hot
// paths from many warm paths; the gap is widest on the warm-path
// integer programs.
//
// The predictor is fed by a PathHook tee off each workload's staging
// run (WorkloadResult.NET), so this report adds no VM executions on
// top of RunAll.
func (s *Suite) NETReport(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Section 2: NET (Dynamo) trace selection vs PPP, %% of hot flow covered\n")
	fmt.Fprintf(w, "%-10s %8s %8s %8s  %s\n", "bench", "NET", "PPP", "traces", "mode")
	var nets, ppps []float64
	for _, r := range rs {
		pred := r.NET
		hot := r.Hot()
		flowByKey := map[string]int64{}
		var total int64
		for _, h := range hot {
			flowByKey[h.Key] = h.Flow
			total += h.Flow
		}
		netCov := pred.CoverageOf(flowByKey)

		est := r.Profilers["PPP"].Eval.EstimatedProfile(HotTheta)
		var covered int64
		for i, e := range est {
			if i >= len(hot) {
				break
			}
			covered += flowByKey[e.Key]
		}
		pppCov := 0.0
		if total > 0 {
			pppCov = float64(covered) / float64(total)
		}
		fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%% %8d  %s\n",
			r.W.Name, 100*netCov, 100*pppCov, len(pred.Traces()),
			r.Profilers["PPP"].ModeSummary())
		nets = append(nets, netCov)
		ppps = append(ppps, pppCov)
	}
	fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%%\n", "avg", 100*mean(nets), 100*mean(ppps))
	return nil
}
