package bench

import (
	"fmt"
	"io"
)

// NETReport quantifies the Section 2 comparison with Dynamo's NET
// predictor: for each workload, the fraction of actual hot-path flow
// covered by NET's one-trace-per-head selection versus by PPP's
// estimated profile (taking the same number of paths as there are
// actual hot paths). NET is cheap but cannot tell a few dominant hot
// paths from many warm paths; the gap is widest on the warm-path
// integer programs.
//
// The predictor is fed by a PathHook tee off each workload's staging
// run (WorkloadResult.NET), so this report adds no VM executions on
// top of RunAll.
//
// The "why" column surfaces the decision trace: each row shows the
// single flow-losing planner decision with the most flow at stake for
// the workload's PPP unit, so a coverage gap points straight at its
// cause instead of a bare mode letter. Rows without any lossy decision
// fall back to the mode summary. Coverage ratios are also published as
// registry gauges for the /metrics surface.
func (s *Suite) NETReport(w io.Writer) error {
	rs, err := s.RunAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Section 2: NET (Dynamo) trace selection vs PPP, %% of hot flow covered\n")
	fmt.Fprintf(w, "%-10s %8s %8s %8s  %s\n", "bench", "NET", "PPP", "traces", "why")
	var nets, ppps []float64
	for _, r := range rs {
		pred := r.NET
		hot := r.Hot()
		flowByKey := map[string]int64{}
		var total int64
		for _, h := range hot {
			flowByKey[h.Key] = h.Flow
			total += h.Flow
		}
		netCov := pred.CoverageOf(flowByKey)

		est := r.Profilers["PPP"].Eval.EstimatedProfile(HotTheta)
		var covered int64
		for i, e := range est {
			if i >= len(hot) {
				break
			}
			covered += flowByKey[e.Key]
		}
		pppCov := 0.0
		if total > 0 {
			pppCov = float64(covered) / float64(total)
		}
		fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%% %8d  %s\n",
			r.W.Name, 100*netCov, 100*pppCov, len(pred.Traces()), s.whyOf(r))
		nets = append(nets, netCov)
		ppps = append(ppps, pppCov)
		s.Telemetry.Gauge(
			fmt.Sprintf("ppp_net_coverage_ratio{workload=%q}", r.W.Name),
			"fraction of actual hot-path flow covered by NET trace selection").Set(netCov)
		s.Telemetry.Gauge(
			fmt.Sprintf("ppp_estimated_coverage_ratio{workload=%q}", r.W.Name),
			"fraction of actual hot-path flow covered by PPP's estimated profile").Set(pppCov)
		pred.PublishMetrics(s.Telemetry, r.W.Name)
	}
	fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%%\n", "avg", 100*mean(nets), 100*mean(ppps))
	return nil
}

// whyOf renders one workload's top flow-losing PPP decision, or the
// mode summary when the trace recorded none (trace disabled, or a
// fully instrumented run).
func (s *Suite) whyOf(r *WorkloadResult) string {
	ev, ok := s.Telemetry.Trace().TopLoss(r.W.Name + "/PPP")
	if !ok {
		return r.Profilers["PPP"].ModeSummary()
	}
	why := fmt.Sprintf("%s %s", ev.Kind, ev.Routine)
	if ev.Edge != "" {
		why += " " + ev.Edge
	}
	return fmt.Sprintf("%s (flow %d)", why, ev.Flow)
}
