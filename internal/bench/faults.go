package bench

import (
	"fmt"
	"io"
	"time"

	"pathprof/internal/faultinject"
	"pathprof/internal/profile"
	"pathprof/internal/telemetry"
	"pathprof/internal/vm"
)

// Guard parameters for fault-injected runs. Retries give clean pre-run
// faults a second and third chance; the deadline (only armed when the
// stall kind is active) quarantines replicas that wedge.
const (
	FaultRetries  = 2
	FaultDeadline = 25 * time.Millisecond
	FaultStall    = 3 * FaultDeadline
)

// FaultGuard adapts a deterministic injector into vm guarded-mode
// configuration. Fault decisions are keyed by replica index (and
// attempt, for panics), never by worker, so the injected fault set —
// and therefore the surviving merge — is identical at every worker
// count.
//
// Kinds map to guard behaviors as follows: Panic panics in the pre-run
// hook (a clean fault, retried up to FaultRetries); Stall sleeps past
// the replica deadline (quarantining the shard); Overflow preloads the
// entry routine's counters at profile.CounterMax so the run saturates
// (overflowFns names the routines to poison). Nil or kind-less
// injectors yield a guard that never fires.
//
// Every fired fault is also recorded in tr (nil disables this) as an
// EvFaultInject event under unit, keyed by replica so the recorded
// fault set matches the injected one at any worker count.
func FaultGuard(inj *faultinject.Injector, overflowFns []string, tr *telemetry.Trace, unit string) *vm.GuardConfig {
	g := &vm.GuardConfig{ReplicaRetries: FaultRetries}
	if inj != nil && inj.Active(faultinject.Stall) {
		g.ReplicaDeadline = FaultDeadline
	}
	emit := func(ctx vm.FaultContext, kind faultinject.Kind, detail string) {
		if tr == nil {
			return
		}
		tr.Emit(telemetry.Event{
			Unit:    unit,
			Routine: fmt.Sprintf("replica-%d", ctx.Replica),
			Kind:    telemetry.EvFaultInject,
			Detail: fmt.Sprintf("%s at replica %d attempt %d (seed %d): %s",
				kind, ctx.Replica, ctx.Attempt, inj.Seed(), detail),
		})
	}
	g.FaultHook = func(ctx vm.FaultContext) error {
		if inj == nil {
			return nil
		}
		site := uint64(ctx.Replica)
		if inj.Active(faultinject.Panic) && inj.Hit(faultinject.Panic, site*4+uint64(ctx.Attempt)) {
			emit(ctx, faultinject.Panic, "pre-run hook panics")
			panic(fmt.Sprintf("injected panic: replica %d attempt %d", ctx.Replica, ctx.Attempt))
		}
		if inj.Active(faultinject.Stall) && inj.Hit(faultinject.Stall, site) {
			emit(ctx, faultinject.Stall, "replica stalls past its deadline")
			time.Sleep(FaultStall)
		}
		if inj.Active(faultinject.Overflow) && ctx.Attempt == 0 && inj.Hit(faultinject.Overflow, site) {
			emit(ctx, faultinject.Overflow, "counters preloaded to saturation")
			for _, fn := range overflowFns {
				ep := ctx.Sink.EdgeProfile(fn)
				ep.Add(0, 1, profile.CounterMax)
				ep.Add(0, 1, 1)
			}
		}
		return nil
	}
	return g
}

// FaultsReport runs the representative workload trio under guarded
// replication with the given fault specification and reports how
// collection degrades: surviving replicas, quarantined shards,
// saturated routines, and whether the degraded merge is reproducible —
// two runs with the same spec and worker count must produce
// bit-identical snapshots, and the dense and compiled backends must
// agree on the degraded merge as well (fault decisions are keyed by
// replica, so the surviving set is backend-independent). (Across
// different worker counts the surviving set may legitimately differ:
// the quarantine unit is the shard, and shard boundaries move with the
// worker count.) A run that loses every shard is reported, not fatal:
// total quarantine is a legitimate degraded outcome.
func (s *Suite) FaultsReport(w io.Writer, spec string, replicas int) error {
	inj, err := faultinject.Parse(spec)
	if err != nil {
		return err
	}
	if replicas <= 0 {
		replicas = DefaultThroughputReplicas
	}
	sel := s.throughputWorkloads()
	fmt.Fprintf(w, "Fault injection: %s over %d replicas (guard: %d retries, %v deadline when stalling)\n",
		inj, replicas, FaultRetries, FaultDeadline)
	fmt.Fprintf(w, "%-10s %9s %6s %9s %9s  %s\n",
		"bench", "survived", "lost", "saturated", "merge", "faults")
	for _, wl := range sel {
		wr, err := s.Run(wl.Name)
		if err != nil {
			return err
		}
		entry := wr.Staged.Pipeline.Entry
		if entry == "" {
			entry = "main"
		}
		unit := wl.Name + "/faults"
		guard := FaultGuard(inj, []string{entry}, s.Telemetry.Trace(), unit)
		opts := vm.Options{
			CollectEdges: true, CollectPaths: true, Guard: guard,
			Trace: s.Telemetry.Trace(), TraceUnit: unit,
		}

		var faults []vm.ShardFault
		survived, lost, saturated := 0, 0, 0
		merge := "identical"
		var fps []uint64
	backends:
		for _, be := range []vm.Backend{vm.BackendDense, vm.BackendCompiled} {
			opts.Backend = be
			for rep := 0; rep < 2; rep++ {
				rr, rerr := vm.RunReplicated(wr.Staged.Prog, opts, replicas, 4)
				if rerr != nil {
					merge = "all shards quarantined"
					survived, lost = 0, replicas
					faults = nil
					break backends
				}
				survived, lost = rr.Survivors(), rr.LostReplicas
				saturated = len(rr.Merged.SaturatedRoutines())
				faults = rr.Faults
				fps = append(fps, rr.Merged.Fingerprint())
			}
		}
		for _, f := range fps {
			if f != fps[0] {
				merge = "DIVERGED"
			}
		}
		fmt.Fprintf(w, "%-10s %6d/%-2d %6d %9d %9s  %d\n",
			wl.Name, survived, replicas, lost, saturated, merge, len(faults))
		for _, f := range faults {
			fmt.Fprintf(w, "           - %v\n", f)
		}
	}
	return nil
}
