package bench_test

import (
	"bytes"
	"strings"
	"testing"

	"pathprof/internal/telemetry"
)

// TestSuiteFeedsTelemetry runs a workload through the suite and checks
// the wiring end to end: staging populates the decision trace, the NET
// report explains inexact profiles with a "why" drawn from it, and the
// registry renders a valid Prometheus exposition.
func TestSuiteFeedsTelemetry(t *testing.T) {
	s := smallSuite(t)
	if s.Telemetry == nil {
		t.Fatal("NewSuite did not install a telemetry registry")
	}
	if _, err := s.Run("mcf"); err != nil {
		t.Fatal(err)
	}
	if s.Telemetry.Trace().Len() == 0 {
		t.Fatal("staging a workload emitted no decision events")
	}
	evs := s.Telemetry.Trace().Snapshot()
	units := map[string]bool{}
	for _, e := range evs {
		units[e.Unit] = true
	}
	if !units["mcf/PPP"] {
		t.Errorf("no events under unit mcf/PPP; units seen: %v", units)
	}

	var sb strings.Builder
	if err := s.NETReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "why") {
		t.Errorf("NET report lost its why column:\n%s", sb.String())
	}

	var buf bytes.Buffer
	if err := s.Telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidatePrometheus(&buf); err != nil {
		t.Errorf("suite exposition does not validate: %v", err)
	}
	var again bytes.Buffer
	if err := s.Telemetry.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
}

// TestSuiteTraceExportDeterministic stages the same workloads in two
// fresh suites and requires byte-identical JSONL exports — the
// contract the CI smoke test enforces on the real binary.
func TestSuiteTraceExportDeterministic(t *testing.T) {
	var outs [2]bytes.Buffer
	for rep := 0; rep < 2; rep++ {
		s := smallSuite(t)
		for _, wl := range s.Workloads {
			if _, err := s.Run(wl.Name); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Telemetry.Trace().WriteJSONL(&outs[rep]); err != nil {
			t.Fatal(err)
		}
	}
	if outs[0].Len() == 0 {
		t.Fatal("suite staging exported an empty trace")
	}
	if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
		t.Error("identical suite runs exported different decision traces")
	}
}
