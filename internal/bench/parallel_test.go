package bench_test

import (
	"strings"
	"sync"
	"testing"

	"pathprof/internal/bench"
)

// TestParallelMatchesSequential runs the same workloads on a
// sequential suite and a parallel one and requires identical modeled
// results: the simulation must be deterministic regardless of worker
// count.
func TestParallelMatchesSequential(t *testing.T) {
	seq := smallSuite(t)
	seq.Parallelism = 1
	par := smallSuite(t)
	par.Parallelism = 4

	seqRes, err := seq.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := par.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRes) != len(parRes) {
		t.Fatalf("result count: %d vs %d", len(seqRes), len(parRes))
	}
	for i := range seqRes {
		a, b := seqRes[i], parRes[i]
		if a.W.Name != b.W.Name {
			t.Fatalf("order differs at %d: %s vs %s", i, a.W.Name, b.W.Name)
		}
		for _, p := range []string{"PP", "TPP", "PPP"} {
			ra, rb := a.Profilers[p].Run, b.Profilers[p].Run
			if ra.BaseCost != rb.BaseCost || ra.InstrCost != rb.InstrCost || ra.Steps != rb.Steps {
				t.Errorf("%s/%s: cost %d+%d (%d steps) vs %d+%d (%d steps)",
					a.W.Name, p, ra.BaseCost, ra.InstrCost, ra.Steps, rb.BaseCost, rb.InstrCost, rb.Steps)
			}
		}
	}
}

// TestParallelTablesDeterministic renders a table twice, once
// sequentially and once over workers, byte for byte.
func TestParallelTablesDeterministic(t *testing.T) {
	render := func(parallelism int) string {
		s := smallSuite(t)
		s.Parallelism = parallelism
		var sb strings.Builder
		for _, f := range []func(*strings.Builder) error{
			func(b *strings.Builder) error { return s.Figure12(b) },
			func(b *strings.Builder) error { return s.Figure13(b) },
		} {
			if err := f(&sb); err != nil {
				t.Fatal(err)
			}
		}
		return sb.String()
	}
	if a, b := render(1), render(4); a != b {
		t.Errorf("table output depends on parallelism:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestConcurrentRunSharesComputation hammers Run/Ablate from many
// goroutines (the -race build makes this a data-race probe) and checks
// every caller gets the single cached instance.
func TestConcurrentRunSharesComputation(t *testing.T) {
	s := smallSuite(t)
	s.Parallelism = 4
	var wg sync.WaitGroup
	results := make([]*bench.WorkloadResult, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wr, err := s.Run("mcf")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Ablate("mcf", "FP"); err != nil {
				t.Error(err)
			}
			results[i] = wr
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent Run returned distinct instances")
		}
	}
}
