package bench

import (
	"fmt"
	"io"
	"time"

	"pathprof/internal/core"
	"pathprof/internal/instr"
	"pathprof/internal/vm"
)

// PlacementWorkers are the worker counts the placement head-to-head
// sweeps (the issue's 1/2/4/8 ladder).
var PlacementWorkers = []int{1, 2, 4, 8}

// PlacementCell is one profiler x placement measurement for a
// workload: modeled edge-acquisition overhead from a single
// instrumented run, and wall clock accumulated across the replicated
// sweep (PlacementWorkers x both backends).
type PlacementCell struct {
	OverheadPct float64 `json:"overhead_pct"`
	Secs        float64 `json:"seconds"`
}

// PlacementProfiler is one profiler's spanning-vs-mincost pair. The
// path plan — and so StaticOps — is identical under either placement;
// only edge-counter acquisition differs.
type PlacementProfiler struct {
	Profiler  string        `json:"profiler"`
	StaticOps int           `json:"static_ops"`
	Spanning  PlacementCell `json:"spanning"`
	MinCost   PlacementCell `json:"mincost"`
}

// PlacementRow is one workload's comparison. Probe-site counts are a
// property of the CFGs alone (every routine gets a probe spec,
// instrumented or not), so they live at the row, not per profiler.
type PlacementRow struct {
	Workload      string              `json:"workload"`
	SpanningSites int                 `json:"spanning_sites"`
	MinCostSites  int                 `json:"mincost_sites"`
	Profilers     []PlacementProfiler `json:"profilers"`
}

// PlacementReport is the paper-style head-to-head of edge-count
// acquisition strategies under each path profiler: full per-transition
// counters (spanning) against min-cost cotree-chord probes with
// Kirchhoff recovery (mincost). Every mincost snapshot is recovered
// with vm.RecoverEdges and must fingerprint identically to the
// spanning run — Divergent lists violations and must stay empty.
type PlacementReport struct {
	Replicas     int            `json:"replicas"`
	Workers      []int          `json:"workers"`
	Workloads    int            `json:"workloads"`
	Rows         []PlacementRow `json:"rows"`
	SiteWins     int            `json:"site_win_workloads"`
	SpanningSecs float64        `json:"spanning_seconds"`
	MinCostSecs  float64        `json:"mincost_seconds"`
	Divergent    []string       `json:"divergent,omitempty"`
}

// placementModes pairs the report's two placements with JSON-stable
// names, in presentation order.
var placementModes = []struct {
	Name string
	Pl   instr.Placement
}{
	{"spanning", instr.PlaceSpanning},
	{"mincost", instr.PlaceMinCost},
}

// PlacementCompare measures every workload under PP/TPP/PPP with both
// probe placements: one costed run per cell for the modeled overhead,
// then vm.RunReplicated at PlacementWorkers on both backends for wall
// clock and the recovery bit-identity check.
func (s *Suite) PlacementCompare(replicas int) (*PlacementReport, error) {
	if replicas <= 0 {
		replicas = DefaultThroughputReplicas
	}
	rep := &PlacementReport{Replicas: replicas, Workers: PlacementWorkers, Workloads: len(s.Workloads)}
	for _, wl := range s.Workloads {
		wr, err := s.Run(wl.Name)
		if err != nil {
			return nil, err
		}
		row := PlacementRow{Workload: wl.Name}
		for _, prof := range core.Profilers() {
			pp := PlacementProfiler{Profiler: prof.Name}
			// The merged fingerprint after recovery must agree across
			// every cell of this profiler: both placements, both
			// backends, every worker count.
			var want uint64
			haveWant := false
			for _, mode := range placementModes {
				plans, err := wr.Staged.PlansFor(prof.Name, prof.Tech, mode.Pl)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", wl.Name, prof.Name, mode.Name, err)
				}
				if prof.Name == "PP" {
					// Site counts are placement properties of the CFGs
					// alone, identical across profilers; record them once
					// per workload.
					n := 0
					for _, p := range plans {
						n += p.StaticEdgeSites()
					}
					if mode.Pl == instr.PlaceMinCost {
						row.MinCostSites = n
					} else {
						row.SpanningSites = n
					}
				}
				cell := PlacementCell{}
				pipe := wr.Staged.Pipeline
				costed, err := vm.Run(wr.Staged.Prog, vm.Options{
					Costs: pipe.Costs, Entry: pipe.Entry, MaxSteps: pipe.MaxSteps,
					Plans: plans, EdgeInstrument: true,
					CollectEdges: true, CollectPaths: true,
				})
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: costed run: %w", wl.Name, prof.Name, mode.Name, err)
				}
				cell.OverheadPct = 100 * costed.Overhead()
				var elapsed time.Duration
				opts := vm.Options{
					Plans: plans, EdgeInstrument: true,
					CollectEdges: true, CollectPaths: true,
				}
				for _, be := range []vm.Backend{vm.BackendDense, vm.BackendCompiled} {
					opts.Backend = be
					for _, par := range PlacementWorkers {
						rr, err := vm.RunReplicated(wr.Staged.Prog, opts, replicas, par)
						if err != nil {
							return nil, fmt.Errorf("%s/%s/%s/%s w=%d: %w",
								wl.Name, prof.Name, mode.Name, be, par, err)
						}
						elapsed += rr.Elapsed
						snap, err := vm.RecoverEdges(rr.Merged, plans)
						if err != nil {
							return nil, fmt.Errorf("%s/%s/%s/%s w=%d: %w",
								wl.Name, prof.Name, mode.Name, be, par, err)
						}
						fp := snap.Fingerprint()
						if !haveWant {
							want, haveWant = fp, true
						} else if fp != want {
							rep.Divergent = append(rep.Divergent,
								fmt.Sprintf("%s/%s placement=%s backend=%s w=%d: %#x != %#x",
									wl.Name, prof.Name, mode.Name, be, par, fp, want))
						}
					}
				}
				cell.Secs = elapsed.Seconds()
				switch mode.Pl {
				case instr.PlaceMinCost:
					pp.MinCost = cell
					rep.MinCostSecs += cell.Secs
				default:
					pp.Spanning = cell
					rep.SpanningSecs += cell.Secs
					for _, p := range plans {
						pp.StaticOps += p.StaticOps()
					}
				}
			}
			row.Profilers = append(row.Profilers, pp)
		}
		if row.MinCostSites < row.SpanningSites {
			rep.SiteWins++
		}
		rep.Rows = append(rep.Rows, row)
		s.logf("placement %s: sites %d -> %d", wl.Name, row.SpanningSites, row.MinCostSites)
	}
	return rep, nil
}

// PlacementTable renders the head-to-head: per workload, probe sites
// under each placement and the modeled edge-acquisition overhead per
// profiler, with the recovery bit-identity verdict.
func (s *Suite) PlacementTable(w io.Writer, replicas int) (*PlacementReport, error) {
	rep, err := s.PlacementCompare(replicas)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Probe placement head-to-head: spanning (full edge counters) vs mincost (cotree chords + recovery)\n")
	fmt.Fprintf(w, "%d workloads x %d replicas at workers %v, both backends\n", rep.Workloads, rep.Replicas, rep.Workers)
	fmt.Fprintf(w, "%-10s %8s %8s %6s  %s\n", "bench", "span", "minc", "sites", "overhead% span->minc (PP | TPP | PPP)")
	for _, row := range rep.Rows {
		pct := 0.0
		if row.SpanningSites > 0 {
			pct = 100 * float64(row.MinCostSites) / float64(row.SpanningSites)
		}
		fmt.Fprintf(w, "%-10s %8d %8d %5.1f%%", row.Workload, row.SpanningSites, row.MinCostSites, pct)
		for _, p := range row.Profilers {
			fmt.Fprintf(w, "  %s %5.1f->%-5.1f", p.Profiler, p.Spanning.OverheadPct, p.MinCost.OverheadPct)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "mincost has strictly fewer probe sites on %d/%d workloads\n", rep.SiteWins, rep.Workloads)
	fmt.Fprintf(w, "wall clock: spanning %.3fs, mincost %.3fs\n", rep.SpanningSecs, rep.MinCostSecs)
	fmt.Fprintf(w, "recovered fingerprints: ")
	if len(rep.Divergent) == 0 {
		fmt.Fprintf(w, "bit-identical to spanning across placements, backends, and worker counts\n")
		return rep, nil
	}
	fmt.Fprintf(w, "DIVERGED\n")
	for _, d := range rep.Divergent {
		fmt.Fprintf(w, "  %s\n", d)
	}
	return rep, fmt.Errorf("bench: %d placement fingerprint divergence(s)", len(rep.Divergent))
}
