package profile

// NewSnapshot returns an empty snapshot ready to merge into.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Edges:  map[string]*EdgeProfile{},
		Paths:  map[string]*PathProfile{},
		Tables: map[string]*Table{},
	}
}

// MergeSnapshot folds other into s with the same deterministic
// routine-ordered fold the collector uses for shards: routines in
// name order, component merges unchanged. Folding a fixed sequence of
// snapshots in a fixed order therefore yields a bit-identical result
// (fingerprint included) on every run — the property the profile
// service's acked-implies-durable drill checks. other is not
// modified.
//
// Counts are saturating and Saturated flags propagate, exactly as in
// shard merges; path insertion order in s follows first contact, so
// different fold orders can permute (but never change) the path set.
func (s *Snapshot) MergeSnapshot(other *Snapshot) {
	for _, fn := range sortedKeys(other.Edges) {
		dst := s.Edges[fn]
		if dst == nil {
			dst = NewEdgeProfile(fn)
			s.Edges[fn] = dst
		}
		dst.Merge(other.Edges[fn])
	}
	for _, fn := range sortedKeys(other.Paths) {
		dst := s.Paths[fn]
		if dst == nil {
			dst = NewPathProfile(fn)
			s.Paths[fn] = dst
		}
		dst.Merge(other.Paths[fn])
	}
	for _, fn := range sortedKeys(other.Tables) {
		src := other.Tables[fn]
		dst := s.Tables[fn]
		if dst == nil {
			dst = NewTable(src.Kind, src.N, src.Size())
			s.Tables[fn] = dst
		}
		dst.Merge(src)
	}
}
