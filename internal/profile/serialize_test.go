package profile_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pathprof/internal/profile"
)

func TestEdgeProfileRoundTrip(t *testing.T) {
	in := map[string]*profile.EdgeProfile{
		"main": profile.NewEdgeProfile("main"),
		"f":    profile.NewEdgeProfile("f"),
	}
	in["main"].Calls = 1
	in["main"].Add(0, 1, 100)
	in["main"].Add(1, 2, 60)
	in["main"].Add(1, 3, 40)
	in["f"].Calls = 100
	in["f"].Add(0, 1, 100)

	var sb strings.Builder
	if err := profile.WriteEdgeProfiles(&sb, in); err != nil {
		t.Fatal(err)
	}
	out, err := profile.ReadEdgeProfiles(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if len(out) != 2 {
		t.Fatalf("routines = %d", len(out))
	}
	for name, ep := range in {
		got := out[name]
		if got == nil || got.Calls != ep.Calls {
			t.Fatalf("%s mismatch: %+v vs %+v", name, got, ep)
		}
		gotFreq := got.Freq()
		if len(gotFreq) != len(ep.Freq()) {
			t.Fatalf("%s edge count mismatch: %v vs %v", name, gotFreq, ep.Freq())
		}
		for k, v := range ep.Freq() {
			if gotFreq[k] != v {
				t.Errorf("%s %v = %d, want %d", name, k, gotFreq[k], v)
			}
		}
	}
}

func TestEdgeProfileRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := map[string]*profile.EdgeProfile{}
		for f := 0; f < 1+rng.Intn(4); f++ {
			name := string(rune('a' + f))
			ep := profile.NewEdgeProfile(name)
			ep.Calls = int64(rng.Intn(1000))
			for e := 0; e < rng.Intn(20); e++ {
				k := profile.EdgeKey{Src: rng.Intn(30), Dst: rng.Intn(30)}
				ep.Add(k.Src, k.Dst, int64(rng.Intn(100000))-ep.Get(k.Src, k.Dst))
			}
			in[name] = ep
		}
		var sb strings.Builder
		if profile.WriteEdgeProfiles(&sb, in) != nil {
			return false
		}
		out, err := profile.ReadEdgeProfiles(strings.NewReader(sb.String()))
		if err != nil || len(out) != len(in) {
			return false
		}
		for name, ep := range in {
			got := out[name]
			if got.Calls != ep.Calls {
				return false
			}
			gotFreq, wantFreq := got.Freq(), ep.Freq()
			if len(gotFreq) != len(wantFreq) {
				return false
			}
			for k, v := range wantFreq {
				if gotFreq[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestReadEdgeProfilesErrors(t *testing.T) {
	bad := []string{
		"0 1 2\n",                      // edge outside routine
		"edges f calls=1\n",            // unterminated
		"edges f calls=1\nbroken\nend", // bad edge
		"end\n",                        // end without header
		"edges f calls=1\n0 1 -5\nend", // negative frequency
		"edges f calls=1\nend\nedges f calls=2\nend", // duplicate
	}
	for _, src := range bad {
		if _, err := profile.ReadEdgeProfiles(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	// Comments and blank lines are tolerated.
	ok := "# comment\n\nedges f calls=3\n0 1 7\nend\n"
	out, err := profile.ReadEdgeProfiles(strings.NewReader(ok))
	if err != nil || out["f"].Get(0, 1) != 7 {
		t.Errorf("good input rejected: %v", err)
	}
}
