// Package profile holds the profile data structures shared between the
// VM, the instrumentation planner, and the evaluation: exact edge
// profiles, exact (ground truth) path profiles, and the runtime
// counter tables (array or 701-slot hash) that path instrumentation
// updates.
//
// Both profile kinds are optimized for the VM's hot loop: edge counts
// live in a dense slot-indexed array (one slice index per bump, no map
// hash), and path counts are keyed by an interned path ID resolved by
// walking a trie over DAG edge IDs (no string key is built per
// completed path). The map views that planners, serializers, and tests
// consume are materialized lazily.
package profile

import (
	"fmt"
	"math"
	"sort"

	"pathprof/internal/cfg"
)

// CounterMax is the saturation ceiling for every profile counter.
// Counters never wrap: additions clamp here and raise the owning
// container's Saturated flag, so an overflowed profile degrades to a
// lower bound instead of corrupting downstream frequency analysis.
const CounterMax = math.MaxInt64

// satAdd returns a+b clamped at CounterMax, and whether it clamped.
// Operands must be non-negative. Saturating addition of non-negative
// values is associative and commutative, so shard merges remain
// order-independent (and therefore deterministic) even when some
// shards saturated.
func satAdd(a, b int64) (int64, bool) {
	if a > CounterMax-b {
		return CounterMax, true
	}
	return a + b, false
}

// EdgeKey identifies a CFG edge by block indices.
type EdgeKey struct {
	Src, Dst int
}

// EdgeProfile is the exact edge profile of one routine.
//
// Counts have two backings: dense slots registered up front by the VM
// (Slot/BumpSlot, a slice increment per branch) and a sparse map fed
// by Bump/Add/Merge for consumers that do not know the edge set in
// advance (deserialization, tests). Freq materializes the combined
// view on demand.
type EdgeProfile struct {
	Func  string
	Calls int64

	// Saturated reports that at least one counter (including Calls)
	// hit CounterMax and clamped; the profile is a lower bound.
	Saturated bool

	slots map[EdgeKey]int32
	keys  []EdgeKey
	dense []int64

	extra map[EdgeKey]int64
}

// NewEdgeProfile returns an empty profile for a routine.
func NewEdgeProfile(name string) *EdgeProfile {
	return &EdgeProfile{Func: name}
}

// Slot registers the edge src->dst for dense counting and returns its
// slot index. Registering the same edge twice returns the same slot.
// Intended for set-up code (the VM's prepare pass), not the hot path.
func (ep *EdgeProfile) Slot(src, dst int) int {
	k := EdgeKey{src, dst}
	if s, ok := ep.slots[k]; ok {
		return int(s)
	}
	if ep.slots == nil {
		ep.slots = map[EdgeKey]int32{}
	}
	s := int32(len(ep.dense))
	ep.slots[k] = s
	ep.keys = append(ep.keys, k)
	ep.dense = append(ep.dense, 0)
	return int(s)
}

// BumpSlot increments the dense counter registered by Slot. This is
// the hot-path operation: one compare and one slice increment; the
// compare only fires its branch after 2^63-1 prior bumps.
//
//ppp:hotpath
func (ep *EdgeProfile) BumpSlot(slot int) {
	if ep.dense[slot] == CounterMax {
		ep.Saturated = true
		return
	}
	ep.dense[slot]++
}

// BumpCalls increments the routine-entry counter, saturating.
//
//ppp:hotpath
func (ep *EdgeProfile) BumpCalls() {
	if ep.Calls == CounterMax {
		ep.Saturated = true
		return
	}
	ep.Calls++
}

// Bump increments the edge count through the sparse backing.
func (ep *EdgeProfile) Bump(src, dst int) {
	ep.Add(src, dst, 1)
}

// Add adds v executions of the edge src->dst, saturating at
// CounterMax.
func (ep *EdgeProfile) Add(src, dst int, v int64) {
	if ep.extra == nil {
		ep.extra = map[EdgeKey]int64{}
	}
	k := EdgeKey{src, dst}
	n, sat := satAdd(ep.extra[k], v)
	ep.extra[k] = n
	if sat {
		ep.Saturated = true
	}
}

// Get returns the count of edge src->dst.
func (ep *EdgeProfile) Get(src, dst int) int64 {
	k := EdgeKey{src, dst}
	var n int64
	if s, ok := ep.slots[k]; ok {
		n = ep.dense[s]
	}
	n, _ = satAdd(n, ep.extra[k])
	return n
}

// Freq materializes the edge-count map, merging the dense and sparse
// backings. The returned map is a snapshot: mutations to it are not
// reflected in the profile (use Add), and later bumps are not
// reflected in it.
func (ep *EdgeProfile) Freq() map[EdgeKey]int64 {
	out := make(map[EdgeKey]int64, len(ep.keys)+len(ep.extra))
	for i, k := range ep.keys {
		if ep.dense[i] != 0 {
			out[k], _ = satAdd(out[k], ep.dense[i])
		}
	}
	for k, v := range ep.extra {
		if v != 0 {
			out[k], _ = satAdd(out[k], v)
		}
	}
	return out
}

// ApplyTo writes the profile onto a CFG whose block IDs match the
// profile's block indices.
func (ep *EdgeProfile) ApplyTo(g *cfg.Graph) {
	g.Calls = ep.Calls
	for _, e := range g.Edges {
		e.Freq = ep.Get(e.Src.ID, e.Dst.ID)
	}
}

// Merge adds other's counts into ep (for combining multi-run profiles,
// as the paper does for multi-input benchmarks). The sparse side is
// folded in sorted key order so merged profiles are built identically
// regardless of how other's map laid out its entries.
func (ep *EdgeProfile) Merge(other *EdgeProfile) {
	var sat bool
	ep.Calls, sat = satAdd(ep.Calls, other.Calls)
	if sat || other.Saturated {
		ep.Saturated = true
	}
	for i, k := range other.keys {
		if other.dense[i] != 0 {
			ep.Add(k.Src, k.Dst, other.dense[i])
		}
	}
	for _, k := range sortedEdgeKeys(other.extra) {
		if v := other.extra[k]; v != 0 {
			ep.Add(k.Src, k.Dst, v)
		}
	}
}

// sortedEdgeKeys returns m's keys in (Src, Dst) order, for
// deterministic iteration in merge and fingerprint code.
func sortedEdgeKeys(m map[EdgeKey]int64) []EdgeKey {
	keys := make([]EdgeKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	return keys
}

// PathCount is one ground-truth path with its execution count.
type PathCount struct {
	Path  cfg.Path
	Count int64
}

// PathProfile is the exact Ball-Larus path profile of one routine:
// paths truncate at back edges and routine exits; calls suspend the
// caller's path.
//
// Paths are interned: a trie over DAG edge IDs maps each distinct path
// to a small integer ID assigned in first-seen order, so recording a
// repeat execution walks the trie (a few comparisons per edge) without
// building a string key or allocating.
type PathProfile struct {
	Func string

	// Saturated reports that at least one path count hit CounterMax
	// and clamped; the profile is a lower bound.
	Saturated bool

	// nodes[0] is the trie root. Node IDs index this slice so the
	// backing array can grow without invalidating references.
	nodes []pathNode
	// paths is indexed by interned path ID (also first-seen order).
	paths []PathCount
}

type pathNode struct {
	// id is the interned path ID + 1 of the path ending at this node;
	// 0 means no recorded path ends here.
	id int32
	// kid0 is the first child, stored inline: kids are added in
	// first-walked order, so on the skewed branches of real profiles
	// kid0 is the hot successor and Step's inlined probe touches only
	// this node's cache line. edge is noKid while the node is
	// childless; later siblings overflow to rest.
	kid0 pathKid
	rest []pathKid
}

// noKid marks an empty kid0 slot (edge IDs are non-negative).
const noKid = int32(-1)

// pathKid is one trie child, keyed by DAG edge ID. Fan-out per node is
// tiny (bounded by a block's successor count), so the inline first
// child plus a linear overflow scan beats a map.
type pathKid struct {
	edge int32
	node int32
}

// newPathNode returns a childless trie node.
func newPathNode() pathNode {
	return pathNode{kid0: pathKid{edge: noKid}}
}

// NewPathProfile returns an empty path profile.
func NewPathProfile(name string) *PathProfile {
	return &PathProfile{Func: name, nodes: []pathNode{newPathNode()}}
}

// walk returns the trie node index for path p, appending missing nodes
// when grow is set (otherwise -1).
func (pp *PathProfile) walk(p cfg.Path, grow bool) int32 {
	cur := int32(0)
	for _, e := range p {
		id := int32(e.ID)
		next := int32(-1)
		if n := &pp.nodes[cur]; n.kid0.edge == id {
			next = n.kid0.node
		} else {
			for _, kid := range n.rest {
				if kid.edge == id {
					next = kid.node
					break
				}
			}
		}
		if next < 0 {
			if !grow {
				return -1
			}
			next = pp.addKid(cur, id)
		}
		cur = next
	}
	return cur
}

// addKid appends a fresh node under cur for edge id.
func (pp *PathProfile) addKid(cur, id int32) int32 {
	next := int32(len(pp.nodes))
	pp.nodes = append(pp.nodes, newPathNode())
	n := &pp.nodes[cur]
	if n.kid0.edge == noKid {
		n.kid0 = pathKid{edge: id, node: next}
	} else {
		n.rest = append(n.rest, pathKid{edge: id, node: next})
	}
	return next
}

// Add records count executions of path p, saturating at CounterMax.
func (pp *PathProfile) Add(p cfg.Path, count int64) {
	pp.AddAt(pp.walk(p, true), p, count)
}

// Root returns the trie cursor for an empty path, the starting point
// of incremental recording via Step/AddAt.
func (pp *PathProfile) Root() int32 { return 0 }

// Step advances a trie cursor by one DAG edge, growing the trie when
// the edge was never walked from cur. Together with AddAt this lets an
// executor record a path in a single forward pass — one trie descent
// per edge as it executes, O(1) at completion — instead of re-walking
// the whole path in Add.
//
// The body is only the inline first-kid probe — one load and one
// compare — which keeps it under the compiler's inlining budget, so
// the steady-state descent inlines into the executors' transition
// code with no call at all. Later siblings and first descents take
// the stepScan outline.
//
//ppp:hotpath
func (pp *PathProfile) Step(cur int32, edgeID int32) int32 {
	if k := pp.nodes[cur].kid0; k.edge == edgeID {
		return k.node
	}
	return pp.stepScan(cur, edgeID)
}

// stepScan is Step's outlined slow path: scan the overflow siblings,
// then grow a fresh node on a miss. Kept out of line so Step's own
// body stays inlineable at every executor call site.
//
//go:noinline
func (pp *PathProfile) stepScan(cur, edgeID int32) int32 {
	for _, kid := range pp.nodes[cur].rest {
		if kid.edge == edgeID {
			return kid.node
		}
	}
	return pp.addKid(cur, edgeID)
}

// AddAt records count executions of the path ending at trie cursor n,
// which must have been produced by Step calls over exactly p's edges
// (or walk(p, true)). Interns p (copied) on first sight, so interned
// path IDs stay in first-seen completion order no matter how the trie
// nodes were grown.
//
//ppp:hotpath
func (pp *PathProfile) AddAt(n int32, p cfg.Path, count int64) {
	if pp.nodes[n].id == 0 {
		pp.intern(n, p)
	}
	pc := &pp.paths[pp.nodes[n].id-1]
	var sat bool
	pc.Count, sat = satAdd(pc.Count, count)
	if sat {
		pp.Saturated = true
	}
}

// intern assigns the next path ID to node n and stores a copy of p.
func (pp *PathProfile) intern(n int32, p cfg.Path) {
	cp := make(cfg.Path, len(p))
	copy(cp, p)
	pp.paths = append(pp.paths, PathCount{Path: cp})
	pp.nodes[n].id = int32(len(pp.paths))
}

// Get returns the count of path p (0 if never taken).
func (pp *PathProfile) Get(p cfg.Path) int64 {
	n := pp.walk(p, false)
	if n < 0 || pp.nodes[n].id == 0 {
		return 0
	}
	return pp.paths[pp.nodes[n].id-1].Count
}

// Paths returns all recorded paths in first-seen order.
func (pp *PathProfile) Paths() []PathCount {
	out := make([]PathCount, len(pp.paths))
	copy(out, pp.paths)
	return out
}

// Distinct returns the number of distinct paths taken.
func (pp *PathProfile) Distinct() int { return len(pp.paths) }

// Total returns the total number of path executions.
func (pp *PathProfile) Total() int64 {
	var sum int64
	for i := range pp.paths {
		sum, _ = satAdd(sum, pp.paths[i].Count)
	}
	return sum
}

// Merge adds other's counts into pp.
func (pp *PathProfile) Merge(other *PathProfile) {
	if other.Saturated {
		pp.Saturated = true
	}
	for i := range other.paths {
		pp.Add(other.paths[i].Path, other.paths[i].Count)
	}
}

// TableKind selects the counter storage.
type TableKind int

const (
	// ArrayTable indexes counters directly; the paper estimates a hash
	// update costs about five times an array update.
	ArrayTable TableKind = iota
	// HashTable uses 701 slots with three tries of secondary hashing
	// and a lost-path counter (Section 7.4).
	HashTable
)

// HashSlots and HashTries are the paper's hash table parameters.
const (
	HashSlots = 701
	HashTries = 3
)

// Table is a path-counter table for one routine.
type Table struct {
	Kind TableKind
	N    int64 // hot path numbers occupy [0, N)
	arr  []int64

	keys  []int64
	used  []bool
	vals  []int64
	Lost  int64 // hash conflicts beyond the secondary tries
	Cold  int64 // check-based poisoning diverts here
	Drops int64 // out-of-range indices (defensive; must stay 0)

	// Saturated reports that at least one counter hit CounterMax and
	// clamped; the table is a lower bound.
	Saturated bool
}

// NewTable allocates a table: an array of size counters, or a hash
// table when kind is HashTable.
func NewTable(kind TableKind, n, size int64) *Table {
	t := &Table{Kind: kind, N: n}
	if kind == ArrayTable {
		t.arr = make([]int64, size)
	} else {
		t.keys = make([]int64, HashSlots)
		t.used = make([]bool, HashSlots)
		t.vals = make([]int64, HashSlots)
	}
	return t
}

// Inc increments the counter for index idx.
//
//ppp:hotpath
func (t *Table) Inc(idx int64) { t.add(idx, 1) }

// IncArray increments array counter idx without the table-kind branch
// and weight generalization of add: an in-range increment is a bounds
// check, a saturation compare, and a slice increment, small enough to
// inline into a compiled transition closure. Out-of-range indices fall
// back to add (the Drops path). Must only be called on ArrayTable.
//
//ppp:hotpath
func (t *Table) IncArray(idx int64) {
	if uint64(idx) < uint64(len(t.arr)) {
		if t.arr[idx] == CounterMax {
			t.Saturated = true
			return
		}
		t.arr[idx]++
		return
	}
	t.add(idx, 1)
}

// Add records v executions of index idx through the normal probe
// sequence (v must be non-negative). Exported for deserialization and
// fault-injection preloading; the VM uses Inc.
func (t *Table) Add(idx, v int64) { t.add(idx, v) }

// BumpCold increments the check-based cold counter, saturating.
//
//ppp:hotpath
func (t *Table) BumpCold() {
	if t.Cold == CounterMax {
		t.Saturated = true
		return
	}
	t.Cold++
}

// add records v executions of index idx: Inc generalized to a weight,
// so shard merging can replay another table's counts through the same
// probe sequence. Dropped and lost executions carry their weight into
// Drops and Lost. Every counter saturates at CounterMax.
//
//ppp:hotpath
func (t *Table) add(idx, v int64) {
	var sat bool
	if t.Kind == ArrayTable {
		if idx < 0 || idx >= int64(len(t.arr)) {
			t.Drops, sat = satAdd(t.Drops, v)
			if sat {
				t.Saturated = true
			}
			return
		}
		t.arr[idx], sat = satAdd(t.arr[idx], v)
		if sat {
			t.Saturated = true
		}
		return
	}
	h := idx % HashSlots
	if h < 0 {
		h += HashSlots
	}
	step := idx % (HashSlots - 2)
	if step < 0 {
		step += HashSlots - 2
	}
	step++
	for try := 0; try < HashTries; try++ {
		s := (h + int64(try)*step) % HashSlots
		if !t.used[s] {
			t.used[s] = true
			t.keys[s] = idx
			t.vals[s], sat = satAdd(t.vals[s], v)
			if sat {
				t.Saturated = true
			}
			return
		}
		if t.keys[s] == idx {
			t.vals[s], sat = satAdd(t.vals[s], v)
			if sat {
				t.Saturated = true
			}
			return
		}
	}
	t.Lost, sat = satAdd(t.Lost, v)
	if sat {
		t.Saturated = true
	}
}

// Size returns the counter-array capacity (0 for hash tables), so a
// table of the same shape can be constructed.
func (t *Table) Size() int64 {
	return int64(len(t.arr))
}

// Get returns the counter recorded for index idx, probing exactly as
// add would; out-of-range, unoccupied, and lost indices read as zero.
func (t *Table) Get(idx int64) int64 {
	if t.Kind == ArrayTable {
		if idx < 0 || idx >= int64(len(t.arr)) {
			return 0
		}
		return t.arr[idx]
	}
	h := idx % HashSlots
	if h < 0 {
		h += HashSlots
	}
	step := idx % (HashSlots - 2)
	if step < 0 {
		step += HashSlots - 2
	}
	step++
	for try := 0; try < HashTries; try++ {
		s := (h + int64(try)*step) % HashSlots
		if !t.used[s] {
			return 0
		}
		if t.keys[s] == idx {
			return t.vals[s]
		}
	}
	return 0
}

// Merge adds other's counters into t. Array entries add elementwise;
// hash entries replay other's occupied slots in slot order through the
// normal probe sequence, which is deterministic. When t and other have
// identical slot layouts — the sharded-replica case, where every shard
// saw the same key arrival order — the merged layout is bit-identical
// to accumulating both streams into one table; with divergent layouts
// the merge is still deterministic but collision accounting can differ
// from a single-table run, exactly as the paper's arrival-order-
// sensitive hash table would.
func (t *Table) Merge(other *Table) {
	var sat [3]bool
	t.Lost, sat[0] = satAdd(t.Lost, other.Lost)
	t.Cold, sat[1] = satAdd(t.Cold, other.Cold)
	t.Drops, sat[2] = satAdd(t.Drops, other.Drops)
	if sat[0] || sat[1] || sat[2] || other.Saturated {
		t.Saturated = true
	}
	if other.Kind == ArrayTable {
		for i, v := range other.arr {
			if v != 0 {
				t.add(int64(i), v)
			}
		}
		return
	}
	for s := 0; s < HashSlots; s++ {
		if other.used[s] {
			t.add(other.keys[s], other.vals[s])
		}
	}
}

// HotCounts returns the measured counts of hot path numbers (< N),
// sorted by number.
func (t *Table) HotCounts() []IndexCount {
	var out []IndexCount
	if t.Kind == ArrayTable {
		limit := t.N
		if int64(len(t.arr)) < limit {
			limit = int64(len(t.arr))
		}
		for i := int64(0); i < limit; i++ {
			if t.arr[i] > 0 {
				out = append(out, IndexCount{i, t.arr[i]})
			}
		}
		return out
	}
	for s := 0; s < HashSlots; s++ {
		if t.used[s] && t.keys[s] < t.N && t.keys[s] >= 0 {
			out = append(out, IndexCount{t.keys[s], t.vals[s]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// ColdTotal returns the executions recorded in the poison region plus
// the check-based cold counter.
func (t *Table) ColdTotal() int64 {
	sum := t.Cold
	if t.Kind == ArrayTable {
		for i := t.N; i < int64(len(t.arr)); i++ {
			sum, _ = satAdd(sum, t.arr[i])
		}
		return sum
	}
	for s := 0; s < HashSlots; s++ {
		if t.used[s] && (t.keys[s] >= t.N || t.keys[s] < 0) {
			sum, _ = satAdd(sum, t.vals[s])
		}
	}
	return sum
}

// IndexCount pairs a path number with its measured count.
type IndexCount struct {
	Index int64
	Count int64
}

func (t *Table) String() string {
	return fmt.Sprintf("table(kind=%d N=%d lost=%d cold=%d)", t.Kind, t.N, t.Lost, t.ColdTotal())
}

// TableState is the complete serializable state of a Table, exposed
// for the durable snapshot codec. For array tables Arr carries the
// counter array; for hash tables Slots/Keys/Vals carry the occupied
// slots (in slot order), so a restored table reproduces the original
// slot layout bit-for-bit.
type TableState struct {
	Kind      TableKind
	N         int64
	Size      int64
	Lost      int64
	Cold      int64
	Drops     int64
	Saturated bool

	Arr   []int64 // ArrayTable counters, dense
	Slots []int32 // HashTable occupied slot indices, ascending
	Keys  []int64 // HashTable keys, parallel to Slots
	Vals  []int64 // HashTable values, parallel to Slots
}

// State exports the table's complete state for serialization.
func (t *Table) State() TableState {
	st := TableState{
		Kind: t.Kind, N: t.N, Size: t.Size(),
		Lost: t.Lost, Cold: t.Cold, Drops: t.Drops,
		Saturated: t.Saturated,
	}
	if t.Kind == ArrayTable {
		st.Arr = append([]int64(nil), t.arr...)
		return st
	}
	for s := 0; s < HashSlots; s++ {
		if t.used[s] {
			st.Slots = append(st.Slots, int32(s))
			st.Keys = append(st.Keys, t.keys[s])
			st.Vals = append(st.Vals, t.vals[s])
		}
	}
	return st
}

// NewTableFromState rebuilds a table from serialized state. Hash slot
// contents are placed at their recorded slots directly (not re-probed),
// so the restored table is bit-identical to the saved one.
func NewTableFromState(st TableState) (*Table, error) {
	t := NewTable(st.Kind, st.N, st.Size)
	t.Lost, t.Cold, t.Drops = st.Lost, st.Cold, st.Drops
	t.Saturated = st.Saturated
	if st.Kind == ArrayTable {
		if int64(len(st.Arr)) != st.Size {
			return nil, fmt.Errorf("profile: array table state has %d counters, size %d", len(st.Arr), st.Size)
		}
		copy(t.arr, st.Arr)
		return t, nil
	}
	if len(st.Keys) != len(st.Slots) || len(st.Vals) != len(st.Slots) {
		return nil, fmt.Errorf("profile: hash table state slot/key/val lengths diverge: %d/%d/%d",
			len(st.Slots), len(st.Keys), len(st.Vals))
	}
	for i, s := range st.Slots {
		if s < 0 || s >= HashSlots {
			return nil, fmt.Errorf("profile: hash table state slot %d out of range", s)
		}
		if t.used[s] {
			return nil, fmt.Errorf("profile: hash table state repeats slot %d", s)
		}
		t.used[s] = true
		t.keys[s] = st.Keys[i]
		t.vals[s] = st.Vals[i]
	}
	return t, nil
}
