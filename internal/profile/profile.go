// Package profile holds the profile data structures shared between the
// VM, the instrumentation planner, and the evaluation: exact edge
// profiles, exact (ground truth) path profiles, and the runtime
// counter tables (array or 701-slot hash) that path instrumentation
// updates.
package profile

import (
	"fmt"
	"sort"

	"pathprof/internal/cfg"
)

// EdgeKey identifies a CFG edge by block indices.
type EdgeKey struct {
	Src, Dst int
}

// EdgeProfile is the exact edge profile of one routine.
type EdgeProfile struct {
	Func  string
	Calls int64
	Freq  map[EdgeKey]int64
}

// NewEdgeProfile returns an empty profile for a routine.
func NewEdgeProfile(name string) *EdgeProfile {
	return &EdgeProfile{Func: name, Freq: map[EdgeKey]int64{}}
}

// Bump increments the edge count.
func (ep *EdgeProfile) Bump(src, dst int) {
	ep.Freq[EdgeKey{src, dst}]++
}

// ApplyTo writes the profile onto a CFG whose block IDs match the
// profile's block indices.
func (ep *EdgeProfile) ApplyTo(g *cfg.Graph) {
	g.Calls = ep.Calls
	for _, e := range g.Edges {
		e.Freq = ep.Freq[EdgeKey{e.Src.ID, e.Dst.ID}]
	}
}

// Merge adds other's counts into ep (for combining multi-run profiles,
// as the paper does for multi-input benchmarks).
func (ep *EdgeProfile) Merge(other *EdgeProfile) {
	ep.Calls += other.Calls
	for k, v := range other.Freq {
		ep.Freq[k] += v
	}
}

// PathCount is one ground-truth path with its execution count.
type PathCount struct {
	Path  cfg.Path
	Count int64
}

// PathProfile is the exact Ball-Larus path profile of one routine:
// paths truncate at back edges and routine exits; calls suspend the
// caller's path.
type PathProfile struct {
	Func   string
	counts map[string]*PathCount
	order  []string
}

// NewPathProfile returns an empty path profile.
func NewPathProfile(name string) *PathProfile {
	return &PathProfile{Func: name, counts: map[string]*PathCount{}}
}

// Add records count executions of path p.
func (pp *PathProfile) Add(p cfg.Path, count int64) {
	key := p.String()
	pc := pp.counts[key]
	if pc == nil {
		cp := make(cfg.Path, len(p))
		copy(cp, p)
		pc = &PathCount{Path: cp}
		pp.counts[key] = pc
		pp.order = append(pp.order, key)
	}
	pc.Count += count
}

// Get returns the count of path p (0 if never taken).
func (pp *PathProfile) Get(p cfg.Path) int64 {
	if pc := pp.counts[p.String()]; pc != nil {
		return pc.Count
	}
	return 0
}

// Paths returns all recorded paths in first-seen order.
func (pp *PathProfile) Paths() []PathCount {
	out := make([]PathCount, 0, len(pp.order))
	for _, k := range pp.order {
		out = append(out, *pp.counts[k])
	}
	return out
}

// Distinct returns the number of distinct paths taken.
func (pp *PathProfile) Distinct() int { return len(pp.order) }

// Total returns the total number of path executions.
func (pp *PathProfile) Total() int64 {
	var sum int64
	for _, k := range pp.order {
		sum += pp.counts[k].Count
	}
	return sum
}

// Merge adds other's counts into pp.
func (pp *PathProfile) Merge(other *PathProfile) {
	for _, k := range other.order {
		pp.Add(other.counts[k].Path, other.counts[k].Count)
	}
}

// TableKind selects the counter storage.
type TableKind int

const (
	// ArrayTable indexes counters directly; the paper estimates a hash
	// update costs about five times an array update.
	ArrayTable TableKind = iota
	// HashTable uses 701 slots with three tries of secondary hashing
	// and a lost-path counter (Section 7.4).
	HashTable
)

// HashSlots and HashTries are the paper's hash table parameters.
const (
	HashSlots = 701
	HashTries = 3
)

// Table is a path-counter table for one routine.
type Table struct {
	Kind TableKind
	N    int64 // hot path numbers occupy [0, N)
	arr  []int64

	keys  []int64
	used  []bool
	vals  []int64
	Lost  int64 // hash conflicts beyond the secondary tries
	Cold  int64 // check-based poisoning diverts here
	Drops int64 // out-of-range indices (defensive; must stay 0)
}

// NewTable allocates a table: an array of size counters, or a hash
// table when kind is HashTable.
func NewTable(kind TableKind, n, size int64) *Table {
	t := &Table{Kind: kind, N: n}
	if kind == ArrayTable {
		t.arr = make([]int64, size)
	} else {
		t.keys = make([]int64, HashSlots)
		t.used = make([]bool, HashSlots)
		t.vals = make([]int64, HashSlots)
	}
	return t
}

// Inc increments the counter for index idx.
func (t *Table) Inc(idx int64) {
	if t.Kind == ArrayTable {
		if idx < 0 || idx >= int64(len(t.arr)) {
			t.Drops++
			return
		}
		t.arr[idx]++
		return
	}
	h := idx % HashSlots
	if h < 0 {
		h += HashSlots
	}
	step := idx % (HashSlots - 2)
	if step < 0 {
		step += HashSlots - 2
	}
	step++
	for try := 0; try < HashTries; try++ {
		s := (h + int64(try)*step) % HashSlots
		if !t.used[s] {
			t.used[s] = true
			t.keys[s] = idx
			t.vals[s]++
			return
		}
		if t.keys[s] == idx {
			t.vals[s]++
			return
		}
	}
	t.Lost++
}

// HotCounts returns the measured counts of hot path numbers (< N),
// sorted by number.
func (t *Table) HotCounts() []IndexCount {
	var out []IndexCount
	if t.Kind == ArrayTable {
		limit := t.N
		if int64(len(t.arr)) < limit {
			limit = int64(len(t.arr))
		}
		for i := int64(0); i < limit; i++ {
			if t.arr[i] > 0 {
				out = append(out, IndexCount{i, t.arr[i]})
			}
		}
		return out
	}
	for s := 0; s < HashSlots; s++ {
		if t.used[s] && t.keys[s] < t.N && t.keys[s] >= 0 {
			out = append(out, IndexCount{t.keys[s], t.vals[s]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// ColdTotal returns the executions recorded in the poison region plus
// the check-based cold counter.
func (t *Table) ColdTotal() int64 {
	sum := t.Cold
	if t.Kind == ArrayTable {
		for i := t.N; i < int64(len(t.arr)); i++ {
			sum += t.arr[i]
		}
		return sum
	}
	for s := 0; s < HashSlots; s++ {
		if t.used[s] && (t.keys[s] >= t.N || t.keys[s] < 0) {
			sum += t.vals[s]
		}
	}
	return sum
}

// IndexCount pairs a path number with its measured count.
type IndexCount struct {
	Index int64
	Count int64
}

func (t *Table) String() string {
	return fmt.Sprintf("table(kind=%d N=%d lost=%d cold=%d)", t.Kind, t.N, t.Lost, t.ColdTotal())
}
