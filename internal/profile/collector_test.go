package profile_test

import (
	"sync"
	"testing"

	"pathprof/internal/profile"
)

// replica replays one synthetic "run" into a shard: edge bumps through
// registered slots, path adds, and array+hash table increments. The
// stream is a function of the replica index so sequential-vs-sharded
// comparisons exercise varied (not just repeated) inputs.
func replica(sh *profile.Shard, i int) {
	ep := sh.EdgeProfile("f")
	s01 := ep.Slot(0, 1)
	s12 := ep.Slot(1, 2)
	for k := 0; k < 10+i; k++ {
		ep.BumpSlot(s01)
		if k%2 == 0 {
			ep.BumpSlot(s12)
		}
	}
	ep.Calls++

	pp := sh.PathProfile("f")
	pp.Add(path(1, 2, 3), int64(1+i))
	pp.Add(path(1, 4), 2)
	if i >= 3 {
		pp.Add(path(9, 9), 1) // first appears in a later replica
	}

	at := sh.Table("f", profile.ArrayTable, 4, 8)
	at.Inc(int64(i % 6)) // 4,5 land in the poison region
	ht := sh.Table("g", profile.HashTable, 64, 0)
	for k := 0; k < 8; k++ {
		ht.Inc(int64(k)) // identical key order per replica
	}
	ht.Inc(100) // cold (>= N)
}

// runPartitioned replays n replicas block-partitioned over par shards,
// mirroring vm.RunReplicated's assignment, and returns the merged
// snapshot.
func runPartitioned(n, par int) *profile.Snapshot {
	col := profile.NewCollector(par)
	for w := 0; w < par; w++ {
		sh := col.Shard(w)
		for i := w * n / par; i < (w+1)*n/par; i++ {
			replica(sh, i)
		}
	}
	return col.Merge()
}

// TestMergeDeterministicAcrossShardCounts is the core guarantee: the
// merged snapshot of a block-partitioned run is bit-identical to the
// sequential (one-shard) run at every worker count.
func TestMergeDeterministicAcrossShardCounts(t *testing.T) {
	const n = 12
	want := runPartitioned(n, 1)
	wantFP := want.Fingerprint()
	for _, par := range []int{2, 3, 4, 6, 12} {
		got := runPartitioned(n, par)
		if fp := got.Fingerprint(); fp != wantFP {
			t.Errorf("par=%d: fingerprint %#x != sequential %#x", par, fp, wantFP)
		}
	}

	// Spot-check the merged contents against hand sums.
	ep := want.Edges["f"]
	var e01 int64
	for i := 0; i < n; i++ {
		e01 += int64(10 + i)
	}
	if got := ep.Get(0, 1); got != e01 {
		t.Errorf("edge 0->1 = %d, want %d", got, e01)
	}
	if ep.Calls != n {
		t.Errorf("calls = %d, want %d", ep.Calls, n)
	}
	pp := want.Paths["f"]
	var p123 int64
	for i := 0; i < n; i++ {
		p123 += int64(1 + i)
	}
	if got := pp.Get(path(1, 2, 3)); got != p123 {
		t.Errorf("path(1,2,3) = %d, want %d", got, p123)
	}
	// First-seen order must match the sequential stream: (1,2,3) then
	// (1,4) then the late-appearing (9,9).
	order := pp.Paths()
	if len(order) != 3 || order[2].Path[0].ID != 9 {
		t.Errorf("first-seen order broken: %+v", order)
	}
	ht := want.Tables["g"]
	if ht.ColdTotal() != n || ht.Lost != 0 {
		t.Errorf("hash cold=%d lost=%d, want %d/0", ht.ColdTotal(), ht.Lost, n)
	}
	at := want.Tables["f"]
	if at.ColdTotal() != 4 { // replicas 4,5,10,11 hit indices 4,5
		t.Errorf("array cold = %d, want 4", at.ColdTotal())
	}
}

// TestCollectorConcurrent drives 8 goroutines through one Collector,
// one shard each — under -race this is the no-synchronization-needed
// proof — and checks the merged totals.
func TestCollectorConcurrent(t *testing.T) {
	const workers, perWorker = 8, 50
	col := profile.NewCollector(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := col.Shard(w)
			ep := sh.EdgeProfile("f")
			slot := ep.Slot(0, 1)
			pp := sh.PathProfile("f")
			tab := sh.Table("f", profile.HashTable, 16, 0)
			for i := 0; i < perWorker; i++ {
				ep.BumpSlot(slot)
				pp.Add(path(1, 2), 1)
				tab.Inc(int64(i % 4))
			}
		}(w)
	}
	wg.Wait()
	snap := col.Merge()
	if got := snap.Edges["f"].Get(0, 1); got != workers*perWorker {
		t.Errorf("edge total = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Paths["f"].Total(); got != workers*perWorker {
		t.Errorf("path total = %d, want %d", got, workers*perWorker)
	}
	var hot int64
	for _, ic := range snap.Tables["f"].HotCounts() {
		hot += ic.Count
	}
	if hot != workers*perWorker {
		t.Errorf("table total = %d, want %d", hot, workers*perWorker)
	}
	// Merge again after more recording: shards must stay usable.
	col.Shard(0).EdgeProfile("f").Bump(0, 1)
	if got := col.Merge().Edges["f"].Get(0, 1); got != workers*perWorker+1 {
		t.Errorf("re-merge total = %d, want %d", got, workers*perWorker+1)
	}
}

// TestShardFastPathsZeroAllocs locks in that recording into a shard is
// exactly the single-threaded fast path: no allocation per edge bump,
// per repeat path add, or per table increment.
func TestShardFastPathsZeroAllocs(t *testing.T) {
	col := profile.NewCollector(2)
	sh := col.Shard(1)
	ep := sh.EdgeProfile("f")
	slot := ep.Slot(3, 4)
	pp := sh.PathProfile("f")
	p := path(1, 2, 3, 4)
	pp.Add(p, 1)
	tab := sh.Table("f", profile.ArrayTable, 8, 16)

	if a := testing.AllocsPerRun(100, func() { ep.BumpSlot(slot) }); a != 0 {
		t.Errorf("shard BumpSlot allocates %.1f times, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { pp.Add(p, 1) }); a != 0 {
		t.Errorf("shard repeat Add allocates %.1f times, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { tab.Inc(5) }); a != 0 {
		t.Errorf("shard table Inc allocates %.1f times, want 0", a)
	}
}

func TestTableMergeMixedAndOutOfRange(t *testing.T) {
	a := profile.NewTable(profile.ArrayTable, 4, 4)
	b := profile.NewTable(profile.ArrayTable, 4, 8)
	b.Inc(2)
	b.Inc(6) // in b's array but beyond a's
	b.Cold = 3
	a.Merge(b)
	if a.ColdTotal() != 3 || a.Drops != 1 {
		t.Errorf("cold=%d drops=%d, want 3/1", a.ColdTotal(), a.Drops)
	}
	hot := a.HotCounts()
	if len(hot) != 1 || hot[0].Index != 2 || hot[0].Count != 1 {
		t.Errorf("hot = %+v", hot)
	}
}

func BenchmarkCollectorMerge(b *testing.B) {
	col := profile.NewCollector(8)
	for w := 0; w < 8; w++ {
		for i := 0; i < 4; i++ {
			replica(col.Shard(w), w*4+i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Merge()
	}
}
