package profile_test

import (
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/profile"
)

// path builds a synthetic path over DAG edge IDs; the trie keys on
// edge identity only, so bare edges suffice.
func path(ids ...int) cfg.Path {
	p := make(cfg.Path, len(ids))
	for i, id := range ids {
		p[i] = &cfg.DAGEdge{ID: id}
	}
	return p
}

func TestPathProfileMerge(t *testing.T) {
	a := profile.NewPathProfile("f")
	a.Add(path(1, 2, 3), 10)
	a.Add(path(1, 2, 4), 20)

	b := profile.NewPathProfile("f")
	b.Add(path(1, 2, 4), 5) // overlaps a
	b.Add(path(7), 9)       // new to a
	b.Add(path(1, 2), 1)    // proper prefix of an existing path

	a.Merge(b)
	if got := a.Get(path(1, 2, 3)); got != 10 {
		t.Errorf("untouched path = %d, want 10", got)
	}
	if got := a.Get(path(1, 2, 4)); got != 25 {
		t.Errorf("overlapping path = %d, want 25", got)
	}
	if got := a.Get(path(7)); got != 9 {
		t.Errorf("new path = %d, want 9", got)
	}
	if got := a.Get(path(1, 2)); got != 1 {
		t.Errorf("prefix path = %d, want 1 (must be distinct from its extensions)", got)
	}
	if a.Distinct() != 4 || a.Total() != 45 {
		t.Errorf("distinct=%d total=%d, want 4/45", a.Distinct(), a.Total())
	}
	// Merge must not alias the source's path slices.
	if b.Get(path(7)) != 9 || b.Distinct() != 3 {
		t.Errorf("merge mutated source: %+v", b)
	}
}

func TestHashTableColdTotal(t *testing.T) {
	tab := profile.NewTable(profile.HashTable, 4, 0)
	tab.Inc(0) // hot
	tab.Inc(3) // hot
	tab.Inc(3)
	tab.Inc(10) // cold: >= N
	tab.Inc(10)
	tab.Inc(10)
	tab.Inc(-2) // cold: negative (poison region)
	tab.Cold += 7

	if got := tab.ColdTotal(); got != 3+1+7 {
		t.Errorf("ColdTotal = %d, want 11", got)
	}
	hot := tab.HotCounts()
	if len(hot) != 2 || hot[0].Index != 0 || hot[0].Count != 1 || hot[1].Index != 3 || hot[1].Count != 2 {
		t.Errorf("HotCounts = %+v", hot)
	}
	if tab.Lost != 0 || tab.Drops != 0 {
		t.Errorf("lost=%d drops=%d, want 0/0", tab.Lost, tab.Drops)
	}
}

// TestPathProfileRepeatAddZeroAllocs locks in the interning win:
// recording an already-seen path must not allocate (the seed built a
// string key per Add).
func TestPathProfileRepeatAddZeroAllocs(t *testing.T) {
	pp := profile.NewPathProfile("f")
	p := path(1, 2, 3, 4, 5, 6, 7, 8)
	pp.Add(p, 1)
	allocs := testing.AllocsPerRun(100, func() { pp.Add(p, 1) })
	if allocs != 0 {
		t.Errorf("repeat Add allocates %.1f times, want 0", allocs)
	}
}

// TestEdgeProfileBumpSlotZeroAllocs locks in the dense-counter win on
// the VM's per-transition hot path.
func TestEdgeProfileBumpSlotZeroAllocs(t *testing.T) {
	ep := profile.NewEdgeProfile("f")
	slot := ep.Slot(1, 2)
	allocs := testing.AllocsPerRun(100, func() { ep.BumpSlot(slot) })
	if allocs != 0 {
		t.Errorf("BumpSlot allocates %.1f times, want 0", allocs)
	}
	if ep.Get(1, 2) < 100 {
		t.Errorf("counts lost: %d", ep.Get(1, 2))
	}
}

func BenchmarkPathProfileAddRepeat(b *testing.B) {
	pp := profile.NewPathProfile("f")
	p := path(1, 2, 3, 4, 5, 6, 7, 8)
	pp.Add(p, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.Add(p, 1)
	}
}

func BenchmarkEdgeProfileBumpSlot(b *testing.B) {
	ep := profile.NewEdgeProfile("f")
	slot := ep.Slot(1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep.BumpSlot(slot)
	}
}

func BenchmarkHashTableInc(b *testing.B) {
	tab := profile.NewTable(profile.HashTable, 64, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Inc(int64(i & 63))
	}
}
