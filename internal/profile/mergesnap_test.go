package profile_test

import (
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/profile"
)

func mkSnap(fn string, edge int64, pathID int, count int64) *profile.Snapshot {
	s := profile.NewSnapshot()
	ep := profile.NewEdgeProfile(fn)
	ep.Add(0, 1, edge)
	ep.Calls = 1
	s.Edges[fn] = ep
	pp := profile.NewPathProfile(fn)
	pp.Add(cfg.Path{&cfg.DAGEdge{ID: pathID}}, count)
	s.Paths[fn] = pp
	tab := profile.NewTable(profile.ArrayTable, 4, 12)
	tab.Add(int64(pathID%4), count)
	s.Tables[fn] = tab
	return s
}

// TestMergeSnapshotDeterministicFold: folding the same sequence twice
// gives bit-identical aggregates, the fold accumulates counts, and
// sources are left untouched.
func TestMergeSnapshotDeterministicFold(t *testing.T) {
	seq := []*profile.Snapshot{
		mkSnap("b", 5, 1, 10),
		mkSnap("a", 3, 2, 7),
		mkSnap("b", 2, 1, 1),
	}
	fold := func() *profile.Snapshot {
		agg := profile.NewSnapshot()
		for _, s := range seq {
			agg.MergeSnapshot(s)
		}
		return agg
	}
	a, b := fold(), fold()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same fold order produced different fingerprints")
	}
	if got := a.Edges["b"].Get(0, 1); got != 7 {
		t.Errorf("edge count = %d, want 7", got)
	}
	if got := a.Paths["b"].Total(); got != 11 {
		t.Errorf("path total = %d, want 11", got)
	}
	if got := seq[0].Edges["b"].Get(0, 1); got != 5 {
		t.Errorf("source snapshot mutated: %d", got)
	}

	// Disjoint-routine folds commute bit-identically.
	x := profile.NewSnapshot()
	x.MergeSnapshot(seq[0])
	x.MergeSnapshot(seq[1])
	y := profile.NewSnapshot()
	y.MergeSnapshot(seq[1])
	y.MergeSnapshot(seq[0])
	if x.Fingerprint() != y.Fingerprint() {
		t.Error("disjoint-routine fold order changed the fingerprint")
	}
}

// TestMergeSnapshotMatchesShardFold: merging per-shard snapshots
// through MergeSnapshot in shard-index order equals the collector's
// own Merge — they are the same fold.
func TestMergeSnapshotMatchesShardFold(t *testing.T) {
	c := profile.NewCollector(3)
	for i := 0; i < 3; i++ {
		sh := c.Shard(i)
		ep := sh.EdgeProfile("f")
		ep.Add(0, 1, int64(i+1)*5)
		sh.PathProfile("f").Add(cfg.Path{&cfg.DAGEdge{ID: i}}, int64(i+1))
	}
	want := c.Merge().Fingerprint()

	agg := profile.NewSnapshot()
	for i := 0; i < 3; i++ {
		one := profile.NewCollector(1)
		sh := one.Shard(0)
		ep := sh.EdgeProfile("f")
		ep.Add(0, 1, int64(i+1)*5)
		sh.PathProfile("f").Add(cfg.Path{&cfg.DAGEdge{ID: i}}, int64(i+1))
		agg.MergeSnapshot(one.Merge())
	}
	if agg.Fingerprint() != want {
		t.Error("MergeSnapshot fold diverged from the collector shard fold")
	}
}
