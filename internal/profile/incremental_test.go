package profile

import (
	"math/rand"
	"reflect"
	"testing"

	"pathprof/internal/cfg"
)

// fakeEdges builds n distinct DAG edges (only IDs matter to the trie).
func fakeEdges(n int) []*cfg.DAGEdge {
	out := make([]*cfg.DAGEdge, n)
	for i := range out {
		out[i] = &cfg.DAGEdge{ID: i}
	}
	return out
}

// TestStepAddAtMatchesAdd drives random path streams through the
// incremental cursor API and the one-shot Add, asserting identical
// interned order, counts, and fingerprints.
func TestStepAddAtMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	edges := fakeEdges(12)
	var stream []cfg.Path
	for i := 0; i < 500; i++ {
		p := make(cfg.Path, rng.Intn(6))
		for j := range p {
			p[j] = edges[rng.Intn(len(edges))]
		}
		stream = append(stream, p)
	}

	batch := NewPathProfile("f")
	inc := NewPathProfile("f")
	for _, p := range stream {
		batch.Add(p, 1)
		cur := inc.Root()
		for _, e := range p {
			cur = inc.Step(cur, int32(e.ID))
		}
		inc.AddAt(cur, p, 1)
	}
	if !reflect.DeepEqual(batch.Paths(), inc.Paths()) {
		t.Fatal("incremental recording diverges from Add")
	}
	a := (&Snapshot{Paths: map[string]*PathProfile{"f": batch}}).Fingerprint()
	b := (&Snapshot{Paths: map[string]*PathProfile{"f": inc}}).Fingerprint()
	if a != b {
		t.Fatalf("fingerprints diverge: %x vs %x", a, b)
	}
}

// TestStepInterleavedSuspension models suspended frames (calls): two
// paths grow their trie cursors interleaved, so trie nodes are created
// in a different order than Add would create them — interned path IDs
// and fingerprints must still match, because interning happens at
// completion.
func TestStepInterleavedSuspension(t *testing.T) {
	edges := fakeEdges(8)
	pa := cfg.Path{edges[0], edges[1], edges[2]}
	pb := cfg.Path{edges[3], edges[4]}

	inc := NewPathProfile("f")
	ca, cb := inc.Root(), inc.Root()
	// Interleave the walks; complete b first, then a.
	ca = inc.Step(ca, int32(pa[0].ID))
	cb = inc.Step(cb, int32(pb[0].ID))
	ca = inc.Step(ca, int32(pa[1].ID))
	cb = inc.Step(cb, int32(pb[1].ID))
	ca = inc.Step(ca, int32(pa[2].ID))
	inc.AddAt(cb, pb, 1)
	inc.AddAt(ca, pa, 1)

	batch := NewPathProfile("f")
	batch.Add(pb, 1)
	batch.Add(pa, 1)

	if !reflect.DeepEqual(batch.Paths(), inc.Paths()) {
		t.Fatalf("interleaved interning diverges:\n%v\nvs\n%v", inc.Paths(), batch.Paths())
	}
	a := (&Snapshot{Paths: map[string]*PathProfile{"f": batch}}).Fingerprint()
	b := (&Snapshot{Paths: map[string]*PathProfile{"f": inc}}).Fingerprint()
	if a != b {
		t.Fatalf("fingerprints diverge: %x vs %x", a, b)
	}
}

// TestStepAllocFree: after warmup the cursor walk performs zero
// allocations per recorded path.
func TestStepAllocFree(t *testing.T) {
	edges := fakeEdges(4)
	p := cfg.Path{edges[0], edges[1], edges[2], edges[3]}
	pp := NewPathProfile("f")
	record := func() {
		cur := pp.Root()
		for _, e := range p {
			cur = pp.Step(cur, int32(e.ID))
		}
		pp.AddAt(cur, p, 1)
	}
	record() // warm: grow nodes, intern
	if allocs := testing.AllocsPerRun(100, record); allocs != 0 {
		t.Fatalf("steady-state incremental recording allocates %.1f times per path", allocs)
	}
}

// TestIncArrayMatchesInc pins IncArray to Inc's semantics across the
// in-range, saturating, and out-of-range cases.
func TestIncArrayMatchesInc(t *testing.T) {
	mk := func() (*Table, *Table) {
		a := NewTable(ArrayTable, 4, 6)
		b := NewTable(ArrayTable, 4, 6)
		// Pre-saturate one slot to exercise the clamp.
		a.Add(2, CounterMax)
		b.Add(2, CounterMax)
		return a, b
	}
	a, b := mk()
	idxs := []int64{0, 1, 2, 2, 5, -1, 6, 3, 0}
	for _, idx := range idxs {
		a.Inc(idx)
		b.IncArray(idx)
	}
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Fatalf("IncArray state diverges from Inc:\n%+v\nvs\n%+v", a.State(), b.State())
	}
	if !b.Saturated {
		t.Fatal("saturating increment did not set Saturated")
	}
	if b.Drops != 2 {
		t.Fatalf("out-of-range increments recorded %d drops, want 2", b.Drops)
	}
}
