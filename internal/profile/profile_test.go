package profile_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/profile"
)

func TestEdgeProfileApplyAndMerge(t *testing.T) {
	g := cfgtest.Diamond()
	ep := profile.NewEdgeProfile("d")
	for i := 0; i < 3; i++ {
		ep.Bump(1, 2) // a -> b
	}
	ep.Bump(1, 3) // a -> c
	ep.Calls = 4
	ep.ApplyTo(g)
	byName := map[string]*cfg.Block{}
	for _, b := range g.Blocks {
		byName[b.Name] = b
	}
	if f := g.FindEdge(byName["a"], byName["b"]).Freq; f != 3 {
		t.Errorf("a->b freq = %d, want 3", f)
	}
	if g.Calls != 4 {
		t.Errorf("calls = %d", g.Calls)
	}

	other := profile.NewEdgeProfile("d")
	other.Bump(1, 2)
	other.Calls = 1
	ep.Merge(other)
	if ep.Get(1, 2) != 4 || ep.Calls != 5 {
		t.Errorf("merge failed: %+v", ep)
	}
}

func TestPathProfileAccumulates(t *testing.T) {
	g := cfgtest.Diamond()
	d, err := cfg.BuildDAG(g)
	if err != nil {
		t.Fatal(err)
	}
	paths := d.EnumeratePaths(nil, -1)
	pp := profile.NewPathProfile("d")
	pp.Add(paths[0], 2)
	pp.Add(paths[1], 5)
	pp.Add(paths[0], 1)
	if pp.Distinct() != 2 || pp.Total() != 8 {
		t.Errorf("distinct=%d total=%d", pp.Distinct(), pp.Total())
	}
	if pp.Get(paths[0]) != 3 || pp.Get(paths[1]) != 5 {
		t.Error("counts wrong")
	}
	// First-seen order is preserved.
	got := pp.Paths()
	if got[0].Path.String() != paths[0].String() {
		t.Error("order not preserved")
	}

	other := profile.NewPathProfile("d")
	other.Add(paths[1], 10)
	pp.Merge(other)
	if pp.Get(paths[1]) != 15 {
		t.Error("merge failed")
	}
}

func TestArrayTable(t *testing.T) {
	tab := profile.NewTable(profile.ArrayTable, 4, 8)
	tab.Inc(0)
	tab.Inc(0)
	tab.Inc(3)
	tab.Inc(5) // poison region
	tab.Inc(7) // poison region
	hot := tab.HotCounts()
	if len(hot) != 2 || hot[0].Index != 0 || hot[0].Count != 2 || hot[1].Index != 3 {
		t.Errorf("hot = %v", hot)
	}
	if tab.ColdTotal() != 2 {
		t.Errorf("cold = %d, want 2", tab.ColdTotal())
	}
	tab.Inc(-1)
	tab.Inc(8)
	if tab.Drops != 2 {
		t.Errorf("drops = %d, want 2", tab.Drops)
	}
}

func TestHashTableBasics(t *testing.T) {
	tab := profile.NewTable(profile.HashTable, 10000, 0)
	for i := int64(0); i < 100; i++ {
		tab.Inc(i * 37)
		tab.Inc(i * 37)
	}
	hot := tab.HotCounts()
	if len(hot) != 100 {
		t.Fatalf("hot entries = %d, want 100", len(hot))
	}
	for _, ic := range hot {
		if ic.Count != 2 {
			t.Fatalf("count at %d = %d, want 2", ic.Index, ic.Count)
		}
	}
	if tab.Lost != 0 {
		t.Errorf("lost = %d", tab.Lost)
	}
	// Poisoned keys (>= N) count as cold.
	tab.Inc(10001)
	if tab.ColdTotal() != 1 {
		t.Errorf("cold = %d", tab.ColdTotal())
	}
}

func TestHashTableLosesUnderPressure(t *testing.T) {
	// More distinct keys than 701 slots with 3 tries must lose some,
	// like crafty in the paper (7% of flow lost).
	tab := profile.NewTable(profile.HashTable, 1<<40, 0)
	const keys = 3000
	for i := int64(0); i < keys; i++ {
		tab.Inc(i*104729 + 11)
	}
	stored := int64(len(tab.HotCounts()))
	if stored > profile.HashSlots {
		t.Fatalf("stored %d > slots", stored)
	}
	if tab.Lost == 0 {
		t.Error("expected lost paths under pressure")
	}
	if stored+tab.Lost != keys {
		t.Errorf("stored %d + lost %d != %d", stored, tab.Lost, keys)
	}
}

func TestHashTableRetriesBeforeLosing(t *testing.T) {
	// Keys that collide on the primary slot must still be stored while
	// secondary probes find room.
	tab := profile.NewTable(profile.HashTable, 1<<40, 0)
	tab.Inc(1)
	tab.Inc(1 + profile.HashSlots)   // same primary slot, try 2
	tab.Inc(1 + 2*profile.HashSlots) // try 3
	if got := len(tab.HotCounts()); got != 3 {
		t.Errorf("stored %d of 3 colliding keys", got)
	}
	if tab.Lost != 0 {
		t.Errorf("lost = %d, want 0", tab.Lost)
	}
}

func TestHashTableConservesCountsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := profile.NewTable(profile.HashTable, 1<<40, 0)
		want := map[int64]int64{}
		var total int64
		for i := 0; i < 500; i++ {
			k := int64(rng.Intn(2000))
			tab.Inc(k)
			want[k]++
			total++
		}
		var stored int64
		for _, ic := range tab.HotCounts() {
			if ic.Count > want[ic.Index] {
				return false // phantom counts
			}
			stored += ic.Count
		}
		return stored+tab.Lost == total
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNegativeKeysHashSafely(t *testing.T) {
	tab := profile.NewTable(profile.HashTable, 100, 0)
	tab.Inc(-5)
	tab.Inc(-701)
	tab.Inc(-5)
	if tab.ColdTotal() != 3 {
		t.Errorf("negative keys cold total = %d, want 3", tab.ColdTotal())
	}
}
