// Sharded concurrent collection. A Collector owns one Shard per
// worker; each worker records into its private shard with the ordinary
// single-threaded fast paths (EdgeProfile.BumpSlot, PathProfile.Add,
// Table.Inc — no atomics, no locks), and Merge folds the shards into
// one snapshot off the hot path. This is how the profiling runtime
// scales across cores without slowing the per-event operations the
// paper's overhead argument depends on.
//
// Determinism: Merge visits shards in index order and routines in name
// order, so the same shard contents always produce the same snapshot.
// When workers replay identical replicas of a run partitioned in
// blocks over shard indices (vm.RunReplicated's contract), the merged
// snapshot is bit-identical to a sequential run at any worker count:
// edge counts are sums, path interning preserves first-seen order
// under block-ordered merging, and hash tables with identical
// per-shard layouts merge by slot replay into that same layout.
package profile

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Shard is one worker's private profile state: per-routine edge and
// path profiles plus counter tables, created on demand. A shard is NOT
// safe for concurrent use — that is the point: exactly one worker owns
// it, so every counter bump stays a plain memory write. The containers
// themselves live in separate heap allocations; the trailing pad keeps
// adjacent Shard headers in the Collector's backing array from
// sharing a cache line.
type Shard struct {
	edges  map[string]*EdgeProfile
	paths  map[string]*PathProfile
	tables map[string]*Table

	_ [64]byte // cache-line pad between adjacent shards
}

// EdgeProfile returns the shard's edge profile for routine fn,
// creating it on first use. Successive runs against the same shard
// accumulate into the same profile (Slot registration is idempotent).
func (s *Shard) EdgeProfile(fn string) *EdgeProfile {
	if ep, ok := s.edges[fn]; ok {
		return ep
	}
	if s.edges == nil {
		s.edges = map[string]*EdgeProfile{}
	}
	ep := NewEdgeProfile(fn)
	s.edges[fn] = ep
	return ep
}

// PathProfile returns the shard's path profile for routine fn,
// creating it on first use.
func (s *Shard) PathProfile(fn string) *PathProfile {
	if pp, ok := s.paths[fn]; ok {
		return pp
	}
	if s.paths == nil {
		s.paths = map[string]*PathProfile{}
	}
	pp := NewPathProfile(fn)
	s.paths[fn] = pp
	return pp
}

// Table returns the shard's counter table for routine fn, creating it
// with the given shape on first use. Callers must request the same
// shape on every use (replicated runs of one program always do); the
// first shape wins.
func (s *Shard) Table(fn string, kind TableKind, n, size int64) *Table {
	if t, ok := s.tables[fn]; ok {
		return t
	}
	if s.tables == nil {
		s.tables = map[string]*Table{}
	}
	t := NewTable(kind, n, size)
	s.tables[fn] = t
	return t
}

// Collector owns the per-worker shards of a concurrent collection run.
// Hand Shard(i) to worker i, let each worker record without
// synchronization, and call Merge after the workers finish.
type Collector struct {
	shards []Shard
}

// NewCollector returns a collector with n shards (minimum 1).
func NewCollector(n int) *Collector {
	if n < 1 {
		n = 1
	}
	return &Collector{shards: make([]Shard, n)}
}

// NumShards returns the shard count.
func (c *Collector) NumShards() int { return len(c.shards) }

// Shard returns shard i. The caller must ensure at most one goroutine
// uses a given shard at a time.
func (c *Collector) Shard(i int) *Shard { return &c.shards[i] }

// Snapshot is the merged view of a collection run: per-routine edge
// profiles, path profiles, and counter tables.
type Snapshot struct {
	Edges  map[string]*EdgeProfile
	Paths  map[string]*PathProfile
	Tables map[string]*Table
}

// SaturatedRoutines returns the sorted names of routines whose merged
// counters clamped at CounterMax in any component (edge profile, path
// profile, or counter table). Empty means no overflow anywhere.
func (s *Snapshot) SaturatedRoutines() []string {
	set := map[string]bool{}
	for fn, ep := range s.Edges { //ppp:allow(mapiter) — collected into a sorted slice below
		if ep.Saturated {
			set[fn] = true
		}
	}
	for fn, pp := range s.Paths { //ppp:allow(mapiter) — collected into a sorted slice below
		if pp.Saturated {
			set[fn] = true
		}
	}
	for fn, t := range s.Tables { //ppp:allow(mapiter) — collected into a sorted slice below
		if t.Saturated {
			set[fn] = true
		}
	}
	return sortedKeys(set)
}

// Overflowed reports whether any routine saturated.
func (s *Snapshot) Overflowed() bool { return len(s.SaturatedRoutines()) > 0 }

// Merge folds every shard into a fresh snapshot, deterministically:
// shards in index order, routines in name order. The shards are not
// modified and may be merged again after further recording.
func (c *Collector) Merge() *Snapshot {
	return c.MergeShards(nil)
}

// MergeShards folds the selected shards into a fresh snapshot. A nil
// include selects every shard; otherwise shard i participates iff
// include[i]. Quarantine (vm.RunReplicated's guarded mode) merges only
// the surviving shards this way, and the result is identical to a
// collector that never held the excluded shards: merge order over the
// included shards is unchanged.
func (c *Collector) MergeShards(include []bool) *Snapshot {
	snap := &Snapshot{
		Edges:  map[string]*EdgeProfile{},
		Paths:  map[string]*PathProfile{},
		Tables: map[string]*Table{},
	}
	for i := range c.shards {
		if include != nil && (i >= len(include) || !include[i]) {
			continue
		}
		sh := &c.shards[i]
		for _, fn := range sortedKeys(sh.edges) {
			dst := snap.Edges[fn]
			if dst == nil {
				dst = NewEdgeProfile(fn)
				snap.Edges[fn] = dst
			}
			dst.Merge(sh.edges[fn])
		}
		for _, fn := range sortedKeys(sh.paths) {
			dst := snap.Paths[fn]
			if dst == nil {
				dst = NewPathProfile(fn)
				snap.Paths[fn] = dst
			}
			dst.Merge(sh.paths[fn])
		}
		for _, fn := range sortedKeys(sh.tables) {
			src := sh.tables[fn]
			dst := snap.Tables[fn]
			if dst == nil {
				dst = NewTable(src.Kind, src.N, src.Size())
				snap.Tables[fn] = dst
			}
			dst.Merge(src)
		}
	}
	return snap
}

// Fingerprint hashes the snapshot's observable state — edge
// frequencies, path counts in first-seen order, table contents
// including hash slot layout and lost/cold/drop totals — into one
// value. Two snapshots with equal fingerprints are bit-identical for
// every consumer in this repository; the determinism tests and the
// bench throughput report compare runs through it.
func (s *Snapshot) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	ws := func(str string) {
		wi(int64(len(str)))
		h.Write([]byte(str))
	}
	for _, fn := range sortedKeys(s.Edges) {
		ws("E")
		ws(fn)
		ep := s.Edges[fn]
		wi(ep.Calls)
		if ep.Saturated {
			// Emitted only on overflow so zero-fault fingerprints stay
			// byte-compatible across releases.
			ws("sat")
		}
		freq := ep.Freq()
		for _, k := range sortedEdgeKeys(freq) {
			wi(int64(k.Src))
			wi(int64(k.Dst))
			wi(freq[k])
		}
	}
	for _, fn := range sortedKeys(s.Paths) {
		ws("P")
		ws(fn)
		pp := s.Paths[fn]
		if pp.Saturated {
			ws("sat")
		}
		for i := range pp.paths {
			pc := &pp.paths[i]
			wi(int64(len(pc.Path)))
			for _, e := range pc.Path {
				wi(int64(e.ID))
			}
			wi(pc.Count)
		}
	}
	for _, fn := range sortedKeys(s.Tables) {
		ws("T")
		ws(fn)
		t := s.Tables[fn]
		wi(int64(t.Kind))
		wi(t.N)
		wi(t.Lost)
		wi(t.Cold)
		wi(t.Drops)
		if t.Saturated {
			ws("sat")
		}
		if t.Kind == ArrayTable {
			for i, v := range t.arr {
				if v != 0 {
					wi(int64(i))
					wi(v)
				}
			}
			continue
		}
		for slot := 0; slot < HashSlots; slot++ {
			if t.used[slot] {
				wi(int64(slot))
				wi(t.keys[slot])
				wi(t.vals[slot])
			}
		}
	}
	return h.Sum64()
}

// sortedKeys returns m's keys sorted, for deterministic merge order.
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
