package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The text profile format stores edge profiles per routine:
//
//	edges <func> calls=<n>
//	<srcBlock> <dstBlock> <freq>
//	...
//	end
//
// Block numbers are IR block indices, which are stable across
// recompilations of the same source with the same options (the
// compiler is deterministic). This supports the classic two-run
// profile-guided workflow: collect a profile in one run, feed it to
// the instrumentation planner in another.

// WriteEdgeProfiles serializes profiles (sorted by routine name) to w.
func WriteEdgeProfiles(w io.Writer, profiles map[string]*EdgeProfile) error {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ep := profiles[n]
		if _, err := fmt.Fprintf(w, "edges %s calls=%d\n", n, ep.Calls); err != nil {
			return err
		}
		freq := ep.Freq()
		keys := make([]EdgeKey, 0, len(freq))
		for k := range freq {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Src != keys[j].Src {
				return keys[i].Src < keys[j].Src
			}
			return keys[i].Dst < keys[j].Dst
		})
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "%d %d %d\n", k.Src, k.Dst, freq[k]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "end"); err != nil {
			return err
		}
	}
	return nil
}

// ReadEdgeProfiles parses the text format back into per-routine
// profiles.
func ReadEdgeProfiles(r io.Reader) (map[string]*EdgeProfile, error) {
	out := map[string]*EdgeProfile{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cur *EdgeProfile
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(text, "edges "):
			var name string
			var calls int64
			if _, err := fmt.Sscanf(text, "edges %s calls=%d", &name, &calls); err != nil {
				return nil, fmt.Errorf("profile line %d: bad header %q", line, text)
			}
			if _, dup := out[name]; dup {
				return nil, fmt.Errorf("profile line %d: duplicate routine %q", line, name)
			}
			cur = NewEdgeProfile(name)
			cur.Calls = calls
			out[name] = cur
		case text == "end":
			if cur == nil {
				return nil, fmt.Errorf("profile line %d: end without header", line)
			}
			cur = nil
		default:
			if cur == nil {
				return nil, fmt.Errorf("profile line %d: edge outside routine", line)
			}
			var src, dst int
			var freq int64
			if _, err := fmt.Sscanf(text, "%d %d %d", &src, &dst, &freq); err != nil {
				return nil, fmt.Errorf("profile line %d: bad edge %q", line, text)
			}
			if freq < 0 {
				return nil, fmt.Errorf("profile line %d: negative frequency", line)
			}
			cur.Add(src, dst, freq)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("profile: unterminated routine %q", cur.Func)
	}
	return out, nil
}
