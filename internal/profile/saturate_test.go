package profile_test

import (
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/profile"
)

// TestEdgeProfileSaturates drives the sparse and dense edge counters to
// CounterMax and checks they clamp instead of wrapping.
func TestEdgeProfileSaturates(t *testing.T) {
	ep := profile.NewEdgeProfile("f")
	ep.Add(0, 1, profile.CounterMax-1)
	if ep.Saturated {
		t.Fatal("saturated below the ceiling")
	}
	ep.Add(0, 1, 5)
	if !ep.Saturated {
		t.Fatal("no saturation flag after clamping add")
	}
	if got := ep.Get(0, 1); got != profile.CounterMax {
		t.Errorf("Get = %d, want CounterMax", got)
	}

	dense := profile.NewEdgeProfile("g")
	s := dense.Slot(2, 3)
	dense.BumpSlot(s)
	// Push the combined dense+sparse view past the ceiling: the
	// materialized views must clamp rather than wrap negative.
	dense.Add(2, 3, profile.CounterMax-1)
	if got := dense.Get(2, 3); got != profile.CounterMax {
		t.Errorf("combined Get = %d, want CounterMax", got)
	}
	if got := dense.Freq()[profile.EdgeKey{Src: 2, Dst: 3}]; got != profile.CounterMax {
		t.Errorf("combined Freq = %d, want CounterMax", got)
	}
}

// TestEdgeProfileMergeSaturationOrderIndependent merges saturating
// profiles in both orders; saturating addition of non-negative values
// is commutative, so the results must agree exactly.
func TestEdgeProfileMergeSaturationOrderIndependent(t *testing.T) {
	mk := func(v int64) *profile.EdgeProfile {
		ep := profile.NewEdgeProfile("f")
		ep.Calls = 1
		ep.Add(0, 1, v)
		return ep
	}
	a1, b1 := mk(profile.CounterMax-10), mk(100)
	a1.Merge(b1)
	b2, a2 := mk(100), mk(profile.CounterMax-10)
	b2.Merge(a2)
	if x, y := a1.Get(0, 1), b2.Get(0, 1); x != y || x != profile.CounterMax {
		t.Errorf("merge order changed saturated count: %d vs %d", x, y)
	}
	if !a1.Saturated || !b2.Saturated {
		t.Error("saturation flag lost in merge")
	}
}

// TestPathProfileSaturates clamps a path count at the ceiling.
func TestPathProfileSaturates(t *testing.T) {
	g := cfg.New("f")
	a, b := g.AddBlock("a"), g.AddBlock("b")
	g.Entry, g.Exit = a, b
	cfgtest.Connect(g, a, b)
	d, err := cfg.BuildDAG(g)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.Path{d.Edges[0]}

	pp := profile.NewPathProfile("f")
	pp.Add(p, profile.CounterMax-2)
	pp.Add(p, profile.CounterMax-2)
	if !pp.Saturated {
		t.Fatal("no saturation flag")
	}
	if got := pp.Get(p); got != profile.CounterMax {
		t.Errorf("count = %d, want CounterMax", got)
	}
	if got := pp.Total(); got != profile.CounterMax {
		t.Errorf("total = %d, want CounterMax", got)
	}

	other := profile.NewPathProfile("f")
	other.Add(p, 1)
	other.Merge(pp)
	if !other.Saturated || other.Get(p) != profile.CounterMax {
		t.Errorf("merge dropped saturation: sat=%v count=%d", other.Saturated, other.Get(p))
	}
}

// TestTableSaturates clamps array counters, hash values, and the
// Lost/Cold/Drops accounting at the ceiling.
func TestTableSaturates(t *testing.T) {
	at := profile.NewTable(profile.ArrayTable, 4, 8)
	at.Add(2, profile.CounterMax-1)
	at.Add(2, 3)
	if !at.Saturated {
		t.Fatal("array table: no saturation flag")
	}
	hot := at.HotCounts()
	if len(hot) != 1 || hot[0].Count != profile.CounterMax {
		t.Errorf("array hot counts = %v, want one CounterMax entry", hot)
	}

	ht := profile.NewTable(profile.HashTable, 4, 0)
	ht.Add(1, profile.CounterMax-1)
	ht.Add(1, 2)
	if !ht.Saturated {
		t.Fatal("hash table: no saturation flag")
	}
	hot = ht.HotCounts()
	if len(hot) != 1 || hot[0].Count != profile.CounterMax {
		t.Errorf("hash hot counts = %v, want one CounterMax entry", hot)
	}

	// Lost saturates: fill every slot (key k occupies slot k), then a
	// fresh key has nowhere to go.
	lt := profile.NewTable(profile.HashTable, 1000000, 0)
	for k := int64(0); k < profile.HashSlots; k++ {
		lt.Add(k, 1)
	}
	lt.Add(10000, profile.CounterMax-1)
	lt.Add(10000, profile.CounterMax-1)
	if lt.Lost != profile.CounterMax || !lt.Saturated {
		t.Errorf("lost = %d sat=%v, want CounterMax/true", lt.Lost, lt.Saturated)
	}

	ct := profile.NewTable(profile.ArrayTable, 2, 4)
	ct.Cold = profile.CounterMax
	ct.BumpCold()
	if ct.Cold != profile.CounterMax || !ct.Saturated {
		t.Errorf("cold = %d sat=%v, want CounterMax/true", ct.Cold, ct.Saturated)
	}
}

// TestSnapshotSaturatedRoutines checks the merged snapshot surfaces
// exactly the routines that clamped, and that the fingerprint of a
// saturated snapshot differs from an unsaturated one with the same
// counter values.
func TestSnapshotSaturatedRoutines(t *testing.T) {
	col := profile.NewCollector(2)
	// Shard 0: routine "hot" saturates its edge profile.
	col.Shard(0).EdgeProfile("hot").Add(0, 1, profile.CounterMax)
	col.Shard(1).EdgeProfile("hot").Add(0, 1, 1)
	// Routine "ok" stays finite.
	col.Shard(0).EdgeProfile("ok").Add(0, 1, 7)
	snap := col.Merge()

	got := snap.SaturatedRoutines()
	if len(got) != 1 || got[0] != "hot" {
		t.Fatalf("SaturatedRoutines = %v, want [hot]", got)
	}
	if !snap.Overflowed() {
		t.Error("Overflowed = false")
	}

	// Same observable counts, no saturation: fingerprints must differ,
	// because the saturated profile is only a lower bound.
	ref := profile.NewCollector(1)
	ref.Shard(0).EdgeProfile("hot").Add(0, 1, profile.CounterMax)
	ref.Shard(0).EdgeProfile("ok").Add(0, 1, 7)
	if snap.Fingerprint() == ref.Merge().Fingerprint() {
		t.Error("saturated and exact snapshots share a fingerprint")
	}
}

// TestMergeShardsSubset checks that merging a subset of shards equals a
// collector that only ever held those shards — the quarantine contract.
func TestMergeShardsSubset(t *testing.T) {
	fill := func(sh *profile.Shard, seed int64) {
		ep := sh.EdgeProfile("f")
		ep.Calls = seed
		ep.Add(0, 1, seed*3)
		ep.Add(1, 2, seed*5)
		tab := sh.Table("f", profile.HashTable, 10, 0)
		tab.Add(seed%7, seed)
		tab.Add(3, 1)
	}
	full := profile.NewCollector(4)
	for i := 0; i < 4; i++ {
		fill(full.Shard(i), int64(i+1))
	}
	include := []bool{true, false, true, false}
	sub := full.MergeShards(include)

	ref := profile.NewCollector(2)
	fill(ref.Shard(0), 1)
	fill(ref.Shard(1), 3)
	if sub.Fingerprint() != ref.Merge().Fingerprint() {
		t.Error("subset merge differs from a collector without the excluded shards")
	}
}

// TestTableStateRoundTrip serializes and rebuilds both table kinds and
// compares every observable through the snapshot fingerprint.
func TestTableStateRoundTrip(t *testing.T) {
	at := profile.NewTable(profile.ArrayTable, 4, 8)
	at.Add(0, 3)
	at.Add(5, 2) // poison region
	at.Cold = 9
	at.Add(99, 1) // drop
	at.Add(1, profile.CounterMax)
	at.Add(1, 1) // saturate

	ht := profile.NewTable(profile.HashTable, 100, 0)
	for k := int64(0); k < 40; k++ {
		ht.Add(k*37, k+1)
	}
	ht.Add(1, 1)
	ht.Add(1+profile.HashSlots, 1)
	ht.Add(1+2*profile.HashSlots, 1)
	ht.Add(1+3*profile.HashSlots, 4) // lost

	for name, tab := range map[string]*profile.Table{"array": at, "hash": ht} {
		back, err := profile.NewTableFromState(tab.State())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a := &profile.Snapshot{Tables: map[string]*profile.Table{"f": tab}}
		b := &profile.Snapshot{Tables: map[string]*profile.Table{"f": back}}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s: state round trip changed the table", name)
		}
	}

	// Malformed states are rejected.
	bad := at.State()
	bad.Arr = bad.Arr[:3]
	if _, err := profile.NewTableFromState(bad); err == nil {
		t.Error("short array state accepted")
	}
	badH := ht.State()
	badH.Slots[0] = profile.HashSlots + 5
	if _, err := profile.NewTableFromState(badH); err == nil {
		t.Error("out-of-range slot accepted")
	}
	badH2 := ht.State()
	badH2.Slots[1] = badH2.Slots[0]
	if _, err := profile.NewTableFromState(badH2); err == nil {
		t.Error("repeated slot accepted")
	}
}
