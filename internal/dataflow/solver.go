package dataflow

import "pathprof/internal/cfg"

// Analysis describes a forward analysis over the path DAG. The state
// type S is arbitrary; the solver only needs bottom, join, and a
// per-edge transfer.
type Analysis[S any] struct {
	// Bottom allocates the "no path reaches here" state.
	Bottom func() S
	// Init is the state at the DAG entry.
	Init S
	// Join merges two flow facts at a merge point. It must be
	// associative; the solver folds predecessors in edge order, so a
	// deterministic Join yields deterministic results.
	Join func(a, b S) S
	// Transfer pushes a source-block state across one DAG edge,
	// applying the edge's instrumentation ops.
	Transfer func(e *cfg.DAGEdge, in S) S
	// Skip, if non-nil, marks edges excluded from the analysis (cold,
	// disconnected, exclusively-attributed), indexed by DAG edge ID.
	Skip []bool
	// Dead, if non-nil, reports that a state is bottom, letting the
	// solver avoid transferring unreachable facts.
	Dead func(S) bool
}

// Forward solves the analysis over the DAG in one pass and returns
// the per-block states, indexed by block ID. One pass suffices: the
// DAG is acyclic and d.Topo is a topological order, so every
// predecessor's state is final before its successors fold it in —
// this is the degenerate fixpoint where the worklist is the
// topological order itself.
//
//ppp:dataflow
func Forward[S any](d *cfg.DAG, a Analysis[S]) []S {
	states := make([]S, len(d.G.Blocks))
	for i := range states {
		states[i] = a.Bottom()
	}
	states[d.G.Entry.ID] = a.Join(states[d.G.Entry.ID], a.Init)
	for _, b := range d.Topo {
		in := states[b.ID]
		if a.Dead != nil && a.Dead(in) {
			continue
		}
		for _, e := range d.Out[b.ID] {
			if a.Skip != nil && a.Skip[e.ID] {
				continue
			}
			states[e.Dst.ID] = a.Join(states[e.Dst.ID], a.Transfer(e, in))
		}
	}
	return states
}

// Reach computes forward reachability from the entry over non-skipped
// edges: reach[b] reports that some analyzed path reaches block b.
//
//ppp:dataflow
func Reach(d *cfg.DAG, skip []bool) []bool {
	reach := make([]bool, len(d.G.Blocks))
	reach[d.G.Entry.ID] = true
	for _, b := range d.Topo {
		if !reach[b.ID] {
			continue
		}
		for _, e := range d.Out[b.ID] {
			if skip != nil && skip[e.ID] {
				continue
			}
			reach[e.Dst.ID] = true
		}
	}
	return reach
}

// ReachExit computes backward reachability to the exit over
// non-skipped edges: out[b] reports that some analyzed path completes
// from block b.
//
//ppp:dataflow
func ReachExit(d *cfg.DAG, skip []bool) []bool {
	reach := make([]bool, len(d.G.Blocks))
	reach[d.G.Exit.ID] = true
	for i := len(d.Topo) - 1; i >= 0; i-- {
		b := d.Topo[i]
		for _, e := range d.Out[b.ID] {
			if skip != nil && skip[e.ID] {
				continue
			}
			if reach[e.Dst.ID] {
				reach[b.ID] = true
				break
			}
		}
	}
	return reach
}
