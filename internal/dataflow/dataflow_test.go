package dataflow_test

import (
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/dataflow"
)

// twoDiamonds builds entry -> c1 -> {l1,r1} -> c2 -> {l2,r2} -> exit,
// four acyclic paths.
func twoDiamonds(t *testing.T) (*cfg.Graph, *cfg.DAG) {
	t.Helper()
	g := cfg.New("dd")
	entry := g.AddBlock("entry")
	c1 := g.AddBlock("c1")
	l1 := g.AddBlock("l1")
	r1 := g.AddBlock("r1")
	c2 := g.AddBlock("c2")
	l2 := g.AddBlock("l2")
	r2 := g.AddBlock("r2")
	exit := g.AddBlock("exit")
	cfgtest.Connect(g, entry, c1)
	cfgtest.Connect(g, c1, l1)
	cfgtest.Connect(g, c1, r1)
	cfgtest.Connect(g, l1, c2)
	cfgtest.Connect(g, r1, c2)
	cfgtest.Connect(g, c2, l2)
	cfgtest.Connect(g, c2, r2)
	cfgtest.Connect(g, l2, exit)
	cfgtest.Connect(g, r2, exit)
	g.Entry, g.Exit = entry, exit
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	d, err := cfg.BuildDAG(g)
	if err != nil {
		t.Fatalf("BuildDAG: %v", err)
	}
	return g, d
}

func TestIntervalOps(t *testing.T) {
	e := dataflow.Empty()
	if !e.IsEmpty() || !e.Add(5).IsEmpty() || !e.SubFrom(3).IsEmpty() {
		t.Fatalf("empty interval not preserved by transfers")
	}
	iv := dataflow.Point(2).Join(dataflow.Point(7)) // [2,7]
	if iv.Lo != 2 || iv.Hi != 7 {
		t.Fatalf("join = %v", iv)
	}
	if got := iv.Add(-2); got.Lo != 0 || got.Hi != 5 {
		t.Fatalf("add = %v", got)
	}
	if got := iv.SubFrom(10); got.Lo != 3 || got.Hi != 8 {
		t.Fatalf("subfrom = %v", got)
	}
	if !iv.Contains(2, 7) || iv.Contains(3, 7) || iv.Contains(2, 6) {
		t.Fatalf("contains misbehaves on %v", iv)
	}
	if !e.Contains(0, 0) {
		t.Fatalf("empty should be contained in everything")
	}
	// Saturation clamps instead of overflowing.
	big := dataflow.Point(dataflow.Lim - 1).Add(100)
	if big.Hi != dataflow.Lim || big.Lo != dataflow.Lim {
		t.Fatalf("saturation = %v", big)
	}
}

func TestPathSumsExactHull(t *testing.T) {
	g, d := twoDiamonds(t)
	// Value each edge by destination: left arms 0, right arms get
	// distinct powers so every path sum is unique.
	val := func(e *cfg.DAGEdge) int64 {
		switch e.Dst.Name {
		case "r1":
			return 1
		case "r2":
			return 2
		}
		return 0
	}
	sums := dataflow.PathSums(d, nil, val)
	got := sums[g.Exit.ID]
	if !got.Reached() {
		t.Fatalf("exit unreached")
	}
	if got.Iv.Lo != 0 || got.Iv.Hi != 3 {
		t.Fatalf("exit sums = %v, want [0,3]", got.Iv)
	}
	// Cross-check the hull against enumeration: every endpoint must be
	// achieved by a concrete path.
	lo, hi := int64(1)<<62, int64(-1)<<62
	for _, p := range d.EnumeratePaths(nil, -1) {
		var s int64
		for _, e := range p {
			s += val(e)
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if lo != got.Iv.Lo || hi != got.Iv.Hi {
		t.Fatalf("hull [%d,%d] disagrees with enumeration [%d,%d]", got.Iv.Lo, got.Iv.Hi, lo, hi)
	}
}

func TestWalkBackWitness(t *testing.T) {
	g, d := twoDiamonds(t)
	val := func(e *cfg.DAGEdge) int64 {
		switch e.Dst.Name {
		case "r1":
			return 1
		case "r2":
			return 2
		}
		return 0
	}
	sums := dataflow.PathSums(d, nil, val)
	get := func(block int, slot, bound uint8) dataflow.Prov {
		return sums[block].Prov(bound)
	}
	for bound, want := range map[uint8]int64{dataflow.BoundLo: 0, dataflow.BoundHi: 3} {
		p := dataflow.WalkBack(get, g.Exit.ID, 0, bound, len(d.Edges))
		if len(p) == 0 {
			t.Fatalf("no witness for bound %d", bound)
		}
		if p[0].Src != g.Entry || p[len(p)-1].Dst != g.Exit {
			t.Fatalf("witness %s is not entry->exit", p)
		}
		var s int64
		for i, e := range p {
			if i > 0 && p[i-1].Dst != e.Src {
				t.Fatalf("witness %s not contiguous", p)
			}
			s += val(e)
		}
		if s != want {
			t.Fatalf("witness %s sums to %d, want the %d endpoint", p, s, want)
		}
	}
}

func TestSkipAndReach(t *testing.T) {
	g, d := twoDiamonds(t)
	// Skip all edges touching r1: r1 drops out of the analyzed
	// sub-DAG in both directions, exit stays reachable through l1.
	skip := make([]bool, len(d.Edges))
	var r1 *cfg.Block
	for _, b := range g.Blocks {
		if b.Name == "r1" {
			r1 = b
		}
	}
	for _, e := range d.In[r1.ID] {
		skip[e.ID] = true
	}
	for _, e := range d.Out[r1.ID] {
		skip[e.ID] = true
	}
	reach := dataflow.Reach(d, skip)
	if reach[r1.ID] {
		t.Fatalf("r1 should be unreachable under skip")
	}
	if !reach[g.Exit.ID] {
		t.Fatalf("exit should stay reachable")
	}
	back := dataflow.ReachExit(d, skip)
	if !back[g.Entry.ID] || back[r1.ID] {
		t.Fatalf("ReachExit wrong: entry=%v r1=%v", back[g.Entry.ID], back[r1.ID])
	}
	sums := dataflow.PathSums(d, skip, func(e *cfg.DAGEdge) int64 { return 1 })
	if sums[r1.ID].Reached() {
		t.Fatalf("skipped-region state should be bottom")
	}
	// All surviving paths have the same length (5 edges).
	if iv := sums[g.Exit.ID].Iv; iv.Lo != 5 || iv.Hi != 5 {
		t.Fatalf("surviving path lengths = %v, want [5,5]", iv)
	}
}
