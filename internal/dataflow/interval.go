// Package dataflow is a small forward-dataflow / abstract-
// interpretation framework over the acyclic path DAG. The verifier
// uses it to prove plan invariants over *all* acyclic paths in O(E)
// per routine, where budgeted enumeration could only check a sample.
//
// The framework is deliberately tiny: a saturating interval lattice
// (Interval), provenance-carrying intervals for counterexample
// extraction (Track, Prov), a one-pass topological solver (Forward),
// and a ready-made affine path-sum domain (PathSums). Everything is
// byte-deterministic — solver code carries //ppp:dataflow marks and
// ppplint's fixpoint rule rejects map iteration anywhere reachable
// from one.
//
// Why intervals are exact here: the solved graph is a DAG and every
// transfer function is a per-component affine map (x+c or c-x) of a
// single input component. The image of an interval under an affine
// map is an interval, and the convex hull of a union of intervals is
// their join, so by induction over topological order each component's
// interval is exactly the hull of the concrete values reachable at
// that block — both endpoints are achieved by real paths. No widening
// is needed and fixpoints are reached in one sweep.
package dataflow

// Lim is the saturation bound for interval endpoints. All plan
// quantities (path numbers, op constants, event counts) are far below
// it, so saturation never loses a real violation; it only keeps
// adversarial inputs from overflowing.
const Lim = int64(1) << 62

// Interval is a saturating integer interval [Lo, Hi]. The empty
// interval (Lo > Hi) is the lattice bottom: "no path reaches this
// state".
type Interval struct {
	Lo, Hi int64
}

// Empty returns the bottom interval.
func Empty() Interval { return Interval{Lo: Lim, Hi: -Lim} }

// Point returns the singleton interval [v, v].
func Point(v int64) Interval { return Interval{Lo: v, Hi: v} }

// IsEmpty reports whether iv is bottom.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// satAdd adds two endpoints, clamping to [-Lim, Lim]. Both operands
// are already in that range, so the sum cannot overflow int64.
func satAdd(a, b int64) int64 {
	s := a + b
	if s > Lim {
		return Lim
	}
	if s < -Lim {
		return -Lim
	}
	return s
}

// Add shifts the interval by v (the affine transfer x -> x+v).
func (iv Interval) Add(v int64) Interval {
	if iv.IsEmpty() {
		return iv
	}
	return Interval{Lo: satAdd(iv.Lo, v), Hi: satAdd(iv.Hi, v)}
}

// SubFrom maps the interval through x -> v-x, the other affine
// transfer shape the plan semantics need (a Set op replaces the
// register, so the derived quantity V-W flips the endpoints).
func (iv Interval) SubFrom(v int64) Interval {
	if iv.IsEmpty() {
		return iv
	}
	return Interval{Lo: satAdd(v, -iv.Hi), Hi: satAdd(v, -iv.Lo)}
}

// Join returns the smallest interval containing both operands.
func (iv Interval) Join(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	out := iv
	if o.Lo < out.Lo {
		out.Lo = o.Lo
	}
	if o.Hi > out.Hi {
		out.Hi = o.Hi
	}
	return out
}

// Contains reports whether iv lies within [lo, hi]. The empty
// interval is contained in everything.
func (iv Interval) Contains(lo, hi int64) bool {
	return iv.IsEmpty() || (iv.Lo >= lo && iv.Hi <= hi)
}

func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "⊥"
	}
	return "[" + itoa(iv.Lo) + "," + itoa(iv.Hi) + "]"
}

// itoa avoids strconv for this one cold diagnostic path, keeping the
// package dependency-free.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
