package dataflow

import "pathprof/internal/cfg"

// PathSums runs the affine-sum domain: for every block it returns the
// exact min/max of the sum of val(e) over all non-skipped DAG paths
// entry->block, with witness provenance on both endpoints. With val =
// the Ball-Larus edge increment this proves the path register at the
// exit stays inside [0, N) without enumerating a single path; with
// val = 1 it bounds path lengths; any affine per-edge quantity works.
//
//ppp:dataflow
func PathSums(d *cfg.DAG, skip []bool, val func(e *cfg.DAGEdge) int64) []Track {
	return Forward(d, Analysis[Track]{
		Bottom: EmptyTrack,
		Init:   PointTrack(0),
		Join:   Track.Join,
		Transfer: func(e *cfg.DAGEdge, in Track) Track {
			return in.Via(e, 0).Add(val(e))
		},
		Skip: skip,
		Dead: func(t Track) bool { return !t.Reached() },
	})
}
