package dataflow

import "pathprof/internal/cfg"

// Bound selects an interval endpoint in a provenance record.
const (
	BoundLo uint8 = 0
	BoundHi uint8 = 1
)

// Prov records where an interval endpoint came from: the DAG edge
// whose transfer produced it, and which (slot, bound) of the source
// block's state it was derived from. Slots are domain-defined labels
// for state components (a class/component encoding chosen by the
// analysis). A zero Prov (E == nil) marks an analysis-entry value and
// terminates the walk-back.
type Prov struct {
	E     *cfg.DAGEdge
	Slot  uint8
	Bound uint8
}

// Track is an interval with per-endpoint provenance, so a failed
// proof can be walked back to a concrete witness path achieving the
// violating endpoint.
type Track struct {
	Iv       Interval
	LoP, HiP Prov
}

// EmptyTrack returns the bottom tracked interval.
func EmptyTrack() Track { return Track{Iv: Empty()} }

// PointTrack returns a tracked singleton with entry provenance.
func PointTrack(v int64) Track { return Track{Iv: Point(v)} }

// Reached reports whether any path produces this state.
func (t Track) Reached() bool { return !t.Iv.IsEmpty() }

// Via rebases the provenance across edge e: both endpoints now point
// at (srcSlot, bound) of e's source block. Called once at the start
// of every edge transfer, before the edge's own ops adjust the value,
// so all subsequent Add/SubFrom/Join provenance refers across e.
func (t Track) Via(e *cfg.DAGEdge, srcSlot uint8) Track {
	if t.Iv.IsEmpty() {
		return t
	}
	t.LoP = Prov{E: e, Slot: srcSlot, Bound: BoundLo}
	t.HiP = Prov{E: e, Slot: srcSlot, Bound: BoundHi}
	return t
}

// Add shifts the tracked interval; a shift moves both endpoints the
// same way, so provenance is unchanged.
func (t Track) Add(v int64) Track {
	t.Iv = t.Iv.Add(v)
	return t
}

// SubFrom maps the tracked interval through x -> v-x. The endpoints
// swap roles, so their provenance swaps with them.
func (t Track) SubFrom(v int64) Track {
	t.Iv = t.Iv.SubFrom(v)
	t.LoP, t.HiP = t.HiP, t.LoP
	return t
}

// Join merges two tracked intervals. Each endpoint keeps the
// provenance of whichever operand supplied it; ties keep t's, which
// is deterministic because callers fold inputs in edge order.
func (t Track) Join(o Track) Track {
	if t.Iv.IsEmpty() {
		return o
	}
	if o.Iv.IsEmpty() {
		return t
	}
	if o.Iv.Lo < t.Iv.Lo {
		t.Iv.Lo, t.LoP = o.Iv.Lo, o.LoP
	}
	if o.Iv.Hi > t.Iv.Hi {
		t.Iv.Hi, t.HiP = o.Iv.Hi, o.HiP
	}
	return t
}

// Prov returns the provenance of the requested endpoint.
func (t Track) Prov(bound uint8) Prov {
	if bound == BoundLo {
		return t.LoP
	}
	return t.HiP
}

// Flag is a boolean lattice component with provenance: "some path
// reaches this state", plus evidence of one such path.
type Flag struct {
	On bool
	P  Prov
}

// Via rebases a set flag's provenance across edge e.
func (f Flag) Via(e *cfg.DAGEdge, srcSlot uint8) Flag {
	if f.On {
		f.P = Prov{E: e, Slot: srcSlot, Bound: BoundLo}
	}
	return f
}

// Join keeps the first witness seen (deterministic under edge-order
// folding).
func (f Flag) Join(o Flag) Flag {
	if f.On {
		return f
	}
	return o
}

// WalkBack reconstructs a concrete entry-to-block path witnessing the
// (slot, bound) endpoint of block's state. get must return the stored
// provenance for a (block, slot, bound) triple; the walk follows
// provenance edges until it reaches an entry value (E == nil). The
// result is in forward order. Returns nil if the chain is longer than
// maxLen edges, which would indicate corrupted provenance (the DAG is
// acyclic, so a valid chain visits each block at most once).
//
//ppp:dataflow
func WalkBack(get func(block int, slot, bound uint8) Prov, block int, slot, bound uint8, maxLen int) cfg.Path {
	return WalkBackProv(get, get(block, slot, bound), maxLen)
}

// WalkBackProv is WalkBack starting from an explicit provenance
// record, for endpoints held in a transfer-local value rather than a
// block state.
//
//ppp:dataflow
func WalkBackProv(get func(block int, slot, bound uint8) Prov, p Prov, maxLen int) cfg.Path {
	var rev cfg.Path
	for p.E != nil {
		if len(rev) > maxLen {
			return nil
		}
		rev = append(rev, p.E)
		p = get(p.E.Src.ID, p.Slot, p.Bound)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
