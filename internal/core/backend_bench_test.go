package core_test

import (
	"testing"

	"pathprof/internal/core"
	"pathprof/internal/vm"
	"pathprof/internal/workloads"
)

// BenchmarkInstrumentedRun measures one PP-instrumented replica on
// each backend: the configuration whose interpreter tax the compiled
// backend exists to cut. Engine construction (plan lowering, DAGs,
// threaded-code compilation) is outside the timed region, matching the
// replicated serving shape where it happens once.
func BenchmarkInstrumentedRun(b *testing.B) {
	for _, name := range []string{"crafty", "bzip2", "swim"} {
		w, ok := workloads.ByName(name)
		if !ok {
			b.Fatalf("unknown workload %q", name)
		}
		staged, err := core.NewPipeline(w.Name, w.Source).Stage()
		if err != nil {
			b.Fatal(err)
		}
		pr, err := staged.Profile("PP", core.Profilers()[0].Tech)
		if err != nil {
			b.Fatal(err)
		}
		for _, be := range []vm.Backend{vm.BackendDense, vm.BackendCompiled} {
			b.Run(name+"/"+be.String(), func(b *testing.B) {
				e, err := vm.NewEngine(staged.Prog, vm.Options{
					Plans: pr.Plans, CollectPaths: true, Backend: be,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				if _, err := e.RunReplicated(b.N, 1); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
