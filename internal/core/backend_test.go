package core_test

import (
	"reflect"
	"testing"

	"pathprof/internal/core"
	"pathprof/internal/vm"
	"pathprof/internal/workloads"
)

// requireSameRun asserts two vm results are observably identical:
// return value, cost accounting, step count, call count, and profile
// fingerprint. The compiled backend must be indistinguishable from the
// dense interpreter on every one of these.
func requireSameRun(t *testing.T, label string, dense, compiled *vm.Result) {
	t.Helper()
	if dense == nil || compiled == nil {
		t.Fatalf("%s: nil run (dense=%v compiled=%v)", label, dense != nil, compiled != nil)
	}
	if dense.Ret != compiled.Ret {
		t.Errorf("%s: ret %d vs %d", label, dense.Ret, compiled.Ret)
	}
	if dense.Steps != compiled.Steps {
		t.Errorf("%s: steps %d vs %d", label, dense.Steps, compiled.Steps)
	}
	if dense.BaseCost != compiled.BaseCost {
		t.Errorf("%s: base cost %d vs %d", label, dense.BaseCost, compiled.BaseCost)
	}
	if dense.InstrCost != compiled.InstrCost {
		t.Errorf("%s: instr cost %d vs %d", label, dense.InstrCost, compiled.InstrCost)
	}
	if dense.DynCalls != compiled.DynCalls {
		t.Errorf("%s: dyn calls %d vs %d", label, dense.DynCalls, compiled.DynCalls)
	}
	if df, cf := dense.Snapshot().Fingerprint(), compiled.Snapshot().Fingerprint(); df != cf {
		t.Errorf("%s: profile fingerprint %#x vs %#x", label, df, cf)
	}
}

// TestBackendsAgree drives every workload through the full pipeline —
// staging, then PP/TPP/PPP profiling — once per backend, and requires
// bit-identical observable outcomes at every stage: run accounting,
// profile fingerprints, degradation modes, and hashing decisions.
func TestBackendsAgree(t *testing.T) {
	ws := workloads.All()
	if testing.Short() {
		ws = ws[:4]
	}
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			stage := func(b vm.Backend) (*core.Staged, map[string]*core.ProfilerResult) {
				pl := core.NewPipeline(w.Name, w.Source)
				pl.Backend = b
				staged, err := pl.Stage()
				if err != nil {
					t.Fatalf("%v stage: %v", b, err)
				}
				prs := map[string]*core.ProfilerResult{}
				for _, p := range core.Profilers() {
					pr, err := staged.Profile(p.Name, p.Tech)
					if err != nil {
						t.Fatalf("%v profile %s: %v", b, p.Name, err)
					}
					prs[p.Name] = pr
				}
				return staged, prs
			}
			ds, dp := stage(vm.BackendDense)
			cs, cp := stage(vm.BackendCompiled)

			requireSameRun(t, "original", ds.OriginalRun, cs.OriginalRun)
			requireSameRun(t, "base", ds.Base, cs.Base)
			for _, p := range core.Profilers() {
				d, c := dp[p.Name], cp[p.Name]
				requireSameRun(t, p.Name, d.Run, c.Run)
				if !reflect.DeepEqual(d.Modes, c.Modes) {
					t.Errorf("%s: modes %v vs %v", p.Name, d.Modes, c.Modes)
				}
				if d.HashedRoutines != c.HashedRoutines {
					t.Errorf("%s: hashed routines %d vs %d", p.Name, d.HashedRoutines, c.HashedRoutines)
				}
				if d.SACAdjusted != c.SACAdjusted || d.MaxSACIterations != c.MaxSACIterations {
					t.Errorf("%s: SAC %d/%d vs %d/%d", p.Name,
						d.SACAdjusted, d.MaxSACIterations, c.SACAdjusted, c.MaxSACIterations)
				}
			}

			// Edge-instrumented overhead run, both backends.
			de, err := ds.EdgeOverheadRun()
			if err != nil {
				t.Fatalf("dense edge overhead: %v", err)
			}
			ce, err := cs.EdgeOverheadRun()
			if err != nil {
				t.Fatalf("compiled edge overhead: %v", err)
			}
			requireSameRun(t, "edge-overhead", de, ce)
		})
	}
}
