package core_test

import (
	"fmt"
	"testing"

	"pathprof/internal/core"
	"pathprof/internal/instr"
)

var demoSrc = func() string {
	pad := "func pad(x) {\n\tvar a = x;\n"
	for i := 0; i < 120; i++ {
		pad += "\ta = a * 3 + 1;\n"
	}
	pad += "\treturn a;\n}\n"
	return pad + demoBody
}()

const demoBody = `
var total = 0;
array data[128];

func weight(x) { return x * 3 % 17 + 1; }

func score(i) {
	var s = 0;
	if (data[i % 128] % 2 == 0) { s = s + weight(i); } else { s = s - 1; }
	if (data[(i + 1) % 128] % 4 < 2) { s = s + 2; } else { s = s - weight(i + 1); }
	return s;
}

func main() {
	total = total + pad(3);
	for (var i = 0; i < 128; i = i + 1) { data[i] = (i * 2654435761) % 1009; }
	var it = 0;
	while (it < 3000) {
		total = total + score(it);
		if (total % 7 == 0) { total = total + 1; }
		it = it + 1;
	}
	print(total);
	return total;
}
`

func stage(t *testing.T) *core.Staged {
	t.Helper()
	s, err := core.NewPipeline("demo", demoSrc).Stage()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStageInvariants(t *testing.T) {
	s := stage(t)
	if s.Base.Ret != s.OriginalRun.Ret {
		t.Fatal("optimization changed the program result")
	}
	if s.Speedup() < 1 {
		t.Errorf("speedup = %v < 1 with call-cost savings available", s.Speedup())
	}
	if got := s.PctCallsInlined(); got <= 0 || got > 1 {
		t.Errorf("%% calls inlined = %v, want in (0, 1]", got)
	}
	if s.TotalUnitFlow() <= 0 {
		t.Error("no dynamic paths recorded")
	}
	stats := core.StatsOf(s.Base)
	if stats.DynPaths == 0 || stats.AvgInstrs <= 0 {
		t.Errorf("bad stats %+v", stats)
	}
	// Inlining+unrolling must lengthen paths.
	orig := core.StatsOf(s.OriginalRun)
	if stats.AvgInstrs <= orig.AvgInstrs {
		t.Errorf("paths did not lengthen: %v vs %v", stats.AvgInstrs, orig.AvgInstrs)
	}
}

func TestNoOptPipeline(t *testing.T) {
	p := core.NewPipeline("demo", demoSrc)
	p.NoOpt = true
	s, err := p.Stage()
	if err != nil {
		t.Fatal(err)
	}
	if s.Prog != s.Original {
		t.Error("NoOpt should reuse the original program")
	}
	if s.Speedup() != 1 {
		t.Errorf("NoOpt speedup = %v, want 1", s.Speedup())
	}
}

func TestProfilersOrdering(t *testing.T) {
	s := stage(t)
	overheads := map[string]float64{}
	for _, p := range core.Profilers() {
		pr, err := s.Profile(p.Name, p.Tech)
		if err != nil {
			t.Fatal(err)
		}
		overheads[p.Name] = pr.Overhead()
		if pr.Run.Ret != s.Base.Ret {
			t.Fatalf("%s changed the program result", p.Name)
		}
		if pr.Overhead() < 0 {
			t.Errorf("%s negative overhead %v", p.Name, pr.Overhead())
		}
	}
	if overheads["PP"] <= 0 {
		t.Error("PP overhead must be positive")
	}
	if overheads["TPP"] > overheads["PP"] {
		t.Errorf("TPP %v exceeds PP %v", overheads["TPP"], overheads["PP"])
	}
	if overheads["PPP"] > overheads["TPP"]+1e-9 {
		t.Errorf("PPP %v exceeds TPP %v", overheads["PPP"], overheads["TPP"])
	}
}

func TestProfileEvalSanity(t *testing.T) {
	s := stage(t)
	pp, err := s.Profile("PP", instr.PP())
	if err != nil {
		t.Fatal(err)
	}
	hot := pp.Eval.HotPaths(0.00125)
	if len(hot) == 0 {
		t.Fatal("no hot paths")
	}
	// PP measures everything exactly.
	cov := pp.Eval.Coverage()
	if cov.Value() < 0.999 {
		t.Errorf("PP coverage = %v (%+v)", cov.Value(), cov)
	}
	frac := pp.Eval.InstrumentedFraction()
	if frac.Total() < 0.999 {
		t.Errorf("PP instrumented fraction = %v", frac.Total())
	}
}

func TestAblationsComplete(t *testing.T) {
	ab := core.Ablations()
	for _, name := range []string{"SAC", "FP", "Push", "SPN", "LC"} {
		tech, ok := ab[name]
		if !ok {
			t.Fatalf("missing ablation %s", name)
		}
		if tech == instr.PPP() {
			t.Errorf("ablation %s identical to PPP", name)
		}
	}
	s := stage(t)
	for name, tech := range ab {
		pr, err := s.Profile("PPP-"+name, tech)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pr.Run.Ret != s.Base.Ret {
			t.Fatalf("%s changed the result", name)
		}
	}
}

func TestEdgeOverheadRun(t *testing.T) {
	s := stage(t)
	res, err := s.EdgeOverheadRun()
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead() <= 0 {
		t.Error("edge instrumentation should cost something")
	}
	if res.Ret != s.Base.Ret {
		t.Error("edge instrumentation changed the result")
	}
}

func TestStageRejectsBadSource(t *testing.T) {
	if _, err := core.NewPipeline("bad", "func main() {").Stage(); err == nil {
		t.Error("expected parse error")
	}
	if _, err := core.NewPipeline("bad", "func main() { return f(); }").Stage(); err == nil {
		t.Error("expected undefined function error")
	}
}

// explosionSrc builds a routine with 2^70 acyclic paths — enough to
// overflow 64-bit Ball-Larus numbering — out of 70 sequential
// if/else diamonds. mod controls branch bias: mod=2 keeps both arms
// warm (TPP's 5% local criterion cannot prune), mod=32 leaves the
// then-arm at ~3% so TPP removes it.
func explosionSrc(mod int) string {
	body := "func blow(n) {\n\tvar s = 0;\n"
	for i := 0; i < 70; i++ {
		body += fmt.Sprintf(
			"\tif ((n + %d) %% %d == 0) { s = s + %d; } else { s = s - 1; }\n",
			i, mod, i+1)
	}
	body += "\treturn s;\n}\n"
	return body + `
func main() {
	var t = 0;
	for (var i = 0; i < 200; i = i + 1) { t = t + blow(i); }
	print(t);
	return t;
}
`
}

// explode profiles the explosion source under plain PP, the technique
// with no cold-path removal: numbering overflows immediately, which is
// what pushes a routine onto the ladder. (PPP itself rarely gets
// there — its self-adjusting criterion prunes the path space first,
// ending in no-hot-paths or all-obvious, both full-fidelity outcomes.)
func explode(t *testing.T, mod int) *core.ProfilerResult {
	t.Helper()
	p := core.NewPipeline("explode", explosionSrc(mod))
	p.NoOpt = true
	s, err := p.Stage()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := s.Profile("PP", instr.PP())
	if err != nil {
		t.Fatal(err)
	}
	if pr.Run.Ret != s.Base.Ret {
		t.Fatal("degraded profiling changed the program result")
	}
	return pr
}

func TestDegradedModeLadder(t *testing.T) {
	// Balanced diamonds: TPP's local criterion cannot prune a 50/50
	// arm, so the routine drops to the bottom rung and runs
	// uninstrumented on the edge profile alone.
	pr := explode(t, 2)
	if got := pr.ModeOf("blow"); got != core.ModeEdgeOnly {
		t.Errorf("balanced blow mode = %v, want edge-only", got)
	}
	if pr.Degraded() != 1 {
		t.Errorf("Degraded() = %d, want 1", pr.Degraded())
	}
	if got := pr.ModeSummary(); got != "edge-only:1" {
		t.Errorf("ModeSummary() = %q, want edge-only:1", got)
	}

	// Biased diamonds: the rare arms fall under the local cold
	// criterion, so the TPP retry tames the path space — one rung
	// down, still path-profiled.
	pr = explode(t, 32)
	if got := pr.ModeOf("blow"); got != core.ModeTPP {
		t.Errorf("biased blow mode = %v, want tpp", got)
	}
	if got := pr.ModeSummary(); got != "tpp:1" {
		t.Errorf("ModeSummary() = %q, want tpp:1", got)
	}
	if got := pr.ModeOf("main"); got != core.ModeFull {
		t.Errorf("main mode = %v, want full", got)
	}
}

func TestModeFullOnHealthyProgram(t *testing.T) {
	s := stage(t)
	pr, err := s.Profile("PPP", instr.PPP())
	if err != nil {
		t.Fatal(err)
	}
	if pr.Degraded() != 0 {
		t.Errorf("healthy program degraded %d routines: %v", pr.Degraded(), pr.Modes)
	}
	if got := pr.ModeSummary(); got != "full" {
		t.Errorf("ModeSummary() = %q, want full", got)
	}
}
