package core_test

import (
	"testing"

	"pathprof/internal/core"
	"pathprof/internal/instr"
)

var demoSrc = func() string {
	pad := "func pad(x) {\n\tvar a = x;\n"
	for i := 0; i < 120; i++ {
		pad += "\ta = a * 3 + 1;\n"
	}
	pad += "\treturn a;\n}\n"
	return pad + demoBody
}()

const demoBody = `
var total = 0;
array data[128];

func weight(x) { return x * 3 % 17 + 1; }

func score(i) {
	var s = 0;
	if (data[i % 128] % 2 == 0) { s = s + weight(i); } else { s = s - 1; }
	if (data[(i + 1) % 128] % 4 < 2) { s = s + 2; } else { s = s - weight(i + 1); }
	return s;
}

func main() {
	total = total + pad(3);
	for (var i = 0; i < 128; i = i + 1) { data[i] = (i * 2654435761) % 1009; }
	var it = 0;
	while (it < 3000) {
		total = total + score(it);
		if (total % 7 == 0) { total = total + 1; }
		it = it + 1;
	}
	print(total);
	return total;
}
`

func stage(t *testing.T) *core.Staged {
	t.Helper()
	s, err := core.NewPipeline("demo", demoSrc).Stage()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStageInvariants(t *testing.T) {
	s := stage(t)
	if s.Base.Ret != s.OriginalRun.Ret {
		t.Fatal("optimization changed the program result")
	}
	if s.Speedup() < 1 {
		t.Errorf("speedup = %v < 1 with call-cost savings available", s.Speedup())
	}
	if got := s.PctCallsInlined(); got <= 0 || got > 1 {
		t.Errorf("%% calls inlined = %v, want in (0, 1]", got)
	}
	if s.TotalUnitFlow() <= 0 {
		t.Error("no dynamic paths recorded")
	}
	stats := core.StatsOf(s.Base)
	if stats.DynPaths == 0 || stats.AvgInstrs <= 0 {
		t.Errorf("bad stats %+v", stats)
	}
	// Inlining+unrolling must lengthen paths.
	orig := core.StatsOf(s.OriginalRun)
	if stats.AvgInstrs <= orig.AvgInstrs {
		t.Errorf("paths did not lengthen: %v vs %v", stats.AvgInstrs, orig.AvgInstrs)
	}
}

func TestNoOptPipeline(t *testing.T) {
	p := core.NewPipeline("demo", demoSrc)
	p.NoOpt = true
	s, err := p.Stage()
	if err != nil {
		t.Fatal(err)
	}
	if s.Prog != s.Original {
		t.Error("NoOpt should reuse the original program")
	}
	if s.Speedup() != 1 {
		t.Errorf("NoOpt speedup = %v, want 1", s.Speedup())
	}
}

func TestProfilersOrdering(t *testing.T) {
	s := stage(t)
	overheads := map[string]float64{}
	for _, p := range core.Profilers() {
		pr, err := s.Profile(p.Name, p.Tech)
		if err != nil {
			t.Fatal(err)
		}
		overheads[p.Name] = pr.Overhead()
		if pr.Run.Ret != s.Base.Ret {
			t.Fatalf("%s changed the program result", p.Name)
		}
		if pr.Overhead() < 0 {
			t.Errorf("%s negative overhead %v", p.Name, pr.Overhead())
		}
	}
	if overheads["PP"] <= 0 {
		t.Error("PP overhead must be positive")
	}
	if overheads["TPP"] > overheads["PP"] {
		t.Errorf("TPP %v exceeds PP %v", overheads["TPP"], overheads["PP"])
	}
	if overheads["PPP"] > overheads["TPP"]+1e-9 {
		t.Errorf("PPP %v exceeds TPP %v", overheads["PPP"], overheads["TPP"])
	}
}

func TestProfileEvalSanity(t *testing.T) {
	s := stage(t)
	pp, err := s.Profile("PP", instr.PP())
	if err != nil {
		t.Fatal(err)
	}
	hot := pp.Eval.HotPaths(0.00125)
	if len(hot) == 0 {
		t.Fatal("no hot paths")
	}
	// PP measures everything exactly.
	cov := pp.Eval.Coverage()
	if cov.Value() < 0.999 {
		t.Errorf("PP coverage = %v (%+v)", cov.Value(), cov)
	}
	frac := pp.Eval.InstrumentedFraction()
	if frac.Total() < 0.999 {
		t.Errorf("PP instrumented fraction = %v", frac.Total())
	}
}

func TestAblationsComplete(t *testing.T) {
	ab := core.Ablations()
	for _, name := range []string{"SAC", "FP", "Push", "SPN", "LC"} {
		tech, ok := ab[name]
		if !ok {
			t.Fatalf("missing ablation %s", name)
		}
		if tech == instr.PPP() {
			t.Errorf("ablation %s identical to PPP", name)
		}
	}
	s := stage(t)
	for name, tech := range ab {
		pr, err := s.Profile("PPP-"+name, tech)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pr.Run.Ret != s.Base.Ret {
			t.Fatalf("%s changed the result", name)
		}
	}
}

func TestEdgeOverheadRun(t *testing.T) {
	s := stage(t)
	res, err := s.EdgeOverheadRun()
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead() <= 0 {
		t.Error("edge instrumentation should cost something")
	}
	if res.Ret != s.Base.Ret {
		t.Error("edge instrumentation changed the result")
	}
}

func TestStageRejectsBadSource(t *testing.T) {
	if _, err := core.NewPipeline("bad", "func main() {").Stage(); err == nil {
		t.Error("expected parse error")
	}
	if _, err := core.NewPipeline("bad", "func main() { return f(); }").Stage(); err == nil {
		t.Error("expected undefined function error")
	}
}
