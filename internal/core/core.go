// Package core is the library's public API: it drives the full
// practical-path-profiling pipeline of Bond & McKinley (CGO 2005) over
// a mini-C program.
//
// The pipeline mirrors the paper's staged-optimization methodology
// (Section 7):
//
//  1. Stage compiles the source, collects a baseline edge profile,
//     applies profile-guided unrolling (factor 4) and inlining (5%
//     bloat) guided by that profile, and re-profiles the optimized
//     program. The final run's exact edge and path profiles are both
//     the guiding profile for instrumentation ("self" advice) and the
//     ground truth for evaluation.
//  2. Profile builds per-routine instrumentation plans for a chosen
//     profiler (PP, TPP, PPP, or any ablation of PPP's techniques),
//     reruns the program with the instrumentation executing under the
//     VM's cost model, and wraps the results for evaluation: accuracy,
//     coverage, instrumented fraction, and runtime overhead.
package core

import (
	"fmt"
	"sort"

	"pathprof/internal/cfg"
	"pathprof/internal/eval"
	"pathprof/internal/instr"
	"pathprof/internal/ir"
	"pathprof/internal/lower"
	"pathprof/internal/opt"
	"pathprof/internal/profile"
	"pathprof/internal/telemetry"
	"pathprof/internal/vm"
)

// Pipeline configures a benchmark run end to end.
type Pipeline struct {
	// Name labels reports; Source is mini-C source text.
	Name   string
	Source string
	// Entry is the function to execute (default "main").
	Entry string

	Inline opt.InlineParams
	Unroll opt.UnrollParams
	Instr  instr.Params
	Costs  vm.CostModel
	// MaxSteps bounds each VM run (0 = VM default).
	MaxSteps int64
	// NoOpt skips inlining and unrolling (the paper's "original code"
	// configuration).
	NoOpt bool
	// PathHook, if set, tees the final profiling run's path stream (the
	// run that produces Staged.Base, or the original run under NoOpt)
	// to an online consumer such as netprof's NET predictor, so stream
	// observers need no second execution of the program.
	PathHook func(fn string, p cfg.Path)
	// Metrics, if set, receives the VM hot-loop counters from every run
	// the pipeline performs. Nil is the zero-overhead no-op sink.
	Metrics *telemetry.VMMetrics
	// Backend selects the VM execution strategy for every run the
	// pipeline performs (dense interpreter or compiled threaded code);
	// both produce identical results, profiles, and cost accounting.
	Backend vm.Backend
}

// NewPipeline returns a pipeline with the paper's default parameters.
func NewPipeline(name, source string) *Pipeline {
	return &Pipeline{
		Name:   name,
		Source: source,
		Inline: opt.DefaultInlineParams(),
		Unroll: opt.DefaultUnrollParams(),
		Instr:  instr.DefaultParams(),
		Costs:  vm.DefaultCosts(),
	}
}

// Staged is the output of the staging phase.
type Staged struct {
	Pipeline *Pipeline
	// Original is the unoptimized program and its profiling run.
	Original    *ir.Program
	OriginalRun *vm.Result
	// Prog is the inlined+unrolled program; Base its profiling run,
	// which supplies the guiding edge profile and the ground truth.
	Prog *ir.Program
	Base *vm.Result

	UnrollPlan      map[string]int
	UnrollDecisions []opt.UnrollDecision
	InlineInfo      *opt.InlineResult
	// DynCallsBeforeInline is the optimized program's dynamic call
	// count before inlining, for the "% calls inlined" statistic.
	DynCallsBeforeInline int64
}

// Stage compiles, profiles, optimizes, and re-profiles the program.
func (p *Pipeline) Stage() (*Staged, error) {
	runOpts := func(paths, final bool) vm.Options {
		o := vm.Options{
			Costs: p.Costs, Entry: p.Entry, MaxSteps: p.MaxSteps,
			CollectEdges: true, CollectPaths: paths,
			Metrics: p.Metrics, Backend: p.Backend,
		}
		if final && paths {
			o.PathHook = p.PathHook
		}
		return o
	}
	p0, err := lower.Compile(p.Source, lower.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	r0, err := vm.Run(p0, runOpts(true, p.NoOpt))
	if err != nil {
		return nil, fmt.Errorf("%s: baseline run: %w", p.Name, err)
	}
	s := &Staged{Pipeline: p, Original: p0, OriginalRun: r0}

	if p.NoOpt {
		s.Prog, s.Base = p0, r0
		s.DynCallsBeforeInline = r0.DynCalls
		s.InlineInfo = &opt.InlineResult{SizeFrom: p0.Size(), SizeTo: p0.Size()}
		return s, nil
	}

	s.UnrollPlan, s.UnrollDecisions, err = opt.PlanUnroll(p0, r0.Edges, p.Unroll)
	if err != nil {
		return nil, fmt.Errorf("%s: unroll plan: %w", p.Name, err)
	}
	p1, err := lower.Compile(p.Source, lower.Options{Unroll: s.UnrollPlan})
	if err != nil {
		return nil, fmt.Errorf("%s: unrolled compile: %w", p.Name, err)
	}
	r1, err := vm.Run(p1, runOpts(false, false))
	if err != nil {
		return nil, fmt.Errorf("%s: unrolled run: %w", p.Name, err)
	}
	if r1.Ret != r0.Ret {
		return nil, fmt.Errorf("%s: unrolling changed the result (%d vs %d)", p.Name, r1.Ret, r0.Ret)
	}
	s.DynCallsBeforeInline = r1.DynCalls

	s.InlineInfo, err = opt.Inline(p1, r1.Edges, p.Inline)
	if err != nil {
		return nil, fmt.Errorf("%s: inline: %w", p.Name, err)
	}
	if err := p1.Validate(); err != nil {
		return nil, fmt.Errorf("%s: inlined program invalid: %w", p.Name, err)
	}
	base, err := vm.Run(p1, runOpts(true, true))
	if err != nil {
		return nil, fmt.Errorf("%s: optimized run: %w", p.Name, err)
	}
	if base.Ret != r0.Ret {
		return nil, fmt.Errorf("%s: inlining changed the result (%d vs %d)", p.Name, base.Ret, r0.Ret)
	}
	s.Prog, s.Base = p1, base
	return s, nil
}

// Speedup returns the cost ratio of original over optimized code
// (values above 1 mean the optimizations helped), as Table 1 reports.
func (s *Staged) Speedup() float64 {
	if s.Base.BaseCost == 0 {
		return 1
	}
	return float64(s.OriginalRun.BaseCost) / float64(s.Base.BaseCost)
}

// PctCallsInlined returns the fraction of dynamic calls removed by
// inlining.
func (s *Staged) PctCallsInlined() float64 {
	if s.DynCallsBeforeInline == 0 {
		return 0
	}
	return float64(s.DynCallsBeforeInline-s.Base.DynCalls) / float64(s.DynCallsBeforeInline)
}

// TotalUnitFlow returns the program's dynamic path count, the
// denominator of PPP's global cold-edge criterion.
func (s *Staged) TotalUnitFlow() int64 {
	var sum int64
	for _, pp := range s.Base.Paths {
		sum += pp.Total()
	}
	return sum
}

// PathStats summarises dynamic path shape for Table 1.
type PathStats struct {
	DynPaths    int64
	AvgBranches float64
	AvgInstrs   float64
}

// StatsOf computes dynamic path statistics from a profiling run.
func StatsOf(res *vm.Result) PathStats {
	var paths, branches, instrs int64
	for name, pp := range res.Paths {
		d := res.DAGs[name]
		for _, pc := range pp.Paths() {
			paths += pc.Count
			branches += int64(pc.Path.Branches(d)) * pc.Count
			instrs += int64(pc.Path.Instrs()) * pc.Count
		}
	}
	st := PathStats{DynPaths: paths}
	if paths > 0 {
		st.AvgBranches = float64(branches) / float64(paths)
		st.AvgInstrs = float64(instrs) / float64(paths)
	}
	return st
}

// Mode is a routine's position on the degraded-profiling ladder. The
// profiler never gives up on a routine outright: when the requested
// techniques cannot number its paths it falls to TPP's aggressive
// cold-path removal, and when even that overflows — or runtime
// counters saturate — it drops to the edge profile, which is always
// collectable.
type Mode int

const (
	// ModeFull: the requested techniques produced the plan.
	ModeFull Mode = iota
	// ModeTPP: path counts stayed above the numbering limit after SAC,
	// so the routine fell back to TPP's local cold-edge criterion.
	ModeTPP
	// ModeEdgeOnly: even the TPP fallback could not number the routine,
	// or its runtime counters saturated; only the edge profile is
	// trustworthy for it.
	ModeEdgeOnly
)

func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeTPP:
		return "tpp"
	case ModeEdgeOnly:
		return "edge-only"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ProfilerResult is one profiler's instrumented run plus evaluation.
type ProfilerResult struct {
	Name  string
	Tech  instr.Techniques
	Plans map[string]*instr.Plan
	Run   *vm.Result
	Eval  *eval.Program

	// SACAdjusted counts routines whose global criterion self-adjusted
	// and MaxSACIterations the largest iteration count (Section 4.3).
	SACAdjusted      int
	MaxSACIterations int
	HashedRoutines   int

	// Modes is each routine's degradation level; routines absent from
	// the map did not degrade (ModeFull).
	Modes map[string]Mode
}

// ModeOf returns the routine's degradation level.
func (pr *ProfilerResult) ModeOf(fn string) Mode { return pr.Modes[fn] }

// Degraded counts routines below ModeFull.
func (pr *ProfilerResult) Degraded() int {
	n := 0
	for _, m := range pr.Modes {
		if m != ModeFull {
			n++
		}
	}
	return n
}

// ModeSummary renders the run's ladder state compactly for reports:
// "full" when nothing degraded, otherwise per-level routine counts
// like "tpp:2 edge-only:1".
func (pr *ProfilerResult) ModeSummary() string {
	var tpp, edge int
	for _, m := range pr.Modes {
		switch m {
		case ModeTPP:
			tpp++
		case ModeEdgeOnly:
			edge++
		}
	}
	if tpp == 0 && edge == 0 {
		return "full"
	}
	s := ""
	if tpp > 0 {
		s = fmt.Sprintf("tpp:%d", tpp)
	}
	if edge > 0 {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("edge-only:%d", edge)
	}
	return s
}

// Overhead returns the profiler's runtime overhead.
func (pr *ProfilerResult) Overhead() float64 { return pr.Run.Overhead() }

// Profile builds instrumentation plans for the given techniques, runs
// the instrumented program, and packages the evaluation. The guiding
// edge profile is the optimized program's own run ("self" advice).
func (s *Staged) Profile(name string, tech instr.Techniques) (*ProfilerResult, error) {
	return s.ProfileWith(name, tech, s.Base.Edges)
}

// ProfileWith is Profile with an explicit guiding edge profile, e.g.
// one loaded from disk (profile.ReadEdgeProfiles) or from a different
// input — the classic two-run profile-guided workflow, and the way to
// study stale-profile behaviour.
func (s *Staged) ProfileWith(name string, tech instr.Techniques, guide map[string]*profile.EdgeProfile) (*ProfilerResult, error) {
	pr := &ProfilerResult{Name: name, Tech: tech, Plans: map[string]*instr.Plan{}, Modes: map[string]Mode{}}
	par := s.Pipeline.Instr
	par.Unit = s.Pipeline.Name + "/" + name
	if err := s.buildPlans(pr, tech, guide, par); err != nil {
		return nil, err
	}
	plans := pr.Plans
	run, err := vm.Run(s.Prog, vm.Options{
		Costs: s.Pipeline.Costs, Entry: s.Pipeline.Entry, MaxSteps: s.Pipeline.MaxSteps,
		Plans: plans, CollectPaths: true,
		Metrics: s.Pipeline.Metrics, Backend: s.Pipeline.Backend,
	})
	if err != nil {
		return nil, fmt.Errorf("%s/%s: instrumented run: %w", s.Pipeline.Name, name, err)
	}
	if run.Ret != s.Base.Ret {
		return nil, fmt.Errorf("%s/%s: instrumentation changed the result", s.Pipeline.Name, name)
	}
	pr.Run = run

	// Runtime overflow is the ladder's last rung: a saturated counter
	// table means the routine's path counts are lower bounds, so its
	// consumers must fall back to the edge profile. Saturated routines
	// are collected into a sorted set first so trace emission order is
	// deterministic.
	saturated := map[string]bool{}
	for fn, tab := range run.Tables {
		if tab.Saturated {
			saturated[fn] = true
		}
	}
	for fn, pp := range run.Paths {
		if pp.Saturated {
			saturated[fn] = true
		}
	}
	satNames := make([]string, 0, len(saturated))
	for fn := range saturated {
		satNames = append(satNames, fn)
	}
	sort.Strings(satNames)
	for _, fn := range satNames {
		pr.Modes[fn] = ModeEdgeOnly
		par.Trace.Emit(telemetry.Event{
			Unit: par.Unit, Routine: fn, Kind: telemetry.EvSaturate,
			Flow:   s.baseFlowOf(fn),
			Detail: "runtime counter saturation: path counts are lower bounds, demoted to edge-only",
		})
	}

	var routines []*eval.Routine
	names := make([]string, 0, len(plans))
	for n := range plans {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		routines = append(routines, &eval.Routine{
			Name:  n,
			Plan:  plans[n],
			Table: run.Tables[n],
			Truth: run.Paths[n],
		})
	}
	pr.Eval = eval.New(routines)
	return pr, nil
}

// PlansFor builds the per-routine instrumentation plans ProfileWith
// would use — degraded-mode ladder included — without executing the
// instrumented program, under an explicit probe placement mode. The
// path-plan side is identical across placements (probe placement only
// decides which transitions carry edge counters), which is what lets
// bench pair spanning and min-cost plan sets over one staged program
// and compare their acquisition cost head to head.
func (s *Staged) PlansFor(name string, tech instr.Techniques, pl instr.Placement) (map[string]*instr.Plan, error) {
	return s.PlansGuided(name, tech, pl, s.Base.Edges)
}

// PlansGuided is PlansFor with an explicit guiding edge profile — the
// profile service's plan endpoint builds plans against the live
// merged aggregate this way, without executing anything. A nil guide
// falls back to the staged base profile.
func (s *Staged) PlansGuided(name string, tech instr.Techniques, pl instr.Placement, guide map[string]*profile.EdgeProfile) (map[string]*instr.Plan, error) {
	pr := &ProfilerResult{Name: name, Tech: tech, Plans: map[string]*instr.Plan{}, Modes: map[string]Mode{}}
	par := s.Pipeline.Instr
	par.Placement = pl
	par.Unit = s.Pipeline.Name + "/" + name
	if guide == nil {
		guide = s.Base.Edges
	}
	if err := s.buildPlans(pr, tech, guide, par); err != nil {
		return nil, err
	}
	return pr.Plans, nil
}

// buildPlans fills pr.Plans (and the plan-time ladder state) for every
// routine of the staged program, guided by the given edge profile.
func (s *Staged) buildPlans(pr *ProfilerResult, tech instr.Techniques, guide map[string]*profile.EdgeProfile, par instr.Params) error {
	total := s.TotalUnitFlow()
	name := pr.Name
	plans := pr.Plans
	for _, f := range s.Prog.Funcs {
		g, err := f.CFG()
		if err != nil {
			return fmt.Errorf("%s/%s: cfg %s: %w", s.Pipeline.Name, name, f.Name, err)
		}
		if ep := guide[f.Name]; ep != nil {
			ep.ApplyTo(g)
		}
		plan, err := instr.Build(g, tech, par, total)
		if err != nil {
			return fmt.Errorf("%s/%s: plan %s: %w", s.Pipeline.Name, name, f.Name, err)
		}
		// Degraded-mode ladder: a routine whose path space defeats the
		// requested techniques (SAC included) retries under TPP's local
		// criterion, which removes cold paths far more aggressively; if
		// even that cannot number it, the routine runs uninstrumented
		// and is served by the edge profile alone.
		if plan.Reason == "too-many-paths" {
			tppPlan, tppErr := instr.Build(g, instr.TPP(), par, total)
			if tppErr == nil && tppPlan.Reason != "too-many-paths" {
				plan = tppPlan
				pr.Modes[f.Name] = ModeTPP
				s.emitDemote(par, f.Name, ModeTPP,
					"too-many-paths: demoted to TPP cold-path removal")
			} else {
				pr.Modes[f.Name] = ModeEdgeOnly
				s.emitDemote(par, f.Name, ModeEdgeOnly,
					"too-many-paths under TPP too: demoted to edge-only")
			}
		}
		plans[f.Name] = plan
		if plan.SACIterations > 0 {
			pr.SACAdjusted++
			if plan.SACIterations > pr.MaxSACIterations {
				pr.MaxSACIterations = plan.SACIterations
			}
		}
		if plan.Hash {
			pr.HashedRoutines++
		}
	}
	return nil
}

// baseFlowOf returns the routine's ground-truth dynamic path count,
// the flow at stake when a whole routine leaves path profiling.
func (s *Staged) baseFlowOf(fn string) int64 {
	if pp := s.Base.Paths[fn]; pp != nil {
		return pp.Total()
	}
	return 0
}

// emitDemote records a degraded-mode ladder step in the decision trace.
func (s *Staged) emitDemote(par instr.Params, fn string, to Mode, detail string) {
	if par.Trace == nil {
		return
	}
	par.Trace.Emit(telemetry.Event{
		Unit: par.Unit, Routine: fn, Kind: telemetry.EvModeDemote,
		Flow: s.baseFlowOf(fn), Detail: detail + " (" + to.String() + ")",
	})
}

// EdgeOverheadRun measures software edge-profiling instrumentation
// cost on the optimized program. The paper treats edge profiling as
// nearly free (sampling or hardware support, 0.5-3%); this models the
// naive software-counter alternative.
func (s *Staged) EdgeOverheadRun() (*vm.Result, error) {
	return vm.Run(s.Prog, vm.Options{
		Costs: s.Pipeline.Costs, Entry: s.Pipeline.Entry,
		MaxSteps: s.Pipeline.MaxSteps, EdgeInstrument: true,
		Metrics: s.Pipeline.Metrics, Backend: s.Pipeline.Backend,
	})
}

// Profilers returns the paper's three profiler configurations in
// presentation order.
func Profilers() []struct {
	Name string
	Tech instr.Techniques
} {
	return []struct {
		Name string
		Tech instr.Techniques
	}{
		{"PP", instr.PP()},
		{"TPP", instr.TPP()},
		{"PPP", instr.PPP()},
	}
}

// Ablations returns the Figure 13 leave-one-out configurations: PPP
// with one technique disabled. SAC and the global criterion are
// evaluated as one technique, as in the paper.
func Ablations() map[string]instr.Techniques {
	drop := func(mod func(*instr.Techniques)) instr.Techniques {
		t := instr.PPP()
		mod(&t)
		return t
	}
	return map[string]instr.Techniques{
		"SAC":  drop(func(t *instr.Techniques) { t.SelfAdjust = false; t.GlobalCold = false }),
		"FP":   drop(func(t *instr.Techniques) { t.FreePoison = false }),
		"Push": drop(func(t *instr.Techniques) { t.PushFurther = false }),
		"SPN":  drop(func(t *instr.Techniques) { t.SmartNumber = false }),
		"LC":   drop(func(t *instr.Techniques) { t.LowCoverage = false }),
	}
}
