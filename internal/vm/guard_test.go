package vm_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pathprof/internal/cfg"
	"pathprof/internal/faultinject"
	"pathprof/internal/lower"
	"pathprof/internal/profile"
	"pathprof/internal/vm"
)

func runReplicated(t *testing.T, opts vm.Options, n, par int) *vm.ReplicatedResult {
	t.Helper()
	prog := compile(t, loopSrc, lower.Options{})
	rr, err := vm.RunReplicated(prog, opts, n, par)
	if err != nil {
		t.Fatalf("RunReplicated: %v", err)
	}
	return rr
}

// TestGuardZeroFaultBitIdentical checks that merely enabling guarded
// mode (no faults injected) changes nothing: same merged fingerprint,
// no quarantines.
func TestGuardZeroFaultBitIdentical(t *testing.T) {
	opts := vm.Options{CollectEdges: true, CollectPaths: true}
	plain := runReplicated(t, opts, 12, 4)

	opts.Guard = &vm.GuardConfig{ReplicaRetries: 2, ReplicaDeadline: time.Minute}
	guarded := runReplicated(t, opts, 12, 4)

	if len(guarded.Faults) != 0 || guarded.LostReplicas != 0 {
		t.Fatalf("clean guarded run reported faults: %v", guarded.Faults)
	}
	if plain.Merged.Fingerprint() != guarded.Merged.Fingerprint() {
		t.Error("guarded zero-fault snapshot differs from unguarded")
	}
	if guarded.Ret != plain.Ret || guarded.Survivors() != 12 {
		t.Errorf("ret=%d survivors=%d, want %d/12", guarded.Ret, guarded.Survivors(), plain.Ret)
	}
}

// TestGuardCleanFaultRetries injects a hook error on the first attempt
// of every replica; with a retry budget the run must succeed with no
// quarantine and a bit-identical snapshot.
func TestGuardCleanFaultRetries(t *testing.T) {
	opts := vm.Options{CollectEdges: true, CollectPaths: true}
	want := runReplicated(t, opts, 8, 4).Merged.Fingerprint()

	opts.Guard = &vm.GuardConfig{
		ReplicaRetries: 1,
		FaultHook: func(ctx vm.FaultContext) error {
			if ctx.Attempt == 0 {
				return fmt.Errorf("injected pre-run fault")
			}
			return nil
		},
	}
	rr := runReplicated(t, opts, 8, 4)
	if len(rr.Faults) != 0 {
		t.Fatalf("retryable faults quarantined: %v", rr.Faults)
	}
	if rr.Merged.Fingerprint() != want {
		t.Error("retried run snapshot differs from clean run")
	}
}

// TestGuardExhaustedRetriesQuarantines exhausts the retry budget on
// selected workers and checks the quarantine: the merged snapshot must
// equal a run that only ever executed the surviving replicas, and the
// lost-flow accounting must cover the dead shards' whole blocks.
func TestGuardExhaustedRetriesQuarantines(t *testing.T) {
	opts := vm.Options{CollectEdges: true, CollectPaths: true}
	// 8 replicas over 4 workers: blocks of 2. Workers 1 and 2 die, so
	// 4 replicas survive; identical replicas make the expected merge
	// equal to a clean 4-replica run.
	want := runReplicated(t, opts, 4, 2).Merged.Fingerprint()

	dead := map[int]bool{1: true, 2: true}
	opts.Guard = &vm.GuardConfig{
		ReplicaRetries: 2,
		FaultHook: func(ctx vm.FaultContext) error {
			if dead[ctx.Worker] {
				return fmt.Errorf("injected persistent fault on worker %d", ctx.Worker)
			}
			return nil
		},
	}
	rr := runReplicated(t, opts, 8, 4)
	if len(rr.Faults) != 2 || rr.LostReplicas != 4 || rr.Survivors() != 4 {
		t.Fatalf("faults=%v lost=%d, want 2 faults / 4 lost", rr.Faults, rr.LostReplicas)
	}
	for _, f := range rr.Faults {
		if !dead[f.Worker] || f.Tainted || f.Attempts != 3 || f.Lost != 2 {
			t.Errorf("unexpected fault shape: %+v", f)
		}
		if !strings.Contains(f.String(), "clean quarantine") {
			t.Errorf("fault string %q", f.String())
		}
	}
	if rr.Merged.Fingerprint() != want {
		t.Error("quarantined merge differs from a clean run of the survivors")
	}
}

// TestGuardPanicInRunTaintsShard panics inside the run (via the path
// hook) on one worker: the shard must be quarantined as tainted and
// the rest of the run survive.
func TestGuardPanicInRunTaintsShard(t *testing.T) {
	opts := vm.Options{
		CollectEdges: true, CollectPaths: true,
		PathHookFor: func(w int) func(fn string, p cfg.Path) {
			if w != 1 {
				return nil
			}
			return func(fn string, p cfg.Path) {
				panic("injected mid-run panic")
			}
		},
		Guard: &vm.GuardConfig{ReplicaRetries: 3},
	}
	rr := runReplicated(t, opts, 8, 4)
	if len(rr.Faults) != 1 {
		t.Fatalf("faults = %v, want exactly worker 1", rr.Faults)
	}
	f := rr.Faults[0]
	// A mid-run panic is NOT retried: the shard is already suspect.
	if f.Worker != 1 || !f.Tainted || f.Attempts != 1 || f.Lost != 2 {
		t.Errorf("fault = %+v, want tainted single-attempt quarantine of worker 1", f)
	}
	if !strings.Contains(f.Err.Error(), "injected mid-run panic") {
		t.Errorf("fault error %v", f.Err)
	}
	want := runReplicated(t, vm.Options{CollectEdges: true, CollectPaths: true}, 6, 3).Merged.Fingerprint()
	if rr.Merged.Fingerprint() != want {
		t.Error("merge after tainted quarantine differs from clean survivor run")
	}
}

// TestGuardStallDeadline stalls one worker's hook past the replica
// deadline; the worker quarantines after its bounded retries instead
// of hanging the run.
func TestGuardStallDeadline(t *testing.T) {
	opts := vm.Options{
		CollectEdges: true,
		Guard: &vm.GuardConfig{
			ReplicaRetries:  1,
			ReplicaDeadline: 5 * time.Millisecond,
			FaultHook: func(ctx vm.FaultContext) error {
				if ctx.Worker == 0 {
					time.Sleep(12 * time.Millisecond)
				}
				return nil
			},
		},
	}
	rr := runReplicated(t, opts, 4, 2)
	if len(rr.Faults) != 1 || rr.Faults[0].Worker != 0 {
		t.Fatalf("faults = %v, want stalled worker 0", rr.Faults)
	}
	if !strings.Contains(rr.Faults[0].Err.Error(), "deadline") {
		t.Errorf("fault error %v, want a deadline error", rr.Faults[0].Err)
	}
	if rr.Survivors() != 2 {
		t.Errorf("survivors = %d, want 2", rr.Survivors())
	}
}

// TestGuardAllShardsQuarantined: when every shard dies the guarded run
// reports a structured error instead of returning an empty snapshot.
func TestGuardAllShardsQuarantined(t *testing.T) {
	prog := compile(t, loopSrc, lower.Options{})
	opts := vm.Options{
		CollectEdges: true,
		Guard: &vm.GuardConfig{
			FaultHook: func(ctx vm.FaultContext) error { return fmt.Errorf("boom") },
		},
	}
	_, err := vm.RunReplicated(prog, opts, 4, 2)
	if err == nil || !strings.Contains(err.Error(), "all 2 shards quarantined") {
		t.Fatalf("err = %v, want all-shards-quarantined", err)
	}
}

// TestGuardOverflowPreload uses the hook's sink access to preload a
// counter at the ceiling; the merged snapshot must surface the
// saturated routine without quarantining anything.
func TestGuardOverflowPreload(t *testing.T) {
	opts := vm.Options{
		CollectEdges: true, CollectPaths: true,
		Guard: &vm.GuardConfig{
			FaultHook: func(ctx vm.FaultContext) error {
				if ctx.Replica == 0 && ctx.Attempt == 0 {
					ctx.Sink.EdgeProfile("work").Add(0, 1, profile.CounterMax)
					ctx.Sink.EdgeProfile("work").Add(0, 1, profile.CounterMax)
				}
				return nil
			},
		},
	}
	rr := runReplicated(t, opts, 8, 4)
	if len(rr.Faults) != 0 {
		t.Fatalf("overflow pressure quarantined a shard: %v", rr.Faults)
	}
	sat := rr.Merged.SaturatedRoutines()
	if len(sat) != 1 || sat[0] != "work" {
		t.Fatalf("SaturatedRoutines = %v, want [work]", sat)
	}
}

// TestGuardFaultMatrixDeterministic drives the faultinject kinds that
// act at this layer through guarded runs twice each and demands
// identical outcomes: same fingerprints, same fault lists, no crash.
func TestGuardFaultMatrixDeterministic(t *testing.T) {
	prog := compile(t, loopSrc, lower.Options{})
	for _, kind := range []faultinject.Kind{faultinject.Panic, faultinject.Overflow} {
		for _, seed := range []uint64{1, 7, 2026} {
			spec := fmt.Sprintf("seed=%d,kind=%s", seed, kind)
			inj, err := faultinject.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			run := func() (uint64, string) {
				opts := vm.Options{
					CollectEdges: true, CollectPaths: true,
					Guard: &vm.GuardConfig{
						ReplicaRetries: 1,
						FaultHook:      GuardHookForTest(inj),
					},
				}
				rr, err := vm.RunReplicated(prog, opts, 12, 4)
				if err != nil {
					// All shards dead is an acceptable structured outcome,
					// but it must be stable across repeats.
					return 0, err.Error()
				}
				return rr.Merged.Fingerprint(), fmt.Sprint(rr.Faults)
			}
			fp1, f1 := run()
			fp2, f2 := run()
			if fp1 != fp2 || f1 != f2 {
				t.Errorf("%s: outcomes diverge across repeats:\n%x %s\n%x %s", spec, fp1, f1, fp2, f2)
			}
		}
	}
}

// GuardHookForTest adapts a faultinject.Injector to a guard hook the
// way the CLI wires it: panic and overflow keyed by replica index so
// the injected fault set is independent of worker count.
func GuardHookForTest(inj *faultinject.Injector) func(vm.FaultContext) error {
	return func(ctx vm.FaultContext) error {
		site := uint64(ctx.Replica)
		if ctx.Attempt == 0 && inj.Hit(faultinject.Panic, site) {
			panic(fmt.Sprintf("faultinject: panic at replica %d", ctx.Replica))
		}
		if ctx.Attempt == 0 && inj.Hit(faultinject.Overflow, site) {
			ep := ctx.Sink.EdgeProfile("work")
			ep.Add(0, 1, profile.CounterMax)
			ep.Add(0, 1, profile.CounterMax)
		}
		return nil
	}
}
