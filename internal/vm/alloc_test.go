package vm

import (
	"testing"

	"pathprof/internal/instr"
	"pathprof/internal/lower"
)

const allocSrc = `
var acc = 0;
func work(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
	}
	return s;
}
func main() {
	for (var k = 0; k < 8; k = k + 1) { acc = acc + work(12); }
	return acc;
}`

// TestCompiledSteadyStateAllocs pins the compiled backend's zero-alloc
// contract: after the first replica has grown the path trie, interned
// its paths, and sized the frame and path pools, every further replica
// must allocate nothing. This is what makes replicated runs scale —
// the hot loop neither allocates nor shares, so workers never touch
// the allocator or each other.
func TestCompiledSteadyStateAllocs(t *testing.T) {
	prog, err := lower.Compile(allocSrc, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}

	steady := func(t *testing.T, opts Options) {
		t.Helper()
		opts.Backend = BackendCompiled
		e, err := NewEngine(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.bind(nil, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		replica := func() {
			b.x.Reset()
			if _, err := b.x.Run(e.entryIdx, nil); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			replica() // warm: trie nodes, interned paths, pools
		}
		if avg := testing.AllocsPerRun(20, replica); avg != 0 {
			t.Errorf("steady-state replica allocates %.1f times, want 0", avg)
		}
	}

	t.Run("profiling", func(t *testing.T) {
		steady(t, Options{CollectEdges: true, CollectPaths: true})
	})

	t.Run("instrumented", func(t *testing.T) {
		profiled, err := Run(prog, Options{CollectEdges: true, CollectPaths: true})
		if err != nil {
			t.Fatal(err)
		}
		plans := map[string]*instr.Plan{}
		for _, f := range prog.Funcs {
			g, err := f.CFG()
			if err != nil {
				t.Fatal(err)
			}
			profiled.Edges[f.Name].ApplyTo(g)
			p, err := instr.Build(g, instr.PP(), instr.DefaultParams(), 0)
			if err != nil {
				t.Fatalf("plan %s: %v", f.Name, err)
			}
			plans[f.Name] = p
		}
		steady(t, Options{Plans: plans, CollectPaths: true})
	})
}
