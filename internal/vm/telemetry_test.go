package vm_test

import (
	"testing"

	"pathprof/internal/telemetry"
	"pathprof/internal/vm"
)

// TestVMMetricsMatchExactProfile cross-checks the hot-loop counters
// against the exact profile the same run collects: every completed
// Ball-Larus path bumps ppp_vm_paths_total and observes its length, so
// the folded counter must equal the path profile's total flow.
func TestVMMetricsMatchExactProfile(t *testing.T) {
	prog := hotProgram(t)
	reg := telemetry.NewRegistry(1)
	m := telemetry.NewVMMetrics(reg)
	res, err := vm.Run(prog, vm.Options{CollectEdges: true, CollectPaths: true, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, pp := range res.Paths {
		total += pp.Total()
	}
	if total == 0 {
		t.Fatal("workload completed no paths; probe is vacuous")
	}
	if got := m.Paths.Value(); got != total {
		t.Errorf("ppp_vm_paths_total = %d, path profile total = %d", got, total)
	}
	if got := m.PathLen.Count(); got != total {
		t.Errorf("ppp_vm_path_len count = %d, want one observation per path (%d)", got, total)
	}
	if m.Transitions.Value() == 0 {
		t.Error("ppp_vm_transitions_total stayed zero over a multi-block run")
	}

	// The same run without a sink must execute identically.
	bare, err := vm.Run(prog, vm.Options{CollectEdges: true, CollectPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Steps != res.Steps || bare.Ret != res.Ret {
		t.Errorf("metrics changed execution: steps %d vs %d, ret %d vs %d",
			res.Steps, bare.Steps, res.Ret, bare.Ret)
	}
	if bare.Snapshot().Fingerprint() != res.Snapshot().Fingerprint() {
		t.Error("metrics changed the collected profile")
	}
}

// TestVMMetricsInstrumentedCounters runs a PP plan and checks the
// instrumentation-op counters move: ops execute on transitions and
// table increments record completed instrumented paths.
func TestVMMetricsInstrumentedCounters(t *testing.T) {
	prog := hotProgram(t)
	plans := ppPlans(t, prog)
	reg := telemetry.NewRegistry(1)
	m := telemetry.NewVMMetrics(reg)
	if _, err := vm.Run(prog, vm.Options{Plans: plans, CollectPaths: true, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if m.Ops.Value() == 0 {
		t.Error("ppp_vm_instr_ops_total stayed zero under a PP plan")
	}
	if m.TableIncs.Value() == 0 {
		t.Error("ppp_vm_table_incs_total stayed zero under a PP plan")
	}
}

// TestReplicatedMetricsFoldAcrossWorkers runs the same replicated
// collection at several worker counts, each into a fresh registry, and
// demands the folded totals agree: sharding moves increments between
// cells, never changes their sum.
func TestReplicatedMetricsFoldAcrossWorkers(t *testing.T) {
	prog := hotProgram(t)
	const replicas = 8
	var wantPaths, wantTrans int64
	for _, par := range []int{1, 2, 4, 8} {
		reg := telemetry.NewRegistry(par)
		m := telemetry.NewVMMetrics(reg)
		opts := vm.Options{CollectEdges: true, CollectPaths: true, Metrics: m}
		if _, err := vm.RunReplicated(prog, opts, replicas, par); err != nil {
			t.Fatal(err)
		}
		paths, trans := m.Paths.Value(), m.Transitions.Value()
		if paths == 0 || trans == 0 {
			t.Fatalf("par=%d: counters stayed zero (paths=%d transitions=%d)", par, paths, trans)
		}
		if par == 1 {
			wantPaths, wantTrans = paths, trans
			continue
		}
		if paths != wantPaths || trans != wantTrans {
			t.Errorf("par=%d: folded (paths=%d, transitions=%d), want (%d, %d)",
				par, paths, trans, wantPaths, wantTrans)
		}
	}
}

// TestRunAllocsWithMetricsInstalled extends the steady-state allocation
// budget to the installed-sink path: per-transition metric bumps must
// not allocate, so a metered run stays within the same per-run constant
// as a bare one.
func TestRunAllocsWithMetricsInstalled(t *testing.T) {
	prog := hotProgram(t)
	reg := telemetry.NewRegistry(1)
	m := telemetry.NewVMMetrics(reg)
	opts := vm.Options{CollectEdges: true, CollectPaths: true, Metrics: m}
	if _, err := vm.Run(prog, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := vm.Run(prog, opts); err != nil {
			t.Fatal(err)
		}
	})
	// Same budget as TestSteadyStateTransitionAllocs: run setup only,
	// nothing proportional to the ~200k metered transitions.
	const budget = 500
	if allocs > budget {
		t.Errorf("metered Run allocated %.0f times; budget %d (telemetry bumps allocate)", allocs, budget)
	}
}
