package compile

import (
	"errors"
	"fmt"
	"io"
	"math"

	"pathprof/internal/cfg"
	"pathprof/internal/profile"
	"pathprof/internal/telemetry"
)

// ErrMaxSteps is returned when the step budget is exhausted. The vm
// engine translates it to vm.ErrMaxSteps (compile cannot import vm).
var ErrMaxSteps = errors.New("compile: step budget exhausted")

// FuncRun binds one routine to its run containers, in function index
// order. The engine fills these from the run's profile sink (or fresh
// containers); which fields must be non-nil follows from the Options
// the Program was compiled with: Edges under CollectEdges, Paths under
// CollectPaths, Table for instrumented routines.
type FuncRun struct {
	Edges *profile.EdgeProfile
	Paths *profile.PathProfile
	Table *profile.Table
}

// Config is the per-worker run configuration: the worker's profile
// containers, telemetry cells, path hook, and step budget. One Exec
// per worker serves all of its replicas via Reset.
type Config struct {
	Fts      []FuncRun
	Out      io.Writer
	Tel      telemetry.VMCells
	PathHook func(fn string, p cfg.Path)
	MaxSteps int64 // <= 0 means unlimited
}

// Counters are the run's accounting totals, matching the interpreter's
// Result fields.
type Counters struct {
	Steps     int64
	BaseCost  int64
	InstrCost int64
	DynCalls  int64
}

// frame is one activation record. Register and path slices are pooled
// across calls and replicas; trie is the incremental path-trie cursor
// into ft.Paths.
type frame struct {
	fc      *fnCode
	ft      *FuncRun
	regs    []int64
	r       int64 // path register
	path    cfg.Path
	trie    int32
	bc      *blockCode
	seg     int32
	callDst int32
}

// Exec runs a compiled Program. The Program is immutable and shared;
// every piece of mutable run state lives here, so each worker owns an
// Exec and the closures race on nothing.
type Exec struct {
	p         *Program
	globals   []int64
	arrays    [][]int64
	fts       []FuncRun
	out       io.Writer
	tel       telemetry.VMCells
	pathHook  func(fn string, p cfg.Path)
	maxSteps  int64
	bumpCalls bool

	steps    int64
	base     int64
	icost    int64
	dynCalls int64
	ret      int64

	stack []*frame
	pool  []*frame
	// rootMemo caches, per function and back edge, the trie node the
	// entry-dummy Step from the root resolves to. Trie nodes are only
	// appended for a binding's lifetime, so the memo never goes stale.
	rootMemo [][]int32
}

// NewExec binds a compiled program to one worker's containers.
func NewExec(p *Program, cfg Config) (*Exec, error) {
	if len(cfg.Fts) != len(p.fns) {
		return nil, fmt.Errorf("compile: %d run containers for %d functions", len(cfg.Fts), len(p.fns))
	}
	x := &Exec{
		p:         p,
		fts:       cfg.Fts,
		out:       cfg.Out,
		tel:       cfg.Tel,
		pathHook:  cfg.PathHook,
		maxSteps:  cfg.MaxSteps,
		bumpCalls: p.opts.CollectEdges,
	}
	if x.maxSteps <= 0 {
		x.maxSteps = math.MaxInt64
	}
	x.globals = append([]int64(nil), p.globalInit...)
	x.rootMemo = make([][]int32, len(p.fns))
	for i := range p.fns {
		if n := p.fns[i].memoN; n > 0 {
			x.rootMemo[i] = make([]int32, n)
		}
	}
	x.arrays = make([][]int64, len(p.arraySizes))
	for i, sz := range p.arraySizes {
		x.arrays[i] = make([]int64, sz)
	}
	return x, nil
}

// Reset restores program state (globals, arrays) and zeroes the run
// accounting, keeping pooled frames and profile containers: exactly
// what the next replica of a batched run needs.
func (x *Exec) Reset() {
	copy(x.globals, x.p.globalInit)
	for _, a := range x.arrays {
		for i := range a {
			a[i] = 0
		}
	}
	for _, fr := range x.stack {
		x.freeFrame(fr)
	}
	x.stack = x.stack[:0]
	x.steps, x.base, x.icost, x.dynCalls, x.ret = 0, 0, 0, 0, 0
}

// Counters returns the accounting of the last Run.
func (x *Exec) Counters() Counters {
	return Counters{Steps: x.steps, BaseCost: x.base, InstrCost: x.icost, DynCalls: x.dynCalls}
}

func (x *Exec) newFrame(fi, callDst int32) *frame {
	fc := &x.p.fns[fi]
	var fr *frame
	if n := len(x.pool); n > 0 {
		fr = x.pool[n-1]
		x.pool = x.pool[:n-1]
	} else {
		fr = &frame{}
	}
	fr.fc = fc
	fr.ft = &x.fts[fi]
	fr.bc = &fc.blocks[fc.entry]
	fr.seg = 0
	fr.r = 0
	fr.trie = 0
	fr.callDst = callDst
	if cap(fr.regs) < fc.nregs {
		fr.regs = make([]int64, fc.nregs)
	} else {
		fr.regs = fr.regs[:fc.nregs]
		for i := range fr.regs {
			fr.regs[i] = 0
		}
	}
	fr.path = fr.path[:0]
	if x.bumpCalls {
		fr.ft.Edges.BumpCalls()
	}
	return fr
}

// rootStep resolves the back-edge restart Step from the trie root,
// memoized per (function, back edge): node 0 is the root itself, never
// a Step result, so it doubles as the empty sentinel.
func (x *Exec) rootStep(fr *frame, memoID int, edID int32) int32 {
	mm := x.rootMemo[fr.fc.fi]
	if n := mm[memoID]; n != 0 {
		return n
	}
	n := fr.ft.Paths.Step(0, edID)
	mm[memoID] = n
	return n
}

func (x *Exec) freeFrame(fr *frame) {
	fr.fc = nil
	fr.ft = nil
	fr.bc = nil
	x.pool = append(x.pool, fr)
}

// pushFrame activates a callee frame and applies the entry precharge:
// a solo entry block's step/cost charge lands here (transitions into
// solo blocks fold the same charge into terminator constants), so the
// main loop's solo path never touches the charge fields.
func (x *Exec) pushFrame(fi, callDst int32) *frame {
	fr := x.newFrame(fi, callDst)
	x.stack = append(x.stack, fr)
	x.steps += fr.fc.entrySteps
	x.base += fr.fc.entryCost
	return fr
}

// Run executes function entry (a program function index) to
// completion. The outer loop only walks segments and frames; all
// per-instruction and per-transition work happens inside the compiled
// closures.
//
// The step budget is enforced per segment: the run errors at a segment
// boundary exactly when the interpreter would error inside it (the
// interpreter checks after each instruction's increment and a segment
// of n instructions always increments n times before its terminator,
// which never checks). On error the partial Result is discarded by the
// caller, so the skipped segment's register/global effects are
// unobservable; only Output prints from the doomed segment differ from
// the interpreter, which emits them before noticing the exhaustion.
func (x *Exec) Run(entry int, args []int64) (int64, error) {
	fc := &x.p.fns[entry]
	if len(args) != fc.nparams {
		return 0, fmt.Errorf("compile: %s expects %d args, got %d", fc.name, fc.nparams, len(args))
	}
	fr := x.pushFrame(int32(entry), -1)
	copy(fr.regs, args)

outer:
	for len(x.stack) > 0 {
		fr := x.stack[len(x.stack)-1]
		for {
			bc := fr.bc
			if bc.solo {
				// Call-free single-segment block, already charged by the
				// transition (or frame push) that entered it: compare the
				// budget and run the hoisted segment. The check is gated
				// off for instruction-free blocks — the interpreter only
				// checks after instruction increments, so terminator
				// charges alone never exhaust the budget.
				if x.steps > x.maxSteps && bc.check {
					return 0, ErrMaxSteps
				}
				if bc.code != nil {
					bc.code(x, fr)
				}
			} else {
				for int(fr.seg) < len(bc.segs) {
					seg := &bc.segs[fr.seg]
					if x.steps+seg.steps > x.maxSteps {
						return 0, ErrMaxSteps
					}
					x.steps += seg.steps
					x.base += seg.cost
					fr.seg++
					if seg.code != nil {
						seg.code(x, fr)
					}
					if cs := seg.call; cs != nil {
						x.dynCalls++
						nf := x.pushFrame(cs.fi, cs.dst)
						for i, a := range cs.args {
							nf.regs[i] = fr.regs[a]
						}
						continue outer
					}
				}
			}
			nbc := bc.term(x, fr)
			if nbc != nil {
				fr.bc = nbc
				fr.seg = 0
				continue
			}
			// Return: pop, write the caller's destination register.
			x.stack = x.stack[:len(x.stack)-1]
			if n := len(x.stack); n > 0 {
				caller := x.stack[n-1]
				if fr.callDst >= 0 {
					caller.regs[fr.callDst] = x.ret
				}
			}
			x.freeFrame(fr)
			continue outer
		}
	}
	return x.ret, nil
}
