package compile

import (
	"pathprof/internal/ir"
	"pathprof/internal/planir"
)

// This file lowers terminators: every control-flow transition becomes
// ONE closure fusing successor cost, edge-profile bump,
// instrumentation ops, and path tracking. Two folds carry most of the
// weight:
//
//   - Register-op streams (OpInc/OpSet runs) reduce to a single
//     branchless masked update fr.r = (fr.r & mask) + add, because a
//     Set is (mask=0, add=V), an Inc is (mask=^0, add=V), and two such
//     folds compose into one.
//
//   - A stream with exactly one count op and no poison check reduces
//     to that same fold for the counter index plus one for the final
//     register value, with all op costs summed into a compile-time
//     constant that joins the terminator's base charge.
//
// Streams with a poison check or several counts (rare: check-based
// poisoning ablations) fall back to a generic op loop equivalent to
// the interpreter's runOps.
//
// The telemetry decision is made here, at compile time: the
// Telemetry=false build emits closures containing no counter code at
// all, rather than nil-checking a sink per transition.

// succConsts exposes one transition closure's folded compile-time
// constants to the mutation hook below.
type succConsts struct {
	Steps, Base, ICost, Mask, Add int64
}

// testMutateSucc, when non-nil, may corrupt a transition's folded
// constants after they are finalized (including the solo-successor
// charge fold), simulating a miscompiled lowering. Tests use it to
// prove translation validation actually detects broken terminators;
// it must stay nil outside tests.
var testMutateSucc func(fn string, from, to int, c *succConsts)

// lowered is the compiled form of one op stream.
type lowered struct {
	fn        instrFn // non-nil only for count-carrying streams
	mask, add int64   // register fold, applied iff fn == nil
	cost      int64   // compile-time-constant modeled cost
	n         int64   // op count, for the telemetry Ops counter
}

// foldRegs reduces a pure register-op stream to (mask, add).
func foldRegs(ops []planir.Op) (mask, add int64) {
	mask = -1
	for _, op := range ops {
		switch op.Kind {
		case planir.OpInc:
			add += op.V
		case planir.OpSet:
			mask, add = 0, op.V
		}
	}
	return mask, add
}

// composeFold chains two register folds into one (masks are only ever
// ^0 or 0, so the composition stays a single mask/add pair).
func composeFold(m1, a1, m2, a2 int64) (int64, int64) {
	if m2 == 0 {
		return 0, a2
	}
	return m1, a1 + a2
}

// lowerOps compiles an instrumentation op stream.
func (c *comp) lowerOps(ops []planir.Op) lowered {
	costs := &c.opts.Costs
	if len(ops) == 0 {
		return lowered{mask: -1}
	}
	counts := 0
	ci := -1
	for i, op := range ops {
		if op.Kind.IsCount() {
			counts++
			ci = i
		}
	}
	if counts == 0 {
		m, a := foldRegs(ops)
		return lowered{mask: m, add: a, cost: int64(len(ops)) * costs.RegOp, n: int64(len(ops))}
	}
	if counts == 1 && !c.spec.PoisonCheck {
		return c.lowerSingleCount(ops, ci)
	}
	return c.lowerGeneric(ops)
}

// lowerSingleCount specializes the dominant instrumented-transition
// shape: reg ops, one counter bump, reg ops. Everything folds to two
// masked adds and one table increment, with a constant cost.
func (c *comp) lowerSingleCount(ops []planir.Op, ci int) lowered {
	costs := &c.opts.Costs
	op := ops[ci]
	m1, a1 := foldRegs(ops[:ci])
	m2, a2 := foldRegs(ops[ci+1:])
	var im, ia int64
	switch op.Kind {
	case planir.OpCountR:
		im, ia = m1, a1
	case planir.OpCountRV:
		im, ia = m1, a1+op.V
	case planir.OpCountC:
		im, ia = 0, op.V
	}
	fm, fa := composeFold(m1, a1, m2, a2)
	var countCost int64
	switch {
	case c.spec.Hash:
		countCost = costs.CountHash
	case op.Kind == planir.OpCountC:
		countCost = costs.CountConst
	default:
		countCost = costs.CountArray
	}
	lo := lowered{
		cost: int64(len(ops)-1)*costs.RegOp + countCost,
		n:    int64(len(ops)),
	}
	c.closures++
	switch {
	case c.spec.Hash && c.opts.Telemetry:
		lo.fn = func(x *Exec, fr *frame) {
			fr.ft.Table.Inc((fr.r & im) + ia)
			x.tel.TableIncs.Inc()
			fr.r = (fr.r & fm) + fa
		}
	case c.spec.Hash:
		lo.fn = func(x *Exec, fr *frame) {
			fr.ft.Table.Inc((fr.r & im) + ia)
			fr.r = (fr.r & fm) + fa
		}
	case c.opts.Telemetry:
		lo.fn = func(x *Exec, fr *frame) {
			fr.ft.Table.IncArray((fr.r & im) + ia)
			x.tel.TableIncs.Inc()
			fr.r = (fr.r & fm) + fa
		}
	default:
		lo.fn = func(x *Exec, fr *frame) {
			fr.ft.Table.IncArray((fr.r & im) + ia)
			fr.r = (fr.r & fm) + fa
		}
	}
	return lo
}

// lowerGeneric mirrors the interpreter's runOps for the shapes the
// folds don't cover (poison checks, multiple counts). Costs are
// data-dependent here, so they accrue at run time.
func (c *comp) lowerGeneric(ops []planir.Op) lowered {
	costs := c.opts.Costs
	stream := append([]planir.Op(nil), ops...)
	hash, poison := c.spec.Hash, c.spec.PoisonCheck
	tel := c.opts.Telemetry
	c.closures++
	fn := func(x *Exec, fr *frame) {
		t := fr.ft.Table
		for _, op := range stream {
			switch op.Kind {
			case planir.OpInc:
				fr.r += op.V
				x.icost += costs.RegOp
			case planir.OpSet:
				fr.r = op.V
				x.icost += costs.RegOp
			default:
				idx := fr.r
				switch op.Kind {
				case planir.OpCountRV:
					idx += op.V
				case planir.OpCountC:
					idx = op.V
				}
				if poison {
					x.icost += costs.PoisonCheck
					if fr.r < 0 {
						t.BumpCold()
						if tel {
							x.tel.ColdBumps.Inc()
						}
						x.icost += costs.ColdBump
						continue
					}
				}
				switch {
				case hash:
					x.icost += costs.CountHash
				case op.Kind == planir.OpCountC:
					x.icost += costs.CountConst
				default:
					x.icost += costs.CountArray
				}
				t.Inc(idx)
				if tel {
					x.tel.TableIncs.Inc()
				}
			}
		}
	}
	return lowered{fn: fn, mask: -1, n: int64(len(ops))}
}

// compileTerm lowers a block terminator. Jump and Branch compile to
// successor closures that return the next block's code; Ret returns
// nil after stashing the value in x.ret. A non-nil cond (the block's
// extracted trailing comparison) dispatches the branch on the native
// bool.
func (c *comp) compileTerm(fc *fnCode, bi int, t *ir.Term, cond condFn) termFn {
	bc := &fc.blocks[bi]
	switch t.Kind {
	case ir.Ret:
		f := c.mkRet(t)
		bc.arms[0] = f
		return f
	case ir.Jump:
		f := c.mkSucc(fc, bi, &c.spec.Succs[bi][0])
		bc.arms[0] = f
		return f
	case ir.Branch:
		f0 := c.mkSucc(fc, bi, &c.spec.Succs[bi][0])
		f1 := c.mkSucc(fc, bi, &c.spec.Succs[bi][1])
		bc.arms[0], bc.arms[1] = f0, f1
		c.closures++
		if cond != nil {
			//ppp:hotpath
			return func(x *Exec, fr *frame) *blockCode {
				if cond(x, fr) {
					return f0(x, fr)
				}
				return f1(x, fr)
			}
		}
		condReg := t.Cond
		//ppp:hotpath
		return func(x *Exec, fr *frame) *blockCode {
			if fr.regs[condReg] != 0 {
				return f0(x, fr)
			}
			return f1(x, fr)
		}
	}
	return nil
}

// mkRet compiles the routine-exit terminator: complete the current
// path (already positioned in the trie by the transitions that built
// it), record the return value, signal the pop with nil.
func (c *comp) mkRet(t *ir.Term) termFn {
	baseC := c.opts.Costs.Term
	retReg := t.Ret
	name := c.fname
	tel, hooks := c.opts.Telemetry, c.opts.PathHooks
	c.closures++
	if !c.opts.CollectPaths {
		return func(x *Exec, fr *frame) *blockCode {
			x.steps++
			x.base += baseC
			if retReg >= 0 {
				x.ret = fr.regs[retReg]
			} else {
				x.ret = 0
			}
			return nil
		}
	}
	return func(x *Exec, fr *frame) *blockCode {
		x.steps++
		x.base += baseC
		fr.ft.Paths.AddAt(fr.trie, fr.path, 1)
		if tel {
			x.tel.Paths.Inc()
			x.tel.PathLen.Observe(int64(len(fr.path)))
		}
		if hooks && x.pathHook != nil {
			x.pathHook(name, fr.path)
		}
		if retReg >= 0 {
			x.ret = fr.regs[retReg]
		} else {
			x.ret = 0
		}
		return nil
	}
}

// mkSucc compiles one control-flow transition into a single closure.
// Constant charges (terminator, taken penalty, edge-instrument
// counter, folded op costs) collapse into two adds; the remaining work
// is the edge-slot bump, the op fold or call, and path tracking. Six
// build-time variants cover paths off / real edge / back edge, each
// with and without telemetry.
//
// The closure returns the successor's blockCode pointer, and when the
// successor is solo its whole segment charge folds into this
// transition's constants — the executor then only compares the budget
// before running the successor's code.
func (c *comp) mkSucc(fc *fnCode, from int, s *SuccSpec) termFn {
	costs := &c.opts.Costs
	baseC := costs.Term
	if s.To != from+1 {
		baseC += costs.TakenPenalty
	}
	lo := c.lowerOps(s.Ops)
	icostC := lo.cost + s.InstrCost
	opsFn, rm, ra, opsN := lo.fn, lo.mask, lo.add, lo.n
	// hasFold skips the identity fold: an uninstrumented transition
	// leaves the path register alone instead of rewriting it.
	hasFold := rm != -1 || ra != 0
	slot := int32(-1)
	if c.opts.CollectEdges {
		slot = s.EdgeSlot
	}
	to := &fc.blocks[s.To]
	stepsC := int64(1)
	if to.solo {
		stepsC += to.segs[0].steps
		baseC += to.segs[0].cost
	}
	if testMutateSucc != nil {
		sc := succConsts{Steps: stepsC, Base: baseC, ICost: icostC, Mask: rm, Add: ra}
		testMutateSucc(c.fname, from, s.To, &sc)
		stepsC, baseC, icostC, rm, ra = sc.Steps, sc.Base, sc.ICost, sc.Mask, sc.Add
		hasFold = rm != -1 || ra != 0
	}
	c.closures++

	if !c.opts.CollectPaths {
		if !c.opts.Telemetry {
			//ppp:hotpath
			return func(x *Exec, fr *frame) *blockCode {
				x.steps += stepsC
				x.base += baseC
				if icostC != 0 {
					x.icost += icostC
				}
				if slot >= 0 {
					fr.ft.Edges.BumpSlot(int(slot))
				}
				if opsFn != nil {
					opsFn(x, fr)
				} else {
					fr.r = (fr.r & rm) + ra
				}
				return to
			}
		}
		//ppp:hotpath
		return func(x *Exec, fr *frame) *blockCode {
			x.tel.Transitions.Inc()
			x.steps += stepsC
			x.base += baseC
			if icostC != 0 {
				x.icost += icostC
			}
			if slot >= 0 {
				fr.ft.Edges.BumpSlot(int(slot))
			}
			if opsN > 0 {
				x.tel.Ops.Add(opsN)
			}
			if opsFn != nil {
				opsFn(x, fr)
			} else if hasFold {
				fr.r = (fr.r & rm) + ra
			}
			return to
		}
	}

	if !s.Back {
		pe := s.PathEdge
		peID := int32(pe.ID)
		if !c.opts.Telemetry {
			//ppp:hotpath
			return func(x *Exec, fr *frame) *blockCode {
				x.steps += stepsC
				x.base += baseC
				if icostC != 0 {
					x.icost += icostC
				}
				if slot >= 0 {
					fr.ft.Edges.BumpSlot(int(slot))
				}
				if opsFn != nil {
					opsFn(x, fr)
				} else {
					fr.r = (fr.r & rm) + ra
				}
				fr.path = append(fr.path, pe) //ppp:allow(alloc)
				fr.trie = fr.ft.Paths.Step(fr.trie, peID)
				return to
			}
		}
		//ppp:hotpath
		return func(x *Exec, fr *frame) *blockCode {
			x.tel.Transitions.Inc()
			x.steps += stepsC
			x.base += baseC
			if icostC != 0 {
				x.icost += icostC
			}
			if slot >= 0 {
				fr.ft.Edges.BumpSlot(int(slot))
			}
			if opsN > 0 {
				x.tel.Ops.Add(opsN)
			}
			if opsFn != nil {
				opsFn(x, fr)
			} else if hasFold {
				fr.r = (fr.r & rm) + ra
			}
			fr.path = append(fr.path, pe) //ppp:allow(alloc)
			fr.trie = fr.ft.Paths.Step(fr.trie, peID)
			return to
		}
	}

	// Back edge: finish the path at the exit dummy, restart it at the
	// entry dummy. The trie cursor was advanced edge by edge, so the
	// completed path is one AddAt away.
	xd, ed := s.ExitDummy, s.EntryDummy
	xdID, edID := int32(xd.ID), int32(ed.ID)
	name := c.fname
	hooks := c.opts.PathHooks
	// The restart Step always descends from the trie root along the
	// same entry dummy, so its node is memoized per Exec after the
	// first iteration (trie nodes are stable for a binding's lifetime).
	memoID := c.memoN
	c.memoN++
	if !c.opts.Telemetry {
		//ppp:hotpath
		return func(x *Exec, fr *frame) *blockCode {
			x.steps += stepsC
			x.base += baseC
			if icostC != 0 {
				x.icost += icostC
			}
			if slot >= 0 {
				fr.ft.Edges.BumpSlot(int(slot))
			}
			if opsFn != nil {
				opsFn(x, fr)
			} else if hasFold {
				fr.r = (fr.r & rm) + ra
			}
			pp := fr.ft.Paths
			fr.path = append(fr.path, xd) //ppp:allow(alloc)
			fr.trie = pp.Step(fr.trie, xdID)
			pp.AddAt(fr.trie, fr.path, 1)
			if hooks && x.pathHook != nil {
				x.pathHook(name, fr.path)
			}
			fr.path = append(fr.path[:0], ed) //ppp:allow(alloc)
			fr.trie = x.rootStep(fr, memoID, edID)
			return to
		}
	}
	//ppp:hotpath
	return func(x *Exec, fr *frame) *blockCode {
		x.tel.Transitions.Inc()
		x.steps += stepsC
		x.base += baseC
		if icostC != 0 {
			x.icost += icostC
		}
		if slot >= 0 {
			fr.ft.Edges.BumpSlot(int(slot))
		}
		if opsN > 0 {
			x.tel.Ops.Add(opsN)
		}
		if opsFn != nil {
			opsFn(x, fr)
		} else if hasFold {
			fr.r = (fr.r & rm) + ra
		}
		pp := fr.ft.Paths
		fr.path = append(fr.path, xd) //ppp:allow(alloc)
		fr.trie = pp.Step(fr.trie, xdID)
		pp.AddAt(fr.trie, fr.path, 1)
		x.tel.Paths.Inc()
		x.tel.PathLen.Observe(int64(len(fr.path)))
		if hooks && x.pathHook != nil {
			x.pathHook(name, fr.path)
		}
		fr.path = append(fr.path[:0], ed) //ppp:allow(alloc)
		fr.trie = x.rootStep(fr, memoID, edID)
		return to
	}
}
