package compile

// Translation validation: prove, per block pair, that the compiled
// threaded code has the same observable effect as the specification it
// was lowered from. The compiled form is aggressively fused — op
// streams fold to masked adds, constant costs collapse into one
// addition, solo successors' charges migrate into their predecessors'
// terminators — so instead of trusting the folds, Validate replays
// every retained transition closure (blockCode.arms) against a
// reference interpretation built ONLY from the inputs: the ir.Func
// terminator, the SuccSpec, and the planir op stream. Both sides run
// over twin profile containers and the complete observable state is
// compared after every probe:
//
//   - path register (the fold target)
//   - step, base-cost, and instrumentation-cost deltas, with the
//     solo-successor charge derived independently from the IR (a
//     call-free successor of n instructions folds n steps and
//     n*Instr cost into the transition)
//   - returned successor identity (pointer into the function's blocks)
//   - counter-table state (array or hash), including poison-check
//     cold bumps, drops, and lost counts
//   - edge-profile counts over every canonical slot
//   - path-tracking effects: trie cursor, pending path, recorded
//     totals, and path-hook invocations
//
// Probe register values cover zero, small positives that distinguish
// mask from add, a value outside small table ranges, and negatives
// (including deep poison) that exercise the check-based cold path.
//
// Deliberately NOT validated, because the reference would have to
// mirror the implementation rather than the spec: segment register
// semantics (micro-op lowering, dead-store elimination), fused branch
// condition closures, and global/array effects of block bodies. Those
// stay covered by the dense-vs-compiled differential tests and fuzzing
// (vm package); validation owns the terminator lowering, where every
// instrumentation effect of the Bond–McKinley plans lives.
//
// What IS proven statically per function, before any probes: segment
// charges resum to the interpreter's per-instruction accounting
// (sum of seg.steps == len(instrs), sum of seg.cost == len(instrs) *
// Instr + calls*Call), the solo flag and budget-check gate match the
// call-free criterion, the entry precharge matches the entry block,
// and every live terminator arm was compiled.

import (
	"fmt"
	"math"

	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/planir"
	"pathprof/internal/profile"
)

// ValidationError reports one divergence between a compiled transition
// and its specification, naming the block pair and the probe register
// value that exposed it.
type ValidationError struct {
	Routine string
	From    int
	To      int // -1 for a Ret arm
	Arm     int // 0: Jump/Ret/taken, 1: Branch else; -1: static check
	Field   string
	Probe   int64
	Got     int64
	Want    int64
}

func (e *ValidationError) Error() string {
	if e.Arm < 0 {
		return fmt.Sprintf("compile: validate %s: block %d: %s: got %d, want %d",
			e.Routine, e.From, e.Field, e.Got, e.Want)
	}
	return fmt.Sprintf("compile: validate %s: block %d->%d arm %d: %s diverges at probe r=%d: got %d, want %d",
		e.Routine, e.From, e.To, e.Arm, e.Field, e.Probe, e.Got, e.Want)
}

// vProbes are the path-register values every arm is driven with:
// 0 and 1 separate mask from add, 5 and 97 catch swapped constants and
// out-of-range table indices (the twin tables are vTableSize wide),
// -3 and the deep NegPoison value exercise check-based poisoning and
// index wraparound.
var vProbes = []int64{0, 1, 5, 97, -3, math.MinInt64 / 4}

// vTableSize shapes the twin counter tables: small enough that probe
// 97 exercises the out-of-range Drops path on array tables.
const vTableSize = 64

// Validate proves every compiled routine equivalent to its spec;
// the first divergence is returned as a *ValidationError.
func Validate(p *Program) error {
	for fi := range p.fns {
		if err := ValidateFunc(p, fi); err != nil {
			return err
		}
	}
	return nil
}

// ValidateFunc validates one routine by function index.
func ValidateFunc(p *Program, fi int) error {
	f := p.prog.Funcs[fi]
	if err := staticCheck(p, fi); err != nil {
		return err
	}
	h, err := newVHarness(p, fi)
	if err != nil {
		return err
	}
	for bi := range f.Blocks {
		arms := 1
		if f.Blocks[bi].Term.Kind == ir.Branch {
			arms = 2
		}
		for arm := 0; arm < arms; arm++ {
			if err := h.checkArm(bi, arm); err != nil {
				return err
			}
		}
	}
	return nil
}

// staticCheck proves the per-block compiled structure against the IR:
// segment charge conservation, the solo criterion, the entry
// precharge, and arm presence.
func staticCheck(p *Program, fi int) error {
	f := p.prog.Funcs[fi]
	fc := &p.fns[fi]
	costs := &p.opts.Costs
	serr := func(bi int, field string, got, want int64) error {
		return &ValidationError{Routine: f.Name, From: bi, To: -1, Arm: -1, Field: field, Got: got, Want: want}
	}
	if len(fc.blocks) != len(f.Blocks) {
		return serr(-1, "block-count", int64(len(fc.blocks)), int64(len(f.Blocks)))
	}
	for bi := range f.Blocks {
		b := f.Blocks[bi]
		bc := &fc.blocks[bi]
		var steps, cost, calls int64
		for i := range bc.segs {
			steps += bc.segs[i].steps
			cost += bc.segs[i].cost
			if bc.segs[i].call != nil {
				calls++
			}
		}
		var wantCalls int64
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.Call {
				wantCalls++
			}
		}
		n := int64(len(b.Instrs))
		if steps != n {
			return serr(bi, "segment-steps", steps, n)
		}
		if want := n*costs.Instr + wantCalls*costs.Call; cost != want {
			return serr(bi, "segment-cost", cost, want)
		}
		if calls != wantCalls {
			return serr(bi, "segment-calls", calls, wantCalls)
		}
		solo := !hasCall(b.Instrs)
		if bc.solo != solo {
			return serr(bi, "solo", b2i(bc.solo), b2i(solo))
		}
		if solo && bc.check != (n > 0) {
			return serr(bi, "solo-check", b2i(bc.check), b2i(n > 0))
		}
		wantArms := 1
		if b.Term.Kind == ir.Branch {
			wantArms = 2
		}
		for k := 0; k < 2; k++ {
			has := bc.arms[k] != nil
			if has != (k < wantArms) {
				return serr(bi, fmt.Sprintf("arm[%d]", k), b2i(has), b2i(k < wantArms))
			}
		}
	}
	var wantES, wantEC int64
	if eb := f.Blocks[f.Entry]; !hasCall(eb.Instrs) {
		wantES = int64(len(eb.Instrs))
		wantEC = wantES * costs.Instr
	}
	if fc.entrySteps != wantES {
		return serr(f.Entry, "entry-steps", fc.entrySteps, wantES)
	}
	if fc.entryCost != wantEC {
		return serr(f.Entry, "entry-cost", fc.entryCost, wantEC)
	}
	return nil
}

// vTwin is one side's profile containers.
type vTwin struct {
	edges *profile.EdgeProfile
	paths *profile.PathProfile
	table *profile.Table
	hooks []string
}

// vHarness drives one routine's compiled arms (got side, through a
// real Exec) against the reference interpretation (ref side).
type vHarness struct {
	p    *Program
	f    *ir.Func
	spec *FuncSpec
	fc   *fnCode
	fi   int

	x   *Exec
	got *vTwin
	ref *vTwin
	// slotPairs lists the canonical (from, to) pairs by edge slot, for
	// the full edge-profile comparison after each probe.
	slotPairs [][2]int
}

// liveSuccs iterates the routine's compiled transitions: arm 0 for
// Jump and Branch blocks, arm 1 for Branch blocks. (The unused arm of
// a Jump block is a zero SuccSpec and must not be read.)
func (h *vHarness) liveSuccs(visit func(bi, arm int, s *SuccSpec)) {
	for bi := range h.f.Blocks {
		switch h.f.Blocks[bi].Term.Kind {
		case ir.Jump:
			visit(bi, 0, &h.spec.Succs[bi][0])
		case ir.Branch:
			visit(bi, 0, &h.spec.Succs[bi][0])
			visit(bi, 1, &h.spec.Succs[bi][1])
		}
	}
}

func newVHarness(p *Program, fi int) (*vHarness, error) {
	h := &vHarness{p: p, f: p.prog.Funcs[fi], spec: &p.specs[fi], fc: &p.fns[fi], fi: fi}
	kind := profile.ArrayTable
	if h.spec.Hash {
		kind = profile.HashTable
	}
	h.got = &vTwin{table: profile.NewTable(kind, vTableSize, vTableSize)}
	h.ref = &vTwin{table: profile.NewTable(kind, vTableSize, vTableSize)}
	if p.opts.CollectEdges {
		h.got.edges = profile.NewEdgeProfile(h.f.Name)
		h.ref.edges = profile.NewEdgeProfile(h.f.Name)
		// Pre-register the canonical slot order on both twins and check
		// it is the dense 0..n-1 numbering the spec promises.
		bySlot := map[int][2]int{}
		maxSlot := -1
		h.liveSuccs(func(bi, arm int, s *SuccSpec) {
			if s.EdgeSlot < 0 {
				return
			}
			bySlot[int(s.EdgeSlot)] = [2]int{bi, s.To}
			if int(s.EdgeSlot) > maxSlot {
				maxSlot = int(s.EdgeSlot)
			}
		})
		for slot := 0; slot <= maxSlot; slot++ {
			pair, ok := bySlot[slot]
			if !ok {
				return nil, &ValidationError{Routine: h.f.Name, From: -1, To: -1, Arm: -1,
					Field: fmt.Sprintf("edge-slot-%d-unassigned", slot)}
			}
			if got := h.got.edges.Slot(pair[0], pair[1]); got != slot {
				return nil, &ValidationError{Routine: h.f.Name, From: pair[0], To: pair[1], Arm: -1,
					Field: "edge-slot", Got: int64(got), Want: int64(slot)}
			}
			h.ref.edges.Slot(pair[0], pair[1])
			h.slotPairs = append(h.slotPairs, pair)
		}
	}
	if p.opts.CollectPaths {
		h.got.paths = profile.NewPathProfile(h.f.Name)
		h.ref.paths = profile.NewPathProfile(h.f.Name)
	}
	fts := make([]FuncRun, len(p.fns))
	fts[fi] = FuncRun{Edges: h.got.edges, Paths: h.got.paths, Table: h.got.table}
	x, err := NewExec(p, Config{Fts: fts, PathHook: func(fn string, pa cfg.Path) {
		h.got.hooks = append(h.got.hooks, hookSig(fn, pa))
	}})
	if err != nil {
		return nil, err
	}
	h.x = x
	return h, nil
}

func hookSig(fn string, p cfg.Path) string {
	s := fn
	for _, e := range p {
		s += fmt.Sprintf(":%d", e.ID)
	}
	return s
}

// refOps is the reference interpretation of a planir op stream,
// mirroring the dense interpreter's runOps contract (which planir
// validation pins down): it returns the final path register and the
// accrued instrumentation cost, recording counter effects in t.
func refOps(ops []planir.Op, r int64, t *profile.Table, hash, poison bool, costs *CostModel) (int64, int64) {
	var icost int64
	for _, op := range ops {
		switch op.Kind {
		case planir.OpInc:
			r += op.V
			icost += costs.RegOp
		case planir.OpSet:
			r = op.V
			icost += costs.RegOp
		case planir.OpCountR, planir.OpCountRV, planir.OpCountC:
			idx := r
			switch op.Kind {
			case planir.OpCountRV:
				idx += op.V
			case planir.OpCountC:
				idx = op.V
			}
			if poison {
				icost += costs.PoisonCheck
				if r < 0 {
					t.BumpCold()
					icost += costs.ColdBump
					continue
				}
			}
			switch {
			case hash:
				icost += costs.CountHash
			case op.Kind == planir.OpCountC:
				icost += costs.CountConst
			default:
				icost += costs.CountArray
			}
			t.Inc(idx)
		}
	}
	return r, icost
}

// checkArm drives one compiled transition closure through every probe
// and compares it against the reference. Closure panics surface as
// structured errors rather than killing the engine build.
func (h *vHarness) checkArm(bi, arm int) (err error) {
	term := &h.f.Blocks[bi].Term
	to := -1
	var s *SuccSpec
	if term.Kind != ir.Ret {
		s = &h.spec.Succs[bi][arm]
		to = s.To
	}
	defer func() {
		if r := recover(); r != nil {
			err = &ValidationError{Routine: h.f.Name, From: bi, To: to, Arm: arm,
				Field: fmt.Sprintf("panic: %v", r)}
		}
	}()
	for _, probe := range vProbes {
		if err := h.probeArm(bi, arm, s, term, probe); err != nil {
			return err
		}
	}
	return nil
}

func (h *vHarness) probeArm(bi, arm int, s *SuccSpec, term *ir.Term, probe int64) error {
	p, fc := h.p, h.fc
	costs := &p.opts.Costs
	to := -1
	if s != nil {
		to = s.To
	}
	fail := func(field string, got, want int64) error {
		return &ValidationError{Routine: h.f.Name, From: bi, To: to, Arm: arm,
			Field: field, Probe: probe, Got: got, Want: want}
	}

	// Compiled side: a hand-built frame, zeroed charge accumulators,
	// then one direct call of the retained arm closure.
	x := h.x
	x.steps, x.base, x.icost, x.ret = 0, 0, 0, -1
	fr := &frame{fc: fc, ft: &x.fts[h.fi], r: probe, regs: make([]int64, fc.nregs)}
	for i := range fr.regs {
		fr.regs[i] = int64(1000 + i)
	}
	ret := fc.blocks[bi].arms[arm](x, fr)

	// Reference side, derived from term/spec/IR only.
	refR := probe
	var wantSteps, wantBase, wantICost int64
	var refPath cfg.Path
	refTrie := int32(0)
	wantSucc := -1 // block index of the returned code; -1 for Ret
	if term.Kind == ir.Ret {
		wantSteps, wantBase = 1, costs.Term
		if p.opts.CollectPaths {
			h.ref.paths.AddAt(0, nil, 1)
			if p.opts.PathHooks {
				h.ref.hooks = append(h.ref.hooks, hookSig(h.f.Name, nil))
			}
		}
		wantRet := int64(0)
		if term.Ret >= 0 {
			wantRet = int64(1000 + term.Ret)
		}
		if x.ret != wantRet {
			return fail("ret", x.ret, wantRet)
		}
	} else {
		wantSucc = s.To
		wantSteps, wantBase = 1, costs.Term
		if s.To != bi+1 {
			wantBase += costs.TakenPenalty
		}
		// The solo-successor fold, derived from the IR: a call-free
		// successor's whole body charge rides on this transition.
		if toInstrs := h.f.Blocks[s.To].Instrs; !hasCall(toInstrs) {
			wantSteps += int64(len(toInstrs))
			wantBase += int64(len(toInstrs)) * costs.Instr
		}
		var opIcost int64
		refR, opIcost = refOps(s.Ops, probe, h.ref.table, h.spec.Hash, h.spec.PoisonCheck, costs)
		wantICost = s.InstrCost + opIcost
		if p.opts.CollectEdges && s.EdgeSlot >= 0 {
			h.ref.edges.BumpSlot(int(s.EdgeSlot))
		}
		if p.opts.CollectPaths {
			rp := h.ref.paths
			if !s.Back {
				refPath = cfg.Path{s.PathEdge}
				refTrie = rp.Step(0, int32(s.PathEdge.ID))
			} else {
				refTrie = rp.Step(0, int32(s.ExitDummy.ID))
				rp.AddAt(refTrie, cfg.Path{s.ExitDummy}, 1)
				if p.opts.PathHooks {
					h.ref.hooks = append(h.ref.hooks, hookSig(h.f.Name, cfg.Path{s.ExitDummy}))
				}
				refPath = cfg.Path{s.EntryDummy}
				refTrie = rp.Step(0, int32(s.EntryDummy.ID))
			}
		}
	}

	// Successor identity: the returned pointer must be the compiled
	// code of exactly the spec'd block.
	gotSucc := -1
	if ret != nil {
		gotSucc = -2
		for i := range fc.blocks {
			if ret == &fc.blocks[i] {
				gotSucc = i
				break
			}
		}
	}
	if gotSucc != wantSucc {
		return fail("succ", int64(gotSucc), int64(wantSucc))
	}
	if fr.r != refR {
		return fail("reg", fr.r, refR)
	}
	if x.steps != wantSteps {
		return fail("steps", x.steps, wantSteps)
	}
	if x.base != wantBase {
		return fail("base", x.base, wantBase)
	}
	if x.icost != wantICost {
		return fail("icost", x.icost, wantICost)
	}
	if err := h.compareTables(fail); err != nil {
		return err
	}
	if p.opts.CollectEdges {
		for _, pair := range h.slotPairs {
			g, w := h.got.edges.Get(pair[0], pair[1]), h.ref.edges.Get(pair[0], pair[1])
			if g != w {
				return fail(fmt.Sprintf("edge[%d->%d]", pair[0], pair[1]), g, w)
			}
		}
	}
	if p.opts.CollectPaths {
		if fr.trie != refTrie {
			return fail("trie", int64(fr.trie), int64(refTrie))
		}
		if len(fr.path) != len(refPath) {
			return fail("path-len", int64(len(fr.path)), int64(len(refPath)))
		}
		for i := range refPath {
			if fr.path[i].ID != refPath[i].ID {
				return fail(fmt.Sprintf("path[%d]", i), int64(fr.path[i].ID), int64(refPath[i].ID))
			}
		}
		if g, w := h.got.paths.Total(), h.ref.paths.Total(); g != w {
			return fail("path-total", g, w)
		}
		if g, w := h.got.paths.Distinct(), h.ref.paths.Distinct(); g != w {
			return fail("path-distinct", int64(g), int64(w))
		}
		if len(h.got.hooks) != len(h.ref.hooks) {
			return fail("hooks", int64(len(h.got.hooks)), int64(len(h.ref.hooks)))
		}
		for i := range h.ref.hooks {
			if h.got.hooks[i] != h.ref.hooks[i] {
				return fail(fmt.Sprintf("hook[%d]", i), 0, 0)
			}
		}
	}
	return nil
}

// compareTables checks the complete observable counter-table state of
// both twins: every index either side could have touched, plus the
// cold, lost, drop, and saturation accounting.
func (h *vHarness) compareTables(fail func(field string, got, want int64) error) error {
	g, w := h.got.table.State(), h.ref.table.State()
	if g.Cold != w.Cold {
		return fail("table-cold", g.Cold, w.Cold)
	}
	if g.Lost != w.Lost {
		return fail("table-lost", g.Lost, w.Lost)
	}
	if g.Drops != w.Drops {
		return fail("table-drops", g.Drops, w.Drops)
	}
	if g.Saturated != w.Saturated {
		return fail("table-saturated", b2i(g.Saturated), b2i(w.Saturated))
	}
	for i := range g.Arr {
		if g.Arr[i] != w.Arr[i] {
			return fail(fmt.Sprintf("table[%d]", i), g.Arr[i], w.Arr[i])
		}
	}
	if len(g.Slots) != len(w.Slots) {
		return fail("table-slots", int64(len(g.Slots)), int64(len(w.Slots)))
	}
	for i := range g.Slots {
		if g.Slots[i] != w.Slots[i] || g.Keys[i] != w.Keys[i] {
			return fail(fmt.Sprintf("table-slot[%d]", g.Slots[i]), g.Keys[i], w.Keys[i])
		}
		if g.Vals[i] != w.Vals[i] {
			return fail(fmt.Sprintf("table-key[%d]", g.Keys[i]), g.Vals[i], w.Vals[i])
		}
	}
	return nil
}
