package compile

// MutatedSite records where the test mutation hook struck.
type MutatedSite struct {
	Fn       string
	From, To int
}

// MutateFirstSuccBase arms the lowering-mutation hook: the first
// transition compiled after the call gets delta added to its folded
// base-cost constant — a deliberate miscompilation — and the site is
// recorded in the returned struct. Disarm with ClearMutateSucc.
func MutateFirstSuccBase(delta int64) *MutatedSite {
	site := &MutatedSite{From: -1, To: -1}
	testMutateSucc = func(fn string, from, to int, c *succConsts) {
		if site.From >= 0 {
			return
		}
		*site = MutatedSite{Fn: fn, From: from, To: to}
		c.Base += delta
	}
	return site
}

// MutateFirstSuccSteps arms the hook to corrupt the folded step-count
// constant instead, covering the solo-successor charge fold.
func MutateFirstSuccSteps(delta int64) *MutatedSite {
	site := &MutatedSite{From: -1, To: -1}
	testMutateSucc = func(fn string, from, to int, c *succConsts) {
		if site.From >= 0 {
			return
		}
		*site = MutatedSite{Fn: fn, From: from, To: to}
		c.Steps += delta
	}
	return site
}

// ClearMutateSucc disarms the lowering-mutation hook.
func ClearMutateSucc() { testMutateSucc = nil }
