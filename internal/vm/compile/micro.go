package compile

import "pathprof/internal/ir"

// This file is the second of the backend's two instruction-lowering
// strategies. Short call-free runs compile to chained closures
// (fuseRun); runs of at least microMin simple instructions compile to
// a pre-decoded micro-op array executed by ONE closure. The array form
// wins on long straight-line blocks for reasons closures cannot match:
// the register slice is bounds-hoisted once per run instead of per
// instruction, operands stream from one contiguous array instead of
// scattered closure environments, and there is no call/prologue per
// instruction at all. The same peephole fusions apply (constant
// feeding the next instruction, global read-modify-write, dead
// register stores elided per regReads), encoded as dedicated micro
// opcodes.
//
// Instructions that need out-of-line machinery (Print's fmt call,
// Call's frame push) never lower; a run containing one falls back to
// closures, keeping the micro loop free of slow cases.

// micro opcodes. mXxxK forms take the second operand from imm (the
// fused constant); mGXxxK/mGXxx mutate a global in place.
const (
	mConst uint8 = iota
	mMov
	mAdd
	mSub
	mMul
	mDiv
	mMod
	mNeg
	mNot
	mEq
	mNe
	mLt
	mLe
	mGt
	mGe
	mBAnd
	mBOr
	mBXor
	mShl
	mShr
	mAddK
	mSubK
	mMulK
	mEqK
	mNeK
	mLtK
	mLeK
	mGtK
	mGeK
	mBAndK
	mBOrK
	mBXorK
	mShlK
	mShrK
	mLoadG
	mStoreG
	mLoadA
	mStoreA
	mStoreAK
	mGAddK
	mGSubK
	mGMulK
	mGBAndK
	mGBOrK
	mGBXorK
	mGAdd
	mGSub
	mGMul
	mGSetK
)

// microMin is the run length at which the micro-op array takes over
// from chained closures: below it, a handful of direct predicted
// closure calls is cheaper than entering the decode loop.
const microMin = 4

type micro struct {
	op  uint8
	d   int32
	a   int32
	b   int32 // register, array/global symbol, or shift count
	imm int64
}

// microExec wraps a decoded run in the executing closure.
func microExec(ms []micro) instrFn {
	return func(x *Exec, fr *frame) {
		r := fr.regs
		g := x.globals
		for i := range ms {
			m := &ms[i]
			switch m.op {
			case mConst:
				r[m.d] = m.imm
			case mMov:
				r[m.d] = r[m.a]
			case mAdd:
				r[m.d] = r[m.a] + r[m.b]
			case mSub:
				r[m.d] = r[m.a] - r[m.b]
			case mMul:
				r[m.d] = r[m.a] * r[m.b]
			case mDiv:
				r[m.d] = safeDiv(r[m.a], r[m.b])
			case mMod:
				r[m.d] = safeMod(r[m.a], r[m.b])
			case mNeg:
				r[m.d] = -r[m.a]
			case mNot:
				r[m.d] = b2i(r[m.a] == 0)
			case mEq:
				r[m.d] = b2i(r[m.a] == r[m.b])
			case mNe:
				r[m.d] = b2i(r[m.a] != r[m.b])
			case mLt:
				r[m.d] = b2i(r[m.a] < r[m.b])
			case mLe:
				r[m.d] = b2i(r[m.a] <= r[m.b])
			case mGt:
				r[m.d] = b2i(r[m.a] > r[m.b])
			case mGe:
				r[m.d] = b2i(r[m.a] >= r[m.b])
			case mBAnd:
				r[m.d] = r[m.a] & r[m.b]
			case mBOr:
				r[m.d] = r[m.a] | r[m.b]
			case mBXor:
				r[m.d] = r[m.a] ^ r[m.b]
			case mShl:
				r[m.d] = r[m.a] << uint(r[m.b]&63)
			case mShr:
				r[m.d] = r[m.a] >> uint(r[m.b]&63)
			case mAddK:
				r[m.d] = r[m.a] + m.imm
			case mSubK:
				r[m.d] = r[m.a] - m.imm
			case mMulK:
				r[m.d] = r[m.a] * m.imm
			case mEqK:
				r[m.d] = b2i(r[m.a] == m.imm)
			case mNeK:
				r[m.d] = b2i(r[m.a] != m.imm)
			case mLtK:
				r[m.d] = b2i(r[m.a] < m.imm)
			case mLeK:
				r[m.d] = b2i(r[m.a] <= m.imm)
			case mGtK:
				r[m.d] = b2i(r[m.a] > m.imm)
			case mGeK:
				r[m.d] = b2i(r[m.a] >= m.imm)
			case mBAndK:
				r[m.d] = r[m.a] & m.imm
			case mBOrK:
				r[m.d] = r[m.a] | m.imm
			case mBXorK:
				r[m.d] = r[m.a] ^ m.imm
			case mShlK:
				r[m.d] = r[m.a] << uint(m.imm&63)
			case mShrK:
				r[m.d] = r[m.a] >> uint(m.imm&63)
			case mLoadG:
				r[m.d] = g[m.b]
			case mStoreG:
				g[m.b] = r[m.a]
			case mLoadA:
				arr := x.arrays[m.b]
				if len(arr) == 0 {
					r[m.d] = 0
				} else {
					r[m.d] = arr[wrap(r[m.a], int64(len(arr)))]
				}
			case mStoreA:
				arr := x.arrays[m.b]
				if len(arr) > 0 {
					arr[wrap(r[m.a], int64(len(arr)))] = r[m.d]
				}
			case mStoreAK:
				arr := x.arrays[m.b]
				if len(arr) > 0 {
					arr[wrap(r[m.a], int64(len(arr)))] = m.imm
				}
			case mGAddK:
				g[m.b] += m.imm
			case mGSubK:
				g[m.b] -= m.imm
			case mGMulK:
				g[m.b] *= m.imm
			case mGBAndK:
				g[m.b] &= m.imm
			case mGBOrK:
				g[m.b] |= m.imm
			case mGBXorK:
				g[m.b] ^= m.imm
			case mGAdd:
				g[m.b] += r[m.a]
			case mGSub:
				g[m.b] -= r[m.a]
			case mGMul:
				g[m.b] *= r[m.a]
			case mGSetK:
				g[m.b] = m.imm
			}
		}
	}
}

// binMicro maps a plain binary/unary opcode to its micro form.
func binMicro(op ir.Opcode) (uint8, bool) {
	switch op {
	case ir.Mov:
		return mMov, true
	case ir.Add:
		return mAdd, true
	case ir.Sub:
		return mSub, true
	case ir.Mul:
		return mMul, true
	case ir.Div:
		return mDiv, true
	case ir.Mod:
		return mMod, true
	case ir.Neg:
		return mNeg, true
	case ir.Not:
		return mNot, true
	case ir.Eq:
		return mEq, true
	case ir.Ne:
		return mNe, true
	case ir.Lt:
		return mLt, true
	case ir.Le:
		return mLe, true
	case ir.Gt:
		return mGt, true
	case ir.Ge:
		return mGe, true
	case ir.BAnd:
		return mBAnd, true
	case ir.BOr:
		return mBOr, true
	case ir.BXor:
		return mBXor, true
	case ir.Shl:
		return mShl, true
	case ir.Shr:
		return mShr, true
	}
	return 0, false
}

// constMicro maps a binary opcode to its fused-constant micro form
// (the constant on the B side).
func constMicro(op ir.Opcode) (uint8, bool) {
	switch op {
	case ir.Add:
		return mAddK, true
	case ir.Sub:
		return mSubK, true
	case ir.Mul:
		return mMulK, true
	case ir.Eq:
		return mEqK, true
	case ir.Ne:
		return mNeK, true
	case ir.Lt:
		return mLtK, true
	case ir.Le:
		return mLeK, true
	case ir.Gt:
		return mGtK, true
	case ir.Ge:
		return mGeK, true
	case ir.BAnd:
		return mBAndK, true
	case ir.BOr:
		return mBOrK, true
	case ir.BXor:
		return mBXorK, true
	case ir.Shl:
		return mShlK, true
	case ir.Shr:
		return mShrK, true
	}
	return 0, false
}

// globalRMWMicro maps a binary opcode to the in-place global update
// micro, constant form and register form.
func globalRMWMicro(op ir.Opcode, konst bool) (uint8, bool) {
	if konst {
		switch op {
		case ir.Add:
			return mGAddK, true
		case ir.Sub:
			return mGSubK, true
		case ir.Mul:
			return mGMulK, true
		case ir.BAnd:
			return mGBAndK, true
		case ir.BOr:
			return mGBOrK, true
		case ir.BXor:
			return mGBXorK, true
		}
		return 0, false
	}
	switch op {
	case ir.Add:
		return mGAdd, true
	case ir.Sub:
		return mGSub, true
	case ir.Mul:
		return mGMul, true
	}
	return 0, false
}

// lowerMicros decodes a call-free run into micro ops, applying the
// same fusions (and dead-store elisions) as the closure path. Returns
// nil when some instruction cannot lower (Print, Call).
func (c *comp) lowerMicros(instrs []ir.Instr) []micro {
	ms := make([]micro, 0, len(instrs))
	for i := 0; i < len(instrs); i++ {
		in := &instrs[i]
		// Global read-modify-write run.
		if n, m, ok := c.microGlobalRMW(instrs[i:]); ok {
			ms = append(ms, m)
			i += n - 1
			continue
		}
		// Const feeding the next instruction.
		if in.Op == ir.Const && i+1 < len(instrs) {
			if m, skip, ok := c.microConstPair(in, &instrs[i+1]); ok {
				if !skip {
					ms = append(ms, micro{op: mConst, d: int32(in.Dst), imm: in.Imm})
				}
				ms = append(ms, m)
				i++
				continue
			}
		}
		switch in.Op {
		case ir.Const:
			ms = append(ms, micro{op: mConst, d: int32(in.Dst), imm: in.Imm})
		case ir.LoadG:
			ms = append(ms, micro{op: mLoadG, d: int32(in.Dst), b: int32(in.Sym)})
		case ir.StoreG:
			ms = append(ms, micro{op: mStoreG, a: int32(in.A), b: int32(in.Sym)})
		case ir.LoadA:
			ms = append(ms, micro{op: mLoadA, d: int32(in.Dst), a: int32(in.A), b: int32(in.Sym)})
		case ir.StoreA:
			// Value register rides in d (a holds the index).
			ms = append(ms, micro{op: mStoreA, d: int32(in.B), a: int32(in.A), b: int32(in.Sym)})
		default:
			op, ok := binMicro(in.Op)
			if !ok {
				return nil
			}
			ms = append(ms, micro{op: op, d: int32(in.Dst), a: int32(in.A), b: int32(in.B)})
		}
	}
	return ms
}

// microConstPair fuses a Const into its consuming neighbor. skip
// reports that the constant's own register store is dead (single
// reader) and must not be emitted.
func (c *comp) microConstPair(a, b *ir.Instr) (m micro, skip, ok bool) {
	t, k := a.Dst, a.Imm
	skip = c.reads[t] <= 1
	if b.B == t && b.A != t {
		if op, ok2 := constMicro(b.Op); ok2 {
			return micro{op: op, d: int32(b.Dst), a: int32(b.A), imm: k}, skip, true
		}
		if b.Op == ir.StoreA {
			return micro{op: mStoreAK, a: int32(b.A), b: int32(b.Sym), imm: k}, skip, true
		}
	}
	if b.A == t && b.B != t {
		switch b.Op {
		case ir.Mov:
			return micro{op: mConst, d: int32(b.Dst), imm: k}, skip, true
		case ir.StoreG:
			return micro{op: mGSetK, b: int32(b.Sym), imm: k}, skip, true
		}
	}
	return micro{}, false, false
}

// microGlobalRMW mirrors fuseGlobalRMW for the micro lowering.
func (c *comp) microGlobalRMW(instrs []ir.Instr) (n int, m micro, ok bool) {
	if len(instrs) < 3 || instrs[0].Op != ir.LoadG {
		return 0, micro{}, false
	}
	g, r1 := instrs[0].Sym, instrs[0].Dst
	if c.reads[r1] != 1 {
		return 0, micro{}, false
	}
	if len(instrs) >= 4 && instrs[1].Op == ir.Const {
		cst, op, st := &instrs[1], &instrs[2], &instrs[3]
		if st.Op == ir.StoreG && st.Sym == g && st.A == op.Dst &&
			op.A == r1 && op.B == cst.Dst && cst.Dst != r1 &&
			c.reads[cst.Dst] == 1 && c.reads[op.Dst] == 1 {
			if mo, ok2 := globalRMWMicro(op.Op, true); ok2 {
				return 4, micro{op: mo, b: int32(g), imm: cst.Imm}, true
			}
		}
		return 0, micro{}, false
	}
	op, st := &instrs[1], &instrs[2]
	if st.Op == ir.StoreG && st.Sym == g && st.A == op.Dst &&
		op.A == r1 && op.B != r1 && c.reads[op.Dst] == 1 {
		if mo, ok2 := globalRMWMicro(op.Op, false); ok2 {
			return 3, micro{op: mo, a: int32(op.B), b: int32(g)}, true
		}
	}
	return 0, micro{}, false
}
