package compile_test

import (
	"errors"
	"strings"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/instr"
	"pathprof/internal/lower"
	"pathprof/internal/vm"
	"pathprof/internal/vm/compile"
)

// validateSrc exercises every terminator shape the validator drives:
// loops (back-edge path truncation), branches both directions, calls
// (non-solo blocks), and straight-line runs (solo charge folding).
const validateSrc = `
var total = 0;
func weigh(n) {
	var s = 0;
	while (n > 0) {
		if (n % 3 == 0) { s = s + 2; } else { s = s + 1; }
		n = n - 1;
	}
	return s;
}
func main() {
	var acc = 0;
	for (var i = 0; i < 40; i = i + 1) {
		acc = acc + weigh(i);
	}
	total = acc;
	return acc;
}`

func buildValidated(t *testing.T, opts vm.Options) (*vm.Engine, *vm.Result) {
	t.Helper()
	prog, err := lower.Compile(validateSrc, lower.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Stage 1: ground-truth edge profile to plan against.
	stage1, err := vm.Run(prog, vm.Options{CollectEdges: true, CollectPaths: true})
	if err != nil {
		t.Fatalf("stage1: %v", err)
	}
	plans := map[string]*instr.Plan{}
	for _, f := range prog.Funcs {
		g, err := f.CFG()
		if err != nil {
			t.Fatalf("cfg %s: %v", f.Name, err)
		}
		stage1.Edges[f.Name].ApplyTo(g)
		p, err := instr.Build(g, instr.PPP(), instr.DefaultParams(), 0)
		if err != nil {
			t.Fatalf("plan %s: %v", f.Name, err)
		}
		plans[f.Name] = p
	}
	opts.Backend = vm.BackendCompiled
	opts.Plans = plans
	eng, err := vm.NewEngine(prog, opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return eng, res
}

// TestValidatePasses proves every routine of a representative
// instrumented program under the run shapes that change what the
// transition closures do (edge slots, path tracking, hooks).
func TestValidatePasses(t *testing.T) {
	shapes := []struct {
		name string
		opts vm.Options
	}{
		{"plain", vm.Options{}},
		{"paths", vm.Options{CollectPaths: true}},
		{"edges", vm.Options{CollectEdges: true, EdgeInstrument: true}},
		{"full", vm.Options{
			CollectPaths: true, CollectEdges: true, EdgeInstrument: true,
			PathHook: func(string, cfg.Path) {},
		}},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			eng, res := buildValidated(t, sh.opts)
			us := eng.ValidateUs()
			if len(us) == 0 {
				t.Fatal("engine reports no validation timings; ValidateOn should be the default")
			}
			for fn, v := range us {
				if v < 0 {
					t.Errorf("%s: negative validation time %d", fn, v)
				}
			}
			if res.ValidateUs == nil {
				t.Error("Result.ValidateUs not populated on the compiled backend")
			}
		})
	}
}

// TestValidateDetectsMutation flips one fused terminator constant via
// the lowering-mutation hook and asserts validation rejects the build
// with a structured error naming the exact block pair.
func TestValidateDetectsMutation(t *testing.T) {
	mutations := []struct {
		name  string
		arm   func(delta int64) *compile.MutatedSite
		field string
	}{
		{"base-cost", compile.MutateFirstSuccBase, "base"},
		{"step-fold", compile.MutateFirstSuccSteps, "steps"},
	}
	for _, mu := range mutations {
		mu := mu
		t.Run(mu.name, func(t *testing.T) {
			prog, err := lower.Compile(validateSrc, lower.Options{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			site := mu.arm(7)
			defer compile.ClearMutateSucc()
			_, err = vm.NewEngine(prog, vm.Options{Backend: vm.BackendCompiled, CollectPaths: true})
			if err == nil {
				t.Fatalf("mutated lowering (%s at %s %d->%d) passed translation validation",
					mu.name, site.Fn, site.From, site.To)
			}
			var ve *compile.ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("want *compile.ValidationError, got %T: %v", err, err)
			}
			if ve.Routine != site.Fn || ve.From != site.From || ve.To != site.To {
				t.Errorf("error names %s %d->%d, mutation was at %s %d->%d",
					ve.Routine, ve.From, ve.To, site.Fn, site.From, site.To)
			}
			if ve.Field != mu.field {
				t.Errorf("error field %q, want %q", ve.Field, mu.field)
			}
			if !strings.Contains(err.Error(), site.Fn) {
				t.Errorf("error %q does not name the routine %q", err, site.Fn)
			}
		})
	}
}

// TestValidateOff proves the gate: the same mutated lowering builds
// fine with ValidateOff (and would silently miscount, which is the
// point of having validation on by default).
func TestValidateOff(t *testing.T) {
	prog, err := lower.Compile(validateSrc, lower.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	compile.MutateFirstSuccBase(7)
	defer compile.ClearMutateSucc()
	eng, err := vm.NewEngine(prog, vm.Options{
		Backend: vm.BackendCompiled, CollectPaths: true, Validate: vm.ValidateOff,
	})
	if err != nil {
		t.Fatalf("ValidateOff engine build failed: %v", err)
	}
	if eng.ValidateUs() != nil {
		t.Error("ValidateOff engine reports validation timings")
	}
}
