// Package compile is the VM's threaded-code backend: it specializes
// each routine of an IR program into chained Go closures, eliminating
// the dense-dispatch interpreter's per-instruction bookkeeping.
//
// Layout of the compiled form:
//
//   - A block's instructions are split into segments at call sites
//     (maximal call-free runs). A segment is ONE fused closure — built
//     by composing per-instruction closures and peephole-fused pairs —
//     plus a precomputed step count and base cost. The executor charges
//     the whole segment with two additions and one budget compare where
//     the interpreter paid a step increment, a cost addition, a budget
//     compare, and a switch dispatch per instruction. (The budget check
//     errors at the segment boundary exactly when the interpreter would
//     error inside it: steps + len(segment) > MaxSteps.)
//
//   - A block's terminator compiles to a closure that fuses successor
//     choice, the taken-branch penalty, edge-profile slot bump,
//     instrumentation ops (path-register arithmetic folded into
//     branchless mask/add constants, counter updates specialized per
//     table kind), and path tracking (incremental trie stepping) into
//     one straight-line call per transition. Constant costs fold into
//     one addition at compile time; the telemetry nil-sink branch is
//     resolved at compile time by emitting telemetry-free variants.
//
// The compiled Program is immutable and shared: closures reach all
// per-run state through the Exec (globals, arrays, cost accumulators)
// and the frame (registers, path register, trie cursor), so one
// compilation serves every worker and replica. No code generation, no
// unsafe: everything is ordinary Go closures over small captured
// integers, which the runtime can inline into and which stay fully
// portable and race-detector friendly.
package compile

import (
	"fmt"
	"math"
	"time"

	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/planir"
)

// CostModel mirrors vm.CostModel (the vm package converts; compile
// cannot import vm).
type CostModel struct {
	Instr        int64
	Term         int64
	Call         int64
	RegOp        int64
	CountArray   int64
	CountConst   int64
	CountHash    int64
	PoisonCheck  int64
	ColdBump     int64
	EdgeCount    int64
	TakenPenalty int64
}

// Options fixes the run shape the program is compiled for. Telemetry
// and path hooks are compile-time decisions: with Telemetry false no
// counter-bump code is emitted at all, and with PathHooks false no
// hook-dispatch code is emitted.
type Options struct {
	Costs          CostModel
	CollectEdges   bool
	CollectPaths   bool
	EdgeInstrument bool
	Telemetry      bool
	PathHooks      bool
}

// SuccSpec describes one control-flow transition, resolved by the
// engine (vm) from the DAG and the planir artifact: the successor
// block, its canonical edge-profile slot, the lowered op stream, and
// the path-tracking edges.
type SuccSpec struct {
	To     int
	Branch bool // arm of a Branch terminator
	Back   bool // follows a CFG back edge (path truncation)
	// EdgeSlot is the dense edge-counter slot (-1: none); InstrCost is
	// the modeled edge-counting charge the engine resolved for this
	// transition — EdgeCount on instrumented branches under spanning
	// placement, EdgeCount on exactly the probed chords under min-cost
	// placement, zero elsewhere.
	EdgeSlot  int32
	InstrCost int64
	Ops       []planir.Op
	// PathEdge is the real DAG edge to append; ExitDummy/EntryDummy the
	// truncation pair for back edges. Nil when paths are off.
	PathEdge   *cfg.DAGEdge
	ExitDummy  *cfg.DAGEdge
	EntryDummy *cfg.DAGEdge
}

// FuncSpec is one routine's compilation input.
type FuncSpec struct {
	// Succs is indexed by block: [0] the Jump target or Branch taken
	// arm, [1] the Branch else arm.
	Succs       [][2]SuccSpec
	Hash        bool
	PoisonCheck bool
}

// Stat records one routine's compilation: the closure count is the
// static size of the threaded code.
type Stat struct {
	Name     string
	Blocks   int
	Closures int
	Elapsed  time.Duration
}

// Program is an immutable compiled program, shared across Execs.
type Program struct {
	fns        []fnCode
	opts       Options
	globalInit []int64
	arraySizes []int64
	// prog and specs are the compilation inputs, retained so translation
	// validation (Validate) can replay every compiled transition against
	// the IR terminator and successor spec it was lowered from.
	prog  *ir.Program
	specs []FuncSpec
	// Stats holds per-routine compile time and code size, in function
	// index order.
	Stats []Stat
}

type instrFn func(x *Exec, fr *frame)

// termFn executes a block's terminator and returns the next block's
// code directly (nil for a routine return): transitions are pointer
// threaded, with no block-index lookup between them.
type termFn func(x *Exec, fr *frame) *blockCode

// condFn computes a branch condition, still writing the condition
// register (later code may read it), and hands the comparison to the
// terminator as a bool — no 0/1 materialization and re-test.
type condFn func(x *Exec, fr *frame) bool

type callSite struct {
	fi   int32
	dst  int32
	args []int32
}

// segment is a maximal call-free instruction run: one fused closure,
// charged wholesale.
type segment struct {
	code  instrFn // nil for an empty segment (e.g. a lone call)
	steps int64
	cost  int64
	call  *callSite // executed after code; nil for the final segment
}

type blockCode struct {
	segs []segment
	term termFn
	// arms retains the per-successor transition closures the terminator
	// dispatches between, so translation validation (validate.go) can
	// drive each arm directly: [0] the Jump/Ret closure or Branch taken
	// arm, [1] the Branch else arm.
	arms [2]termFn
	// code is the hoisted single segment of a solo block; the executor
	// runs it without the segment loop (or fr.seg bookkeeping). A solo
	// block's step/cost charge is folded into the constant charge of
	// every terminator that enters it (and the owning function's entry
	// precharge), so the executor only compares the budget.
	code instrFn
	solo bool
	// check gates the solo budget compare: an instruction-free block
	// must not error even when terminator increments (which the
	// interpreter never budget-checks) have pushed steps past the
	// limit.
	check bool
}

type fnCode struct {
	name    string
	fi      int32
	nparams int
	nregs   int
	entry   int32
	blocks  []blockCode
	// entrySteps/entryCost precharge the entry block when it is solo,
	// applied as the frame is pushed (transitions into solo blocks
	// precharge the same way, folded into terminator constants).
	entrySteps int64
	entryCost  int64
	// memoN counts the function's back-edge transitions, each holding a
	// slot in the Exec's root-step memo.
	memoN int
}

// New compiles the program for the given specs (one per function, in
// function index order). Call-site arity is validated here, once,
// instead of on every dynamic call.
func New(prog *ir.Program, specs []FuncSpec, opts Options) (*Program, error) {
	if len(specs) != len(prog.Funcs) {
		return nil, fmt.Errorf("compile: %d specs for %d functions", len(specs), len(prog.Funcs))
	}
	p := &Program{
		opts:       opts,
		globalInit: prog.GlobalInit,
		prog:       prog,
		specs:      specs,
		fns:        make([]fnCode, len(prog.Funcs)),
		Stats:      make([]Stat, 0, len(prog.Funcs)),
	}
	p.arraySizes = make([]int64, len(prog.Arrays))
	for i, a := range prog.Arrays {
		p.arraySizes[i] = a.Size
	}
	for fi := range prog.Funcs {
		start := time.Now()
		c := &comp{prog: prog, opts: &p.opts, spec: &specs[fi]}
		fc, err := c.compileFunc(fi)
		if err != nil {
			return nil, err
		}
		p.fns[fi] = fc
		p.Stats = append(p.Stats, Stat{
			Name:     prog.Funcs[fi].Name,
			Blocks:   len(fc.blocks),
			Closures: c.closures,
			Elapsed:  time.Since(start),
		})
	}
	return p, nil
}

// comp compiles one function.
type comp struct {
	prog     *ir.Program
	opts     *Options
	spec     *FuncSpec
	fname    string
	closures int
	memoN    int
	// reads[r] counts reads of register r across the whole function
	// (operands, call arguments, branch conditions, return values).
	// Registers are invisible outside a run, so a fused constant whose
	// register has exactly one read — the instruction it fused into —
	// needs no store at all.
	reads []int32
}

// regReads tallies register reads for dead-store elimination in the
// fusers.
func regReads(f *ir.Func) []int32 {
	reads := make([]int32, f.NRegs)
	note := func(r int) {
		if r >= 0 && r < len(reads) {
			reads[r]++
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.Const, ir.LoadG:
				// No register reads.
			case ir.Mov, ir.Neg, ir.Not, ir.LoadA, ir.StoreG, ir.Print:
				note(in.A)
			case ir.StoreA:
				note(in.A)
				note(in.B)
			case ir.Call:
				for _, a := range in.Args {
					note(a)
				}
			default: // binary arithmetic, compares, bit ops, shifts
				note(in.A)
				note(in.B)
			}
		}
		switch b.Term.Kind {
		case ir.Branch:
			note(b.Term.Cond)
		case ir.Ret:
			note(b.Term.Ret)
		}
	}
	return reads
}

func (c *comp) compileFunc(fi int) (fnCode, error) {
	f := c.prog.Funcs[fi]
	if len(c.spec.Succs) != len(f.Blocks) {
		return fnCode{}, fmt.Errorf("compile: %s: %d successor specs for %d blocks",
			f.Name, len(c.spec.Succs), len(f.Blocks))
	}
	c.fname = f.Name
	c.reads = regReads(f)
	fc := fnCode{
		name:    f.Name,
		fi:      int32(fi),
		nparams: f.NParams,
		nregs:   f.NRegs,
		entry:   int32(f.Entry),
		blocks:  make([]blockCode, len(f.Blocks)),
	}
	// Pass 1 compiles every block's instruction segments, so that pass 2
	// can thread terminators directly to successor blockCode pointers
	// and fold solo successors' charges into terminator constants.
	conds := make([]condFn, len(f.Blocks))
	for bi, b := range f.Blocks {
		instrs := b.Instrs
		trim := 0
		if b.Term.Kind == ir.Branch && !hasCall(instrs) {
			conds[bi], trim = c.fuseCond(instrs, b.Term.Cond)
			instrs = instrs[:len(instrs)-trim]
		}
		segs, err := c.compileSegments(instrs)
		if err != nil {
			return fnCode{}, fmt.Errorf("compile: %s block %d: %w", f.Name, bi, err)
		}
		if trim > 0 {
			// The extracted comparison still counts as the block's
			// trailing instruction(s): charged with the segment (so
			// budget-error timing matches the interpreter), executed in
			// the terminator.
			segs[len(segs)-1].steps += int64(trim)
			segs[len(segs)-1].cost += int64(trim) * c.opts.Costs.Instr
		}
		bc := &fc.blocks[bi]
		bc.segs = segs
		if len(segs) == 1 && segs[0].call == nil {
			bc.solo = true
			bc.code = segs[0].code
			bc.check = segs[0].steps > 0
		}
	}
	if eb := &fc.blocks[fc.entry]; eb.solo {
		fc.entrySteps = eb.segs[0].steps
		fc.entryCost = eb.segs[0].cost
	}
	for bi, b := range f.Blocks {
		fc.blocks[bi].term = c.compileTerm(&fc, bi, &b.Term, conds[bi])
	}
	fc.memoN = c.memoN
	return fc, nil
}

func hasCall(instrs []ir.Instr) bool {
	for i := range instrs {
		if instrs[i].Op == ir.Call {
			return true
		}
	}
	return false
}

// compileSegments splits a block's instructions at call sites and
// fuses each call-free run into one closure.
func (c *comp) compileSegments(instrs []ir.Instr) ([]segment, error) {
	cInstr, cCall := c.opts.Costs.Instr, c.opts.Costs.Call
	var segs []segment
	runStart := 0
	flush := func(end int, call *callSite) {
		n := int64(end - runStart)
		seg := segment{steps: n, cost: n * cInstr, call: call}
		seg.code = c.fuseRun(instrs[runStart:end])
		if call != nil {
			seg.steps++
			seg.cost += cInstr + cCall
		}
		segs = append(segs, seg)
	}
	for i := range instrs {
		in := &instrs[i]
		if in.Op != ir.Call {
			continue
		}
		callee := c.prog.Funcs[in.Sym]
		if len(in.Args) != callee.NParams {
			return nil, fmt.Errorf("call %s expects %d args, got %d",
				callee.Name, callee.NParams, len(in.Args))
		}
		args := make([]int32, len(in.Args))
		for j, a := range in.Args {
			args[j] = int32(a)
		}
		flush(i, &callSite{fi: int32(in.Sym), dst: int32(in.Dst), args: args})
		runStart = i + 1
	}
	if runStart < len(instrs) || len(segs) == 0 {
		flush(len(instrs), nil)
	}
	return segs, nil
}

// fuseRun lowers a call-free instruction run to one closure. Long
// simple runs decode to a micro-op array executed by a single closure
// (see micro.go); shorter runs — and runs holding an instruction the
// micro loop excludes — compose per-instruction closures: peephole
// fusion first (Const feeding the next instruction's B operand,
// global read-modify-write), then a branching-factor-4 tree of the
// remaining closures so every call site stays monomorphic.
func (c *comp) fuseRun(instrs []ir.Instr) instrFn {
	if len(instrs) == 0 {
		return nil
	}
	if len(instrs) >= microMin {
		if ms := c.lowerMicros(instrs); ms != nil {
			c.closures += len(ms)
			return microExec(ms)
		}
	}
	fns := make([]instrFn, 0, len(instrs))
	for i := 0; i < len(instrs); i++ {
		if fused, n := c.fuseGlobalRMW(instrs[i:]); fused != nil {
			fns = append(fns, fused)
			i += n - 1
			continue
		}
		if i+1 < len(instrs) {
			if fused := c.fusePair(&instrs[i], &instrs[i+1]); fused != nil {
				fns = append(fns, fused)
				i++
				continue
			}
		}
		fns = append(fns, c.instrClosure(&instrs[i]))
	}
	c.closures += len(fns)
	return seqN(fns)
}

// fuseGlobalRMW recognizes the read-modify-write of a global —
// LoadG g; [Const k;] binop; StoreG g — the canonical loop counter and
// accumulator update, and collapses the whole run into one closure
// touching only the global. It applies only when none of the involved
// registers is read anywhere else (per regReads), so no register
// store is owed; otherwise the run falls back to the ordinary fusers.
// Returns the closure and the instruction count it absorbed.
func (c *comp) fuseGlobalRMW(instrs []ir.Instr) (instrFn, int) {
	if len(instrs) < 3 || instrs[0].Op != ir.LoadG {
		return nil, 0
	}
	g, r1 := instrs[0].Sym, instrs[0].Dst
	if c.reads[r1] != 1 {
		return nil, 0
	}
	// Constant-operand form: LoadG, Const, op, StoreG.
	if len(instrs) >= 4 && instrs[1].Op == ir.Const {
		cst, op, st := &instrs[1], &instrs[2], &instrs[3]
		if st.Op == ir.StoreG && st.Sym == g && st.A == op.Dst &&
			op.A == r1 && op.B == cst.Dst && cst.Dst != r1 &&
			c.reads[cst.Dst] == 1 && c.reads[op.Dst] == 1 {
			k := cst.Imm
			switch op.Op {
			case ir.Add:
				return func(x *Exec, fr *frame) { x.globals[g] += k }, 4
			case ir.Sub:
				return func(x *Exec, fr *frame) { x.globals[g] -= k }, 4
			case ir.Mul:
				return func(x *Exec, fr *frame) { x.globals[g] *= k }, 4
			case ir.BAnd:
				return func(x *Exec, fr *frame) { x.globals[g] &= k }, 4
			case ir.BOr:
				return func(x *Exec, fr *frame) { x.globals[g] |= k }, 4
			case ir.BXor:
				return func(x *Exec, fr *frame) { x.globals[g] ^= k }, 4
			}
		}
		return nil, 0
	}
	// Register-operand form: LoadG, op, StoreG.
	op, st := &instrs[1], &instrs[2]
	if st.Op == ir.StoreG && st.Sym == g && st.A == op.Dst &&
		op.A == r1 && op.B != r1 && c.reads[op.Dst] == 1 {
		b := op.B
		switch op.Op {
		case ir.Add:
			return func(x *Exec, fr *frame) { x.globals[g] += fr.regs[b] }, 3
		case ir.Sub:
			return func(x *Exec, fr *frame) { x.globals[g] -= fr.regs[b] }, 3
		case ir.Mul:
			return func(x *Exec, fr *frame) { x.globals[g] *= fr.regs[b] }, 3
		}
	}
	return nil, 0
}

// seqN composes closures into one as a branching-factor-4 tree: runs
// up to four unroll into direct calls, longer runs group into quads
// and recurse on the quads. Every call site in the tree holds ONE
// fixed closure value, so every indirect call is monomorphic and
// branch-predicted — unlike a flat loop (or a classic interpreter
// switch), whose single dispatch site mispredicts on every change of
// target. The tree adds ~1/3 extra calls per fused unit and wins that
// back severalfold on straight-line blocks.
func seqN(fns []instrFn) instrFn {
	switch len(fns) {
	case 0:
		return nil
	case 1:
		return fns[0]
	case 2:
		a, b := fns[0], fns[1]
		return func(x *Exec, fr *frame) { a(x, fr); b(x, fr) }
	case 3:
		a, b, cc := fns[0], fns[1], fns[2]
		return func(x *Exec, fr *frame) { a(x, fr); b(x, fr); cc(x, fr) }
	case 4:
		a, b, cc, d := fns[0], fns[1], fns[2], fns[3]
		return func(x *Exec, fr *frame) { a(x, fr); b(x, fr); cc(x, fr); d(x, fr) }
	}
	quads := make([]instrFn, 0, (len(fns)+3)/4)
	for len(fns) > 4 {
		quads = append(quads, seqN(fns[:4]))
		fns = fns[4:]
	}
	quads = append(quads, seqN(fns))
	return seqN(quads)
}

// fusePair recognizes a Const that feeds the very next instruction —
// the dominant pattern lowered from `i + 1`, `i < N`, `x & MASK`,
// `x >> K`, stores of literals — and emits one closure for the pair.
// The constant's register is written only when something else reads it
// (wt); the common fresh-temp constant is read exactly once, by the
// instruction it fused into, and its store is dead.
// Returns nil when the pair does not fuse.
func (c *comp) fusePair(a, b *ir.Instr) instrFn {
	if a.Op != ir.Const {
		return nil
	}
	t, k := a.Dst, a.Imm
	wt := c.reads[t] > 1
	if b.B == t {
		d, s := b.Dst, b.A
		// If the binop reads the constant on its A side too, r[s] must
		// see the new value; writing t first makes that hold in every
		// variant.
		switch b.Op {
		case ir.Add:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = r[s] + k
			}
		case ir.Sub:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = r[s] - k
			}
		case ir.Mul:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = r[s] * k
			}
		case ir.Eq:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = b2i(r[s] == k)
			}
		case ir.Ne:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = b2i(r[s] != k)
			}
		case ir.Lt:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = b2i(r[s] < k)
			}
		case ir.Le:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = b2i(r[s] <= k)
			}
		case ir.Gt:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = b2i(r[s] > k)
			}
		case ir.Ge:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = b2i(r[s] >= k)
			}
		case ir.BAnd:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = r[s] & k
			}
		case ir.BOr:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = r[s] | k
			}
		case ir.BXor:
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = r[s] ^ k
			}
		case ir.Shl:
			sh := uint(k & 63)
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = r[s] << sh
			}
		case ir.Shr:
			sh := uint(k & 63)
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = r[s] >> sh
			}
		case ir.StoreA:
			// Storing the literal: value operand is B.
			sym := b.Sym
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				if arr := x.arrays[sym]; len(arr) > 0 {
					arr[wrap(r[s], int64(len(arr)))] = k
				}
			}
		}
		return nil
	}
	if b.A == t {
		switch b.Op {
		case ir.Mov:
			d := b.Dst
			return func(x *Exec, fr *frame) {
				r := fr.regs
				if wt {
					r[t] = k
				}
				r[d] = k
			}
		case ir.StoreG:
			g := b.Sym
			return func(x *Exec, fr *frame) {
				if wt {
					fr.regs[t] = k
				}
				x.globals[g] = k
			}
		}
	}
	return nil
}

// fuseCond extracts a block-trailing comparison that writes the branch
// condition into the terminator itself: `i < N; branch` becomes one
// closure computing the compare and dispatching on the native bool,
// instead of a closure materializing 0/1 and a terminator re-testing
// it. The condition register is still written. Only call-free blocks
// qualify (the caller guarantees that), so the absorbed instructions
// stay charged to the block's single segment. Like fusePair, the
// condition register (and the absorbed constant's) is stored only when
// something besides this comparison-and-branch reads it; the common
// fresh compare temp never touches memory. Returns the closure and
// how many trailing instructions it absorbed (0 = no fusion).
func (c *comp) fuseCond(instrs []ir.Instr, cond int) (condFn, int) {
	n := len(instrs)
	if n == 0 {
		return nil, 0
	}
	last := &instrs[n-1]
	if last.Dst != cond {
		return nil, 0
	}
	wd := c.reads[last.Dst] > 1
	if n >= 2 {
		if a := &instrs[n-2]; a.Op == ir.Const && last.B == a.Dst {
			wt := c.reads[a.Dst] > 1
			if f := condCmpConst(last.Op, a.Dst, a.Imm, last.Dst, last.A, wt, wd); f != nil {
				c.closures++
				return f, 2
			}
		}
	}
	if f := condCmp(last.Op, last.Dst, last.A, last.B, wd); f != nil {
		c.closures++
		return f, 1
	}
	return nil, 0
}

// condCmp lowers a comparison instruction to a condFn. Nil for
// non-comparison opcodes.
func condCmp(op ir.Opcode, d, a, b int, wd bool) condFn {
	switch op {
	case ir.Eq:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			v := r[a] == r[b]
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	case ir.Ne:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			v := r[a] != r[b]
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	case ir.Lt:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			v := r[a] < r[b]
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	case ir.Le:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			v := r[a] <= r[b]
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	case ir.Gt:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			v := r[a] > r[b]
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	case ir.Ge:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			v := r[a] >= r[b]
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	case ir.Not:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			v := r[a] == 0
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	}
	return nil
}

// condCmpConst lowers a Const feeding a comparison's B operand plus
// the comparison into one condFn; like fusePair, the constant register
// is written first so an A-side read of it sees the new value.
func condCmpConst(op ir.Opcode, t int, k int64, d, s int, wt, wd bool) condFn {
	switch op {
	case ir.Eq:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			if wt {
				r[t] = k
			}
			v := r[s] == k
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	case ir.Ne:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			if wt {
				r[t] = k
			}
			v := r[s] != k
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	case ir.Lt:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			if wt {
				r[t] = k
			}
			v := r[s] < k
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	case ir.Le:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			if wt {
				r[t] = k
			}
			v := r[s] <= k
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	case ir.Gt:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			if wt {
				r[t] = k
			}
			v := r[s] > k
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	case ir.Ge:
		return func(x *Exec, fr *frame) bool {
			r := fr.regs
			if wt {
				r[t] = k
			}
			v := r[s] >= k
			if wd {
				r[d] = b2i(v)
			}
			return v
		}
	}
	return nil
}

// instrClosure lowers one instruction. Each closure captures only the
// operand indices it needs; all run state comes in through x and fr.
func (c *comp) instrClosure(in *ir.Instr) instrFn {
	d, a, b := in.Dst, in.A, in.B
	switch in.Op {
	case ir.Const:
		k := in.Imm
		return func(x *Exec, fr *frame) { fr.regs[d] = k }
	case ir.Mov:
		return func(x *Exec, fr *frame) { fr.regs[d] = fr.regs[a] }
	case ir.Add:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = r[a] + r[b] }
	case ir.Sub:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = r[a] - r[b] }
	case ir.Mul:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = r[a] * r[b] }
	case ir.Div:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = safeDiv(r[a], r[b]) }
	case ir.Mod:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = safeMod(r[a], r[b]) }
	case ir.Neg:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = -r[a] }
	case ir.Not:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = b2i(r[a] == 0) }
	case ir.Eq:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = b2i(r[a] == r[b]) }
	case ir.Ne:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = b2i(r[a] != r[b]) }
	case ir.Lt:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = b2i(r[a] < r[b]) }
	case ir.Le:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = b2i(r[a] <= r[b]) }
	case ir.Gt:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = b2i(r[a] > r[b]) }
	case ir.Ge:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = b2i(r[a] >= r[b]) }
	case ir.BAnd:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = r[a] & r[b] }
	case ir.BOr:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = r[a] | r[b] }
	case ir.BXor:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = r[a] ^ r[b] }
	case ir.Shl:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = r[a] << uint(r[b]&63) }
	case ir.Shr:
		return func(x *Exec, fr *frame) { r := fr.regs; r[d] = r[a] >> uint(r[b]&63) }
	case ir.LoadG:
		g := in.Sym
		return func(x *Exec, fr *frame) { fr.regs[d] = x.globals[g] }
	case ir.StoreG:
		g := in.Sym
		return func(x *Exec, fr *frame) { x.globals[g] = fr.regs[a] }
	case ir.LoadA:
		s := in.Sym
		return func(x *Exec, fr *frame) {
			arr := x.arrays[s]
			if len(arr) == 0 {
				fr.regs[d] = 0
				return
			}
			fr.regs[d] = arr[wrap(fr.regs[a], int64(len(arr)))]
		}
	case ir.StoreA:
		s := in.Sym
		return func(x *Exec, fr *frame) {
			arr := x.arrays[s]
			if len(arr) > 0 {
				arr[wrap(fr.regs[a], int64(len(arr)))] = fr.regs[b]
			}
		}
	case ir.Print:
		return func(x *Exec, fr *frame) {
			if x.out != nil {
				fmt.Fprintf(x.out, "%d\n", fr.regs[a])
			}
		}
	}
	// ir.Call is handled by segmentation; anything else is a no-op, as
	// in the interpreter's switch default.
	return func(x *Exec, fr *frame) {}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// safeDiv, safeMod, and wrap mirror the interpreter's total arithmetic
// (vm.safeDiv etc.); the backends must agree bit for bit.
func safeDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	if a == math.MinInt64 && b == -1 {
		return math.MinInt64
	}
	return a / b
}

func safeMod(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	if a == math.MinInt64 && b == -1 {
		return 0
	}
	return a % b
}

func wrap(i, size int64) int64 {
	if uint64(i) < uint64(size) {
		return i
	}
	if size == 0 {
		return 0
	}
	i %= size
	if i < 0 {
		i += size
	}
	return i
}
