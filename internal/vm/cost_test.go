package vm_test

import (
	"testing"

	"pathprof/internal/lower"
	"pathprof/internal/vm"
)

// TestTakenPenaltyRewardsStraightLine verifies the layout-sensitive
// part of the cost model: the same computation costs more when control
// keeps leaving the fall-through path.
func TestTakenPenaltyRewardsStraightLine(t *testing.T) {
	src := `
func main() {
	var s = 0;
	var i = 0;
	while (i < 1000) {
		if (i % 2 == 0) { s = s + 1; } else { s = s + 2; }
		i = i + 1;
	}
	return s;
}`
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	costs := vm.DefaultCosts()
	base, err := vm.Run(prog, vm.Options{Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	costs.TakenPenalty = 0
	flat, err := vm.Run(prog, vm.Options{Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	if base.Ret != flat.Ret || base.Steps != flat.Steps {
		t.Fatal("penalty changed semantics or step count")
	}
	if base.BaseCost <= flat.BaseCost {
		t.Errorf("taken penalty had no effect: %d vs %d", base.BaseCost, flat.BaseCost)
	}
	// The difference is exactly the number of non-fall-through
	// transfers, which for this loop is at least one per iteration.
	if base.BaseCost-flat.BaseCost < 1000 {
		t.Errorf("penalty delta %d too small for 1000 iterations", base.BaseCost-flat.BaseCost)
	}
}

func TestDeepRecursionUsesHeapFrames(t *testing.T) {
	// 200k-deep recursion would overflow a goroutine stack if frames
	// were Go stack frames; the explicit frame stack must handle it.
	src := `
func down(n) {
	if (n <= 0) { return 0; }
	return down(n - 1) + 1;
}
func main() { return down(200000); }`
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 200000 {
		t.Errorf("deep recursion returned %d", res.Ret)
	}
}

func TestEntryFunctionWithArgs(t *testing.T) {
	src := `
func addmul(a, b, c) { return a + b * c; }
func main() { return 0; }`
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, vm.Options{Entry: "addmul", Args: []int64{2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 14 {
		t.Errorf("addmul(2,3,4) = %d, want 14", res.Ret)
	}
	if _, err := vm.Run(prog, vm.Options{Entry: "addmul", Args: []int64{1}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := vm.Run(prog, vm.Options{Entry: "missing"}); err == nil {
		t.Error("missing entry accepted")
	}
}

func TestShiftAndBitwiseSemantics(t *testing.T) {
	src := `
func main() {
	var a = 1 << 62;
	var b = a >> 3;
	var c = (b & 255) | 129 ^ 2;
	var d = 0 - 8;
	var e = d >> 1;
	return c + e + b % 1000000007;
}`
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := int64(1) << 62
	b := a >> 3
	c := (b & 255) | 129 ^ 2
	e := int64(-8) >> 1 // arithmetic shift
	want := c + e + b%1000000007
	if res.Ret != want {
		t.Errorf("got %d, want %d", res.Ret, want)
	}
}
