package vm_test

import (
	"testing"

	"pathprof/internal/instr"
	"pathprof/internal/ir"
	"pathprof/internal/lower"
	"pathprof/internal/vm"
)

// hotSrc is a VM-bound workload: a tight loop with a data-dependent
// branch, nested in repeated calls, so transitions, frames, and path
// truncation at back edges all stay hot.
const hotSrc = `
var acc = 0;
func work(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
	}
	return s;
}
func main() {
	for (var k = 0; k < 500; k = k + 1) { acc = acc + work(400); }
	return acc;
}`

func hotProgram(tb testing.TB) *ir.Program {
	tb.Helper()
	prog, err := lower.Compile(hotSrc, lower.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return prog
}

// ppPlans builds PP instrumentation plans for prog from its own run.
func ppPlans(tb testing.TB, prog *ir.Program) map[string]*instr.Plan {
	tb.Helper()
	guide, err := vm.Run(prog, vm.Options{CollectEdges: true})
	if err != nil {
		tb.Fatal(err)
	}
	plans := map[string]*instr.Plan{}
	for _, f := range prog.Funcs {
		g := mustCFG(tb, f)
		guide.Edges[f.Name].ApplyTo(g)
		p, err := instr.Build(g, instr.PP(), instr.DefaultParams(), 0)
		if err != nil {
			tb.Fatal(err)
		}
		plans[f.Name] = p
	}
	return plans
}

// BenchmarkRunPlain measures the bare interpreter loop.
func BenchmarkRunPlain(b *testing.B) {
	prog := hotProgram(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := vm.Run(prog, vm.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Steps), "steps/op")
	}
}

// BenchmarkRunProfiled measures the loop with exact edge and path
// collection, the configuration every staging run uses.
func BenchmarkRunProfiled(b *testing.B) {
	prog := hotProgram(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(prog, vm.Options{CollectEdges: true, CollectPaths: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunInstrumented measures the loop executing a PP plan with
// modeled cost, the configuration of every instrumented rerun.
func BenchmarkRunInstrumented(b *testing.B) {
	prog := hotProgram(b)
	plans := ppPlans(b, prog)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(prog, vm.Options{Plans: plans, CollectPaths: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSteadyStateTransitionAllocs locks in the pooling win: a run with
// ~800k steps (200k+ transitions and 500 calls) must allocate only the
// per-run constant (machine setup, profiles, pooled-frame high-water
// mark) — nothing proportional to executed transitions.
func TestSteadyStateTransitionAllocs(t *testing.T) {
	prog := hotProgram(t)
	warm, err := vm.Run(prog, vm.Options{CollectEdges: true, CollectPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Steps < 500_000 {
		t.Fatalf("workload too small to be a steady-state probe: %d steps", warm.Steps)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := vm.Run(prog, vm.Options{CollectEdges: true, CollectPaths: true}); err != nil {
			t.Fatal(err)
		}
	})
	// The seed implementation allocated per transition and per call
	// (frames, arg slices, path-string keys): hundreds of thousands of
	// allocations for this workload's ~3M steps. Dense dispatch plus
	// pooling leaves only run setup (~350), independent of step count.
	const budget = 500
	if allocs > budget {
		t.Errorf("Run allocated %.0f times for %d steps; budget %d (per-transition allocation crept back in)",
			allocs, warm.Steps, budget)
	}
}

// TestFramePoolReuseUnderCalls verifies call-heavy execution reuses
// pooled frames: allocations stay flat when the dynamic call count
// quadruples.
func TestFramePoolReuseUnderCalls(t *testing.T) {
	src := func(calls int) string {
		return `
func leaf(n) { return n + 1; }
func main() {
	var s = 0;
	for (var i = 0; i < ` + itoa(calls) + `; i = i + 1) { s = leaf(s); }
	return s;
}`
	}
	measure := func(calls int) float64 {
		prog, err := lower.Compile(src(calls), lower.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(3, func() {
			res, err := vm.Run(prog, vm.Options{CollectPaths: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.DynCalls != int64(calls) {
				t.Fatalf("dyn calls = %d, want %d", res.DynCalls, calls)
			}
		})
	}
	small, large := measure(20_000), measure(80_000)
	if large > small+50 {
		t.Errorf("allocations grew with call count: %.0f at 20k calls vs %.0f at 80k", small, large)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
