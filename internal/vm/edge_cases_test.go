package vm_test

import (
	"testing"

	"pathprof/internal/ir"
	"pathprof/internal/lower"
	"pathprof/internal/vm"
)

// TestUseZeroCosts covers the Options.Costs sentinel: a zero CostModel
// used to be silently replaced by DefaultCosts(), making a genuinely
// free execution impossible to request. UseZeroCosts is the escape
// hatch.
func TestUseZeroCosts(t *testing.T) {
	prog := compile(t, loopSrc, lower.Options{})

	defaulted := run(t, prog, vm.Options{})
	if defaulted.BaseCost == 0 {
		t.Fatal("zero Costs without UseZeroCosts should default to DefaultCosts, got BaseCost = 0")
	}

	free := run(t, prog, vm.Options{UseZeroCosts: true})
	if free.BaseCost != 0 || free.InstrCost != 0 {
		t.Errorf("UseZeroCosts run cost = %d+%d, want 0+0", free.BaseCost, free.InstrCost)
	}
	if free.Steps != defaulted.Steps || free.Ret != defaulted.Ret {
		t.Errorf("UseZeroCosts changed execution: steps %d vs %d, ret %d vs %d",
			free.Steps, defaulted.Steps, free.Ret, defaulted.Ret)
	}

	// An explicitly non-zero model is never overridden.
	instrOnly := run(t, prog, vm.Options{Costs: vm.CostModel{Instr: 1}})
	if instrOnly.BaseCost == 0 || instrOnly.BaseCost >= defaulted.BaseCost {
		t.Errorf("Costs{Instr:1} BaseCost = %d, want in (0, %d)", instrOnly.BaseCost, defaulted.BaseCost)
	}
}

// emptyArrayProg hand-builds a program with a zero-length array (the
// front end rejects `array a[0]`), so the wrap() size==0 guard is
// reachable: loads yield 0, stores are dropped, nothing panics.
//
//	main: r0 = 7; a0[r0] = r0; r1 = a0[r0]; ret r1
func emptyArrayProg(t *testing.T) *ir.Program {
	t.Helper()
	f := &ir.Func{Name: "main", NRegs: 2}
	b := f.NewBlock("entry")
	b.Instrs = []ir.Instr{
		{Op: ir.Const, Dst: 0, Imm: 7},
		{Op: ir.StoreA, Sym: 0, A: 0, B: 0},
		{Op: ir.LoadA, Dst: 1, Sym: 0, A: 0},
	}
	b.Term = ir.Term{Kind: ir.Ret, Ret: 1}
	prog := &ir.Program{
		Funcs:      []*ir.Func{f},
		FuncIndex:  map[string]int{"main": 0},
		Arrays:     []ir.Array{{Name: "z", Size: 0}},
		ArrayIndex: map[string]int{"z": 0},
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return prog
}

func TestEmptyArrayLoadStore(t *testing.T) {
	prog := emptyArrayProg(t)
	res := run(t, prog, vm.Options{CollectEdges: true, CollectPaths: true})
	if res.Ret != 0 {
		t.Errorf("load from empty array = %d, want 0", res.Ret)
	}
	if res.Steps != 4 {
		t.Errorf("steps = %d, want 4", res.Steps)
	}
}

// TestHugeIndexWraps exercises the wrap fast path's complement: an
// index far out of range still reduces into [0, size).
func TestHugeIndexWraps(t *testing.T) {
	src := `
array a[8];
func main() { a[8000000011] = 9; return a[3]; }`
	prog := compile(t, src, lower.Options{})
	res := run(t, prog, vm.Options{})
	if res.Ret != 9 {
		t.Errorf("a[8000000011 %% 8] = %d, want 9 (slot 3)", res.Ret)
	}
}
