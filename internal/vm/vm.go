// Package vm executes IR programs deterministically while modeling
// runtime cost, collecting exact edge and path profiles, and executing
// path-profiling instrumentation plans.
//
// The VM stands in for the paper's AlphaServer measurements: the cost
// model charges one unit per executed IR statement and a fixed cost
// per instrumentation operation, weighted by memory traffic: counter
// updates are read-modify-writes of profiling tables that miss caches,
// and hash updates cost five times array updates per Joshi et al.'s
// estimate. Profiling overhead is the ratio of instrumentation cost to
// base program cost and is exactly reproducible.
//
// Ground truth: the VM records the exact Ball-Larus path profile of
// the run (paths truncate at back edges and routine exits; calls
// suspend the caller's path), which the evaluation uses as the actual
// path profile that PP would measure.
//
// The interpreter is built for throughput: prepare compiles every
// block terminator into a dense successor table (per-transition state
// is a slice index away, with no map lookups on the hot path), frames
// and their register/path slices are pooled across calls, and edge
// counts go to dense profile slots. A steady-state transition performs
// zero allocations.
package vm

import (
	"errors"
	"fmt"
	"io"
	"math"

	"pathprof/internal/cfg"
	"pathprof/internal/instr"
	"pathprof/internal/ir"
	"pathprof/internal/planir"
	"pathprof/internal/profile"
	"pathprof/internal/telemetry"
)

// CostModel assigns costs to executed operations.
type CostModel struct {
	Instr       int64 // per IR instruction
	Term        int64 // per block terminator
	Call        int64 // extra per call (frame setup/teardown)
	RegOp       int64 // r = v and r += v
	CountArray  int64 // count[r]++ against an array
	CountConst  int64 // count[c]++ against an array (no address arith)
	CountHash   int64 // any count against the hash table
	PoisonCheck int64 // the r < 0 test of check-based poisoning
	ColdBump    int64 // incrementing the cold counter after a check
	EdgeCount   int64 // per-branch edge-profiling counter update
	// TakenPenalty charges control transfers to a block other than the
	// next one in layout order (block index + 1): the fetch-redirect
	// cost that makes straight-line code and trace formation pay on
	// real machines.
	TakenPenalty int64
}

// DefaultCosts returns the cost model used throughout the evaluation.
func DefaultCosts() CostModel {
	return CostModel{
		Instr: 1, Term: 1, Call: 5,
		RegOp: 2, CountArray: 6, CountConst: 4, CountHash: 30,
		PoisonCheck: 2, ColdBump: 3, EdgeCount: 3, TakenPenalty: 1,
	}
}

// Options configures a run.
type Options struct {
	Costs CostModel
	// UseZeroCosts runs with Costs exactly as given even when it is the
	// zero CostModel. Without it, a zero Costs is replaced by
	// DefaultCosts(), so an intentionally free execution (e.g. counting
	// steps without modeling cost) needs this escape hatch.
	UseZeroCosts bool
	// Entry is the function to run (default "main"); Args its
	// arguments.
	Entry string
	Args  []int64
	// CollectEdges/CollectPaths enable exact (cost-free) profile
	// collection.
	CollectEdges bool
	CollectPaths bool
	// EdgeInstrument charges the cost of software edge-profiling
	// counters on branch transitions.
	EdgeInstrument bool
	// Plans maps function names to instrumentation plans; their ops
	// execute on control-flow transitions with modeled cost.
	Plans map[string]*instr.Plan
	// PathHook, if set with CollectPaths, receives every completed
	// Ball-Larus path in execution order (the stream online predictors
	// like Dynamo's NET consume). The path slice is reused; copy it if
	// retained.
	PathHook func(fn string, p cfg.Path)
	// PathHookFor, if set, gives each RunReplicated worker a private
	// path hook: all of worker w's replicas use PathHookFor(w), so
	// online predictors keep per-shard state with no synchronization and
	// fan in after the run (netprof.Predictor.Merge). It takes
	// precedence over PathHook in RunReplicated; Run ignores it.
	PathHookFor func(worker int) func(fn string, p cfg.Path)
	// Sink, if set, supplies the run's profile containers — edge/path
	// profiles and counter tables — in place of freshly allocated ones,
	// so successive runs accumulate into shared state. This is the
	// sharded-collection fast path: each worker feeds its own
	// profile.Shard through the ordinary BumpSlot/Add/Inc operations
	// (no atomics anywhere on the hot path) and the collector merges
	// shards off the hot path. Result.Edges/Paths/Tables then alias the
	// sink's containers.
	Sink ProfileSink
	// MaxSteps aborts runaway programs (0 = default limit).
	MaxSteps int64
	// Output receives print() values; nil discards them.
	Output io.Writer
	// Guard, if set, puts RunReplicated into guarded mode: replica
	// panics are recovered, pre-run faults retried, and failing shards
	// quarantined out of the merge instead of killing the run. A nil
	// Guard preserves the strict fail-fast behavior. Run ignores it.
	Guard *GuardConfig
	// Metrics, if set, receives hot-loop counters (transitions, ops,
	// table increments, completed paths). Nil is the no-op sink: every
	// bump site degrades to one predictable nil-check branch with zero
	// allocations. MetricsWorker selects the metric cell the run writes;
	// RunReplicated assigns each worker its own.
	Metrics       *telemetry.VMMetrics
	MetricsWorker int
	// Trace, if set, receives runtime decision events (RunReplicated
	// shard quarantines); TraceUnit labels them.
	Trace     *telemetry.Trace
	TraceUnit string
	// Backend selects the execution engine: BackendDense (the default)
	// interprets over dense successor tables; BackendCompiled runs
	// threaded code specialized per routine (internal/vm/compile). The
	// two produce bit-identical results, profiles, and modeled costs.
	Backend Backend
	// Validate gates translation validation of the compiled backend:
	// at engine-build time every compiled routine is symbolically
	// driven against the spec it was lowered from and proven
	// effect-equivalent (compile.Validate). On by default (the zero
	// value) so tests and CI always run it; production paths that
	// rebuild engines in a loop can opt out with ValidateOff.
	Validate ValidateMode
}

// ValidateMode gates compiled-backend translation validation.
type ValidateMode int8

const (
	// ValidateOn (the zero value) proves every compiled routine
	// equivalent to its spec when the engine is built.
	ValidateOn ValidateMode = iota
	// ValidateOff skips translation validation.
	ValidateOff
)

// Result is the outcome of a run.
type Result struct {
	Ret       int64
	BaseCost  int64 // program cost without instrumentation
	InstrCost int64 // added instrumentation cost
	Steps     int64 // executed instructions + terminators
	DynCalls  int64 // executed call instructions
	Edges     map[string]*profile.EdgeProfile
	Paths     map[string]*profile.PathProfile
	Tables    map[string]*profile.Table
	// DAGs holds the per-routine DAG used for path tracking, so
	// callers can interpret the recorded paths (branch counts etc.).
	DAGs map[string]*cfg.DAG
	// ValidateUs reports per-routine translation-validation wall time
	// in microseconds (compiled backend with ValidateOn only; nil
	// otherwise). It is engine-build work, surfaced on the Result so
	// reporting tools can attribute it.
	ValidateUs map[string]int64
}

// Cost returns the total modeled cost.
func (r *Result) Cost() int64 { return r.BaseCost + r.InstrCost }

// Snapshot views the run's profiles as a profile.Snapshot, the
// currency of merging, fingerprinting, and durable persistence
// (internal/snapshot).
func (r *Result) Snapshot() *profile.Snapshot {
	return &profile.Snapshot{Edges: r.Edges, Paths: r.Paths, Tables: r.Tables}
}

// Overhead returns instrumentation cost relative to base cost.
func (r *Result) Overhead() float64 {
	if r.BaseCost == 0 {
		return 0
	}
	return float64(r.InstrCost) / float64(r.BaseCost)
}

// ErrMaxSteps is returned when the step budget is exhausted.
var ErrMaxSteps = errors.New("vm: step budget exhausted")

const defaultMaxSteps = int64(2_000_000_000)

// succRT is the precompiled state of one control-flow transition: what
// the interpreter needs when a terminator selects this successor, with
// every map lookup done once in prepare.
type succRT struct {
	to        int
	edgeSlot  int32 // dense edge-profile slot; -1 when edges are off
	back      bool  // transition follows a CFG back edge
	takenCost int64 // TakenPenalty when to != from+1
	instrCost int64 // EdgeCount under EdgeInstrument on branches
	ops       []planir.Op
	// Path tracking: real DAG edge to append, or the dummy pair that
	// truncates and restarts the path at a back edge.
	pathEdge   *cfg.DAGEdge
	exitDummy  *cfg.DAGEdge
	entryDummy *cfg.DAGEdge
}

// blockRT holds a block's successor table: succ[0] is the Jump target
// or the Branch taken-arm, succ[1] the Branch else-arm.
type blockRT struct {
	succ [2]succRT
}

// funcRT is one routine's binding-level state: the engine's immutable
// successor template joined with this worker's profile containers.
type funcRT struct {
	fn    *ir.Func
	d     *cfg.DAG
	table *profile.Table

	blocks []blockRT
	// hash/poisonCheck mirror plan fields for the op interpreter.
	hash        bool
	poisonCheck bool

	edges *profile.EdgeProfile
	paths *profile.PathProfile
}

type frame struct {
	rt      *funcRT
	regs    []int64
	block   int
	pc      int
	r       int64 // path register
	path    cfg.Path
	callDst int // caller register receiving the return value
}

// Run executes the program under the given options. It is
// NewEngine + one run; callers executing the same program repeatedly
// (replication, benchmarking) should build the Engine once instead.
func Run(prog *ir.Program, opts Options) (*Result, error) {
	e, err := NewEngine(prog, opts)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

type machine struct {
	prog  *ir.Program
	opts  *Options // the engine's defaulted options, shared read-only
	entry int
	res   *Result
	// pathHook is this worker's hook (Options.PathHook, or
	// PathHookFor(worker) under RunReplicated).
	pathHook func(fn string, p cfg.Path)
	globals  []int64
	arrays   [][]int64
	rts      []*funcRT
	pool     []*frame // recycled frames; regs/path capacity is retained
	// tel is this run's private view of the telemetry counters; the
	// zero VMCells (no registry installed) makes every bump a no-op.
	tel telemetry.VMCells
}

// run executes one replica: restore program state, run, report. The
// machine itself — successor tables, pooled frames, containers — is
// reused across a worker's replicas.
func (m *machine) run(args []int64, b *binding) (*Result, error) {
	copy(m.globals, m.prog.GlobalInit)
	for _, a := range m.arrays {
		for i := range a {
			a[i] = 0
		}
	}
	m.res = &Result{Edges: b.edges, Paths: b.paths, Tables: b.tables, DAGs: b.dags}
	ret, err := m.exec(m.entry, args)
	if err != nil {
		return nil, err
	}
	m.res.Ret = ret
	return m.res, nil
}

// newFrame pushes a pooled frame for function fi. Register and path
// slices are recycled across calls; registers are zeroed.
func (m *machine) newFrame(fi, callDst int) *frame {
	f := m.prog.Funcs[fi]
	var fr *frame
	if n := len(m.pool); n > 0 {
		fr = m.pool[n-1]
		m.pool = m.pool[:n-1]
	} else {
		fr = &frame{}
	}
	fr.rt = m.rts[fi]
	fr.block = f.Entry
	fr.pc = 0
	fr.r = 0
	fr.callDst = callDst
	if cap(fr.regs) < f.NRegs {
		fr.regs = make([]int64, f.NRegs)
	} else {
		fr.regs = fr.regs[:f.NRegs]
		for i := range fr.regs {
			fr.regs[i] = 0
		}
	}
	fr.path = fr.path[:0]
	if fr.rt.edges != nil {
		fr.rt.edges.BumpCalls()
	}
	return fr
}

// free returns a popped frame to the pool.
func (m *machine) free(fr *frame) {
	fr.rt = nil
	m.pool = append(m.pool, fr)
}

// exec runs function fnIdx with the given arguments to completion.
func (m *machine) exec(fnIdx int, args []int64) (int64, error) {
	costs := &m.opts.Costs
	cInstr, cTerm, cCall := costs.Instr, costs.Term, costs.Call
	maxSteps := m.opts.MaxSteps
	var steps, base int64 // flushed to m.res on successful completion

	entry := m.prog.Funcs[fnIdx]
	if len(args) != entry.NParams {
		return 0, fmt.Errorf("vm: %s expects %d args, got %d", entry.Name, entry.NParams, len(args))
	}
	var stack []*frame
	fr := m.newFrame(fnIdx, -1)
	copy(fr.regs, args)
	stack = append(stack, fr)

	var retVal int64
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		rt := fr.rt
		b := rt.fn.Blocks[fr.block]
		instrs := b.Instrs

		// Execute remaining instructions of the current block.
		callMade := false
		for fr.pc < len(instrs) {
			in := &instrs[fr.pc]
			fr.pc++
			steps++
			base += cInstr
			if steps > maxSteps {
				return 0, ErrMaxSteps
			}
			if in.Op == ir.Call {
				m.res.DynCalls++
				base += cCall
				callee := m.prog.Funcs[in.Sym]
				if len(in.Args) != callee.NParams {
					return 0, fmt.Errorf("vm: %s expects %d args, got %d",
						callee.Name, callee.NParams, len(in.Args))
				}
				nf := m.newFrame(in.Sym, in.Dst)
				for i, a := range in.Args {
					nf.regs[i] = fr.regs[a]
				}
				stack = append(stack, nf)
				callMade = true
				break
			}
			r := fr.regs
			switch in.Op {
			case ir.Const:
				r[in.Dst] = in.Imm
			case ir.Mov:
				r[in.Dst] = r[in.A]
			case ir.Add:
				r[in.Dst] = r[in.A] + r[in.B]
			case ir.Sub:
				r[in.Dst] = r[in.A] - r[in.B]
			case ir.Mul:
				r[in.Dst] = r[in.A] * r[in.B]
			case ir.Div:
				r[in.Dst] = safeDiv(r[in.A], r[in.B])
			case ir.Mod:
				r[in.Dst] = safeMod(r[in.A], r[in.B])
			case ir.Neg:
				r[in.Dst] = -r[in.A]
			case ir.Not:
				r[in.Dst] = b2i(r[in.A] == 0)
			case ir.Eq:
				r[in.Dst] = b2i(r[in.A] == r[in.B])
			case ir.Ne:
				r[in.Dst] = b2i(r[in.A] != r[in.B])
			case ir.Lt:
				r[in.Dst] = b2i(r[in.A] < r[in.B])
			case ir.Le:
				r[in.Dst] = b2i(r[in.A] <= r[in.B])
			case ir.Gt:
				r[in.Dst] = b2i(r[in.A] > r[in.B])
			case ir.Ge:
				r[in.Dst] = b2i(r[in.A] >= r[in.B])
			case ir.BAnd:
				r[in.Dst] = r[in.A] & r[in.B]
			case ir.BOr:
				r[in.Dst] = r[in.A] | r[in.B]
			case ir.BXor:
				r[in.Dst] = r[in.A] ^ r[in.B]
			case ir.Shl:
				r[in.Dst] = r[in.A] << uint(r[in.B]&63)
			case ir.Shr:
				r[in.Dst] = r[in.A] >> uint(r[in.B]&63)
			case ir.LoadG:
				r[in.Dst] = m.globals[in.Sym]
			case ir.StoreG:
				m.globals[in.Sym] = r[in.A]
			case ir.LoadA:
				arr := m.arrays[in.Sym]
				if len(arr) == 0 {
					r[in.Dst] = 0
				} else {
					r[in.Dst] = arr[wrap(r[in.A], int64(len(arr)))]
				}
			case ir.StoreA:
				arr := m.arrays[in.Sym]
				if len(arr) > 0 {
					arr[wrap(r[in.A], int64(len(arr)))] = r[in.B]
				}
			case ir.Print:
				if m.opts.Output != nil {
					fmt.Fprintf(m.opts.Output, "%d\n", r[in.A])
				}
			}
		}
		if callMade {
			continue
		}

		// Terminator.
		steps++
		base += cTerm
		t := &b.Term
		switch t.Kind {
		case ir.Ret:
			if rt.paths != nil {
				rt.paths.Add(fr.path, 1)
				m.tel.Paths.Inc()
				m.tel.PathLen.Observe(int64(len(fr.path)))
				if m.pathHook != nil {
					m.pathHook(rt.fn.Name, fr.path)
				}
			}
			if t.Ret >= 0 {
				retVal = fr.regs[t.Ret]
			} else {
				retVal = 0
			}
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				caller := stack[len(stack)-1]
				if fr.callDst >= 0 {
					caller.regs[fr.callDst] = retVal
				}
			}
			m.free(fr)
		case ir.Jump:
			s := &rt.blocks[fr.block].succ[0]
			base += s.takenCost
			m.transition(fr, s)
			fr.block, fr.pc = s.to, 0
		case ir.Branch:
			idx := 1 // else arm
			if fr.regs[t.Cond] != 0 {
				idx = 0
			}
			s := &rt.blocks[fr.block].succ[idx]
			base += s.takenCost
			m.transition(fr, s)
			fr.block, fr.pc = s.to, 0
		}
	}
	m.res.Steps = steps
	m.res.BaseCost = base
	return retVal, nil
}

// transition handles a control-flow edge through its precompiled
// successor state: edge profiling, path tracking, and instrumentation
// ops, with no map lookups. The path appends below reuse fr.path's
// capacity after the first few iterations; BenchmarkVM asserts zero
// steady-state allocations.
//
//ppp:hotpath
func (m *machine) transition(fr *frame, s *succRT) {
	rt := fr.rt
	m.tel.Transitions.Inc()
	if s.edgeSlot >= 0 {
		rt.edges.BumpSlot(int(s.edgeSlot))
	}
	m.res.InstrCost += s.instrCost
	if s.ops != nil {
		m.runOps(fr, s.ops)
	}
	if rt.paths != nil {
		if s.back {
			fr.path = append(fr.path, s.exitDummy) //ppp:allow(alloc)
			rt.paths.Add(fr.path, 1)
			m.tel.Paths.Inc()
			m.tel.PathLen.Observe(int64(len(fr.path)))
			if m.pathHook != nil {
				m.pathHook(rt.fn.Name, fr.path)
			}
			fr.path = fr.path[:0]
			fr.path = append(fr.path, s.entryDummy) //ppp:allow(alloc)
		} else {
			fr.path = append(fr.path, s.pathEdge) //ppp:allow(alloc)
		}
	}
}

// runOps executes a planir instrumentation op stream with modeled
// cost.
//
//ppp:hotpath
func (m *machine) runOps(fr *frame, ops []planir.Op) {
	costs := &m.opts.Costs
	rt := fr.rt
	hash := rt.hash
	m.tel.Ops.Add(int64(len(ops)))
	for _, op := range ops {
		switch op.Kind {
		case planir.OpInc:
			fr.r += op.V
			m.res.InstrCost += costs.RegOp
		case planir.OpSet:
			fr.r = op.V
			m.res.InstrCost += costs.RegOp
		case planir.OpCountR, planir.OpCountRV, planir.OpCountC:
			idx := fr.r
			switch op.Kind {
			case planir.OpCountRV:
				idx += op.V
			case planir.OpCountC:
				idx = op.V
			}
			if rt.poisonCheck {
				m.res.InstrCost += costs.PoisonCheck
				if fr.r < 0 {
					rt.table.BumpCold()
					m.tel.ColdBumps.Inc()
					m.res.InstrCost += costs.ColdBump
					continue
				}
			}
			switch {
			case hash:
				m.res.InstrCost += costs.CountHash
			case op.Kind == planir.OpCountC:
				m.res.InstrCost += costs.CountConst
			default:
				m.res.InstrCost += costs.CountArray
			}
			rt.table.Inc(idx)
			m.tel.TableIncs.Inc()
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// safeDiv defines x/0 = 0 and MinInt64/-1 = MinInt64 so arithmetic is
// total (the language has no traps).
func safeDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	if a == math.MinInt64 && b == -1 {
		return math.MinInt64
	}
	return a / b
}

func safeMod(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	if a == math.MinInt64 && b == -1 {
		return 0
	}
	return a % b
}

// wrap maps an arbitrary index into [0, size): array indices wrap
// modulo the array size by definition. In-range indices (the common
// case) skip the division; size 0 yields 0 so empty arrays are total
// too (callers must still skip the element access).
func wrap(i, size int64) int64 {
	if uint64(i) < uint64(size) {
		return i
	}
	if size == 0 {
		return 0
	}
	i %= size
	if i < 0 {
		i += size
	}
	return i
}
