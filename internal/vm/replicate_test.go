package vm_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"pathprof/internal/cfg"
	"pathprof/internal/instr"
	"pathprof/internal/ir"
	"pathprof/internal/lower"
	"pathprof/internal/profile"
	"pathprof/internal/vm"
)

// replSrc mixes loops, calls, and data-dependent branches so replicas
// exercise edge slots, the path trie, and instrumentation tables.
const replSrc = `
var acc = 0;
func work(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
		if (i % 7 == 0) { s = s + 2; }
	}
	return s;
}
func main() {
	var t = 0;
	var j = 0;
	while (j < 40) {
		t = t + work(j);
		j = j + 1;
	}
	acc = t;
	return t;
}`

// replPlans builds Ball-Larus (PP) instrumentation plans for every
// routine; hashThreshold 0 keeps the default, a small value forces the
// 701-slot hash table so replication covers its sharded form too.
func replPlans(t *testing.T, prog *ir.Program, hashThreshold int64) map[string]*instr.Plan {
	t.Helper()
	res := run(t, prog, vm.Options{CollectPaths: true})
	var total int64
	for _, pp := range res.Paths {
		total += pp.Total()
	}
	par := instr.DefaultParams()
	if hashThreshold > 0 {
		par.HashThreshold = hashThreshold
	}
	plans := map[string]*instr.Plan{}
	for _, f := range prog.Funcs {
		plan, err := instr.Build(mustCFG(t, f), instr.PP(), par, total)
		if err != nil {
			t.Fatalf("plan %s: %v", f.Name, err)
		}
		plans[f.Name] = plan
	}
	return plans
}

// TestRunReplicatedMatchesSequential is the determinism guarantee: the
// merged snapshot, aggregate costs, and return value of a replicated
// run are identical at every worker count, and equal n times a single
// run.
func TestRunReplicatedMatchesSequential(t *testing.T) {
	prog := compile(t, replSrc, lower.Options{})
	opts := vm.Options{CollectEdges: true, CollectPaths: true}
	const n = 6

	single := run(t, prog, opts)
	seq, err := vm.RunReplicated(prog, opts, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Ret != single.Ret || seq.Workers != 1 || seq.Replicas != n {
		t.Fatalf("sequential replicated: ret=%d workers=%d replicas=%d", seq.Ret, seq.Workers, seq.Replicas)
	}
	if seq.Steps != n*single.Steps || seq.BaseCost != n*single.BaseCost || seq.DynCalls != n*single.DynCalls {
		t.Errorf("aggregates not %dx a single run: steps %d vs %d", n, seq.Steps, n*single.Steps)
	}
	for fn, ep := range single.Edges {
		merged := seq.Merged.Edges[fn]
		if merged == nil {
			t.Fatalf("merged profile missing %s", fn)
		}
		for k, v := range ep.Freq() {
			if got := merged.Get(k.Src, k.Dst); got != n*v {
				t.Errorf("%s edge %v: merged %d, want %d", fn, k, got, n*v)
			}
		}
	}
	for fn, pp := range single.Paths {
		mp := seq.Merged.Paths[fn]
		if mp.Total() != n*pp.Total() || mp.Distinct() != pp.Distinct() {
			t.Errorf("%s paths: total %d distinct %d, want %d/%d",
				fn, mp.Total(), mp.Distinct(), n*pp.Total(), pp.Distinct())
		}
	}

	want := seq.Merged.Fingerprint()
	for _, par := range []int{2, 3, 4, 8} {
		rr, err := vm.RunReplicated(prog, opts, n, par)
		if err != nil {
			t.Fatal(err)
		}
		if rr.Ret != seq.Ret || rr.Steps != seq.Steps || rr.BaseCost != seq.BaseCost {
			t.Errorf("par=%d: aggregates differ from sequential", par)
		}
		if fp := rr.Merged.Fingerprint(); fp != want {
			t.Errorf("par=%d: merged fingerprint %#x != sequential %#x", par, fp, want)
		}
		if rr.DAGs["main"] == nil {
			t.Errorf("par=%d: no DAGs captured", par)
		}
	}

	// par above n clamps to n workers.
	rr, err := vm.RunReplicated(prog, opts, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Workers != 2 {
		t.Errorf("workers = %d, want clamp to 2", rr.Workers)
	}
	if _, err := vm.RunReplicated(prog, opts, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestRunReplicatedInstrumentedTables checks the sharded counter
// tables: array and (forced) hash tables merge bit-identically at
// every worker count, including cold totals and lost counts.
func TestRunReplicatedInstrumentedTables(t *testing.T) {
	prog := compile(t, replSrc, lower.Options{})
	for _, hashThreshold := range []int64{0, 2} { // default arrays, forced hash
		plans := replPlans(t, prog, hashThreshold)
		opts := vm.Options{Plans: plans, CollectPaths: true}
		seq, err := vm.RunReplicated(prog, opts, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Merged.Tables) == 0 {
			t.Fatal("no tables collected")
		}
		hashed := false
		for _, tab := range seq.Merged.Tables {
			hashed = hashed || tab.Kind == profile.HashTable
		}
		if hashThreshold > 0 && !hashed {
			t.Fatal("forced hash threshold produced no hash table")
		}
		want := seq.Merged.Fingerprint()
		for _, par := range []int{2, 4} {
			rr, err := vm.RunReplicated(prog, opts, 5, par)
			if err != nil {
				t.Fatal(err)
			}
			if fp := rr.Merged.Fingerprint(); fp != want {
				t.Errorf("hashThreshold=%d par=%d: fingerprint %#x != sequential %#x",
					hashThreshold, par, fp, want)
			}
			if rr.InstrCost != seq.InstrCost {
				t.Errorf("hashThreshold=%d par=%d: instr cost %d vs %d",
					hashThreshold, par, rr.InstrCost, seq.InstrCost)
			}
			for fn, tab := range seq.Merged.Tables {
				got := rr.Merged.Tables[fn]
				if got.ColdTotal() != tab.ColdTotal() || got.Lost != tab.Lost {
					t.Errorf("%s: cold/lost %d/%d vs sequential %d/%d",
						fn, got.ColdTotal(), got.Lost, tab.ColdTotal(), tab.Lost)
				}
			}
		}
	}
}

// TestRunReplicatedPerWorkerHooks routes each worker's path stream to
// a private hook via PathHookFor and checks the fan-in accounts for
// every completed path.
func TestRunReplicatedPerWorkerHooks(t *testing.T) {
	prog := compile(t, replSrc, lower.Options{})
	const n, par = 6, 3
	counts := make([]int64, par)
	opts := vm.Options{
		CollectPaths: true,
		PathHookFor: func(worker int) func(fn string, p cfg.Path) {
			return func(fn string, p cfg.Path) { counts[worker]++ }
		},
	}
	rr, err := vm.RunReplicated(prog, opts, n, par)
	if err != nil {
		t.Fatal(err)
	}
	var total, merged int64
	for _, c := range counts {
		total += c
	}
	for _, pp := range rr.Merged.Paths {
		merged += pp.Total()
	}
	if total != merged || total == 0 {
		t.Errorf("hooks saw %d paths, merged profile has %d", total, merged)
	}
	for w, c := range counts {
		if c == 0 {
			t.Errorf("worker %d hook never fired", w)
		}
	}
}

// TestRunReplicatedScaling is the throughput smoke: with 4+ CPUs, 4
// workers must beat sequential clearly (the acceptance bar is 3x on a
// dedicated 4-core box; 1.5x here keeps shared CI out of flake range).
func TestRunReplicatedScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("needs 4+ CPUs, have %d", runtime.NumCPU())
	}
	prog := compile(t, replSrc, lower.Options{})
	opts := vm.Options{CollectEdges: true, CollectPaths: true}
	const n = 32
	measure := func(par int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			rr, err := vm.RunReplicated(prog, opts, n, par)
			if err != nil {
				t.Fatal(err)
			}
			if rr.Elapsed < best {
				best = rr.Elapsed
			}
		}
		return best
	}
	seq, par4 := measure(1), measure(4)
	speedup := float64(seq) / float64(par4)
	t.Logf("replicated scaling: seq %v, 4 workers %v, speedup %.2fx", seq, par4, speedup)
	if speedup < 1.5 {
		t.Errorf("4-worker speedup %.2fx below 1.5x floor", speedup)
	}
}

func BenchmarkRunReplicated(b *testing.B) {
	prog, err := lower.Compile(replSrc, lower.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opts := vm.Options{CollectEdges: true, CollectPaths: true}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vm.RunReplicated(prog, opts, 8, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
