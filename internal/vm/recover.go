package vm

import (
	"fmt"

	"pathprof/internal/instr"
	"pathprof/internal/profile"
)

// RecoverEdges completes a min-cost-placement run: routines planned
// under PlaceMinCost collected only their chord probes, and this pass
// rederives every remaining edge count (and the call count) from flow
// conservation. The returned snapshot holds fresh, full edge profiles
// for recovered routines — sharing paths, tables, and any untouched
// edge profiles with snap — and fingerprints identically to a
// fully-instrumented spanning run of the same program.
//
// Snapshots from spanning runs pass through unchanged, so callers can
// apply it unconditionally after every instrumented run.
func RecoverEdges(snap *profile.Snapshot, plans map[string]*instr.Plan) (*profile.Snapshot, error) {
	if snap == nil || len(snap.Edges) == 0 {
		return snap, nil
	}
	out := &profile.Snapshot{
		Edges:  make(map[string]*profile.EdgeProfile, len(snap.Edges)),
		Paths:  snap.Paths,
		Tables: snap.Tables,
	}
	for name, ep := range snap.Edges {
		if p := plans[name]; p != nil && p.Probes != nil {
			full, err := p.Probes.RecoverFrom(ep)
			if err != nil {
				return nil, fmt.Errorf("vm: %s: edge recovery failed: %w", name, err)
			}
			out.Edges[name] = full
		} else {
			out.Edges[name] = ep
		}
	}
	return out, nil
}
