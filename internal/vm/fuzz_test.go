package vm_test

import (
	"errors"
	"testing"

	"pathprof/internal/instr"
	"pathprof/internal/ir"
	"pathprof/internal/telemetry"
	"pathprof/internal/vm"
)

// The differential fuzzer: random structured (hence reducible) IR
// programs run on both backends under fuzzed option mixes, and every
// observable — return value, step count, modeled costs, dynamic call
// count, profile fingerprint, budget-exhaustion behavior — must be
// bit-identical. This is the contract the compiled backend lives by;
// the workload suite (TestBackendsAgree) checks it on realistic
// programs, the fuzzer checks it on adversarial ones.

const (
	fuzzRegs = 8 // r0-r4 scratch, r5 unused, r6 cond/one, r7 loop counter
	condReg  = 6
	ctrReg   = 7
)

// irGen derives a deterministic program from fuzz bytes. Operand bytes
// wrap around the input; structural decisions (region counts, shapes)
// consume at most a bounded prefix, so every input terminates.
type irGen struct {
	data []byte
	pos  int
}

func (g *irGen) next() byte {
	if g.pos >= len(g.data) {
		g.pos = 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

// instr emits one random register/global/array instruction into b.
// Division and modulus are total in this IR (x/0 = x%0 = 0), so any
// operand mix is safe.
func (g *irGen) instr(b *ir.Block) {
	op := g.next()
	x := int(g.next())
	d, a, r2 := x%5, (x/5)%5, (x/25)%5
	var in ir.Instr
	switch op % 12 {
	case 0:
		in = ir.Instr{Op: ir.Const, Dst: d, Imm: int64(g.next()) - 100}
	case 1:
		in = ir.Instr{Op: ir.Add, Dst: d, A: a, B: r2}
	case 2:
		in = ir.Instr{Op: ir.Sub, Dst: d, A: a, B: r2}
	case 3:
		in = ir.Instr{Op: ir.Mul, Dst: d, A: a, B: r2}
	case 4:
		in = ir.Instr{Op: ir.Mod, Dst: d, A: a, B: r2}
	case 5:
		in = ir.Instr{Op: ir.BXor, Dst: d, A: a, B: r2}
	case 6:
		in = ir.Instr{Op: ir.Shl, Dst: d, A: a, B: r2}
	case 7:
		in = ir.Instr{Op: ir.LoadG, Dst: d, Sym: int(op) / 12 % 3}
	case 8:
		in = ir.Instr{Op: ir.StoreG, A: a, Sym: int(op) / 12 % 3}
	case 9:
		in = ir.Instr{Op: ir.LoadA, Dst: d, A: a, Sym: 0}
	case 10:
		in = ir.Instr{Op: ir.StoreA, A: a, B: r2, Sym: 0}
	case 11:
		in = ir.Instr{Op: ir.Not, Dst: d, A: a}
	}
	b.Instrs = append(b.Instrs, in)
}

func (g *irGen) straight(b *ir.Block) {
	n := 1 + int(g.next()%4)
	for i := 0; i < n; i++ {
		g.instr(b)
	}
}

// cmp emits a data-dependent comparison into condReg.
func (g *irGen) cmp(b *ir.Block) {
	ops := []ir.Opcode{ir.Lt, ir.Le, ir.Gt, ir.Eq, ir.Ne}
	x := int(g.next())
	b.Instrs = append(b.Instrs, ir.Instr{
		Op: ops[int(g.next())%len(ops)], Dst: condReg, A: x % 5, B: (x / 5) % 5,
	})
}

// ifThen appends cond/then/join blocks after cur and returns the join.
func (g *irGen) ifThen(f *ir.Func, cur *ir.Block) *ir.Block {
	g.cmp(cur)
	then := f.NewBlock("")
	join := f.NewBlock("")
	cur.Term = ir.Term{Kind: ir.Branch, Cond: condReg, To: then.Index, Else: join.Index}
	g.straight(then)
	then.Term = ir.Term{Kind: ir.Jump, To: join.Index}
	return join
}

// ifElse appends a full diamond and returns the join.
func (g *irGen) ifElse(f *ir.Func, cur *ir.Block) *ir.Block {
	g.cmp(cur)
	l := f.NewBlock("")
	r := f.NewBlock("")
	join := f.NewBlock("")
	cur.Term = ir.Term{Kind: ir.Branch, Cond: condReg, To: l.Index, Else: r.Index}
	g.straight(l)
	l.Term = ir.Term{Kind: ir.Jump, To: join.Index}
	g.straight(r)
	r.Term = ir.Term{Kind: ir.Jump, To: join.Index}
	return join
}

// whileLoop appends a counted while loop (1-5 iterations) whose body
// may itself branch, and returns the exit block. The counter register
// is dedicated, so termination is structural.
func (g *irGen) whileLoop(f *ir.Func, cur *ir.Block) *ir.Block {
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.Const, Dst: ctrReg, Imm: int64(g.next()%5) + 1})
	head := f.NewBlock("")
	body := f.NewBlock("")
	exit := f.NewBlock("")
	cur.Term = ir.Term{Kind: ir.Jump, To: head.Index}
	head.Term = ir.Term{Kind: ir.Branch, Cond: ctrReg, To: body.Index, Else: exit.Index}
	g.straight(body)
	tail := body
	if g.next()%2 == 0 {
		tail = g.ifThen(f, body)
	}
	tail.Instrs = append(tail.Instrs,
		ir.Instr{Op: ir.Const, Dst: condReg, Imm: 1},
		ir.Instr{Op: ir.Sub, Dst: ctrReg, A: ctrReg, B: condReg})
	tail.Term = ir.Term{Kind: ir.Jump, To: head.Index}
	return exit
}

// doWhile appends a bottom-tested loop whose back edge is a self edge,
// the degenerate loop shape the structured front end never produces.
func (g *irGen) doWhile(f *ir.Func, cur *ir.Block) *ir.Block {
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.Const, Dst: ctrReg, Imm: int64(g.next()%4) + 1})
	body := f.NewBlock("")
	exit := f.NewBlock("")
	cur.Term = ir.Term{Kind: ir.Jump, To: body.Index}
	g.straight(body)
	body.Instrs = append(body.Instrs,
		ir.Instr{Op: ir.Const, Dst: condReg, Imm: 1},
		ir.Instr{Op: ir.Sub, Dst: ctrReg, A: ctrReg, B: condReg})
	body.Term = ir.Term{Kind: ir.Branch, Cond: ctrReg, To: body.Index, Else: exit.Index}
	return exit
}

// fn generates one routine as a linear chain of structured regions.
func (g *irGen) fn(name string, nparams, regions int, callee int) *ir.Func {
	f := &ir.Func{Name: name, NParams: nparams, NRegs: fuzzRegs}
	cur := f.NewBlock("entry")
	for r := nparams; r < 5; r++ {
		cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.Const, Dst: r, Imm: int64(g.next()) - 128})
	}
	for i := 0; i < regions; i++ {
		shape := g.next() % 6
		if shape == 5 && callee < 0 {
			shape = 0
		}
		switch shape {
		case 0:
			g.straight(cur)
		case 1:
			cur = g.ifThen(f, cur)
		case 2:
			cur = g.ifElse(f, cur)
		case 3:
			cur = g.whileLoop(f, cur)
		case 4:
			cur = g.doWhile(f, cur)
		case 5:
			x := int(g.next())
			cur.Instrs = append(cur.Instrs, ir.Instr{
				Op: ir.Call, Dst: x % 5, Sym: callee,
				Args: []int{(x / 5) % 5, (x / 25) % 5},
			})
		}
	}
	cur.Term = ir.Term{Kind: ir.Ret, Ret: 0}
	f.Exit = cur.Index
	return f
}

// genProg builds a two-routine program (main plus a callable leaf)
// from fuzz bytes. Structured construction keeps every CFG reducible.
func genProg(data []byte) *ir.Program {
	g := &irGen{data: data}
	mainRegions := 2 + int(g.next()%5)
	leafRegions := 1 + int(g.next()%3)
	leaf := g.fn("leaf", 2, leafRegions, -1)
	main := g.fn("main", 0, mainRegions, 1)
	return &ir.Program{
		Funcs:       []*ir.Func{main, leaf},
		FuncIndex:   map[string]int{"main": 0, "leaf": 1},
		Globals:     []string{"g0", "g1", "g2"},
		GlobalInit:  []int64{1, -3, 7},
		GlobalIndex: map[string]int{"g0": 0, "g1": 1, "g2": 2},
		Arrays:      []ir.Array{{Name: "a0", Size: 16}},
		ArrayIndex:  map[string]int{"a0": 0},
	}
}

// runBoth executes prog under opts on each backend with its own
// telemetry registry (when tel) and requires identical success or
// identical budget exhaustion; results are nil on error.
func runBoth(t *testing.T, prog *ir.Program, opts vm.Options, tel bool) (*vm.Result, *vm.Result) {
	t.Helper()
	var res [2]*vm.Result
	var errs [2]error
	for i, be := range []vm.Backend{vm.BackendDense, vm.BackendCompiled} {
		o := opts
		o.Backend = be
		if tel {
			o.Metrics = telemetry.NewVMMetrics(telemetry.NewRegistry(1))
		}
		res[i], errs[i] = vm.Run(prog, o)
	}
	for i, err := range errs {
		if err != nil && !errors.Is(err, vm.ErrMaxSteps) {
			t.Fatalf("backend %d unexpected error: %v\n%s", i, err, prog.Dump())
		}
	}
	if (errs[0] == nil) != (errs[1] == nil) {
		t.Fatalf("budget divergence: dense err=%v, compiled err=%v\n%s", errs[0], errs[1], prog.Dump())
	}
	return res[0], res[1]
}

func requireIdentical(t *testing.T, label string, d, c *vm.Result, prog *ir.Program) {
	t.Helper()
	if d == nil || c == nil {
		return // identical budget exhaustion, nothing else to compare
	}
	switch {
	case d.Ret != c.Ret:
		t.Fatalf("%s: ret %d vs %d\n%s", label, d.Ret, c.Ret, prog.Dump())
	case d.Steps != c.Steps:
		t.Fatalf("%s: steps %d vs %d\n%s", label, d.Steps, c.Steps, prog.Dump())
	case d.BaseCost != c.BaseCost:
		t.Fatalf("%s: base cost %d vs %d\n%s", label, d.BaseCost, c.BaseCost, prog.Dump())
	case d.InstrCost != c.InstrCost:
		t.Fatalf("%s: instr cost %d vs %d\n%s", label, d.InstrCost, c.InstrCost, prog.Dump())
	case d.DynCalls != c.DynCalls:
		t.Fatalf("%s: dyn calls %d vs %d\n%s", label, d.DynCalls, c.DynCalls, prog.Dump())
	}
	if df, cf := d.Snapshot().Fingerprint(), c.Snapshot().Fingerprint(); df != cf {
		t.Fatalf("%s: fingerprint %#x vs %#x\n%s", label, df, cf, prog.Dump())
	}
}

// fuzzPlans builds per-routine instrumentation plans from a profiled
// run, mirroring the pipeline's profile-then-instrument stages.
// Routines the planner declines stay uninstrumented.
func fuzzPlans(t *testing.T, prog *ir.Program, profiled *vm.Result, tech instr.Techniques, pl instr.Placement) map[string]*instr.Plan {
	t.Helper()
	par := instr.DefaultParams()
	par.Placement = pl
	plans := map[string]*instr.Plan{}
	for _, f := range prog.Funcs {
		g, err := f.CFG()
		if err != nil {
			t.Fatalf("CFG %s: %v", f.Name, err)
		}
		profiled.Edges[f.Name].ApplyTo(g)
		p, err := instr.Build(g, tech, par, 0)
		if err != nil {
			continue
		}
		plans[f.Name] = p
	}
	return plans
}

func FuzzCompiledVsInterp(f *testing.F) {
	f.Add([]byte{3})
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{7, 200, 13, 13, 13, 90, 4, 61})
	f.Add([]byte{255, 254, 3, 3, 3, 3, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte{17, 5, 5, 99, 42, 42, 42, 0, 0, 0, 201, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		prog := genProg(data)
		if err := prog.Validate(); err != nil {
			t.Fatalf("generator produced invalid program: %v\n%s", err, prog.Dump())
		}
		flags := data[0]

		// Exact profiling: edge + path collection, optionally with the
		// edge-instrument cost model and live telemetry cells.
		base := vm.Options{
			CollectEdges:   true,
			CollectPaths:   true,
			EdgeInstrument: flags&1 != 0,
		}
		d, c := runBoth(t, prog, base, flags&2 != 0)
		requireIdentical(t, "profiling", d, c, prog)
		if d == nil {
			return
		}

		// Instrumented rerun under a fuzzed technique; one flag bit flips
		// the edge-probe placement to min-cost cotree chords.
		tech := []func() instr.Techniques{instr.PP, instr.TPP, instr.PPP}[int(flags>>2)%3]()
		pl := instr.PlaceSpanning
		if flags&16 != 0 {
			pl = instr.PlaceMinCost
		}
		plans := fuzzPlans(t, prog, d, tech, pl)
		if len(plans) > 0 {
			iopts := vm.Options{Plans: plans, CollectPaths: true}
			di, ci := runBoth(t, prog, iopts, flags&2 != 0)
			requireIdentical(t, "instrumented", di, ci, prog)

			// Min-cost differential: sparse chord acquisition plus
			// Kirchhoff recovery must reproduce the fully instrumented
			// spanning run's profiles bit for bit, on both backends.
			if pl == instr.PlaceMinCost && di != nil {
				eopts := vm.Options{Plans: plans, CollectPaths: true, CollectEdges: true, EdgeInstrument: true}
				de, ce := runBoth(t, prog, eopts, false)
				requireIdentical(t, "mincost-instrumented", de, ce, prog)
				if de != nil {
					rec, err := vm.RecoverEdges(de.Snapshot(), plans)
					if err != nil {
						t.Fatalf("mincost recovery: %v\n%s", err, prog.Dump())
					}
					span := fuzzPlans(t, prog, d, tech, instr.PlaceSpanning)
					fopts := vm.Options{Plans: span, CollectPaths: true, CollectEdges: true, EdgeInstrument: true}
					df, _ := runBoth(t, prog, fopts, false)
					if df != nil && rec.Fingerprint() != df.Snapshot().Fingerprint() {
						t.Fatalf("recovered mincost snapshot %#x diverges from fully instrumented %#x\n%s",
							rec.Fingerprint(), df.Snapshot().Fingerprint(), prog.Dump())
					}
				}
			}
		}

		// Budget saturation: a small step budget must exhaust (or not)
		// identically, including exactly-at-the-boundary cases.
		sat := base
		sat.MaxSteps = 1 + int64(data[len(data)-1]%128)
		ds, cs := runBoth(t, prog, sat, false)
		requireIdentical(t, "saturated", ds, cs, prog)
	})
}

// TestCompiledReplicatedWorkers sweeps sharded replication across
// worker counts on generated programs: every (backend, workers) cell
// must merge to one fingerprint.
func TestCompiledReplicatedWorkers(t *testing.T) {
	seeds := [][]byte{
		{3, 141, 59, 26, 53, 58, 97, 93},
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
		{255, 17, 4, 4, 4, 80, 200, 33},
	}
	for si, data := range seeds {
		prog := genProg(data)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d invalid: %v", si, err)
		}
		opts := vm.Options{CollectEdges: true, CollectPaths: true}
		var want uint64
		haveWant := false
		for _, be := range []vm.Backend{vm.BackendDense, vm.BackendCompiled} {
			opts.Backend = be
			for _, par := range []int{1, 2, 4, 8} {
				rr, err := vm.RunReplicated(prog, opts, 16, par)
				if err != nil {
					t.Fatalf("seed %d %s w=%d: %v", si, be, par, err)
				}
				fp := rr.Merged.Fingerprint()
				if !haveWant {
					want, haveWant = fp, true
				} else if fp != want {
					t.Errorf("seed %d %s w=%d: fingerprint %#x, want %#x", si, be, par, fp, want)
				}
			}
		}
	}
}
