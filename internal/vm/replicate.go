// Replicated execution: run n replicas of a workload across a bounded
// worker pool, each worker feeding a private profile shard, and merge
// the shards into one deterministic snapshot. This is the serving
// shape of the profiling runtime — many concurrent requests of the
// same program, counters sharded per core, aggregation off the hot
// path — scaled down to the repository's deterministic VM.
package vm

import (
	"fmt"
	"sync"
	"time"

	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/profile"
	"pathprof/internal/telemetry"
	"pathprof/internal/vm/compile"
)

// ProfileSink supplies a run's profile containers so repeated runs
// accumulate into shared state instead of fresh per-run profiles.
// *profile.Shard implements it; see Options.Sink.
type ProfileSink interface {
	EdgeProfile(fn string) *profile.EdgeProfile
	PathProfile(fn string) *profile.PathProfile
	Table(fn string, kind profile.TableKind, n, size int64) *profile.Table
}

// FaultContext describes one replica attempt to a GuardConfig
// FaultHook.
type FaultContext struct {
	Worker  int // shard index
	Replica int // global replica index
	Attempt int // 0 on the first try, counting retries
	// Sink is the worker's shard. Overflow injection preloads its
	// counters here; any mutation must be deterministic in Replica so
	// merged snapshots stay reproducible across worker counts.
	Sink ProfileSink
}

// GuardConfig configures guarded replication: how hard RunReplicated
// tries to keep a run alive when replicas fail, and the hook through
// which fault injection drives those failures.
type GuardConfig struct {
	// ReplicaRetries bounds retries of a replica whose pre-run hook
	// failed cleanly (the shard untouched). 0 means no retries.
	ReplicaRetries int
	// ReplicaDeadline bounds each replica's wall clock, checked after
	// every attempt; 0 disables the check. A replica that finishes past
	// its deadline taints the shard: its counts are already recorded,
	// so the whole shard is quarantined rather than unpicked.
	ReplicaDeadline time.Duration
	// FaultHook, if set, runs before every replica attempt. A returned
	// error (or a panic) is a clean pre-run fault: the shard has not
	// been written, so the replica is retried up to ReplicaRetries. A
	// nil-returning hook may still inject pressure by mutating
	// ctx.Sink (counter-overflow preloading).
	FaultHook func(ctx FaultContext) error
}

// ShardFault records one quarantined shard in a guarded run.
type ShardFault struct {
	Worker   int  // shard index
	Replica  int  // replica the terminal failure surfaced on
	Attempts int  // attempts made for that replica
	Tainted  bool // failure during/after Run: partial counts were possible
	Lost     int  // replicas excluded from the merge with this shard
	Err      error
}

func (f ShardFault) String() string {
	state := "clean"
	if f.Tainted {
		state = "tainted"
	}
	return fmt.Sprintf("shard %d: %s quarantine at replica %d after %d attempt(s), %d replica(s) lost: %v",
		f.Worker, state, f.Replica, f.Attempts, f.Lost, f.Err)
}

// ReplicatedResult aggregates a RunReplicated execution: summed costs
// and step counts across all replicas, plus the merged profile
// snapshot.
type ReplicatedResult struct {
	Replicas int
	Workers  int
	Ret      int64 // every replica's (identical) return value

	BaseCost  int64 // summed over replicas
	InstrCost int64
	Steps     int64
	DynCalls  int64

	// Merged is the deterministic fan-in of every worker's shard:
	// bit-identical to a sequential (Workers=1) run at any worker
	// count.
	Merged *profile.Snapshot
	// DAGs are the per-routine DAGs of one replica (all replicas build
	// identical DAGs), for interpreting the merged paths.
	DAGs map[string]*cfg.DAG

	// Faults lists quarantined shards, in shard order (guarded mode
	// only; empty on a clean run). Merged excludes their counts.
	Faults []ShardFault
	// LostReplicas is the number of replicas whose flow is missing
	// from Merged because their shard was quarantined.
	LostReplicas int

	// CompileStats holds per-routine threaded-code compile stats when
	// the run used BackendCompiled (nil under dense). The compilation
	// happened once, before the workers started.
	CompileStats []compile.Stat

	Elapsed time.Duration // wall clock of the whole replicated run
}

// Survivors returns the number of replicas whose counts made it into
// Merged.
func (r *ReplicatedResult) Survivors() int { return r.Replicas - r.LostReplicas }

// RunsPerSec returns replica throughput over the measured wall clock.
func (r *ReplicatedResult) RunsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Replicas) / r.Elapsed.Seconds()
}

// RunReplicated executes n replicas of the program under opts across
// par workers. Replicas are block-partitioned over workers in index
// order and each worker records into its own profile.Shard with the
// single-threaded fast paths, so the hot loop never synchronizes; the
// shards merge afterwards in worker order, which makes the merged
// snapshot bit-identical to a sequential run regardless of par.
//
// The engine — plan lowering and validation, DAGs, successor tables,
// threaded-code compilation under BackendCompiled — is built ONCE and
// shared by every worker; each worker binds it to its own shard and
// reuses that binding (machine or compiled executor, pooled frames)
// across all of its replicas.
//
// opts.Sink and opts.PathHook are overridden per worker (use
// opts.PathHookFor for per-worker hooks); opts.Output, if set, must be
// safe for concurrent writes.
func RunReplicated(prog *ir.Program, opts Options, n, par int) (*ReplicatedResult, error) {
	e, err := NewEngine(prog, opts)
	if err != nil {
		return nil, err
	}
	return e.RunReplicated(n, par)
}

// RunReplicated executes n replicas across par workers against the
// prepared engine; see the package-level RunReplicated.
func (e *Engine) RunReplicated(n, par int) (*ReplicatedResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vm: RunReplicated needs at least 1 replica, got %d", n)
	}
	if par < 1 {
		par = 1
	}
	if par > n {
		par = n
	}
	opts := &e.opts
	col := profile.NewCollector(par)
	type workerOut struct {
		base, instr, steps, calls int64
		ret                       int64
		ran                       bool
		dags                      map[string]*cfg.DAG
		err                       error
		fault                     *ShardFault
	}
	outs := make([]workerOut, par)
	guard := opts.Guard
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		lo, hi := w*n/par, (w+1)*n/par
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			o := &outs[w]
			shard := col.Shard(w)
			hook := opts.PathHook
			if opts.PathHookFor != nil {
				hook = opts.PathHookFor(w)
			}
			b, err := e.bind(shard, w, hook)
			if err != nil {
				o.err = err
				return
			}
			for i := lo; i < hi; i++ {
				var res *Result
				if guard == nil {
					res, err = b.run(opts.Args)
					if err != nil {
						o.err = fmt.Errorf("replica %d: %w", i, err)
						return
					}
				} else {
					var fault *ShardFault
					res, fault = b.runGuarded(guard, shard, w, i)
					if fault != nil {
						// Quarantine: the shard's counts (this replica's
						// and its predecessors') leave the merge, so the
						// whole block is lost flow.
						fault.Lost = hi - lo
						o.fault = fault
						return
					}
				}
				if o.ran && res.Ret != o.ret {
					o.err = fmt.Errorf("replica %d: nondeterministic result %d vs %d", i, res.Ret, o.ret)
					return
				}
				o.ret, o.ran = res.Ret, true
				o.base += res.BaseCost
				o.instr += res.InstrCost
				o.steps += res.Steps
				o.calls += res.DynCalls
				if o.dags == nil {
					o.dags = res.DAGs
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	rr := &ReplicatedResult{Replicas: n, Workers: par, CompileStats: e.CompileStats()}
	include := make([]bool, par)
	for w := range outs {
		o := &outs[w]
		if o.err != nil {
			return nil, fmt.Errorf("vm: worker %d: %w", w, o.err)
		}
		if o.fault != nil {
			rr.Faults = append(rr.Faults, *o.fault)
			rr.LostReplicas += o.fault.Lost
			// The quarantine event carries only fields deterministic in
			// (worker, replica) — never o.fault.Err, whose text can embed
			// wall-clock durations.
			if opts.Trace != nil {
				state := "clean"
				if o.fault.Tainted {
					state = "tainted"
				}
				opts.Trace.Emit(telemetry.Event{
					Unit:    opts.TraceUnit,
					Routine: fmt.Sprintf("shard-%d", w),
					Kind:    telemetry.EvQuarantine,
					Flow:    int64(o.fault.Lost),
					Detail: fmt.Sprintf("%s quarantine at replica %d after %d attempt(s): %d replica(s) left the merge",
						state, o.fault.Replica, o.fault.Attempts, o.fault.Lost),
				})
			}
			continue
		}
		include[w] = true
		if !o.ran {
			continue
		}
		if rr.DAGs == nil {
			rr.Ret = o.ret
			rr.DAGs = o.dags
		} else if o.ret != rr.Ret {
			return nil, fmt.Errorf("vm: worker %d: nondeterministic result %d vs %d", w, o.ret, rr.Ret)
		}
		rr.BaseCost += o.base
		rr.InstrCost += o.instr
		rr.Steps += o.steps
		rr.DynCalls += o.calls
	}
	if guard != nil && rr.LostReplicas >= n {
		return nil, fmt.Errorf("vm: all %d shards quarantined; first fault: %v", par, rr.Faults[0])
	}
	// MergeShards with every shard included is Merge; the guarded path
	// drops quarantined shards, which is exactly a collector that never
	// held them.
	rr.Merged = col.MergeShards(include)
	rr.Elapsed = time.Since(start)
	return rr, nil
}

// runGuarded executes one replica under guard: the pre-run hook and
// the run itself are panic-isolated, clean pre-run faults retry up to
// the budget, and any failure or deadline overrun from the run itself
// returns a tainted ShardFault (the shard may hold partial counts, so
// the caller must quarantine it).
func (b *binding) runGuarded(guard *GuardConfig, sink ProfileSink, w, i int) (*Result, *ShardFault) {
	replicaStart := time.Now()
	overDeadline := func() bool {
		return guard.ReplicaDeadline > 0 && time.Since(replicaStart) > guard.ReplicaDeadline
	}
	for attempt := 0; ; attempt++ {
		herr := callFaultHook(guard, FaultContext{Worker: w, Replica: i, Attempt: attempt, Sink: sink})
		if herr == nil && overDeadline() {
			herr = fmt.Errorf("vm: deadline %s exceeded before run", guard.ReplicaDeadline)
		}
		if herr != nil {
			if attempt < guard.ReplicaRetries && !overDeadline() {
				continue
			}
			return nil, &ShardFault{
				Worker: w, Replica: i, Attempts: attempt + 1,
				Err: fmt.Errorf("replica %d: %w", i, herr),
			}
		}
		res, rerr := b.runRecovered()
		if rerr == nil && overDeadline() {
			rerr = fmt.Errorf("vm: run finished %s past its %s deadline",
				time.Since(replicaStart)-guard.ReplicaDeadline, guard.ReplicaDeadline)
		}
		if rerr != nil {
			return nil, &ShardFault{
				Worker: w, Replica: i, Attempts: attempt + 1, Tainted: true,
				Err: fmt.Errorf("replica %d: %w", i, rerr),
			}
		}
		return res, nil
	}
}

// callFaultHook runs the guard's hook, converting a panic into an
// error so injected panics are indistinguishable from returned faults.
func callFaultHook(guard *GuardConfig, ctx FaultContext) (err error) {
	if guard.FaultHook == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("vm: fault hook panicked: %v", r)
		}
	}()
	return guard.FaultHook(ctx)
}

// runRecovered is a bound replica run with panic isolation: a
// panicking replica reports an error instead of tearing down the whole
// replicated run.
func (b *binding) runRecovered() (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("vm: replica panicked: %v", r)
		}
	}()
	return b.run(b.eng.opts.Args)
}
