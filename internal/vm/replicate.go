// Replicated execution: run n replicas of a workload across a bounded
// worker pool, each worker feeding a private profile shard, and merge
// the shards into one deterministic snapshot. This is the serving
// shape of the profiling runtime — many concurrent requests of the
// same program, counters sharded per core, aggregation off the hot
// path — scaled down to the repository's deterministic VM.
package vm

import (
	"fmt"
	"sync"
	"time"

	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/profile"
)

// ProfileSink supplies a run's profile containers so repeated runs
// accumulate into shared state instead of fresh per-run profiles.
// *profile.Shard implements it; see Options.Sink.
type ProfileSink interface {
	EdgeProfile(fn string) *profile.EdgeProfile
	PathProfile(fn string) *profile.PathProfile
	Table(fn string, kind profile.TableKind, n, size int64) *profile.Table
}

// ReplicatedResult aggregates a RunReplicated execution: summed costs
// and step counts across all replicas, plus the merged profile
// snapshot.
type ReplicatedResult struct {
	Replicas int
	Workers  int
	Ret      int64 // every replica's (identical) return value

	BaseCost  int64 // summed over replicas
	InstrCost int64
	Steps     int64
	DynCalls  int64

	// Merged is the deterministic fan-in of every worker's shard:
	// bit-identical to a sequential (Workers=1) run at any worker
	// count.
	Merged *profile.Snapshot
	// DAGs are the per-routine DAGs of one replica (all replicas build
	// identical DAGs), for interpreting the merged paths.
	DAGs map[string]*cfg.DAG

	Elapsed time.Duration // wall clock of the whole replicated run
}

// RunsPerSec returns replica throughput over the measured wall clock.
func (r *ReplicatedResult) RunsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Replicas) / r.Elapsed.Seconds()
}

// RunReplicated executes n replicas of the program under opts across
// par workers. Replicas are block-partitioned over workers in index
// order and each worker records into its own profile.Shard with the
// single-threaded fast paths, so the hot loop never synchronizes; the
// shards merge afterwards in worker order, which makes the merged
// snapshot bit-identical to a sequential run regardless of par.
//
// opts.Sink and opts.PathHook are overridden per worker (use
// opts.PathHookFor for per-worker hooks); opts.Output, if set, must be
// safe for concurrent writes.
func RunReplicated(prog *ir.Program, opts Options, n, par int) (*ReplicatedResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vm: RunReplicated needs at least 1 replica, got %d", n)
	}
	if par < 1 {
		par = 1
	}
	if par > n {
		par = n
	}
	col := profile.NewCollector(par)
	type workerOut struct {
		base, instr, steps, calls int64
		ret                       int64
		ran                       bool
		dags                      map[string]*cfg.DAG
		err                       error
	}
	outs := make([]workerOut, par)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		lo, hi := w*n/par, (w+1)*n/par
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			o := &outs[w]
			wopts := opts
			wopts.Sink = col.Shard(w)
			if opts.PathHookFor != nil {
				wopts.PathHook = opts.PathHookFor(w)
			}
			for i := lo; i < hi; i++ {
				res, err := Run(prog, wopts)
				if err != nil {
					o.err = fmt.Errorf("replica %d: %w", i, err)
					return
				}
				if o.ran && res.Ret != o.ret {
					o.err = fmt.Errorf("replica %d: nondeterministic result %d vs %d", i, res.Ret, o.ret)
					return
				}
				o.ret, o.ran = res.Ret, true
				o.base += res.BaseCost
				o.instr += res.InstrCost
				o.steps += res.Steps
				o.calls += res.DynCalls
				if o.dags == nil {
					o.dags = res.DAGs
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	rr := &ReplicatedResult{Replicas: n, Workers: par}
	for w := range outs {
		o := &outs[w]
		if o.err != nil {
			return nil, fmt.Errorf("vm: worker %d: %w", w, o.err)
		}
		if !o.ran {
			continue
		}
		if rr.DAGs == nil {
			rr.Ret = o.ret
			rr.DAGs = o.dags
		} else if o.ret != rr.Ret {
			return nil, fmt.Errorf("vm: worker %d: nondeterministic result %d vs %d", w, o.ret, rr.Ret)
		}
		rr.BaseCost += o.base
		rr.InstrCost += o.instr
		rr.Steps += o.steps
		rr.DynCalls += o.calls
	}
	rr.Merged = col.Merge()
	rr.Elapsed = time.Since(start)
	return rr, nil
}
