package vm

// The engine is the once-per-plan half of the VM, split out so
// replicated runs stop paying it per replica: plans lower to the
// planir artifact and validate once, DAGs and dense successor tables
// build once, and (under BackendCompiled) every routine compiles to
// threaded code once. Workers then bind the immutable engine to their
// private profile shard — container lookup, canonical edge-slot
// registration, telemetry cells — and run replicas against the shared
// tables with no per-replica setup beyond a state reset.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pathprof/internal/cfg"
	"pathprof/internal/instr"
	"pathprof/internal/ir"
	"pathprof/internal/planir"
	"pathprof/internal/profile"
	"pathprof/internal/telemetry"
	"pathprof/internal/vm/compile"
)

// Backend selects the execution engine.
type Backend int

const (
	// BackendDense is the dense-dispatch interpreter, the default.
	BackendDense Backend = iota
	// BackendCompiled specializes each routine into chained per-block
	// closures (internal/vm/compile): successor choice, event-value
	// arithmetic, and instrumentation ops fuse into one straight-line
	// call per transition.
	BackendCompiled
)

func (b Backend) String() string {
	switch b {
	case BackendDense:
		return "dense"
	case BackendCompiled:
		return "compiled"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseBackend parses a backend name; the empty string means dense.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "dense":
		return BackendDense, nil
	case "compiled":
		return BackendCompiled, nil
	}
	return 0, fmt.Errorf("vm: unknown backend %q (want dense or compiled)", s)
}

// routineRT is one routine's immutable engine state: the lowered
// planir artifact, the path-tracking DAG, and the dense successor
// template with canonical edge-slot numbering.
type routineRT struct {
	fn *ir.Func
	d  *cfg.DAG
	pr *planir.Routine

	blocks []blockRT
	// slotPairs lists the (from, to) block pairs in canonical slot
	// order: pair i registers as slot i on every worker's shard, which
	// is what keeps merged edge profiles bit-identical across worker
	// counts.
	slotPairs [][2]int32

	hash         bool
	poisonCheck  bool
	instrumented bool
	tableKind    profile.TableKind
	tableN       int64
	tableSize    int64
}

// Engine is the sharable, immutable artifact of plan validation and
// backend setup. Build it once with NewEngine; Run and RunReplicated
// construct a throwaway one internally, so only callers that reuse a
// program across many runs need to hold one.
type Engine struct {
	prog     *ir.Program
	opts     Options
	entryIdx int
	routines []*routineRT
	plan     *planir.Program
	compiled *compile.Program
	// validateUs records per-routine translation-validation wall time
	// (µs), populated when the compiled backend builds with ValidateOn.
	validateUs map[string]int64
}

// NewEngine prepares prog for execution under opts: option defaulting,
// plan lowering and validation, DAG and successor-table construction,
// and — under BackendCompiled — threaded-code compilation.
func NewEngine(prog *ir.Program, opts Options) (*Engine, error) {
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	if !opts.UseZeroCosts && opts.Costs == (CostModel{}) {
		opts.Costs = DefaultCosts()
	}
	entryIdx, ok := prog.FuncIndex[opts.Entry]
	if !ok {
		return nil, fmt.Errorf("vm: no function %q", opts.Entry)
	}
	entry := prog.Funcs[entryIdx]
	if len(opts.Args) != entry.NParams {
		return nil, fmt.Errorf("vm: %s expects %d args, got %d", entry.Name, entry.NParams, len(opts.Args))
	}

	e := &Engine{prog: prog, opts: opts, entryIdx: entryIdx}
	e.routines = make([]*routineRT, len(prog.Funcs))
	var lowered []*planir.Routine
	for i, f := range prog.Funcs {
		rt, err := e.prepare(f)
		if err != nil {
			return nil, err
		}
		e.routines[i] = rt
		if rt.pr != nil {
			lowered = append(lowered, rt.pr)
		}
	}
	if len(lowered) > 0 {
		sort.Slice(lowered, func(i, j int) bool { return lowered[i].Name < lowered[j].Name })
		e.plan = &planir.Program{Routines: lowered}
		if err := e.plan.Validate(); err != nil {
			return nil, fmt.Errorf("vm: instrumentation plan rejected: %w", err)
		}
	}
	if opts.Backend == BackendCompiled {
		cp, err := compile.New(prog, e.buildSpecs(), compile.Options{
			Costs:          compile.CostModel(opts.Costs),
			CollectEdges:   opts.CollectEdges,
			CollectPaths:   opts.CollectPaths,
			EdgeInstrument: opts.EdgeInstrument,
			Telemetry:      opts.Metrics != nil,
			PathHooks:      opts.PathHook != nil || opts.PathHookFor != nil,
		})
		if err != nil {
			return nil, err
		}
		e.compiled = cp
		if opts.Validate == ValidateOn {
			// Translation validation: prove each compiled routine
			// effect-equivalent to the spec it was lowered from before any
			// replica runs it. The trace detail stays deterministic (no
			// timing) so decision traces byte-compare across runs.
			e.validateUs = make(map[string]int64, len(prog.Funcs))
			for fi, f := range prog.Funcs {
				start := time.Now()
				err := compile.ValidateFunc(cp, fi)
				e.validateUs[f.Name] = time.Since(start).Microseconds()
				if err != nil {
					return nil, fmt.Errorf("vm: translation validation: %w", err)
				}
				opts.Trace.Emit(telemetry.Event{
					Unit:    opts.TraceUnit,
					Routine: f.Name,
					Kind:    telemetry.EvValidate,
					Detail:  "ok",
				})
			}
		}
	}
	return e, nil
}

// ValidateUs returns per-routine translation-validation wall time in
// microseconds (nil unless the compiled backend built with ValidateOn).
func (e *Engine) ValidateUs() map[string]int64 { return e.validateUs }

// PlanIR returns the validated planir artifact the engine executes
// (nil when no routine has a plan).
func (e *Engine) PlanIR() *planir.Program { return e.plan }

// Backend reports which backend the engine was built for.
func (e *Engine) Backend() Backend { return e.opts.Backend }

// CompileStats returns per-routine threaded-code compilation stats
// (nil under the dense backend).
func (e *Engine) CompileStats() []compile.Stat {
	if e.compiled == nil {
		return nil
	}
	return e.compiled.Stats
}

// prepare builds one routine's engine state. Instrumentation ops come
// from the planir transitions — the same artifact Validate checked —
// not from the raw plan maps.
func (e *Engine) prepare(f *ir.Func) (*routineRT, error) {
	rt := &routineRT{fn: f}
	var plan *instr.Plan
	if e.opts.Plans != nil {
		plan = e.opts.Plans[f.Name]
	}
	needDAG := e.opts.CollectPaths || (plan != nil && plan.Instrumented)
	if plan != nil {
		// Reuse the plan's DAG so edge IDs resolve correctly.
		rt.d = plan.D
		rt.pr = planir.FromPlan(plan)
		rt.hash = plan.Hash
		rt.poisonCheck = plan.PoisonCheck
		if plan.Instrumented {
			rt.instrumented = true
			rt.tableKind = profile.ArrayTable
			if plan.Hash {
				rt.tableKind = profile.HashTable
			}
			rt.tableN, rt.tableSize = plan.N, plan.TableSize
		}
	} else if needDAG {
		g, err := f.CFG()
		if err != nil {
			return nil, err
		}
		d, err := cfg.BuildDAG(g)
		if err != nil {
			return nil, err
		}
		rt.d = d
	}

	var (
		real       map[[2]int]*cfg.DAGEdge
		entryDummy map[int]*cfg.DAGEdge // by header block index
		exitDummy  map[int]*cfg.DAGEdge // by tail block index
		back       map[[2]int]bool
	)
	if rt.d != nil {
		real = map[[2]int]*cfg.DAGEdge{}
		entryDummy = map[int]*cfg.DAGEdge{}
		exitDummy = map[int]*cfg.DAGEdge{}
		back = map[[2]int]bool{}
		for _, de := range rt.d.Edges {
			switch de.Kind {
			case cfg.RealEdge:
				real[[2]int{de.Src.ID, de.Dst.ID}] = de
			case cfg.EntryDummy:
				entryDummy[de.Dst.ID] = de
			case cfg.ExitDummy:
				exitDummy[de.Src.ID] = de
			}
		}
		for _, ce := range rt.d.G.Edges {
			if ce.Back {
				back[[2]int{ce.Src.ID, ce.Dst.ID}] = true
			}
		}
	}
	var transOps map[[2]int32][]planir.Op
	if rt.pr != nil && rt.pr.Instrumented {
		transOps = map[[2]int32][]planir.Op{}
		for i := range rt.pr.Transitions {
			t := &rt.pr.Transitions[i]
			if len(t.Ops) > 0 {
				transOps[[2]int32{t.Src, t.Dst}] = t.Ops
			}
		}
	}

	// Min-cost placement restricts edge counting to the plan's chord
	// probes: only probed transitions carry a counter (slot + EdgeCount
	// cost, jump or branch alike); everything else is recovered from
	// flow conservation after the run (placement.Spec.RecoverFrom).
	// Probes stay nil under spanning placement — or when edge
	// instrumentation is off, so plain CollectEdges still gathers the
	// full ground-truth profile.
	var probed map[[2]int32]bool
	if plan != nil && plan.Placement == instr.PlaceMinCost && plan.Probes != nil && e.opts.EdgeInstrument {
		probed = make(map[[2]int32]bool, plan.Probes.NumProbes())
		for _, pr := range plan.Probes.Probes {
			probed[[2]int32{int32(pr.Src), int32(pr.Dst)}] = true
		}
	}

	mk := func(from, to int, isBranch bool) succRT {
		s := succRT{to: to, edgeSlot: -1}
		if to != from+1 {
			s.takenCost = e.opts.Costs.TakenPenalty
		}
		slotted := e.opts.CollectEdges
		if probed != nil {
			if probed[[2]int32{int32(from), int32(to)}] {
				s.instrCost = e.opts.Costs.EdgeCount
			} else {
				slotted = false
			}
		} else if e.opts.EdgeInstrument && isBranch {
			s.instrCost = e.opts.Costs.EdgeCount
		}
		if slotted {
			s.edgeSlot = int32(len(rt.slotPairs))
			rt.slotPairs = append(rt.slotPairs, [2]int32{int32(from), int32(to)})
		}
		if transOps != nil {
			s.ops = transOps[[2]int32{int32(from), int32(to)}]
		}
		if rt.d != nil {
			if back[[2]int{from, to}] {
				s.back = true
				s.exitDummy = exitDummy[from]
				s.entryDummy = entryDummy[to]
			} else {
				s.pathEdge = real[[2]int{from, to}]
			}
		}
		return s
	}
	rt.blocks = make([]blockRT, len(f.Blocks))
	for i, b := range f.Blocks {
		switch b.Term.Kind {
		case ir.Jump:
			rt.blocks[i].succ[0] = mk(i, b.Term.To, false)
		case ir.Branch:
			rt.blocks[i].succ[0] = mk(i, b.Term.To, true)
			rt.blocks[i].succ[1] = mk(i, b.Term.Else, true)
		}
	}
	return rt, nil
}

// buildSpecs converts the engine's successor templates into the
// compile backend's input.
func (e *Engine) buildSpecs() []compile.FuncSpec {
	specs := make([]compile.FuncSpec, len(e.routines))
	for i, rt := range e.routines {
		sp := &specs[i]
		sp.Hash, sp.PoisonCheck = rt.hash, rt.poisonCheck
		sp.Succs = make([][2]compile.SuccSpec, len(rt.blocks))
		for bi := range rt.blocks {
			isBranch := rt.fn.Blocks[bi].Term.Kind == ir.Branch
			for k := 0; k < 2; k++ {
				s := &rt.blocks[bi].succ[k]
				sp.Succs[bi][k] = compile.SuccSpec{
					To:         s.to,
					Branch:     isBranch,
					Back:       s.back,
					EdgeSlot:   s.edgeSlot,
					InstrCost:  s.instrCost,
					Ops:        s.ops,
					PathEdge:   s.pathEdge,
					ExitDummy:  s.exitDummy,
					EntryDummy: s.entryDummy,
				}
			}
		}
	}
	return specs
}

// binding is one worker's attachment of the engine to its profile
// containers: the part of a run that depends on the shard, built once
// per worker and reused across its replicas.
type binding struct {
	eng    *Engine
	m      *machine
	x      *compile.Exec
	edges  map[string]*profile.EdgeProfile
	paths  map[string]*profile.PathProfile
	tables map[string]*profile.Table
	dags   map[string]*cfg.DAG
}

// bind attaches the engine to one worker's sink (nil for fresh
// containers), telemetry cell, and path hook.
func (e *Engine) bind(sink ProfileSink, worker int, hook func(fn string, p cfg.Path)) (*binding, error) {
	b := &binding{
		eng:    e,
		edges:  map[string]*profile.EdgeProfile{},
		paths:  map[string]*profile.PathProfile{},
		tables: map[string]*profile.Table{},
		dags:   map[string]*cfg.DAG{},
	}
	tel := e.opts.Metrics.Cells(worker)
	nf := len(e.prog.Funcs)
	type bound struct {
		edges  *profile.EdgeProfile
		paths  *profile.PathProfile
		table  *profile.Table
		blocks []blockRT
	}
	bounds := make([]bound, nf)
	for i, rt := range e.routines {
		name := rt.fn.Name
		bd := &bounds[i]
		bd.blocks = rt.blocks
		if rt.instrumented {
			if sink != nil {
				bd.table = sink.Table(name, rt.tableKind, rt.tableN, rt.tableSize)
			} else {
				bd.table = profile.NewTable(rt.tableKind, rt.tableN, rt.tableSize)
			}
			b.tables[name] = bd.table
		}
		if e.opts.CollectEdges {
			if sink != nil {
				bd.edges = sink.EdgeProfile(name)
			} else {
				bd.edges = profile.NewEdgeProfile(name)
			}
			b.edges[name] = bd.edges
			// Register the canonical slot order on this shard. A fresh
			// container yields exactly the template numbering; a sink with
			// foreign pre-registered slots can't serve baked-in compiled
			// slots, and makes the dense backend fall back to a rebound
			// successor table.
			mismatch := false
			for si, p := range rt.slotPairs {
				if bd.edges.Slot(int(p[0]), int(p[1])) != si {
					mismatch = true
				}
			}
			if mismatch {
				if e.opts.Backend == BackendCompiled {
					return nil, fmt.Errorf("vm: %s: sink edge profile has foreign slot order; the compiled backend needs fresh shards", name)
				}
				bd.blocks = reslot(rt, bd.edges)
			}
		}
		if e.opts.CollectPaths {
			if sink != nil {
				bd.paths = sink.PathProfile(name)
			} else {
				bd.paths = profile.NewPathProfile(name)
			}
			b.paths[name] = bd.paths
		}
		if rt.d != nil {
			b.dags[name] = rt.d
		}
	}

	if e.compiled != nil {
		fts := make([]compile.FuncRun, nf)
		for i := range bounds {
			fts[i] = compile.FuncRun{Edges: bounds[i].edges, Paths: bounds[i].paths, Table: bounds[i].table}
		}
		x, err := compile.NewExec(e.compiled, compile.Config{
			Fts:      fts,
			Out:      e.opts.Output,
			Tel:      tel,
			PathHook: hook,
			MaxSteps: e.opts.MaxSteps,
		})
		if err != nil {
			return nil, err
		}
		b.x = x
		return b, nil
	}

	m := &machine{prog: e.prog, opts: &e.opts, entry: e.entryIdx, tel: tel, pathHook: hook}
	m.globals = make([]int64, len(e.prog.GlobalInit))
	m.arrays = make([][]int64, len(e.prog.Arrays))
	for i, a := range e.prog.Arrays {
		m.arrays[i] = make([]int64, a.Size)
	}
	m.rts = make([]*funcRT, nf)
	for i, rt := range e.routines {
		m.rts[i] = &funcRT{
			fn: rt.fn, d: rt.d,
			blocks: bounds[i].blocks,
			hash:   rt.hash, poisonCheck: rt.poisonCheck,
			table: bounds[i].table, edges: bounds[i].edges, paths: bounds[i].paths,
		}
	}
	b.m = m
	return b, nil
}

// reslot clones a routine's successor template with edge slots
// re-resolved against an already-populated edge profile.
func reslot(rt *routineRT, ep *profile.EdgeProfile) []blockRT {
	blocks := append([]blockRT(nil), rt.blocks...)
	for i := range blocks {
		for k := 0; k < 2; k++ {
			s := &blocks[i].succ[k]
			if s.edgeSlot >= 0 {
				s.edgeSlot = int32(ep.Slot(i, s.to))
			}
		}
	}
	return blocks
}

// run executes one replica on this binding's backend.
func (b *binding) run(args []int64) (*Result, error) {
	if b.x != nil {
		b.x.Reset()
		ret, err := b.x.Run(b.eng.entryIdx, args)
		if err != nil {
			if errors.Is(err, compile.ErrMaxSteps) {
				return nil, ErrMaxSteps
			}
			return nil, err
		}
		c := b.x.Counters()
		return &Result{
			Ret: ret, BaseCost: c.BaseCost, InstrCost: c.InstrCost,
			Steps: c.Steps, DynCalls: c.DynCalls,
			Edges: b.edges, Paths: b.paths, Tables: b.tables, DAGs: b.dags,
			ValidateUs: b.eng.validateUs,
		}, nil
	}
	return b.m.run(args, b)
}

// Run executes one run under the engine's options (opts.Args, Sink,
// MetricsWorker, PathHook), exactly as package-level Run would.
func (e *Engine) Run() (*Result, error) {
	b, err := e.bind(e.opts.Sink, e.opts.MetricsWorker, e.opts.PathHook)
	if err != nil {
		return nil, err
	}
	return b.run(e.opts.Args)
}
