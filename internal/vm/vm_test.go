package vm_test

import (
	"bytes"
	"strings"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/instr"
	"pathprof/internal/ir"
	"pathprof/internal/lower"
	"pathprof/internal/vm"
)

func mustCFG(t testing.TB, f *ir.Func) *cfg.Graph {
	t.Helper()
	g, err := f.CFG()
	if err != nil {
		t.Fatalf("CFG %s: %v", f.Name, err)
	}
	return g
}

func compile(t testing.TB, src string, opts lower.Options) *ir.Program {
	t.Helper()
	prog, err := lower.Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func run(t testing.TB, prog *ir.Program, opts vm.Options) *vm.Result {
	t.Helper()
	res, err := vm.Run(prog, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestFactorial(t *testing.T) {
	src := `
func fact(n) {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}
func main() { return fact(10); }`
	prog := compile(t, src, lower.Options{})
	res := run(t, prog, vm.Options{})
	if res.Ret != 3628800 {
		t.Errorf("fact(10) = %d, want 3628800", res.Ret)
	}
	if res.DynCalls != 10 {
		t.Errorf("dynamic calls = %d, want 10", res.DynCalls)
	}
}

func TestLoopsAndArrays(t *testing.T) {
	src := `
array a[16];
var total = 0;
func main() {
	for (var i = 0; i < 16; i = i + 1) { a[i] = i * i; }
	var s = 0;
	var i = 0;
	while (i < 16) {
		s = s + a[i];
		i = i + 1;
	}
	total = s;
	print(s);
	return s;
}`
	prog := compile(t, src, lower.Options{})
	var out bytes.Buffer
	res := run(t, prog, vm.Options{Output: &out})
	want := int64(0)
	for i := int64(0); i < 16; i++ {
		want += i * i
	}
	if res.Ret != want {
		t.Errorf("sum = %d, want %d", res.Ret, want)
	}
	if got := strings.TrimSpace(out.String()); got != "1240" {
		t.Errorf("printed %q, want 1240", got)
	}
}

func TestShortCircuitAndControl(t *testing.T) {
	src := `
var hits = 0;
func bump() { hits = hits + 1; return 1; }
func main() {
	var a = 0;
	if (a != 0 && bump() == 1) { return 100; }
	if (a == 0 || bump() == 1) { a = 5; }
	var s = 0;
	for (var i = 0; i < 10; i = i + 1) {
		if (i == 3) { continue; }
		if (i == 7) { break; }
		s = s + i;
	}
	// hits must still be 0: both bump() calls were short-circuited.
	return s * 10 + hits;
}`
	prog := compile(t, src, lower.Options{})
	res := run(t, prog, vm.Options{})
	// s = 0+1+2+4+5+6 = 18
	if res.Ret != 180 {
		t.Errorf("result = %d, want 180", res.Ret)
	}
}

func TestDivModByZeroDefined(t *testing.T) {
	src := `func main() { var z = 0; return 7 / z + 7 % z; }`
	prog := compile(t, src, lower.Options{})
	res := run(t, prog, vm.Options{})
	if res.Ret != 0 {
		t.Errorf("7/0 + 7%%0 = %d, want 0", res.Ret)
	}
}

func TestNegativeArrayIndexWraps(t *testing.T) {
	src := `
array a[8];
func main() { a[0-1] = 42; return a[7]; }`
	prog := compile(t, src, lower.Options{})
	res := run(t, prog, vm.Options{})
	if res.Ret != 42 {
		t.Errorf("a[-1] wrap = %d, want 42", res.Ret)
	}
}

const loopSrc = `
var acc = 0;
func work(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
	}
	return s;
}
func main() {
	for (var k = 0; k < 25; k = k + 1) { acc = acc + work(40); }
	return acc;
}`

func TestUnrollingPreservesSemantics(t *testing.T) {
	base := compile(t, loopSrc, lower.Options{})
	baseRes := run(t, base, vm.Options{CollectEdges: true})

	unrolled := compile(t, loopSrc, lower.Options{Unroll: map[string]int{"work#1": 4, "main#1": 2}})
	unRes := run(t, unrolled, vm.Options{CollectEdges: true})
	if baseRes.Ret != unRes.Ret {
		t.Fatalf("unrolling changed result: %d vs %d", baseRes.Ret, unRes.Ret)
	}

	// The unrolled inner loop executes roughly a quarter of the back
	// edges: find back edges from the edge profile applied to the CFG.
	backFreq := func(prog *ir.Program, res *vm.Result, fn string) int64 {
		g := mustCFG(t, prog.Func(fn))
		res.Edges[fn].ApplyTo(g)
		g.Analyze()
		var sum int64
		for _, e := range g.Edges {
			if e.Back {
				sum += e.Freq
			}
		}
		return sum
	}
	b := backFreq(base, baseRes, "work")
	u := backFreq(unrolled, unRes, "work")
	if u >= b/2 {
		t.Errorf("unrolled back edges = %d, base = %d; want about a quarter", u, b)
	}
	// Fewer jumps, slightly cheaper.
	if unRes.BaseCost >= baseRes.BaseCost {
		t.Errorf("unrolled cost %d >= base cost %d", unRes.BaseCost, baseRes.BaseCost)
	}
}

func TestPathProfileConsistency(t *testing.T) {
	prog := compile(t, loopSrc, lower.Options{})
	res := run(t, prog, vm.Options{CollectEdges: true, CollectPaths: true})
	for name, pp := range res.Paths {
		ep := res.Edges[name]
		g := mustCFG(t, prog.Func(name))
		ep.ApplyTo(g)
		g.Analyze()
		if err := g.CheckFlow(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Total path executions = calls + back edge executions.
		var backs int64
		for _, e := range g.Edges {
			if e.Back {
				backs += e.Freq
			}
		}
		if got := pp.Total(); got != ep.Calls+backs {
			t.Errorf("%s: %d paths, want calls %d + backs %d", name, got, ep.Calls, backs)
		}
		// Summing recorded paths over each real edge reproduces the
		// edge profile.
		edgeSum := map[[2]int]int64{}
		for _, pc := range pp.Paths() {
			for _, e := range pc.Path {
				if e.CFG != nil {
					edgeSum[[2]int{e.CFG.Src.ID, e.CFG.Dst.ID}] += pc.Count
				}
			}
		}
		for _, e := range g.Edges {
			if e.Back {
				continue
			}
			if got := edgeSum[[2]int{e.Src.ID, e.Dst.ID}]; got != e.Freq {
				t.Errorf("%s: edge %s path-sum %d, edge profile %d", name, e, got, e.Freq)
			}
		}
	}
}

func TestPPInstrumentationMatchesGroundTruth(t *testing.T) {
	prog := compile(t, loopSrc, lower.Options{})
	// Stage 1: collect the edge profile.
	stage1 := run(t, prog, vm.Options{CollectEdges: true, CollectPaths: true})

	// Stage 2: build PP plans from the profile and rerun instrumented.
	plans := map[string]*instr.Plan{}
	for _, f := range prog.Funcs {
		g := mustCFG(t, f)
		stage1.Edges[f.Name].ApplyTo(g)
		p, err := instr.Build(g, instr.PP(), instr.DefaultParams(), 0)
		if err != nil {
			t.Fatalf("plan %s: %v", f.Name, err)
		}
		plans[f.Name] = p
	}
	res := run(t, prog, vm.Options{Plans: plans, CollectPaths: true})
	if res.Ret != stage1.Ret {
		t.Fatalf("instrumentation changed the result: %d vs %d", res.Ret, stage1.Ret)
	}
	if res.InstrCost <= 0 {
		t.Fatal("PP instrumentation has no cost")
	}

	// PP measures every path exactly: table counts must match the
	// ground-truth path profile.
	for name, table := range res.Tables {
		p := plans[name]
		truth := res.Paths[name]
		var want int64
		measured := map[int64]int64{}
		for _, ic := range table.HotCounts() {
			measured[ic.Index] = ic.Count
		}
		for _, pc := range truth.Paths() {
			num, ok := p.Num.PathNumber(pc.Path)
			if !ok {
				t.Fatalf("%s: ground truth path %s not numbered", name, pc.Path)
			}
			if measured[num] != pc.Count {
				t.Errorf("%s: path %s (#%d) measured %d, want %d",
					name, pc.Path, num, measured[num], pc.Count)
			}
			want += pc.Count
			delete(measured, num)
		}
		for num, c := range measured {
			t.Errorf("%s: phantom count %d at number %d", name, c, num)
		}
		if table.Lost != 0 || table.ColdTotal() != 0 || table.Drops != 0 {
			t.Errorf("%s: lost=%d cold=%d drops=%d, want all 0", name, table.Lost, table.ColdTotal(), table.Drops)
		}
	}
}

func TestMaxStepsAborts(t *testing.T) {
	src := `func main() { var i = 0; while (i < 1000000) { i = i + 1; } return i; }`
	prog := compile(t, src, lower.Options{})
	if _, err := vm.Run(prog, vm.Options{MaxSteps: 100}); err == nil {
		t.Error("expected step budget error")
	}
}

func TestInfiniteLoopRejectedAtCompile(t *testing.T) {
	src := `func main() { while (1) { } return 0; }`
	if _, err := lower.Compile(src, lower.Options{}); err == nil {
		t.Error("expected error: function cannot return")
	}
}

func TestEdgeInstrumentCost(t *testing.T) {
	prog := compile(t, loopSrc, lower.Options{})
	plain := run(t, prog, vm.Options{})
	edged := run(t, prog, vm.Options{EdgeInstrument: true})
	if edged.InstrCost <= 0 {
		t.Error("edge instrumentation has no cost")
	}
	if edged.BaseCost != plain.BaseCost {
		t.Error("edge instrumentation changed base cost")
	}
}
