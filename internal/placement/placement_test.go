package placement_test

import (
	"math/rand"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/placement"
	"pathprof/internal/profile"
)

// loopGraph is the Figure 1 shape: entry -> h; h -> b1 | b2; both ->
// t; t -> h (back) | exit, with a hot back edge.
func loopGraph() *cfg.Graph {
	g := cfg.New("loop")
	entry := g.AddBlock("entry")
	h := g.AddBlock("h")
	b1 := g.AddBlock("b1")
	b2 := g.AddBlock("b2")
	tl := g.AddBlock("t")
	exit := g.AddBlock("exit")
	g.Entry, g.Exit = entry, exit
	set := func(a, b *cfg.Block, f int64) {
		cfgtest.Connect(g, a, b).Freq = f
	}
	set(entry, h, 100)
	set(h, b1, 700)
	set(h, b2, 300)
	set(b1, tl, 700)
	set(b2, tl, 300)
	set(tl, h, 900) // back edge
	set(tl, exit, 100)
	g.Calls = 100
	return g
}

func TestPlanProbeCount(t *testing.T) {
	g := loopGraph()
	s, err := placement.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	// E=7, V=6: exactly E-V+2 = 3 probes, strictly fewer than the 7
	// edges full instrumentation counts.
	if s.NumProbes() != 3 {
		t.Fatalf("probes = %d, want 3", s.NumProbes())
	}
	if err := s.CheckExact(g); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCostTreeAvoidsHotEdges(t *testing.T) {
	g := loopGraph()
	s, err := placement.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	// Three independent cycles, three chords; the cotree of a max-cost
	// tree is the min-weight chord set, here 700 (cheapest edge of the
	// all-hot cycle h-b1-t) + 300 (h-b2-t cycle) + 100 (the
	// entry..exit/virtual cycle) = 1100 of 3100 total flow. In
	// particular the hot back edge (900) must stay in the tree.
	if hits := s.DynamicProbeHits(g); hits != 1100 {
		t.Errorf("dynamic probe hits = %d, want the optimum 1100", hits)
	}
	for _, p := range s.Probes {
		e := g.FindEdge(g.Blocks[p.Src], g.Blocks[p.Dst])
		if e.Freq >= 900 {
			t.Errorf("hottest edge %s (freq %d) carries probe %d", e, e.Freq, p.Index)
		}
	}
}

func TestVirtualEdgeNeverProbed(t *testing.T) {
	// Straight line entry -> a -> exit plus the direct entry -> exit
	// bypass: the undirected CFG has a cycle through the virtual edge,
	// but the probe must land on a real edge, never on exit->entry.
	g := cfg.New("bypass")
	entry := g.AddBlock("entry")
	a := g.AddBlock("a")
	exit := g.AddBlock("exit")
	g.Entry, g.Exit = entry, exit
	cfgtest.Connect(g, entry, a).Freq = 70
	cfgtest.Connect(g, a, exit).Freq = 70
	cfgtest.Connect(g, entry, exit).Freq = 30
	g.Calls = 100
	s, err := placement.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumProbes() != 2 {
		t.Fatalf("probes = %d, want 2", s.NumProbes())
	}
	for _, p := range s.Probes {
		if p.Src == exit.ID && p.Dst == entry.ID {
			t.Fatalf("virtual edge probed: %+v", p)
		}
	}
	if err := s.CheckExact(g); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverFromSparseProfile(t *testing.T) {
	g := loopGraph()
	s, err := placement.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a sparse run: only probed transitions were bumped (plus
	// the per-call entry bump every collected run performs).
	sparse := profile.NewEdgeProfile(g.Name)
	sparse.Calls = g.Calls
	for _, p := range s.Probes {
		sparse.Add(p.Src, p.Dst, g.FindEdge(g.Blocks[p.Src], g.Blocks[p.Dst]).Freq)
	}
	full, err := s.RecoverFrom(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if full.Calls != g.Calls {
		t.Errorf("recovered calls %d, want %d", full.Calls, g.Calls)
	}
	for _, e := range g.Edges {
		if got := full.Get(e.Src.ID, e.Dst.ID); got != e.Freq {
			t.Errorf("edge %s recovered %d, want %d", e, got, e.Freq)
		}
	}
}

func TestRecoverRejectsInconsistentCounts(t *testing.T) {
	g := loopGraph()
	s, err := placement.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	sparse := profile.NewEdgeProfile(g.Name)
	sparse.Calls = g.Calls + 13 // measured calls disagree with flow
	for _, p := range s.Probes {
		sparse.Add(p.Src, p.Dst, g.FindEdge(g.Blocks[p.Src], g.Blocks[p.Dst]).Freq)
	}
	if _, err := s.RecoverFrom(sparse); err == nil {
		t.Fatal("inconsistent calls accepted")
	}
}

func TestRecoveryPropertyRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := cfgtest.Random(rng, 3+rng.Intn(20))
		cfgtest.Profile(g, rng, 1+rng.Intn(400), 300)
		s, err := placement.Plan(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if want := len(g.Edges) - len(g.Blocks) + 2; s.NumProbes() != want {
			t.Fatalf("seed %d: %d probes, want %d", seed, s.NumProbes(), want)
		}
		if err := s.CheckExact(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestZeroWeightPlanStillExact(t *testing.T) {
	// A static plan (no guide profile) places the same number of
	// probes; recovery is exact for any conserving assignment.
	g := loopGraph()
	for _, e := range g.Edges {
		e.Freq = 0
	}
	g.Calls = 0
	s, err := placement.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumProbes() != 3 {
		t.Fatalf("probes = %d, want 3", s.NumProbes())
	}
	// Re-apply the real frequencies and check recovery against them.
	real := loopGraph()
	for _, e := range real.Edges {
		g.FindEdge(g.Blocks[e.Src.ID], g.Blocks[e.Dst.ID]).Freq = e.Freq
	}
	g.Calls = real.Calls
	if err := s.CheckExact(g); err != nil {
		t.Fatal(err)
	}
}

func TestEntryIsExitMeasuresCalls(t *testing.T) {
	// When the entry block is also the exit, the virtual exit->entry
	// edge is a self-loop: it cannot join the spanning tree, Calls
	// cancels out of every flow balance, and the cycle space of the
	// real edges alone has dimension E - V + 1. The plan must mark
	// Calls as measured and place one fewer probe.
	g := cfg.New("single")
	b0 := g.AddBlock("entry")
	g.Entry, g.Exit = b0, b0
	g.Calls = 42
	s, err := placement.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if !s.MeasuredCalls {
		t.Fatal("entry==exit plan did not mark MeasuredCalls")
	}
	// E=0, V=1: zero probes, nothing to recover but Calls.
	if s.NumProbes() != 0 {
		t.Fatalf("probes = %d, want 0", s.NumProbes())
	}
	sparse := profile.NewEdgeProfile("single")
	sparse.Calls = 42
	ep, err := s.RecoverFrom(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Calls != 42 {
		t.Fatalf("recovered Calls = %d, want 42 (from the measured profile)", ep.Calls)
	}
	if err := s.CheckExact(g); err != nil {
		t.Fatal(err)
	}
}
