// Package placement computes minimum-cost probe placements for edge
// profiling (Knuth 1973; Ball-Larus 1994; minimum coverage
// instrumentation, arXiv 2208.13907): instead of counting every CFG
// edge, count only the cotree chords of a maximum-cost spanning tree
// over the undirected CFG plus a virtual exit->entry edge, and
// reconstruct every uninstrumented count — including the routine's
// call count, carried by the virtual edge — from Kirchhoff flow
// conservation at each block.
//
// The probe set is provably minimal: the counts of a strongly
// conserved flow have E - V + 2 degrees of freedom (the cycle-space
// dimension of the CFG with the virtual edge), so no placement with
// fewer probes can distinguish all edge profiles, and the cotree of
// any spanning tree achieves exactly that many. Choosing the
// *maximum-cost* tree under measured edge frequencies pushes the
// probes onto the coldest chords, minimizing the expected number of
// dynamic counter increments; the virtual edge is pinned into the
// tree with infinite weight so the per-call entry/exit transitions
// are never instrumented.
package placement

import (
	"fmt"
	"sort"

	"pathprof/internal/cfg"
	"pathprof/internal/profile"
)

// Probe is one instrumented CFG edge: executions of Src->Dst bump the
// dense counter Index. Indices are dense in [0, len(Spec.Probes)) and
// assigned in (Src, Dst) block-ID order, so a spec's probe layout is a
// pure function of the graph and weights.
type Probe struct {
	Src, Dst int // block IDs
	Index    int
}

// specEdge is one edge of the flow system: every CFG edge plus the
// virtual exit->entry edge (the last entry, Virtual == true).
type specEdge struct {
	src, dst int
	probe    int  // dense probe index, or -1 for tree edges
	virtual  bool // the exit->entry closure edge
}

// Spec is the placement for one routine: which edges carry probes and
// which are recovered. It is immutable after Plan and safe to share
// across workers.
type Spec struct {
	Func    string
	NBlocks int
	Probes  []Probe

	// MeasuredCalls is set when the routine's entry block is also its
	// exit: the virtual exit->entry edge degenerates to a self-loop,
	// which cancels out of every block's flow balance, so the call
	// count cannot be recovered from conservation and must come from
	// the measured profile (the VM counts calls for free whenever it
	// collects edges). One fewer probe is needed: the self-loop is not
	// an independent constraint on the real edges.
	MeasuredCalls bool

	edges []specEdge
}

// Plan computes the minimum-cost placement for g. Edge weights are the
// measured frequencies on g (a guide profile applied via ApplyTo, or
// all zero for a static plan — the probe count is the same either way,
// only which chords carry them moves). The graph must pass
// cfg.Validate, which guarantees the undirected CFG plus the virtual
// edge is connected and therefore spans.
func Plan(g *cfg.Graph) (*Spec, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	s := &Spec{Func: g.Name, NBlocks: len(g.Blocks), MeasuredCalls: g.Entry.ID == g.Exit.ID}

	// Union-find over block IDs, path halving.
	parent := make([]int, len(g.Blocks))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Pin the virtual exit->entry edge into the tree first (infinite
	// weight): Calls is recovered, never probed. When entry == exit the
	// pin is a no-op (self-loop) and the tree gains one more real edge
	// instead; Calls then comes from the measured profile.
	parent[find(g.Exit.ID)] = find(g.Entry.ID)

	// Kruskal on the real edges in descending weight order; ties break
	// by edge ID so the tree is deterministic. An edge whose endpoints
	// are already connected (including self loops) is a chord.
	order := make([]*cfg.Edge, len(g.Edges))
	copy(order, g.Edges)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Freq > order[j].Freq })
	inTree := make(map[int]bool, len(g.Blocks))
	for _, e := range order {
		a, b := find(e.Src.ID), find(e.Dst.ID)
		if a != b {
			parent[a] = b
			inTree[e.ID] = true
		}
	}

	// Chords become probes in (Src, Dst) order — g.Edges is not sorted
	// by endpoints, so sort explicitly for a canonical dense layout.
	chords := make([]*cfg.Edge, 0, len(g.Edges))
	for _, e := range g.Edges {
		if !inTree[e.ID] {
			chords = append(chords, e)
		}
	}
	sort.Slice(chords, func(i, j int) bool {
		if chords[i].Src.ID != chords[j].Src.ID {
			return chords[i].Src.ID < chords[j].Src.ID
		}
		return chords[i].Dst.ID < chords[j].Dst.ID
	})
	probeIdx := make(map[int]int, len(chords))
	for i, e := range chords {
		s.Probes = append(s.Probes, Probe{Src: e.Src.ID, Dst: e.Dst.ID, Index: i})
		probeIdx[e.ID] = i
	}

	for _, e := range g.Edges {
		idx, ok := probeIdx[e.ID]
		if !ok {
			idx = -1
		}
		s.edges = append(s.edges, specEdge{src: e.Src.ID, dst: e.Dst.ID, probe: idx})
	}
	if !s.MeasuredCalls {
		s.edges = append(s.edges, specEdge{src: g.Exit.ID, dst: g.Entry.ID, probe: -1, virtual: true})
	}

	want := len(g.Edges) - len(g.Blocks) + 2
	if s.MeasuredCalls {
		want--
	}
	if len(s.Probes) != want {
		return nil, fmt.Errorf("placement: %s: %d probes, want %d (cycle-space dimension)", g.Name, len(s.Probes), want)
	}
	return s, nil
}

// NumProbes returns the static probe-site count: E - V + 2, or one
// fewer when MeasuredCalls (the virtual edge is a self-loop).
func (s *Spec) NumProbes() int { return len(s.Probes) }

// Probed reports whether the CFG edge src->dst carries a probe and at
// which index.
func (s *Spec) Probed(src, dst int) (int, bool) {
	for _, p := range s.Probes {
		if p.Src == src && p.Dst == dst {
			return p.Index, true
		}
	}
	return 0, false
}

// Recover reconstructs the complete edge profile — every CFG edge's
// count plus the routine call count — from the probe counts alone.
// counts[i] is the measured execution count of Probes[i]. Tree edges
// are solved by leaf peeling the flow-conservation system: each block
// balances inflow against outflow once the virtual exit->entry edge
// carries the call count, giving V independent equations (one is
// redundant) for the V - 1 tree-edge unknowns, so the solution is
// exact, not an estimate.
func (s *Spec) Recover(counts []int64) (*profile.EdgeProfile, error) {
	if len(counts) != len(s.Probes) {
		return nil, fmt.Errorf("placement: %s: %d probe counts for %d probes", s.Func, len(counts), len(s.Probes))
	}
	val := make([]int64, len(s.edges))
	known := make([]bool, len(s.edges))
	for i, e := range s.edges {
		if e.probe >= 0 {
			val[i] = counts[e.probe]
			known[i] = true
		}
	}

	// Incidence lists over unknown (tree) edges only; self loops cancel
	// out of their block's balance and are always chords anyway.
	type inc struct {
		edge int
		out  bool // edge leaves the block
	}
	incident := make([][]inc, s.NBlocks)
	unknownDeg := make([]int, s.NBlocks)
	for i, e := range s.edges {
		if known[i] || e.src == e.dst {
			continue
		}
		incident[e.src] = append(incident[e.src], inc{edge: i, out: true})
		incident[e.dst] = append(incident[e.dst], inc{edge: i})
		unknownDeg[e.src]++
		unknownDeg[e.dst]++
	}

	// balance[b] = sum of known inflow - sum of known outflow. When b
	// has exactly one unknown incident edge e, conservation fixes it:
	// val(e) = balance[b] if e leaves b, -balance[b] if it enters.
	balance := make([]int64, s.NBlocks)
	for i, e := range s.edges {
		if !known[i] {
			continue
		}
		balance[e.dst] += val[i]
		balance[e.src] -= val[i]
	}

	queue := make([]int, 0, s.NBlocks)
	for b, d := range unknownDeg {
		if d == 1 {
			queue = append(queue, b)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if unknownDeg[b] != 1 {
			continue // solved transitively since enqueue
		}
		var pick inc
		found := false
		for _, in := range incident[b] {
			if !known[in.edge] {
				pick, found = in, true
				break
			}
		}
		if !found {
			continue
		}
		v := balance[b]
		if !pick.out {
			v = -v
		}
		e := pick.edge
		val[e] = v
		known[e] = true
		balance[s.edges[e].dst] += v
		balance[s.edges[e].src] -= v
		for _, end := range []int{s.edges[e].src, s.edges[e].dst} {
			unknownDeg[end]--
			if unknownDeg[end] == 1 {
				queue = append(queue, end)
			}
		}
	}

	ep := profile.NewEdgeProfile(s.Func)
	for i, e := range s.edges {
		if !known[i] {
			return nil, fmt.Errorf("placement: %s: edge %d->%d not recoverable (tree disconnected?)", s.Func, e.src, e.dst)
		}
		if val[i] < 0 {
			return nil, fmt.Errorf("placement: %s: edge %d->%d recovered negative count %d (probe counts violate conservation)", s.Func, e.src, e.dst, val[i])
		}
		if e.virtual {
			ep.Calls = val[i]
			continue
		}
		if val[i] != 0 {
			ep.Add(e.src, e.dst, val[i])
		}
	}
	return ep, nil
}

// RecoverFrom reads the probe counts out of a sparsely collected edge
// profile (only probed transitions were bumped) and recovers the full
// profile. The sparse profile's Calls, if collected, cross-checks the
// flow-derived call count.
func (s *Spec) RecoverFrom(sparse *profile.EdgeProfile) (*profile.EdgeProfile, error) {
	counts := make([]int64, len(s.Probes))
	for i, p := range s.Probes {
		counts[i] = sparse.Get(p.Src, p.Dst)
	}
	ep, err := s.Recover(counts)
	if err != nil {
		return nil, err
	}
	if s.MeasuredCalls {
		// Entry == exit: flow conservation cannot see the call count;
		// take it from the measured profile.
		ep.Calls = sparse.Calls
	} else if sparse.Calls != 0 && sparse.Calls != ep.Calls {
		return nil, fmt.Errorf("placement: %s: recovered %d calls, measured %d", s.Func, ep.Calls, sparse.Calls)
	}
	if sparse.Saturated {
		ep.Saturated = true
	}
	return ep, nil
}

// CheckExact verifies recovery round-trips against a fully measured
// profile: feeding the probes' measured counts through Recover must
// reproduce every edge count and the call count exactly. The verifier
// runs this as its recovery-exactness invariant.
func (s *Spec) CheckExact(g *cfg.Graph) error {
	counts := make([]int64, len(s.Probes))
	for _, e := range g.Edges {
		if idx, ok := s.Probed(e.Src.ID, e.Dst.ID); ok {
			counts[idx] = e.Freq
		}
	}
	ep, err := s.Recover(counts)
	if err != nil {
		return err
	}
	if !s.MeasuredCalls && ep.Calls != g.Calls {
		return fmt.Errorf("placement: %s: recovered %d calls, want %d", g.Name, ep.Calls, g.Calls)
	}
	for _, e := range g.Edges {
		if got := ep.Get(e.Src.ID, e.Dst.ID); got != e.Freq {
			return fmt.Errorf("placement: %s: edge %s recovered %d, want %d", g.Name, e, got, e.Freq)
		}
	}
	return nil
}

// DynamicProbeHits returns the number of dynamic counter increments
// this placement costs under the graph's measured frequencies: the sum
// of probe-edge counts. Full edge instrumentation pays the sum over
// all edges; the difference is the placement's runtime saving.
func (s *Spec) DynamicProbeHits(g *cfg.Graph) int64 {
	var sum int64
	for _, e := range g.Edges {
		if _, ok := s.Probed(e.Src.ID, e.Dst.ID); ok {
			sum += e.Freq
		}
	}
	return sum
}
