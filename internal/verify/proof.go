package verify

import (
	"fmt"

	"pathprof/internal/cfg"
	"pathprof/internal/dataflow"
	"pathprof/internal/instr"
)

// Mode selects how the path-sensitive invariants are established.
type Mode int

const (
	// ModeProof (the default) proves the invariants over all acyclic
	// paths by interval abstract interpretation in O(E) per routine.
	// No path is enumerated; failures carry witness paths walked back
	// through the lattice.
	ModeProof Mode = iota
	// ModeEnum is the PR 3 behaviour: budgeted exact enumeration with
	// a stride-sampling fallback above the budget.
	ModeEnum
	// ModeBoth runs the proof and then enumeration, and reports a
	// disagreement diagnostic when one side finds a violation the
	// other conclusively missed.
	ModeBoth
)

func (m Mode) String() string {
	switch m {
	case ModeProof:
		return "proof"
	case ModeEnum:
		return "enum"
	case ModeBoth:
		return "both"
	}
	return "unknown"
}

// ParseMode parses a -verify flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "proof":
		return ModeProof, nil
	case "enum":
		return ModeEnum, nil
	case "both":
		return ModeBoth, nil
	}
	return ModeProof, fmt.Errorf("verify: unknown mode %q (want proof, enum, or both)", s)
}

// Hot-domain provenance slots. The hot proof partitions path prefixes
// by fire count: class U has fired no count yet, F1 exactly one, F2
// two or more. U tracks d = r - W (register minus the numbering-value
// sum W of the edges walked so far) and w = W; F1 tracks
// dPost = idx - W, the fired index against the running path number.
// Every transfer is affine per component, so on the acyclic DAG the
// intervals are exact hulls (see package dataflow).
const (
	hotUD uint8 = iota // class U: d = r - W
	hotUW              // class U: W
	hotF1              // class F1: dPost = idx - W
	hotF2              // class F2: reachability flag
)

type hotState struct {
	ud, uw, f1 dataflow.Track
	f2         dataflow.Flag
}

func hotBottom() hotState {
	return hotState{ud: dataflow.EmptyTrack(), uw: dataflow.EmptyTrack(), f1: dataflow.EmptyTrack()}
}

func hotJoin(a, b hotState) hotState {
	return hotState{
		ud: a.ud.Join(b.ud),
		uw: a.uw.Join(b.uw),
		f1: a.f1.Join(b.f1),
		f2: a.f2.Join(b.f2),
	}
}

// hotTransfer pushes the class partition across one hot edge: the
// edge's ops first (a count moves U to F1 and F1 to F2; an assignment
// rewrites U's register), then the edge's numbering value folds into
// the running W of every class.
//
//ppp:dataflow
func (v *checker) hotTransfer(e *cfg.DAGEdge, in hotState) hotState {
	p := v.p
	out := hotState{
		ud: in.ud.Via(e, hotUD),
		uw: in.uw.Via(e, hotUW),
		f1: in.f1.Via(e, hotF1),
		f2: in.f2.Via(e, hotF2),
	}
	for _, op := range p.Ops[e.ID] {
		switch op.Kind {
		case instr.OpInc:
			out.ud = out.ud.Add(op.V)
		case instr.OpSet:
			// r = V, so d = V - W; F1's post-fire drift is unaffected.
			out.ud = out.uw.SubFrom(op.V)
		case instr.OpCountR, instr.OpCountRV, instr.OpCountC:
			var fired dataflow.Track
			switch op.Kind {
			case instr.OpCountR:
				fired = out.ud // idx = r, so idx - W = d
			case instr.OpCountRV:
				fired = out.ud.Add(op.V)
			case instr.OpCountC:
				fired = out.uw.SubFrom(op.V) // idx = V constant
			}
			if out.f1.Reached() {
				out.f2 = out.f2.Join(dataflow.Flag{On: true, P: out.f1.LoP})
			}
			out.f1 = fired
			out.ud, out.uw = dataflow.EmptyTrack(), dataflow.EmptyTrack()
		}
	}
	val := p.Num.Val[e.ID]
	if val != 0 {
		out.ud = out.ud.Add(-val)
		out.uw = out.uw.Add(val)
		out.f1 = out.f1.Add(-val)
	}
	return out
}

// proofHot proves the hot-path counting invariants over all
// non-attributed hot paths at once: the exit state's U class must be
// empty (no path fires zero counts), F2 empty (none fires twice), and
// F1's drift interval exactly [0,0] (every fire lands on the path's
// own number — which numbering() proved unique and dense). Attributed
// paths are proven individually: their defining edge must own exactly
// one hot path, which is then simulated concretely.
//
//ppp:dataflow
func (v *checker) proofHot() {
	p := v.p
	d := p.D
	skip := excluded(p)
	attrNums := make(map[int64]cfg.Path, len(p.Attr))
	for i, a := range p.Attr {
		if len(a.Path) == 0 || a.Edge == nil {
			continue // attribution() already diagnosed the shape
		}
		if !attrLive(p, a.Path) {
			// The path is not in the hot numbering universe:
			// disconnected-loop body attributions cross disconnected
			// dummies by construction, and later cold-marking rounds
			// can strand earlier attributions. Enumeration never meets
			// these paths either; attribution() covers their shape.
			continue
		}
		if through := p.Num.PathsThrough(a.Edge); through != 1 {
			v.diag(RuleAttr, a.Path, a.Edge,
				"attribution %d: defining edge lies on %d hot paths, want exactly 1", i, through)
			continue
		}
		v.proofAttrPath(i, a, attrNums)
		// The defining edge owns exactly one hot path, and the live
		// attributed path crosses it — so it is that path, just proven
		// concretely, and excluding the edge removes exactly it from
		// the all-paths dataflow below.
		skip[a.Edge.ID] = true
	}

	states := dataflow.Forward(d, dataflow.Analysis[hotState]{
		Bottom:   hotBottom,
		Init:     hotState{ud: dataflow.PointTrack(0), uw: dataflow.PointTrack(0), f1: dataflow.EmptyTrack()},
		Join:     hotJoin,
		Transfer: v.hotTransfer,
		Skip:     skip,
		Dead: func(s hotState) bool {
			return !s.ud.Reached() && !s.f1.Reached() && !s.f2.On
		},
	})
	get := func(b int, slot, bound uint8) dataflow.Prov {
		s := states[b]
		switch slot {
		case hotUD:
			return s.ud.Prov(bound)
		case hotUW:
			return s.uw.Prov(bound)
		case hotF1:
			return s.f1.Prov(bound)
		}
		return s.f2.P
	}
	maxW := len(d.Edges) + 1
	x := states[d.G.Exit.ID]
	if x.ud.Reached() {
		w := dataflow.WalkBack(get, d.G.Exit.ID, hotUD, dataflow.BoundLo, maxW)
		v.hotWitness(w, RuleHotCount, "some hot path fires 0 counts, want exactly 1")
	}
	if x.f2.On {
		w := dataflow.WalkBackProv(get, x.f2.P, maxW)
		v.hotWitness(w, RuleHotCount, "some hot path fires at least 2 counts, want exactly 1")
	}
	if x.f1.Reached() && (x.f1.Iv.Lo != 0 || x.f1.Iv.Hi != 0) {
		bound := dataflow.BoundLo
		if x.f1.Iv.Hi != 0 {
			bound = dataflow.BoundHi
		}
		w := dataflow.WalkBack(get, d.G.Exit.ID, hotF1, bound, maxW)
		v.hotWitness(w, RuleHotID, fmt.Sprintf(
			"some hot path fires off its own number (drift %s)", x.f1.Iv))
	}
	if p.N > 0 {
		// Every one of the N hot paths is covered: N - |Attr| by the
		// dataflow, the rest concretely.
		v.rep.HotChecked = int(p.N)
	}
}

// attrLive reports whether an attributed path belongs to the current
// hot numbering universe: a contiguous entry->exit path crossing no
// excluded edge, accepted by the numbering.
func attrLive(p *instr.Plan, path cfg.Path) bool {
	if path[0].Src != p.D.G.Entry || path[len(path)-1].Dst != p.D.G.Exit {
		return false
	}
	for j, e := range path {
		if j > 0 && path[j-1].Dst != e.Src {
			return false
		}
		if p.Cold[e.ID] || p.Disc[e.ID] {
			return false
		}
	}
	_, ok := p.Num.PathNumber(path)
	return ok
}

// proofAttrPath concretely proves one live edge-attributed path: it
// must fire no counts, its recorded number must match the numbering's,
// and it must collide with no other attribution.
func (v *checker) proofAttrPath(i int, a instr.EdgeAttr, attrNums map[int64]cfg.Path) {
	p := v.p
	num, _ := p.Num.PathNumber(a.Path) // ok: attrLive checked
	if events, _ := simulate(p, a.Path); len(events) != 0 {
		v.diag(RuleHotCount, a.Path, nil, "edge-attributed path fires %d counts", len(events))
	}
	if a.Num >= 0 && a.Num != num {
		v.diag(RuleAttr, a.Path, a.Edge,
			"attribution %d records number %d, numbering assigns %d", i, a.Num, num)
	}
	if prev, dup := attrNums[num]; dup {
		v.diag(RuleHotID, a.Path, nil, "number %d already used by %s", num, prev)
		return
	}
	attrNums[num] = a.Path
}

// hotWitness re-derives a hot-path diagnostic from a concrete witness
// path, so proof-mode messages match enumeration's exactly and a
// walked-back path vouches for itself. The abstract finding stands as
// a fallback if the walk-back could not be reconstructed.
func (v *checker) hotWitness(path cfg.Path, rule Rule, abstract string) {
	if len(path) == 0 {
		v.diag(rule, nil, nil, "%s (witness reconstruction failed)", abstract)
		return
	}
	want, ok := v.p.Num.PathNumber(path)
	if !ok {
		v.diag(RuleNumbering, path, nil, "hot path rejected by the numbering")
		return
	}
	events, _ := simulate(v.p, path)
	switch {
	case len(events) != 1:
		v.diag(RuleHotCount, path, nil, "hot path fires %d counts, want exactly 1", len(events))
	case events[0].index != want:
		v.diag(RuleHotID, path, nil, "hot path counted at %d, want its number %d", events[0].index, want)
	default:
		v.diag(rule, path, nil, "%s", abstract)
	}
}

// Cold-domain provenance slots. The cold proof partitions path
// prefixes by poisoning status: class H has crossed no cold edge, CU
// has crossed at least one and its last assignment (if any) was hot,
// CP's last assignment was a cold-edge poison. Each class tracks the
// register r and the overcount ledgers a = unpoisoned events - sets
// and b = events - sets; the enumerator's per-path bound
// "unpoisoned <= sets+1 and events <= sets+1" becomes a.Hi <= 1 and
// b.Hi <= 1 at the exit for the cold-crossing classes.
const (
	coldHR uint8 = iota
	coldHA
	coldHB
	coldCUR
	coldCUA
	coldCUB
	coldCPR
	coldCPA
	coldCPB
)

type coldCls struct {
	r, a, b dataflow.Track
}

type coldState struct {
	h, cu, cp coldCls
}

func emptyCls() coldCls {
	return coldCls{r: dataflow.EmptyTrack(), a: dataflow.EmptyTrack(), b: dataflow.EmptyTrack()}
}

func viaCls(c coldCls, e *cfg.DAGEdge, base uint8) coldCls {
	return coldCls{r: c.r.Via(e, base), a: c.a.Via(e, base+1), b: c.b.Via(e, base+2)}
}

func joinCls(x, y coldCls) coldCls {
	return coldCls{r: x.r.Join(y.r), a: x.a.Join(y.a), b: x.b.Join(y.b)}
}

// setCls applies a register assignment to a class: r collapses to the
// point V and one initialization is charged to both ledgers. The new
// r endpoints inherit the b ledger's provenance — b evolves additively
// from the entry, so its chain is a concrete path reaching this state,
// and after the assignment every such path holds the same register.
func setCls(c coldCls, val int64) coldCls {
	if !c.r.Reached() {
		return c
	}
	return coldCls{
		r: dataflow.Track{Iv: dataflow.Point(val), LoP: c.b.LoP, HiP: c.b.LoP},
		a: c.a.Add(-1),
		b: c.b.Add(-1),
	}
}

// coldOb is a deferred fire-time violation: the interval bounds are
// final at transfer time (the source state is solved), but walking the
// witness back needs the finished state array.
type coldOb struct {
	rule     Rule
	prov     dataflow.Prov
	dst      *cfg.Block
	needCold bool // the witness suffix must still cross a cold edge
	abstract string
}

// coldProver carries the gating precomputation shared by the cold
// transfer and the witness resolution.
type coldProver struct {
	v     *checker
	reach []bool // block can complete to the exit over non-disc edges
	ahead []bool // a completion crossing >= 1 cold edge exists
	obs   []coldOb
}

// transfer pushes the three-class partition across one edge: crossing
// a cold edge moves H into CU before the ops run; a cold-edge Set
// poisons everything into CP, a hot Set un-poisons CP back into CU;
// counts emit range obligations and bump the ledgers.
//
//ppp:dataflow
func (cp *coldProver) transfer(e *cfg.DAGEdge, in coldState) coldState {
	p := cp.v.p
	out := coldState{
		h:  viaCls(in.h, e, coldHR),
		cu: viaCls(in.cu, e, coldCUR),
		cp: viaCls(in.cp, e, coldCPR),
	}
	if p.Cold[e.ID] {
		out.cu = joinCls(out.cu, out.h)
		out.h = emptyCls()
	}
	for _, op := range p.Ops[e.ID] {
		switch op.Kind {
		case instr.OpInc:
			out.h.r = out.h.r.Add(op.V)
			out.cu.r = out.cu.r.Add(op.V)
			out.cp.r = out.cp.r.Add(op.V)
		case instr.OpSet:
			if p.Cold[e.ID] {
				m := joinCls(joinCls(setCls(out.h, op.V), setCls(out.cu, op.V)), setCls(out.cp, op.V))
				out.h, out.cu, out.cp = emptyCls(), emptyCls(), m
			} else {
				out.h = setCls(out.h, op.V)
				out.cu = joinCls(setCls(out.cu, op.V), setCls(out.cp, op.V))
				out.cp = emptyCls()
			}
		case instr.OpCountR, instr.OpCountRV, instr.OpCountC:
			cp.fire(e, op, &out)
		}
	}
	return out
}

// fire checks one count op against every reachable class and charges
// the overcount ledgers, mirroring the enumerator's per-event checks:
// unpoisoned events must land in [0, N); poisoned events must stay
// negative under check-based poisoning or inside [N, TableSize) under
// free poisoning. Checks are gated on a completion existing (for H, a
// completion that still crosses a cold edge), exactly the paths the
// enumerator would visit.
//
//ppp:dataflow
func (cp *coldProver) fire(e *cfg.DAGEdge, op instr.Op, out *coldState) {
	p := cp.v.p
	idxOf := func(c coldCls) dataflow.Track {
		switch op.Kind {
		case instr.OpCountRV:
			return c.r.Add(op.V)
		case instr.OpCountC:
			if !c.r.Reached() {
				return dataflow.EmptyTrack()
			}
			return dataflow.Track{Iv: dataflow.Point(op.V), LoP: c.b.LoP, HiP: c.b.LoP}
		}
		return c.r
	}
	unpoisoned := func(c coldCls, needCold bool) {
		idx := idxOf(c)
		if !idx.Reached() {
			return
		}
		if idx.Iv.Lo < 0 {
			cp.obs = append(cp.obs, coldOb{
				rule: RuleOvercount, prov: idx.LoP, dst: e.Dst, needCold: needCold,
				abstract: fmt.Sprintf("unpoisoned cold-path count can reach %d outside hot range [0,%d)", idx.Iv.Lo, p.N),
			})
		}
		if idx.Iv.Hi >= p.N {
			cp.obs = append(cp.obs, coldOb{
				rule: RuleOvercount, prov: idx.HiP, dst: e.Dst, needCold: needCold,
				abstract: fmt.Sprintf("unpoisoned cold-path count can reach %d outside hot range [0,%d)", idx.Iv.Hi, p.N),
			})
		}
	}
	if cp.ahead[e.Dst.ID] {
		unpoisoned(out.h, true)
	}
	if cp.reach[e.Dst.ID] {
		unpoisoned(out.cu, false)
		if op.Kind == instr.OpCountC {
			// Constant counts are never poisoned, even in CP.
			unpoisoned(out.cp, false)
		} else if idx := idxOf(out.cp); idx.Reached() {
			if p.PoisonCheck {
				if idx.Iv.Hi >= 0 {
					cp.obs = append(cp.obs, coldOb{
						rule: RuleColdRange, prov: idx.HiP, dst: e.Dst,
						abstract: fmt.Sprintf("check-poisoned count can reach %d, want a negative register", idx.Iv.Hi),
					})
				}
			} else {
				if idx.Iv.Lo < p.N {
					cp.obs = append(cp.obs, coldOb{
						rule: RuleColdRange, prov: idx.LoP, dst: e.Dst,
						abstract: fmt.Sprintf("poisoned count can reach %d below the cold region [%d,%d)", idx.Iv.Lo, p.N, p.TableSize),
					})
				}
				if idx.Iv.Hi >= p.TableSize {
					cp.obs = append(cp.obs, coldOb{
						rule: RuleColdRange, prov: idx.HiP, dst: e.Dst,
						abstract: fmt.Sprintf("poisoned count can reach %d beyond the cold region [%d,%d)", idx.Iv.Hi, p.N, p.TableSize),
					})
				}
			}
		}
	}
	// Ledger charges (independent of the gating: the state flows on).
	out.h.a, out.h.b = out.h.a.Add(1), out.h.b.Add(1)
	out.cu.a, out.cu.b = out.cu.a.Add(1), out.cu.b.Add(1)
	if op.Kind == instr.OpCountC {
		out.cp.a = out.cp.a.Add(1)
	}
	out.cp.b = out.cp.b.Add(1)
}

// proofCold proves the poisoning and overcount invariants over all
// cold-crossing completions at once. Skipping only disconnected edges
// keeps the walked universe identical to the enumerator's.
//
//ppp:dataflow
func (v *checker) proofCold() {
	p := v.p
	d := p.D
	anyCold := false
	for _, c := range p.Cold {
		if c {
			anyCold = true
			break
		}
	}
	if !anyCold {
		return
	}
	skip := make([]bool, len(d.Edges))
	for i := range skip {
		skip[i] = p.Disc[i]
	}
	cpr := &coldProver{v: v, reach: dataflow.ReachExit(d, skip)}
	// ahead[b]: some b->exit completion over non-disc edges crosses at
	// least one cold edge. Gating H-class fires on this matches the
	// enumerator, which only visits paths that end up cold-crossing.
	cpr.ahead = make([]bool, len(d.G.Blocks))
	for i := len(d.Topo) - 1; i >= 0; i-- {
		b := d.Topo[i]
		for _, e := range d.Out[b.ID] {
			if skip[e.ID] {
				continue
			}
			if (p.Cold[e.ID] && cpr.reach[e.Dst.ID]) || cpr.ahead[e.Dst.ID] {
				cpr.ahead[b.ID] = true
				break
			}
		}
	}

	states := dataflow.Forward(d, dataflow.Analysis[coldState]{
		Bottom: func() coldState { return coldState{h: emptyCls(), cu: emptyCls(), cp: emptyCls()} },
		Init: coldState{
			h:  coldCls{r: dataflow.PointTrack(0), a: dataflow.PointTrack(0), b: dataflow.PointTrack(0)},
			cu: emptyCls(),
			cp: emptyCls(),
		},
		Join: func(a, b coldState) coldState {
			return coldState{h: joinCls(a.h, b.h), cu: joinCls(a.cu, b.cu), cp: joinCls(a.cp, b.cp)}
		},
		Transfer: cpr.transfer,
		Skip:     skip,
		Dead: func(s coldState) bool {
			return !s.h.r.Reached() && !s.cu.r.Reached() && !s.cp.r.Reached()
		},
	})
	get := func(b int, slot, bound uint8) dataflow.Prov {
		s := states[b]
		switch slot {
		case coldHR:
			return s.h.r.Prov(bound)
		case coldHA:
			return s.h.a.Prov(bound)
		case coldHB:
			return s.h.b.Prov(bound)
		case coldCUR:
			return s.cu.r.Prov(bound)
		case coldCUA:
			return s.cu.a.Prov(bound)
		case coldCUB:
			return s.cu.b.Prov(bound)
		case coldCPR:
			return s.cp.r.Prov(bound)
		case coldCPA:
			return s.cp.a.Prov(bound)
		}
		return s.cp.b.Prov(bound)
	}
	maxW := len(d.Edges) + 1

	// Resolve fire-time obligations now that the states are final.
	for _, ob := range cpr.obs {
		prefix := dataflow.WalkBackProv(get, ob.prov, maxW)
		witness := cpr.complete(prefix, ob.dst, ob.needCold)
		v.coldWitness(witness, ob.rule, ob.abstract)
	}

	// Exit ledgers for the cold-crossing classes: a > 1 means some
	// path fired more unpoisoned counts than initializations allow,
	// b > 1 the same for all counts.
	exitID := d.G.Exit.ID
	x := states[exitID]
	checkLedger := func(c coldCls, slotA, slotB uint8) {
		if !c.r.Reached() {
			return
		}
		if c.a.Reached() && c.a.Iv.Hi > 1 {
			w := dataflow.WalkBack(get, exitID, slotA, dataflow.BoundHi, maxW)
			v.coldWitness(w, RuleOvercount, fmt.Sprintf(
				"some cold path fires %d more unpoisoned counts than initializations", c.a.Iv.Hi-1))
			return
		}
		if c.b.Reached() && c.b.Iv.Hi > 1 {
			w := dataflow.WalkBack(get, exitID, slotB, dataflow.BoundHi, maxW)
			v.coldWitness(w, RuleOvercount, fmt.Sprintf(
				"some cold path fires %d more counts than initializations", c.b.Iv.Hi-1))
		}
	}
	checkLedger(x.cu, coldCUA, coldCUB)
	checkLedger(x.cp, coldCPA, coldCPB)

	// Every cold-crossing completion is covered by the proof: count
	// them (saturating) for the report.
	all := d.TotalPaths(skip, coldCountSat)
	hotOnly := d.TotalPaths(excluded(p), coldCountSat)
	if diff := all - hotOnly; diff > 0 {
		v.rep.ColdChecked = int(diff)
	}
}

// coldCountSat caps the reported proven-path counts; the proof itself
// never enumerates, this is bookkeeping only.
const coldCountSat = int64(1) << 61

// complete extends a walked-back prefix to the exit over non-disc
// edges, preferring (when required) a continuation that still crosses
// a cold edge, and returns the full witness path (nil if the prefix
// was unreconstructable or no completion exists).
func (cp *coldProver) complete(prefix cfg.Path, from *cfg.Block, needCold bool) cfg.Path {
	if prefix == nil {
		return nil
	}
	p := cp.v.p
	d := p.D
	for _, e := range prefix {
		if p.Cold[e.ID] {
			needCold = false
		}
	}
	b := from
	path := prefix
	for b != d.G.Exit {
		var pick *cfg.DAGEdge
		for _, e := range d.Out[b.ID] {
			if p.Disc[e.ID] {
				continue
			}
			if needCold {
				if (p.Cold[e.ID] && cp.reach[e.Dst.ID]) || cp.ahead[e.Dst.ID] {
					pick = e
					break
				}
			} else if cp.reach[e.Dst.ID] {
				pick = e
				break
			}
		}
		if pick == nil {
			return nil
		}
		if p.Cold[pick.ID] {
			needCold = false
		}
		path = append(path, pick)
		b = pick.Dst
		if len(path) > len(d.Edges)+2 {
			return nil
		}
	}
	return path
}

// coldWitness re-checks a resolved witness path with the concrete
// per-path rules, so proof-mode diagnostics carry the enumerator's
// exact wording; the abstract finding stands if reconstruction failed
// or the concrete pass (unexpectedly) finds nothing.
func (v *checker) coldWitness(path cfg.Path, rule Rule, abstract string) {
	if len(path) == 0 {
		v.diag(rule, nil, nil, "%s (witness reconstruction failed)", abstract)
		return
	}
	before := len(v.rep.Diags)
	v.coldPathDiags(path)
	if len(v.rep.Diags) == before {
		v.diag(rule, path, nil, "%s", abstract)
	}
}
