package verify_test

import (
	"math/rand"
	"strings"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/instr"
	"pathprof/internal/verify"
)

func build(t testing.TB, g *cfg.Graph, tech instr.Techniques, total int64) *instr.Plan {
	t.Helper()
	p, err := instr.Build(g, tech, instr.DefaultParams(), total)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// coldDiamond mirrors the instrumentation tests' triple diamond with
// one nearly-dead first-stage arm: cold edges, free poisoning, and
// four surviving hot paths.
func coldDiamond() *cfg.Graph {
	g := cfg.New("cold3")
	names := []string{"entry", "a", "b", "c", "m", "x", "y", "j", "p", "q", "w", "exit"}
	bs := map[string]*cfg.Block{}
	for _, n := range names {
		bs[n] = g.AddBlock(n)
	}
	g.Entry, g.Exit = bs["entry"], bs["exit"]
	set := func(a, b string, f int64) {
		cfgtest.Connect(g, bs[a], bs[b]).Freq = f
	}
	set("entry", "a", 1000)
	set("a", "b", 10)
	set("a", "c", 990)
	set("b", "m", 10)
	set("c", "m", 990)
	set("m", "x", 500)
	set("m", "y", 500)
	set("x", "j", 500)
	set("y", "j", 500)
	set("j", "p", 400)
	set("j", "q", 600)
	set("p", "w", 400)
	set("q", "w", 600)
	set("w", "exit", 1000)
	g.Calls = 1000
	return g
}

func pppNoLC() instr.Techniques {
	t := instr.PPP()
	t.LowCoverage = false
	return t
}

func TestCheckAcceptsValidPlans(t *testing.T) {
	g := coldDiamond()
	for name, tech := range map[string]instr.Techniques{
		"pp":  instr.PP(),
		"tpp": instr.TPP(),
		"ppp": pppNoLC(),
		"no-fp": func() instr.Techniques {
			x := pppNoLC()
			x.FreePoison = false
			return x
		}(),
	} {
		p := build(t, g, tech, 1000)
		rep := verify.Check(p)
		if !rep.OK() {
			t.Errorf("%s: %s", name, rep)
		}
		if p.Instrumented && rep.HotChecked == 0 {
			t.Errorf("%s: verifier checked no hot paths", name)
		}
	}
}

func TestCheckCountsColdPaths(t *testing.T) {
	p := build(t, coldDiamond(), pppNoLC(), 1000)
	rep := verify.Check(p)
	if !rep.OK() {
		t.Fatalf("valid plan rejected: %s", rep)
	}
	anyCold := false
	for _, c := range p.Cold {
		anyCold = anyCold || c
	}
	if anyCold && rep.ColdChecked == 0 {
		t.Error("plan has cold edges but no cold paths were checked")
	}
}

// mutateOp perturbs one op in place and returns a description.
type mutation struct {
	edge *cfg.DAGEdge
	op   int
	desc string
}

// mutableOps lists every (edge, op) site on a hot edge whose value can
// be perturbed with a guaranteed observable effect: any value change
// on a hot edge shifts some hot path's fired index.
func mutableOps(p *instr.Plan) []mutation {
	var sites []mutation
	for _, e := range p.D.Edges {
		if p.Cold[e.ID] || p.Disc[e.ID] {
			continue
		}
		for i, op := range p.Ops[e.ID] {
			if op.Kind == instr.OpCountR {
				continue // no value to perturb
			}
			sites = append(sites, mutation{edge: e, op: i, desc: e.String() + ":" + op.String()})
		}
	}
	return sites
}

// TestMutationDetected corrupts one increment/assign/count value at a
// time in a valid plan and asserts the verifier reports the corruption
// with a concrete witness path.
func TestMutationDetected(t *testing.T) {
	graphs := map[string]*cfg.Graph{"cold3": coldDiamond()}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		g := cfgtest.Random(rng, 6+rng.Intn(10))
		g.Name = "rand" + string(rune('a'+i))
		cfgtest.Profile(g, rng, 300, 200)
		graphs[g.Name] = g
	}

	mutated, detected := 0, 0
	for gname, g := range graphs {
		for _, tech := range []instr.Techniques{instr.PP(), pppNoLC()} {
			p := build(t, g, tech, g.Calls)
			if !p.Instrumented {
				continue
			}
			if rep := verify.Check(p); !rep.OK() {
				t.Fatalf("%s: pristine plan rejected: %s", gname, rep)
			}
			for _, site := range mutableOps(p) {
				orig := p.Ops[site.edge.ID][site.op]
				p.Ops[site.edge.ID][site.op].V = orig.V + 1
				rep := verify.Check(p)
				p.Ops[site.edge.ID][site.op] = orig

				mutated++
				if rep.OK() {
					t.Errorf("%s: corrupting %s went undetected\n%s", gname, site.desc, p.Dump())
					continue
				}
				detected++
				witness := false
				for _, d := range rep.Diags {
					if d.Witness != nil {
						witness = true
						if got, want := d.Routine, p.G.Name; got != want {
							t.Errorf("diagnostic routine %q, want %q", got, want)
						}
					}
				}
				// Placement diagnostics carry the edge instead of a
				// path; every semantic rule must produce a witness.
				if !witness && !onlyPlacement(rep.Diags) {
					t.Errorf("%s: corruption of %s detected without witness: %s", gname, site.desc, rep)
				}

				// Restored plan must verify again.
				if rep := verify.Check(p); !rep.OK() {
					t.Fatalf("%s: plan did not survive mutation round-trip: %s", gname, rep)
				}
			}
		}
	}
	if mutated == 0 {
		t.Fatal("no mutations exercised")
	}
	if detected != mutated {
		t.Errorf("detected %d of %d mutations", detected, mutated)
	}
}

func onlyPlacement(diags []verify.Diagnostic) bool {
	for _, d := range diags {
		if d.Rule != verify.RulePlacement {
			return false
		}
	}
	return len(diags) > 0
}

// TestMutationWitnessIsConcrete checks the shape of one specific
// corruption end to end: bumping a poison assignment below N must
// produce a cold-range diagnostic whose witness crosses the cold edge.
func TestMutationWitnessIsConcrete(t *testing.T) {
	g := coldDiamond()
	p := build(t, g, pppNoLC(), 1000)
	if !p.Instrumented {
		t.Fatalf("not instrumented: %s", p.Dump())
	}
	var coldEdge *cfg.DAGEdge
	for _, e := range p.D.Edges {
		if p.Cold[e.ID] && len(p.Ops[e.ID]) == 1 && p.Ops[e.ID][0].Kind == instr.OpSet {
			coldEdge = e
			break
		}
	}
	if coldEdge == nil {
		t.Fatalf("no poisoned cold edge in plan:\n%s", p.Dump())
	}
	// Redirect the poison into the hot counter range: every execution
	// through the cold edge now corrupts hot counts.
	p.Ops[coldEdge.ID][0].V = 0
	rep := verify.Check(p)
	if rep.OK() {
		t.Fatalf("hot-range poison not detected:\n%s", p.Dump())
	}
	found := false
	for _, d := range rep.Diags {
		if d.Rule != verify.RuleColdRange && d.Rule != verify.RuleOvercount {
			continue
		}
		if d.Witness == nil {
			t.Errorf("cold diagnostic without witness: %s", d)
			continue
		}
		crosses := false
		for _, e := range d.Witness {
			if e == coldEdge {
				crosses = true
			}
		}
		if crosses {
			found = true
		}
	}
	if !found {
		t.Errorf("no witness path crosses the corrupted cold edge: %s", rep)
	}
}

// TestSamplingFallback forces a routine over the enumeration budget
// and checks the verifier switches to reconstruction sampling, still
// accepting the valid plan and still catching a corruption.
func TestSamplingFallback(t *testing.T) {
	// Twelve chained diamonds: 4096 paths, all hot under PP.
	g := cfg.New("deep")
	entry := g.AddBlock("entry")
	prev := entry
	for i := 0; i < 12; i++ {
		a := g.AddBlock("")
		b := g.AddBlock("")
		c := g.AddBlock("")
		j := g.AddBlock("")
		cfgtest.Connect(g, prev, a)
		cfgtest.Connect(g, a, b)
		cfgtest.Connect(g, a, c)
		cfgtest.Connect(g, b, j)
		cfgtest.Connect(g, c, j)
		prev = j
	}
	exit := g.AddBlock("exit")
	cfgtest.Connect(g, prev, exit)
	g.Entry, g.Exit = entry, exit
	rng := rand.New(rand.NewSource(11))
	cfgtest.Profile(g, rng, 500, 400)

	p := build(t, g, instr.PP(), 500)
	if !p.Instrumented || p.N != 4096 {
		t.Fatalf("want 4096 hot paths, got N=%d", p.N)
	}
	opts := verify.Options{Mode: verify.ModeEnum, Budget: 100, Samples: 64}
	rep := verify.CheckWith(p, opts)
	if !rep.OK() {
		t.Fatalf("sampled verification rejected valid plan: %s", rep)
	}
	if !rep.Sampled {
		t.Fatal("expected sampling fallback above budget")
	}
	if rep.HotChecked == 0 || rep.HotChecked > 100 {
		t.Errorf("sampled %d hot paths, want within (0, budget]", rep.HotChecked)
	}

	// A numbering corruption must still surface symbolically even
	// though no exhaustive enumeration happens.
	var victim *cfg.DAGEdge
	for _, e := range p.D.Edges {
		if p.Num.Val[e.ID] != 0 {
			victim = e
			break
		}
	}
	if victim == nil {
		t.Fatal("no nonzero edge value to corrupt")
	}
	p.Num.Val[victim.ID]++
	rep = verify.CheckWith(p, opts)
	p.Num.Val[victim.ID]--
	if rep.OK() {
		t.Error("corrupted numbering accepted in sampling mode")
	} else if !hasRule(rep.Diags, verify.RuleNumbering) {
		t.Errorf("want a numbering diagnostic, got: %s", rep)
	}
}

// TestSamplingIncludesExtremes pins the budget+1 edge case: with N one
// over the enumeration budget, stride sampling alone misses the single
// max-ID path (stride 3 over [0,129) never lands on 128), so the
// sampler must include the first and last paths explicitly.
func TestSamplingIncludesExtremes(t *testing.T) {
	// Seven chained diamonds (128 paths) plus an entry->exit bypass:
	// N = 129 = budget+1.
	g := cfg.New("edgecase")
	entry := g.AddBlock("entry")
	exit := g.AddBlock("exit")
	prev := entry
	for i := 0; i < 7; i++ {
		a := g.AddBlock("")
		b := g.AddBlock("")
		c := g.AddBlock("")
		j := g.AddBlock("")
		cfgtest.Connect(g, prev, a)
		cfgtest.Connect(g, a, b)
		cfgtest.Connect(g, a, c)
		cfgtest.Connect(g, b, j)
		cfgtest.Connect(g, c, j)
		prev = j
	}
	cfgtest.Connect(g, prev, exit)
	cfgtest.Connect(g, entry, exit)
	g.Entry, g.Exit = entry, exit
	rng := rand.New(rand.NewSource(7))
	cfgtest.Profile(g, rng, 500, 400)

	p := build(t, g, instr.PP(), 500)
	if !p.Instrumented || p.N != 129 {
		t.Fatalf("want 129 hot paths, got N=%d", p.N)
	}
	rep := verify.CheckWith(p, verify.Options{Mode: verify.ModeEnum, Budget: 128, Samples: 43})
	if !rep.OK() {
		t.Fatalf("sampled verification rejected valid plan: %s", rep)
	}
	if !rep.Sampled {
		t.Fatal("expected sampling fallback at N = budget+1")
	}
	// Stride 129/43 = 3 covers ids 0,3,...,126 (43 paths); the
	// explicit last-path sample adds id 128.
	if rep.HotChecked != 44 {
		t.Errorf("sampled %d hot paths, want 44 (43 strided + the max-ID path)", rep.HotChecked)
	}
}

func hasRule(diags []verify.Diagnostic, r verify.Rule) bool {
	for _, d := range diags {
		if d.Rule == r {
			return true
		}
	}
	return false
}

func TestDiagnosticString(t *testing.T) {
	g := coldDiamond()
	p := build(t, g, pppNoLC(), 1000)
	site := mutableOps(p)
	if len(site) == 0 {
		t.Fatal("no mutable ops")
	}
	p.Ops[site[0].edge.ID][site[0].op].V += 3
	rep := verify.Check(p)
	if rep.OK() {
		t.Fatal("corruption not detected")
	}
	s := rep.String()
	if !strings.Contains(s, "cold3") || !strings.Contains(s, "violation") {
		t.Errorf("report rendering missing routine or verdict: %q", s)
	}
	for _, d := range rep.Diags {
		if d.String() == "" {
			t.Error("empty diagnostic rendering")
		}
	}
}

// TestStructuralDiagnostics covers the shape rules that need no paths.
func TestStructuralDiagnostics(t *testing.T) {
	g := coldDiamond()
	p := build(t, g, pppNoLC(), 1000)

	save := p.TableSize
	p.TableSize = p.N - 1
	if rep := verify.Check(p); rep.OK() {
		t.Error("undersized table accepted")
	}
	p.TableSize = 3*p.N + 1
	if rep := verify.Check(p); rep.OK() || !hasRule(rep.Diags, verify.RulePoisonBound) {
		t.Errorf("table beyond 3N accepted: %v", rep)
	}
	p.TableSize = save

	saveCold := p.Cold
	p.Cold = p.Cold[:len(p.Cold)-1]
	if rep := verify.Check(p); rep.OK() || !hasRule(rep.Diags, verify.RuleShape) {
		t.Error("truncated cold mask accepted")
	}
	p.Cold = saveCold

	if rep := verify.Check(p); !rep.OK() {
		t.Fatalf("restored plan rejected: %s", rep)
	}
}
