package verify_test

import (
	"testing"

	"pathprof/internal/bench"
	"pathprof/internal/core"
	"pathprof/internal/verify"
)

// TestVerifySweep runs the static verifier over every routine plan of
// every workload × technique combination: the three paper profilers
// (PP, TPP, PPP) plus the five Figure 13 leave-one-out ablations
// (SAC, FP, Push, SPN, LC). Short mode keeps a representative subset;
// CI runs the full matrix as its own step.
func TestVerifySweep(t *testing.T) {
	s := bench.NewSuite()
	names := make([]string, 0, len(s.Workloads))
	for _, w := range s.Workloads {
		names = append(names, w.Name)
	}
	if testing.Short() && len(names) > 4 {
		names = names[:4]
	}

	// ModeBoth runs the all-paths proof and budgeted enumeration on
	// every plan and reports any disagreement between them, so a
	// passing sweep is also a differential test of the two verifiers.
	checkPlans := func(t *testing.T, pr *core.ProfilerResult) {
		t.Helper()
		routines := 0
		diags, ok := verify.CheckAll(pr.Plans, verify.Options{Mode: verify.ModeBoth})
		routines += len(pr.Plans)
		if !ok {
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		}
		if routines == 0 {
			t.Error("no plans to verify")
		}
	}

	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			wr, err := s.Run(name)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for prof, pr := range wr.Profilers {
				t.Run(prof, func(t *testing.T) { checkPlans(t, pr) })
			}
			for ab := range core.Ablations() {
				pr, err := s.Ablate(name, ab)
				if err != nil {
					t.Fatalf("ablate %s: %v", ab, err)
				}
				t.Run("PPP-"+ab, func(t *testing.T) { checkPlans(t, pr) })
			}
		})
	}
}
