// Package verify statically checks instrumentation plans. Given a
// routine's DAG and an instr.Plan, Check proves — without executing
// the VM — that the plan upholds the paper's invariants:
//
//   - hot-path numbers are unique and dense in [0, N) (the Ball-Larus
//     bijection), established symbolically from the per-block
//     prefix-sum structure of the numbering rather than by trusting
//     the numbering code;
//   - counter updates fire exactly once per hot path, at the path's
//     own number, or not at all on edge-attributed obvious paths;
//   - free poisoning confines cold executions to [N, TableSize) with
//     TableSize <= 3N (Section 4.6), and check-based poisoning keeps
//     the register negative;
//   - Push overcounting (Section 4.4) is bounded — at most one count
//     per register initialization — and lands only on valid hot
//     numbers, so it can only overcount, never corrupt;
//   - increments sit only on chords of the event-counting spanning
//     tree, and cold/disconnected edges carry only their sanctioned
//     ops.
//
// Path-sensitive invariants are established by default through
// abstract interpretation (ModeProof): a forward interval dataflow
// over the acyclic path DAG whose per-component transfers are affine,
// so one topological sweep computes the exact min/max of every tracked
// quantity over all paths at once — a proof covering routines with
// billions of paths in O(E) time (see package dataflow and proof.go).
// Failed proofs walk the lattice back to a concrete witness path.
// Budgeted exact enumeration (ModeEnum, the PR 3 behaviour with its
// sampling fallback) remains available as an independent cross-check,
// and ModeBoth runs both and reports any disagreement. Violations come
// back as structured diagnostics carrying a concrete witness path
// whenever one exists.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"pathprof/internal/cfg"
	"pathprof/internal/instr"
	"pathprof/internal/pathnum"
	"pathprof/internal/telemetry"
)

// Rule identifies the invariant a diagnostic violates.
type Rule string

const (
	// RuleShape: structural defects — slice lengths, table sizing,
	// missing numbering.
	RuleShape Rule = "shape"
	// RuleNumbering: the numbering is not a dense bijection onto
	// [0, N) (symbolic prefix-sum proof failed).
	RuleNumbering Rule = "numbering"
	// RuleHotCount: a hot path fires the wrong number of counter
	// updates, or an attributed path fires any.
	RuleHotCount Rule = "hot-count"
	// RuleHotID: a hot path fires at an index other than its number,
	// or two hot paths collide, or a number in [0, N) goes unused.
	RuleHotID Rule = "hot-id"
	// RuleColdRange: a poisoned count escapes the cold region
	// [N, TableSize), or is non-negative under check-based poisoning.
	RuleColdRange Rule = "cold-range"
	// RulePoisonBound: the free-poisoning table exceeds the paper's 3N
	// bound, or check-based poisoning grew the table at all.
	RulePoisonBound Rule = "poison-bound"
	// RuleOvercount: a cold execution overcounts more than once per
	// register initialization, or records an invalid hot number.
	RuleOvercount Rule = "overcount"
	// RulePlacement: an increment sits on a spanning-tree edge, or a
	// cold/disconnected edge carries ops it must not.
	RulePlacement Rule = "placement"
	// RuleAttr: an edge attribution is malformed (missing edge, edge
	// not on the path).
	RuleAttr Rule = "attr"
	// RuleProbes: a min-cost edge-probe set is not the minimal
	// spanning-tree complement — wrong size, a probe off the graph, a
	// cycle of unprobed edges — or flow-conservation recovery from the
	// probes fails to reproduce the guide profile exactly.
	RuleProbes Rule = "probe-set"
	// RuleDisagree: under ModeBoth, the all-paths proof and exhaustive
	// enumeration reached different verdicts — a verifier bug.
	RuleDisagree Rule = "mode-disagreement"
)

// Diagnostic is one verifier finding.
type Diagnostic struct {
	Rule    Rule
	Routine string
	Message string
	// Witness is a concrete DAG path exhibiting the violation, when
	// the rule is path-sensitive.
	Witness cfg.Path
	// Edge is the offending edge for placement rules.
	Edge *cfg.DAGEdge
}

func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s] %s: %s", d.Rule, d.Routine, d.Message)
	if d.Edge != nil {
		fmt.Fprintf(&sb, " (edge %s)", d.Edge)
	}
	if d.Witness != nil {
		fmt.Fprintf(&sb, " witness: %s", d.Witness)
	}
	return sb.String()
}

// Options tune the verification effort.
type Options struct {
	// Mode selects proof (default), enumeration, or both.
	Mode Mode
	// Budget bounds exact path enumeration under ModeEnum/ModeBoth
	// (hot paths and cold-crossing paths each). Zero means
	// DefaultBudget. Routines with more hot paths than the budget —
	// in particular hash-table routines above the SAC threshold — are
	// verified symbolically plus by sampling.
	Budget int
	// Samples is the number of hot paths reconstructed and simulated
	// in sampling mode. Zero means DefaultSamples.
	Samples int
	// Trace, when set, receives one EvProof event per verified routine
	// (nil-safe; enumeration-only runs emit nothing).
	Trace *telemetry.Trace
	// TraceUnit labels emitted trace events.
	TraceUnit string
}

// DefaultBudget matches the instrumentation hashing threshold: every
// array-table routine is enumerated exactly.
const DefaultBudget = 4096

// DefaultSamples is the sampling-mode path count.
const DefaultSamples = 256

// Report is the outcome of verifying one plan.
type Report struct {
	Routine string
	// HotChecked and ColdChecked count the paths covered — simulated
	// under ModeEnum, proven under ModeProof (saturating); Sampled is
	// set when enumeration's hot side used the sampling fallback,
	// Truncated when its cold walk exhausted the budget.
	HotChecked  int
	ColdChecked int
	Sampled     bool
	Truncated   bool
	Diags       []Diagnostic
}

// OK reports whether no invariant was violated.
func (r *Report) OK() bool { return len(r.Diags) == 0 }

// String renders every diagnostic, one per line.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("verify %s: ok (%d hot, %d cold paths checked)",
			r.Routine, r.HotChecked, r.ColdChecked)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "verify %s: %d violation(s)\n", r.Routine, len(r.Diags))
	for _, d := range r.Diags {
		sb.WriteString("  " + d.String() + "\n")
	}
	return sb.String()
}

// Check verifies p with default options (proof mode).
func Check(p *instr.Plan) *Report { return CheckWith(p, Options{}) }

// CheckWith verifies p. Non-instrumented plans get structural checks
// only; a skipped routine with a well-formed attribution always
// passes.
func CheckWith(p *instr.Plan, opts Options) *Report {
	if opts.Budget <= 0 {
		opts.Budget = DefaultBudget
	}
	if opts.Samples <= 0 {
		opts.Samples = DefaultSamples
	}
	v := &checker{p: p, opts: opts, rep: &Report{Routine: p.G.Name}}
	v.structural()
	if len(v.rep.Diags) > 0 {
		v.emitProofEvent()
		return v.rep // shape is broken; later checks would index out of range
	}
	v.attribution()
	v.probes()
	if p.Instrumented {
		v.numbering()
		v.placement()
		switch opts.Mode {
		case ModeEnum:
			v.hotPaths()
			v.coldPaths()
		case ModeBoth:
			pre := len(v.rep.Diags)
			v.proofHot()
			v.proofCold()
			proofBad := len(v.rep.Diags) > pre
			mid := len(v.rep.Diags)
			v.hotPaths()
			v.coldPaths()
			enumBad := len(v.rep.Diags) > mid
			// Enumeration only refutes the proof when it was itself
			// exhaustive; the proof always covers all paths, so a
			// clean proof against enum findings is a bug either way.
			switch {
			case enumBad && !proofBad:
				v.diag(RuleDisagree, nil, nil,
					"enumeration found violations the all-paths proof missed")
			case proofBad && !enumBad && !v.rep.Sampled && !v.rep.Truncated:
				v.diag(RuleDisagree, nil, nil,
					"all-paths proof found violations exhaustive enumeration missed")
			}
		default: // ModeProof
			v.proofHot()
			v.proofCold()
		}
	}
	v.emitProofEvent()
	return v.rep
}

// emitProofEvent records the verdict in the decision trace. The detail
// is deterministic (no timing): traces must byte-compare across runs.
func (v *checker) emitProofEvent() {
	if v.opts.Trace == nil || v.opts.Mode == ModeEnum {
		return
	}
	detail := "ok"
	if n := len(v.rep.Diags); n > 0 {
		detail = fmt.Sprintf("%d violation(s)", n)
	}
	v.opts.Trace.Emit(telemetry.Event{
		Unit:    v.opts.TraceUnit,
		Routine: v.p.G.Name,
		Kind:    telemetry.EvProof,
		Flow:    int64(len(v.rep.Diags)),
		Detail:  detail,
	})
}

type checker struct {
	p    *instr.Plan
	opts Options
	rep  *Report
}

func (v *checker) diag(rule Rule, witness cfg.Path, edge *cfg.DAGEdge, format string, args ...interface{}) {
	v.rep.Diags = append(v.rep.Diags, Diagnostic{
		Rule: rule, Routine: v.p.G.Name,
		Message: fmt.Sprintf(format, args...),
		Witness: witness, Edge: edge,
	})
}

// excluded returns the hot-path exclusion set: cold plus disconnected
// edges. This is the single source of truth shared with the
// instrumentation tests.
func excluded(p *instr.Plan) []bool {
	ex := make([]bool, len(p.D.Edges))
	for i := range ex {
		ex[i] = p.Cold[i] || p.Disc[i]
	}
	return ex
}

// structural checks slice shapes and table sizing before anything
// indexes by edge ID.
func (v *checker) structural() {
	p := v.p
	ne := len(p.D.Edges)
	if len(p.Cold) != ne || len(p.Disc) != ne {
		v.diag(RuleShape, nil, nil, "cold/disc masks sized %d/%d, want %d edges",
			len(p.Cold), len(p.Disc), ne)
		return
	}
	if p.Ops != nil && len(p.Ops) != ne {
		v.diag(RuleShape, nil, nil, "ops sized %d, want %d edges", len(p.Ops), ne)
		return
	}
	if !p.Instrumented {
		if p.Reason == "" {
			v.diag(RuleShape, nil, nil, "not instrumented but no reason recorded")
		}
		return
	}
	if p.Num == nil {
		v.diag(RuleShape, nil, nil, "instrumented plan has no numbering")
		return
	}
	if p.N != p.Num.N {
		v.diag(RuleShape, nil, nil, "plan N=%d disagrees with numbering N=%d", p.N, p.Num.N)
	}
	if p.N <= 0 {
		v.diag(RuleShape, nil, nil, "instrumented plan with N=%d", p.N)
	}
	if p.TableSize < p.N {
		v.diag(RuleShape, nil, nil, "table size %d below N=%d", p.TableSize, p.N)
	}
	if p.PoisonCheck && p.TableSize != p.N {
		v.diag(RulePoisonBound, nil, nil,
			"check-based poisoning must not grow the table: size %d, N %d", p.TableSize, p.N)
	}
	if !p.PoisonCheck && p.TableSize > 3*p.N {
		v.diag(RulePoisonBound, nil, nil,
			"free-poisoning table %d exceeds 3N=%d (cold range must fit [N,3N-1])",
			p.TableSize, 3*p.N)
	}
	if p.Ops == nil {
		v.diag(RuleShape, nil, nil, "instrumented plan carries no ops")
	}
}

// attribution checks each edge-attributed path: it must be non-empty,
// name an edge, and the edge must lie on the path.
func (v *checker) attribution() {
	for i, a := range v.p.Attr {
		if len(a.Path) == 0 {
			v.diag(RuleAttr, nil, nil, "attribution %d has empty path", i)
			continue
		}
		if a.Edge == nil {
			v.diag(RuleAttr, a.Path, nil, "attribution %d has no defining edge", i)
			continue
		}
		on := false
		for _, e := range a.Path {
			if e == a.Edge {
				on = true
				break
			}
		}
		if !on {
			v.diag(RuleAttr, a.Path, a.Edge, "attribution %d: defining edge not on path", i)
		}
	}
}

// numbering proves symbolically that edge values form a dense
// bijection from hot paths onto [0, N): path counts are recomputed
// independently, and at every block the non-excluded out-edge values
// must be the prefix sums of their targets' path counts — the
// interval-partition argument of Ball-Larus numbering. No path is
// enumerated.
func (v *checker) numbering() {
	p := v.p
	d := p.D
	ex := excluded(p)

	// Independent path-count recomputation (saturating).
	const sat = int64(1) << 61
	np := make([]int64, len(d.G.Blocks))
	np[d.G.Exit.ID] = 1
	for i := len(d.Topo) - 1; i >= 0; i-- {
		b := d.Topo[i]
		if b == d.G.Exit {
			continue
		}
		var sum int64
		for _, e := range d.Out[b.ID] {
			if ex[e.ID] {
				continue
			}
			sum += np[e.Dst.ID]
			if sum > sat {
				sum = sat
			}
		}
		np[b.ID] = sum
	}
	if np[d.G.Entry.ID] != p.N {
		v.diag(RuleNumbering, nil, nil,
			"recomputed hot path count %d disagrees with plan N=%d", np[d.G.Entry.ID], p.N)
		return
	}

	for _, b := range d.G.Blocks {
		if b == d.G.Exit {
			continue
		}
		edges := make([]*cfg.DAGEdge, 0, len(d.Out[b.ID]))
		for _, e := range d.Out[b.ID] {
			if !ex[e.ID] {
				edges = append(edges, e)
			}
		}
		// Values must be prefix sums in some visit order. Sorting by
		// (value, target path count) reconstructs that order: dead
		// edges (zero paths ahead) tie with the live edge assigned the
		// same value and must come first.
		sort.SliceStable(edges, func(i, j int) bool {
			vi, vj := p.Num.Val[edges[i].ID], p.Num.Val[edges[j].ID]
			if vi != vj {
				return vi < vj
			}
			return np[edges[i].Dst.ID] < np[edges[j].Dst.ID]
		})
		var sum int64
		for _, e := range edges {
			if p.Num.Val[e.ID] != sum {
				v.diag(RuleNumbering, nil, e,
					"edge value %d at %s is not the prefix sum %d of prior path counts: numbers cannot be unique and dense",
					p.Num.Val[e.ID], b, sum)
				return
			}
			sum += np[e.Dst.ID]
			if sum > sat {
				sum = sat
			}
		}
		if sum != np[b.ID] {
			v.diag(RuleNumbering, nil, nil,
				"out-edge path counts at %s sum to %d, want %d", b, sum, np[b.ID])
			return
		}
	}
}

// placement re-derives the event-counting spanning tree from the
// plan's own technique settings and checks that every surviving
// increment is a chord with the derived value, and that excluded edges
// carry only their sanctioned ops (one poison assignment on cold
// edges, nothing on disconnected edges).
func (v *checker) placement() {
	p := v.p
	var w pathnum.Weights
	if p.Tech.SmartNumber {
		w = pathnum.ProfileWeights(p.D)
	} else {
		w = pathnum.StaticWeights(p.D)
	}
	inc, chord := pathnum.EventCount(p.Num, w)
	for _, e := range p.D.Edges {
		ops := p.Ops[e.ID]
		if p.Disc[e.ID] {
			if len(ops) != 0 {
				v.diag(RulePlacement, nil, e, "disconnected edge carries ops %v", ops)
			}
			continue
		}
		if p.Cold[e.ID] {
			if len(ops) != 1 || ops[0].Kind != instr.OpSet {
				v.diag(RulePlacement, nil, e,
					"cold edge must carry exactly one poisoning assignment, has %v", ops)
			} else if p.PoisonCheck && ops[0].V >= 0 {
				v.diag(RuleColdRange, nil, e,
					"check-based poison value %d is not negative", ops[0].V)
			}
			continue
		}
		for _, op := range ops {
			if op.Kind != instr.OpInc {
				continue
			}
			if !chord[e.ID] {
				v.diag(RulePlacement, nil, e,
					"increment r+=%d on a spanning-tree edge (instrumentation must stay on chords)", op.V)
			} else if op.V != inc[e.ID] {
				v.diag(RulePlacement, nil, e,
					"increment r+=%d disagrees with derived chord increment %d", op.V, inc[e.ID])
			}
		}
	}
}

// probes checks a min-cost placement plan against the CFG itself:
// the probe set must be exactly a spanning-tree complement — E-V+2
// probes (the cycle-space dimension, the provable minimum), each on a
// distinct real edge, with the unprobed edges plus the virtual
// exit->entry edge forming a spanning tree — and flow-conservation
// recovery from the probes alone must reproduce the guide profile
// bit for bit. Runs for every routine carrying a probe spec,
// instrumented or not.
func (v *checker) probes() {
	p := v.p
	if p.Placement != instr.PlaceMinCost {
		if p.Probes != nil {
			v.diag(RuleProbes, nil, nil, "probe spec present under %s placement", p.Placement)
		}
		return
	}
	spec := p.Probes
	if spec == nil {
		v.diag(RuleProbes, nil, nil, "min-cost placement without a probe spec")
		return
	}
	g := p.G
	nv, ne := len(g.Blocks), len(g.Edges)
	want := ne - nv + 2
	if g.Entry.ID == g.Exit.ID {
		// The virtual exit->entry edge degenerates to a self-loop: it
		// cannot join the tree, so one more real edge does and one
		// fewer probe is needed (Calls is measured, not recovered).
		want--
	}
	if spec.NumProbes() != want {
		v.diag(RuleProbes, nil, nil,
			"%d probes for %d edges over %d blocks, want the cycle-space minimum %d",
			spec.NumProbes(), ne, nv, want)
		return
	}
	probed := make(map[[2]int]bool, spec.NumProbes())
	for i, pr := range spec.Probes {
		if pr.Index != i {
			v.diag(RuleProbes, nil, nil, "probe %d carries index %d: indices not dense", i, pr.Index)
			return
		}
		if pr.Src < 0 || pr.Src >= nv || pr.Dst < 0 || pr.Dst >= nv ||
			g.FindEdge(g.Blocks[pr.Src], g.Blocks[pr.Dst]) == nil {
			v.diag(RuleProbes, nil, nil, "probe %d sits on %d->%d, not a CFG edge", i, pr.Src, pr.Dst)
			return
		}
		key := [2]int{pr.Src, pr.Dst}
		if probed[key] {
			v.diag(RuleProbes, nil, nil, "duplicate probe on %d->%d", pr.Src, pr.Dst)
			return
		}
		probed[key] = true
	}
	// The unprobed edges plus the virtual exit->entry edge must be a
	// spanning tree: V-1 edges (ensured by the count check above) and
	// no cycle.
	parent := make([]int, nv)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return false
		}
		parent[ra] = rb
		return true
	}
	// Seed the tree with the virtual edge; a no-op self-loop when
	// entry == exit (the unprobed real edges then span on their own).
	comps := nv
	if union(g.Exit.ID, g.Entry.ID) {
		comps--
	}
	for _, e := range g.Edges {
		if probed[[2]int{e.Src.ID, e.Dst.ID}] {
			continue
		}
		if !union(e.Src.ID, e.Dst.ID) {
			v.diag(RuleProbes, nil, nil,
				"unprobed edges form a cycle through %s: its flow is unrecoverable", e)
			return
		}
		comps--
	}
	// Rank argument: the count check above fixed the unprobed set
	// (plus the virtual edge) at V-1 edges, and the union-find proved
	// it acyclic; one component therefore means it is a spanning tree.
	// Flow conservation then determines every tree edge's frequency
	// from the probed chords alone — the cycle space of the augmented
	// graph has dimension E-V+2, so the probe set is both sufficient
	// and minimal. This is a static proof of exact recoverability; no
	// profile needs to be run through the recovery.
	if comps != 1 {
		v.diag(RuleProbes, nil, nil,
			"unprobed edges leave the graph in %d components: flow on the cut edges is unrecoverable", comps)
		return
	}
	// Under enumeration modes, additionally replay the guide profile
	// through the recovery as a dynamic cross-check of the same fact.
	// Only meaningful when the guide profile itself conserves flow.
	if v.opts.Mode != ModeProof {
		if err := g.CheckFlow(); err == nil {
			if err := spec.CheckExact(g); err != nil {
				v.diag(RuleProbes, nil, nil, "recovery not exact on the guide profile: %v", err)
			}
		}
	}
}

// event is one counter update observed while abstractly executing a
// plan along a path.
type event struct {
	index    int64
	poisoned bool // the last assignment came from a cold edge
}

// simulate abstractly executes the plan's ops along a DAG path. sets
// counts register initializations, used for the overcount bound.
func simulate(p *instr.Plan, path cfg.Path) (events []event, sets int) {
	var r int64
	poisoned := false
	for _, e := range path {
		for _, op := range p.Ops[e.ID] {
			switch op.Kind {
			case instr.OpInc:
				r += op.V
			case instr.OpSet:
				r = op.V
				poisoned = p.Cold[e.ID]
				sets++
			case instr.OpCountR:
				events = append(events, event{r, poisoned})
			case instr.OpCountRV:
				events = append(events, event{r + op.V, poisoned})
			case instr.OpCountC:
				events = append(events, event{op.V, false})
			}
		}
	}
	return events, sets
}

// hotPaths checks the counting behaviour on hot paths: exact
// enumeration within budget, otherwise the sampling fallback over
// reconstructed paths (the symbolic bijection from numbering() already
// covers uniqueness and density).
func (v *checker) hotPaths() {
	p := v.p
	if p.N <= int64(v.opts.Budget) {
		v.hotExact()
		return
	}
	v.rep.Sampled = true
	v.hotSampled()
}

// attrKey indexes attributed paths by their rendering.
func attrSet(p *instr.Plan) map[string]bool {
	m := make(map[string]bool, len(p.Attr))
	for _, a := range p.Attr {
		m[a.Path.String()] = true
	}
	return m
}

func (v *checker) hotExact() {
	p := v.p
	attributed := attrSet(p)
	paths := p.D.EnumeratePaths(excluded(p), v.opts.Budget+1)
	if int64(len(paths)) != p.N {
		v.diag(RuleNumbering, nil, nil, "enumerated %d hot paths, plan claims N=%d", len(paths), p.N)
		return
	}
	seen := make(map[int64]cfg.Path, len(paths))
	for _, path := range paths {
		v.rep.HotChecked++
		want, ok := p.Num.PathNumber(path)
		if !ok {
			v.diag(RuleNumbering, path, nil, "hot path rejected by the numbering")
			continue
		}
		events, _ := simulate(p, path)
		if attributed[path.String()] {
			if len(events) != 0 {
				v.diag(RuleHotCount, path, nil, "edge-attributed path fires %d counts", len(events))
			}
			// The attribution's recorded number stands in for the fire.
			if prev, dup := seen[want]; dup {
				v.diag(RuleHotID, path, nil, "number %d already used by %s", want, prev)
			}
			seen[want] = path
			continue
		}
		if len(events) != 1 {
			v.diag(RuleHotCount, path, nil, "hot path fires %d counts, want exactly 1", len(events))
			continue
		}
		ev := events[0]
		if ev.index != want {
			v.diag(RuleHotID, path, nil, "hot path counted at %d, want its number %d", ev.index, want)
			continue
		}
		if prev, dup := seen[ev.index]; dup {
			v.diag(RuleHotID, path, nil, "number %d already used by %s", ev.index, prev)
			continue
		}
		seen[ev.index] = path
	}
	// Density: with exactly N paths all distinct in [0, N), every
	// number must appear; report the first gap as a witness-free diag.
	if int64(len(seen)) == p.N {
		return
	}
	for id := int64(0); id < p.N; id++ {
		if _, ok := seen[id]; !ok {
			v.diag(RuleHotID, nil, nil, "no hot path counts at %d: numbering not dense", id)
			return
		}
	}
}

// hotSampled reconstructs a deterministic stride of path numbers and
// checks each reconstructed path fires once at its own number. The
// path-number sum is re-verified against the reconstruction so a bug
// in Reconstruct cannot vouch for itself.
func (v *checker) hotSampled() {
	p := v.p
	attributed := attrSet(p)
	stride := p.N / int64(v.opts.Samples)
	if stride < 1 {
		stride = 1
	}
	checked := map[int64]bool{}
	sample := func(id int64) {
		if checked[id] {
			return
		}
		checked[id] = true
		path, err := p.Num.Reconstruct(id)
		if err != nil {
			v.diag(RuleNumbering, nil, nil, "cannot reconstruct path %d: %v", id, err)
			return
		}
		if got, ok := p.Num.PathNumber(path); !ok || got != id {
			v.diag(RuleNumbering, path, nil, "reconstructed path sums to %d, want %d", got, id)
			return
		}
		v.rep.HotChecked++
		events, _ := simulate(p, path)
		if attributed[path.String()] {
			if len(events) != 0 {
				v.diag(RuleHotCount, path, nil, "edge-attributed path fires %d counts", len(events))
			}
			return
		}
		if len(events) != 1 {
			v.diag(RuleHotCount, path, nil, "hot path fires %d counts, want exactly 1", len(events))
			return
		}
		if events[0].index != id {
			v.diag(RuleHotID, path, nil, "hot path counted at %d, want its number %d", events[0].index, id)
		}
	}
	// Always include the extreme paths explicitly. The stride loop
	// covers id 0 but misses p.N-1 whenever stride does not divide
	// p.N-1 — notably N = budget+1, where stride sampling alone would
	// silently skip the single max-ID path.
	sample(0)
	sample(p.N - 1)
	for id := int64(0); id < p.N; id += stride {
		sample(id)
	}
}

// coldPaths enumerates executions crossing at least one cold edge
// (pruning pure-hot subtrees, bounded by the budget) and checks the
// poisoning and overcount invariants on each.
func (v *checker) coldPaths() {
	p := v.p
	anyCold := false
	for _, c := range p.Cold {
		if c {
			anyCold = true
			break
		}
	}
	if !anyCold {
		return
	}

	// coldAhead[b]: some cold edge is reachable from b over
	// non-disconnected edges. Walking only where a cold edge was
	// crossed or still can be prunes the pure-hot subtrees, so the
	// budget is spent entirely on cold-crossing paths.
	d := p.D
	coldAhead := make([]bool, len(d.G.Blocks))
	for i := len(d.Topo) - 1; i >= 0; i-- {
		b := d.Topo[i]
		for _, e := range d.Out[b.ID] {
			if p.Disc[e.ID] {
				continue
			}
			if p.Cold[e.ID] || coldAhead[e.Dst.ID] {
				coldAhead[b.ID] = true
				break
			}
		}
	}

	var cur cfg.Path
	budget := v.opts.Budget
	var walk func(b *cfg.Block, crossed bool) bool
	walk = func(b *cfg.Block, crossed bool) bool {
		if b == d.G.Exit {
			if crossed {
				v.checkColdPath(cur)
				budget--
			}
			return budget > 0
		}
		for _, e := range d.Out[b.ID] {
			if p.Disc[e.ID] {
				continue
			}
			if !crossed && !p.Cold[e.ID] && !coldAhead[e.Dst.ID] {
				continue // would end as a pure hot path
			}
			cur = append(cur, e)
			ok := walk(e.Dst, crossed || p.Cold[e.ID])
			cur = cur[:len(cur)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	if !walk(d.G.Entry, false) {
		v.rep.Truncated = true
	}
}

func (v *checker) checkColdPath(path cfg.Path) {
	v.rep.ColdChecked++
	v.coldPathDiags(path)
}

// coldPathDiags runs the concrete per-path poisoning and overcount
// checks, emitting diagnostics only. Shared between the enumerator and
// proof-mode witness resolution (which re-derives the enumerator's
// exact wording from a walked-back path).
func (v *checker) coldPathDiags(path cfg.Path) {
	p := v.p
	events, sets := simulate(p, path)
	unpoisoned := 0
	for _, ev := range events {
		if !ev.poisoned {
			// A deliberate Push overcount or constant count: it may
			// only bump a valid hot number (overcounting, never
			// corruption outside [0, N)).
			if ev.index < 0 || ev.index >= p.N {
				witness := append(cfg.Path(nil), path...)
				v.diag(RuleOvercount, witness, nil,
					"unpoisoned cold-path count at %d outside hot range [0,%d)", ev.index, p.N)
			}
			unpoisoned++
			continue
		}
		if p.PoisonCheck {
			if ev.index >= 0 {
				witness := append(cfg.Path(nil), path...)
				v.diag(RuleColdRange, witness, nil,
					"check-poisoned count at %d, want a negative register", ev.index)
			}
			continue
		}
		if ev.index < p.N || ev.index >= p.TableSize {
			witness := append(cfg.Path(nil), path...)
			v.diag(RuleColdRange, witness, nil,
				"poisoned count at %d escapes the cold region [%d,%d)", ev.index, p.N, p.TableSize)
		}
	}
	// Bounded overcounting: every unpoisoned fire needs its own
	// register initialization; a path with s assignments can fire at
	// most s+1 times in total.
	if unpoisoned > sets+1 || len(events) > sets+1 {
		witness := append(cfg.Path(nil), path...)
		v.diag(RuleOvercount, witness, nil,
			"cold path fires %d counts (%d unpoisoned) with only %d initializations",
			len(events), unpoisoned, sets)
	}
}

// CheckAll verifies every plan in a routine map and returns all
// diagnostics, in routine-name order. The bool reports overall
// success.
func CheckAll(plans map[string]*instr.Plan, opts Options) ([]Diagnostic, bool) {
	names := make([]string, 0, len(plans))
	for n := range plans {
		names = append(names, n)
	}
	sort.Strings(names)
	var diags []Diagnostic
	for _, n := range names {
		rep := CheckWith(plans[n], opts)
		diags = append(diags, rep.Diags...)
	}
	return diags, len(diags) == 0
}
