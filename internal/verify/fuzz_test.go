package verify_test

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/instr"
	"pathprof/internal/verify"
)

// buildFuzzGraph decodes the fuzz input into a small structured CFG: a
// chain of regions, each byte choosing a shape (straight line,
// diamond, triangle, while loop, do-while loop). Structured
// construction keeps every generated graph reducible, mirroring
// cfgtest but driven by the fuzzer's bytes instead of a rand source.
func buildFuzzGraph(data []byte) *cfg.Graph {
	g := cfg.New("fuzz")
	entry := g.AddBlock("entry")
	prev := entry
	regions := len(data)
	if regions > 8 {
		regions = 8 // keep path counts enumerable
	}
	for i := 0; i < regions; i++ {
		switch data[i] % 5 {
		case 0: // straight line
			b := g.AddBlock("")
			cfgtest.Connect(g, prev, b)
			prev = b
		case 1: // diamond
			c := g.AddBlock("")
			l := g.AddBlock("")
			r := g.AddBlock("")
			j := g.AddBlock("")
			cfgtest.Connect(g, prev, c)
			cfgtest.Connect(g, c, l)
			cfgtest.Connect(g, c, r)
			cfgtest.Connect(g, l, j)
			cfgtest.Connect(g, r, j)
			prev = j
		case 2: // triangle (if-then)
			c := g.AddBlock("")
			th := g.AddBlock("")
			j := g.AddBlock("")
			cfgtest.Connect(g, prev, c)
			cfgtest.Connect(g, c, th)
			cfgtest.Connect(g, c, j)
			cfgtest.Connect(g, th, j)
			prev = j
		case 3: // while loop with branching body
			h := g.AddBlock("")
			l := g.AddBlock("")
			r := g.AddBlock("")
			tl := g.AddBlock("")
			cfgtest.Connect(g, prev, h)
			cfgtest.Connect(g, h, l)
			cfgtest.Connect(g, h, r)
			cfgtest.Connect(g, l, tl)
			cfgtest.Connect(g, r, tl)
			cfgtest.Connect(g, tl, h) // back edge
			prev = h
		default: // do-while
			b := g.AddBlock("")
			latch := g.AddBlock("")
			cfgtest.Connect(g, prev, b)
			cfgtest.Connect(g, b, latch)
			cfgtest.Connect(g, latch, b) // back edge
			prev = latch
		}
	}
	exit := g.AddBlock("exit")
	cfgtest.Connect(g, prev, exit)
	g.Entry, g.Exit = entry, exit
	return g
}

// fuzzTechniques picks a technique combination from one byte, cycling
// through the paper's configurations and single-toggle ablations.
func fuzzTechniques(b byte) instr.Techniques {
	base := []func() instr.Techniques{
		instr.PP,
		instr.TPP,
		instr.PPP,
		func() instr.Techniques { t := instr.PPP(); t.FreePoison = false; return t },
		func() instr.Techniques { t := instr.PPP(); t.PushFurther = false; return t },
		func() instr.Techniques { t := instr.PPP(); t.SmartNumber = false; return t },
		func() instr.Techniques {
			t := instr.PPP()
			t.SelfAdjust = false
			t.GlobalCold = false
			return t
		},
		func() instr.Techniques { t := instr.PPP(); t.ObviousPaths = false; return t },
	}
	tech := base[int(b)%len(base)]()
	tech.LowCoverage = false // LC skips routines; exercise the planner instead
	return tech
}

// FuzzProofVsEnum differentially tests the two verifier modes: on
// small graphs, where budgeted enumeration is exhaustive, the
// abstract-interpretation proof and the enumerator must reach the same
// verdict — on pristine planner output and on deterministically
// corrupted plans alike. Enumeration rejecting while the proof accepts
// is always a soundness bug in the proof (it claims to cover all
// paths); the reverse is a completeness bug when enumeration finished.
func FuzzProofVsEnum(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{0xFF})       // entry==exit degenerate routine
	f.Add([]byte{0xFF, 0xFF}) // ... with min-cost probe placement
	f.Add([]byte{1, 3, 2})
	f.Add([]byte{2, 1, 2, 0, 5})
	f.Add([]byte{4, 1, 7, 3, 99, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		var g *cfg.Graph
		if data[0] == 0xFF {
			// The entry block is also the exit, so the virtual
			// exit->entry edge degenerates to a self-loop (the probe
			// planner's MeasuredCalls case).
			g = cfg.New("dgen")
			b0 := g.AddBlock("entry")
			g.Entry, g.Exit = b0, b0
		} else {
			g = buildFuzzGraph(data)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("generated graph invalid: %v", err)
		}
		h := fnv.New64a()
		h.Write(data)
		h.Write([]byte("proof-vs-enum"))
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		cfgtest.Profile(g, rng, 50+rng.Intn(300), 300)

		tech := fuzzTechniques(data[len(data)-1])
		par := instr.DefaultParams()
		if len(data) > 1 && data[len(data)-2]&1 == 1 {
			par.Placement = instr.PlaceMinCost
		}
		p, err := instr.Build(g, tech, par, g.Calls)
		if err != nil {
			return
		}
		// Half the inputs corrupt one op value so the differential
		// covers invalid plans, not just planner output.
		if len(data) > 2 && data[len(data)-3]&1 == 1 && p.Instrumented {
			if sites := mutableOps(p); len(sites) > 0 {
				s := sites[int(data[len(data)-3])%len(sites)]
				p.Ops[s.edge.ID][s.op].V += 1 + int64(data[len(data)-3]%3)
			}
		}

		proof := verify.CheckWith(p, verify.Options{Mode: verify.ModeProof})
		enum := verify.CheckWith(p, verify.Options{Mode: verify.ModeEnum})
		if !enum.OK() && proof.OK() {
			t.Fatalf("enumeration rejects but the all-paths proof accepts:\n%s\n%s", enum, p.Dump())
		}
		if !proof.OK() && enum.OK() && !enum.Sampled && !enum.Truncated {
			t.Fatalf("proof rejects but exhaustive enumeration accepts:\n%s\n%s", proof, p.Dump())
		}
	})
}

// FuzzVerifyPlan generates random small CFGs, plans instrumentation
// under a fuzzed technique mix, and cross-checks the static verifier
// against VM-level op execution: whenever the verifier passes a plan,
// simulating the ops along every hot path must reproduce the symbolic
// path numbers exactly (one count, at the path's own dense ID).
func FuzzVerifyPlan(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{1, 3, 2})
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add([]byte{255, 7, 31, 8})
	f.Add([]byte{4, 4, 1, 1, 9, 16, 25, 36, 49})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		g := buildFuzzGraph(data)
		if err := g.Validate(); err != nil {
			t.Fatalf("generated graph invalid: %v", err)
		}
		// Deterministic profile derived from the input bytes.
		h := fnv.New64a()
		h.Write(data)
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		cfgtest.Profile(g, rng, 50+rng.Intn(300), 300)

		tech := fuzzTechniques(data[len(data)-1])
		par := instr.DefaultParams()
		if len(data) > 1 && data[len(data)-2]&1 == 1 {
			// Half the corpus plans min-cost probe placement, exercising
			// the verifier's probe-set rule (cotree minimality, spanning
			// complement, exact recovery) alongside the path checks.
			par.Placement = instr.PlaceMinCost
		}
		p, err := instr.Build(g, tech, par, g.Calls)
		if err != nil {
			return // e.g. too many paths; not a verifier concern
		}
		rep := verify.Check(p)
		if !rep.OK() {
			t.Fatalf("planner produced a plan the verifier rejects:\n%s\n%s", rep, p.Dump())
		}
		if !p.Instrumented || p.N > 4096 {
			return
		}

		// Verifier-pass => VM semantics agree with symbolic numbers.
		attributed := map[string]bool{}
		for _, a := range p.Attr {
			attributed[a.Path.String()] = true
		}
		ex := make([]bool, len(p.D.Edges))
		for i := range ex {
			ex[i] = p.Cold[i] || p.Disc[i]
		}
		for _, path := range p.D.EnumeratePaths(ex, -1) {
			want, ok := p.Num.PathNumber(path)
			if !ok {
				t.Fatalf("hot path %s rejected by numbering", path)
			}
			idx, counts := p.SimulatePath(path)
			if attributed[path.String()] {
				if counts != 0 {
					t.Fatalf("attributed path %s fired %d counts", path, counts)
				}
				continue
			}
			if counts != 1 || idx != want {
				t.Fatalf("verifier passed but VM simulation of %s fired %d counts at %d, want 1 at %d\n%s",
					path, counts, idx, want, p.Dump())
			}
		}
	})
}
