package lower_test

import (
	"strings"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/lower"
)

func compile(t *testing.T, src string, opts lower.Options) *ir.Program {
	t.Helper()
	p, err := lower.Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func mustCFG(t *testing.T, f *ir.Func) *cfg.Graph {
	t.Helper()
	g, err := f.CFG()
	if err != nil {
		t.Fatalf("CFG %s: %v", f.Name, err)
	}
	return g
}

func TestBasicShapes(t *testing.T) {
	p := compile(t, `
var g = 3;
array a[4];
func f(x, y) { return x + y * g; }
func main() {
	a[1] = f(2, 3);
	return a[1];
}`, lower.Options{})
	if len(p.Funcs) != 2 || p.Func("f").NParams != 2 {
		t.Fatalf("bad program shape")
	}
	if p.GlobalInit[p.GlobalIndex["g"]] != 3 {
		t.Error("global init lost")
	}
	if p.Arrays[p.ArrayIndex["a"]].Size != 4 {
		t.Error("array size lost")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIfElseCFGShape(t *testing.T) {
	p := compile(t, `
func f(x) {
	var r = 0;
	if (x > 0) { r = 1; } else { r = 2; }
	return r;
}`, lower.Options{})
	g := mustCFG(t, p.Func("f"))
	g.Analyze()
	if len(g.Loops()) != 0 {
		t.Error("if/else produced loops")
	}
	// There must be exactly one branch block (two out-edges).
	branches := 0
	for _, b := range g.Blocks {
		if len(b.Out) == 2 {
			branches++
		}
	}
	if branches != 1 {
		t.Errorf("branch blocks = %d, want 1", branches)
	}
}

func TestLoopMetadata(t *testing.T) {
	p := compile(t, `
func f() {
	var s = 0;
	for (var i = 0; i < 4; i = i + 1) { s = s + i; }
	while (s > 0) { s = s - 3; }
	return s;
}`, lower.Options{})
	f := p.Func("f")
	if len(f.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(f.Loops))
	}
	if f.Loops[0].ID != "f#1" || f.Loops[0].Kind != "for" {
		t.Errorf("loop 0 = %+v", f.Loops[0])
	}
	if f.Loops[1].ID != "f#2" || f.Loops[1].Kind != "while" {
		t.Errorf("loop 1 = %+v", f.Loops[1])
	}
	// The recorded headers must be actual loop headers in the CFG.
	g := mustCFG(t, f)
	g.Analyze()
	headers := map[int]bool{}
	for _, l := range g.Loops() {
		headers[l.Header.ID] = true
	}
	for _, li := range f.Loops {
		if !headers[li.Header] {
			t.Errorf("loop %s header b%d is not a CFG loop header", li.ID, li.Header)
		}
	}
}

func TestUnrollStructure(t *testing.T) {
	src := `
func f(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}`
	plain := compile(t, src, lower.Options{})
	unrolled := compile(t, src, lower.Options{Unroll: map[string]int{"f#1": 4}})
	pf, uf := plain.Func("f"), unrolled.Func("f")
	if uf.Size() <= pf.Size() {
		t.Errorf("unrolled size %d <= plain %d", uf.Size(), pf.Size())
	}
	// Exactly one back edge either way: copies share the single header.
	backs := func(f *ir.Func) int {
		g := mustCFG(t, f)
		g.Analyze()
		n := 0
		for _, e := range g.Edges {
			if e.Back {
				n++
			}
		}
		return n
	}
	if b := backs(uf); b != 1 {
		t.Errorf("unrolled back edges = %d, want 1", b)
	}
	// The unrolled body has four exit tests: four branch blocks inside
	// the loop against one in the plain version.
	branchCount := func(f *ir.Func) int {
		n := 0
		for _, b := range f.Blocks {
			if b.Term.Kind == ir.Branch {
				n++
			}
		}
		return n
	}
	if got := branchCount(uf) - branchCount(pf); got != 3 {
		t.Errorf("extra exit tests = %d, want 3", got)
	}
}

func TestBreakContinueInUnrolledLoop(t *testing.T) {
	src := `
func f() {
	var s = 0;
	for (var i = 0; i < 40; i = i + 1) {
		if (i % 7 == 3) { continue; }
		if (i == 33) { break; }
		s = s + i;
	}
	return s;
}`
	for _, factor := range []int{1, 2, 4} {
		p := compile(t, src, lower.Options{Unroll: map[string]int{"f#1": factor}})
		if err := p.Validate(); err != nil {
			t.Fatalf("factor %d: %v", factor, err)
		}
	}
}

func TestShortCircuitValue(t *testing.T) {
	p := compile(t, `
func f(a, b) {
	var v = a > 0 && b > 0 || a < 0 - 9;
	return v;
}`, lower.Options{})
	// Short-circuit lowering introduces branches.
	branches := 0
	for _, b := range p.Func("f").Blocks {
		if b.Term.Kind == ir.Branch {
			branches++
		}
	}
	if branches < 3 {
		t.Errorf("short-circuit produced %d branches, want >= 3", branches)
	}
}

func TestNestedScopesAndShadowing(t *testing.T) {
	// Inner blocks may re-declare names; the outer binding survives.
	p := compile(t, `
func f() {
	var x = 1;
	if (x == 1) { var x = 2; x = x + 1; }
	return x;
}`, lower.Options{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoweringErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`func f() { return x; }`, "undefined variable"},
		{`func f() { y = 3; }`, "undefined variable"},
		{`func f() { a[0] = 1; }`, "undefined array"},
		{`func f() { return a[0]; }`, "undefined array"},
		{`func f() { return g(1); }`, "undefined function"},
		{`func f(a) { return a; } func main() { return f(1, 2); }`, "takes 1 arguments"},
		{`func f() { var a = 1; var a = 2; }`, "duplicate local"},
		{`var g = 1; var g = 2;`, "duplicate global"},
		{`array a[2]; array a[3];`, "duplicate array"},
		{`func f() { } func f() { }`, "duplicate function"},
		{`func f() { break; }`, "break outside loop"},
		{`func f() { continue; }`, "continue outside loop"},
		{`func f() { while (1) { } }`, "cannot return"},
	}
	for _, c := range cases {
		_, err := lower.Compile(c.src, lower.Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestDeadCodeAfterReturnPruned(t *testing.T) {
	p := compile(t, `
func f() {
	return 1;
	return 2;
}`, lower.Options{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// All blocks reachable (pruning removed the dead tail).
	g := mustCFG(t, p.Func("f"))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWhileOneFoldsToJump(t *testing.T) {
	p := compile(t, `
func f() {
	var i = 0;
	while (1) {
		i = i + 1;
		if (i > 5) { break; }
	}
	return i;
}`, lower.Options{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
