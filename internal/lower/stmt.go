package lower

import (
	"fmt"

	"pathprof/internal/ir"
	"pathprof/internal/lang"
)

func (l *lowerer) lowerBlock(b *lang.BlockStmt) error {
	l.pushScope()
	defer l.popScope()
	for _, s := range b.Stmts {
		if l.dead {
			// Unreachable code after return/break/continue: lower into
			// a fresh block that pruning removes, keeping the lowering
			// simple and the diagnostics (undefined names etc.) alive.
			l.cur = l.newBlock("")
			l.dead = false
		}
		if err := l.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (l *lowerer) lowerStmt(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.BlockStmt:
		return l.lowerBlock(s)
	case *lang.LocalStmt:
		v, err := l.lowerExpr(s.Init)
		if err != nil {
			return err
		}
		r, err := l.declare(s.Name, s.Line)
		if err != nil {
			return err
		}
		l.emit(ir.Instr{Op: ir.Mov, Dst: r, A: v})
		return nil
	case *lang.AssignStmt:
		v, err := l.lowerExpr(s.Val)
		if err != nil {
			return err
		}
		reg, glob, isReg, ok := l.resolve(s.Name)
		if !ok {
			return l.errf(s.Line, "undefined variable %q", s.Name)
		}
		if isReg {
			l.emit(ir.Instr{Op: ir.Mov, Dst: reg, A: v})
		} else {
			l.emit(ir.Instr{Op: ir.StoreG, Sym: glob, A: v})
		}
		return nil
	case *lang.StoreStmt:
		ai, ok := l.prog.ArrayIndex[s.Name]
		if !ok {
			return l.errf(s.Line, "undefined array %q", s.Name)
		}
		idx, err := l.lowerExpr(s.Idx)
		if err != nil {
			return err
		}
		val, err := l.lowerExpr(s.Val)
		if err != nil {
			return err
		}
		l.emit(ir.Instr{Op: ir.StoreA, Sym: ai, A: idx, B: val})
		return nil
	case *lang.IfStmt:
		return l.lowerIf(s)
	case *lang.WhileStmt:
		return l.lowerWhile(s)
	case *lang.ForStmt:
		return l.lowerFor(s)
	case *lang.ReturnStmt:
		if s.Val != nil {
			v, err := l.lowerExpr(s.Val)
			if err != nil {
				return err
			}
			l.emit(ir.Instr{Op: ir.Mov, Dst: l.retReg, A: v})
		}
		l.cur.Term = ir.Term{Kind: ir.Jump, To: l.fn.Exit}
		l.dead = true
		return nil
	case *lang.BreakStmt:
		if len(l.loops) == 0 {
			return l.errf(s.Line, "break outside loop")
		}
		l.cur.Term = ir.Term{Kind: ir.Jump, To: l.loops[len(l.loops)-1].breakTo.Index}
		l.dead = true
		return nil
	case *lang.ContinueStmt:
		if len(l.loops) == 0 {
			return l.errf(s.Line, "continue outside loop")
		}
		l.cur.Term = ir.Term{Kind: ir.Jump, To: l.loops[len(l.loops)-1].continueTo.Index}
		l.dead = true
		return nil
	case *lang.PrintStmt:
		v, err := l.lowerExpr(s.Val)
		if err != nil {
			return err
		}
		l.emit(ir.Instr{Op: ir.Print, A: v})
		return nil
	case *lang.ExprStmt:
		_, err := l.lowerExpr(s.X)
		return err
	}
	return fmt.Errorf("lower: unknown statement %T", s)
}

func (l *lowerer) lowerIf(s *lang.IfStmt) error {
	thenB := l.newBlock("")
	joinB := l.newBlock("")
	elseB := joinB
	if s.Else != nil {
		elseB = l.newBlock("")
	}
	if err := l.lowerCond(s.Cond, thenB, elseB); err != nil {
		return err
	}
	l.cur = thenB
	if err := l.lowerBlock(s.Then); err != nil {
		return err
	}
	if !l.dead {
		l.cur.Term = ir.Term{Kind: ir.Jump, To: joinB.Index}
	}
	l.dead = false
	if s.Else != nil {
		l.cur = elseB
		if err := l.lowerStmt(s.Else); err != nil {
			return err
		}
		if !l.dead {
			l.cur.Term = ir.Term{Kind: ir.Jump, To: joinB.Index}
		}
		l.dead = false
	}
	l.cur = joinB
	return nil
}

func (l *lowerer) loopID() string {
	l.loopSeq++
	return fmt.Sprintf("%s#%d", l.src.Name, l.loopSeq)
}

func (l *lowerer) lowerWhile(s *lang.WhileStmt) error {
	id := l.loopID()
	header := l.newBlock("")
	l.jumpTo(header)
	l.fn.Loops = append(l.fn.Loops, ir.LoopInfo{ID: id, Header: header.Index, Kind: "while"})
	bodyB := l.newBlock("")
	exitB := l.newBlock("")
	if err := l.lowerCond(s.Cond, bodyB, exitB); err != nil {
		return err
	}
	l.cur = bodyB
	l.loops = append(l.loops, loopCtx{breakTo: exitB, continueTo: header})
	if err := l.lowerBlock(s.Body); err != nil {
		return err
	}
	l.loops = l.loops[:len(l.loops)-1]
	if !l.dead {
		l.cur.Term = ir.Term{Kind: ir.Jump, To: header.Index}
	}
	l.dead = false
	l.cur = exitB
	return nil
}

// lowerFor emits for (init; cond; post) body, replicated by the unroll
// plan's factor for this loop: copies are separated by exit tests, and
// only the last copy jumps back to the header, so unrolling lengthens
// the acyclic paths through the loop (Section 7.3).
func (l *lowerer) lowerFor(s *lang.ForStmt) error {
	id := l.loopID()
	factor := l.opts.Unroll[id]
	if factor < 1 {
		factor = 1
	}
	l.pushScope() // scope for the init declaration
	defer l.popScope()
	if s.Init != nil {
		if err := l.lowerStmt(s.Init); err != nil {
			return err
		}
	}
	header := l.newBlock("")
	l.jumpTo(header)
	l.fn.Loops = append(l.fn.Loops, ir.LoopInfo{ID: id, Header: header.Index, Kind: "for"})
	exitB := l.newBlock("")

	// Emit each body copy; copy k falls through to copy k+1 via an
	// exit test, and the last copy jumps back to the header.
	for k := 0; k < factor; k++ {
		bodyB := l.newBlock("")
		if s.Cond != nil {
			if err := l.lowerCond(s.Cond, bodyB, exitB); err != nil {
				return err
			}
		} else {
			l.jumpTo(bodyB)
			l.cur = bodyB
		}
		if s.Cond != nil {
			l.cur = bodyB
		}
		postB := l.newBlock("")
		l.loops = append(l.loops, loopCtx{breakTo: exitB, continueTo: postB})
		if err := l.lowerBlock(s.Body); err != nil {
			return err
		}
		l.loops = l.loops[:len(l.loops)-1]
		if !l.dead {
			l.cur.Term = ir.Term{Kind: ir.Jump, To: postB.Index}
		}
		l.dead = false
		l.cur = postB
		if s.Post != nil {
			if err := l.lowerStmt(s.Post); err != nil {
				return err
			}
		}
		if k == factor-1 {
			l.cur.Term = ir.Term{Kind: ir.Jump, To: header.Index}
		}
		// Otherwise the next iteration's lowerCond terminates l.cur.
	}
	l.dead = false
	l.cur = exitB
	return nil
}

// lowerCond lowers a boolean condition as control flow with
// short-circuit evaluation, terminating the current block.
func (l *lowerer) lowerCond(e lang.Expr, thenB, elseB *ir.Block) error {
	switch e := e.(type) {
	case *lang.NumExpr:
		// Constant conditions fold to jumps, so while(1){...break;...}
		// produces a clean CFG and while(1){} is caught structurally.
		if e.Val != 0 {
			l.jumpTo(thenB)
		} else {
			l.jumpTo(elseB)
		}
		return nil
	case *lang.BinExpr:
		switch e.Op {
		case "&&":
			mid := l.newBlock("")
			if err := l.lowerCond(e.L, mid, elseB); err != nil {
				return err
			}
			l.cur = mid
			return l.lowerCond(e.R, thenB, elseB)
		case "||":
			mid := l.newBlock("")
			if err := l.lowerCond(e.L, thenB, mid); err != nil {
				return err
			}
			l.cur = mid
			return l.lowerCond(e.R, thenB, elseB)
		}
	case *lang.UnaryExpr:
		if e.Op == "!" {
			return l.lowerCond(e.X, elseB, thenB)
		}
	}
	v, err := l.lowerExpr(e)
	if err != nil {
		return err
	}
	l.cur.Term = ir.Term{Kind: ir.Branch, Cond: v, To: thenB.Index, Else: elseB.Index}
	return nil
}
