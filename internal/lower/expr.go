package lower

import (
	"pathprof/internal/ir"
	"pathprof/internal/lang"
)

var binOps = map[string]ir.Opcode{
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.Div, "%": ir.Mod,
	"==": ir.Eq, "!=": ir.Ne, "<": ir.Lt, "<=": ir.Le, ">": ir.Gt,
	">=": ir.Ge, "&": ir.BAnd, "|": ir.BOr, "^": ir.BXor,
	"<<": ir.Shl, ">>": ir.Shr,
}

// lowerExpr emits code computing e into a fresh register.
func (l *lowerer) lowerExpr(e lang.Expr) (int, error) {
	switch e := e.(type) {
	case *lang.NumExpr:
		r := l.newReg()
		l.emit(ir.Instr{Op: ir.Const, Dst: r, Imm: e.Val})
		return r, nil
	case *lang.VarExpr:
		reg, glob, isReg, ok := l.resolve(e.Name)
		if !ok {
			return 0, l.errf(e.Line, "undefined variable %q", e.Name)
		}
		if isReg {
			return reg, nil
		}
		r := l.newReg()
		l.emit(ir.Instr{Op: ir.LoadG, Dst: r, Sym: glob})
		return r, nil
	case *lang.IndexExpr:
		ai, ok := l.prog.ArrayIndex[e.Name]
		if !ok {
			return 0, l.errf(e.Line, "undefined array %q", e.Name)
		}
		idx, err := l.lowerExpr(e.Idx)
		if err != nil {
			return 0, err
		}
		r := l.newReg()
		l.emit(ir.Instr{Op: ir.LoadA, Dst: r, Sym: ai, A: idx})
		return r, nil
	case *lang.CallExpr:
		fi, ok := l.prog.FuncIndex[e.Name]
		if !ok {
			return 0, l.errf(e.Line, "undefined function %q", e.Name)
		}
		if want := l.prog.Funcs[fi].NParams; want != len(e.Args) {
			return 0, l.errf(e.Line, "%s takes %d arguments, got %d", e.Name, want, len(e.Args))
		}
		args := make([]int, len(e.Args))
		for i, a := range e.Args {
			v, err := l.lowerExpr(a)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		r := l.newReg()
		l.emit(ir.Instr{Op: ir.Call, Dst: r, Sym: fi, Args: args})
		return r, nil
	case *lang.UnaryExpr:
		x, err := l.lowerExpr(e.X)
		if err != nil {
			return 0, err
		}
		r := l.newReg()
		if e.Op == "-" {
			l.emit(ir.Instr{Op: ir.Neg, Dst: r, A: x})
		} else {
			l.emit(ir.Instr{Op: ir.Not, Dst: r, A: x})
		}
		return r, nil
	case *lang.BinExpr:
		if e.Op == "&&" || e.Op == "||" {
			return l.lowerShortCircuit(e)
		}
		a, err := l.lowerExpr(e.L)
		if err != nil {
			return 0, err
		}
		b, err := l.lowerExpr(e.R)
		if err != nil {
			return 0, err
		}
		r := l.newReg()
		l.emit(ir.Instr{Op: binOps[e.Op], Dst: r, A: a, B: b})
		return r, nil
	}
	return 0, l.errf(0, "unknown expression %T", e)
}

// lowerShortCircuit materializes a && / || value through control flow,
// producing 0 or 1 in a result register.
func (l *lowerer) lowerShortCircuit(e *lang.BinExpr) (int, error) {
	r := l.newReg()
	thenB := l.newBlock("")
	elseB := l.newBlock("")
	joinB := l.newBlock("")
	if err := l.lowerCond(e, thenB, elseB); err != nil {
		return 0, err
	}
	l.cur = thenB
	l.emit(ir.Instr{Op: ir.Const, Dst: r, Imm: 1})
	l.cur.Term = ir.Term{Kind: ir.Jump, To: joinB.Index}
	l.cur = elseB
	l.emit(ir.Instr{Op: ir.Const, Dst: r, Imm: 0})
	l.cur.Term = ir.Term{Kind: ir.Jump, To: joinB.Index}
	l.cur = joinB
	return r, nil
}
