// Package lower translates the mini-C AST (package lang) into the IR
// (package ir). Lowering is where loop unrolling happens: the unroll
// plan (computed by the profile-guided optimizer from a prior run's
// edge profile) maps syntactic loop IDs to replication factors, and the
// lowering emits the unrolled shape directly — body copies separated by
// exit tests, with a single back edge after the last copy — which is
// what lengthens acyclic paths the way the paper's Section 7.3
// describes.
package lower

import (
	"fmt"

	"pathprof/internal/ir"
	"pathprof/internal/lang"
)

// Options controls lowering.
type Options struct {
	// Unroll maps loop IDs ("func#ordinal") to replication factors.
	// Missing entries and factors < 2 mean no unrolling. Only for
	// loops are unrolled, matching Scale's behaviour.
	Unroll map[string]int
}

// Compile parses and lowers src in one step.
func Compile(src string, opts Options) (*ir.Program, error) {
	astProg, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(astProg, opts)
}

// Lower translates the AST into IR and validates the result.
func Lower(astProg *lang.Program, opts Options) (*ir.Program, error) {
	prog := &ir.Program{
		FuncIndex:   map[string]int{},
		GlobalIndex: map[string]int{},
		ArrayIndex:  map[string]int{},
	}
	for _, v := range astProg.Vars {
		if _, dup := prog.GlobalIndex[v.Name]; dup {
			return nil, fmt.Errorf("line %d: duplicate global %q", v.Line, v.Name)
		}
		prog.GlobalIndex[v.Name] = len(prog.Globals)
		prog.Globals = append(prog.Globals, v.Name)
		prog.GlobalInit = append(prog.GlobalInit, v.Init)
	}
	for _, a := range astProg.Arrays {
		if _, dup := prog.ArrayIndex[a.Name]; dup {
			return nil, fmt.Errorf("line %d: duplicate array %q", a.Line, a.Name)
		}
		prog.ArrayIndex[a.Name] = len(prog.Arrays)
		prog.Arrays = append(prog.Arrays, ir.Array{Name: a.Name, Size: a.Size})
	}
	for _, f := range astProg.Funcs {
		if _, dup := prog.FuncIndex[f.Name]; dup {
			return nil, fmt.Errorf("line %d: duplicate function %q", f.Line, f.Name)
		}
		prog.FuncIndex[f.Name] = len(prog.Funcs)
		// Pre-create the Func so recursive calls can check arity
		// before the callee's body is lowered.
		prog.Funcs = append(prog.Funcs, &ir.Func{Name: f.Name, NParams: len(f.Params)})
	}
	for i, f := range astProg.Funcs {
		lf := &lowerer{prog: prog, opts: opts, src: f, fn: prog.Funcs[i]}
		if err := lf.lowerFunc(); err != nil {
			return nil, err
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// loopCtx tracks break/continue targets of the innermost loop.
type loopCtx struct {
	breakTo    *ir.Block
	continueTo *ir.Block
}

type lowerer struct {
	prog *ir.Program
	opts Options
	src  *lang.FuncDecl

	fn      *ir.Func
	cur     *ir.Block
	scopes  []map[string]int
	loops   []loopCtx
	retReg  int
	loopSeq int
	dead    bool // current position is unreachable (after return/break)
}

func (l *lowerer) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("%s: line %d: %s", l.src.Name, line, fmt.Sprintf(format, args...))
}

func (l *lowerer) newReg() int {
	r := l.fn.NRegs
	l.fn.NRegs++
	return r
}

func (l *lowerer) emit(in ir.Instr) {
	l.cur.Instrs = append(l.cur.Instrs, in)
}

func (l *lowerer) newBlock(name string) *ir.Block {
	return l.fn.NewBlock(name)
}

// setJump terminates the current block with a jump to b and makes b
// current.
func (l *lowerer) jumpTo(b *ir.Block) {
	l.cur.Term = ir.Term{Kind: ir.Jump, To: b.Index}
	l.cur = b
}

func (l *lowerer) pushScope() { l.scopes = append(l.scopes, map[string]int{}) }
func (l *lowerer) popScope()  { l.scopes = l.scopes[:len(l.scopes)-1] }

func (l *lowerer) declare(name string, line int) (int, error) {
	s := l.scopes[len(l.scopes)-1]
	if _, dup := s[name]; dup {
		return 0, l.errf(line, "duplicate local %q", name)
	}
	r := l.newReg()
	s[name] = r
	return r, nil
}

// resolve finds name as a local/param register, or as a global index.
func (l *lowerer) resolve(name string) (reg int, global int, isReg bool, ok bool) {
	for i := len(l.scopes) - 1; i >= 0; i-- {
		if r, found := l.scopes[i][name]; found {
			return r, 0, true, true
		}
	}
	if g, found := l.prog.GlobalIndex[name]; found {
		return 0, g, false, true
	}
	return 0, 0, false, false
}

func (l *lowerer) lowerFunc() error {
	entry := l.newBlock("entry")
	l.cur = entry
	l.fn.Entry = entry.Index
	l.pushScope()
	for _, p := range l.src.Params {
		if _, err := l.declare(p, l.src.Line); err != nil {
			return err
		}
	}
	l.retReg = l.newReg()
	l.emit(ir.Instr{Op: ir.Const, Dst: l.retReg, Imm: 0})

	exit := l.newBlock("exit")
	exit.Term = ir.Term{Kind: ir.Ret, Ret: l.retReg}
	l.fn.Exit = exit.Index

	// Body starts in its own block so the entry has no predecessors
	// even if the body begins with a loop header.
	body := l.newBlock("")
	l.jumpTo(body)
	if err := l.lowerBlock(l.src.Body); err != nil {
		return err
	}
	if !l.dead {
		l.cur.Term = ir.Term{Kind: ir.Jump, To: exit.Index}
	}
	l.popScope()

	return l.prune()
}

// prune removes blocks unreachable from the entry and remaps indices.
// It fails if the exit became unreachable (the function can never
// return), which the workloads must not do.
func (l *lowerer) prune() error {
	f := l.fn
	reach := make([]bool, len(f.Blocks))
	stack := []int{f.Entry}
	reach[f.Entry] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t := f.Blocks[i].Term
		var targets []int
		switch t.Kind {
		case ir.Jump:
			targets = []int{t.To}
		case ir.Branch:
			targets = []int{t.To, t.Else}
		}
		for _, n := range targets {
			if !reach[n] {
				reach[n] = true
				stack = append(stack, n)
			}
		}
	}
	if !reach[f.Exit] {
		return fmt.Errorf("%s: function cannot return (infinite loop with no exit)", f.Name)
	}
	remap := make([]int, len(f.Blocks))
	var kept []*ir.Block
	for i, b := range f.Blocks {
		if reach[i] {
			remap[i] = len(kept)
			b.Index = len(kept)
			kept = append(kept, b)
		} else {
			remap[i] = -1
		}
	}
	for _, b := range kept {
		switch b.Term.Kind {
		case ir.Jump:
			b.Term.To = remap[b.Term.To]
		case ir.Branch:
			b.Term.To = remap[b.Term.To]
			b.Term.Else = remap[b.Term.Else]
		}
	}
	f.Blocks = kept
	f.Entry = remap[f.Entry]
	f.Exit = remap[f.Exit]
	var loops []ir.LoopInfo
	for _, li := range f.Loops {
		if remap[li.Header] >= 0 {
			li.Header = remap[li.Header]
			loops = append(loops, li)
		}
	}
	f.Loops = loops
	return nil
}
