package eval_test

import (
	"math/rand"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/eval"
	"pathprof/internal/flow"
	"pathprof/internal/instr"
	"pathprof/internal/profile"
)

// buildRoutine makes an eval.Routine from a graph: it applies the
// given technique, simulates the given ground-truth paths through the
// plan's instrumentation, and fills a counter table accordingly.
func buildRoutine(t *testing.T, g *cfg.Graph, tech instr.Techniques, truth []cfgtest.PathCount) *eval.Routine {
	t.Helper()
	plan, err := instr.Build(g, tech, instr.DefaultParams(), g.Calls)
	if err != nil {
		t.Fatal(err)
	}
	pp := profile.NewPathProfile(g.Name)
	var table *profile.Table
	if plan.Instrumented {
		kind := profile.ArrayTable
		if plan.Hash {
			kind = profile.HashTable
		}
		table = profile.NewTable(kind, plan.N, plan.TableSize)
	}
	for _, pc := range truth {
		// Re-map the path onto the plan's DAG (same structure, fresh
		// edge objects).
		mapped := remap(t, plan.D, pc.Path)
		pp.Add(mapped, pc.Count)
		if table != nil {
			if idx, fired := plan.SimulatePath(mapped); fired > 0 {
				for i := int64(0); i < pc.Count; i++ {
					table.Inc(idx)
				}
			}
		}
	}
	return &eval.Routine{Name: g.Name, Plan: plan, Table: table, Truth: pp}
}

func remap(t *testing.T, d *cfg.DAG, p cfg.Path) cfg.Path {
	t.Helper()
	out := make(cfg.Path, 0, len(p))
	for _, e := range p {
		var ne *cfg.DAGEdge
		switch e.Kind {
		case cfg.RealEdge:
			ne = d.Real(d.G.Blocks[e.Src.ID], d.G.Blocks[e.Dst.ID])
		case cfg.EntryDummy:
			ne = d.EntryDummyFor(d.G.Blocks[e.Dst.ID])
		case cfg.ExitDummy:
			ne = d.ExitDummyFor(d.G.Blocks[e.Src.ID])
		}
		if ne == nil {
			t.Fatalf("cannot remap edge %s", e)
		}
		out = append(out, ne)
	}
	return out
}

// groundTruth simulates walks and returns the graph with a consistent
// profile plus the exact path counts.
func groundTruth(seed int64, size, walks int) (*cfg.Graph, []cfgtest.PathCount) {
	rng := rand.New(rand.NewSource(seed))
	g := cfgtest.Random(rng, size)
	d, err := cfg.BuildDAG(g)
	if err != nil {
		panic(err)
	}
	pcs := cfgtest.ProfilePaths(g, d, rng, walks, 300)
	return g, pcs
}

func TestPPEvaluatesPerfectly(t *testing.T) {
	g, truth := groundTruth(3, 10, 200)
	r := buildRoutine(t, g, instr.PP(), truth)
	p := eval.New([]*eval.Routine{r})

	hot := p.HotPaths(0.00125)
	if len(hot) == 0 {
		t.Fatal("no hot paths")
	}
	est := p.EstimatedProfile(0.00125)
	if acc := eval.Accuracy(hot, est); acc != 1 {
		t.Errorf("PP accuracy = %v, want 1", acc)
	}
	cov := p.Coverage()
	if cov.Value() < 0.999 {
		t.Errorf("PP coverage = %v, want ~1 (%+v)", cov.Value(), cov)
	}
	if cov.Overcount != 0 {
		t.Errorf("PP overcount = %d, want 0", cov.Overcount)
	}
	frac := p.InstrumentedFraction()
	if frac.Total() != 1 {
		t.Errorf("PP instrumented fraction = %v, want 1", frac.Total())
	}
}

func TestEdgeBaselineBounds(t *testing.T) {
	g, truth := groundTruth(7, 12, 300)
	r := buildRoutine(t, g, instr.PP(), truth)
	p := eval.New([]*eval.Routine{r})
	hot := p.HotPaths(0.00125)
	accEdge := eval.Accuracy(hot, p.EdgeEstimatedProfile(0.00125))
	accPP := eval.Accuracy(hot, p.EstimatedProfile(0.00125))
	if accEdge > accPP {
		t.Errorf("edge accuracy %v exceeds PP accuracy %v", accEdge, accPP)
	}
	edgeCov := p.EdgeCoverage().Value()
	ppCov := p.Coverage().Value()
	if edgeCov > ppCov+1e-9 {
		t.Errorf("edge coverage %v exceeds PP coverage %v", edgeCov, ppCov)
	}
	if edgeCov < 0 || edgeCov > 1 {
		t.Errorf("edge coverage out of range: %v", edgeCov)
	}
}

func TestHotPathsThreshold(t *testing.T) {
	g, truth := groundTruth(11, 10, 400)
	r := buildRoutine(t, g, instr.PP(), truth)
	p := eval.New([]*eval.Routine{r})
	total := p.TotalFlow()
	for _, theta := range []float64{0.00125, 0.01, 0.1} {
		hot := p.HotPaths(theta)
		for _, h := range hot {
			if float64(h.Flow) < theta*float64(total) {
				t.Errorf("theta %v: path %s flow %d below threshold", theta, h.Key, h.Flow)
			}
		}
		// Sorted hottest first.
		for i := 1; i < len(hot); i++ {
			if hot[i].Flow > hot[i-1].Flow {
				t.Errorf("hot paths not sorted at %d", i)
			}
		}
	}
	n1, s1 := p.HotStats(0.00125)
	n2, s2 := p.HotStats(0.01)
	if n2 > n1 || s2 > s1 {
		t.Errorf("hot stats not monotone: (%d,%v) vs (%d,%v)", n1, s1, n2, s2)
	}
}

func TestAccuracyMatching(t *testing.T) {
	// Hand-rolled: two actual hot paths; estimates rank a phantom
	// first, then one real one. With |H|=2 picks, accuracy = matched
	// flow / total hot flow.
	hot := []eval.HotPath{
		{Key: "f|a", Flow: 60},
		{Key: "f|b", Flow: 40},
	}
	est := []eval.Estimate{
		{Key: "f|phantom", Flow: 100},
		{Key: "f|b", Flow: 90},
		{Key: "f|a", Flow: 80},
	}
	if acc := eval.Accuracy(hot, est); acc != 0.4 {
		t.Errorf("accuracy = %v, want 0.4", acc)
	}
	if acc := eval.Accuracy(nil, est); acc != 1 {
		t.Errorf("accuracy with empty hot set = %v, want 1", acc)
	}
}

func TestCoveragePenalizesOvercount(t *testing.T) {
	// A routine with a cold edge under PPP: executions through the
	// cold edge that record hot numbers must surface as overcount.
	g, truth := groundTruth(17, 14, 500)
	tech := instr.PPP()
	tech.LowCoverage = false
	r := buildRoutine(t, g, tech, truth)
	p := eval.New([]*eval.Routine{r})
	cov := p.Coverage()
	if cov.Value() < 0 || cov.Value() > 1 {
		t.Fatalf("coverage out of range: %+v", cov)
	}
	if cov.Total <= 0 {
		t.Fatalf("no total flow")
	}
	// Identity: Measured + DefUninstr <= Total + Overcount tolerance.
	if cov.Measured > cov.Total {
		t.Errorf("measured %d exceeds total %d", cov.Measured, cov.Total)
	}
}

func TestUninstrumentedFallsBackToPotential(t *testing.T) {
	// A heavily biased diamond has near-perfect edge coverage, so PPP
	// skips it (LC); the estimated profile must fall back to potential
	// flow so accuracy is still computable (the paper's swim/mgrid
	// case, Section 6.1).
	g := cfgtest.Diamond()
	byName := map[string]*cfg.Block{}
	for _, b := range g.Blocks {
		byName[b.Name] = b
	}
	set := func(a, b string, f int64) { g.FindEdge(byName[a], byName[b]).Freq = f }
	set("entry", "a", 1000)
	set("a", "b", 999)
	set("a", "c", 1)
	set("b", "d", 999)
	set("c", "d", 1)
	set("d", "exit", 1000)
	g.Calls = 1000
	d, _ := cfg.BuildDAG(g)
	hotPath := cfg.Path{d.Real(byName["entry"], byName["a"]), d.Real(byName["a"], byName["b"]),
		d.Real(byName["b"], byName["d"]), d.Real(byName["d"], g.Exit)}
	coldPath := cfg.Path{d.Real(byName["entry"], byName["a"]), d.Real(byName["a"], byName["c"]),
		d.Real(byName["c"], byName["d"]), d.Real(byName["d"], g.Exit)}
	truth := []cfgtest.PathCount{{Path: hotPath, Count: 999}, {Path: coldPath, Count: 1}}
	r := buildRoutine(t, g, instr.PPP(), truth)
	if r.Plan.Instrumented {
		t.Fatal("expected LC skip")
	}
	p := eval.New([]*eval.Routine{r})
	est := p.EstimatedProfile(0)
	if len(est) == 0 {
		t.Fatal("no estimates from potential fallback")
	}
	if est[0].Source != eval.Potential {
		t.Errorf("source = %v, want Potential", est[0].Source)
	}
	hot := p.HotPaths(0.00125)
	if acc := eval.Accuracy(hot, est); acc != 1 {
		t.Errorf("accuracy = %v, want 1 (single path)", acc)
	}
}

func TestInstrumentedFractionSplitsHash(t *testing.T) {
	// Force hashing by exceeding the path threshold with a smaller
	// hash limit.
	g, truth := groundTruth(23, 12, 300)
	par := instr.DefaultParams()
	par.HashThreshold = 1 // everything hashes
	plan, err := instr.Build(g, instr.PP(), par, g.Calls)
	if err != nil {
		t.Fatal(err)
	}
	if plan.N > 1 && !plan.Hash {
		t.Fatal("expected hash table")
	}
	pp := profile.NewPathProfile(g.Name)
	table := profile.NewTable(profile.HashTable, plan.N, plan.TableSize)
	for _, pc := range truth {
		mapped := remap(t, plan.D, pc.Path)
		pp.Add(mapped, pc.Count)
		if idx, fired := plan.SimulatePath(mapped); fired > 0 {
			for i := int64(0); i < pc.Count; i++ {
				table.Inc(idx)
			}
		}
	}
	p := eval.New([]*eval.Routine{{Name: g.Name, Plan: plan, Table: table, Truth: pp}})
	frac := p.InstrumentedFraction()
	if plan.N > 1 {
		if frac.Hash == 0 || frac.Array != 0 {
			t.Errorf("fraction = %+v, want all hash", frac)
		}
	}
}

func TestMetricIsBranchFlowByDefault(t *testing.T) {
	g, truth := groundTruth(29, 8, 100)
	r := buildRoutine(t, g, instr.PP(), truth)
	p := eval.New([]*eval.Routine{r})
	if p.Metric != flow.Branch {
		t.Errorf("default metric = %v, want branch", p.Metric)
	}
}
