// Package eval implements the paper's evaluation machinery: actual
// hot-path identification (Table 2), estimated path profile
// construction from measured counters, edge attribution and definite
// flow (Section 5), the accuracy metric via Wall's weight matching
// (Section 6.1), and coverage with the overcount penalty (Section
// 6.2).
package eval

import (
	"sort"

	"pathprof/internal/cfg"
	"pathprof/internal/flow"
	"pathprof/internal/instr"
	"pathprof/internal/profile"
)

// Routine bundles everything the evaluation needs about one routine:
// the plan (with its DAG carrying the guiding edge profile), the
// counter table from the instrumented run (nil when uninstrumented),
// and the exact path profile of the same run.
type Routine struct {
	Name  string
	Plan  *instr.Plan
	Table *profile.Table
	Truth *profile.PathProfile
}

// Program is the evaluation view of a whole benchmark run.
type Program struct {
	Metric   flow.Metric
	Routines []*Routine

	// EnumCap bounds definite/potential path enumeration per routine.
	EnumCap int
}

// New returns a Program evaluation over the given routines using the
// branch-flow metric.
func New(routines []*Routine) *Program {
	return &Program{Metric: flow.Branch, Routines: routines, EnumCap: 20000}
}

// HotPath is a path with its actual execution statistics.
type HotPath struct {
	Routine string
	Key     string
	Path    cfg.Path
	Freq    int64
	Flow    int64
}

// TotalFlow returns the program's actual total flow under the metric.
func (p *Program) TotalFlow() int64 {
	var sum int64
	for _, r := range p.Routines {
		d := r.Plan.D
		for _, pc := range r.Truth.Paths() {
			sum += flow.PathFlow(d, pc.Path, pc.Count, p.Metric)
		}
	}
	return sum
}

// HotPaths returns the actual paths whose flow is at least theta of
// total program flow, sorted hottest first.
func (p *Program) HotPaths(theta float64) []HotPath {
	total := p.TotalFlow()
	cut := theta * float64(total)
	var out []HotPath
	for _, r := range p.Routines {
		d := r.Plan.D
		for _, pc := range r.Truth.Paths() {
			fl := flow.PathFlow(d, pc.Path, pc.Count, p.Metric)
			if float64(fl) >= cut && fl > 0 {
				out = append(out, HotPath{
					Routine: r.Name, Key: r.Name + "|" + pc.Path.String(),
					Path: pc.Path, Freq: pc.Count, Flow: fl,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flow != out[j].Flow {
			return out[i].Flow > out[j].Flow
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// EstimateSource says where an estimated path frequency came from.
type EstimateSource int

const (
	// Counted: measured by path instrumentation counters.
	Counted EstimateSource = iota
	// Attributed: an obvious path estimated by its defining edge.
	Attributed
	// Definite: computed from the edge profile's definite flow.
	Definite
	// Potential: computed from the edge profile's potential flow.
	Potential
)

// Estimate is one entry of an estimated path profile.
type Estimate struct {
	Routine string
	Key     string
	Path    cfg.Path
	Freq    int64
	Flow    int64
	Source  EstimateSource
}

// estimationCutoff returns the per-routine flow cutoff used when
// enumerating definite/potential paths: a tenth of the given hot
// threshold, so borderline candidates still surface.
func (p *Program) estimationCutoff(theta float64) int64 {
	c := int64(theta * 0.1 * float64(p.TotalFlow()))
	if c < 0 {
		c = 0
	}
	return c
}

// EstimatedProfile builds the profiler's estimated path profile
// (Section 5): measured counts for instrumented paths, defining-edge
// frequencies for attributed obvious paths, and definite flow for
// everything else. If no routine was instrumented at all, it falls
// back to the potential-flow profile, matching the paper's treatment
// of swim and mgrid (Section 6.1).
func (p *Program) EstimatedProfile(theta float64) []Estimate {
	any := false
	for _, r := range p.Routines {
		if r.Plan.Instrumented {
			any = true
			break
		}
	}
	if !any {
		return p.EdgeEstimatedProfile(theta)
	}
	cutoff := p.estimationCutoff(theta)
	var out []Estimate
	for _, r := range p.Routines {
		seen := map[string]bool{}
		d := r.Plan.D
		add := func(path cfg.Path, freq int64, src EstimateSource) {
			key := r.Name + "|" + path.String()
			if seen[key] {
				return
			}
			seen[key] = true
			out = append(out, Estimate{
				Routine: r.Name, Key: key, Path: path, Freq: freq,
				Flow: flow.PathFlow(d, path, freq, p.Metric), Source: src,
			})
		}
		if r.Plan.Instrumented && r.Table != nil {
			for _, ic := range r.Table.HotCounts() {
				path, err := r.Plan.Num.Reconstruct(ic.Index)
				if err != nil {
					continue // hash artifacts cannot happen for arrays
				}
				add(path, ic.Count, Counted)
			}
		}
		for _, a := range r.Plan.Attr {
			// The defining edge's frequency bounds the obvious path's
			// frequency from above, but so does every other edge on the
			// path; the minimum (the path's potential frequency) is the
			// tightest estimate the edge profile offers and reduces the
			// overcount on disconnected loop bodies, whose defining
			// edges also carry loop-boundary executions.
			add(a.Path, flow.PotentialFreq(d, a.Path), Attributed)
		}
		ests, _ := flow.DefiniteProfile(d).HotPaths(p.Metric, cutoff, p.EnumCap)
		for _, e := range ests {
			add(e.Path, e.Freq, Definite)
		}
	}
	sortEstimates(out)
	return out
}

// EdgeEstimatedProfile builds the edge-profiling baseline's estimated
// path profile from potential flow, which Ball et al. found predicts
// hot paths best.
func (p *Program) EdgeEstimatedProfile(theta float64) []Estimate {
	cutoff := p.estimationCutoff(theta)
	var out []Estimate
	for _, r := range p.Routines {
		d := r.Plan.D
		best := map[string]int{}
		ests, _ := flow.PotentialProfile(d).HotPaths(p.Metric, cutoff, p.EnumCap)
		for _, e := range ests {
			key := r.Name + "|" + e.Path.String()
			if i, ok := best[key]; ok {
				if e.Freq > out[i].Freq {
					out[i].Freq = e.Freq
					out[i].Flow = flow.PathFlow(d, e.Path, e.Freq, p.Metric)
				}
				continue
			}
			best[key] = len(out)
			out = append(out, Estimate{
				Routine: r.Name, Key: key, Path: e.Path, Freq: e.Freq,
				Flow: flow.PathFlow(d, e.Path, e.Freq, p.Metric), Source: Potential,
			})
		}
	}
	sortEstimates(out)
	return out
}

func sortEstimates(es []Estimate) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Flow != es[j].Flow {
			return es[i].Flow > es[j].Flow
		}
		return es[i].Key < es[j].Key
	})
}

// Accuracy computes Wall's weight matching (Section 6.1): select the
// |H_actual| hottest estimated paths and return the fraction of actual
// hot flow they cover.
func Accuracy(actualHot []HotPath, estimated []Estimate) float64 {
	if len(actualHot) == 0 {
		return 1
	}
	actual := map[string]int64{}
	var totalHot int64
	for _, h := range actualHot {
		actual[h.Key] = h.Flow
		totalHot += h.Flow
	}
	var matched int64
	n := 0
	for _, e := range estimated {
		if n >= len(actualHot) {
			break
		}
		n++
		if fl, ok := actual[e.Key]; ok {
			matched += fl
			delete(actual, e.Key)
		}
	}
	return float64(matched) / float64(totalHot)
}

// CoverageResult breaks the coverage computation into its terms.
type CoverageResult struct {
	Total      int64 // F(P): actual flow
	Measured   int64 // F(P_instr): actual flow of measured paths
	DefUninstr int64 // DF(P_uninstr)
	Overcount  int64 // F_overcount = MF(P_instr) - F(P_instr), clamped per path
}

// Value returns the coverage fraction (Section 6.2).
func (c CoverageResult) Value() float64 {
	if c.Total == 0 {
		return 1
	}
	v := float64(c.Measured+c.DefUninstr-c.Overcount) / float64(c.Total)
	if v < 0 {
		return 0
	}
	return v
}

// Coverage computes the profiler's coverage: counted paths contribute
// their actual flow, minus the overcount penalty where the measurement
// exceeds the truth (Section 4.4's pushing overcounts); all other
// paths — including edge-attributed obvious paths, whose guarantee is
// only what the edge profile pins down — contribute their definite
// flow. This keeps every profiler's coverage at or above the edge
// profile's, as in the paper's Figure 10.
func (p *Program) Coverage() CoverageResult {
	var res CoverageResult
	type meas struct {
		freq int64
		path cfg.Path
	}
	for _, r := range p.Routines {
		d := r.Plan.D
		measured := map[string]meas{}
		if r.Plan.Instrumented && r.Table != nil {
			for _, ic := range r.Table.HotCounts() {
				path, err := r.Plan.Num.Reconstruct(ic.Index)
				if err != nil {
					continue
				}
				measured[path.String()] = meas{ic.Count, path}
			}
		}
		for _, pc := range r.Truth.Paths() {
			b := pc.Path.Branches(d)
			actualFlow := p.Metric.Weight(pc.Count, b)
			res.Total += actualFlow
			if m, ok := measured[pc.Path.String()]; ok {
				res.Measured += actualFlow
				if m.freq > pc.Count {
					res.Overcount += p.Metric.Weight(m.freq-pc.Count, b)
				}
				delete(measured, pc.Path.String())
				continue
			}
			def := flow.DefiniteFreq(d, pc.Path)
			if def > pc.Count {
				def = pc.Count
			}
			res.DefUninstr += p.Metric.Weight(def, b)
		}
		// Measured paths that never actually executed are pure
		// overcount.
		for _, m := range measured {
			if m.freq > 0 {
				res.Overcount += p.Metric.Weight(m.freq, m.path.Branches(d))
			}
		}
	}
	return res
}

// EdgeCoverage computes the edge profile's coverage: the attribution
// of definite flow (Ball et al.), i.e. per-path definite flow over
// actual flow.
func (p *Program) EdgeCoverage() CoverageResult {
	var res CoverageResult
	for _, r := range p.Routines {
		d := r.Plan.D
		for _, pc := range r.Truth.Paths() {
			b := pc.Path.Branches(d)
			res.Total += p.Metric.Weight(pc.Count, b)
			def := flow.DefiniteFreq(d, pc.Path)
			if def > pc.Count {
				def = pc.Count
			}
			res.DefUninstr += p.Metric.Weight(def, b)
		}
	}
	return res
}

// InstrumentedFraction reports which share of dynamic path executions
// ran counting instrumentation (Figure 11), split into array-counted
// and hash-counted.
type InstrumentedFraction struct {
	Array float64
	Hash  float64
}

// Total returns the overall instrumented fraction.
func (f InstrumentedFraction) Total() float64 { return f.Array + f.Hash }

// InstrumentedFraction computes the Figure 11 statistic from the
// ground truth: a dynamic path counts as instrumented when its static
// path is hot in the plan's numbering, not edge-attributed, and its
// routine is instrumented.
func (p *Program) InstrumentedFraction() InstrumentedFraction {
	var arr, hash, total int64
	for _, r := range p.Routines {
		attr := map[string]bool{}
		for _, a := range r.Plan.Attr {
			attr[a.Path.String()] = true
		}
		for _, pc := range r.Truth.Paths() {
			total += pc.Count
			if !r.Plan.Instrumented {
				continue
			}
			if attr[pc.Path.String()] {
				continue
			}
			if _, ok := r.Plan.Num.PathNumber(pc.Path); !ok {
				continue // cold or disconnected
			}
			if r.Plan.Hash {
				hash += pc.Count
			} else {
				arr += pc.Count
			}
		}
	}
	if total == 0 {
		return InstrumentedFraction{}
	}
	return InstrumentedFraction{
		Array: float64(arr) / float64(total),
		Hash:  float64(hash) / float64(total),
	}
}

// DistinctPaths returns the number of distinct dynamic paths (Table 2).
func (p *Program) DistinctPaths() int {
	n := 0
	for _, r := range p.Routines {
		n += r.Truth.Distinct()
	}
	return n
}

// HotStats summarises a hot set for Table 2: its size and its share of
// total program flow.
func (p *Program) HotStats(theta float64) (count int, share float64) {
	hot := p.HotPaths(theta)
	var sum int64
	for _, h := range hot {
		sum += h.Flow
	}
	total := p.TotalFlow()
	if total == 0 {
		return len(hot), 0
	}
	return len(hot), float64(sum) / float64(total)
}
