package fixtures

// Fixture for the mapiter and wallclock analyzers: Merge is
// deterministic scope by name, Digest by annotation, Unmarked is
// ordinary code that must stay clean.

import (
	"math/rand"
	"time"
)

type counter struct {
	m     map[string]int64
	total int64
	stamp int64
}

// Merge combines two counters.
func (c *counter) Merge(other *counter) {
	for k, v := range other.m { // finding: mapiter
		c.m[k] += v
	}
	c.stamp = time.Now().UnixNano() // finding: wallclock
	c.total += int64(rand.Intn(3))  // finding: rand
}

// Digest sums a map.
//
//ppp:deterministic
func Digest(m map[string]int64) int64 {
	var sum int64
	for _, v := range m { // finding: mapiter
		sum += v
	}
	return sum
}

// Unmarked is not deterministic scope; its map range is fine.
func Unmarked(m map[string]int64) int64 {
	var sum int64
	for _, v := range m {
		sum += v
	}
	return sum
}
