package fixtures

// solveFix is a fixpoint driver: it must visit facts in a stable
// order, and so must everything it calls.
//
//ppp:dataflow
func solveFix(facts map[int]int, order []int) int {
	total := 0
	for _, b := range order { // slice range: fine
		total += transferFix(facts, b)
	}
	return total
}

// transferFix is not marked itself, but solveFix calls it — its map
// range reports.
func transferFix(facts map[int]int, b int) int {
	s := 0
	for k, v := range facts {
		s += k * v
	}
	return s + b
}

// joinFix ranges a map directly inside a marked function.
//
//ppp:dataflow
func joinFix(a, b map[int]int) map[int]int {
	for k, v := range b {
		a[k] = v
	}
	return a
}

// allowedFix acknowledges its map range: order feeds a commutative sum.
//
//ppp:dataflow
func allowedFix(facts map[int]int) int {
	s := 0
	for _, v := range facts { //ppp:allow(fixpoint)
		s += v
	}
	return s
}

// strayFix is reachable from no //ppp:dataflow mark; its map range is
// outside fixpoint scope.
func strayFix(facts map[int]int) int {
	s := 0
	for _, v := range facts {
		s += v
	}
	return s
}
