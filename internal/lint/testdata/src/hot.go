package fixtures

// Fixture for the hotpath analyzer: bump violates every rule, and
// bumpAllowed shows the //ppp:allow escape hatch.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

type hot struct {
	mu  sync.Mutex
	n   int64
	buf []int64
}

// bump is the kitchen sink of hot-path violations.
//
//ppp:hotpath
func (h *hot) bump() {
	h.mu.Lock()                // finding: lock
	atomic.AddInt64(&h.n, 1)   // finding: atomic
	h.buf = append(h.buf, h.n) // finding: alloc
	_ = make([]int64, 4)       // finding: alloc
	_ = []int64{h.n}           // finding: alloc (composite literal)
	defer h.mu.Unlock()        // findings: defer + lock
	go func() {}()             // findings: goroutine + alloc (closure)
}

// record stands in for an interface-taking telemetry sink.
func record(vs ...interface{}) { _ = vs }

// bumpTelemetry shows the allocations a telemetry call can hide.
//
//ppp:hotpath
func (h *hot) bumpTelemetry() {
	record(h.n)                  // finding: box (int64 into interface{})
	_ = fmt.Sprintf("n=%d", h.n) // finding: fmt
}

// bumpAllowed acknowledges a deliberate amortized append.
//
//ppp:hotpath
func (h *hot) bumpAllowed() {
	h.buf = append(h.buf, 1) //ppp:allow(alloc)
}

// cool is unmarked; anything goes.
func (h *hot) cool() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buf = append(h.buf, h.n)
}

// mkBump builds a per-transition closure the way the threaded-code
// compiler does: the builder is cold, the returned literal is the hot
// code, marked on the line above it.
func (h *hot) mkBump() func() {
	scratch := make([]int64, 8) // fine: the builder runs once
	//ppp:hotpath
	return func() {
		h.mu.Lock()              // finding: lock (inside followed literal)
		_ = make([]int64, 4)     // finding: alloc (inside followed literal)
		h.buf = append(h.buf, 1) //ppp:allow(alloc)
		_ = scratch
	}
}

// mkCool builds an unmarked literal; neither the builder nor the
// literal is hot scope.
func (h *hot) mkCool() func() {
	return func() {
		h.buf = append(h.buf, h.n)
	}
}
