package lint

import (
	"go/ast"
	"go/types"
)

// Fixpoint forbids map iteration in any function reachable from a
// //ppp:dataflow mark. The marked functions are fixpoint solvers
// (internal/dataflow, the verify proof drivers): their results must not
// depend on visit order, and Go randomizes map iteration order, so a
// map range anywhere in the solve — including in transfer or join
// helpers the solver calls — can make two runs of the same proof visit
// facts in different orders. The mapiter check covers functions whose
// *output* must be deterministic; this one follows the call graph so
// the whole solve is in scope, not just the entry point.
var Fixpoint = &Analyzer{
	Name: "fixpoint",
	Doc:  "forbid map iteration in functions reachable from //ppp:dataflow fixpoint solvers",
	Run:  runFixpoint,
}

// fixNode is one package-level function declaration in the call graph.
type fixNode struct {
	fd *ast.FuncDecl
}

func runFixpoint(p *Pass) {
	byObj := map[types.Object]*fixNode{}
	byName := map[string][]*fixNode{}
	var marked []*fixNode
	eachFunc(p.Files, func(f *ast.File, fd *ast.FuncDecl) {
		n := &fixNode{fd: fd}
		if obj := p.TypesInfo.Defs[fd.Name]; obj != nil {
			byObj[obj] = n
		}
		byName[fd.Name.Name] = append(byName[fd.Name.Name], n)
		if hasMark(fd.Doc, "ppp:dataflow") {
			marked = append(marked, n)
		}
	})
	if len(marked) == 0 {
		return
	}

	// BFS over the intra-package call graph from the marked roots.
	reached := map[*fixNode]bool{}
	queue := append([]*fixNode(nil), marked...)
	for _, n := range marked {
		reached[n] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		ast.Inspect(n.fd.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range p.calleeDecls(byObj, byName, call) {
				if !reached[callee] {
					reached[callee] = true
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	// Report map ranges in every reached body. RunAll sorts findings by
	// position, so the set's iteration order does not leak.
	for n := range reached {
		fd := n.fd
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			rs, ok := x.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true // no type info; stay silent rather than guess
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				p.reportf("fixpoint", "fixpoint", rs.Pos(),
					"%s is reachable from a //ppp:dataflow solver: map iteration order is randomized and perturbs fact visit order", fd.Name.Name)
			}
			return true
		})
	}
}

// calleeDecls resolves a call expression to package-level function
// declarations. The typed path follows the identifier's object; when
// the identifier did not resolve, the fallback matches by name, which
// over-approximates reachability — safe, since it can only widen the
// checked region.
func (p *Pass) calleeDecls(byObj map[types.Object]*fixNode, byName map[string][]*fixNode, call *ast.CallExpr) []*fixNode {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if obj := p.TypesInfo.Uses[id]; obj != nil {
		if n := byObj[obj]; n != nil {
			return []*fixNode{n}
		}
		return nil // resolved outside the package
	}
	return byName[id.Name]
}
