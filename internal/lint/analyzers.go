package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIter forbids ranging over maps in deterministic scope. Collect
// the keys with a helper (profile.sortedKeys and friends) and iterate
// the sorted slice instead.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "forbid map iteration in functions that feed deterministic output or fingerprints",
	Run:  runMapIter,
}

func runMapIter(p *Pass) {
	eachFunc(p.Files, func(f *ast.File, fd *ast.FuncDecl) {
		if !deterministicScope(fd) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true // no type info; stay silent rather than guess
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				p.reportf("mapiter", "mapiter", rs.Pos(),
					"%s is deterministic scope: map iteration order is randomized; sort the keys first", fd.Name.Name)
			}
			return true
		})
	})
}

// HotPath forbids synchronization and allocation in //ppp:hotpath
// functions. These run once per profiled branch transition; the
// benchmark suite asserts zero allocs per operation, and this check
// keeps regressions from reaching the benchmarks at all.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid sync/atomic, locks, scheduling, and allocation in //ppp:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	eachFunc(p.Files, func(f *ast.File, fd *ast.FuncDecl) {
		imports := fileImports(f)
		if hotPathScope(fd) {
			p.inspectHot(imports, fd.Name.Name, fd.Body)
			return
		}
		// A compile-time code generator builds its hot code as function
		// literals inside cold builders (internal/vm/compile lowers every
		// transition this way). A //ppp:hotpath comment on the literal —
		// or the line above it, the conventional spot before a return —
		// puts the literal's body in hot-path scope even though the
		// enclosing builder is not.
		marks := hotMarkLines(p, f)
		if len(marks) == 0 {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			line := p.Fset.Position(lit.Pos()).Line
			if marks[line] || marks[line-1] {
				p.inspectHot(imports, fd.Name.Name+" closure", lit.Body)
				return false
			}
			return true
		})
	})
}

// hotMarkLines collects the lines of f bearing a //ppp:hotpath
// comment, the index inspectHot uses to follow the mark onto function
// literals.
func hotMarkLines(p *Pass, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "ppp:hotpath" || strings.HasPrefix(text, "ppp:hotpath ") {
				lines[p.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// inspectHot walks one hot-path body (a marked function's, or a marked
// function literal's) reporting synchronization and allocation.
func (p *Pass) inspectHot(imports map[string]string, name string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			p.reportf("hotpath", "goroutine", n.Pos(), "%s is a hot path: no goroutine launches", name)
		case *ast.DeferStmt:
			p.reportf("hotpath", "defer", n.Pos(), "%s is a hot path: defer has per-call scheduling cost", name)
		case *ast.FuncLit:
			p.reportf("hotpath", "alloc", n.Pos(), "%s is a hot path: function literal may allocate a closure", name)
			return false
		case *ast.CompositeLit:
			p.reportf("hotpath", "alloc", n.Pos(), "%s is a hot path: composite literal may allocate", name)
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				switch fun.Name {
				case "make", "new", "append":
					if isBuiltin(p, fun) {
						p.reportf("hotpath", "alloc", n.Pos(), "%s is a hot path: %s allocates", name, fun.Name)
					}
				}
			case *ast.SelectorExpr:
				switch p.selectorPkg(imports, fun) {
				case "sync":
					p.reportf("hotpath", "lock", n.Pos(), "%s is a hot path: sync.%s", name, fun.Sel.Name)
				case "sync/atomic":
					p.reportf("hotpath", "atomic", n.Pos(), "%s is a hot path: atomic.%s contends on shared cache lines (use a per-shard counter)", name, fun.Sel.Name)
				case "fmt":
					p.reportf("hotpath", "fmt", n.Pos(), "%s is a hot path: fmt.%s formats through reflection and allocates", name, fun.Sel.Name)
				default:
					switch fun.Sel.Name {
					case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
						p.reportf("hotpath", "lock", n.Pos(), "%s is a hot path: %s acquires a lock", name, fun.Sel.Name)
					}
				}
			}
			p.checkBoxing(n, name)
		}
		return true
	})
}

// checkBoxing flags hot-path calls that pass a concrete value where
// the callee takes an interface parameter: the implicit conversion
// boxes the value, which allocates when it escapes — the usual way a
// "zero-alloc" telemetry call quietly stops being one. Calls whose Fun
// has no resolved *types.Signature (unresolved imports, conversions)
// are skipped: vet supplies real type information, so the degraded
// mode only loses findings, never invents them.
func (p *Pass) checkBoxing(call *ast.CallExpr, fnName string) {
	sig, ok := p.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a slice passed whole does not box per argument
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := p.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		p.reportf("hotpath", "box", arg.Pos(),
			"%s is a hot path: %s boxed into an interface parameter (allocates)", fnName, at)
	}
}

// isBuiltin reports whether id resolves to a builtin function (or did
// not resolve at all, in which case a bare make/new/append can only be
// the builtin unless shadowed — the typed path catches shadowing).
func isBuiltin(p *Pass, id *ast.Ident) bool {
	obj := p.TypesInfo.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// WallClock forbids wall-clock reads and global rand in deterministic
// scope: merge results and fingerprints must be replayable.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Until and math/rand in merge/fingerprint code",
	Run:  runWallClock,
}

func runWallClock(p *Pass) {
	eachFunc(p.Files, func(f *ast.File, fd *ast.FuncDecl) {
		if !deterministicScope(fd) {
			return
		}
		imports := fileImports(f)
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch p.selectorPkg(imports, sel) {
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					p.reportf("wallclock", "wallclock", sel.Pos(),
						"%s is deterministic scope: time.%s makes output depend on the wall clock", name, sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				p.reportf("wallclock", "rand", sel.Pos(),
					"%s is deterministic scope: math/rand draws from shared global state", name)
			}
			return true
		})
	})
}
