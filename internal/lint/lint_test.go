package lint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"pathprof/internal/lint"
)

// failImporter refuses every import, simulating the degraded mode the
// analyzers must survive (vet always supplies real export data; tests
// exercise the syntactic fallback).
type failImporter struct{}

func (failImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("no importer in tests: %s", path)
}

// checkFixtures parses and loosely type-checks the testdata package.
func checkFixtures(t *testing.T) []lint.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	dir := filepath.Join("testdata", "src")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixtures: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: failImporter{},
		Error:    func(error) {}, // tolerate unresolved imports
	}
	pkg, _ := conf.Check("fixtures", fset, files, info)
	return lint.RunAll(fset, files, pkg, info)
}

func TestAnalyzersOnFixtures(t *testing.T) {
	diags := checkFixtures(t)
	got := map[string]int{}
	for _, d := range diags {
		got[d.Rule]++
		t.Logf("[%s/%s] %s", d.Analyzer, d.Rule, d.Message)
	}
	want := map[string]int{
		"mapiter":   2, // counter.Merge and Digest, not Unmarked
		"wallclock": 1, // time.Now in Merge
		"rand":      1, // rand.Intn in Merge
		"lock":      3, // mu.Lock, the deferred mu.Unlock, mkBump's closure
		"atomic":    1, // atomic.AddInt64
		"alloc":     5, // append, make, composite literal, go closure, mkBump's make
		"defer":     1,
		"goroutine": 1,
		"fmt":       1, // fmt.Sprintf in bumpTelemetry
		"box":       1, // record(h.n) boxes the int64
		"fixpoint":  2, // transferFix (via solveFix) and joinFix, not strayFix or allowedFix
	}
	for rule, n := range want {
		if got[rule] != n {
			t.Errorf("rule %s: %d findings, want %d", rule, got[rule], n)
		}
	}
	for rule, n := range got {
		if _, ok := want[rule]; !ok {
			t.Errorf("unexpected rule %s (%d findings)", rule, n)
		}
	}
}

func TestAllowSuppresses(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "src", "hot.go"), nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAll(fset, []*ast.File{f}, nil, nil)
	for _, d := range diags {
		line := fset.Position(d.Pos).Line
		// bumpAllowed's append sits on the line with //ppp:allow(alloc).
		if fset.Position(d.Pos).Filename != "" && d.Rule == "alloc" && line > 30 && line < 40 {
			t.Errorf("suppressed finding still reported at line %d: %s", line, d.Message)
		}
	}
}

// TestCleanWithoutTypes proves the analyzers stay quiet rather than
// guessing when no type information is available at all: the mapiter
// check needs types to tell maps from slices, so it reports nothing.
func TestCleanWithoutTypes(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "src", "det.go"), nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAll(fset, []*ast.File{f}, nil, nil)
	for _, d := range diags {
		if d.Rule == "mapiter" {
			t.Errorf("mapiter fired without type info: %s", d.Message)
		}
	}
	// The syntactic checks still work: time.Now and rand.Intn resolve
	// through the import table.
	rules := map[string]bool{}
	for _, d := range diags {
		rules[d.Rule] = true
	}
	if !rules["wallclock"] || !rules["rand"] {
		t.Errorf("syntactic fallback missed wallclock/rand: got %v", rules)
	}
}
