// Package lint implements the repository-specific static checks
// behind the ppplint vettool. The checks enforce conventions that the
// runtime tests can only probe, not prove:
//
//   - mapiter: no map iteration in deterministic scope — functions
//     marked //ppp:deterministic or named Merge/Fingerprint, whose
//     output feeds the deterministic-merge and fingerprint machinery.
//     Go randomizes map iteration order, so a stray range over a map
//     there silently breaks run-to-run reproducibility.
//   - hotpath: no locks, sync/atomic calls, goroutine/defer
//     scheduling, or allocating constructs (make, new, append,
//     composite and function literals) in functions marked
//     //ppp:hotpath. These run once per profiled branch; the
//     benchmarks assume they stay alloc- and contention-free. The
//     check also covers the allocations a telemetry call can hide:
//     fmt calls (reflection-based formatting) and concrete values
//     boxed into interface parameters both report.
//   - wallclock: no time.Now/Since/Until or math/rand in
//     deterministic scope; replay must not depend on wall clock or
//     a global rand source.
//   - fixpoint: no map iteration anywhere reachable (intra-package
//     call graph) from a function marked //ppp:dataflow — the fixpoint
//     solvers and proof drivers whose fact visit order must be stable
//     run to run.
//
// A finding on one line can be acknowledged with a same-line
// //ppp:allow(rule) comment naming the violated rule (for example
// //ppp:allow(alloc) on an append whose amortized cost is proven
// elsewhere).
//
// The package deliberately mirrors the shape of golang.org/x/tools
// go/analysis (Analyzer, Pass, Diagnostic) but depends only on the
// standard library: the build environment has no module proxy, so the
// vettool protocol is implemented by hand in cmd/ppplint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check run over a parsed, type-checked
// package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers lists every check ppplint runs, in report order.
var Analyzers = []*Analyzer{MapIter, HotPath, WallClock, Fixpoint}

// A Diagnostic is one finding, attributed to the analyzer and the
// fine-grained rule that //ppp:allow comments suppress.
type Diagnostic struct {
	Analyzer string
	Rule     string
	Pos      token.Pos
	Message  string
}

// A Pass carries one package's syntax and type information through the
// analyzers.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
	allow map[string]map[int]map[string]bool // file -> line -> allowed rules
}

// RunAll runs every analyzer over the package and returns the
// unsuppressed findings sorted by position. TypesInfo may be sparsely
// populated (e.g. when imports failed to resolve); analyzers degrade
// to purely syntactic checks where type information is missing.
func RunAll(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	if info == nil {
		info = &types.Info{}
	}
	p := &Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	p.buildAllowTable()
	for _, a := range Analyzers {
		a.Run(p)
	}
	sort.Slice(p.diags, func(i, j int) bool {
		pi, pj := fset.Position(p.diags[i].Pos), fset.Position(p.diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return p.diags
}

// reportf records a finding unless a same-line //ppp:allow comment
// names its rule.
func (p *Pass) reportf(analyzer, rule string, pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if lines, ok := p.allow[position.Filename]; ok {
		if rules, ok := lines[position.Line]; ok && rules[rule] {
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: analyzer,
		Rule:     rule,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// buildAllowTable indexes every //ppp:allow(rule, ...) comment by file
// and line so reportf can honor suppressions.
func (p *Pass) buildAllowTable() {
	p.allow = map[string]map[int]map[string]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "ppp:allow(") {
					continue
				}
				inner := text[len("ppp:allow("):]
				end := strings.IndexByte(inner, ')')
				if end < 0 {
					continue
				}
				position := p.Fset.Position(c.Pos())
				lines := p.allow[position.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					p.allow[position.Filename] = lines
				}
				rules := lines[position.Line]
				if rules == nil {
					rules = map[string]bool{}
					lines[position.Line] = rules
				}
				for _, r := range strings.Split(inner[:end], ",") {
					rules[strings.TrimSpace(r)] = true
				}
			}
		}
	}
}

// hasMark reports whether a doc comment contains the given //ppp:
// marker (e.g. "ppp:hotpath").
func hasMark(doc *ast.CommentGroup, mark string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == mark || strings.HasPrefix(text, mark+" ") {
			return true
		}
	}
	return false
}

// deterministicScope reports whether a function's output must be
// independent of map iteration order and wall-clock state: explicitly
// marked //ppp:deterministic, or named Merge/Fingerprint (the
// repository convention for deterministic-combine entry points).
func deterministicScope(fd *ast.FuncDecl) bool {
	if hasMark(fd.Doc, "ppp:deterministic") {
		return true
	}
	switch fd.Name.Name {
	case "Merge", "Fingerprint":
		return true
	}
	return false
}

// hotPathScope reports whether a function is marked //ppp:hotpath.
func hotPathScope(fd *ast.FuncDecl) bool {
	return hasMark(fd.Doc, "ppp:hotpath")
}

// fileImports maps each import's local name to its path for one file.
func fileImports(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if spec.Name != nil {
			name = spec.Name.Name
		}
		out[name] = path
	}
	return out
}

// selectorPkg resolves sel's receiver to an imported package path, or
// "" when the receiver is a value (method call) or unknown. Type
// information is preferred; the file's import table is the syntactic
// fallback when the identifier did not resolve.
func (p *Pass) selectorPkg(imports map[string]string, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj := p.TypesInfo.Uses[id]; obj != nil {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // a local object shadows the import name
	}
	return imports[id.Name]
}

// eachFunc invokes fn for every function declaration with a body.
func eachFunc(files []*ast.File, fn func(f *ast.File, fd *ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}
