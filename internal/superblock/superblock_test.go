package superblock_test

import (
	"bytes"
	"sort"
	"testing"

	"pathprof/internal/bench"
	"pathprof/internal/core"
	"pathprof/internal/instr"
	"pathprof/internal/lower"
	"pathprof/internal/superblock"
	"pathprof/internal/vm"
	"pathprof/internal/workloads"
)

const loopy = `
var acc = 0;
array data[128];

func main() {
	for (var i = 0; i < 128; i = i + 1) { data[i] = (i * 73 + 5) % 97; }
	var it = 0;
	while (it < 20000) {
		var v = data[it % 128];
		if (v % 4 != 0) { acc = acc + v; } else { acc = acc - 1; }
		if (acc % 13 == 0) { acc = acc + 7; }
		it = it + 1;
	}
	print(acc);
	return acc;
}
`

// hotTraces profiles the program with PPP and converts the hottest
// measured paths into traces.
func hotTraces(t *testing.T, staged *core.Staged) []superblock.Trace {
	t.Helper()
	pr, err := staged.Profile("PPP", instr.PPP())
	if err != nil {
		t.Fatal(err)
	}
	hot := pr.Eval.HotPaths(bench.HotTheta)
	var traces []superblock.Trace
	for _, h := range hot {
		tr, ok := superblock.TraceFromPath(h.Routine, h.Path)
		if !ok {
			continue
		}
		tr.Freq = h.Freq
		traces = append(traces, tr)
	}
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Freq > traces[j].Freq })
	return traces
}

func TestFormPreservesSemanticsAndPays(t *testing.T) {
	staged, err := core.NewPipeline("loopy", loopy).Stage()
	if err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	b0, err := vm.Run(staged.Prog, vm.Options{Output: &before})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: cleanup alone.
	cleanOnly := mustStageProg(t, loopy)
	superblock.Cleanup(cleanOnly.Prog)
	if err := cleanOnly.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
	c0, err := vm.Run(cleanOnly.Prog, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c0.Ret != b0.Ret {
		t.Fatal("cleanup changed semantics")
	}

	traces := hotTraces(t, staged)
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	res, err := superblock.Form(staged.Prog, traces, superblock.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.TracesFormed == 0 || res.BlocksCloned == 0 {
		t.Fatalf("nothing formed: %+v", res)
	}

	var after bytes.Buffer
	a0, err := vm.Run(staged.Prog, vm.Options{Output: &after})
	if err != nil {
		t.Fatal(err)
	}
	if a0.Ret != b0.Ret || !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("trace formation changed semantics: ret %d vs %d", a0.Ret, b0.Ret)
	}
	// Superblocks must beat cleanup alone: joins eliminated by
	// duplication become merged straight-line code.
	if a0.BaseCost >= c0.BaseCost {
		t.Errorf("superblocks %d not cheaper than cleanup-only %d (plain %d)",
			a0.BaseCost, c0.BaseCost, b0.BaseCost)
	}
}

func mustStageProg(t *testing.T, src string) *core.Staged {
	t.Helper()
	s, err := core.NewPipeline("x", src).Stage()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFormOnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("stages workloads")
	}
	for _, name := range []string{"mcf", "twolf", "equake"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, _ := workloads.ByName(name)
			staged, err := core.NewPipeline(w.Name, w.Source).Stage()
			if err != nil {
				t.Fatal(err)
			}
			before, err := vm.Run(staged.Prog, vm.Options{})
			if err != nil {
				t.Fatal(err)
			}
			traces := hotTraces(t, staged)
			res, err := superblock.Form(staged.Prog, traces, superblock.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			after, err := vm.Run(staged.Prog, vm.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if after.Ret != before.Ret {
				t.Fatalf("semantics changed (%d vs %d)", after.Ret, before.Ret)
			}
			growth := float64(res.SizeTo) / float64(res.SizeFrom)
			if growth > superblock.DefaultParams().MaxGrowth+1e-9 {
				t.Errorf("growth %.2f exceeds budget", growth)
			}
			t.Logf("%s: %d traces, %d cloned, %d merged, cost %d -> %d (%.1f%%)",
				name, res.TracesFormed, res.BlocksCloned, res.BlocksMerged,
				before.BaseCost, after.BaseCost,
				100*float64(before.BaseCost-after.BaseCost)/float64(before.BaseCost))
		})
	}
}

func TestCleanupMergesJumpChains(t *testing.T) {
	prog, err := lower.Compile(`
func main() {
	var a = 1;
	var b = a + 2;
	var c = b * 3;
	print(c);
	return c;
}`, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := vm.Run(prog, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged := superblock.Cleanup(prog)
	if merged == 0 {
		t.Error("straight-line program had no mergeable jumps")
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	after, err := vm.Run(prog, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Ret != before.Ret {
		t.Error("cleanup changed result")
	}
	if after.BaseCost >= before.BaseCost {
		t.Errorf("cleanup did not reduce cost: %d vs %d", after.BaseCost, before.BaseCost)
	}
}

func TestTraceFromPathShapes(t *testing.T) {
	staged := mustStageProg(t, loopy)
	pr, err := staged.Profile("PP", instr.PP())
	if err != nil {
		t.Fatal(err)
	}
	sawHeader, sawEntry := false, false
	for _, r := range pr.Eval.Routines {
		for _, pc := range r.Truth.Paths() {
			tr, ok := superblock.TraceFromPath(r.Name, pc.Path)
			if !ok {
				continue
			}
			if tr.FromHeader {
				sawHeader = true
			} else {
				sawEntry = true
			}
			if len(tr.Blocks) < 2 {
				t.Errorf("undersized trace %+v", tr)
			}
		}
	}
	if !sawHeader || !sawEntry {
		t.Errorf("trace shapes incomplete: header=%v entry=%v", sawHeader, sawEntry)
	}
}
