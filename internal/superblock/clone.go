package superblock

import (
	"pathprof/internal/ir"
)

// onePlan is a validated trace-formation plan: which blocks to clone
// and how to splice the clones in.
type onePlan struct {
	toClone []int // original block indices, in trace order
	grow    int   // IR statements the clones add
	// entry splice (FromHeader == false): redirect this block's
	// terminator target from toClone[0] to its clone.
	entrySplice int
	// header splice (FromHeader == true): redirect every back edge
	// targeting toClone[0] to its clone instead.
	fromHeader bool
}

// planOne validates the trace against the routine's shape and returns
// the mutation plan. Nothing is modified.
func planOne(fn *ir.Func, tr Trace, par Params) (*onePlan, bool) {
	if len(tr.Blocks) < 2 || len(tr.Blocks) > par.MaxBlocks {
		return nil, false
	}
	seen := map[int]bool{}
	for _, b := range tr.Blocks {
		if b < 0 || b >= len(fn.Blocks) || b == fn.Exit || seen[b] {
			return nil, false
		}
		seen[b] = true
	}
	// Consecutive trace blocks must actually be successors.
	for i := 0; i+1 < len(tr.Blocks); i++ {
		if !hasSuccessor(fn.Blocks[tr.Blocks[i]], tr.Blocks[i+1]) {
			return nil, false
		}
	}
	p := &onePlan{fromHeader: tr.FromHeader}
	if tr.FromHeader {
		// The whole trace, head included, is cloned and every entry to
		// the head (the preheader and all back edges) is redirected to
		// the clone, so the clone becomes the loop's single header and
		// the original head dies. The routine entry can never be a
		// loop header.
		if tr.Blocks[0] == fn.Entry {
			return nil, false
		}
		p.toClone = tr.Blocks
	} else {
		// Entry-started trace: the first block stays (it may be the
		// routine entry); the rest is cloned. Its terminator must be
		// redirectable without ambiguity.
		p.entrySplice = tr.Blocks[0]
		p.toClone = tr.Blocks[1:]
		if len(p.toClone) == 0 {
			return nil, false
		}
	}
	for _, b := range p.toClone {
		p.grow += len(fn.Blocks[b].Instrs) + 1
	}
	return p, true
}

// hasSuccessor reports whether block b can transfer control to target.
func hasSuccessor(b *ir.Block, target int) bool {
	switch b.Term.Kind {
	case ir.Jump:
		return b.Term.To == target
	case ir.Branch:
		return b.Term.To == target || b.Term.Else == target
	}
	return false
}

// apply performs the planned cloning and splicing.
func apply(fn *ir.Func, p *onePlan) {
	base := len(fn.Blocks)
	cloneIdx := map[int]int{}
	for i, orig := range p.toClone {
		cloneIdx[orig] = base + i
	}
	for _, orig := range p.toClone {
		ob := fn.Blocks[orig]
		nb := fn.NewBlock(ob.Name)
		nb.Instrs = append([]ir.Instr(nil), ob.Instrs...)
		nb.Term = ob.Term
		// On-trace successors go to the next clone; side exits keep
		// pointing at the originals.
		redirect(&nb.Term, cloneIdx)
	}
	if p.fromHeader {
		// Redirect every edge into the trace head — preheader entries
		// and back edges alike — so the clone is the loop's only
		// header and the original head becomes unreachable.
		head := p.toClone[0]
		for i := 0; i < base; i++ {
			redirectTarget(&fn.Blocks[i].Term, head, cloneIdx[head])
		}
	} else {
		eb := fn.Blocks[p.entrySplice]
		redirectTarget(&eb.Term, p.toClone[0], cloneIdx[p.toClone[0]])
	}
}

// redirect rewrites every terminator target that has a clone.
func redirect(t *ir.Term, cloneIdx map[int]int) {
	switch t.Kind {
	case ir.Jump:
		if n, ok := cloneIdx[t.To]; ok {
			t.To = n
		}
	case ir.Branch:
		if n, ok := cloneIdx[t.To]; ok {
			t.To = n
		}
		if n, ok := cloneIdx[t.Else]; ok {
			t.Else = n
		}
	}
}

// redirectTarget rewrites only the edges pointing at from.
func redirectTarget(t *ir.Term, from, to int) {
	switch t.Kind {
	case ir.Jump:
		if t.To == from {
			t.To = to
		}
	case ir.Branch:
		if t.To == from {
			t.To = to
		}
		if t.Else == from {
			t.Else = to
		}
	}
}

// Cleanup straightens the program: it repeatedly merges a block ending
// in an unconditional jump into its sole-successor when that successor
// has exactly one predecessor (eliminating the executed jump), then
// prunes unreachable blocks. It returns the number of merges. Cleanup
// is semantics-preserving on its own and is also useful as a baseline
// against which to measure trace formation.
func Cleanup(prog *ir.Program) int {
	merged := 0
	for _, fn := range prog.Funcs {
		merged += cleanupFunc(fn)
	}
	return merged
}

func cleanupFunc(fn *ir.Func) int {
	merged := 0
	for {
		preds := countPreds(fn)
		did := false
		for _, b := range fn.Blocks {
			if b.Term.Kind != ir.Jump {
				continue
			}
			c := b.Term.To
			if c == b.Index || c == fn.Exit || c == fn.Entry || preds[c] != 1 {
				continue
			}
			cb := fn.Blocks[c]
			b.Instrs = append(b.Instrs, cb.Instrs...)
			b.Term = cb.Term
			// Make the absorbed block unreachable; prune removes it.
			cb.Instrs = nil
			cb.Term = ir.Term{Kind: ir.Jump, To: b.Index}
			merged++
			did = true
			break // predecessor counts are stale; recompute
		}
		if !did {
			break
		}
	}
	prune(fn)
	return merged
}

func countPreds(fn *ir.Func) []int {
	preds := make([]int, len(fn.Blocks))
	for _, b := range fn.Blocks {
		switch b.Term.Kind {
		case ir.Jump:
			preds[b.Term.To]++
		case ir.Branch:
			preds[b.Term.To]++
			preds[b.Term.Else]++
		}
	}
	return preds
}

// prune removes unreachable blocks and remaps indices, keeping loop
// metadata whose headers survive.
func prune(fn *ir.Func) {
	reach := make([]bool, len(fn.Blocks))
	stack := []int{fn.Entry}
	reach[fn.Entry] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t := fn.Blocks[i].Term
		var targets []int
		switch t.Kind {
		case ir.Jump:
			targets = []int{t.To}
		case ir.Branch:
			targets = []int{t.To, t.Else}
		}
		for _, n := range targets {
			if !reach[n] {
				reach[n] = true
				stack = append(stack, n)
			}
		}
	}
	reach[fn.Exit] = true // the exit must survive even if bypassed
	remap := make([]int, len(fn.Blocks))
	var kept []*ir.Block
	for i, b := range fn.Blocks {
		if reach[i] {
			remap[i] = len(kept)
			b.Index = len(kept)
			kept = append(kept, b)
		} else {
			remap[i] = -1
		}
	}
	for _, b := range kept {
		switch b.Term.Kind {
		case ir.Jump:
			b.Term.To = remap[b.Term.To]
		case ir.Branch:
			b.Term.To = remap[b.Term.To]
			b.Term.Else = remap[b.Term.Else]
		}
	}
	fn.Blocks = kept
	fn.Entry = remap[fn.Entry]
	fn.Exit = remap[fn.Exit]
	var loops []ir.LoopInfo
	for _, li := range fn.Loops {
		if remap[li.Header] >= 0 {
			li.Header = remap[li.Header]
			loops = append(loops, li)
		}
	}
	fn.Loops = loops
}
