// Package superblock consumes a path profile the way the paper's
// introduction motivates: it forms superblocks — single-entry,
// multiple-exit traces — along measured hot paths by tail duplication,
// then straightens them by merging the now join-free blocks.
//
// Cloning a hot path gives every block on the trace a single
// predecessor, so the jumps that stitched the original blocks together
// disappear into straight-line code; executions that diverge from the
// trace side-exit into the original blocks, preserving semantics
// exactly. This is the transformation hyperblock/superblock compilers
// (Hwu et al.; Mahlke et al.) drive with path profiles, and the reason
// dynamic optimizers want them cheap (the paper's Section 1).
package superblock

import (
	"fmt"

	"pathprof/internal/cfg"
	"pathprof/internal/ir"
)

// funcSnapshot captures what apply can change: the block count and
// every terminator.
type funcSnapshot struct {
	nblocks int
	terms   []ir.Term
}

func snapshot(fn *ir.Func) funcSnapshot {
	s := funcSnapshot{nblocks: len(fn.Blocks), terms: make([]ir.Term, len(fn.Blocks))}
	for i, b := range fn.Blocks {
		s.terms[i] = b.Term
	}
	return s
}

func restore(fn *ir.Func, s funcSnapshot) {
	fn.Blocks = fn.Blocks[:s.nblocks]
	for i, b := range fn.Blocks {
		b.Term = s.terms[i]
	}
}

// Params bounds trace formation.
type Params struct {
	// MaxTraces bounds how many traces are formed per program.
	MaxTraces int
	// MaxBlocks bounds one trace's length in blocks.
	MaxBlocks int
	// MaxGrowth bounds total program growth (1.25 = +25%).
	MaxGrowth float64
}

// DefaultParams returns conservative trace-formation budgets.
func DefaultParams() Params {
	return Params{MaxTraces: 16, MaxBlocks: 64, MaxGrowth: 1.30}
}

// Trace is a hot path to duplicate: block indices of one routine, in
// execution order. FromHeader marks paths that start at a loop header
// (after a back edge); their trace is entered by redirecting the back
// edges, so the steady-state iterations run entirely inside the clone.
type Trace struct {
	Func       string
	Blocks     []int
	FromHeader bool
	Freq       int64
}

// TraceFromPath converts a measured DAG path into a Trace. It returns
// false for paths that cannot form a trace: those visiting the exit
// block mid-path (none do) or consisting solely of dummy edges.
func TraceFromPath(fnName string, p cfg.Path) (Trace, bool) {
	t := Trace{Func: fnName}
	if len(p) == 0 {
		return t, false
	}
	if p[0].Kind == cfg.EntryDummy {
		t.FromHeader = true
		t.Blocks = append(t.Blocks, p[0].Dst.ID)
	} else {
		t.Blocks = append(t.Blocks, p[0].Src.ID)
	}
	for _, e := range p {
		switch e.Kind {
		case cfg.RealEdge:
			t.Blocks = append(t.Blocks, e.Dst.ID)
		case cfg.ExitDummy:
			// Path ends at a back edge; the trace ends at its source.
		}
	}
	if len(t.Blocks) < 2 {
		return t, false
	}
	return t, true
}

// Result reports what Form did.
type Result struct {
	TracesFormed  int
	BlocksCloned  int
	BlocksMerged  int
	SizeFrom      int
	SizeTo        int
	SkippedBudget int
	SkippedShape  int
}

// Form applies trace formation to prog in place: traces are processed
// in the given order (hottest first) under the budgets, each one tail
// duplicated and the whole program then cleaned up (jump-chain merging
// plus unreachable-block pruning). The transformed program computes
// exactly what the original does.
func Form(prog *ir.Program, traces []Trace, par Params) (*Result, error) {
	res := &Result{SizeFrom: prog.Size()}
	budget := int(float64(res.SizeFrom) * par.MaxGrowth)
	size := res.SizeFrom
	usedHeader := map[string]bool{} // func@header already has a trace
	formed := 0
	for _, tr := range traces {
		if formed >= par.MaxTraces {
			break
		}
		fn := prog.Func(tr.Func)
		if fn == nil {
			return nil, fmt.Errorf("superblock: no function %q", tr.Func)
		}
		key := fmt.Sprintf("%s@%d", tr.Func, tr.Blocks[0])
		if usedHeader[key] {
			res.SkippedShape++
			continue
		}
		plan, ok := planOne(fn, tr, par)
		if !ok {
			res.SkippedShape++
			continue
		}
		if size+plan.grow > budget {
			res.SkippedBudget++
			continue
		}
		// Apply, then check legality: traces that cross into a loop
		// from outside can make the graph irreducible; those are
		// rolled back (a compiler would reject them during trace
		// selection).
		snap := snapshot(fn)
		apply(fn, plan)
		if g, err := fn.CFG(); err != nil || g.CheckReducible() != nil {
			restore(fn, snap)
			res.SkippedShape++
			continue
		}
		size += plan.grow
		usedHeader[key] = true
		formed++
		res.BlocksCloned += len(plan.toClone)
	}
	res.TracesFormed = formed
	res.BlocksMerged = Cleanup(prog)
	res.SizeTo = prog.Size()
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("superblock: produced invalid program: %w", err)
	}
	return res, nil
}
