package drift

import (
	"strings"
	"testing"
	"time"

	"pathprof/internal/profile"
	"pathprof/internal/telemetry"
)

// edges builds a per-routine edge-profile map from (src, dst, count)
// triples for one routine.
func edges(routine string, triples ...[3]int64) map[string]*profile.EdgeProfile {
	ep := profile.NewEdgeProfile(routine)
	for _, tr := range triples {
		ep.Add(int(tr[0]), int(tr[1]), tr[2])
	}
	return map[string]*profile.EdgeProfile{routine: ep}
}

func TestCompareIdenticalProfilesNoDrift(t *testing.T) {
	guide := edges("work", [3]int64{0, 1, 900}, [3]int64{1, 2, 90}, [3]int64{2, 3, 10})
	live := edges("work", [3]int64{0, 1, 900}, [3]int64{1, 2, 90}, [3]int64{2, 3, 10})
	rep := Compare(guide, live, Options{})
	if rep.FlowDivergence != 0 {
		t.Fatalf("identical profiles diverge: %v", rep.FlowDivergence)
	}
	if rep.HotOverlap != 1 {
		t.Fatalf("identical hot sets overlap %v, want 1", rep.HotOverlap)
	}
	if rep.Drifted {
		t.Fatalf("identical profiles marked drifted: %s", rep.Reason)
	}
}

func TestCompareScaledProfileNoDrift(t *testing.T) {
	// Same shape, 10x the flow: distributions are identical, so more
	// traffic alone is not drift.
	guide := edges("work", [3]int64{0, 1, 900}, [3]int64{1, 2, 100})
	live := edges("work", [3]int64{0, 1, 9000}, [3]int64{1, 2, 1000})
	rep := Compare(guide, live, Options{})
	if rep.Drifted {
		t.Fatalf("scaled profile marked drifted (divergence %v): %s", rep.FlowDivergence, rep.Reason)
	}
}

func TestCompareShiftedWorkloadDrifts(t *testing.T) {
	// The hot edge moves: 0->1 dominated the guide, 5->6 dominates live.
	guide := edges("work", [3]int64{0, 1, 950}, [3]int64{5, 6, 50})
	live := edges("work", [3]int64{0, 1, 50}, [3]int64{5, 6, 950})
	rep := Compare(guide, live, Options{})
	if !rep.Drifted {
		t.Fatalf("shifted workload not marked drifted: divergence %v, overlap %v", rep.FlowDivergence, rep.HotOverlap)
	}
	if rep.FlowDivergence < 0.5 {
		t.Fatalf("shifted workload divergence %v, want >= 0.5", rep.FlowDivergence)
	}
	if rep.Reason == "" {
		t.Fatalf("drifted report carries no reason")
	}
}

func TestCompareDisjointRoutinesFullDivergence(t *testing.T) {
	guide := edges("alpha", [3]int64{0, 1, 100})
	live := edges("beta", [3]int64{0, 1, 100})
	rep := Compare(guide, live, Options{})
	if rep.FlowDivergence != 1 {
		t.Fatalf("disjoint profiles diverge %v, want 1", rep.FlowDivergence)
	}
	if rep.HotOverlap != 0 {
		t.Fatalf("disjoint hot sets overlap %v, want 0", rep.HotOverlap)
	}
}

func TestMonitorAdoptsGuideAndFiresOnShift(t *testing.T) {
	reg := telemetry.NewRegistry(1)
	m := NewMonitor(reg, Options{})
	clock := time.Unix(1000, 0)
	m.SetNow(func() time.Time { return clock })

	steady := edges("work", [3]int64{0, 1, 900}, [3]int64{1, 2, 100})

	// First commit adopts the guide: zero drift by construction.
	rep := m.ObserveCommit("mcf", steady, 1)
	if rep.Drifted || rep.FlowDivergence != 0 {
		t.Fatalf("first commit drifted: %+v", rep)
	}

	// More of the same shape: still flat.
	clock = clock.Add(time.Minute)
	bigger := edges("work", [3]int64{0, 1, 1800}, [3]int64{1, 2, 200})
	rep = m.ObserveCommit("mcf", bigger, 2)
	if rep.Drifted {
		t.Fatalf("unshifted tenant drifted: %+v", rep)
	}
	if rep.CommitsSinceReplan != 1 {
		t.Fatalf("commits since replan = %d, want 1", rep.CommitsSinceReplan)
	}
	if rep.SecsSinceReplan != 60 {
		t.Fatalf("secs since replan = %v, want 60", rep.SecsSinceReplan)
	}

	// The workload mix shifts: the monitor must fire.
	clock = clock.Add(time.Minute)
	shifted := edges("work", [3]int64{0, 1, 1800}, [3]int64{1, 2, 200}, [3]int64{7, 8, 20000})
	rep = m.ObserveCommit("mcf", shifted, 3)
	if !rep.Drifted {
		t.Fatalf("shifted tenant not drifted: %+v", rep)
	}

	// An unshifted tenant observed in parallel stays flat.
	rep2 := m.ObserveCommit("gcc", steady, 1)
	rep2 = m.ObserveCommit("gcc", edges("work", [3]int64{0, 1, 2700}, [3]int64{1, 2, 300}), 2)
	if rep2.Drifted {
		t.Fatalf("parallel unshifted tenant drifted: %+v", rep2)
	}

	// Edge-triggered decision-trace event for the drift transition.
	evs := reg.Trace().Snapshot()
	var driftEvents int
	for _, e := range evs {
		if e.Kind == telemetry.EvDrift && e.Routine == "mcf" {
			driftEvents++
			if !strings.Contains(e.Detail, "divergence") && !strings.Contains(e.Detail, "overlap") {
				t.Fatalf("drift event detail %q names no metric", e.Detail)
			}
		}
	}
	if driftEvents != 1 {
		t.Fatalf("drift transitions emitted %d events, want 1 (edge-triggered)", driftEvents)
	}

	// Report endpoint view agrees; tenants are listed sorted.
	got, ok := m.Report("mcf")
	if !ok || !got.Drifted {
		t.Fatalf("Report(mcf) = %+v, %v", got, ok)
	}
	if names := m.Tenants(); len(names) != 2 || names[0] != "gcc" || names[1] != "mcf" {
		t.Fatalf("Tenants() = %v", names)
	}

	// Replanning resets the envelope: guide becomes the live shape.
	m.SetGuide("mcf", shifted, 3)
	rep = m.ObserveCommit("mcf", shifted, 4)
	if rep.Drifted {
		t.Fatalf("post-replan commit still drifted: %+v", rep)
	}
	// ... and the recovery transition emits exactly one more event.
	var recoveries int
	for _, e := range reg.Trace().Snapshot() {
		if e.Kind == telemetry.EvDrift && e.Routine == "mcf" && strings.Contains(e.Detail, "recovered") {
			recoveries++
		}
	}
	if recoveries != 1 {
		t.Fatalf("recovery transitions emitted %d events, want 1", recoveries)
	}
}

func TestMonitorPublishesGauges(t *testing.T) {
	reg := telemetry.NewRegistry(1)
	m := NewMonitor(reg, Options{})
	m.ObserveCommit("mcf", edges("work", [3]int64{0, 1, 100}), 1)
	m.ObserveCommit("mcf", edges("work", [3]int64{9, 10, 5000}), 2)
	var found bool
	for _, g := range reg.GaugeStats() {
		if g.Name == `ppp_drift_flow_divergence{tenant="mcf"}` {
			found = true
			if g.Value < 0.25 {
				t.Fatalf("divergence gauge %v did not cross threshold", g.Value)
			}
		}
	}
	if !found {
		t.Fatalf("no per-tenant divergence gauge published; gauges: %+v", reg.GaugeStats())
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	m.SetGuide("x", nil, 1)
	if rep := m.ObserveCommit("x", nil, 1); rep.Tenant != "x" {
		t.Fatalf("nil monitor ObserveCommit = %+v", rep)
	}
	if _, ok := m.Report("x"); ok {
		t.Fatalf("nil monitor has a report")
	}
	if names := m.Tenants(); names != nil {
		t.Fatalf("nil monitor lists tenants: %v", names)
	}
}
