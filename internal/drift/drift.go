// Package drift measures how far a tenant's live aggregate profile
// has moved from the guide profile its served plans were built on.
// It is the promotion sensor for the adaptive re-instrumentation
// loop: when divergence crosses a threshold (or the hot-path sets
// stop overlapping), the plans the service hands out are optimizing
// yesterday's workload and a replan is worth its cost.
//
// Two complementary metrics, both computed over the per-routine edge
// profiles the service already aggregates:
//
//   - Flow divergence: total-variation distance between the guide's
//     and the live profile's normalized flow distributions over
//     (routine, edge) items — 0 when identical, 1 when disjoint.
//     Weighted by flow, so a shift in a hot loop moves it far more
//     than churn in cold cleanup code.
//
//   - Hot overlap: Jaccard overlap of the hot-edge sets, where a
//     profile's hot set is the minimal count-descending prefix of
//     its items covering HotFlowFrac of total flow. This catches the
//     failure mode TV distance underweights: the *identity* of the
//     paths worth optimizing changing even while mass stays spread
//     similarly.
//
// All folds iterate in sorted key order so reports are deterministic
// for a given pair of profiles.
package drift

import (
	"fmt"
	"math"
	"sort"

	"pathprof/internal/profile"
)

// Options tune the drift verdict.
type Options struct {
	// HotFlowFrac is the fraction of total flow a profile's hot set
	// must cover (default 0.9).
	HotFlowFrac float64
	// DivergenceThreshold marks the tenant drifted when flow
	// divergence reaches it (default 0.25).
	DivergenceThreshold float64
	// OverlapFloor marks the tenant drifted when hot overlap falls to
	// or below it (default 0.5).
	OverlapFloor float64
}

// fill applies defaults for zero fields.
func (o Options) fill() Options {
	if o.HotFlowFrac <= 0 || o.HotFlowFrac > 1 {
		o.HotFlowFrac = 0.9
	}
	if o.DivergenceThreshold <= 0 {
		o.DivergenceThreshold = 0.25
	}
	if o.OverlapFloor <= 0 {
		o.OverlapFloor = 0.5
	}
	return o
}

// Report is one tenant's drift verdict, shaped for the
// /v1/drift/{tenant} endpoint and the dashboard.
type Report struct {
	Tenant             string  `json:"tenant"`
	GuideSeq           uint64  `json:"guide_seq"`
	LiveSeq            uint64  `json:"live_seq"`
	CommitsSinceReplan uint64  `json:"commits_since_replan"`
	SecsSinceReplan    float64 `json:"secs_since_replan"`
	FlowDivergence     float64 `json:"flow_divergence"`
	HotOverlap         float64 `json:"hot_overlap"`
	HotGuide           int     `json:"hot_guide"`
	HotLive            int     `json:"hot_live"`
	HotShared          int     `json:"hot_shared"`
	Drifted            bool    `json:"drifted"`
	Reason             string  `json:"reason,omitempty"`
}

// flowKey identifies one (routine, edge) flow item.
type flowKey struct {
	routine  string
	src, dst int
}

func (k flowKey) String() string {
	return fmt.Sprintf("%s:b%d->b%d", k.routine, k.src, k.dst)
}

// flatten folds a per-routine edge-profile map into one flow
// distribution over (routine, edge) items.
func flatten(edges map[string]*profile.EdgeProfile) map[flowKey]int64 {
	out := map[flowKey]int64{}
	for name, ep := range edges { //ppp:allow(mapiter) — consumers sort
		if ep == nil {
			continue
		}
		for k, v := range ep.Freq() { //ppp:allow(mapiter) — consumers sort
			if v > 0 {
				out[flowKey{routine: name, src: k.Src, dst: k.Dst}] += v
			}
		}
	}
	return out
}

// sortedKeys returns the union of both distributions' keys in
// deterministic order.
func sortedKeys(a, b map[flowKey]int64) []flowKey {
	seen := map[flowKey]bool{}
	keys := make([]flowKey, 0, len(a)+len(b))
	for k := range a { //ppp:allow(mapiter) — sorted below
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range b { //ppp:allow(mapiter) — sorted below
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].routine != keys[j].routine {
			return keys[i].routine < keys[j].routine
		}
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	return keys
}

// total sums a distribution's flow.
func total(d map[flowKey]int64) int64 {
	var n int64
	for _, v := range d { //ppp:allow(mapiter) — commutative int sum
		n += v
	}
	return n
}

// divergence is the total-variation distance between the normalized
// distributions: 0.5 · Σ |p(k) − q(k)| over the union of items,
// folded in sorted key order so the float sum is deterministic.
func divergence(guide, live map[flowKey]int64) float64 {
	gTotal, lTotal := total(guide), total(live)
	if gTotal == 0 && lTotal == 0 {
		return 0
	}
	if gTotal == 0 || lTotal == 0 {
		return 1
	}
	var sum float64
	for _, k := range sortedKeys(guide, live) {
		p := float64(guide[k]) / float64(gTotal)
		q := float64(live[k]) / float64(lTotal)
		sum += math.Abs(p - q)
	}
	return sum / 2
}

// hotSet returns the minimal count-descending prefix of the
// distribution's items covering frac of its total flow. Ties break on
// sorted key order so the set is deterministic.
func hotSet(d map[flowKey]int64, frac float64) map[flowKey]bool {
	tot := total(d)
	if tot == 0 {
		return nil
	}
	keys := make([]flowKey, 0, len(d))
	for k := range d { //ppp:allow(mapiter) — sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if d[keys[i]] != d[keys[j]] {
			return d[keys[i]] > d[keys[j]]
		}
		if keys[i].routine != keys[j].routine {
			return keys[i].routine < keys[j].routine
		}
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	need := int64(math.Ceil(frac * float64(tot)))
	hot := map[flowKey]bool{}
	var covered int64
	for _, k := range keys {
		if covered >= need {
			break
		}
		hot[k] = true
		covered += d[k]
	}
	return hot
}

// overlap is the Jaccard overlap |a∩b| / |a∪b|; 1 when both are
// empty (nothing to disagree about).
func overlap(a, b map[flowKey]bool) (jaccard float64, shared int) {
	if len(a) == 0 && len(b) == 0 {
		return 1, 0
	}
	union := len(b)
	for k := range a { //ppp:allow(mapiter) — counting only
		if b[k] {
			shared++
		} else {
			union++
		}
	}
	return float64(shared) / float64(union), shared
}

// Compare computes the drift report between a guide profile and a
// live aggregate (both per-routine edge-profile maps). Seq and
// cadence fields are left for the caller (Monitor) to fill.
func Compare(guide, live map[string]*profile.EdgeProfile, opts Options) Report {
	return compareFlows(flatten(guide), flatten(live), opts)
}
