package drift

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pathprof/internal/profile"
	"pathprof/internal/telemetry"
)

// Monitor tracks per-tenant drift between the live aggregate and the
// guide profile the served plans were built on. The guide is adopted
// implicitly at a tenant's first commit (the best stand-in before any
// replan) and replaced explicitly via SetGuide whenever the plan
// endpoint serves aggregate-guided plans — from then on, every commit
// re-scores the live aggregate against that frozen guide.
//
// Verdicts surface three ways: gauges
// (ppp_drift_flow_divergence{tenant=...}, ppp_drift_hot_overlap,
// ppp_drift_commits_since_replan, ppp_drift_secs_since_replan), an
// edge-triggered EvDrift decision-trace event on every transition
// into or out of the drifted state, and Report for the
// /v1/drift/{tenant} endpoint. A nil *Monitor is a valid no-op.
type Monitor struct {
	mu      sync.Mutex
	opts    Options
	reg     *telemetry.Registry
	now     func() time.Time
	tenants map[string]*tenantState
}

// tenantState is one tenant's frozen guide plus last verdict.
type tenantState struct {
	guide    map[flowKey]int64
	guideSeq uint64
	guideAt  time.Time
	commits  uint64 // commits since the guide was (re)adopted
	last     Report
	hasLast  bool
	drifted  bool

	divergence, hotOverlap  *telemetry.Gauge
	commitsSince, secsSince *telemetry.Gauge
}

// NewMonitor returns a monitor publishing into reg (which may be nil
// for a report-only monitor).
func NewMonitor(reg *telemetry.Registry, opts Options) *Monitor {
	return &Monitor{
		opts:    opts.fill(),
		reg:     reg,
		now:     time.Now,
		tenants: map[string]*tenantState{},
	}
}

// SetNow replaces the monitor's clock (tests).
func (m *Monitor) SetNow(now func() time.Time) {
	if m == nil || now == nil {
		return
	}
	m.mu.Lock()
	m.now = now
	m.mu.Unlock()
}

// state returns (creating if needed) the tenant's state. Caller holds
// m.mu.
func (m *Monitor) state(tenant string) *tenantState {
	st := m.tenants[tenant]
	if st == nil {
		label := fmt.Sprintf("{tenant=%q}", tenant)
		st = &tenantState{
			divergence: m.reg.Gauge("ppp_drift_flow_divergence"+label,
				"total-variation distance between live aggregate and guide profile flow"),
			hotOverlap: m.reg.Gauge("ppp_drift_hot_overlap"+label,
				"Jaccard overlap of guide vs live hot-edge sets"),
			commitsSince: m.reg.Gauge("ppp_drift_commits_since_replan"+label,
				"commits folded into the aggregate since the guide was adopted"),
			secsSince: m.reg.Gauge("ppp_drift_secs_since_replan"+label,
				"seconds since the guide profile was adopted"),
		}
		m.tenants[tenant] = st
	}
	return st
}

// SetGuide freezes edges as the tenant's guide profile: the baseline
// every later commit is scored against. seq is the aggregate sequence
// the guide was built from.
func (m *Monitor) SetGuide(tenant string, edges map[string]*profile.EdgeProfile, seq uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(tenant)
	st.guide = flatten(edges)
	st.guideSeq = seq
	st.guideAt = m.now()
	st.commits = 0
	st.commitsSince.Set(0)
	st.secsSince.Set(0)
}

// ObserveCommit re-scores the tenant after a committed batch swapped
// in a new aggregate. The first commit a tenant ever sees adopts the
// aggregate as its guide. Returns the fresh report.
func (m *Monitor) ObserveCommit(tenant string, edges map[string]*profile.EdgeProfile, seq uint64) Report {
	if m == nil {
		return Report{Tenant: tenant}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(tenant)
	live := flatten(edges)
	if st.guide == nil {
		st.guide = live
		st.guideSeq = seq
		st.guideAt = m.now()
		st.commits = 0
	} else {
		st.commits++
	}
	return m.score(tenant, st, live, seq)
}

// score computes, publishes, and records the tenant's report. Caller
// holds m.mu.
func (m *Monitor) score(tenant string, st *tenantState, live map[flowKey]int64, liveSeq uint64) Report {
	rep := compareFlows(st.guide, live, m.opts)
	rep.Tenant = tenant
	rep.GuideSeq = st.guideSeq
	rep.LiveSeq = liveSeq
	rep.CommitsSinceReplan = st.commits
	rep.SecsSinceReplan = m.now().Sub(st.guideAt).Seconds()

	st.divergence.Set(rep.FlowDivergence)
	st.hotOverlap.Set(rep.HotOverlap)
	st.commitsSince.Set(float64(rep.CommitsSinceReplan))
	st.secsSince.Set(rep.SecsSinceReplan)

	if rep.Drifted != st.drifted {
		detail := rep.Reason
		if !rep.Drifted {
			detail = "recovered inside drift envelope"
		}
		m.reg.Trace().Emit(telemetry.Event{
			Unit: "serve", Routine: tenant, Kind: telemetry.EvDrift,
			Flow: total(live), Detail: detail,
		})
		st.drifted = rep.Drifted
	}
	st.last, st.hasLast = rep, true
	return rep
}

// compareFlows is Compare over already-flattened distributions.
func compareFlows(guide, live map[flowKey]int64, opts Options) Report {
	opts = opts.fill()
	var rep Report
	rep.FlowDivergence = divergence(guide, live)
	gHot, lHot := hotSet(guide, opts.HotFlowFrac), hotSet(live, opts.HotFlowFrac)
	var jac float64
	jac, rep.HotShared = overlap(gHot, lHot)
	rep.HotOverlap = jac
	rep.HotGuide, rep.HotLive = len(gHot), len(lHot)
	switch {
	case rep.FlowDivergence >= opts.DivergenceThreshold:
		rep.Drifted = true
		rep.Reason = fmt.Sprintf("flow divergence %.3f >= %.3f", rep.FlowDivergence, opts.DivergenceThreshold)
	case rep.HotOverlap <= opts.OverlapFloor && (rep.HotGuide > 0 || rep.HotLive > 0):
		rep.Drifted = true
		rep.Reason = fmt.Sprintf("hot-set overlap %.3f <= %.3f", rep.HotOverlap, opts.OverlapFloor)
	}
	return rep
}

// Report returns the tenant's last verdict with cadence fields
// refreshed against the monitor's clock; ok is false before the
// tenant's first commit.
func (m *Monitor) Report(tenant string) (Report, bool) {
	if m == nil {
		return Report{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.tenants[tenant]
	if st == nil || !st.hasLast {
		return Report{}, false
	}
	rep := st.last
	rep.SecsSinceReplan = m.now().Sub(st.guideAt).Seconds()
	st.secsSince.Set(rep.SecsSinceReplan)
	return rep, true
}

// Tenants lists tenants with at least one scored commit, sorted.
func (m *Monitor) Tenants() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.tenants))
	for name, st := range m.tenants { //ppp:allow(mapiter) — sorted below
		if st.hasLast {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
