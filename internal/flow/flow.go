// Package flow implements the paper's flow metrics and the Ball,
// Mataga & Sagiv estimation algorithms adapted to them: the unit-flow
// and branch-flow metrics (Section 5.1), definite flow (Figure 14),
// potential flow (Figure 15), and hot-path selection from either
// (Figure 16, including the fix the paper confirmed with Ball).
//
// All algorithms operate on a routine DAG with a measured edge profile.
// Definite flow is the minimum flow an edge profile guarantees for a
// path; potential flow is the maximum it allows. For every path p,
//
//	definite(p) <= actual(p) <= potential(p).
package flow

import (
	"fmt"
	"sort"

	"pathprof/internal/cfg"
)

// Metric selects how a path's flow is weighted.
type Metric int

const (
	// Unit weights every path equally: flow(p) = freq(p). This is the
	// metric of prior work; it is not invariant under inlining.
	Unit Metric = iota
	// Branch weights paths by their branch count: flow(p) = freq(p) *
	// branches(p). The paper introduces this metric because it is
	// invariant under inlining (Figure 7).
	Branch
)

func (m Metric) String() string {
	if m == Unit {
		return "unit"
	}
	return "branch"
}

// Weight returns the flow of a path with the given frequency and branch
// count under the metric.
func (m Metric) Weight(freq int64, branches int) int64 {
	if m == Unit {
		return freq
	}
	return freq * int64(branches)
}

// PathFlow returns the flow of path p executed freq times.
func PathFlow(d *cfg.DAG, p cfg.Path, freq int64, m Metric) int64 {
	return m.Weight(freq, p.Branches(d))
}

// TotalFlow returns the total flow of the routine under the edge
// profile: the number of path executions (unit) or the sum of branch
// edge frequencies (branch).
func TotalFlow(d *cfg.DAG, m Metric) int64 {
	if m == Unit {
		return d.NodeFreq(d.G.Exit)
	}
	var sum int64
	for _, e := range d.Edges {
		if d.IsBranch(e) {
			sum += e.Freq
		}
	}
	return sum
}

// DefiniteFreq returns the definite (guaranteed minimum) frequency of
// path p under the edge profile: the total frequency minus the flow
// slack diverted away at each edge, clamped at zero.
func DefiniteFreq(d *cfg.DAG, p cfg.Path) int64 {
	f := d.NodeFreq(d.G.Exit)
	for _, e := range p {
		f -= d.NodeFreq(e.Dst) - e.Freq
	}
	if f < 0 {
		return 0
	}
	return f
}

// PotentialFreq returns the potential (maximum possible) frequency of
// path p under the edge profile: the minimum edge frequency along p.
func PotentialFreq(d *cfg.DAG, p cfg.Path) int64 {
	if len(p) == 0 {
		return 0
	}
	min := p[0].Freq
	for _, e := range p[1:] {
		if e.Freq < min {
			min = e.Freq
		}
	}
	return min
}

// fv is a flow value: Delta paths share frequency F and branch count B.
type fv struct {
	F int64
	B int
}

// valueSet is the [(f, b) -> Delta] multiset of Figures 14-15.
type valueSet map[fv]int64

func (s valueSet) add(k fv, delta int64) {
	if delta <= 0 {
		return
	}
	s[k] += delta
}

// Profile is a per-node/per-edge family of value sets resulting from
// the definite- or potential-flow dynamic programs.
type Profile struct {
	D     *cfg.DAG
	kind  string
	nodes []valueSet // by block ID
	edges []valueSet // by DAG edge ID
}

// DefiniteProfile runs the Figure 14 dynamic program, computing for
// every node and edge the multiset of definite flows of the suffix
// paths that start there.
func DefiniteProfile(d *cfg.DAG) *Profile {
	p := &Profile{D: d, kind: "definite",
		nodes: make([]valueSet, len(d.G.Blocks)),
		edges: make([]valueSet, len(d.Edges))}
	exit := d.G.Exit
	total := d.NodeFreq(exit)
	p.nodes[exit.ID] = valueSet{fv{total, 0}: 1}
	for i := len(d.Topo) - 1; i >= 0; i-- {
		v := d.Topo[i]
		if v == exit {
			continue
		}
		nv := valueSet{}
		for _, e := range d.Out[v.ID] {
			slack := d.NodeFreq(e.Dst) - e.Freq
			ev := valueSet{}
			for k, delta := range p.nodes[e.Dst.ID] {
				if k.F > slack {
					ev.add(fv{k.F - slack, k.B}, delta)
				}
			}
			p.edges[e.ID] = ev
			branch := d.IsBranch(e)
			for k, delta := range ev {
				if branch {
					nv.add(fv{k.F, k.B + 1}, delta)
				} else {
					nv.add(k, delta)
				}
			}
		}
		p.nodes[v.ID] = nv
	}
	return p
}

// PotentialProfile runs the Figure 15 dynamic program: edge value sets
// cap the suffix frequency at the edge's own frequency.
func PotentialProfile(d *cfg.DAG) *Profile {
	p := &Profile{D: d, kind: "potential",
		nodes: make([]valueSet, len(d.G.Blocks)),
		edges: make([]valueSet, len(d.Edges))}
	exit := d.G.Exit
	total := d.NodeFreq(exit)
	p.nodes[exit.ID] = valueSet{fv{total, 0}: 1}
	for i := len(d.Topo) - 1; i >= 0; i-- {
		v := d.Topo[i]
		if v == exit {
			continue
		}
		nv := valueSet{}
		for _, e := range d.Out[v.ID] {
			ev := valueSet{}
			for k, delta := range p.nodes[e.Dst.ID] {
				f := k.F
				if e.Freq < f {
					f = e.Freq
				}
				if f > 0 {
					ev.add(fv{f, k.B}, delta)
				}
			}
			p.edges[e.ID] = ev
			branch := d.IsBranch(e)
			for k, delta := range ev {
				if branch {
					nv.add(fv{k.F, k.B + 1}, delta)
				} else {
					nv.add(k, delta)
				}
			}
		}
		p.nodes[v.ID] = nv
	}
	return p
}

// Total returns the total flow the profile attributes to the routine
// under metric m: the sum of weight(f, b) * Delta over the entry node's
// value set. For a definite profile this is the routine's definite
// flow, the numerator of the paper's coverage metric.
func (p *Profile) Total(m Metric) int64 {
	var sum int64
	for k, delta := range p.nodes[p.D.G.Entry.ID] {
		sum += m.Weight(k.F, k.B) * delta
	}
	return sum
}

// Estimate is a reconstructed path with its estimated frequency.
type Estimate struct {
	Path cfg.Path
	Freq int64
}

// Flow returns the estimate's flow under metric m.
func (e Estimate) Flow(d *cfg.DAG, m Metric) int64 {
	return m.Weight(e.Freq, e.Path.Branches(d))
}

// HotPaths enumerates the paths whose flow under metric m exceeds
// cutoff, per the Figure 16 selection algorithm (with the confirmed
// fix: a candidate edge's value-set entry must match both the current
// frequency and the remaining branch count, and each (edge, entry) pair
// is debited at most its multiplicity). maxPaths bounds the result as a
// safety valve. The second result is false if enumeration got stuck,
// which indicates an inconsistent profile.
func (p *Profile) HotPaths(m Metric, cutoff int64, maxPaths int) ([]Estimate, bool) {
	type top struct {
		k     fv
		delta int64
	}
	var tops []top
	for k, delta := range p.nodes[p.D.G.Entry.ID] {
		if m.Weight(k.F, k.B) > cutoff {
			tops = append(tops, top{k, delta})
		}
	}
	sort.Slice(tops, func(i, j int) bool {
		wi, wj := m.Weight(tops[i].k.F, tops[i].k.B), m.Weight(tops[j].k.F, tops[j].k.B)
		if wi != wj {
			return wi > wj
		}
		if tops[i].k.F != tops[j].k.F {
			return tops[i].k.F > tops[j].k.F
		}
		return tops[i].k.B > tops[j].k.B
	})
	var out []Estimate
	ok := true
	for _, t := range tops {
		if len(out) >= maxPaths {
			break
		}
		if !p.enumerate(p.D.G.Entry, nil, t.k.F, t.k.B, t.k.F, t.delta, &out, maxPaths) {
			ok = false
		}
	}
	return out, ok
}

// enumerate descends from v reconstructing delta paths whose remaining
// definite/potential frequency is f with b branches left, recording
// them with top-level frequency f0.
func (p *Profile) enumerate(v *cfg.Block, prefix cfg.Path, f int64, b int, f0, delta int64, out *[]Estimate, maxPaths int) bool {
	if v == p.D.G.Exit {
		cp := make(cfg.Path, len(prefix))
		copy(cp, prefix)
		*out = append(*out, Estimate{Path: cp, Freq: f0})
		return true
	}
	if len(*out) >= maxPaths {
		return true
	}
	type usedKey struct {
		edge int
		k    fv
	}
	used := map[usedKey]bool{}
	remaining := delta
	for remaining > 0 {
		// Select an out-edge whose value set matches: exact frequency
		// for definite profiles, the smallest frequency >= f for
		// potential profiles; the branch count must match exactly.
		var selEdge *cfg.DAGEdge
		var selKey fv
		var selDelta int64
		for _, e := range p.D.Out[v.ID] {
			want := b
			if p.D.IsBranch(e) {
				want = b - 1
			}
			if want < 0 {
				continue
			}
			for k, dg := range p.edges[e.ID] {
				if k.B != want || dg <= 0 {
					continue
				}
				if used[usedKey{e.ID, k}] {
					continue
				}
				if p.kind == "definite" {
					if k.F != f {
						continue
					}
				} else {
					if k.F < f {
						continue
					}
					if selEdge != nil && k.F >= selKey.F {
						continue
					}
				}
				selEdge, selKey, selDelta = e, k, dg
				if p.kind == "definite" {
					break
				}
			}
			if selEdge != nil && p.kind == "definite" {
				break
			}
		}
		if selEdge == nil {
			return false
		}
		debit := remaining
		if selDelta < debit {
			debit = selDelta
		}
		nextF := f + (p.D.NodeFreq(selEdge.Dst) - selEdge.Freq)
		if p.kind == "potential" {
			nextF = selKey.F
		}
		nextB := b
		if p.D.IsBranch(selEdge) {
			nextB = b - 1
		}
		if !p.enumerate(selEdge.Dst, append(prefix, selEdge), nextF, nextB, f0, debit, out, maxPaths) {
			return false
		}
		used[usedKey{selEdge.ID, selKey}] = true
		remaining -= debit
	}
	return true
}

// Coverage returns the fraction of actual flow that the edge profile
// definitely measures for this routine: definite flow over total flow
// (Section 6.2; Ball et al.'s "attribution of definite flow"). Returns
// 1 for routines with no flow.
func Coverage(d *cfg.DAG, m Metric) float64 {
	total := TotalFlow(d, m)
	if total == 0 {
		return 1
	}
	return float64(DefiniteProfile(d).Total(m)) / float64(total)
}

func (p *Profile) String() string {
	return fmt.Sprintf("%s-flow profile of %s", p.kind, p.D.G.Name)
}
