package flow_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/flow"
)

// figure8 builds the paper's Figure 8 example: A branches to B (50) and
// C (30), rejoining at D, which branches to E (60) and F (20),
// rejoining at G.
func figure8() (*cfg.Graph, *cfg.DAG) {
	g := cfg.New("fig8")
	names := []string{"entry", "A", "B", "C", "D", "E", "F", "G", "exit"}
	bs := map[string]*cfg.Block{}
	for _, n := range names {
		bs[n] = g.AddBlock(n)
	}
	g.Entry = bs["entry"]
	g.Exit = bs["exit"]
	conn := func(a, b string, f int64) {
		cfgtest.Connect(g, bs[a], bs[b]).Freq = f
	}
	conn("entry", "A", 80)
	conn("A", "B", 50)
	conn("A", "C", 30)
	conn("B", "D", 50)
	conn("C", "D", 30)
	conn("D", "E", 60)
	conn("D", "F", 20)
	conn("E", "G", 60)
	conn("F", "G", 20)
	conn("G", "exit", 80)
	g.Calls = 80
	d, err := cfg.BuildDAG(g)
	if err != nil {
		panic(err)
	}
	return g, d
}

func pathByBlocks(d *cfg.DAG, names ...string) cfg.Path {
	byName := map[string]*cfg.Block{}
	for _, b := range d.G.Blocks {
		byName[b.Name] = b
	}
	var p cfg.Path
	for i := 0; i+1 < len(names); i++ {
		e := d.Real(byName[names[i]], byName[names[i+1]])
		if e == nil {
			panic("no edge " + names[i] + "->" + names[i+1])
		}
		p = append(p, e)
	}
	return p
}

func TestFigure8DefiniteFlow(t *testing.T) {
	_, d := figure8()
	if got := flow.TotalFlow(d, flow.Branch); got != 160 {
		t.Errorf("total branch flow = %d, want 160", got)
	}
	if got := flow.TotalFlow(d, flow.Unit); got != 80 {
		t.Errorf("total unit flow = %d, want 80", got)
	}
	cases := []struct {
		blocks []string
		want   int64 // definite branch flow per the paper
	}{
		{[]string{"entry", "A", "B", "D", "E", "G", "exit"}, 60},
		{[]string{"entry", "A", "C", "D", "E", "G", "exit"}, 20},
		{[]string{"entry", "A", "B", "D", "F", "G", "exit"}, 0},
		{[]string{"entry", "A", "C", "D", "F", "G", "exit"}, 0},
	}
	var sum int64
	for _, c := range cases {
		p := pathByBlocks(d, c.blocks...)
		got := flow.Branch.Weight(flow.DefiniteFreq(d, p), p.Branches(d))
		if got != c.want {
			t.Errorf("definite branch flow of %v = %d, want %d", c.blocks, got, c.want)
		}
		sum += got
	}
	if sum != 80 {
		t.Errorf("routine definite flow = %d, want 80", sum)
	}
	if got := flow.DefiniteProfile(d).Total(flow.Branch); got != 80 {
		t.Errorf("DefiniteProfile.Total = %d, want 80", got)
	}
	// Coverage = 80 / 160 = 50% per Section 6.2.
	if got := flow.Coverage(d, flow.Branch); got != 0.5 {
		t.Errorf("coverage = %v, want 0.5", got)
	}
}

// TestFigure7BranchFlowInvariance reproduces the paper's Figure 7:
// unit flow changes under inlining (20 -> 10) but branch flow does not
// (30 -> 30).
func TestFigure7BranchFlowInvariance(t *testing.T) {
	// Routine X: A -> {B, C} rejoin D; D -> {E, F} rejoin G. The hot
	// path ACDEG runs 10 times; everything else is cold.
	x := cfg.New("x")
	xn := map[string]*cfg.Block{}
	for _, n := range []string{"entry", "A", "B", "C", "D", "E", "F", "G", "exit"} {
		xn[n] = x.AddBlock(n)
	}
	x.Entry, x.Exit = xn["entry"], xn["exit"]
	xc := func(a, b string, f int64) { cfgtest.Connect(x, xn[a], xn[b]).Freq = f }
	xc("entry", "A", 10)
	xc("A", "B", 0)
	xc("A", "C", 10)
	xc("B", "D", 0)
	xc("C", "D", 10)
	xc("D", "E", 10)
	xc("D", "F", 0)
	xc("E", "G", 10)
	xc("F", "G", 0)
	xc("G", "exit", 10)
	x.Calls = 10

	// Routine Y: H -> {I, J} rejoin K. Hot path HJK runs 10 times.
	y := cfg.New("y")
	yn := map[string]*cfg.Block{}
	for _, n := range []string{"entry", "H", "I", "J", "K", "exit"} {
		yn[n] = y.AddBlock(n)
	}
	y.Entry, y.Exit = yn["entry"], yn["exit"]
	yc := func(a, b string, f int64) { cfgtest.Connect(y, yn[a], yn[b]).Freq = f }
	yc("entry", "H", 10)
	yc("H", "I", 0)
	yc("H", "J", 10)
	yc("I", "K", 0)
	yc("J", "K", 10)
	yc("K", "exit", 10)
	y.Calls = 10

	// Inlined: Y spliced into X at the call site in D.
	in := cfg.New("x+y")
	inn := map[string]*cfg.Block{}
	for _, n := range []string{"entry", "A", "B", "C", "D1", "H", "I", "J", "K", "D2", "E", "F", "G", "exit"} {
		inn[n] = in.AddBlock(n)
	}
	in.Entry, in.Exit = inn["entry"], inn["exit"]
	ic := func(a, b string, f int64) { cfgtest.Connect(in, inn[a], inn[b]).Freq = f }
	ic("entry", "A", 10)
	ic("A", "B", 0)
	ic("A", "C", 10)
	ic("B", "D1", 0)
	ic("C", "D1", 10)
	ic("D1", "H", 10)
	ic("H", "I", 0)
	ic("H", "J", 10)
	ic("I", "K", 0)
	ic("J", "K", 10)
	ic("K", "D2", 10)
	ic("D2", "E", 10)
	ic("D2", "F", 0)
	ic("E", "G", 10)
	ic("F", "G", 0)
	ic("G", "exit", 10)
	in.Calls = 10

	dx, err := cfg.BuildDAG(x)
	if err != nil {
		t.Fatal(err)
	}
	dy, err := cfg.BuildDAG(y)
	if err != nil {
		t.Fatal(err)
	}
	din, err := cfg.BuildDAG(in)
	if err != nil {
		t.Fatal(err)
	}

	unitBefore := flow.TotalFlow(dx, flow.Unit) + flow.TotalFlow(dy, flow.Unit)
	unitAfter := flow.TotalFlow(din, flow.Unit)
	if unitBefore != 20 || unitAfter != 10 {
		t.Errorf("unit flow before/after inlining = %d/%d, want 20/10", unitBefore, unitAfter)
	}
	branchBefore := flow.TotalFlow(dx, flow.Branch) + flow.TotalFlow(dy, flow.Branch)
	branchAfter := flow.TotalFlow(din, flow.Branch)
	if branchBefore != 30 || branchAfter != 30 {
		t.Errorf("branch flow before/after inlining = %d/%d, want 30/30", branchBefore, branchAfter)
	}
	// Per-path flows from the paper's text.
	if got := flow.PathFlow(dx, pathByBlocks(dx, "entry", "A", "C", "D", "E", "G", "exit"), 10, flow.Branch); got != 20 {
		t.Errorf("branch flow of ACDEG = %d, want 20", got)
	}
	if got := flow.PathFlow(dy, pathByBlocks(dy, "entry", "H", "J", "K", "exit"), 10, flow.Branch); got != 10 {
		t.Errorf("branch flow of HJK = %d, want 10", got)
	}
	if got := flow.PathFlow(din, pathByBlocks(din, "entry", "A", "C", "D1", "H", "J", "K", "D2", "E", "G", "exit"), 10, flow.Branch); got != 30 {
		t.Errorf("branch flow of inlined hot path = %d, want 30", got)
	}
}

func TestDefiniteHotPathsFigure8(t *testing.T) {
	_, d := figure8()
	got, ok := flow.DefiniteProfile(d).HotPaths(flow.Branch, 0, 100)
	if !ok {
		t.Fatal("enumeration got stuck")
	}
	want := map[string]int64{
		"entry A B D E G exit": 30,
		"entry A C D E G exit": 10,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d hot paths, want %d: %v", len(got), len(want), got)
	}
	for _, e := range got {
		if want[e.Path.String()] != e.Freq {
			t.Errorf("path %s freq %d, want %d", e.Path, e.Freq, want[e.Path.String()])
		}
	}
}

func TestPotentialHotPathsFigure8(t *testing.T) {
	_, d := figure8()
	got, ok := flow.PotentialProfile(d).HotPaths(flow.Branch, 0, 100)
	if !ok {
		t.Fatal("enumeration got stuck")
	}
	// Potential frequency is the min edge frequency along each path.
	want := map[string]int64{
		"entry A B D E G exit": 50,
		"entry A C D E G exit": 30,
		"entry A B D F G exit": 20,
		"entry A C D F G exit": 20,
	}
	seen := map[string]int64{}
	for _, e := range got {
		seen[e.Path.String()] = e.Freq
	}
	for k, v := range want {
		if seen[k] != v {
			t.Errorf("path %s potential %d, want %d", k, seen[k], v)
		}
	}
}

// TestBoundsProperty checks definite(p) <= actual(p) <= potential(p)
// on random graphs with simulated ground-truth path profiles.
func TestBoundsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cfgtest.Random(rng, 3+rng.Intn(14))
		d, err := cfg.BuildDAG(g)
		if err != nil {
			return false
		}
		actual := cfgtest.ProfilePaths(g, d, rng, 50, 250)
		for _, pc := range actual {
			def := flow.DefiniteFreq(d, pc.Path)
			pot := flow.PotentialFreq(d, pc.Path)
			if def > pc.Count || pc.Count > pot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestProfileMultisetsProperty checks that the dynamic programs compute
// exactly the per-path definite/potential values: the entry node's
// value set must equal the brute-force multiset over all paths.
func TestProfileMultisetsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cfgtest.Random(rng, 3+rng.Intn(12))
		d, err := cfg.BuildDAG(g)
		if err != nil {
			return false
		}
		cfgtest.Profile(g, rng, 60, 250)
		d.RefreshFreqs()
		if d.TotalPaths(nil, 3000) >= 3000 {
			return true
		}
		paths := d.EnumeratePaths(nil, -1)

		// Brute-force totals.
		var wantDef, wantPot int64
		for _, p := range paths {
			b := int64(p.Branches(d))
			wantDef += flow.DefiniteFreq(d, p) * b
			wantPot += flow.PotentialFreq(d, p) * b
		}
		if got := flow.DefiniteProfile(d).Total(flow.Branch); got != wantDef {
			return false
		}
		if got := flow.PotentialProfile(d).Total(flow.Branch); got != wantPot {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestDefiniteEnumerationProperty checks that Figure 16 enumeration
// recovers every path with positive definite flow, each with its exact
// definite frequency.
func TestDefiniteEnumerationProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cfgtest.Random(rng, 3+rng.Intn(12))
		d, err := cfg.BuildDAG(g)
		if err != nil {
			return false
		}
		cfgtest.Profile(g, rng, 60, 250)
		d.RefreshFreqs()
		if d.TotalPaths(nil, 2000) >= 2000 {
			return true
		}
		got, ok := flow.DefiniteProfile(d).HotPaths(flow.Branch, 0, 100000)
		if !ok {
			return false
		}
		gotMap := map[string]int64{}
		for _, e := range got {
			if _, dup := gotMap[e.Path.String()]; dup {
				return false
			}
			gotMap[e.Path.String()] = e.Freq
		}
		for _, p := range d.EnumeratePaths(nil, -1) {
			def := flow.DefiniteFreq(d, p)
			w := flow.Branch.Weight(def, p.Branches(d))
			if w > 0 {
				if gotMap[p.String()] != def {
					return false
				}
				delete(gotMap, p.String())
			}
		}
		// Anything left over must have zero branch flow (e.g. zero
		// branches): allowed since cutoff compares branch flow.
		for k, v := range gotMap {
			_ = k
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMetricWeights(t *testing.T) {
	if flow.Unit.Weight(7, 3) != 7 {
		t.Error("unit weight should ignore branches")
	}
	if flow.Branch.Weight(7, 3) != 21 {
		t.Error("branch weight should multiply")
	}
	if flow.Unit.String() != "unit" || flow.Branch.String() != "branch" {
		t.Error("metric names")
	}
}
