// Package lang implements the mini-C language front end: a lexer, a
// recursive-descent parser, and the AST. The language is deliberately
// small — int64 scalars, global arrays, functions, structured control
// flow with short-circuit booleans — but rich enough to write the
// SPEC2000-shaped workloads the paper's evaluation needs: branchy
// integer code, loop-dominated floating-point-style kernels (on
// integers), recursion, and indirect data-dependent branching.
package lang

import "fmt"

// Kind classifies tokens.
type Kind int

const (
	EOF Kind = iota
	Ident
	Number
	Punct   // operators and delimiters
	Keyword // var array func if else while for return break continue print
)

// Token is one lexeme with its source position.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of input"
	case Number, Ident, Punct, Keyword:
		return fmt.Sprintf("%q", t.Text)
	}
	return "?"
}

var keywords = map[string]bool{
	"var": true, "array": true, "func": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "break": true,
	"continue": true, "print": true,
}

// Error is a front-end diagnostic with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...interface{}) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
