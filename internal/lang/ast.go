package lang

// The AST. Nodes carry the source line of their introducing token for
// diagnostics.

// Program is the parsed translation unit.
type Program struct {
	Vars   []*VarDecl
	Arrays []*ArrayDecl
	Funcs  []*FuncDecl
}

// VarDecl is a global scalar: var name = init;
type VarDecl struct {
	Name string
	Init int64
	Line int
}

// ArrayDecl is a global array: array name[size];
type ArrayDecl struct {
	Name string
	Size int64
	Line int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *BlockStmt
	Line   int
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// BlockStmt is a { ... } statement list.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

// LocalStmt declares a local: var name = expr;
type LocalStmt struct {
	Name string
	Init Expr
	Line int
}

// AssignStmt assigns a scalar: name = expr;
type AssignStmt struct {
	Name string
	Val  Expr
	Line int
}

// StoreStmt assigns an array element: name[idx] = expr;
type StoreStmt struct {
	Name string
	Idx  Expr
	Val  Expr
	Line int
}

// IfStmt is if (cond) then else else-part (else may be nil).
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt or *IfStmt or nil
	Line int
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Line int
}

// ForStmt is for (init; cond; post) body. Init and Post may be nil;
// Cond may be nil (meaning true, which requires a break to exit).
type ForStmt struct {
	Init Stmt // *LocalStmt, *AssignStmt, *StoreStmt or nil
	Cond Expr
	Post Stmt
	Body *BlockStmt
	Line int
}

// ReturnStmt is return expr; (expr may be nil).
type ReturnStmt struct {
	Val  Expr
	Line int
}

// BreakStmt / ContinueStmt affect the innermost loop.
type BreakStmt struct{ Line int }
type ContinueStmt struct{ Line int }

// PrintStmt is print(expr);
type PrintStmt struct {
	Val  Expr
	Line int
}

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*BlockStmt) stmt()    {}
func (*LocalStmt) stmt()    {}
func (*AssignStmt) stmt()   {}
func (*StoreStmt) stmt()    {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*PrintStmt) stmt()    {}
func (*ExprStmt) stmt()     {}

// Expr is implemented by all expression nodes.
type Expr interface{ expr() }

// NumExpr is an integer literal.
type NumExpr struct {
	Val  int64
	Line int
}

// VarExpr reads a scalar (local, parameter, or global).
type VarExpr struct {
	Name string
	Line int
}

// IndexExpr reads an array element.
type IndexExpr struct {
	Name string
	Idx  Expr
	Line int
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

// BinExpr is a binary operation. && and || short-circuit.
type BinExpr struct {
	Op   string
	L, R Expr
	Line int
}

func (*NumExpr) expr()   {}
func (*VarExpr) expr()   {}
func (*IndexExpr) expr() {}
func (*CallExpr) expr()  {}
func (*UnaryExpr) expr() {}
func (*BinExpr) expr()   {}
