package lang

// Lex tokenizes src, returning the token stream or the first lexical
// error. Line comments (//) and block comments (/* */) are skipped.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			startLine, startCol := line, col
			advance(2)
			closed := false
			for i+1 < len(src) {
				if src[i] == '*' && src[i+1] == '/' {
					advance(2)
					closed = true
					break
				}
				advance(1)
			}
			if !closed {
				return nil, errf(startLine, startCol, "unterminated block comment")
			}
		case isDigit(c):
			start, sl, sc := i, line, col
			for i < len(src) && isDigit(src[i]) {
				advance(1)
			}
			toks = append(toks, Token{Number, src[start:i], sl, sc})
		case isIdentStart(c):
			start, sl, sc := i, line, col
			for i < len(src) && isIdentPart(src[i]) {
				advance(1)
			}
			text := src[start:i]
			k := Ident
			if keywords[text] {
				k = Keyword
			}
			toks = append(toks, Token{k, text, sl, sc})
		default:
			sl, sc := line, col
			// Two-character operators first.
			if i+1 < len(src) {
				two := src[i : i+2]
				switch two {
				case "==", "!=", "<=", ">=", "&&", "||", "<<", ">>":
					advance(2)
					toks = append(toks, Token{Punct, two, sl, sc})
					continue
				}
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^',
				'(', ')', '{', '}', '[', ']', ';', ',':
				advance(1)
				toks = append(toks, Token{Punct, string(c), sl, sc})
			default:
				return nil, errf(sl, sc, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, Token{EOF, "", line, col})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
