package lang

import "strconv"

// Parse lexes and parses src into an AST.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) is(kind Kind, text string) bool {
	t := p.cur()
	return t.Kind == kind && t.Text == text
}

func (p *parser) accept(kind Kind, text string) bool {
	if p.is(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind Kind, text string) (Token, error) {
	t := p.cur()
	if t.Kind != kind || t.Text != text {
		return t, errf(t.Line, t.Col, "expected %q, found %s", text, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) ident() (Token, error) {
	t := p.cur()
	if t.Kind != Ident {
		return t, errf(t.Line, t.Col, "expected identifier, found %s", t)
	}
	p.pos++
	return t, nil
}

func (p *parser) number() (int64, Token, error) {
	neg := false
	if p.is(Punct, "-") {
		neg = true
		p.pos++
	}
	t := p.cur()
	if t.Kind != Number {
		return 0, t, errf(t.Line, t.Col, "expected number, found %s", t)
	}
	p.pos++
	v, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, t, errf(t.Line, t.Col, "bad number %q", t.Text)
	}
	if neg {
		v = -v
	}
	return v, t, nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != EOF {
		t := p.cur()
		switch {
		case p.accept(Keyword, "var"):
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			var init int64
			if p.accept(Punct, "=") {
				v, _, err := p.number()
				if err != nil {
					return nil, err
				}
				init = v
			}
			if _, err := p.expect(Punct, ";"); err != nil {
				return nil, err
			}
			prog.Vars = append(prog.Vars, &VarDecl{Name: name.Text, Init: init, Line: t.Line})
		case p.accept(Keyword, "array"):
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Punct, "["); err != nil {
				return nil, err
			}
			size, st, err := p.number()
			if err != nil {
				return nil, err
			}
			if size <= 0 {
				return nil, errf(st.Line, st.Col, "array size must be positive")
			}
			if _, err := p.expect(Punct, "]"); err != nil {
				return nil, err
			}
			if _, err := p.expect(Punct, ";"); err != nil {
				return nil, err
			}
			prog.Arrays = append(prog.Arrays, &ArrayDecl{Name: name.Text, Size: size, Line: t.Line})
		case p.accept(Keyword, "func"):
			fn, err := p.funcDecl(t)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
		default:
			return nil, errf(t.Line, t.Col, "expected declaration, found %s", t)
		}
	}
	return prog, nil
}

func (p *parser) funcDecl(kw Token) (*FuncDecl, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Punct, "("); err != nil {
		return nil, err
	}
	var params []string
	if !p.is(Punct, ")") {
		for {
			pn, err := p.ident()
			if err != nil {
				return nil, err
			}
			params = append(params, pn.Text)
			if !p.accept(Punct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(Punct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.Text, Params: params, Body: body, Line: kw.Line}, nil
}

func (p *parser) block() (*BlockStmt, error) {
	lb, err := p.expect(Punct, "{")
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Line: lb.Line}
	for !p.is(Punct, "}") {
		if p.cur().Kind == EOF {
			return nil, errf(lb.Line, lb.Col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.is(Punct, "{"):
		return p.block()
	case p.accept(Keyword, "var"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Punct, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Punct, ";"); err != nil {
			return nil, err
		}
		return &LocalStmt{Name: name.Text, Init: e, Line: t.Line}, nil
	case p.accept(Keyword, "if"):
		return p.ifStmt(t)
	case p.accept(Keyword, "while"):
		if _, err := p.expect(Punct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Punct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil
	case p.accept(Keyword, "for"):
		return p.forStmt(t)
	case p.accept(Keyword, "return"):
		var val Expr
		if !p.is(Punct, ";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			val = e
		}
		if _, err := p.expect(Punct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Val: val, Line: t.Line}, nil
	case p.accept(Keyword, "break"):
		if _, err := p.expect(Punct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.Line}, nil
	case p.accept(Keyword, "continue"):
		if _, err := p.expect(Punct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.Line}, nil
	case p.accept(Keyword, "print"):
		if _, err := p.expect(Punct, "("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Punct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(Punct, ";"); err != nil {
			return nil, err
		}
		return &PrintStmt{Val: e, Line: t.Line}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Punct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// simpleStmt parses an assignment, array store, or expression
// statement without the trailing semicolon (shared by for-headers).
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.cur()
	if t.Kind == Ident {
		// Lookahead: ident = / ident [ expr ] =  are assignments.
		if p.toks[p.pos+1].Kind == Punct && p.toks[p.pos+1].Text == "=" {
			p.pos += 2
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Name: t.Text, Val: e, Line: t.Line}, nil
		}
		if p.toks[p.pos+1].Kind == Punct && p.toks[p.pos+1].Text == "[" {
			// Could be a store or an index expression; parse the index
			// then decide on '='.
			save := p.pos
			p.pos += 2
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Punct, "]"); err != nil {
				return nil, err
			}
			if p.accept(Punct, "=") {
				val, err := p.expr()
				if err != nil {
					return nil, err
				}
				return &StoreStmt{Name: t.Text, Idx: idx, Val: val, Line: t.Line}, nil
			}
			p.pos = save
		}
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Line: t.Line}, nil
}

func (p *parser) ifStmt(kw Token) (Stmt, error) {
	if _, err := p.expect(Punct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Punct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Line: kw.Line}
	if p.accept(Keyword, "else") {
		if t := p.cur(); p.accept(Keyword, "if") {
			el, err := p.ifStmt(t)
			if err != nil {
				return nil, err
			}
			s.Else = el
		} else {
			el, err := p.block()
			if err != nil {
				return nil, err
			}
			s.Else = el
		}
	}
	return s, nil
}

func (p *parser) forStmt(kw Token) (Stmt, error) {
	if _, err := p.expect(Punct, "("); err != nil {
		return nil, err
	}
	s := &ForStmt{Line: kw.Line}
	if !p.is(Punct, ";") {
		if p.accept(Keyword, "var") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Punct, "="); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Init = &LocalStmt{Name: name.Text, Init: e, Line: name.Line}
		} else {
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
		}
	}
	if _, err := p.expect(Punct, ";"); err != nil {
		return nil, err
	}
	if !p.is(Punct, ";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(Punct, ";"); err != nil {
		return nil, err
	}
	if !p.is(Punct, ")") {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(Punct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Operator precedence, loosest first.
var precedence = []map[string]bool{
	{"||": true},
	{"&&": true},
	{"|": true},
	{"^": true},
	{"&": true},
	{"==": true, "!=": true},
	{"<": true, "<=": true, ">": true, ">=": true},
	{"<<": true, ">>": true},
	{"+": true, "-": true},
	{"*": true, "/": true, "%": true},
}

func (p *parser) expr() (Expr, error) { return p.binary(0) }

func (p *parser) binary(level int) (Expr, error) {
	if level >= len(precedence) {
		return p.unary()
	}
	left, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != Punct || !precedence[level][t.Text] {
			return left, nil
		}
		p.pos++
		right, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: t.Text, L: left, R: right, Line: t.Line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.Kind == Punct && (t.Text == "-" || t.Text == "!") {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Text, X: x, Line: t.Line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == Number:
		p.pos++
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Line, t.Col, "bad number %q", t.Text)
		}
		return &NumExpr{Val: v, Line: t.Line}, nil
	case t.Kind == Ident:
		p.pos++
		switch {
		case p.accept(Punct, "("):
			call := &CallExpr{Name: t.Text, Line: t.Line}
			if !p.is(Punct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(Punct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(Punct, ")"); err != nil {
				return nil, err
			}
			return call, nil
		case p.accept(Punct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Punct, "]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.Text, Idx: idx, Line: t.Line}, nil
		default:
			return &VarExpr{Name: t.Text, Line: t.Line}, nil
		}
	case p.accept(Punct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Punct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Line, t.Col, "expected expression, found %s", t)
}
