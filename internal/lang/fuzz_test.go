package lang_test

import (
	"testing"

	"pathprof/internal/lang"
	"pathprof/internal/lower"
)

// FuzzParse checks that the front end never panics and that whatever
// it accepts also survives lowering's structural validation. Run as a
// unit test it exercises the seed corpus; `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"func main() { return 0; }",
		"var g = -5; array a[3]; func main() { a[g] = 1; return a[0]; }",
		"func f(x) { if (x > 0 && x < 9 || !x) { return 1; } return 0; }",
		"func f() { for (var i = 0; i < 3; i = i + 1) { continue; } return 1; }",
		"func f() { while (1) { break; } return 2; }",
		"func f() { print(1 + 2 * 3 % 4 / 5 - 6); }",
		"func f() { var x = 1 << 3 >> 1 & 7 | 8 ^ 2; return x; }",
		"func f(a,b,c) { return f(c,b,a); } ",
		"/* comment */ // line\nfunc main() { return 0; }",
		"func main() { return 9223372036854775807; }",
		"func f() { if (1) { } else if (2) { } else { } }",
		"func broken( { }",
		"array a[-1];",
		"var \x00;",
		"func f() { return a[; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		prog, err := lang.Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything that parses must lower cleanly or produce a proper
		// error, never invalid IR.
		ir, err := lower.Lower(prog, lower.Options{})
		if err != nil {
			return
		}
		if err := ir.Validate(); err != nil {
			t.Fatalf("lowered program invalid: %v\nsource: %q", err, src)
		}
	})
}

// FuzzLex checks the lexer's robustness and position monotonicity.
func FuzzLex(f *testing.F) {
	f.Add("func main() { return 1; }")
	f.Add("a\nb\r\n\tc /* x */ 0123")
	f.Add("<<>>==!=&&||")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		toks, err := lang.Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != lang.EOF {
			t.Fatal("missing EOF token")
		}
		prevLine, prevCol := 0, 0
		for _, tok := range toks {
			if tok.Line < prevLine || (tok.Line == prevLine && tok.Col < prevCol) {
				t.Fatalf("token positions not monotone: %d:%d after %d:%d",
					tok.Line, tok.Col, prevLine, prevCol)
			}
			prevLine, prevCol = tok.Line, tok.Col
		}
	})
}
