package lang_test

import (
	"strings"
	"testing"

	"pathprof/internal/lang"
)

func TestLexBasics(t *testing.T) {
	toks, err := lang.Lex("func main() { var x = 1 + 23; // c\n /* b */ return x<=2 && x!=0; }")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == lang.EOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := "func main ( ) { var x = 1 + 23 ; return x <= 2 && x != 0 ; }"
	if got := strings.Join(texts, " "); got != want {
		t.Errorf("tokens = %q, want %q", got, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lang.Lex("func @"); err == nil {
		t.Error("expected error for @")
	}
	if _, err := lang.Lex("/* unterminated"); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lang.Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestParseProgram(t *testing.T) {
	src := `
var g = 5;
array tab[100];
func add(a, b) { return a + b; }
func main() {
	var s = 0;
	for (var i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0 && i != 4) { s = s + add(i, g); }
		else if (i == 5) { continue; }
		else { tab[i] = s; }
	}
	while (s > 100) { s = s - 1; break; }
	print(s);
	return s;
}`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Vars) != 1 || prog.Vars[0].Name != "g" || prog.Vars[0].Init != 5 {
		t.Errorf("vars = %+v", prog.Vars)
	}
	if len(prog.Arrays) != 1 || prog.Arrays[0].Size != 100 {
		t.Errorf("arrays = %+v", prog.Arrays)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(prog.Funcs))
	}
	if prog.Funcs[0].Name != "add" || len(prog.Funcs[0].Params) != 2 {
		t.Errorf("func add = %+v", prog.Funcs[0])
	}
	main := prog.Funcs[1]
	if len(main.Body.Stmts) != 5 {
		t.Fatalf("main has %d stmts", len(main.Body.Stmts))
	}
	if _, ok := main.Body.Stmts[1].(*lang.ForStmt); !ok {
		t.Errorf("stmt 1 is %T, want ForStmt", main.Body.Stmts[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `func f() { return 1 + 2 * 3 == 7 && 4 < 5 || 0; }`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*lang.ReturnStmt)
	or, ok := ret.Val.(*lang.BinExpr)
	if !ok || or.Op != "||" {
		t.Fatalf("top is %v, want ||", ret.Val)
	}
	and, ok := or.L.(*lang.BinExpr)
	if !ok || and.Op != "&&" {
		t.Fatalf("left of || is %v, want &&", or.L)
	}
	eq, ok := and.L.(*lang.BinExpr)
	if !ok || eq.Op != "==" {
		t.Fatalf("left of && is %v, want ==", and.L)
	}
	add, ok := eq.L.(*lang.BinExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("left of == is %v, want +", eq.L)
	}
	mul, ok := add.R.(*lang.BinExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("right of + is %v, want *", add.R)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"func f( { }",
		"func f() { return 1 }",
		"var x",
		"array a[0];",
		"func f() { if 1 { } }",
		"func f() { x = ; }",
		"blah",
		"func f() { for (;;) }",
	}
	for _, src := range bad {
		if _, err := lang.Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseForVariants(t *testing.T) {
	good := []string{
		"func f() { for (;;) { break; } }",
		"func f() { for (var i = 0; i < 3; i = i + 1) { } }",
		"func f() { var i = 0; for (i = 1; i < 3;) { i = i + 1; } }",
		"func f() { array2[0] = 1; } array array2[4];",
		"func f() { var x = a[1 + 2]; } array a[8];",
	}
	for _, src := range good {
		if _, err := lang.Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}
