// Package workloads provides the 18 SPEC2000-shaped synthetic
// benchmarks the evaluation runs, one per benchmark row of the paper's
// Tables 1-2. The paper used the SPEC2000 C and Fortran 77 suites on
// ref inputs; those are proprietary and billions of paths long, so
// each workload here is a mini-C program engineered to match its
// counterpart's *path shape* at laptop scale (hundreds of thousands of
// dynamic paths instead of billions):
//
//   - path-count scale and hot-path concentration (Table 2),
//   - branches per path and loop- vs branch-domination (Table 1),
//   - inlining and unrolling applicability (Table 1),
//   - hash-table pressure (crafty), self-adjusting-criterion triggers
//     (vpr, mesa), and zero-instrumentation programs (swim, mgrid).
//
// All programs are deterministic: branch decisions come from an
// in-language linear congruential generator.
package workloads

// Workload is one synthetic benchmark.
type Workload struct {
	Name  string
	Class string // "INT" or "FP"
	Desc  string
	// SPEC describes the SPEC2000 counterpart's shape this program
	// imitates.
	SPEC   string
	Source string
}

// lcg is the shared pseudo-random kernel: a 31-bit LCG plus helpers.
// Each program seeds it differently.
const lcg = `
var seed = 88172645;
func rnd() {
	seed = (seed * 1103515245 + 12345) % 2147483648;
	if (seed < 0) { seed = 0 - seed; }
	return seed;
}
`

// All returns the workloads in the paper's presentation order
// (integer benchmarks first).
func All() []Workload {
	return []Workload{
		wVpr, wMcf, wCrafty, wParser, wPerlbmk, wGap, wBzip2, wTwolf,
		wWupwise, wSwim, wMgrid, wApplu, wMesa, wArt, wEquake, wAmmp,
		wSixtrack, wApsi,
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names returns all workload names in order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, w := range all {
		out[i] = w.Name
	}
	return out
}

// Ints and FPs split the suite by class.
func Ints() []Workload { return byClass("INT") }
func FPs() []Workload  { return byClass("FP") }

func byClass(c string) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Class == c {
			out = append(out, w)
		}
	}
	return out
}
