package workloads

// The eight integer workloads. Integer SPEC2000 programs are branchy:
// many distinct paths, moderate hot-path concentration, and partial
// inlining/unrolling applicability. Several deliberately stress the
// machinery: vpr carries the routine whose global criterion must
// self-adjust, crafty carries the hash-pressure routine, and parser,
// gap and twolf keep TPP hashing where PPP's global criterion escapes.

// branchlessRnd is the shared LCG without internal branches, so
// inlining it does not multiply path counts.
const branchlessRnd = `
var seed = 88172645;
func rnd() {
	seed = (seed * 1103515245 + 12345) & 1073741823;
	return seed / 16384;
}
`

var wVpr = Workload{
	Name:  "vpr",
	Class: "INT",
	Desc:  "simulated-annealing placement: swap evaluation with rare move kinds",
	SPEC: "vpr: ~3400 distinct paths, 66% flow in 1%-hot paths, 71% calls " +
		"inlined, unroll 1.65; hosts the routine whose cold-edge criterion " +
		"self-adjusts (Section 4.3)",
	Source: branchlessRnd + `
array grid[256];
var temp = 100000;
var best = 0;

func cost(a, b) {
	var d = a - b;
	return d * d % 97;
}

// tryswap is the self-adjusting-criterion target: thirteen branch
// decisions per call, six of which take their rare arm ~6% of the time
// (above the 5% local threshold, below the escalated global one).
func tryswap(m) {
	var c = 0;
	if (rnd() % 100 < 40) { c = c + cost(m, 3); } else { c = c - 1; }
	if (rnd() % 100 < 35) { c = c + 2; } else { c = c + cost(m, 5); }
	if (rnd() % 100 < 60) { c = c - m % 3; } else { c = c + 1; }
	if (rnd() % 100 < 45) { c = c + m % 7; } else { c = c - 2; }
	if (rnd() % 100 < 55) { c = c + 3; } else { c = c - m % 5; }
	if (rnd() % 100 < 30) { c = c + cost(m, 11); } else { c = c + 4; }
	if (rnd() % 100 < 50) { c = c - 3; } else { c = c + m % 2; }
	if (rnd() % 100 < 6) { c = c + 17; } else { c = c + m % 3; }
	if (rnd() % 100 < 7) { c = c - 13; } else { c = c + 1; }
	if (rnd() % 100 < 6) { c = c + 29; } else { c = c - 1; }
	if (rnd() % 100 < 7) { c = c - 23; } else { c = c + 2; }
	if (rnd() % 100 < 6) { c = c + 31; } else { c = c - 2; }
	if (rnd() % 100 < 7) { c = c - 19; } else { c = c + 3; }
	return c;
}

func main() {
	vsetup();
	var accept = 0;
	var i = 0;
	while (i < 9000) {
		var c = tryswap(i % 64);
		var e = 0;
		for (var j = 0; j < 24; j = j + 1) {
			var g = grid[(i + j) % 256];
			if ((g + j) % 4 == 0) { e = e + cost(g, j); } else { e = e - g % 5; }
		}
		if (c + e % 50 < temp % 100) {
			grid[i % 256] = e % 100;
			accept = accept + 1;
		}
		if (i % 10 == 9) { temp = temp * 99 / 100 + 1; }
		best = best + e % 7;
		i = i + 1;
	}
	print(best);
	print(accept);
	return best + accept;
}
` + ballast("v", 8, 240),
}

var wMcf = Workload{
	Name:  "mcf",
	Class: "INT",
	Desc:  "network-simplex pivoting over an arc array",
	SPEC: "mcf: few distinct paths (~280), 91% flow in 1%-hot paths, 98% " +
		"calls inlined, no unrolling (pointer-chasing while loops)",
	Source: branchlessRnd + `
array arccost[512];
array arcflow[512];
var pushes = 0;
var probes = 0;

func reduced(i) { return arccost[i] - arcflow[i] % 17; }
func saturate(i) { arcflow[i] = arcflow[i] + 1; return arcflow[i]; }

func pivot(start) {
	var bestArc = start;
	var bestVal = 1000000;
	var i = start;
	while (i < start + 64) {
		var r = reduced(i % 512);
		if (r < bestVal) { bestVal = r; bestArc = i % 512; }
		if ((r + i) % 4 < 2) { probes = probes + 1; }
		if (r / 2 % 2 == 0) { probes = probes + 2; } else { probes = probes - 1; }
		i = i + 1;
	}
	return bestArc;
}

func main() {
	msetup();
	for (var i = 0; i < 512; i = i + 1) { arccost[i] = rnd() % 997; }
	var it = 0;
	while (it < 4000) {
		var a = pivot(it % 448);
		pushes = pushes + saturate(a);
		if (arcflow[a] > 40) { arcflow[a] = 0; }
		it = it + 1;
	}
	print(pushes);
	print(probes);
	return pushes + probes;
}
` + ballast("m", 8, 240),
}

var wCrafty = Workload{
	Name:  "crafty",
	Class: "INT",
	Desc:  "game-tree search with a monster evaluation routine",
	SPEC: "crafty: most complex paths (~4600 distinct, only 37% flow in " +
		"1%-hot), hash-table pressure with lost paths, 0% inlining " +
		"(no cross-module inlining in Scale)",
	Source: `
var seed = 421;
array rtab[1024];
array board[64];
var nodes = 0;

// evaluate has twelve decision points; three take their rare arm ~3%
// of the time. PP hashes it (4096 > 4000 paths); TPP's local cold
// removal prunes the rare arms, dropping to 512 paths and an array.
// It exceeds 200 statements, so it is never inlined (crafty's 0%).
func evaluate(ply, alt) {
	var s = 0;
	var r = rtab[(ply * 37 + alt * 11 + nodes) % 1024];
	if (r % 100 < 45) { s = s + board[(ply + 1) % 64]; } else { s = s - 3; }
	if (r % 97 < 40) { s = s + 5; } else { s = s - board[(ply + 5) % 64] % 7; }
	if (r % 89 < 50) { s = s - 2; } else { s = s + 9; }
	if (r % 83 < 30) { s = s + board[alt % 64] % 13; } else { s = s + 1; }
	if (r % 79 < 35) { s = s - 4; } else { s = s + 2; }
	if (r % 73 < 55) { s = s + 6; } else { s = s - 5; }
	if (r % 71 < 25) { s = s + 11; } else { s = s - 1; }
	if (r % 67 < 42) { s = s - 7; } else { s = s + 3; }
	if (r % 61 < 38) { s = s + 8; } else { s = s - 6; }
	if (r % 113 < 3) { s = s + 101; } else { s = s + alt % 2; }
	if (r % 109 < 3) { s = s - 97; } else { s = s - alt % 3; }
	if (r % 103 < 3) { s = s + 89; } else { s = s + ply % 2; }
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	s = s % 100003;
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	s = s % 100003;
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	s = s % 100003;
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	s = s % 100003;
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	s = s % 100003;
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	s = s % 100003;
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	s = s % 100003;
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	s = s % 100003;
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	s = s % 100003;
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	s = s % 100003;
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	s = s % 100003;
	s = s * 3 + 1; s = s * 3 + 2; s = s * 3 + 0; s = s * 3 + 1;
	return s % 100003;
}

// search exceeds 200 statements too and is recursive besides.
func search(depth, ply) {
	nodes = nodes + 1;
	if (depth <= 0) { return evaluate(ply, nodes % 7); }
	var best = 0 - 1000000;
	var moves = 2 + rtab[(ply * 13 + nodes) % 1024] % 3;
	for (var mv = 0; mv < moves; mv = mv + 1) {
		var v = 0 - search(depth - 1, ply + 1);
		if (v > best) { best = v; }
		board[(ply * 7 + mv) % 64] = best % 251;
	}
	best = best + ply % 5 - 2;
	return best % 99991;
}

func main() {
	for (var i = 0; i < 1024; i = i + 1) {
		seed = (seed * 1103515245 + 12345) & 1073741823;
		rtab[i] = seed / 16384;
	}
	var total = 0;
	for (var g = 0; g < 110; g = g + 1) {
		total = total + search(5, 0);
		total = total % 1000003;
		board[g % 64] = (board[g % 64] + total) % 251;
	}
	print(total);
	print(nodes);
	return total + nodes;
}
`,
}

var wParser = Workload{
	Name:  "parser",
	Class: "INT",
	Desc:  "recursive-descent parsing over a synthetic token stream",
	SPEC: "parser: the most distinct paths (~5600), flow spread over many " +
		"warm paths (37% in 1%-hot), 29% calls inlined, unroll 1.46; keeps " +
		"TPP hashing (balanced decisions resist the local criterion)",
	Source: branchlessRnd + `
array toks[2048];
var pos = 0;
var errs = 0;

func peek() { return toks[pos % 2048]; }
func take() { pos = pos + 1; return toks[(pos - 1) % 2048]; }

// classify has thirteen balanced decisions: TPP cannot avoid the hash
// table here, but the routine runs rarely enough that PPP's global
// criterion (without self-adjusting) removes it wholesale.
func classify(t) {
	var k = 0;
	if (t % 100 < 50) { k = k + 1; } else { k = k - 1; }
	if (t % 97 < 48) { k = k + 2; } else { k = k - 2; }
	if (t % 89 < 44) { k = k + 3; } else { k = k - 3; }
	if (t % 83 < 41) { k = k + 4; } else { k = k - 4; }
	if (t % 79 < 39) { k = k + 5; } else { k = k - 5; }
	if (t % 73 < 36) { k = k + 6; } else { k = k - 6; }
	if (t % 71 < 35) { k = k + 7; } else { k = k - 7; }
	if (t % 67 < 33) { k = k + 8; } else { k = k - 8; }
	if (t % 61 < 30) { k = k + 9; } else { k = k - 9; }
	if (t % 59 < 29) { k = k + 10; } else { k = k - 10; }
	if (t % 53 < 26) { k = k + 11; } else { k = k - 11; }
	if (t % 47 < 23) { k = k + 12; } else { k = k - 12; }
	if (t % 43 < 21) { k = k + 13; } else { k = k - 13; }
	return k;
}

func expr(depth) {
	var v = term(depth);
	while (peek() % 5 == 0 && pos % 2048 != 0) {
		take();
		v = v + term(depth);
	}
	return v;
}

// term carries parser's signature path spread: six balanced decisions
// on independent token bits ahead of the grammar dispatch give
// thousands of distinct warm paths, none dominant (Table 2's parser
// row: lots of hot paths, little flow concentration at the 1% level).
func term(depth) {
	var t = take();
	var k = 0;
	if (t % 2 == 0) { k = k + 1; } else { k = k + 2; }
	if (t % 8 < 4) { k = k + 4; } else { k = k - 1; }
	if (t % 32 < 16) { k = k + 8; } else { k = k - 2; }
	if (t % 128 < 64) { k = k + 16; } else { k = k - 4; }
	if (t % 512 < 256) { k = k + 32; } else { k = k - 8; }
	if (t % 64 < 21) { k = k + 3; } else { k = k + t % 3; }
	if (depth > 6) { return t % 13 + k; }
	if (t % 4 == 0) { return (expr(depth + 1) + k) % 101; }
	if (t % 4 == 1) {
		if (t % 997 < 1) { k = k + classify(t) % 3; }
		return k + t % 7;
	}
	if (t % 4 == 2) {
		if (t % 8 == 2) { errs = errs + 1; return 1; }
		return t % 29 + k;
	}
	return t % 17 + k;
}

func main() {
	psetup();
	for (var i = 0; i < 2048; i = i + 1) { toks[i] = rnd(); }
	var sum = 0;
	for (var s = 0; s < 2600; s = s + 1) {
		pos = s * 7;
		sum = (sum + expr(0)) % 1000003;
	}
	print(sum);
	print(errs);
	return sum + errs;
}
` + ballast("p", 8, 240),
}

var wPerlbmk = Workload{
	Name:  "perlbmk",
	Class: "INT",
	Desc:  "bytecode interpreter with skewed opcode dispatch",
	SPEC: "perlbmk: interpreter dispatch, ~2300 distinct paths, 54% flow " +
		"in 1%-hot paths, low inlining (14%)",
	Source: branchlessRnd + `
array code[4096];
array stackarr[256];
var sp = 0;
var halts = 0;
var mixes = 0;

func push(v) { stackarr[sp % 256] = v; sp = sp + 1; return sp; }
func pop() { sp = sp - 1; if (sp < 0) { sp = 0; } return stackarr[sp % 256]; }

func step(op, arg) {
	if (op == 0) { push(arg); return 1; }
	if (op == 1) { push(pop() + arg); return 1; }
	if (op == 2) { push(pop() * 3 % 1009); return 1; }
	if (op == 3) { var a = pop(); var b = pop(); push(a + b); return 1; }
	if (op == 4) { if (pop() % 2 == 0) { push(arg); } return 1; }
	if (op == 5) { push(pop() - arg); return 2; }
	if (op == 6) { var c = pop(); if (c > 500) { push(c % 500); } else { push(c); } return 1; }
	halts = halts + 1;
	return 3;
}

func main() {
	bsetup();
	for (var i = 0; i < 4096; i = i + 1) {
		var r = rnd() % 100;
		// Skewed opcode mix: op 0/1 dominate.
		var op = 7;
		if (r < 30) { op = 0; }
		else if (r < 58) { op = 1; }
		else if (r < 73) { op = 2; }
		else if (r < 84) { op = 3; }
		else if (r < 92) { op = 4; }
		else if (r < 97) { op = 5; }
		else if (r < 99) { op = 6; }
		code[i] = op * 1000 + rnd() % 1000;
	}
	var checksum = 0;
	for (var run = 0; run < 55; run = run + 1) {
		var pc = 0;
		while (pc < 4096) {
			var c = code[pc];
			pc = pc + step(c / 1000, c % 1000);
			if ((pc + c) % 4 < 2) { mixes = mixes + 1; }
		}
		checksum = (checksum + pop()) % 1000003;
	}
	print(checksum);
	print(halts);
	print(mixes);
	return checksum + halts + mixes;
}
` + ballast("b", 8, 240),
}

var wGap = Workload{
	Name:  "gap",
	Class: "INT",
	Desc:  "arbitrary-precision style digit-array arithmetic",
	SPEC: "gap: ~4000 distinct paths, 67% flow in 1%-hot paths, 59% calls " +
		"inlined, unroll 1.22; a rarely-run balanced routine keeps TPP hashing",
	Source: branchlessRnd + `
array dig[512];
var carryouts = 0;

func addto(i, v) {
	var s = dig[i % 512] + v;
	if (s >= 10) { carryouts = carryouts + 1; dig[i % 512] = s - 10; return 1; }
	dig[i % 512] = s;
	return 0;
}

// normalize is the hash-pressure routine: balanced decisions, called
// on a small fraction of iterations.
func normalize(base) {
	var k = 0;
	if (dig[base % 512] % 2 == 0) { k = k + 1; } else { k = k - 1; }
	if (dig[(base + 1) % 512] % 3 < 2) { k = k + 2; } else { k = k - 2; }
	if (dig[(base + 2) % 512] % 2 == 1) { k = k + 3; } else { k = k - 3; }
	if (dig[(base + 3) % 512] % 5 < 3) { k = k + 4; } else { k = k - 4; }
	if (dig[(base + 4) % 512] % 2 == 0) { k = k + 5; } else { k = k - 5; }
	if (dig[(base + 5) % 512] % 7 < 4) { k = k + 6; } else { k = k - 6; }
	if (dig[(base + 6) % 512] % 2 == 1) { k = k + 7; } else { k = k - 7; }
	if (dig[(base + 7) % 512] % 3 < 2) { k = k + 8; } else { k = k - 8; }
	if (dig[(base + 8) % 512] % 2 == 0) { k = k + 9; } else { k = k - 9; }
	if (dig[(base + 9) % 512] % 5 < 2) { k = k + 10; } else { k = k - 10; }
	if (dig[(base + 10) % 512] % 2 == 1) { k = k + 11; } else { k = k - 11; }
	if (dig[(base + 11) % 512] % 7 < 3) { k = k + 12; } else { k = k - 12; }
	if (dig[(base + 12) % 512] % 2 == 0) { k = k + 13; } else { k = k - 13; }
	return k;
}

func main() {
	gsetup();
	for (var i = 0; i < 512; i = i + 1) { dig[i] = rnd() % 10; }
	var acc = 0;
	var it = 0;
	while (it < 7000) {
		var carry = addto(it, rnd() % 10);
		if (carry == 1) { carry = addto(it + 1, 1); }
		if (it % 1200 == 7) { acc = acc + normalize(it); }
		if (dig[it % 512] > 7) { acc = acc + 1; } else { acc = acc - dig[it % 512] % 2; }
		it = it + 1;
	}
	print(acc);
	print(carryouts);
	return acc + carryouts;
}
` + ballast("g", 8, 240),
}

var wBzip2 = Workload{
	Name:  "bzip2",
	Class: "INT",
	Desc:  "run-length and move-to-front coding over pseudo-random data",
	SPEC: "bzip2: ~2100 distinct paths, 62% flow in 1%-hot paths, 49% " +
		"calls inlined, unroll 1.99 (some counted loops, some data loops)",
	Source: branchlessRnd + `
array buf[4096];
array mtf[64];
var outbits = 0;
var tweak = 0;

func emit(n) { outbits = outbits + n; return outbits; }

func mtfpos(v) {
	var i = 0;
	var probes = 0;
	while (mtf[i % 64] != v && i < 63) {
		if ((mtf[i % 64] + i) % 2 == 0) { probes = probes + 1; } else { probes = probes + 2; }
		if ((mtf[i % 64] + v) % 4 < 2) { probes = probes + 3; }
		i = i + 1;
	}
	tweak = tweak + probes % 3;
	var j = i;
	while (j > 0) { mtf[j % 64] = mtf[(j - 1) % 64]; j = j - 1; }
	mtf[0] = v;
	return i;
}

func main() {
	zsetup();
	for (var i = 0; i < 64; i = i + 1) { mtf[i] = i; }
	for (var i = 0; i < 4096; i = i + 1) {
		// Runs: hold each symbol for a geometric-ish stretch.
		if (rnd() % 100 < 70 && i > 0) { buf[i] = buf[i - 1]; }
		else { buf[i] = rnd() % 64; }
	}
	var check = 0;
	for (var blk = 0; blk < 12; blk = blk + 1) {
		var run = 0;
		for (var i = 0; i < 4096; i = i + 1) {
			var v = buf[(blk * 131 + i) % 4096];
			if (i > 0 && v == buf[(blk * 131 + i - 1) % 4096]) {
				run = run + 1;
				if (run == 4) { emit(8); run = 0; }
			} else {
				var p = mtfpos(v % 64);
				if (p == 0) { emit(1); } else if (p < 8) { emit(4); } else { emit(7); }
				run = 1;
			}
			if ((v + i) % 4 < 2) { tweak = tweak + 1; }
		}
		check = (check + outbits) % 1000003;
	}
	print(check);
	print(tweak);
	return check + tweak;
}
` + ballast("z", 8, 240),
}

var wTwolf = Workload{
	Name:  "twolf",
	Class: "INT",
	Desc:  "cell-placement annealing with poorly predictable accept logic",
	SPEC: "twolf: ~2000 distinct paths, 67% flow in 1%-hot paths, 23% " +
		"calls inlined, unroll 2.19; among the worst edge-profile coverage, " +
		"so PPP overhead stays above 10%",
	Source: branchlessRnd + `
array cells[512];
array net[512];
var penalty = 0;

// Balanced, data-dependent decisions dominate the hot loop: the edge
// profile predicts little, so PPP must keep instrumentation here.
func wirelen(a, b) {
	var d = cells[a % 512] - cells[b % 512];
	if (d < 0) { d = 0 - d; }
	return d;
}

func trymove(i) {
	var before = wirelen(i, i + 1) + wirelen(i, i + 3);
	var pos = cells[i % 512];
	cells[i % 512] = (pos + rnd() % 33) % 401;
	var after = wirelen(i, i + 1) + wirelen(i, i + 3);
	var delta = after - before;
	if (delta < 0) { return 1; }
	if (delta % 2 == 0 && rnd() % 2 == 0) { return 1; }
	if (delta % 3 == 0 && rnd() % 4 < 2) { penalty = penalty + 1; return 1; }
	cells[i % 512] = pos;
	return 0;
}

func main() {
	tsetup();
	for (var i = 0; i < 512; i = i + 1) { cells[i] = rnd() % 401; net[i] = rnd() % 512; }
	var acc = 0;
	var it = 0;
	while (it < 26000) {
		var keep = trymove(net[it % 512]);
		if (keep == 1) { acc = acc + 1; }
		if (it % 2 == 0) { acc = acc + wirelen(it, it + 7) % 3; }
		else if (it % 5 < 2) { acc = acc - wirelen(it, it + 11) % 2; }
		it = it + 1;
	}
	print(acc);
	print(penalty);
	return acc + penalty;
}
` + ballast("t", 8, 240),
}
