package workloads

import (
	"fmt"
	"strings"
)

// ballast generates cold padding routines. Real SPEC programs are tens
// of thousands of statements, so the paper's 5% code-bloat budget
// easily covers their small hot callees; our kernels alone would be so
// small that 5% admits nothing. Ballast restores a realistic
// size-to-hot-code ratio: nfuncs routines of ~stmts statements each
// (above the 200-statement inlining cap, so they never compete for the
// budget), all invoked once from a setup routine.
//
// The generated functions are named <prefix>0..<prefix>N-1 and the
// driver <prefix>setup; call <prefix>setup() once from main.
func ballast(prefix string, nfuncs, stmts int) string {
	var sb strings.Builder
	for i := 0; i < nfuncs; i++ {
		fmt.Fprintf(&sb, "func %s%d(x) {\n\tvar a = x + %d;\n", prefix, i, i)
		// Each statement lowers to ~3 IR instructions.
		for j := 0; j < stmts/3; j++ {
			fmt.Fprintf(&sb, "\ta = a * 3 + %d;\n", j%7)
		}
		sb.WriteString("\treturn a;\n}\n")
	}
	fmt.Fprintf(&sb, "func %ssetup() {\n\tvar t = 0;\n", prefix)
	for i := 0; i < nfuncs; i++ {
		fmt.Fprintf(&sb, "\tt = t + %s%d(%d);\n", prefix, i, i)
	}
	sb.WriteString("\treturn t;\n}\n")
	return sb.String()
}
