package workloads

// The ten floating-point workloads (on integer arithmetic — the paths
// care about control flow, not number format). FP SPEC2000 programs
// are loop-dominated: few distinct paths, high trip counts, heavy
// unrolling, and edge profiles that predict paths well. swim and
// mgrid are engineered so PPP instruments nothing at all (every
// routine is all-obvious or has >= 75% edge-profile coverage), which
// exercises the paper's potential-flow fallback for accuracy.

var wWupwise = Workload{
	Name:  "wupwise",
	Class: "FP",
	Desc:  "blocked matrix kernel with data-dependent sign handling",
	SPEC: "wupwise: ~130 distinct paths but the worst edge-profile " +
		"coverage of the FP suite, so PPP overhead stays above 10%; " +
		"unroll 1.9, no inlining",
	Source: `
array mat[1024];
array vec[32];
var checks = 0;

// gemv exceeds 200 statements so it is never inlined (wupwise inlines
// nothing in Table 1). The balanced sign branches defeat the edge
// profile.
func gemv(base) {
	var acc = 0;
	for (var i = 0; i < 32; i = i + 1) {
		var row = 0;
		for (var j = 0; j < 32; j = j + 1) {
			var m = mat[(base + i * 32 + j) % 1024];
			if (m % 2 == 0) { row = row + m * vec[j]; } else { row = row - m * vec[j]; }
			if (m / 2 % 2 == 0) { row = row + 1; } else { row = row - 1; }
		}
		if (row % 3 == 0) { acc = acc + row % 1009; } else { acc = acc - row % 503; }
		vec[i] = (vec[i] + acc) % 2003;
	}
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0; acc = acc % 99991;
	acc = acc * 3 + 1; acc = acc * 3 + 2; acc = acc * 3 + 0;
	return acc % 99991;
}

func main() {
	for (var i = 0; i < 1024; i = i + 1) { mat[i] = (i * 2654435761) % 4093; }
	for (var i = 0; i < 32; i = i + 1) { vec[i] = i * 7 + 1; }
	var sum = 0;
	for (var it = 0; it < 220; it = it + 1) {
		sum = (sum + gemv(it * 13)) % 1000003;
		if (sum % 2 == 0) { checks = checks + 1; }
	}
	print(sum);
	print(checks);
	return sum + checks;
}
`,
}

var wSwim = Workload{
	Name:  "swim",
	Class: "FP",
	Desc:  "shallow-water stencil: pure counted loops, no data branches",
	SPEC: "swim: ~75 distinct paths, 97% flow in 1%-hot paths, avg 1.0 " +
		"branches/path, unroll 4.0; PPP adds no instrumentation at all",
	Source: `
array u[4096];
array unew[4096];

func main() {
	for (var i = 0; i < 4096; i = i + 1) { u[i] = (i * 37 + 11) % 1000; }
	var check = 0;
	for (var t = 0; t < 25; t = t + 1) {
		for (var i = 1; i < 63; i = i + 1) {
			for (var j = 1; j < 63; j = j + 1) {
				var c = i * 64 + j;
				unew[c] = (u[c - 1] + u[c + 1] + u[c - 64] + u[c + 64] + 2 * u[c]) / 6;
			}
		}
		for (var i = 1; i < 63; i = i + 1) {
			for (var j = 1; j < 63; j = j + 1) {
				var c = i * 64 + j;
				u[c] = (unew[c] * 99 + 7) % 100000;
			}
		}
		check = (check + u[t % 4096]) % 1000003;
	}
	print(check);
	return check;
}
`,
}

var wMgrid = Workload{
	Name:  "mgrid",
	Class: "FP",
	Desc:  "multigrid V-cycle on nested grids: counted loops only",
	SPEC: "mgrid: ~220 distinct paths, 86% flow in 1%-hot paths, avg 1.2 " +
		"branches/path, unroll 4.0; PPP adds no instrumentation at all",
	Source: `
array fine[9409];
array coarse[2401];

func main() {
	for (var i = 0; i < 9409; i = i + 1) { fine[i] = (i * 53 + 29) % 991; }
	var check = 0;
	for (var cyc = 0; cyc < 10; cyc = cyc + 1) {
		// Restrict to the coarse grid (fine is 97x97, coarse 49x49).
		for (var i = 1; i < 48; i = i + 1) {
			for (var j = 1; j < 48; j = j + 1) {
				var f = (2 * i) * 97 + 2 * j;
				coarse[i * 49 + j] = (fine[f] * 4 + fine[f - 1] + fine[f + 1] + fine[f - 97] + fine[f + 97]) / 8;
			}
		}
		// Smooth the coarse grid.
		for (var s = 0; s < 3; s = s + 1) {
			for (var i = 1; i < 48; i = i + 1) {
				for (var j = 1; j < 48; j = j + 1) {
					var c = i * 49 + j;
					coarse[c] = (coarse[c - 1] + coarse[c + 1] + coarse[c - 49] + coarse[c + 49]) / 4;
				}
			}
		}
		// Prolongate back.
		for (var i = 1; i < 48; i = i + 1) {
			for (var j = 1; j < 48; j = j + 1) {
				var f = (2 * i) * 97 + 2 * j;
				fine[f] = (fine[f] + coarse[i * 49 + j]) / 2 + 1;
			}
		}
		check = (check + fine[(cyc * 67) % 9409]) % 1000003;
	}
	print(check);
	return check;
}
`,
}

var wApplu = Workload{
	Name:  "applu",
	Class: "FP",
	Desc:  "SSOR sweeps with a biased pivot guard",
	SPEC: "applu: ~240 distinct paths, 91% flow in 1%-hot paths, " +
		"unroll 1.31, no inlining; mildly branchy loop bodies",
	Source: `
array a[1156];
var pivots = 0;

func main() {
	for (var i = 0; i < 1156; i = i + 1) { a[i] = (i * 41 + 13) % 887 + 1; }
	var check = 0;
	for (var sweep = 0; sweep < 55; sweep = sweep + 1) {
		for (var i = 1; i < 33; i = i + 1) {
			for (var j = 1; j < 33; j = j + 1) {
				var c = i * 34 + j;
				var v = (a[c - 1] * 3 + a[c] * 10 + a[c + 1] * 3 + a[c - 34] + a[c + 34]) / 18;
				if (v == 0) { v = 1; pivots = pivots + 1; }
				a[c] = v % 10007 + 1;
			}
		}
		check = (check + a[(sweep * 97) % 1156]) % 1000003;
	}
	print(check);
	print(pivots);
	return check + pivots;
}
`,
}

var wMesa = Workload{
	Name:  "mesa",
	Class: "FP",
	Desc:  "vertex pipeline with a clip-test routine of rare outcomes",
	SPEC: "mesa: ~410 distinct paths, 79% flow in 1%-hot paths, 0% " +
		"inlining, unroll 2.31; hosts the second routine whose global " +
		"criterion self-adjusts (Section 4.3)",
	Source: `
array verts[1024];
array out[1024];
var clipped = 0;

// cliptest is the second SAC target: thirteen plane tests, six firing
// ~6-7% of the time, and over 200 statements so it is never inlined.
func cliptest(v) {
	var mask = 0;
	if (v % 100 < 40) { mask = mask + 1; } else { mask = mask + 2; }
	if (v % 97 < 45) { mask = mask + 4; } else { mask = mask + 8; }
	if (v % 89 < 55) { mask = mask + 16; } else { mask = mask + 32; }
	if (v % 83 < 35) { mask = mask + 64; } else { mask = mask + 128; }
	if (v % 79 < 50) { mask = mask + 256; } else { mask = mask + 512; }
	if (v % 73 < 42) { mask = mask + 1024; } else { mask = mask + 1; }
	if (v % 71 < 38) { mask = mask + 2048; } else { mask = mask + 2; }
	if (v % 113 < 10) { mask = mask + 4096; clipped = clipped + 1; } else { mask = mask + 3; }
	if (v % 109 < 9) { mask = mask + 8192; } else { mask = mask + 5; }
	if (v % 107 < 9) { mask = mask + 16384; } else { mask = mask + 6; }
	if (v % 103 < 9) { mask = mask + 32768; } else { mask = mask + 7; }
	if (v % 101 < 9) { mask = mask + 65536; } else { mask = mask + 9; }
	if (v % 127 < 11) { mask = mask + 131072; } else { mask = mask + 10; }
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0; mask = mask % 99991;
	mask = mask * 3 + 1; mask = mask * 3 + 2; mask = mask * 3 + 0;
	return mask % 99991;
}

func main() {
	for (var i = 0; i < 1024; i = i + 1) { verts[i] = (i * 2654435761) % 65521; }
	var check = 0;
	for (var frame = 0; frame < 26; frame = frame + 1) {
		// Transform pass: pure counted loop over vertices.
		for (var i = 0; i < 1024; i = i + 1) {
			out[i] = (verts[i] * 31 + frame * 17) % 65521;
		}
		// Clip pass: one cliptest per strip of 32 vertices.
		for (var s = 0; s < 32; s = s + 1) {
			check = (check + cliptest(out[(s * 32 + frame) % 1024])) % 1000003;
		}
		// Lighting pass: widens total program flow relative to the
		// clip tests so the self-adjusting criterion converges fast.
		for (var i = 0; i < 1024; i = i + 1) {
			out[i] = (out[i] * 13 + i) % 65521;
		}
		// Raster pass: counted loop with a shading bias.
		for (var i = 0; i < 1024; i = i + 1) {
			var p = out[i];
			if (p % 16 < 13) { verts[i] = p / 2 + 3; } else { verts[i] = p / 3 + 7; }
		}
	}
	print(check);
	print(clipped);
	return check + clipped;
}
`,
}

var wArt = Workload{
	Name:  "art",
	Class: "FP",
	Desc:  "adaptive-resonance image matcher with tiny hot helpers",
	SPEC: "art: ~460 distinct paths, 88% flow in 1%-hot paths, 100% calls " +
		"inlined, unroll 4.0",
	Source: `
array f1[400];
array weights[400];
var winners = 0;

func stimulus(i) { return (f1[i % 400] * 3 + 7) % 2048; }
func match(i) { return (stimulus(i) * weights[i % 400]) % 4093; }

func main() {
	asetup();
	for (var i = 0; i < 400; i = i + 1) {
		f1[i] = (i * 97 + 31) % 2048;
		weights[i] = (i * 61 + 13) % 1024 + 1;
	}
	var check = 0;
	for (var epoch = 0; epoch < 140; epoch = epoch + 1) {
		var best = 0;
		var bestv = 0;
		for (var i = 0; i < 400; i = i + 1) {
			var m = match(i);
			if (m > bestv) { bestv = m; best = i; }
		}
		winners = winners + best % 7;
		for (var i = 0; i < 400; i = i + 1) {
			weights[i] = (weights[i] * 15 + stimulus(i + best)) / 16 + 1;
		}
		check = (check + bestv) % 1000003;
	}
	print(check);
	print(winners);
	return check + winners;
}
` + ballast("a", 10, 240),
}

var wEquake = Workload{
	Name:  "equake",
	Class: "FP",
	Desc:  "sparse matrix-vector earthquake step with inlinable helpers",
	SPEC: "equake: ~170 distinct paths, 96% flow in 1%-hot paths, 100% " +
		"calls inlined, unroll 2.97",
	Source: `
array val[2048];
array col[2048];
array x[256];
array y[256];

func axpy(v, c) { return v * x[c % 256]; }
func damp(v) { return v * 9 / 10 + 1; }

func main() {
	esetup();
	for (var i = 0; i < 2048; i = i + 1) {
		val[i] = (i * 29 + 17) % 211 + 1;
		col[i] = (i * 7919) % 256;
	}
	for (var i = 0; i < 256; i = i + 1) { x[i] = i + 1; }
	var check = 0;
	for (var step = 0; step < 120; step = step + 1) {
		for (var r = 0; r < 256; r = r + 1) {
			var acc = 0;
			for (var k = 0; k < 8; k = k + 1) {
				acc = acc + axpy(val[(r * 8 + k) % 2048], col[(r * 8 + k) % 2048]);
			}
			y[r] = damp(acc % 100003);
		}
		for (var r = 0; r < 256; r = r + 1) { x[r] = (x[r] + y[r]) % 100003; }
		check = (check + x[(step * 31) % 256]) % 1000003;
	}
	print(check);
	return check;
}
` + ballast("e", 10, 240),
}

var wAmmp = Workload{
	Name:  "ammp",
	Class: "FP",
	Desc:  "molecular-dynamics force loop with a cutoff test",
	SPEC: "ammp: ~600 distinct paths, 90% flow in 1%-hot paths, 98% calls " +
		"inlined, unroll 1.81; the cutoff branch is biased but not cold",
	Source: `
array posx[256];
array force[256];
var interactions = 0;

func dist2(i, j) {
	var d = posx[i % 256] - posx[j % 256];
	return d * d;
}
func pair(i, j) { return 1000 / (dist2(i, j) % 97 + 3); }

func main() {
	nsetup();
	for (var i = 0; i < 256; i = i + 1) { posx[i] = (i * 137 + 41) % 1009; }
	var check = 0;
	for (var step = 0; step < 45; step = step + 1) {
		for (var i = 0; i < 256; i = i + 1) {
			var f = 0;
			for (var j = 1; j < 12; j = j + 1) {
				var d2 = dist2(i, i + j * 7);
				if (d2 % 100 < 78) {
					f = f + pair(i, i + j * 7);
					interactions = interactions + 1;
				}
			}
			force[i] = f % 10007;
		}
		for (var i = 0; i < 256; i = i + 1) {
			posx[i] = (posx[i] + force[i] / 16) % 100003;
		}
		check = (check + posx[(step * 13) % 256]) % 1000003;
	}
	print(check);
	print(interactions);
	return check + interactions;
}
` + ballast("n", 10, 240),
}

var wSixtrack = Workload{
	Name:  "sixtrack",
	Class: "FP",
	Desc:  "particle tracking through a lattice of thin elements",
	SPEC: "sixtrack: ~950 distinct paths, 90% flow in 1%-hot paths, 57% " +
		"calls inlined, unroll 3.35, and the suite's biggest speedup from " +
		"the transformations (call-heavy tight loops)",
	Source: `
array px[128];
array pv[128];
var lost = 0;

func kick(p, k) { return (p * 31 + k * 7) % 20011; }
func drift(p, v) { return (p + v / 4) % 20011; }

func element(kind, idx) {
	if (kind % 3 == 0) { pv[idx] = kick(pv[idx], px[idx]); return 1; }
	pv[idx] = drift(pv[idx], px[idx]);
	return 2;
}

func main() {
	ssetup();
	for (var i = 0; i < 128; i = i + 1) { px[i] = i * 19 + 3; pv[i] = i * 5 + 1; }
	var check = 0;
	for (var turn = 0; turn < 55; turn = turn + 1) {
		for (var e = 0; e < 48; e = e + 1) {
			for (var p = 0; p < 128; p = p + 1) {
				element(turn + e, p);
				px[p] = drift(px[p], pv[p]);
			}
		}
		for (var p = 0; p < 128; p = p + 1) {
			if (px[p] > 19000) { px[p] = px[p] % 1000; lost = lost + 1; }
		}
		check = (check + px[(turn * 11) % 128]) % 1000003;
	}
	print(check);
	print(lost);
	return check + lost;
}
` + ballast("s", 10, 240),
}

var wApsi = Workload{
	Name:  "apsi",
	Class: "FP",
	Desc:  "pollutant transport built from many tiny helpers",
	SPEC: "apsi: originally very short paths (0.44 branches/path) that " +
		"inlining (100%) and unrolling (3.9) transform into long ones — " +
		"the suite's most dramatic path-shape change",
	Source: `
array conc[512];
array wind[512];
var steps = 0;

func advect(c, w) { return (c * 15 + w) / 16; }
func diffuse(a, b, c) { return (a + 2 * b + c) / 4; }
func decay(c) { return c * 99 / 100; }
func source(i) { return (i * 11 + 5) % 13; }

func main() {
	usetup();
	for (var i = 0; i < 512; i = i + 1) {
		conc[i] = (i * 23 + 9) % 503;
		wind[i] = (i * 3) % 17 + 1;
	}
	var check = 0;
	for (var t = 0; t < 110; t = t + 1) {
		for (var i = 1; i < 511; i = i + 1) {
			var c = advect(conc[i], wind[i]);
			c = diffuse(conc[i - 1], c, conc[i + 1]);
			c = decay(c) + source(i + t);
			conc[i] = c % 100003;
			steps = steps + 1;
		}
		check = (check + conc[(t * 41) % 512]) % 1000003;
	}
	print(check);
	print(steps);
	return check + steps;
}
` + ballast("u", 10, 240),
}
