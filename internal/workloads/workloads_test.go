package workloads_test

import (
	"strings"
	"testing"

	"pathprof/internal/core"
	"pathprof/internal/lower"
	"pathprof/internal/vm"
	"pathprof/internal/workloads"
)

func TestSuiteShape(t *testing.T) {
	all := workloads.All()
	if len(all) != 18 {
		t.Fatalf("suite has %d workloads, want 18 (one per SPEC2000 row)", len(all))
	}
	if len(workloads.Ints()) != 8 {
		t.Errorf("INT workloads = %d, want 8", len(workloads.Ints()))
	}
	if len(workloads.FPs()) != 10 {
		t.Errorf("FP workloads = %d, want 10", len(workloads.FPs()))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if w.Name == "" || w.Source == "" || w.Desc == "" || w.SPEC == "" {
			t.Errorf("workload %q incomplete", w.Name)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		got, ok := workloads.ByName(w.Name)
		if !ok || got.Name != w.Name {
			t.Errorf("ByName(%q) failed", w.Name)
		}
	}
	if _, ok := workloads.ByName("nope"); ok {
		t.Error("ByName accepted unknown name")
	}
	if got := workloads.Names(); len(got) != 18 || got[0] != "vpr" {
		t.Errorf("Names() = %v", got)
	}
}

// TestAllCompileAndRun checks every workload compiles, validates, runs
// deterministically, and prints at least one checksum.
func TestAllCompileAndRun(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := lower.Compile(w.Source, lower.Options{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var out strings.Builder
			r1, err := vm.Run(prog, vm.Options{Output: &out})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if out.Len() == 0 {
				t.Error("no checksum printed")
			}
			r2, err := vm.Run(prog, vm.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r1.Ret != r2.Ret {
				t.Errorf("nondeterministic: %d vs %d", r1.Ret, r2.Ret)
			}
			if r1.Steps < 100000 {
				t.Errorf("workload too small: %d steps", r1.Steps)
			}
			if r1.Steps > 60_000_000 {
				t.Errorf("workload too large: %d steps", r1.Steps)
			}
		})
	}
}

// TestStagedInvariants runs the full optimization staging on every
// workload and checks the semantic and structural invariants.
func TestStagedInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("staging all workloads is slow")
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			s, err := core.NewPipeline(w.Name, w.Source).Stage()
			if err != nil {
				t.Fatal(err)
			}
			if s.Base.Ret != s.OriginalRun.Ret {
				t.Fatal("optimizations changed the result")
			}
			opt := core.StatsOf(s.Base)
			if opt.DynPaths < 5000 {
				t.Errorf("only %d dynamic paths", opt.DynPaths)
			}
			// Inlining + unrolling must not shrink average path length.
			orig := core.StatsOf(s.OriginalRun)
			if opt.AvgInstrs < orig.AvgInstrs {
				t.Errorf("paths shrank: %.1f -> %.1f", orig.AvgInstrs, opt.AvgInstrs)
			}
			pct := s.PctCallsInlined()
			if pct < 0 || pct > 1 {
				t.Errorf("%% inlined out of range: %v", pct)
			}
			switch w.Name {
			case "crafty", "wupwise", "swim", "mgrid", "applu", "mesa":
				// Table 1 reports 0% (or ~0) for these.
				if pct > 0.05 {
					t.Errorf("%s inlined %.0f%%, want ~0%%", w.Name, 100*pct)
				}
			case "mcf", "art", "equake", "apsi":
				if pct < 0.5 {
					t.Errorf("%s inlined %.0f%%, want high", w.Name, 100*pct)
				}
			}
		})
	}
}
