package opt_test

import (
	"testing"

	"pathprof/internal/ir"
	"pathprof/internal/lower"
	"pathprof/internal/opt"
	"pathprof/internal/profile"
	"pathprof/internal/vm"
)

const benchSrc = `
var seed = 12345;
array data[64];

func rand() {
	seed = (seed * 1103515245 + 12345) % 2147483648;
	if (seed < 0) { seed = 0 - seed; }
	return seed;
}

func leaf(x) { return x * 3 + 1; }

func work(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		if (rand() % 4 == 0) { s = s + leaf(i); } else { s = s + i; }
	}
	return s;
}

func main() {
	var t = 0;
	for (var k = 0; k < 30; k = k + 1) {
		t = t + work(50);
		data[k] = t;
	}
	return t;
}`

func compileRun(t *testing.T, unroll map[string]int) (*ir.Program, *vm.Result) {
	t.Helper()
	prog, err := lower.Compile(benchSrc, lower.Options{Unroll: unroll})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, vm.Options{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	return prog, res
}

func TestInlinePreservesSemantics(t *testing.T) {
	prog, base := compileRun(t, nil)
	// The test program is tiny, so a 5% bloat budget admits nothing;
	// loosen it to exercise the mechanics.
	par := opt.InlineParams{Bloat: 0.8, MaxCallee: 200}
	ires, err := opt.Inline(prog, base.Edges, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(ires.Sites) == 0 {
		t.Fatal("nothing inlined")
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("inlined program invalid: %v", err)
	}
	res2, err := vm.Run(prog, vm.Options{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Ret != base.Ret {
		t.Fatalf("inlining changed result: %d vs %d", res2.Ret, base.Ret)
	}
	if res2.DynCalls >= base.DynCalls {
		t.Errorf("dynamic calls %d not reduced from %d", res2.DynCalls, base.DynCalls)
	}
	// Inlining must pay off under the call-cost model.
	if res2.BaseCost >= base.BaseCost {
		t.Errorf("inlined cost %d >= base %d", res2.BaseCost, base.BaseCost)
	}
}

func TestInlineRespectsBloat(t *testing.T) {
	prog, base := compileRun(t, nil)
	size0 := prog.Size()
	ires, err := opt.Inline(prog, base.Edges, opt.DefaultInlineParams())
	if err != nil {
		t.Fatal(err)
	}
	budget := int(float64(size0) * 1.05)
	if ires.SizeTo > budget {
		t.Errorf("size %d exceeds budget %d (from %d)", ires.SizeTo, budget, size0)
	}
	if ires.SizeFrom != size0 {
		t.Errorf("SizeFrom = %d, want %d", ires.SizeFrom, size0)
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	src := `
func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
func main() { return fib(15); }`
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := vm.Run(prog, vm.Options{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	ires, err := opt.Inline(prog, base.Edges, opt.InlineParams{Bloat: 0.8, MaxCallee: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ires.Sites {
		if s.Caller == "fib" && s.Callee == "fib" {
			t.Error("self-recursive call inlined")
		}
	}
	res2, err := vm.Run(prog, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Ret != base.Ret {
		t.Errorf("result changed: %d vs %d", res2.Ret, base.Ret)
	}
}

func TestInlineLargeCalleeSkipped(t *testing.T) {
	prog, base := compileRun(t, nil)
	par := opt.DefaultInlineParams()
	par.MaxCallee = 1 // nothing fits
	ires, err := opt.Inline(prog, base.Edges, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(ires.Sites) != 0 {
		t.Errorf("inlined %d sites with MaxCallee=1", len(ires.Sites))
	}
}

func TestPlanUnroll(t *testing.T) {
	prog, base := compileRun(t, nil)
	plan, decisions, err := opt.PlanUnroll(prog, base.Edges, opt.DefaultUnrollParams())
	if err != nil {
		t.Fatal(err)
	}
	// work#1 runs 50 iterations per entry: unroll by 4. main#1 runs 30
	// iterations: also by 4. rand has no loops.
	if plan["work#1"] != 4 {
		t.Errorf("work#1 factor = %d, want 4 (decisions %+v)", plan["work#1"], decisions)
	}
	if plan["main#1"] != 4 {
		t.Errorf("main#1 factor = %d, want 4", plan["main#1"])
	}
	avg := opt.AvgUnrollFactor(decisions)
	if avg < 3.5 || avg > 4 {
		t.Errorf("avg unroll factor = %v, want about 4", avg)
	}

	// Low trip count: halve or skip.
	src := `
func main() {
	var s = 0;
	for (var k = 0; k < 1000; k = k + 1) {
		for (var i = 0; i < 5; i = i + 1) { s = s + i; }
	}
	return s;
}`
	p2, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := vm.Run(p2, vm.Options{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	plan2, _, err := opt.PlanUnroll(p2, r2.Edges, opt.DefaultUnrollParams())
	if err != nil {
		t.Fatal(err)
	}
	if plan2["main#2"] != 2 {
		t.Errorf("inner loop trip 5: factor = %d, want 2", plan2["main#2"])
	}
	if _, ok := plan2["main#1"]; ok {
		t.Errorf("outer loop (not inner) unrolled: %v", plan2)
	}
}

func TestUnrollSizeBudget(t *testing.T) {
	// A loop with a big body must reduce its factor.
	src := "func main() { var s = 0; for (var i = 0; i < 100; i = i + 1) {"
	for j := 0; j < 120; j++ {
		src += " s = s + 1;"
	}
	src += " } return s; }"
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, vm.Options{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := opt.PlanUnroll(prog, res.Edges, opt.DefaultUnrollParams())
	if err != nil {
		t.Fatal(err)
	}
	if f := plan["main#1"]; f > 2 {
		t.Errorf("factor = %d for ~125-stmt body, want <= 2", f)
	}
}

func TestFullStagePipeline(t *testing.T) {
	// Stage 0: plain build and run.
	p0, r0 := compileRun(t, nil)
	// Stage 1: unroll guided by the profile, re-profile.
	plan, _, err := opt.PlanUnroll(p0, r0.Edges, opt.DefaultUnrollParams())
	if err != nil {
		t.Fatal(err)
	}
	p1, err := lower.Compile(benchSrc, lower.Options{Unroll: plan})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := vm.Run(p1, vm.Options{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ret != r0.Ret {
		t.Fatalf("unrolling changed result")
	}
	// Stage 2: inline, validate, rerun with path collection.
	if _, err := opt.Inline(p1, r1.Edges, opt.InlineParams{Bloat: 0.8, MaxCallee: 200}); err != nil {
		t.Fatal(err)
	}
	if err := p1.Validate(); err != nil {
		t.Fatal(err)
	}
	r2, err := vm.Run(p1, vm.Options{CollectEdges: true, CollectPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Ret != r0.Ret {
		t.Fatalf("inlining changed result")
	}
	if r2.DynCalls >= r1.DynCalls {
		t.Errorf("calls not reduced: %d vs %d", r2.DynCalls, r1.DynCalls)
	}
	// Paths must be longer on average after inlining+unrolling.
	avgLen := func(res *vm.Result) float64 {
		var instrs, count int64
		for _, pp := range res.Paths {
			for _, pc := range pp.Paths() {
				instrs += int64(pc.Path.Instrs()) * pc.Count
				count += pc.Count
			}
		}
		return float64(instrs) / float64(count)
	}
	r0p, err := vm.Run(p0, vm.Options{CollectPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if avgLen(r2) <= avgLen(r0p) {
		t.Errorf("avg path length did not grow: %v vs %v", avgLen(r2), avgLen(r0p))
	}
}

// Keep profile import used even if tests above change.
var _ = profile.EdgeKey{}
var _ = ir.Program{}
