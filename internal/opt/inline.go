package opt

import (
	"fmt"
	"sort"

	"pathprof/internal/ir"
	"pathprof/internal/profile"
)

// InlineParams holds the inliner's budgets (paper defaults: 5% code
// bloat, callees of at most 200 IR statements).
type InlineParams struct {
	Bloat     float64
	MaxCallee int
}

// DefaultInlineParams returns the paper's settings.
func DefaultInlineParams() InlineParams {
	return InlineParams{Bloat: 0.05, MaxCallee: 200}
}

// InlinedSite records one inlined call for reports.
type InlinedSite struct {
	Caller string
	Callee string
	Freq   int64 // call-site execution frequency from the profile
}

// InlineResult summarises an inlining pass.
type InlineResult struct {
	Sites     []InlinedSite
	SizeFrom  int
	SizeTo    int
	Candidate int // call sites considered
}

// Inline performs profile-guided inlining on prog in place, following
// the paper's Arnold-style cost/benefit policy: call sites are ranked
// by expected benefit (call-site hotness) over cost (callee size) and
// inlined greedily until total program size would exceed the bloat
// budget. Self-recursive calls and callees above MaxCallee statements
// are skipped. Malformed input (a routine whose CFG cannot be derived,
// or a chosen site that is not a call) is reported as an error.
func Inline(prog *ir.Program, edges map[string]*profile.EdgeProfile, par InlineParams) (*InlineResult, error) {
	type site struct {
		caller   *ir.Func
		block    int
		instr    int
		callee   *ir.Func
		freq     int64
		priority float64
	}
	res := &InlineResult{SizeFrom: prog.Size()}

	var sites []site
	for _, f := range prog.Funcs {
		ep := edges[f.Name]
		g, err := f.CFG()
		if err != nil {
			return nil, err
		}
		if ep != nil {
			ep.ApplyTo(g)
		}
		for _, b := range f.Blocks {
			freq := g.BlockFreq(g.Blocks[b.Index])
			for i, in := range b.Instrs {
				if in.Op != ir.Call {
					continue
				}
				callee := prog.Funcs[in.Sym]
				res.Candidate++
				if callee == f {
					continue // self recursion
				}
				size := callee.Size()
				if size > par.MaxCallee || freq <= 0 {
					continue
				}
				sites = append(sites, site{
					caller: f, block: b.Index, instr: i, callee: callee,
					freq: freq, priority: float64(freq) / float64(size),
				})
			}
		}
	}
	sort.SliceStable(sites, func(i, j int) bool {
		if sites[i].priority != sites[j].priority {
			return sites[i].priority > sites[j].priority
		}
		return sites[i].freq > sites[j].freq
	})

	// Phase 1: choose sites greedily by priority under the budget.
	budget := int(float64(res.SizeFrom) * (1 + par.Bloat))
	size := res.SizeFrom
	var chosen []site
	for _, s := range sites {
		grow := s.callee.Size() - 1
		if size+grow > budget {
			continue
		}
		size += grow
		chosen = append(chosen, s)
		res.Sites = append(res.Sites, InlinedSite{Caller: s.caller.Name, Callee: s.callee.Name, Freq: s.freq})
	}

	// Phase 2: apply the splices bottom-up. A callee must receive its
	// own inlines before being copied anywhere, so callers are ordered
	// by their depth in the chosen-site call graph (leaf callers
	// first). Within one block, descending instruction order keeps
	// earlier indices valid across splits.
	depthMemo := map[*ir.Func]int{}
	var calleeDepth func(f *ir.Func) int
	calleeDepth = func(f *ir.Func) int {
		if d, ok := depthMemo[f]; ok {
			return d // 0 during recursion breaks cycles
		}
		depthMemo[f] = 0
		max := 0
		for _, s := range chosen {
			if s.caller == f {
				if d := calleeDepth(s.callee) + 1; d > max {
					max = d
				}
			}
		}
		depthMemo[f] = max
		return max
	}
	sort.SliceStable(chosen, func(i, j int) bool {
		a, b := chosen[i], chosen[j]
		if da, db := calleeDepth(a.caller), calleeDepth(b.caller); da != db {
			return da < db
		}
		if a.caller != b.caller {
			return a.caller.Name < b.caller.Name
		}
		if a.block != b.block {
			return a.block < b.block
		}
		return a.instr > b.instr
	})
	for _, s := range chosen {
		if err := inlineAt(s.caller, s.block, s.instr, s.callee); err != nil {
			return nil, err
		}
	}
	res.SizeTo = prog.Size()
	return res, nil
}

// inlineAt splices callee into caller at the call instruction
// (blockIdx, instrIdx), splitting the block around the call.
func inlineAt(caller *ir.Func, blockIdx, instrIdx int, callee *ir.Func) error {
	b := caller.Blocks[blockIdx]
	call := b.Instrs[instrIdx]
	if call.Op != ir.Call {
		return fmt.Errorf("opt: inline site %s b%d[%d] is %v, not a call",
			caller.Name, blockIdx, instrIdx, call.Op)
	}

	// Continuation block takes the tail and the original terminator.
	cont := caller.NewBlock("")
	cont.Instrs = append(cont.Instrs, b.Instrs[instrIdx+1:]...)
	cont.Term = b.Term
	b.Instrs = b.Instrs[:instrIdx]

	// Copy callee blocks with register and block remapping.
	regBase := caller.NRegs
	caller.NRegs += callee.NRegs
	blockBase := len(caller.Blocks)
	remap := func(r int) int { return r + regBase }
	for _, cb := range callee.Blocks {
		nb := caller.NewBlock("")
		for _, in := range cb.Instrs {
			ni := in
			if in.Op != ir.StoreG && in.Op != ir.Print {
				ni.Dst = remap(in.Dst)
			}
			switch in.Op {
			case ir.Const, ir.LoadG:
				// no register sources
			case ir.StoreG, ir.Print, ir.Neg, ir.Not, ir.Mov, ir.LoadA:
				ni.A = remap(in.A)
			case ir.StoreA:
				ni.A = remap(in.A)
				ni.B = remap(in.B)
			case ir.Call:
				ni.Args = make([]int, len(in.Args))
				for k, a := range in.Args {
					ni.Args[k] = remap(a)
				}
			default: // binary ops
				ni.A = remap(in.A)
				ni.B = remap(in.B)
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
		t := cb.Term
		switch t.Kind {
		case ir.Jump:
			nb.Term = ir.Term{Kind: ir.Jump, To: t.To + blockBase}
		case ir.Branch:
			nb.Term = ir.Term{Kind: ir.Branch, Cond: remap(t.Cond), To: t.To + blockBase, Else: t.Else + blockBase}
		case ir.Ret:
			// Return value lands in the call's destination register,
			// then control continues after the call.
			if t.Ret >= 0 {
				nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.Mov, Dst: call.Dst, A: remap(t.Ret)})
			} else {
				nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.Const, Dst: call.Dst, Imm: 0})
			}
			nb.Term = ir.Term{Kind: ir.Jump, To: cont.Index}
		}
	}

	// Pass arguments and enter the callee copy.
	for p := 0; p < callee.NParams; p++ {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.Mov, Dst: regBase + p, A: call.Args[p]})
	}
	b.Term = ir.Term{Kind: ir.Jump, To: blockBase + callee.Entry}

	// Copy the callee's loop metadata so later unroll analyses still
	// see its loops (IDs keep the callee's name; duplicates are fine).
	for _, li := range callee.Loops {
		caller.Loops = append(caller.Loops, ir.LoopInfo{ID: li.ID, Header: li.Header + blockBase, Kind: li.Kind})
	}
	return nil
}
