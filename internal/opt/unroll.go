// Package opt implements the edge-profile-guided transformations that
// the paper applies before path profiling (Section 7.3): loop
// unrolling by a factor of four (less or none for low trip counts or
// large bodies) and Arnold-style cost/benefit inlining under a code
// bloat budget. These make paths longer and harder to predict,
// providing the realistic setting the evaluation requires.
package opt

import (
	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/profile"
)

// UnrollParams holds the unroller's thresholds (paper defaults: factor
// 4, skip loops with average trip count below 8 or unrolled bodies
// larger than 256 IR statements; while loops are never unrolled).
type UnrollParams struct {
	Factor  int
	MinTrip float64
	MaxBody int
}

// DefaultUnrollParams returns the paper's settings.
func DefaultUnrollParams() UnrollParams {
	return UnrollParams{Factor: 4, MinTrip: 8, MaxBody: 256}
}

// UnrollDecision records why a loop got its factor, for reports.
type UnrollDecision struct {
	LoopID string
	Func   string
	Kind   string
	Trip   float64
	Body   int   // body size in IR statements
	Iters  int64 // dynamic iterations (header executions)
	Factor int
}

// PlanUnroll decides per-loop unroll factors from a prior run's edge
// profile. Only inner for-loops are unrolled; the factor halves until
// the replicated body fits the size budget. A routine whose CFG cannot
// be derived (malformed input) is reported as an error.
func PlanUnroll(prog *ir.Program, edges map[string]*profile.EdgeProfile, par UnrollParams) (map[string]int, []UnrollDecision, error) {
	plan := map[string]int{}
	var decisions []UnrollDecision
	for _, f := range prog.Funcs {
		ep := edges[f.Name]
		if ep == nil {
			continue
		}
		g, err := f.CFG()
		if err != nil {
			return nil, nil, err
		}
		ep.ApplyTo(g)
		g.Analyze()
		loopAt := map[int]*cfg.Loop{}
		inner := map[int]bool{}
		for _, l := range g.Loops() {
			loopAt[l.Header.ID] = l
		}
		for _, l := range g.InnerLoops() {
			inner[l.Header.ID] = true
		}
		for _, li := range f.Loops {
			l := loopAt[li.Header]
			if l == nil {
				continue
			}
			body := 0
			for id := range l.Blocks {
				body += len(f.Blocks[id].Instrs) + 1
			}
			iters := g.BlockFreq(l.Header)
			d := UnrollDecision{
				LoopID: li.ID, Func: f.Name, Kind: li.Kind,
				Trip: g.TripCount(l), Body: body, Iters: iters, Factor: 1,
			}
			if li.Kind == "for" && inner[li.Header] && iters > 0 {
				factor := 0
				switch {
				case d.Trip >= par.MinTrip:
					factor = par.Factor
				case d.Trip >= par.MinTrip/2:
					factor = par.Factor / 2
				}
				for factor > 1 && body*factor > par.MaxBody {
					factor /= 2
				}
				if factor > 1 {
					d.Factor = factor
					plan[li.ID] = factor
				}
			}
			decisions = append(decisions, d)
		}
	}
	return plan, decisions, nil
}

// AvgUnrollFactor returns the unroll factor averaged over dynamic loop
// iterations, as Table 1 reports it. Loops that never ran are ignored;
// a program with no executed loops reports 1.
func AvgUnrollFactor(decisions []UnrollDecision) float64 {
	var num, den float64
	for _, d := range decisions {
		num += float64(d.Factor) * float64(d.Iters)
		den += float64(d.Iters)
	}
	if den == 0 {
		return 1
	}
	return num / den
}
