package netprof_test

import (
	"reflect"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/netprof"
	"pathprof/internal/profile"
)

// wirePath builds a placeholder path the way snapshot.Decode does:
// edges carrying only IDs.
func wirePath(ids ...int) cfg.Path {
	p := make(cfg.Path, len(ids))
	for i, id := range ids {
		p[i] = &cfg.DAGEdge{ID: id}
	}
	return p
}

func TestExpectedFromWirePaths(t *testing.T) {
	pp := profile.NewPathProfile("f")
	pp.Add(wirePath(1, 2), 60) // dominant
	pp.Add(wirePath(1, 3), 30)
	pp.Add(wirePath(4), 5)
	cold := profile.NewPathProfile("g")
	cold.Add(wirePath(9), 3) // below threshold

	got := netprof.Expected(map[string]*profile.PathProfile{"f": pp, "g": cold}, 50)
	if len(got) != 1 {
		t.Fatalf("Expected returned %d predictions, want 1: %+v", len(got), got)
	}
	e := got[0]
	if e.Func != "f" || e.Head != "entry" || e.Count != 95 || e.Hits != 60 {
		t.Errorf("prediction = %+v", e)
	}
	if !reflect.DeepEqual(e.Path, []int{1, 2}) {
		t.Errorf("predicted path = %v, want [1 2]", e.Path)
	}

	// Deterministic: same profile, same output.
	again := netprof.Expected(map[string]*profile.PathProfile{"f": pp, "g": cold}, 50)
	if !reflect.DeepEqual(got, again) {
		t.Error("Expected is not deterministic")
	}
}

// TestExpectedLoopHeads: in-process paths that restart at a loop
// header (first edge is a dummy with a destination block) get their
// own head, exactly as Observe groups them.
func TestExpectedLoopHeads(t *testing.T) {
	header := &cfg.Block{ID: 7}
	loop := cfg.Path{
		&cfg.DAGEdge{ID: 11, Kind: cfg.EntryDummy, Dst: header},
		&cfg.DAGEdge{ID: 12},
	}
	entry := wirePath(1, 2)
	pp := profile.NewPathProfile("f")
	pp.Add(entry, 80)
	pp.Add(loop, 120)

	got := netprof.Expected(map[string]*profile.PathProfile{"f": pp}, 50)
	if len(got) != 2 {
		t.Fatalf("got %d predictions, want 2 (entry + loop head): %+v", len(got), got)
	}
	if got[0].Head != "entry" || got[1].Head != "b7" {
		t.Errorf("heads = %q, %q; want entry, b7", got[0].Head, got[1].Head)
	}
	if got[1].Count != 120 || got[1].Share != 1.0 {
		t.Errorf("loop head prediction = %+v", got[1])
	}
}

// TestExpectedTieBreak: equal counts break toward the smaller edge-ID
// sequence so serving is stable across runs.
func TestExpectedTieBreak(t *testing.T) {
	pp := profile.NewPathProfile("f")
	pp.Add(wirePath(5, 1), 50)
	pp.Add(wirePath(2, 9), 50)
	got := netprof.Expected(map[string]*profile.PathProfile{"f": pp}, 10)
	if len(got) != 1 || !reflect.DeepEqual(got[0].Path, []int{2, 9}) {
		t.Fatalf("tie break chose %+v, want path [2 9]", got)
	}
}
