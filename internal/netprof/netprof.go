// Package netprof implements Dynamo's NET (next-executing-tail) hot
// path predictor, which the paper contrasts with PPP in Section 2: NET
// counts executions of trace heads (loop headers and routine entries)
// and, when a head's counter crosses a threshold, records the very
// next path executed from it as that head's hot trace.
//
// NET is statistically likely to grab the hottest path of a head, but
// it selects exactly one trace per head and cannot distinguish a few
// dominant hot paths from many warm ones — the failure mode that makes
// Dynamo thrash its code cache on warm-path programs. The Selected
// traces here can be compared against the actual hot set to quantify
// that, as the paper argues PPP's wider coverage does better.
package netprof

import (
	"pathprof/internal/cfg"
)

// DefaultThreshold is Dynamo's published trace-head threshold.
const DefaultThreshold = 50

// Trace is a selected hot trace: the first path executed from a head
// after the head turned hot.
type Trace struct {
	Func string
	Key  string // Func + "|" + path string, matching eval path keys
	Path cfg.Path
}

// Predictor consumes the path stream of a run (via vm.Options.PathHook)
// and selects traces.
type Predictor struct {
	Threshold int64

	counts   map[string]int64 // per trace head
	selected map[string]*Trace
	order    []string
}

// New returns a predictor with the given head threshold (0 uses
// DefaultThreshold).
func New(threshold int64) *Predictor {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Predictor{
		Threshold: threshold,
		counts:    map[string]int64{},
		selected:  map[string]*Trace{},
	}
}

// Hook returns a function suitable for vm.Options.PathHook.
func (p *Predictor) Hook() func(fn string, path cfg.Path) {
	return p.Observe
}

// Observe processes one executed path. A path's head is its first
// block: the routine entry, or the loop header it restarted at after a
// back edge. Once a head's execution count reaches the threshold, the
// next path from it becomes the head's trace.
func (p *Predictor) Observe(fn string, path cfg.Path) {
	if len(path) == 0 {
		return
	}
	head := fn + "@" + path[0].Dst.String()
	if path[0].Kind == cfg.RealEdge {
		head = fn + "@entry"
	}
	n := p.counts[head] + 1
	p.counts[head] = n
	if n < p.Threshold {
		return
	}
	if _, done := p.selected[head]; done {
		return
	}
	cp := make(cfg.Path, len(path))
	copy(cp, path)
	p.selected[head] = &Trace{Func: fn, Key: fn + "|" + cp.String(), Path: cp}
	p.order = append(p.order, head)
}

// Traces returns the selected traces in selection order.
func (p *Predictor) Traces() []Trace {
	out := make([]Trace, 0, len(p.order))
	for _, h := range p.order {
		out = append(out, *p.selected[h])
	}
	return out
}

// Heads returns how many distinct trace heads were observed.
func (p *Predictor) Heads() int { return len(p.counts) }

// CoverageOf returns the fraction of the given flow map (path key ->
// flow) that the selected traces account for, plus the total selected.
func (p *Predictor) CoverageOf(flowByKey map[string]int64) float64 {
	var total, covered int64
	for _, f := range flowByKey {
		total += f
	}
	if total == 0 {
		return 0
	}
	seen := map[string]bool{}
	for _, tr := range p.Traces() {
		if seen[tr.Key] {
			continue
		}
		seen[tr.Key] = true
		covered += flowByKey[tr.Key]
	}
	return float64(covered) / float64(total)
}
