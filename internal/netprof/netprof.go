// Package netprof implements Dynamo's NET (next-executing-tail) hot
// path predictor, which the paper contrasts with PPP in Section 2: NET
// counts executions of trace heads (loop headers and routine entries)
// and, when a head's counter crosses a threshold, records the very
// next path executed from it as that head's hot trace.
//
// NET is statistically likely to grab the hottest path of a head, but
// it selects exactly one trace per head and cannot distinguish a few
// dominant hot paths from many warm ones — the failure mode that makes
// Dynamo thrash its code cache on warm-path programs. The Selected
// traces here can be compared against the actual hot set to quantify
// that, as the paper argues PPP's wider coverage does better.
//
// Observe is allocation-free in the steady state (heads are keyed by
// routine name and header block ID, not by a built string), so a
// predictor can tee off a profiling run's PathHook without slowing it.
// Per-shard predictors from a replicated run fan in with Merge.
package netprof

import (
	"fmt"
	"sort"

	"pathprof/internal/cfg"
	"pathprof/internal/telemetry"
)

// DefaultThreshold is Dynamo's published trace-head threshold.
const DefaultThreshold = 50

// headKey identifies a trace head without building a string per
// observed path: the routine entry (block == -1) or a loop header
// restarted at after a back edge.
type headKey struct {
	fn    string
	block int
}

// Trace is a selected hot trace: the first path executed from a head
// after the head turned hot.
type Trace struct {
	Func string
	Key  string // Func + "|" + path string, matching eval path keys
	Path cfg.Path

	head headKey
}

// Predictor consumes the path stream of a run (via vm.Options.PathHook)
// and selects traces.
type Predictor struct {
	Threshold int64

	counts   map[headKey]int64
	selected map[headKey]bool
	traces   []Trace // selection order
	// keyCov/keySeen hold the distinct trace keys in selection order:
	// several heads can select the same path, and CoverageOf must count
	// its flow once. Maintained at selection time so coverage queries
	// never rebuild a dedup map.
	keyCov  []string
	keySeen map[string]bool
}

// New returns a predictor with the given head threshold (0 uses
// DefaultThreshold).
func New(threshold int64) *Predictor {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Predictor{
		Threshold: threshold,
		counts:    map[headKey]int64{},
		selected:  map[headKey]bool{},
		keySeen:   map[string]bool{},
	}
}

// Hook returns a function suitable for vm.Options.PathHook.
func (p *Predictor) Hook() func(fn string, path cfg.Path) {
	return p.Observe
}

// Observe processes one executed path. A path's head is its first
// block: the routine entry, or the loop header it restarted at after a
// back edge. Once a head's execution count reaches the threshold, the
// path executed from it becomes the head's trace and the head stops
// counting (Dynamo stops bumping a head once its trace is in the code
// cache).
func (p *Predictor) Observe(fn string, path cfg.Path) {
	if len(path) == 0 {
		return
	}
	k := headKey{fn: fn, block: -1}
	if path[0].Kind != cfg.RealEdge {
		k.block = path[0].Dst.ID
	}
	if p.selected[k] {
		return
	}
	n := p.counts[k] + 1
	p.counts[k] = n
	if n < p.Threshold {
		return
	}
	cp := make(cfg.Path, len(path))
	copy(cp, path)
	p.selectTrace(Trace{Func: fn, Key: fn + "|" + cp.String(), Path: cp, head: k})
}

// selectTrace records a head's trace (at most one per head).
func (p *Predictor) selectTrace(tr Trace) {
	p.selected[tr.head] = true
	p.traces = append(p.traces, tr)
	if !p.keySeen[tr.Key] {
		p.keySeen[tr.Key] = true
		p.keyCov = append(p.keyCov, tr.Key)
	}
}

// Traces returns the selected traces in selection order.
func (p *Predictor) Traces() []Trace {
	out := make([]Trace, len(p.traces))
	copy(out, p.traces)
	return out
}

// Heads returns how many distinct trace heads were observed.
func (p *Predictor) Heads() int { return len(p.counts) }

// CoverageOf returns the fraction of the given flow map (path key ->
// flow) that the selected traces account for. Distinct selected keys
// are maintained incrementally, so this is a single pass over them.
func (p *Predictor) CoverageOf(flowByKey map[string]int64) float64 {
	var total, covered int64
	for _, f := range flowByKey {
		total += f
	}
	if total == 0 {
		return 0
	}
	for _, k := range p.keyCov {
		covered += flowByKey[k]
	}
	return float64(covered) / float64(total)
}

// Merge folds other's observations into p — the fan-in of per-shard
// predictors from a replicated run. Head counts sum; for a head
// selected by both predictors the receiver's (earlier shard's) trace
// wins, so merging shards in worker order is deterministic. Because
// each shard crosses the threshold on its own stream, a merged
// predictor matches a sequential one exactly when the shards replay
// identical streams (the replicated-run case); it is an approximation
// otherwise, as any distributed NET is. other is not modified.
func (p *Predictor) Merge(other *Predictor) {
	heads := make([]headKey, 0, len(other.counts))
	for k := range other.counts { //ppp:allow(mapiter)
		heads = append(heads, k)
	}
	sort.Slice(heads, func(i, j int) bool {
		if heads[i].fn != heads[j].fn {
			return heads[i].fn < heads[j].fn
		}
		return heads[i].block < heads[j].block
	})
	for _, k := range heads {
		p.counts[k] += other.counts[k]
	}
	for _, tr := range other.traces {
		if !p.selected[tr.head] {
			p.selectTrace(tr)
		}
	}
}

// PublishMetrics exports the predictor's state as registry gauges,
// labeled by workload: hot heads seen and traces selected. A nil
// registry is a no-op.
func (p *Predictor) PublishMetrics(reg *telemetry.Registry, workload string) {
	reg.Gauge(
		fmt.Sprintf("ppp_net_heads{workload=%q}", workload),
		"trace heads NET has observed crossing its threshold").Set(float64(p.Heads()))
	reg.Gauge(
		fmt.Sprintf("ppp_net_traces{workload=%q}", workload),
		"traces NET has selected (one per hot head)").Set(float64(len(p.traces)))
}
