package netprof_test

import (
	"testing"

	"pathprof/internal/bench"
	"pathprof/internal/core"
	"pathprof/internal/instr"
	"pathprof/internal/lower"
	"pathprof/internal/netprof"
	"pathprof/internal/vm"
	"pathprof/internal/workloads"
)

func TestPredictorSelectsDominantPath(t *testing.T) {
	// A loop with one dominant path: once the header is hot, the next
	// path is almost surely the dominant one.
	src := `
var acc = 0;
func main() {
	var i = 0;
	while (i < 5000) {
		if (i % 100 == 7) { acc = acc + 3; } else { acc = acc + 1; }
		i = i + 1;
	}
	return acc;
}`
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := netprof.New(50)
	res, err := vm.Run(prog, vm.Options{CollectPaths: true, PathHook: p.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	traces := p.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces selected")
	}
	// The selected loop trace must be the dominant path.
	truth := res.Paths["main"]
	var bestKey string
	var bestCount int64
	for _, pc := range truth.Paths() {
		if pc.Count > bestCount {
			bestCount = pc.Count
			bestKey = "main|" + pc.Path.String()
		}
	}
	found := false
	for _, tr := range traces {
		if tr.Key == bestKey {
			found = true
		}
	}
	if !found {
		t.Errorf("NET missed the dominant path %s; selected %v", bestKey, traces)
	}
	if p.Heads() == 0 {
		t.Error("no heads observed")
	}
}

func TestThresholdDelaysSelection(t *testing.T) {
	src := `
func main() {
	var i = 0;
	while (i < 30) { i = i + 1; }
	return i;
}`
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := netprof.New(1000) // threshold above the 30 iterations
	if _, err := vm.Run(prog, vm.Options{CollectPaths: true, PathHook: p.Hook()}); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Traces()); got != 0 {
		t.Errorf("selected %d traces below threshold", got)
	}
}

// TestNETVsPPPOnWarmPaths quantifies the Section 2 argument: on a
// workload whose flow is spread over many warm paths (parser), NET's
// one-trace-per-head selection covers far less hot flow than PPP's
// estimated profile identifies.
func TestNETVsPPPOnWarmPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("stages a full workload")
	}
	w, _ := workloads.ByName("parser")
	staged, err := core.NewPipeline(w.Name, w.Source).Stage()
	if err != nil {
		t.Fatal(err)
	}
	// Rerun the optimized program with the NET predictor attached.
	p := netprof.New(netprof.DefaultThreshold)
	_, err = vm.Run(staged.Prog, vm.Options{CollectPaths: true, PathHook: p.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := staged.Profile("PPP", instr.PPP())
	if err != nil {
		t.Fatal(err)
	}
	hot := pr.Eval.HotPaths(bench.HotTheta)
	flowByKey := map[string]int64{}
	for _, h := range hot {
		flowByKey[h.Key] = h.Flow
	}
	netCov := p.CoverageOf(flowByKey)

	// PPP's top-|hot| estimates cover this much of the same flow.
	est := pr.Eval.EstimatedProfile(bench.HotTheta)
	var pppCovFlow, total int64
	for _, h := range hot {
		total += h.Flow
	}
	for i, e := range est {
		if i >= len(hot) {
			break
		}
		pppCovFlow += flowByKey[e.Key]
	}
	pppCov := float64(pppCovFlow) / float64(total)

	t.Logf("parser: NET covers %.1f%% of hot flow, PPP %.1f%%", 100*netCov, 100*pppCov)
	if netCov >= pppCov {
		t.Errorf("NET coverage %.3f not below PPP %.3f on a warm-path program", netCov, pppCov)
	}
	if len(p.Traces()) == 0 {
		t.Error("NET selected nothing")
	}
}
