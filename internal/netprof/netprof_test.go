package netprof_test

import (
	"testing"

	"pathprof/internal/bench"
	"pathprof/internal/cfg"
	"pathprof/internal/core"
	"pathprof/internal/instr"
	"pathprof/internal/lower"
	"pathprof/internal/netprof"
	"pathprof/internal/vm"
	"pathprof/internal/workloads"
)

func TestPredictorSelectsDominantPath(t *testing.T) {
	// A loop with one dominant path: once the header is hot, the next
	// path is almost surely the dominant one.
	src := `
var acc = 0;
func main() {
	var i = 0;
	while (i < 5000) {
		if (i % 100 == 7) { acc = acc + 3; } else { acc = acc + 1; }
		i = i + 1;
	}
	return acc;
}`
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := netprof.New(50)
	res, err := vm.Run(prog, vm.Options{CollectPaths: true, PathHook: p.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	traces := p.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces selected")
	}
	// The selected loop trace must be the dominant path.
	truth := res.Paths["main"]
	var bestKey string
	var bestCount int64
	for _, pc := range truth.Paths() {
		if pc.Count > bestCount {
			bestCount = pc.Count
			bestKey = "main|" + pc.Path.String()
		}
	}
	found := false
	for _, tr := range traces {
		if tr.Key == bestKey {
			found = true
		}
	}
	if !found {
		t.Errorf("NET missed the dominant path %s; selected %v", bestKey, traces)
	}
	if p.Heads() == 0 {
		t.Error("no heads observed")
	}
}

func TestThresholdDelaysSelection(t *testing.T) {
	src := `
func main() {
	var i = 0;
	while (i < 30) { i = i + 1; }
	return i;
}`
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := netprof.New(1000) // threshold above the 30 iterations
	if _, err := vm.Run(prog, vm.Options{CollectPaths: true, PathHook: p.Hook()}); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Traces()); got != 0 {
		t.Errorf("selected %d traces below threshold", got)
	}
}

// TestMergeMatchesSequentialOnIdenticalStreams: per-shard predictors
// fed identical replica streams (the vm.RunReplicated contract) and
// merged in worker order must agree with one predictor that saw a
// sequential stream — same traces, same order, same coverage keys.
func TestMergeMatchesSequentialOnIdenticalStreams(t *testing.T) {
	src := `
var acc = 0;
func main() {
	var i = 0;
	while (i < 2000) {
		if (i % 4 == 0) { acc = acc + 2; } else { acc = acc + 1; }
		i = i + 1;
	}
	return acc;
}`
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq := netprof.New(50)
	shards := []*netprof.Predictor{netprof.New(50), netprof.New(50)}
	run := func(p *netprof.Predictor) {
		if _, err := vm.Run(prog, vm.Options{CollectPaths: true, PathHook: p.Hook()}); err != nil {
			t.Fatal(err)
		}
	}
	run(seq)
	for _, sh := range shards {
		run(sh)
	}
	merged := netprof.New(50)
	for _, sh := range shards {
		merged.Merge(sh)
	}
	a, b := seq.Traces(), merged.Traces()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace counts: sequential %d, merged %d", len(a), len(b))
	}
	flow := map[string]int64{}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Errorf("trace %d: %s vs %s", i, a[i].Key, b[i].Key)
		}
		flow[a[i].Key] = 10
	}
	if seq.CoverageOf(flow) != merged.CoverageOf(flow) {
		t.Errorf("coverage differs: %v vs %v", seq.CoverageOf(flow), merged.CoverageOf(flow))
	}
	if merged.Heads() != seq.Heads() {
		t.Errorf("heads: %d vs %d", merged.Heads(), seq.Heads())
	}
}

// TestObserveSteadyStateZeroAllocs locks in that a predictor can tee
// off a profiling run's PathHook for free: once a head is known (and
// especially once its trace is selected), Observe must not allocate.
func TestObserveSteadyStateZeroAllocs(t *testing.T) {
	src := `
func main() {
	var i = 0;
	while (i < 100) { i = i + 1; }
	return i;
}`
	prog, err := lower.Compile(src, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := netprof.New(50)
	var paths []struct {
		fn   string
		path cfg.Path
	}
	_, err = vm.Run(prog, vm.Options{CollectPaths: true, PathHook: func(fn string, pa cfg.Path) {
		cp := make(cfg.Path, len(pa))
		copy(cp, pa)
		paths = append(paths, struct {
			fn   string
			path cfg.Path
		}{fn, cp})
		p.Observe(fn, pa)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Traces()) == 0 || len(paths) == 0 {
		t.Fatal("predictor saw nothing")
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, pp := range paths {
			p.Observe(pp.fn, pp.path)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Observe allocates %.1f times per replay, want 0", allocs)
	}
}

// TestNETVsPPPOnWarmPaths quantifies the Section 2 argument: on a
// workload whose flow is spread over many warm paths (parser), NET's
// one-trace-per-head selection covers far less hot flow than PPP's
// estimated profile identifies.
func TestNETVsPPPOnWarmPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("stages a full workload")
	}
	w, _ := workloads.ByName("parser")
	staged, err := core.NewPipeline(w.Name, w.Source).Stage()
	if err != nil {
		t.Fatal(err)
	}
	// Rerun the optimized program with the NET predictor attached.
	p := netprof.New(netprof.DefaultThreshold)
	_, err = vm.Run(staged.Prog, vm.Options{CollectPaths: true, PathHook: p.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := staged.Profile("PPP", instr.PPP())
	if err != nil {
		t.Fatal(err)
	}
	hot := pr.Eval.HotPaths(bench.HotTheta)
	flowByKey := map[string]int64{}
	for _, h := range hot {
		flowByKey[h.Key] = h.Flow
	}
	netCov := p.CoverageOf(flowByKey)

	// PPP's top-|hot| estimates cover this much of the same flow.
	est := pr.Eval.EstimatedProfile(bench.HotTheta)
	var pppCovFlow, total int64
	for _, h := range hot {
		total += h.Flow
	}
	for i, e := range est {
		if i >= len(hot) {
			break
		}
		pppCovFlow += flowByKey[e.Key]
	}
	pppCov := float64(pppCovFlow) / float64(total)

	t.Logf("parser: NET covers %.1f%% of hot flow, PPP %.1f%%", 100*netCov, 100*pppCov)
	if netCov >= pppCov {
		t.Errorf("NET coverage %.3f not below PPP %.3f on a warm-path program", netCov, pppCov)
	}
	if len(p.Traces()) == 0 {
		t.Error("NET selected nothing")
	}
}
