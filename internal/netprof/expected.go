package netprof

import (
	"fmt"
	"sort"

	"pathprof/internal/cfg"
	"pathprof/internal/profile"
)

// Expectation is the offline analogue of a selected Trace: for one
// trace head, the path NET would most likely latch once the head
// crossed its threshold. An online NET run records the *next* path
// after the head turns hot; over a merged profile the statistically
// expected choice is the head's most frequent path, so that is what
// the profile service serves as its prediction.
type Expectation struct {
	Func  string  `json:"func"`
	Head  string  `json:"head"`  // "entry", or "b<ID>" for a loop-header head
	Count int64   `json:"count"` // total executions from this head
	Path  []int   `json:"path"`  // DAG edge IDs of the predicted trace
	Hits  int64   `json:"hits"`  // executions of the predicted trace
	Share float64 `json:"share"` // Hits / Count
}

// Expected derives NET hot-trace predictions from merged path
// profiles: paths are grouped by trace head (routine entry, or the
// loop header a path restarted at), heads below threshold are
// dropped, and each surviving head predicts its most frequent path
// (ties break toward the lexicographically smallest edge-ID
// sequence, so the output is deterministic for a given profile).
//
// Paths decoded from the PPSNAP wire format carry only DAG edge IDs —
// no block structure — so every wire path folds to the routine-entry
// head; in-process profiles distinguish loop-header heads exactly as
// Observe does. threshold <= 0 uses DefaultThreshold.
func Expected(paths map[string]*profile.PathProfile, threshold int64) []Expectation {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	fns := make([]string, 0, len(paths))
	for fn := range paths { //ppp:allow(mapiter) — sorted below
		fns = append(fns, fn)
	}
	sort.Strings(fns)

	var out []Expectation
	for _, fn := range fns {
		type headAgg struct {
			count int64
			best  profile.PathCount
			has   bool
		}
		agg := map[int]*headAgg{} // head block ID; -1 = entry
		var heads []int
		for _, pc := range paths[fn].Paths() {
			if len(pc.Path) == 0 {
				continue
			}
			h := -1
			if first := pc.Path[0]; first.Kind != cfg.RealEdge && first.Dst != nil {
				h = first.Dst.ID
			}
			a := agg[h]
			if a == nil {
				a = &headAgg{}
				agg[h] = a
				heads = append(heads, h)
			}
			a.count = satAdd(a.count, pc.Count)
			if !a.has || better(pc, a.best) {
				a.best, a.has = pc, true
			}
		}
		sort.Ints(heads)
		for _, h := range heads {
			a := agg[h]
			if a.count < threshold {
				continue
			}
			name := "entry"
			if h >= 0 {
				name = fmt.Sprintf("b%d", h)
			}
			ids := make([]int, len(a.best.Path))
			for i, e := range a.best.Path {
				ids[i] = e.ID
			}
			out = append(out, Expectation{
				Func: fn, Head: name, Count: a.count,
				Path: ids, Hits: a.best.Count,
				Share: float64(a.best.Count) / float64(a.count),
			})
		}
	}
	return out
}

// better orders candidate traces: higher count wins, then the
// lexicographically smaller edge-ID sequence.
func better(a, b profile.PathCount) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	for i := 0; i < len(a.Path) && i < len(b.Path); i++ {
		if a.Path[i].ID != b.Path[i].ID {
			return a.Path[i].ID < b.Path[i].ID
		}
	}
	return len(a.Path) < len(b.Path)
}

// satAdd clamps at profile.CounterMax like every other merge-side sum.
func satAdd(a, b int64) int64 {
	if a > profile.CounterMax-b {
		return profile.CounterMax
	}
	return a + b
}
