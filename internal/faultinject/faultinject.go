// Package faultinject provides deterministic, seed-driven fault
// injection for exercising the profiler's robustness guardrails:
// worker panics, stalled replicas, counter-overflow pressure,
// snapshot corruption, and malformed CFG input.
//
// Every decision is a pure function of (seed, kind, site): two runs
// with the same spec inject exactly the same faults at exactly the
// same places, regardless of goroutine scheduling or call order. That
// makes failures reproducible from nothing but the spec string — the
// property the fault-matrix CI step and the -faults CLI flag rely on.
package faultinject

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind names one injectable fault class.
type Kind int

const (
	// Panic makes a worker replica panic mid-run.
	Panic Kind = iota
	// Stall makes a replica sleep past its deadline budget.
	Stall
	// Overflow preloads counters near profile.CounterMax so real
	// increments saturate almost immediately.
	Overflow
	// SnapCorrupt truncates or bit-flips snapshot bytes on disk.
	SnapCorrupt
	// BadCFG feeds malformed control-flow input to the planner.
	BadCFG
	// ConnDrop severs an in-flight network connection without a
	// response: before the server processes the request (client
	// retries, nothing committed) or after it commits (retry must be
	// deduplicated). Whether the drop lands pre- or post-commit is
	// itself deterministic in the stream value.
	ConnDrop
	// NetStall delays a response past the client's per-attempt
	// deadline, forcing a timeout-and-retry against work that may
	// still complete server-side.
	NetStall
	// PartialWrite tears a durable store write partway through and
	// surfaces it as a short-write error, leaving torn bytes behind
	// for crash recovery to fall back past.
	PartialWrite
	// StoreFail makes a durable store save fail outright (disk full,
	// permission lost) with nothing written.
	StoreFail

	numKinds
)

var kindNames = [numKinds]string{
	"panic", "stall", "overflow", "snapcorrupt", "badcfg",
	"conndrop", "netstall", "partialwrite", "storefail",
}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds lists every fault kind, for matrix drivers.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKind resolves a kind name.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown fault kind %q (have %s)",
		s, strings.Join(kindNames[:], ", "))
}

// DefaultRate is the per-site injection probability when the spec does
// not override it.
const DefaultRate = 0.5

// Injector decides, deterministically, which sites of which fault
// kinds fire. The zero value injects nothing; a nil *Injector is also
// safe and injects nothing, so callers can thread it through without
// guarding every use.
type Injector struct {
	seed   uint64
	rate   float64
	active [numKinds]bool
}

// New returns an injector firing the given kinds at DefaultRate.
func New(seed uint64, kinds ...Kind) *Injector {
	in := &Injector{seed: seed, rate: DefaultRate}
	for _, k := range kinds {
		if k >= 0 && k < numKinds {
			in.active[k] = true
		}
	}
	return in
}

// Parse builds an injector from a spec like
//
//	seed=7,kind=panic+stall,rate=0.25
//
// Fields may appear in any order; kind accepts a +-separated list or
// "all"; rate is optional and must be in (0, 1]. An empty spec is an
// error — use a nil *Injector for "no faults".
func Parse(spec string) (*Injector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("faultinject: empty spec")
	}
	in := &Injector{rate: DefaultRate}
	seenSeed, seenKind := false, false
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: malformed field %q (want key=value)", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", val, err)
			}
			in.seed = n
			seenSeed = true
		case "kind":
			for _, name := range strings.Split(val, "+") {
				if name == "all" {
					for i := range in.active {
						in.active[i] = true
					}
					continue
				}
				k, err := ParseKind(name)
				if err != nil {
					return nil, err
				}
				in.active[k] = true
			}
			seenKind = true
		case "rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r <= 0 || r > 1 {
				return nil, fmt.Errorf("faultinject: bad rate %q (want 0 < rate <= 1)", val)
			}
			in.rate = r
		default:
			return nil, fmt.Errorf("faultinject: unknown field %q", key)
		}
	}
	if !seenSeed {
		return nil, fmt.Errorf("faultinject: spec %q missing seed=", spec)
	}
	if !seenKind {
		return nil, fmt.Errorf("faultinject: spec %q missing kind=", spec)
	}
	return in, nil
}

// String renders the spec back in canonical field order, so a spec
// survives a Parse/String round trip up to formatting.
func (in *Injector) String() string {
	if in == nil {
		return "<none>"
	}
	var kinds []string
	for i, on := range in.active {
		if on {
			kinds = append(kinds, kindNames[i])
		}
	}
	sort.Strings(kinds)
	s := fmt.Sprintf("seed=%d,kind=%s", in.seed, strings.Join(kinds, "+"))
	if in.rate != DefaultRate {
		s += fmt.Sprintf(",rate=%g", in.rate)
	}
	return s
}

// Seed returns the configured seed.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Active reports whether kind k is enabled at all.
func (in *Injector) Active(k Kind) bool {
	return in != nil && k >= 0 && k < numKinds && in.active[k]
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix,
// so distinct (seed, kind, site) triples give independent-looking
// streams without shared mutable state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand returns the deterministic 64-bit stream value for (kind, site).
// The same injector always returns the same value for the same
// arguments; there is no hidden cursor to race on.
func (in *Injector) Rand(k Kind, site uint64) uint64 {
	return splitmix64(splitmix64(in.seed^uint64(k)<<56) ^ site)
}

// Hit reports whether fault kind k fires at the given site (for
// replica faults the site is the replica index). Inactive kinds and
// nil injectors never fire.
func (in *Injector) Hit(k Kind, site uint64) bool {
	if !in.Active(k) {
		return false
	}
	const scale = 1 << 53
	return float64(in.Rand(k, site)>>11)/scale < in.rate
}

// Corrupt returns a deterministically damaged copy of data for the
// SnapCorrupt stream at the given site: even stream values truncate
// the tail, odd values flip bits at pseudo-random offsets. For any
// non-empty input the result differs from the original. Corrupt does
// not consult Active — corruption tests drive it directly.
func (in *Injector) Corrupt(data []byte, site uint64) []byte {
	r := in.Rand(SnapCorrupt, site)
	if len(data) == 0 {
		return nil
	}
	if r&1 == 0 {
		// Truncate to [0, len) bytes.
		n := int(r>>1) % len(data)
		return append([]byte(nil), data[:n]...)
	}
	out := append([]byte(nil), data...)
	flips := 1 + int(r>>1)%4
	for i := 0; i < flips; i++ {
		v := in.Rand(SnapCorrupt, site^uint64(i+1)<<32)
		out[int(v%uint64(len(out)))] ^= byte(1 << (v >> 61))
	}
	if bytes.Equal(out, data) {
		out[0] ^= 1
	}
	return out
}
