package faultinject_test

import (
	"bytes"
	"strings"
	"testing"

	"pathprof/internal/faultinject"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"seed=7,kind=panic", "seed=7,kind=panic"},
		{"seed=0,kind=stall+panic", "seed=0,kind=panic+stall"},
		{"kind=overflow,seed=12", "seed=12,kind=overflow"},
		{"seed=3,kind=all,rate=0.25", "seed=3,kind=badcfg+conndrop+netstall+overflow+panic+partialwrite+snapcorrupt+stall+storefail,rate=0.25"},
		{" seed=1 , kind=snapcorrupt ", "seed=1,kind=snapcorrupt"},
		{"seed=9,kind=conndrop+netstall+partialwrite+storefail", "seed=9,kind=conndrop+netstall+partialwrite+storefail"},
	}
	for _, c := range cases {
		in, err := faultinject.Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got := in.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.spec, got, c.want)
		}
		// Canonical form re-parses to itself.
		in2, err := faultinject.Parse(in.String())
		if err != nil || in2.String() != in.String() {
			t.Errorf("canonical %q does not round trip: %v", in.String(), err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"", "empty spec"},
		{"seed=1", "missing kind="},
		{"kind=panic", "missing seed="},
		{"seed=x,kind=panic", "bad seed"},
		{"seed=1,kind=meteor", "unknown fault kind"},
		{"seed=1,kind=panic,rate=0", "bad rate"},
		{"seed=1,kind=panic,rate=2", "bad rate"},
		{"seed=1,kind=panic,color=red", "unknown field"},
		{"seed=1,kind=panic,bogus", "malformed field"},
	}
	for _, c := range cases {
		_, err := faultinject.Parse(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.spec, err, c.want)
		}
	}
}

func TestNilInjectorInert(t *testing.T) {
	var in *faultinject.Injector
	if in.Active(faultinject.Panic) || in.Hit(faultinject.Panic, 0) {
		t.Error("nil injector fired")
	}
	if in.Seed() != 0 || in.String() != "<none>" {
		t.Error("nil injector accessors misbehave")
	}
}

// TestHitDeterministic checks that decisions depend only on
// (seed, kind, site): rebuilding the injector reproduces the exact
// decision vector, and decisions ignore query order.
func TestHitDeterministic(t *testing.T) {
	const n = 512
	mk := func() *faultinject.Injector {
		return faultinject.New(42, faultinject.Panic, faultinject.Stall)
	}
	var forward, backward [n]bool
	a, b := mk(), mk()
	for i := 0; i < n; i++ {
		forward[i] = a.Hit(faultinject.Panic, uint64(i))
	}
	for i := n - 1; i >= 0; i-- {
		backward[i] = b.Hit(faultinject.Panic, uint64(i))
	}
	if forward != backward {
		t.Fatal("decision vector depends on query order")
	}

	// The rate is honored roughly: around half the sites fire.
	fired := 0
	for _, h := range forward {
		if h {
			fired++
		}
	}
	if fired < n/4 || fired > 3*n/4 {
		t.Errorf("fired %d of %d sites at rate 0.5", fired, n)
	}

	// Kinds draw from distinct streams.
	same := 0
	for i := 0; i < n; i++ {
		if forward[i] == a.Hit(faultinject.Stall, uint64(i)) {
			same++
		}
	}
	if same == n {
		t.Error("panic and stall streams identical")
	}

	// Inactive kinds never fire even at rate 1.
	in, err := faultinject.Parse("seed=42,kind=panic,rate=1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if in.Hit(faultinject.Overflow, uint64(i)) {
			t.Fatal("inactive kind fired")
		}
		if !in.Hit(faultinject.Panic, uint64(i)) {
			t.Fatal("rate=1 active kind skipped a site")
		}
	}
}

// TestSeedsDiverge checks different seeds give different decision
// vectors.
func TestSeedsDiverge(t *testing.T) {
	const n = 256
	a := faultinject.New(1, faultinject.Panic)
	b := faultinject.New(2, faultinject.Panic)
	same := true
	for i := 0; i < n; i++ {
		if a.Hit(faultinject.Panic, uint64(i)) != b.Hit(faultinject.Panic, uint64(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produce identical decisions over 256 sites")
	}
}

func TestCorruptDeterministicAndDamaging(t *testing.T) {
	in := faultinject.New(99, faultinject.SnapCorrupt)
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i * 7)
	}
	sawTruncate, sawFlip := false, false
	for site := uint64(0); site < 64; site++ {
		c1 := in.Corrupt(data, site)
		c2 := in.Corrupt(data, site)
		if !bytes.Equal(c1, c2) {
			t.Fatalf("site %d: corruption not deterministic", site)
		}
		if bytes.Equal(c1, data) {
			t.Fatalf("site %d: corruption left data intact", site)
		}
		if len(c1) < len(data) {
			sawTruncate = true
		} else {
			sawFlip = true
		}
	}
	if !sawTruncate || !sawFlip {
		t.Errorf("corruption modes unbalanced: truncate=%v flip=%v", sawTruncate, sawFlip)
	}
	if got := in.Corrupt(nil, 1); got != nil {
		t.Errorf("Corrupt(nil) = %v", got)
	}
}

func TestKindsAndNames(t *testing.T) {
	for _, k := range faultinject.Kinds() {
		back, err := faultinject.ParseKind(k.String())
		if err != nil || back != k {
			t.Errorf("kind %v does not round trip: %v", k, err)
		}
	}
	if _, err := faultinject.ParseKind("Panic"); err == nil {
		t.Error("kind names are case-sensitive; 'Panic' accepted")
	}
}
