package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"pathprof/internal/profile"
)

// Store persists snapshots at a fixed path with crash-safe writes and
// a one-deep history:
//
//	<path>       the current snapshot
//	<path>.prev  the previous good snapshot (fallback)
//	<path>.tmp   in-flight write, renamed into place on success
//
// Save never overwrites the current snapshot in place — a torn write
// can only lose the .tmp file — and Load falls back to .prev when the
// primary is corrupt, so one bad write never strands the consumer
// without a profile.
type Store struct {
	path string
}

// NewStore returns a store rooted at path.
func NewStore(path string) *Store { return &Store{path: path} }

// Path returns the primary snapshot path.
func (st *Store) Path() string { return st.path }

// PrevPath returns the fallback snapshot path.
func (st *Store) PrevPath() string { return st.path + ".prev" }

// TmpPath returns the in-flight write path.
func (st *Store) TmpPath() string { return st.path + ".tmp" }

// Save atomically writes the snapshot: encode, write and fsync .tmp,
// rotate the existing snapshot to .prev, rename .tmp into place, then
// fsync the directory so both renames are themselves durable. A crash
// at any point leaves a state Recover can roll back to the last
// acknowledged snapshot.
func (st *Store) Save(s *profile.Snapshot) error {
	return st.SaveBytes(Encode(s))
}

// SaveBytes is Save for pre-encoded snapshot bytes (the service
// ingest path already holds them). The bytes are not validated here;
// callers own that.
func (st *Store) SaveBytes(data []byte) error {
	dir := filepath.Dir(st.path)
	if dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("snapshot: save: %w", err)
		}
	}
	if err := writeFileSync(st.TmpPath(), data); err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	if _, err := os.Stat(st.path); err == nil {
		if err := os.Rename(st.path, st.PrevPath()); err != nil {
			return fmt.Errorf("snapshot: rotate: %w", err)
		}
	}
	if err := os.Rename(st.TmpPath(), st.path); err != nil {
		return fmt.Errorf("snapshot: commit: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("snapshot: commit: %w", err)
	}
	return nil
}

// writeFileSync writes data and fsyncs before closing, so a success
// means the bytes are on stable storage — the precondition for the
// renames that follow being a durable commit.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames within it survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// RecoveryReport says what Recover found and did.
type RecoveryReport struct {
	// RemovedTmp: a leftover in-flight write was discarded. Its
	// contents — torn or complete — were never acknowledged to any
	// writer, so discarding preserves acked-implies-durable exactly.
	RemovedTmp bool
	// RestoredPrev: the primary was missing with a .prev present (a
	// crash between Save's two renames — the torn rotation), and the
	// previous snapshot was renamed back into place.
	RestoredPrev bool
}

// Recover rolls the store back to its last acknowledged state after a
// crash. Save's commit is two renames; a crash can leave (a) a stale
// .tmp from an interrupted write, or (b) the torn rotation: primary
// renamed to .prev but .tmp never renamed in. Both are repaired by
// rolling back — the in-flight snapshot was never acknowledged, so
// the last acked state is .prev (case b) or the untouched primary
// (case a). Recover is idempotent and a no-op on a clean store.
func (st *Store) Recover() (RecoveryReport, error) {
	var rep RecoveryReport
	dir := filepath.Dir(st.path)
	if _, err := os.Stat(st.TmpPath()); err == nil {
		if err := os.Remove(st.TmpPath()); err != nil {
			return rep, fmt.Errorf("snapshot: recover: %w", err)
		}
		rep.RemovedTmp = true
	}
	_, primaryErr := os.Stat(st.path)
	if os.IsNotExist(primaryErr) {
		if _, err := os.Stat(st.PrevPath()); err == nil {
			if err := os.Rename(st.PrevPath(), st.path); err != nil {
				return rep, fmt.Errorf("snapshot: recover: %w", err)
			}
			rep.RestoredPrev = true
		}
	}
	if rep.RemovedTmp || rep.RestoredPrev {
		if err := syncDir(dir); err != nil {
			return rep, fmt.Errorf("snapshot: recover: %w", err)
		}
	}
	return rep, nil
}

// Load reads and verifies the current snapshot. When the primary file
// is missing, unreadable, or corrupt, it falls back to .prev;
// fromFallback reports that the returned snapshot came from the
// fallback. When both copies are bad the error describes the primary
// failure (with the fallback failure attached via errors.Join).
func (st *Store) Load() (snap *profile.Snapshot, fromFallback bool, err error) {
	primaryErr := st.loadFile(st.path, &snap)
	if primaryErr == nil {
		return snap, false, nil
	}
	fallbackErr := st.loadFile(st.PrevPath(), &snap)
	if fallbackErr == nil {
		return snap, true, nil
	}
	return nil, false, errors.Join(primaryErr, fallbackErr)
}

// loadFile decodes one snapshot file into *out, tagging corruption
// errors with the file path.
func (st *Store) loadFile(path string, out **profile.Snapshot) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Path = path
		}
		return err
	}
	*out = s
	return nil
}
