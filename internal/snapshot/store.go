package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"pathprof/internal/profile"
)

// Store persists snapshots at a fixed path with crash-safe writes and
// a one-deep history:
//
//	<path>       the current snapshot
//	<path>.prev  the previous good snapshot (fallback)
//	<path>.tmp   in-flight write, renamed into place on success
//
// Save never overwrites the current snapshot in place — a torn write
// can only lose the .tmp file — and Load falls back to .prev when the
// primary is corrupt, so one bad write never strands the consumer
// without a profile.
type Store struct {
	path string
}

// NewStore returns a store rooted at path.
func NewStore(path string) *Store { return &Store{path: path} }

// Path returns the primary snapshot path.
func (st *Store) Path() string { return st.path }

// PrevPath returns the fallback snapshot path.
func (st *Store) PrevPath() string { return st.path + ".prev" }

// Save atomically writes the snapshot: encode, write to .tmp, rotate
// the existing snapshot to .prev, then rename .tmp into place.
func (st *Store) Save(s *profile.Snapshot) error {
	data := Encode(s)
	if dir := filepath.Dir(st.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("snapshot: save: %w", err)
		}
	}
	tmp := st.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	if _, err := os.Stat(st.path); err == nil {
		if err := os.Rename(st.path, st.PrevPath()); err != nil {
			return fmt.Errorf("snapshot: rotate: %w", err)
		}
	}
	if err := os.Rename(tmp, st.path); err != nil {
		return fmt.Errorf("snapshot: commit: %w", err)
	}
	return nil
}

// Load reads and verifies the current snapshot. When the primary file
// is missing, unreadable, or corrupt, it falls back to .prev;
// fromFallback reports that the returned snapshot came from the
// fallback. When both copies are bad the error describes the primary
// failure (with the fallback failure attached via errors.Join).
func (st *Store) Load() (snap *profile.Snapshot, fromFallback bool, err error) {
	primaryErr := st.loadFile(st.path, &snap)
	if primaryErr == nil {
		return snap, false, nil
	}
	fallbackErr := st.loadFile(st.PrevPath(), &snap)
	if fallbackErr == nil {
		return snap, true, nil
	}
	return nil, false, errors.Join(primaryErr, fallbackErr)
}

// loadFile decodes one snapshot file into *out, tagging corruption
// errors with the file path.
func (st *Store) loadFile(path string, out **profile.Snapshot) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Path = path
		}
		return err
	}
	*out = s
	return nil
}
