package snapshot_test

import (
	"os"
	"path/filepath"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/profile"
	"pathprof/internal/snapshot"
)

// TestRecoverTornRotation is the regression test for a crash between
// Save's two renames: the primary has been rotated to .prev but the
// fsynced .tmp was never renamed into place. The in-flight snapshot
// was never acknowledged, so recovery must roll back — discard the
// .tmp and restore .prev as the primary — leaving the store at the
// last acknowledged snapshot.
func TestRecoverTornRotation(t *testing.T) {
	dir := t.TempDir()
	st := snapshot.NewStore(filepath.Join(dir, "app.ppsnap"))
	snap1 := realSnapshot(t)
	snap2 := realSnapshot(t)
	snap2.Edges["work"].Add(98, 99, 7)
	if err := st.Save(snap1); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(snap2); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn rotation of an in-flight third save: the
	// primary (snap2) moved to .prev, the new bytes sit complete in
	// .tmp, and the final rename never happened.
	snap3 := realSnapshot(t)
	snap3.Edges["work"].Add(98, 99, 99)
	if err := os.Rename(st.Path(), st.PrevPath()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.TmpPath(), snapshot.Encode(snap3), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := st.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !rep.RemovedTmp || !rep.RestoredPrev {
		t.Fatalf("recovery report = %+v, want tmp removed and prev restored", rep)
	}
	if _, err := os.Stat(st.TmpPath()); !os.IsNotExist(err) {
		t.Error("stale .tmp survived recovery")
	}
	got, fellBack, err := st.Load()
	if err != nil || fellBack {
		t.Fatalf("load after recovery: %v (fallback=%v)", err, fellBack)
	}
	if got.Fingerprint() != snap2.Fingerprint() {
		t.Error("recovery did not restore the last acknowledged snapshot")
	}

	// Idempotent: a second recovery is a no-op.
	rep, err = st.Recover()
	if err != nil || rep.RemovedTmp || rep.RestoredPrev {
		t.Errorf("second recovery not a no-op: %+v, %v", rep, err)
	}

	// The store keeps working after recovery.
	if err := st.Save(snap3); err != nil {
		t.Fatal(err)
	}
	got, _, err = st.Load()
	if err != nil || got.Fingerprint() != snap3.Fingerprint() {
		t.Fatalf("save after recovery broken: %v", err)
	}
}

// TestRecoverStaleTmp covers the other crash window: a torn (or even
// complete) .tmp with the primary intact. Recovery discards the .tmp
// and leaves the primary alone.
func TestRecoverStaleTmp(t *testing.T) {
	dir := t.TempDir()
	st := snapshot.NewStore(filepath.Join(dir, "app.ppsnap"))
	snap1 := realSnapshot(t)
	if err := st.Save(snap1); err != nil {
		t.Fatal(err)
	}
	torn := snapshot.Encode(snap1)
	if err := os.WriteFile(st.TmpPath(), torn[:len(torn)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RemovedTmp || rep.RestoredPrev {
		t.Fatalf("recovery report = %+v, want only tmp removed", rep)
	}
	got, fellBack, err := st.Load()
	if err != nil || fellBack || got.Fingerprint() != snap1.Fingerprint() {
		t.Fatalf("primary disturbed by recovery: %v (fallback=%v)", err, fellBack)
	}
}

// TestRecoverCleanStore: recovery on a clean or empty store does
// nothing and reports nothing.
func TestRecoverCleanStore(t *testing.T) {
	st := snapshot.NewStore(filepath.Join(t.TempDir(), "app.ppsnap"))
	rep, err := st.Recover()
	if err != nil || rep.RemovedTmp || rep.RestoredPrev {
		t.Fatalf("recovery on empty store: %+v, %v", rep, err)
	}
	if err := st.Save(realSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	rep, err = st.Recover()
	if err != nil || rep.RemovedTmp || rep.RestoredPrev {
		t.Fatalf("recovery on clean store: %+v, %v", rep, err)
	}
}

// TestSaturatedMergeRoundTrip checks that a merge that saturates
// counters survives the wire format end to end: the merged snapshot's
// Saturated flags and fingerprint are preserved by encode∘decode, and
// merging decoded snapshots saturates identically to merging the
// originals (the profile-service ingest path decodes before it
// merges).
func TestSaturatedMergeRoundTrip(t *testing.T) {
	build := func() *profile.Snapshot {
		ep := profile.NewEdgeProfile("f")
		ep.Add(0, 1, profile.CounterMax-1)
		ep.Calls = 3
		pp := profile.NewPathProfile("f")
		pp.Add(cfg.Path{&cfg.DAGEdge{ID: 4}, &cfg.DAGEdge{ID: 7}}, profile.CounterMax-2)
		tab := profile.NewTable(profile.ArrayTable, 2, 6)
		tab.Add(1, profile.CounterMax-1)
		return &profile.Snapshot{
			Edges:  map[string]*profile.EdgeProfile{"f": ep},
			Paths:  map[string]*profile.PathProfile{"f": pp},
			Tables: map[string]*profile.Table{"f": tab},
		}
	}

	a, b := build(), build()
	a.MergeSnapshot(b) // every counter crosses CounterMax and clamps
	if !a.Edges["f"].Saturated || !a.Paths["f"].Saturated || !a.Tables["f"].Saturated {
		t.Fatalf("merge did not saturate: edges=%v paths=%v tables=%v",
			a.Edges["f"].Saturated, a.Paths["f"].Saturated, a.Tables["f"].Saturated)
	}
	if got := a.Edges["f"].Get(0, 1); got != profile.CounterMax {
		t.Fatalf("saturated edge count = %d, want clamp at CounterMax", got)
	}

	back, err := snapshot.Decode(snapshot.Encode(a))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Edges["f"].Saturated || !back.Paths["f"].Saturated || !back.Tables["f"].Saturated {
		t.Error("saturation flags lost in the codec round trip")
	}
	if back.Fingerprint() != a.Fingerprint() {
		t.Error("round trip changed the saturated snapshot fingerprint")
	}

	// Ingest-path shape: decode two clean snapshots, merge the decoded
	// copies, and the result is bit-identical to merging the originals.
	da, err := snapshot.Decode(snapshot.Encode(build()))
	if err != nil {
		t.Fatal(err)
	}
	db, err := snapshot.Decode(snapshot.Encode(build()))
	if err != nil {
		t.Fatal(err)
	}
	da.MergeSnapshot(db)
	if da.Fingerprint() != a.Fingerprint() {
		t.Error("merging decoded snapshots diverged from merging the originals")
	}
}
