// Package snapshot persists merged profile snapshots durably: a
// versioned binary codec with a CRC-32 integrity footer, and a Store
// that writes atomically (temp file + rename) while rotating the
// previous snapshot to a .prev fallback. A dynamic optimizer that
// feeds on profiles must never act on torn or bit-rotted counter
// data, so Load verifies the checksum and structure before handing
// anything back, rejects damage with a structured *CorruptError, and
// falls back to the last good snapshot when the primary is bad.
//
// The codec round-trips every observable the profile fingerprint
// hashes: a decoded snapshot's Fingerprint equals the encoded one's,
// including hash-table slot layout and saturation flags.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"pathprof/internal/cfg"
	"pathprof/internal/profile"
)

// Magic and Version identify the on-disk format. Version bumps when
// the payload layout changes; readers reject versions they do not
// know rather than guessing.
const (
	Magic   = "PPSNAP"
	Version = 1
)

// maxTableSize bounds array-table capacities accepted by the decoder,
// so a corrupted size field cannot demand an absurd allocation. Real
// tables are at most 3x the hashing threshold (the paper's free-
// poisoning bound), far below this.
const maxTableSize = 1 << 24

// CorruptError reports rejected snapshot bytes: where decoding
// stopped and why. It deliberately carries no partial data — a
// snapshot is either whole or refused.
type CorruptError struct {
	Path   string // file path, if decoding from a Store ("" for bytes)
	Offset int    // approximate byte offset of the damage
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("snapshot: corrupt at byte %d: %s", e.Offset, e.Reason)
	}
	return fmt.Sprintf("snapshot: %s corrupt at byte %d: %s", e.Path, e.Offset, e.Reason)
}

func corrupt(off int, format string, args ...any) error {
	return &CorruptError{Offset: off, Reason: fmt.Sprintf(format, args...)}
}

// Encode serializes a snapshot. The output is deterministic: routines
// are sorted by name, edge keys by (src, dst), paths kept in
// first-seen order, and hash slots in ascending slot order, so equal
// snapshots encode to equal bytes.
func Encode(s *profile.Snapshot) []byte {
	var w encoder
	w.bytes([]byte(Magic))
	w.u16(Version)

	edgeNames := sortedNames(s.Edges)
	w.uv(uint64(len(edgeNames)))
	for _, fn := range edgeNames {
		ep := s.Edges[fn]
		w.str(fn)
		w.uv(uint64(ep.Calls))
		w.bool(ep.Saturated)
		freq := ep.Freq()
		keys := make([]profile.EdgeKey, 0, len(freq))
		for k := range freq {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Src != keys[j].Src {
				return keys[i].Src < keys[j].Src
			}
			return keys[i].Dst < keys[j].Dst
		})
		w.uv(uint64(len(keys)))
		for _, k := range keys {
			w.uv(uint64(k.Src))
			w.uv(uint64(k.Dst))
			w.uv(uint64(freq[k]))
		}
	}

	pathNames := sortedNames(s.Paths)
	w.uv(uint64(len(pathNames)))
	for _, fn := range pathNames {
		pp := s.Paths[fn]
		w.str(fn)
		w.bool(pp.Saturated)
		paths := pp.Paths()
		w.uv(uint64(len(paths)))
		for _, pc := range paths {
			w.uv(uint64(len(pc.Path)))
			for _, e := range pc.Path {
				w.uv(uint64(e.ID))
			}
			w.uv(uint64(pc.Count))
		}
	}

	tableNames := sortedNames(s.Tables)
	w.uv(uint64(len(tableNames)))
	for _, fn := range tableNames {
		st := s.Tables[fn].State()
		w.str(fn)
		w.uv(uint64(st.Kind))
		w.uv(uint64(st.N))
		w.uv(uint64(st.Size))
		w.uv(uint64(st.Lost))
		w.uv(uint64(st.Cold))
		w.uv(uint64(st.Drops))
		w.bool(st.Saturated)
		if st.Kind == profile.ArrayTable {
			// Nonzero entries only: poison regions are mostly empty.
			nz := 0
			for _, v := range st.Arr {
				if v != 0 {
					nz++
				}
			}
			w.uv(uint64(nz))
			for i, v := range st.Arr {
				if v != 0 {
					w.uv(uint64(i))
					w.uv(uint64(v))
				}
			}
		} else {
			w.uv(uint64(len(st.Slots)))
			for i, s := range st.Slots {
				w.uv(uint64(s))
				w.iv(st.Keys[i]) // keys may be negative (poison indices)
				w.uv(uint64(st.Vals[i]))
			}
		}
	}

	sum := crc32.ChecksumIEEE(w.buf)
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], sum)
	return append(w.buf, foot[:]...)
}

// Decode rebuilds a snapshot from Encode's output, verifying the
// magic, version, checksum, and structural invariants. Any damage
// yields a *CorruptError and no snapshot. Decoded paths reference
// placeholder DAG edges carrying only the edge ID — enough for
// fingerprinting, counting, and merging; resolving them against a
// program's real DAGs is the caller's concern.
func Decode(data []byte) (*profile.Snapshot, error) {
	if len(data) < len(Magic)+2+4 {
		return nil, corrupt(0, "short input: %d bytes", len(data))
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(foot); got != want {
		return nil, corrupt(len(body), "checksum mismatch: computed %08x, stored %08x", got, want)
	}
	r := decoder{buf: body}
	if string(r.take(len(Magic))) != Magic {
		return nil, corrupt(0, "bad magic")
	}
	if v := r.u16(); v != Version {
		return nil, corrupt(r.off, "unsupported version %d (want %d)", v, Version)
	}

	snap := &profile.Snapshot{
		Edges:  map[string]*profile.EdgeProfile{},
		Paths:  map[string]*profile.PathProfile{},
		Tables: map[string]*profile.Table{},
	}

	nEdges := r.count()
	for i := uint64(0); i < nEdges && r.err == nil; i++ {
		fn := r.str()
		if _, dup := snap.Edges[fn]; dup {
			return nil, corrupt(r.off, "duplicate edge profile %q", fn)
		}
		ep := profile.NewEdgeProfile(fn)
		ep.Calls = r.nonneg()
		ep.Saturated = r.bool()
		n := r.count()
		for j := uint64(0); j < n && r.err == nil; j++ {
			src, dst, v := r.nonneg(), r.nonneg(), r.nonneg()
			ep.Add(int(src), int(dst), v)
		}
		snap.Edges[fn] = ep
	}

	nPaths := r.count()
	for i := uint64(0); i < nPaths && r.err == nil; i++ {
		fn := r.str()
		if _, dup := snap.Paths[fn]; dup {
			return nil, corrupt(r.off, "duplicate path profile %q", fn)
		}
		pp := profile.NewPathProfile(fn)
		pp.Saturated = r.bool()
		n := r.count()
		for j := uint64(0); j < n && r.err == nil; j++ {
			ne := r.count()
			p := make(cfg.Path, 0, ne)
			for k := uint64(0); k < ne && r.err == nil; k++ {
				p = append(p, &cfg.DAGEdge{ID: int(r.nonneg())})
			}
			count := r.nonneg()
			if r.err == nil {
				pp.Add(p, count)
			}
		}
		snap.Paths[fn] = pp
	}

	nTables := r.count()
	for i := uint64(0); i < nTables && r.err == nil; i++ {
		fn := r.str()
		if _, dup := snap.Tables[fn]; dup {
			return nil, corrupt(r.off, "duplicate table %q", fn)
		}
		var st profile.TableState
		kind := r.nonneg()
		if kind != int64(profile.ArrayTable) && kind != int64(profile.HashTable) {
			return nil, corrupt(r.off, "unknown table kind %d", kind)
		}
		st.Kind = profile.TableKind(kind)
		st.N = r.nonneg()
		st.Size = r.nonneg()
		st.Lost, st.Cold, st.Drops = r.nonneg(), r.nonneg(), r.nonneg()
		st.Saturated = r.bool()
		if st.Kind == profile.ArrayTable {
			if st.Size > maxTableSize {
				return nil, corrupt(r.off, "array table size %d exceeds limit %d", st.Size, maxTableSize)
			}
			st.Arr = make([]int64, st.Size)
			nz := r.count()
			for j := uint64(0); j < nz && r.err == nil; j++ {
				idx, v := r.nonneg(), r.nonneg()
				if r.err == nil && idx >= st.Size {
					return nil, corrupt(r.off, "array index %d outside table of %d", idx, st.Size)
				}
				if r.err == nil {
					st.Arr[idx] = v
				}
			}
		} else {
			ns := r.count()
			for j := uint64(0); j < ns && r.err == nil; j++ {
				st.Slots = append(st.Slots, int32(r.nonneg()))
				st.Keys = append(st.Keys, r.iv())
				st.Vals = append(st.Vals, r.nonneg())
			}
		}
		if r.err != nil {
			break
		}
		tab, err := profile.NewTableFromState(st)
		if err != nil {
			return nil, corrupt(r.off, "table %q: %v", fn, err)
		}
		snap.Tables[fn] = tab
	}

	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, corrupt(r.off, "%d trailing bytes", len(r.buf)-r.off)
	}
	return snap, nil
}

// encoder appends varint-packed fields to a buffer.
type encoder struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (w *encoder) bytes(b []byte) { w.buf = append(w.buf, b...) }
func (w *encoder) u16(v uint16) {
	w.buf = append(w.buf, byte(v), byte(v>>8))
}
func (w *encoder) uv(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}
func (w *encoder) iv(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}
func (w *encoder) str(s string) {
	w.uv(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *encoder) bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// decoder reads the encoder's fields back, remembering the first
// error; all reads after an error are inert zero values, so decode
// loops stay simple and never index past the buffer.
type decoder struct {
	buf []byte
	off int
	err error
}

func (r *decoder) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corrupt(r.off, format, args...)
	}
}

func (r *decoder) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail("truncated: need %d bytes at %d of %d", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *decoder) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

func (r *decoder) uv() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *decoder) iv() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// nonneg reads an unsigned field that must fit in int64.
func (r *decoder) nonneg() int64 {
	v := r.uv()
	if r.err == nil && v > uint64(profile.CounterMax) {
		r.fail("value %d overflows int64", v)
		return 0
	}
	return int64(v)
}

// count reads an element count and sanity-checks it against the bytes
// remaining (every element costs at least one byte), so a corrupted
// count cannot drive a huge allocation or a near-endless loop.
func (r *decoder) count() uint64 {
	v := r.uv()
	if r.err == nil && v > uint64(len(r.buf)-r.off) {
		r.fail("count %d exceeds %d remaining bytes", v, len(r.buf)-r.off)
		return 0
	}
	return v
}

func (r *decoder) bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	if b[0] > 1 {
		r.fail("bad bool byte %d", b[0])
		return false
	}
	return b[0] == 1
}

func (r *decoder) str() string {
	n := r.count()
	return string(r.take(int(n)))
}

// sortedNames returns m's keys sorted.
func sortedNames[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
