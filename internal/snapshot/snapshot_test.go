package snapshot_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pathprof/internal/faultinject"
	"pathprof/internal/lower"
	"pathprof/internal/profile"
	"pathprof/internal/snapshot"
	"pathprof/internal/vm"
)

const workloadSrc = `
var acc = 0;
func work(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
	}
	return s;
}
func main() {
	var t = 0;
	for (var j = 0; j < 30; j = j + 1) { t = t + work(j); }
	acc = t;
	return t;
}`

// realSnapshot produces a merged snapshot from an actual replicated
// profiling run, so round-trip tests exercise genuine edge profiles,
// interned paths, and counter tables.
func realSnapshot(t testing.TB) *profile.Snapshot {
	t.Helper()
	prog, err := lower.Compile(workloadSrc, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := vm.RunReplicated(prog, vm.Options{CollectEdges: true, CollectPaths: true}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Add counter tables of both kinds, with the quirks the codec must
	// carry: poison-region hits, probe collisions, lost weight, a
	// negative key, and saturation.
	at := profile.NewTable(profile.ArrayTable, 4, 12)
	at.Add(0, 41)
	at.Add(3, 1)
	at.Add(9, 5) // poison region
	at.Cold = 3
	at.Add(2, profile.CounterMax)
	at.Add(2, 7) // saturates
	rr.Merged.Tables["work"] = at

	ht := profile.NewTable(profile.HashTable, 5000, 0)
	for k := int64(0); k < 60; k++ {
		ht.Add(k*97, k+1)
	}
	ht.Add(-5, 2) // negative poison index
	rr.Merged.Tables["main"] = ht
	return rr.Merged
}

func TestRoundTripFingerprintIdentical(t *testing.T) {
	snap := realSnapshot(t)
	data := snapshot.Encode(snap)
	back, err := snapshot.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Fingerprint() != back.Fingerprint() {
		t.Fatal("round trip changed the snapshot fingerprint")
	}
	// Saturation flags survive.
	if !back.Tables["work"].Saturated {
		t.Error("table saturation flag lost")
	}
	if got := back.SaturatedRoutines(); len(got) != 1 || got[0] != "work" {
		t.Errorf("SaturatedRoutines = %v, want [work]", got)
	}
	// Encoding is deterministic.
	if !bytes.Equal(data, snapshot.Encode(back)) {
		t.Error("re-encoding a decoded snapshot changed the bytes")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	good := snapshot.Encode(realSnapshot(t))
	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short", func(b []byte) []byte { return b[:5] }},
		{"truncated-half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad-version", func(b []byte) []byte { b[6] ^= 0x40; return b }},
		{"flip-payload", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }},
		{"flip-checksum", func(b []byte) []byte { b[len(b)-2] ^= 1; return b }},
		{"appended-garbage", func(b []byte) []byte { return append(b, 0xAB, 0xCD) }},
	}
	for _, c := range cases {
		b := c.mangle(append([]byte(nil), good...))
		snap, err := snapshot.Decode(b)
		if err == nil {
			t.Errorf("%s: corrupt input accepted", c.name)
			continue
		}
		if snap != nil {
			t.Errorf("%s: corrupt decode returned a snapshot alongside %v", c.name, err)
		}
		var ce *snapshot.CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %T is not a *CorruptError: %v", c.name, err, err)
		}
	}
}

// TestDecodeRejectsInjectedCorruption runs the deterministic fault
// injector's corruption stream over many sites: every damaged buffer
// must be rejected (or, for pure truncations that happen to cut at a
// section boundary, still never panic or misreport).
func TestDecodeRejectsInjectedCorruption(t *testing.T) {
	good := snapshot.Encode(realSnapshot(t))
	inj := faultinject.New(2026, faultinject.SnapCorrupt)
	for site := uint64(0); site < 200; site++ {
		bad := inj.Corrupt(good, site)
		if _, err := snapshot.Decode(bad); err == nil {
			t.Errorf("site %d: corrupted snapshot accepted", site)
		}
	}
}

func TestStoreSaveLoadRotation(t *testing.T) {
	dir := t.TempDir()
	st := snapshot.NewStore(filepath.Join(dir, "profiles", "app.ppsnap"))
	snap1 := realSnapshot(t)

	if _, _, err := st.Load(); err == nil {
		t.Fatal("loading a missing snapshot succeeded")
	}
	if err := st.Save(snap1); err != nil {
		t.Fatal(err)
	}
	got, fellBack, err := st.Load()
	if err != nil || fellBack {
		t.Fatalf("load: %v (fallback=%v)", err, fellBack)
	}
	if got.Fingerprint() != snap1.Fingerprint() {
		t.Fatal("loaded snapshot differs")
	}

	// Second save rotates the first to .prev.
	snap2 := realSnapshot(t)
	snap2.Edges["work"].Add(98, 99, 1234)
	if err := st.Save(snap2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(st.PrevPath()); err != nil {
		t.Fatalf("no .prev after second save: %v", err)
	}

	// Corrupt the primary: Load must fall back to the previous good
	// snapshot and say so.
	data, err := os.ReadFile(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x20
	if err := os.WriteFile(st.Path(), data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, fellBack, err = st.Load()
	if err != nil {
		t.Fatalf("load with fallback: %v", err)
	}
	if !fellBack {
		t.Fatal("fallback not reported")
	}
	if got.Fingerprint() != snap1.Fingerprint() {
		t.Fatal("fallback returned the wrong snapshot")
	}

	// Corrupt the fallback too: now Load fails with both errors.
	if err := os.WriteFile(st.PrevPath(), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(); err == nil {
		t.Fatal("load succeeded with both copies corrupt")
	}
}

func TestEmptySnapshotRoundTrip(t *testing.T) {
	empty := &profile.Snapshot{
		Edges:  map[string]*profile.EdgeProfile{},
		Paths:  map[string]*profile.PathProfile{},
		Tables: map[string]*profile.Table{},
	}
	back, err := snapshot.Decode(snapshot.Encode(empty))
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != empty.Fingerprint() {
		t.Error("empty snapshot fingerprint changed")
	}
}
