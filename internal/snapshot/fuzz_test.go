package snapshot_test

import (
	"testing"

	"pathprof/internal/snapshot"
)

// FuzzSnapshot throws arbitrary bytes at the decoder. The contract
// under attack: never panic, never hang, and anything accepted must
// re-encode to exactly the bytes that were accepted (the codec has one
// canonical form, so decode∘encode is the identity on valid inputs).
func FuzzSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PPSNAP"))
	good := snapshot.Encode(realSnapshot(f))
	f.Add(good)
	trunc := good[:len(good)/2]
	f.Add(trunc)
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/4] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := snapshot.Decode(data)
		if err != nil {
			if snap != nil {
				t.Fatal("decode returned a snapshot with an error")
			}
			return
		}
		re := snapshot.Encode(snap)
		back, err := snapshot.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded accepted snapshot does not decode: %v", err)
		}
		if snap.Fingerprint() != back.Fingerprint() {
			t.Fatal("fingerprint not stable across re-encode")
		}
	})
}
