// Package instr plans path-profiling instrumentation for a routine
// following Ball-Larus path profiling (PP), Joshi et al. targeted path
// profiling (TPP), and Bond & McKinley practical path profiling (PPP).
//
// A Plan assigns small operation lists to DAG edges. Executing the ops
// along any hot path updates a per-invocation path register r and fires
// exactly one counter update with the path's unique number in [0, N-1].
// Cold edges carry a poisoning assignment that maps any execution
// through them into the counter range [N, tableSize), so cold
// executions never corrupt hot counts and need no per-count poison
// check ("free poisoning", Section 4.6). Obvious paths whose counter
// updates collapse to constant indices are removed from the
// instrumentation entirely and estimated from the edge profile instead
// (Section 4.4).
package instr

import (
	"fmt"
	"math"
	"strings"

	"pathprof/internal/cfg"
	"pathprof/internal/flow"
	"pathprof/internal/pathnum"
	"pathprof/internal/placement"
	"pathprof/internal/telemetry"
)

// OpKind enumerates the instrumentation operations.
type OpKind int

const (
	// OpInc adds V to the path register: r += V.
	OpInc OpKind = iota
	// OpSet assigns V to the path register: r = V. Used both for
	// combined path-register initialization (r = 0 merged with r += v)
	// and for cold-edge poisoning.
	OpSet
	// OpCountR increments the counter indexed by the path register:
	// count[r]++.
	OpCountR
	// OpCountRV increments the counter at a register offset:
	// count[r+V]++.
	OpCountRV
	// OpCountC increments the counter at constant index V: count[V]++.
	OpCountC
)

func (k OpKind) String() string {
	switch k {
	case OpInc:
		return "r+="
	case OpSet:
		return "r="
	case OpCountR:
		return "count[r]++"
	case OpCountRV:
		return "count[r+v]++"
	case OpCountC:
		return "count[c]++"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one instrumentation operation.
type Op struct {
	Kind OpKind
	V    int64
}

func (o Op) String() string {
	switch o.Kind {
	case OpInc:
		return fmt.Sprintf("r+=%d", o.V)
	case OpSet:
		return fmt.Sprintf("r=%d", o.V)
	case OpCountR:
		return "count[r]++"
	case OpCountRV:
		return fmt.Sprintf("count[r+%d]++", o.V)
	case OpCountC:
		return fmt.Sprintf("count[%d]++", o.V)
	}
	return "?"
}

// NegPoison is the poison value used when free poisoning is disabled
// (TPP-style poisoning with an explicit r < 0 check at each count).
const NegPoison = math.MinInt64 / 4

// Techniques selects which profiling techniques are active. PP, TPP
// and PPP are particular combinations; individual toggles support the
// paper's leave-one-out ablation (Figure 13).
type Techniques struct {
	// ColdLocal marks an edge cold when its frequency is below a
	// fraction of its source block's frequency (TPP, Section 3.2).
	ColdLocal bool
	// ColdOnlyToAvoidHash restricts cold-path elimination to routines
	// that would need a hash table without it but an array with it
	// (TPP's rule; PPP removes cold edges everywhere).
	ColdOnlyToAvoidHash bool
	// ObviousPaths skips all-obvious routines, disconnects obvious
	// high-trip-count loops, and drops constant counter updates on
	// obvious paths in favour of edge attribution (Sections 3.2, 4.4).
	ObviousPaths bool
	// LowCoverage skips routines whose edge profile already covers at
	// least Params.CoverageSkip of the path flow (PPP, Section 4.1).
	LowCoverage bool
	// GlobalCold marks an edge cold when its frequency is below a
	// fraction of total program unit flow (PPP, Section 4.2).
	GlobalCold bool
	// SelfAdjust raises the global threshold geometrically until the
	// path count drops below the hashing threshold (PPP, Section 4.3).
	SelfAdjust bool
	// PushFurther ignores cold edges when pushing instrumentation,
	// exposing more combining and obvious paths (PPP, Section 4.4).
	PushFurther bool
	// SmartNumber orders numbering by measured edge frequency and
	// drives the event-counting spanning tree with the edge profile
	// instead of static heuristics (PPP, Section 4.5).
	SmartNumber bool
	// FreePoison poisons cold paths into [N, tableSize) instead of
	// adding a poison check before every count (PPP, Section 4.6).
	// The paper's own TPP implementation also uses free poisoning.
	FreePoison bool
}

// PP returns the Ball-Larus configuration: no profile guidance at all.
func PP() Techniques {
	return Techniques{FreePoison: true} // no cold edges exist, so moot
}

// TPP returns the Joshi et al. configuration as implemented by the
// paper (Section 7.4): local cold criterion applied only to avoid
// hashing, obvious path/loop elimination, free poisoning.
func TPP() Techniques {
	return Techniques{
		ColdLocal:           true,
		ColdOnlyToAvoidHash: true,
		ObviousPaths:        true,
		FreePoison:          true,
	}
}

// PPP returns the full practical path profiling configuration: all six
// techniques of Section 4 on top of TPP, with cold removal everywhere.
func PPP() Techniques {
	return Techniques{
		ColdLocal:    true,
		ObviousPaths: true,
		LowCoverage:  true,
		GlobalCold:   true,
		SelfAdjust:   true,
		PushFurther:  true,
		SmartNumber:  true,
		FreePoison:   true,
	}
}

// Placement selects how edge-counter probes are placed when a run
// acquires the routine's edge profile by instrumentation. It is
// orthogonal to the path-profiling techniques: the Ball-Larus path
// plan is identical under either mode.
type Placement int

const (
	// PlaceSpanning is the baseline: a counter on every CFG
	// transition, the classic full edge instrumentation the paper's
	// edge-profiling overhead numbers assume.
	PlaceSpanning Placement = iota
	// PlaceMinCost probes only the E-V+2 cotree chords of a max-cost
	// spanning tree over the profile-weighted CFG (plus a virtual
	// exit->entry edge) and recovers every other count, including the
	// call count, from flow conservation (internal/placement).
	PlaceMinCost
)

func (pl Placement) String() string {
	switch pl {
	case PlaceSpanning:
		return "spanning"
	case PlaceMinCost:
		return "mincost"
	}
	return fmt.Sprintf("Placement(%d)", int(pl))
}

// ParsePlacement maps the CLI spelling to a Placement.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "", "spanning":
		return PlaceSpanning, nil
	case "mincost":
		return PlaceMinCost, nil
	}
	return PlaceSpanning, fmt.Errorf("instr: unknown placement %q (want spanning or mincost)", s)
}

// Params holds the profiling thresholds; defaults follow Section 7.4.
type Params struct {
	// LocalColdRatio: an edge is cold if freq(e) < ratio * freq(src).
	LocalColdRatio float64
	// GlobalColdRatio: an edge is cold if freq(e) < ratio * total
	// program unit flow.
	GlobalColdRatio float64
	// SelfAdjustFactor multiplies the global ratio per SAC iteration.
	SelfAdjustFactor float64
	// SelfAdjustMax bounds SAC iterations as a safety valve.
	SelfAdjustMax int
	// ObviousTrip is the minimum average trip count for disconnecting
	// an obvious loop.
	ObviousTrip float64
	// CoverageSkip: routines with at least this edge-profile coverage
	// are not instrumented (LC).
	CoverageSkip float64
	// HashThreshold: routines with more possible paths use a hash
	// table instead of a counter array.
	HashThreshold int64
	// Metric used for coverage computations.
	Metric flow.Metric
	// Placement selects the edge-counter probe placement
	// (PlaceSpanning or PlaceMinCost).
	Placement Placement

	// Trace, if set, receives one decision event per planner choice —
	// LC skips, cold-edge marks, SAC rounds, push combines, SPN
	// ordering, FP cold-range assignments — with the routine and edge
	// witness and the flow at stake. Nil (the default) disables
	// emission before any event or detail string is built.
	Trace *telemetry.Trace
	// Unit labels the trace events with the program unit being planned
	// (convention: "workload/profiler").
	Unit string
}

// DefaultParams returns the paper's parameter settings.
func DefaultParams() Params {
	return Params{
		LocalColdRatio:   0.05,
		GlobalColdRatio:  0.001,
		SelfAdjustFactor: 1.5,
		SelfAdjustMax:    60,
		ObviousTrip:      10,
		CoverageSkip:     0.75,
		HashThreshold:    4000,
		Metric:           flow.Branch,
	}
}

// EdgeAttr records a path whose profile is attributed from the edge
// profile rather than measured: the path's frequency is estimated as
// its defining edge's frequency.
type EdgeAttr struct {
	Num  int64 // path number in the plan's numbering, or -1
	Path cfg.Path
	Edge *cfg.DAGEdge // defining edge
}

// Plan is the instrumentation plan for one routine.
type Plan struct {
	G    *cfg.Graph
	D    *cfg.DAG
	Tech Techniques
	Par  Params

	// Instrumented is false when the routine gets no instrumentation;
	// Reason says why (no-flow, low-coverage, all-obvious,
	// too-many-paths).
	Instrumented bool
	Reason       string

	// Num is the final numbering with cold/disconnected edges
	// excluded. Nil when not instrumented (except all-obvious
	// routines, which keep it for attribution).
	Num *pathnum.Numbering
	// Cold edges are poisoned; Disc(onnected) edges (obvious-loop back
	// edges) carry no instrumentation at all. Indexed by DAG edge ID.
	Cold []bool
	Disc []bool
	// Ops holds the instrumentation per DAG edge.
	Ops [][]Op

	// N is the hot path count; counters for hot paths occupy [0, N).
	N int64
	// Hash selects a hash table; otherwise an array of TableSize
	// counters (the poison region occupies [N, TableSize)).
	Hash      bool
	TableSize int64
	// PoisonCheck is set when free poisoning is off: every count op
	// first tests r < 0 and diverts to a cold counter.
	PoisonCheck bool

	// Attr lists paths estimated from the edge profile (obvious paths
	// whose instrumentation was removed, and disconnected loop bodies).
	Attr []EdgeAttr

	// SACIterations counts self-adjusting rounds; FinalGlobalRatio is
	// the global cold ratio after adjustment.
	SACIterations    int
	FinalGlobalRatio float64

	// Placement is the edge-probe placement mode the plan was built
	// under; Probes carries the min-cost spec (nil under spanning).
	Placement Placement
	Probes    *placement.Spec
}

// Dump renders the plan as text for debugging and golden tests.
func (p *Plan) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan %s: instrumented=%v", p.G.Name, p.Instrumented)
	if p.Reason != "" {
		fmt.Fprintf(&sb, " (%s)", p.Reason)
	}
	if p.Instrumented {
		fmt.Fprintf(&sb, " N=%d hash=%v table=%d", p.N, p.Hash, p.TableSize)
	}
	sb.WriteByte('\n')
	if p.Ops != nil {
		for _, e := range p.D.Edges {
			tags := ""
			if p.Cold != nil && p.Cold[e.ID] {
				tags += " cold"
			}
			if p.Disc != nil && p.Disc[e.ID] {
				tags += " disc"
			}
			if len(p.Ops[e.ID]) == 0 && tags == "" {
				continue
			}
			fmt.Fprintf(&sb, "  %s:%s", e, tags)
			for _, op := range p.Ops[e.ID] {
				fmt.Fprintf(&sb, " %s;", op)
			}
			sb.WriteByte('\n')
		}
	}
	for _, a := range p.Attr {
		fmt.Fprintf(&sb, "  attr %s <- freq(%s)\n", a.Path, a.Edge)
	}
	if p.Probes != nil {
		fmt.Fprintf(&sb, "  placement mincost: %d probe(s) on %d edges (recovering %d)\n",
			p.Probes.NumProbes(), len(p.G.Edges), len(p.G.Edges)-p.Probes.NumProbes())
		for _, pr := range p.Probes.Probes {
			fmt.Fprintf(&sb, "    probe %d: %s\n", pr.Index,
				p.G.FindEdge(p.G.Blocks[pr.Src], p.G.Blocks[pr.Dst]))
		}
	}
	return sb.String()
}

// StaticOps counts instrumentation operations in the plan, a measure
// of code growth.
func (p *Plan) StaticOps() int {
	n := 0
	for _, ops := range p.Ops {
		n += len(ops)
	}
	return n
}

// StaticEdgeSites counts the edge-counter probe sites the plan's
// placement implies when a run instruments edges: one per CFG edge
// under spanning (full edge instrumentation), one per cotree chord
// under min-cost.
func (p *Plan) StaticEdgeSites() int {
	if p.Probes != nil {
		return p.Probes.NumProbes()
	}
	return len(p.G.Edges)
}

// emitf records one planner decision in the configured trace. A nil
// trace returns before the detail string is built; edge may be nil when
// the decision has no single witness.
func (p *Plan) emitf(kind telemetry.EventKind, edge *cfg.DAGEdge, flowAt int64, format string, args ...interface{}) {
	tr := p.Par.Trace
	if tr == nil {
		return
	}
	ev := telemetry.Event{
		Unit:    p.Par.Unit,
		Routine: p.G.Name,
		Kind:    kind,
		Flow:    flowAt,
		Detail:  fmt.Sprintf(format, args...),
	}
	if edge != nil {
		ev.Edge = edge.String()
	}
	tr.Emit(ev)
}

// emitColdEdges records one lossy event per newly-cold edge, each with
// the edge's measured frequency as the flow at stake. The why string is
// only formatted when a trace is installed.
func (p *Plan) emitColdEdges(kind telemetry.EventKind, edges []*cfg.DAGEdge, format string, args ...interface{}) {
	if p.Par.Trace == nil {
		return
	}
	why := fmt.Sprintf(format, args...)
	for _, e := range edges {
		p.emitf(kind, e, e.Freq, "%s: edge freq %d", why, e.Freq)
	}
}
