package instr_test

// Golden-file tests pinning Plan.Dump() output for the paper's worked
// examples. The dumps double as readable documentation of what each
// profiler places on the Figure 1/3/4 graphs; regenerate with
//
//	go test ./internal/instr -run TestDumpGolden -update
//
// after an intentional planner or dump-format change.

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/instr"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestDumpGolden(t *testing.T) {
	pppNoLC := func() instr.Techniques {
		x := instr.PPP()
		x.LowCoverage = false
		return x
	}()
	cases := []struct {
		name      string
		graph     func() (*cfg.Graph, map[string]*cfg.Block)
		tech      instr.Techniques
		total     int64
		placement instr.Placement
	}{
		{"figure1-pp", figure1Graph, instr.PP(), 1000, instr.PlaceSpanning},
		{"figure1-ppp", figure1Graph, pppNoLC, 1000, instr.PlaceSpanning},
		{"figure3-fp", figure3Graph, instr.Techniques{ColdLocal: true, FreePoison: true}, 1000, instr.PlaceSpanning},
		{"figure3-nofp", figure3Graph, instr.Techniques{ColdLocal: true}, 1000, instr.PlaceSpanning},
		{"figure4-tpp", figure4Graph, instr.TPP(), 100, instr.PlaceSpanning},
		{"figure4-pp", figure4Graph, instr.PP(), 100, instr.PlaceSpanning},
		// Min-cost probe placement on the same worked examples: the path
		// plan is identical to the spanning dump; the trailing placement
		// section pins which cotree chords carry edge probes.
		{"figure1-ppp-mincost", figure1Graph, pppNoLC, 1000, instr.PlaceMinCost},
		{"figure3-fp-mincost", figure3Graph, instr.Techniques{ColdLocal: true, FreePoison: true}, 1000, instr.PlaceMinCost},
		{"figure4-tpp-mincost", figure4Graph, instr.TPP(), 100, instr.PlaceMinCost},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g, _ := tc.graph()
			par := instr.DefaultParams()
			par.Placement = tc.placement
			p, err := instr.Build(g, tc.tech, par, tc.total)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			got := p.Dump()
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatalf("update: %v", err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("Dump() drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
