package instr_test

// Golden-file tests pinning Plan.Dump() output for the paper's worked
// examples. The dumps double as readable documentation of what each
// profiler places on the Figure 1/3/4 graphs; regenerate with
//
//	go test ./internal/instr -run TestDumpGolden -update
//
// after an intentional planner or dump-format change.

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/instr"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestDumpGolden(t *testing.T) {
	cases := []struct {
		name  string
		graph func() (*cfg.Graph, map[string]*cfg.Block)
		tech  instr.Techniques
		total int64
	}{
		{"figure1-pp", figure1Graph, instr.PP(), 1000},
		{"figure1-ppp", figure1Graph, func() instr.Techniques {
			x := instr.PPP()
			x.LowCoverage = false
			return x
		}(), 1000},
		{"figure3-fp", figure3Graph, instr.Techniques{ColdLocal: true, FreePoison: true}, 1000},
		{"figure3-nofp", figure3Graph, instr.Techniques{ColdLocal: true}, 1000},
		{"figure4-tpp", figure4Graph, instr.TPP(), 100},
		{"figure4-pp", figure4Graph, instr.PP(), 100},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g, _ := tc.graph()
			p := build(t, g, tc.tech, tc.total)
			got := p.Dump()
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatalf("update: %v", err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("Dump() drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
