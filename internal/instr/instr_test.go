package instr_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/instr"
	"pathprof/internal/verify"
)

func build(t testing.TB, g *cfg.Graph, tech instr.Techniques, total int64) *instr.Plan {
	t.Helper()
	p, err := instr.Build(g, tech, instr.DefaultParams(), total)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// simulate executes a plan's ops along a DAG path, returning every
// fired counter index together with whether the register was poisoned
// (last Set was on a cold edge) at fire time.
type fired struct {
	index    int64
	poisoned bool
}

func simulate(p *instr.Plan, path cfg.Path) []fired {
	var r int64
	poisoned := false
	var out []fired
	for _, e := range path {
		for _, op := range p.Ops[e.ID] {
			switch op.Kind {
			case instr.OpInc:
				r += op.V
			case instr.OpSet:
				r = op.V
				poisoned = p.Cold[e.ID]
			case instr.OpCountR:
				out = append(out, fired{r, poisoned})
			case instr.OpCountRV:
				out = append(out, fired{r + op.V, poisoned})
			case instr.OpCountC:
				out = append(out, fired{op.V, false})
			}
		}
	}
	return out
}

// checkPlan verifies the instrumentation invariants through the
// static verifier (internal/verify), the single source of truth for
// what a well-formed plan means.
func checkPlan(t testing.TB, p *instr.Plan, context string) {
	t.Helper()
	if rep := verify.Check(p); !rep.OK() {
		t.Fatalf("%s: %s\n%s", context, rep, p.Dump())
	}
}

func TestPPDiamond(t *testing.T) {
	g := cfgtest.Diamond()
	rng := rand.New(rand.NewSource(1))
	cfgtest.Profile(g, rng, 100, 100)
	p := build(t, g, instr.PP(), 100)
	if !p.Instrumented {
		t.Fatalf("PP must instrument: %s", p.Dump())
	}
	if p.N != 2 || p.Hash || p.TableSize != 2 {
		t.Errorf("N=%d hash=%v table=%d, want 2/false/2", p.N, p.Hash, p.TableSize)
	}
	checkPlan(t, p, "pp-diamond")
	if len(p.Attr) != 0 {
		t.Errorf("PP attributed paths: %v", p.Attr)
	}
}

func TestTPPSkipsAllObvious(t *testing.T) {
	g := cfgtest.Diamond()
	rng := rand.New(rand.NewSource(2))
	cfgtest.Profile(g, rng, 100, 100)
	p := build(t, g, instr.TPP(), 100)
	if p.Instrumented || p.Reason != "all-obvious" {
		t.Fatalf("TPP should skip all-obvious diamond, got %s", p.Dump())
	}
	if len(p.Attr) != 2 {
		t.Fatalf("want 2 attributed paths, got %d", len(p.Attr))
	}
	for _, a := range p.Attr {
		if a.Edge == nil || p.Num.PathsThrough(a.Edge) != 1 {
			t.Errorf("attribution edge %v not defining", a.Edge)
		}
	}
}

// doubleDiamond builds the 4-path graph where no path is obvious.
func doubleDiamond() *cfg.Graph {
	g := cfg.New("dd")
	names := []string{"entry", "a", "b", "c", "m", "x", "y", "j", "exit"}
	bs := map[string]*cfg.Block{}
	for _, n := range names {
		bs[n] = g.AddBlock(n)
	}
	g.Entry, g.Exit = bs["entry"], bs["exit"]
	conn := [][2]string{{"entry", "a"}, {"a", "b"}, {"a", "c"}, {"b", "m"}, {"c", "m"},
		{"m", "x"}, {"m", "y"}, {"x", "j"}, {"y", "j"}, {"j", "exit"}}
	for _, c := range conn {
		cfgtest.Connect(g, bs[c[0]], bs[c[1]])
	}
	return g
}

func TestTPPInstrumentsNonObvious(t *testing.T) {
	g := doubleDiamond()
	rng := rand.New(rand.NewSource(3))
	cfgtest.Profile(g, rng, 200, 100)
	p := build(t, g, instr.TPP(), 200)
	if !p.Instrumented {
		t.Fatalf("TPP should instrument double diamond: %s", p.Dump())
	}
	if p.N != 4 {
		t.Errorf("N = %d, want 4", p.N)
	}
	// Small routine: TPP's cold elimination is hash-avoidance only.
	for i, c := range p.Cold {
		if c {
			t.Errorf("TPP marked edge %d cold in array-sized routine", i)
		}
	}
	checkPlan(t, p, "tpp-dd")
}

// coldDiamond builds a triple diamond with one first-stage arm almost
// never taken, so the local criterion makes it cold while the rest of
// the routine stays non-obvious (four surviving paths, every hot edge
// on at least two of them).
func coldDiamond() *cfg.Graph {
	g := cfg.New("cold3")
	names := []string{"entry", "a", "b", "c", "m", "x", "y", "j", "p", "q", "w", "exit"}
	bs := map[string]*cfg.Block{}
	for _, n := range names {
		bs[n] = g.AddBlock(n)
	}
	g.Entry, g.Exit = bs["entry"], bs["exit"]
	set := func(a, b string, f int64) {
		cfgtest.Connect(g, bs[a], bs[b]).Freq = f
	}
	set("entry", "a", 1000)
	set("a", "b", 10) // cold: 1% of a
	set("a", "c", 990)
	set("b", "m", 10)
	set("c", "m", 990)
	set("m", "x", 500)
	set("m", "y", 500)
	set("x", "j", 500)
	set("y", "j", 500)
	set("j", "p", 400)
	set("j", "q", 600)
	set("p", "w", 400)
	set("q", "w", 600)
	set("w", "exit", 1000)
	g.Calls = 1000
	return g
}

func TestPPPColdRemovalAndFreePoison(t *testing.T) {
	g := coldDiamond()
	tech := instr.PPP()
	tech.LowCoverage = false // force instrumentation for this test
	p := build(t, g, tech, 1000)
	if !p.Instrumented {
		t.Fatalf("not instrumented: %s", p.Dump())
	}
	// a->b and b->m are cold under both criteria (freq 10 < 5% of 1000
	// local for a->b; 10 < 0.1%*1000000? global uses total program
	// flow=1000 -> cut=1: not global). Local: a->b is 1% of a's 1000.
	coldCount := 0
	for _, e := range p.D.Edges {
		if p.Cold[e.ID] {
			coldCount++
		}
	}
	if coldCount == 0 {
		t.Fatalf("no cold edges marked: %s", p.Dump())
	}
	if p.N != 4 {
		t.Errorf("N = %d, want 4 (paths through c only)", p.N)
	}
	if p.TableSize < p.N {
		t.Errorf("table %d < N %d", p.TableSize, p.N)
	}
	checkPlan(t, p, "ppp-cold")
}

func TestPoisonCheckVariant(t *testing.T) {
	g := coldDiamond()
	tech := instr.PPP()
	tech.LowCoverage = false
	tech.FreePoison = false
	p := build(t, g, tech, 1000)
	if !p.Instrumented || !p.PoisonCheck {
		t.Fatalf("expected check-based poisoning: %s", p.Dump())
	}
	if p.TableSize != p.N {
		t.Errorf("check-based table = %d, want N = %d", p.TableSize, p.N)
	}
	checkPlan(t, p, "poison-check")
}

func TestLowCoverageSkip(t *testing.T) {
	// A single-path routine has 100% edge-profile coverage.
	g := cfg.New("line")
	entry := g.AddBlock("entry")
	a := g.AddBlock("a")
	exit := g.AddBlock("exit")
	cfgtest.Connect(g, entry, a).Freq = 10
	cfgtest.Connect(g, a, exit).Freq = 10
	g.Entry, g.Exit = entry, exit
	g.Calls = 10
	p := build(t, g, instr.PPP(), 10)
	if p.Instrumented || p.Reason != "low-coverage" {
		t.Fatalf("PPP should skip perfectly covered routine, got %q", p.Reason)
	}
	// PP still instruments it.
	p2 := build(t, g, instr.PP(), 10)
	if !p2.Instrumented {
		t.Fatal("PP must instrument")
	}
	checkPlan(t, p2, "pp-line")
}

// deepDiamonds chains k diamonds for 2^k paths.
func deepDiamonds(k int) *cfg.Graph {
	g := cfg.New("deep")
	entry := g.AddBlock("entry")
	prev := entry
	for i := 0; i < k; i++ {
		a := g.AddBlock("")
		b := g.AddBlock("")
		c := g.AddBlock("")
		j := g.AddBlock("")
		cfgtest.Connect(g, prev, a)
		cfgtest.Connect(g, a, b)
		cfgtest.Connect(g, a, c)
		cfgtest.Connect(g, b, j)
		cfgtest.Connect(g, c, j)
		prev = j
	}
	exit := g.AddBlock("exit")
	cfgtest.Connect(g, prev, exit)
	g.Entry, g.Exit = entry, exit
	return g
}

func TestSelfAdjustingCriterion(t *testing.T) {
	// 2^13 = 8192 paths > 4000. Seven diamonds split 90/10, six split
	// 50/50: the global criterion (cut starting at 1) self-adjusts by
	// 1.5x until the 100-frequency arms go cold, leaving 2^6 = 64
	// non-obvious paths through the balanced diamonds.
	g := deepDiamonds(13)
	g.Calls = 1000
	diamond := 0
	for _, b := range g.Blocks { // construction order is topological
		inflow := g.BlockFreq(b)
		if len(b.Out) == 2 {
			if diamond < 7 {
				b.Out[0].Freq, b.Out[1].Freq = inflow*9/10, inflow/10
			} else {
				b.Out[0].Freq, b.Out[1].Freq = inflow/2, inflow/2
			}
			diamond++
		} else if len(b.Out) == 1 {
			b.Out[0].Freq = inflow
		}
	}
	if err := g.CheckFlow(); err != nil {
		t.Fatal(err)
	}
	tech := instr.PPP()
	tech.ColdLocal = false // isolate the global criterion
	tech.LowCoverage = false
	p := build(t, g, tech, 1000)
	if !p.Instrumented {
		t.Fatalf("not instrumented: %s", p.Dump())
	}
	if p.Hash {
		t.Errorf("SAC failed to eliminate hashing (N=%d, iters=%d)", p.N, p.SACIterations)
	}
	if p.SACIterations == 0 {
		t.Errorf("expected SAC iterations, ratio stayed %v", p.FinalGlobalRatio)
	}
	checkPlan(t, p, "sac")

	// Without SAC the routine must hash.
	tech.SelfAdjust = false
	tech.GlobalCold = false
	p2 := build(t, g, tech, 1000)
	if !p2.Instrumented || !p2.Hash {
		t.Errorf("without SAC expected hashing, got hash=%v N=%d", p2.Hash, p2.N)
	}
	checkPlan(t, p2, "no-sac")
}

func TestObviousLoopDisconnection(t *testing.T) {
	// entry -> pre -> h; h -> x | y; x,y -> tl; tl -> h (back);
	// tl -> post -> exit. Body paths are obvious (x and y are defining
	// edges); trip count 20 >= 10.
	g := cfg.New("oloop")
	names := []string{"entry", "pre", "h", "x", "y", "tl", "post", "exit"}
	bs := map[string]*cfg.Block{}
	for _, n := range names {
		bs[n] = g.AddBlock(n)
	}
	g.Entry, g.Exit = bs["entry"], bs["exit"]
	conn := func(a, b string, f int64) *cfg.Edge {
		e := cfgtest.Connect(g, bs[a], bs[b])
		e.Freq = f
		return e
	}
	conn("entry", "pre", 50)
	conn("pre", "h", 50)
	conn("h", "x", 600)
	conn("h", "y", 400)
	conn("x", "tl", 600)
	conn("y", "tl", 400)
	conn("tl", "h", 950) // back edge; trip = 1000/50 = 20
	conn("tl", "post", 50)
	conn("post", "exit", 50)
	g.Calls = 50

	tech := instr.TPP()
	p := build(t, g, tech, 1000)
	// After disconnection every remaining path is cold or the routine
	// may become all-obvious / no-hot-paths; either way the loop body
	// must be attributed and carry no ops.
	entryDummy := p.D.EntryDummyFor(bs["h"])
	exitDummy := p.D.ExitDummyFor(bs["tl"])
	if entryDummy == nil || exitDummy == nil {
		t.Fatal("missing dummies")
	}
	if !p.Disc[entryDummy.ID] || !p.Disc[exitDummy.ID] {
		t.Fatalf("loop dummies not disconnected: %s", p.Dump())
	}
	preH := p.D.Real(bs["pre"], bs["h"])
	tlPost := p.D.Real(bs["tl"], bs["post"])
	if !p.Cold[preH.ID] || !p.Cold[tlPost.ID] {
		t.Fatalf("loop entrance/exit not cold: %s", p.Dump())
	}
	if len(p.Attr) < 2 {
		t.Fatalf("want >= 2 attributed body paths, got %v", p.Attr)
	}
	wantFreq := map[string]int64{
		"entry=>h x tl=>exit": 600,
		"entry=>h y tl=>exit": 400,
	}
	found := 0
	for _, a := range p.Attr {
		if f, ok := wantFreq[a.Path.String()]; ok {
			found++
			if a.Edge.Freq != f {
				t.Errorf("body path %s attributed freq %d, want %d", a.Path, a.Edge.Freq, f)
			}
		}
	}
	if found != 2 {
		t.Errorf("found %d/2 body paths in attribution: %s", found, p.Dump())
	}
	if p.Ops != nil {
		for _, e := range p.D.Edges {
			inBody := e.Kind == cfg.RealEdge &&
				(e.Src == bs["h"] || e.Src == bs["x"] || e.Src == bs["y"]) &&
				e.Dst != bs["post"]
			if inBody && len(p.Ops[e.ID]) > 0 {
				t.Errorf("loop body edge %s carries ops %v", e, p.Ops[e.ID])
			}
		}
	}
	checkPlan(t, p, "obvious-loop")
}

func TestLowTripLoopNotDisconnected(t *testing.T) {
	g := cfg.New("lowtrip")
	names := []string{"entry", "pre", "h", "x", "y", "tl", "post", "exit"}
	bs := map[string]*cfg.Block{}
	for _, n := range names {
		bs[n] = g.AddBlock(n)
	}
	g.Entry, g.Exit = bs["entry"], bs["exit"]
	conn := func(a, b string, f int64) {
		cfgtest.Connect(g, bs[a], bs[b]).Freq = f
	}
	conn("entry", "pre", 100)
	conn("pre", "h", 100)
	conn("h", "x", 150)
	conn("h", "y", 150)
	conn("x", "tl", 150)
	conn("y", "tl", 150)
	conn("tl", "h", 200) // trip = 300/100 = 3 < 10
	conn("tl", "post", 100)
	conn("post", "exit", 100)
	g.Calls = 100
	p := build(t, g, instr.TPP(), 300)
	for i := range p.Disc {
		if p.Disc[i] {
			t.Fatalf("low-trip loop was disconnected: %s", p.Dump())
		}
	}
}

// TestPushFurtherExposesObviousPaths reproduces the Figure 5 effect:
// with a cold edge joining below a merge, PPP pushes the counter above
// the merge and removes instrumentation from obvious paths, while TPP
// pushing (cold edges block) keeps counts below.
func TestPushFurtherExposesObviousPaths(t *testing.T) {
	// Left side of the merge: two chained diamonds (four non-obvious
	// paths). Right side: one diamond (two obvious paths). Both sides
	// merge at m, which has a cold side exit z. With PushFurther the
	// counter is pushed above m (ignoring the cold m->z) and meets the
	// initialization on the right side's arms, turning the right-side
	// paths into removable constant counts.
	g := cfg.New("fig5ish")
	names := []string{"entry", "s", "a", "b", "c", "m1", "d", "e", "m2",
		"i", "j", "k", "l", "m", "o", "z", "exit"}
	bs := map[string]*cfg.Block{}
	for _, n := range names {
		bs[n] = g.AddBlock(n)
	}
	g.Entry, g.Exit = bs["entry"], bs["exit"]
	conn := func(a, b string, f int64) {
		cfgtest.Connect(g, bs[a], bs[b]).Freq = f
	}
	conn("entry", "s", 1000)
	conn("s", "a", 500)
	conn("a", "b", 250)
	conn("a", "c", 250)
	conn("b", "m1", 250)
	conn("c", "m1", 250)
	conn("m1", "d", 250)
	conn("m1", "e", 250)
	conn("d", "m2", 250)
	conn("e", "m2", 250)
	conn("m2", "m", 500)
	conn("s", "i", 500)
	conn("i", "j", 250)
	conn("i", "k", 250)
	conn("j", "l", 250)
	conn("k", "l", 250)
	conn("l", "m", 500)
	conn("m", "o", 999)
	conn("m", "z", 1) // cold
	conn("o", "exit", 999)
	conn("z", "exit", 1)
	g.Calls = 1000

	// SmartNumber in both variants keeps the hot edge m->o on the
	// spanning tree (increment-free), so the only difference between
	// the two plans is whether pushing ignores the cold edge m->z.
	base := instr.Techniques{ColdLocal: true, ObviousPaths: true, FreePoison: true, SmartNumber: true}
	ppp := base
	ppp.PushFurther = true

	pTPP := build(t, g, base, 1000)
	pPPP := build(t, g, ppp, 1000)
	if !pTPP.Instrumented || !pPPP.Instrumented {
		t.Fatalf("both must instrument:\n%s\n%s", pTPP.Dump(), pPPP.Dump())
	}
	checkPlan(t, pTPP, "fig5-tpp")
	checkPlan(t, pPPP, "fig5-ppp")
	if len(pPPP.Attr) <= len(pTPP.Attr) {
		t.Errorf("PushFurther attributed %d paths, TPP-style %d; want more",
			len(pPPP.Attr), len(pTPP.Attr))
	}
}

func TestPlanProperty(t *testing.T) {
	techs := map[string]instr.Techniques{
		"pp":      instr.PP(),
		"tpp":     instr.TPP(),
		"ppp":     instr.PPP(),
		"no-fp":   func() instr.Techniques { x := instr.PPP(); x.FreePoison = false; return x }(),
		"no-push": func() instr.Techniques { x := instr.PPP(); x.PushFurther = false; return x }(),
		"no-spn":  func() instr.Techniques { x := instr.PPP(); x.SmartNumber = false; return x }(),
		"no-lc":   func() instr.Techniques { x := instr.PPP(); x.LowCoverage = false; return x }(),
		"no-sac": func() instr.Techniques {
			x := instr.PPP()
			x.SelfAdjust = false
			x.GlobalCold = false
			return x
		}(),
		"no-obvious": func() instr.Techniques { x := instr.PPP(); x.ObviousPaths = false; return x }(),
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cfgtest.Random(rng, 3+rng.Intn(16))
		cfgtest.Profile(g, rng, 100+rng.Intn(400), 400)
		for name, tech := range techs {
			p, err := instr.Build(g, tech, instr.DefaultParams(), g.Calls)
			if err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if !checkPlanQuiet(t, p, name) {
				t.Logf("seed %d %s failed invariants", seed, name)
				return false
			}
			if p.Instrumented && p.TableSize < p.N {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// checkPlanQuiet runs the verifier but converts violations into a
// boolean so quick.Check can report the failing seed.
func checkPlanQuiet(t *testing.T, p *instr.Plan, context string) bool {
	if rep := verify.Check(p); !rep.OK() {
		t.Logf("%s: %s", context, rep)
		return false
	}
	return true
}
