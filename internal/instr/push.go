package instr

import (
	"pathprof/internal/cfg"
	"pathprof/internal/telemetry"
)

// hot reports whether e participates in hot-path instrumentation: it
// is neither cold nor disconnected.
func (p *Plan) hot(e *cfg.DAGEdge) bool {
	return !p.Cold[e.ID] && !p.Disc[e.ID]
}

// inDeg counts the incoming edges of w that block pushing
// initialization past it. Disconnected edges never block. With
// PushFurther (PPP, Section 4.4) cold edges do not block either; TPP
// stops pushing even when the merging edge is cold.
func (p *Plan) inDeg(w *cfg.Block) int {
	n := 0
	for _, e := range p.D.In[w.ID] {
		if p.Disc[e.ID] {
			continue
		}
		if p.Tech.PushFurther && p.Cold[e.ID] {
			continue
		}
		n++
	}
	return n
}

// outDeg counts the outgoing edges of w that block pushing the counter
// update above it, with the same cold-edge treatment as inDeg.
func (p *Plan) outDeg(w *cfg.Block) int {
	n := 0
	for _, e := range p.D.Out[w.ID] {
		if p.Disc[e.ID] {
			continue
		}
		if p.Tech.PushFurther && p.Cold[e.ID] {
			continue
		}
		n++
	}
	return n
}

// place performs the Ball-Larus instrumentation placement (Section
// 3.1): path-register increments on event-counting chords, the
// initialization r = 0 pushed down from the entry, and the counter
// update count[r]++ pushed up from the exit, combining where they meet
// increments. Pushing is what moves the dummy-edge instrumentation
// onto back edges when the DAG is converted back to a CFG.
func (p *Plan) place(inc []int64, chord []bool) {
	p.Ops = make([][]Op, len(p.D.Edges))
	for _, e := range p.D.Edges {
		if chord[e.ID] && inc[e.ID] != 0 && p.hot(e) {
			p.Ops[e.ID] = []Op{{Kind: OpInc, V: inc[e.ID]}}
		}
	}
	for _, e := range p.D.Out[p.G.Entry.ID] {
		if p.hot(e) {
			p.placeInit(0, e)
		}
	}
	for _, e := range p.D.In[p.G.Exit.ID] {
		if p.hot(e) {
			p.placeCount(e)
		}
	}
}

// placeInit pushes the initialization r = val down edge e: it combines
// with an increment into r = val+v, or continues through merge-free
// nodes, or lands on e as r = val.
func (p *Plan) placeInit(val int64, e *cfg.DAGEdge) {
	ops := p.Ops[e.ID]
	if len(ops) == 1 && ops[0].Kind == OpInc {
		p.emitf(telemetry.EvPushCombine, e, e.Freq,
			"init r=%d combined with r+=%d into r=%d", val, ops[0].V, val+ops[0].V)
		p.Ops[e.ID] = []Op{{Kind: OpSet, V: val + ops[0].V}}
		return
	}
	w := e.Dst
	if w != p.G.Exit && p.inDeg(w) == 1 {
		pushed := false
		for _, f := range p.D.Out[w.ID] {
			if p.hot(f) {
				p.placeInit(val, f)
				pushed = true
			}
		}
		if pushed {
			return
		}
		// No hot continuation: e lies on no complete hot path, so the
		// initialization is dead and can be dropped.
		return
	}
	p.Ops[e.ID] = append(p.Ops[e.ID], Op{Kind: OpSet, V: val})
}

// placeCount pushes the counter update count[r]++ up edge e: it
// combines with an increment into count[r+v]++, with an initialization
// into the constant count[c]++, or continues through nodes with a
// single hot successor, or lands on e as count[r]++.
func (p *Plan) placeCount(e *cfg.DAGEdge) {
	ops := p.Ops[e.ID]
	if len(ops) == 1 {
		switch ops[0].Kind {
		case OpInc:
			p.emitf(telemetry.EvPushCombine, e, e.Freq,
				"count[r]++ combined with r+=%d into count[r+%d]++", ops[0].V, ops[0].V)
			p.Ops[e.ID] = []Op{{Kind: OpCountRV, V: ops[0].V}}
			return
		case OpSet:
			p.emitf(telemetry.EvPushCombine, e, e.Freq,
				"count[r]++ combined with r=%d into count[%d]++", ops[0].V, ops[0].V)
			p.Ops[e.ID] = []Op{{Kind: OpCountC, V: ops[0].V}}
			return
		}
	}
	w := e.Src
	if w != p.G.Entry && p.outDeg(w) == 1 {
		pushed := false
		for _, f := range p.D.In[w.ID] {
			if p.hot(f) {
				p.placeCount(f)
				pushed = true
			}
		}
		if pushed {
			return
		}
		// No hot path reaches e; the counter update is dead.
		return
	}
	p.Ops[e.ID] = append(p.Ops[e.ID], Op{Kind: OpCountR})
}

// SimulatePath executes the plan's ops along a DAG path and returns
// the counter index recorded, or -1 if no counter fired (obvious paths
// whose instrumentation was removed). Used by tests and by the
// evaluation to classify instrumented paths. A second counter firing
// on the same path (possible only for executions that cross cold
// edges) is reported via the extra count.
func (p *Plan) SimulatePath(path cfg.Path) (index int64, counts int) {
	var r int64
	index = -1
	for _, e := range path {
		if p.Ops == nil {
			break
		}
		for _, op := range p.Ops[e.ID] {
			switch op.Kind {
			case OpInc:
				r += op.V
			case OpSet:
				r = op.V
			case OpCountR:
				index = r
				counts++
			case OpCountRV:
				index = r + op.V
				counts++
			case OpCountC:
				index = op.V
				counts++
			}
		}
	}
	return index, counts
}
