package instr

import (
	"pathprof/internal/cfg"
	"pathprof/internal/pathnum"
	"pathprof/internal/telemetry"
)

// disconnectObviousLoops finds inner loops whose body paths are all
// obvious and whose average trip count is at least Params.ObviousTrip,
// and disconnects them (Section 3.2): the loop's entrance and exit
// edges are marked cold (the paper's implementation note 2) and its
// back-edge dummies are disconnected, so iterations execute no
// instrumentation at all. The body paths are recorded as
// edge-attributed: each one's frequency is estimated by its defining
// edge's frequency in the edge profile.
func (p *Plan) disconnectObviousLoops() {
	for _, l := range p.G.InnerLoops() {
		p.tryDisconnect(l)
	}
}

func (p *Plan) tryDisconnect(l *cfg.Loop) {
	if p.G.TripCount(l) < p.Par.ObviousTrip {
		return
	}
	header := l.Header
	// Tails and dummy edges. If a tail's exit dummy also stands for a
	// back edge of another loop, disconnecting would damage that loop;
	// skip such (rare) loops.
	tailSet := map[int]bool{}
	for _, b := range l.Backs {
		tailSet[b.Src.ID] = true
	}
	var tails []*cfg.Block
	for id := range tailSet {
		tails = append(tails, p.G.Blocks[id])
	}
	entryDummy := p.D.EntryDummyFor(header)
	if entryDummy == nil {
		return
	}
	var exitDummies []*cfg.DAGEdge
	for _, t := range tails {
		xd := p.D.ExitDummyFor(t)
		if xd == nil {
			return
		}
		for _, be := range xd.Back {
			if be.Dst != header {
				return // shared with another loop
			}
		}
		exitDummies = append(exitDummies, xd)
	}

	// Body blocks: reachable from the header and reaching a tail using
	// only non-cold real DAG edges inside the loop.
	inLoop := func(b *cfg.Block) bool { return l.Blocks[b.ID] }
	bodyEdge := func(e *cfg.DAGEdge) bool {
		return e.Kind == cfg.RealEdge && !p.Cold[e.ID] && inLoop(e.Src) && inLoop(e.Dst)
	}
	fromHeader := map[int]bool{header.ID: true}
	stack := []*cfg.Block{header}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range p.D.Out[b.ID] {
			if bodyEdge(e) && !fromHeader[e.Dst.ID] {
				fromHeader[e.Dst.ID] = true
				stack = append(stack, e.Dst)
			}
		}
	}
	toTail := map[int]bool{}
	for _, t := range tails {
		if !fromHeader[t.ID] {
			return // a tail unreachable through non-cold body edges
		}
		if !toTail[t.ID] {
			toTail[t.ID] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range p.D.In[b.ID] {
			if bodyEdge(e) && !toTail[e.Src.ID] {
				toTail[e.Src.ID] = true
				stack = append(stack, e.Src)
			}
		}
	}
	body := map[int]bool{}
	for id := range fromHeader {
		if toTail[id] {
			body[id] = true
		}
	}
	if !body[header.ID] {
		return
	}

	// Build the body subgraph: pseudo entry -> header, tails -> pseudo
	// exit, non-cold real body edges in between.
	sub := cfg.New(p.G.Name + ".loop")
	subEntry := sub.AddBlock("entry")
	toSub := map[int]*cfg.Block{}
	toMain := map[int]*cfg.Block{}
	for id := range body {
		mb := p.G.Blocks[id]
		sb := sub.AddBlock(mb.Name)
		toSub[mb.ID] = sb
		toMain[sb.ID] = mb
	}
	subExit := sub.AddBlock("exit")
	sub.Entry, sub.Exit = subEntry, subExit
	entryEdge, err := sub.Connect(subEntry, toSub[header.ID])
	if err != nil {
		return // malformed subgraph: leave the loop connected
	}
	entryEdge.Freq = entryDummy.Freq
	type subEdgeKey struct{ s, d int }
	mainEdge := map[subEdgeKey]*cfg.DAGEdge{}
	for _, e := range p.D.Edges {
		if !bodyEdge(e) || !body[e.Src.ID] || !body[e.Dst.ID] {
			continue
		}
		se, err := sub.Connect(toSub[e.Src.ID], toSub[e.Dst.ID])
		if err != nil {
			return
		}
		se.Freq = e.Freq
		mainEdge[subEdgeKey{se.Src.ID, se.Dst.ID}] = e
	}
	exitDummyFor := map[int]*cfg.DAGEdge{}
	for _, xd := range exitDummies {
		se, err := sub.Connect(toSub[xd.Src.ID], subExit)
		if err != nil {
			return
		}
		se.Freq = xd.Freq
		exitDummyFor[se.Src.ID] = xd
	}
	if sub.Validate() != nil {
		return
	}
	subDAG, err := cfg.BuildDAG(sub)
	if err != nil {
		return
	}
	num, err := pathnum.Number(subDAG, nil, pathnum.OrderBallLarus)
	if err != nil || num.N == 0 || !num.AllObvious() {
		return
	}

	// The loop qualifies: disconnect it.
	p.emitf(telemetry.EvObviousLoop, entryDummy, entryDummy.Freq,
		"obvious loop at %s disconnected: %d body path(s) edge-attributed, trip count %.1f",
		header.Name, num.N, p.G.TripCount(l))
	p.Disc[entryDummy.ID] = true
	for _, xd := range exitDummies {
		p.Disc[xd.ID] = true
	}
	for _, e := range p.D.In[header.ID] {
		if e.Kind == cfg.RealEdge && !inLoop(e.Src) {
			p.Cold[e.ID] = true
		}
	}
	for _, e := range p.D.Edges {
		if e.Kind == cfg.RealEdge && inLoop(e.Src) && !inLoop(e.Dst) {
			p.Cold[e.ID] = true
		}
	}

	// Attribute the body paths from the edge profile.
	mapEdge := func(se *cfg.DAGEdge) *cfg.DAGEdge {
		if se.Src == subDAG.G.Entry {
			return entryDummy
		}
		if se.Dst == subDAG.G.Exit {
			return exitDummyFor[se.Src.ID]
		}
		return mainEdge[subEdgeKey{se.Src.ID, se.Dst.ID}]
	}
	for _, sp := range subDAG.EnumeratePaths(nil, int(num.N)+1) {
		full := make(cfg.Path, 0, len(sp))
		for _, se := range sp {
			full = append(full, mapEdge(se))
		}
		def := num.DefiningEdge(sp)
		if def == nil {
			continue // guarded by AllObvious
		}
		p.Attr = append(p.Attr, EdgeAttr{Num: -1, Path: full, Edge: mapEdge(def)})
	}
}
