package instr

import "pathprof/internal/telemetry"

// poison places poisoning assignments on cold edges and sizes the
// counter table.
//
// With free poisoning (Section 4.6) each cold edge assigns the path
// register a value chosen so that any counter update executed after it
// (without an intervening re-initialization) lands in the cold region
// [N, TableSize). The choice compensates for negative event-counting
// increments: a reverse-topological pass computes, for every block,
// the range of "increment sum so far plus count offset" over all hot
// suffixes, and the cold edge targeting that block assigns
// N - min(range).
//
// Without free poisoning (the paper's ablation of FP, approximating
// TPP's original check-based scheme) cold edges assign a large
// negative value and every counter update is preceded by an r < 0
// check that diverts to a cold counter; the VM charges the check.
func (p *Plan) poison() {
	anyCold := false
	for _, c := range p.Cold {
		if c {
			anyCold = true
			break
		}
	}
	if !anyCold {
		p.TableSize = p.N
		return
	}
	// A disconnected obvious-loop dummy can also satisfy a cold
	// criterion (SAC re-marks after disconnection); it still carries no
	// ops — the loop's entrance and exit edges poison on its behalf.
	if !p.Tech.FreePoison {
		for _, e := range p.D.Edges {
			if p.Cold[e.ID] && !p.Disc[e.ID] {
				p.Ops[e.ID] = []Op{{Kind: OpSet, V: NegPoison}}
			}
		}
		p.PoisonCheck = true
		p.TableSize = p.N
		p.emitf(telemetry.EvFPColdRange, nil, 0,
			"free poisoning off: every count carries an r<0 check")
		return
	}

	lo, hi, has := p.suffixCountRanges()
	maxIdx := p.N - 1
	for _, e := range p.D.Edges {
		if !p.Cold[e.ID] || p.Disc[e.ID] {
			continue
		}
		v := p.N
		if has[e.Dst.ID] {
			v = p.N - lo[e.Dst.ID]
			if top := v + hi[e.Dst.ID]; top > maxIdx {
				maxIdx = top
			}
		}
		p.Ops[e.ID] = []Op{{Kind: OpSet, V: v}}
		p.emitf(telemetry.EvFPColdRange, e, e.Freq,
			"poison r=%d lands any later count in the cold range [%d, tableSize)", v, p.N)
	}
	p.TableSize = maxIdx + 1
}

// suffixCountRanges computes, for each block, the min/max over all hot
// suffix paths of the accumulated increment at each counter update
// (plus the update's offset). Cold and disconnected out-edges are
// skipped: cold edges re-poison, and disconnected obvious-loop dummies
// lead only to regions whose every escape is cold (the disconnection
// invariant), so neither can reach a count with the current register.
// An OpSet on a hot edge is a pushed-down initialization: counts beyond
// it are based on the new value, not the poisoned register, so
// propagation stops there (such executions are the deliberate
// overcounts of Section 4.4).
func (p *Plan) suffixCountRanges() (lo, hi []int64, has []bool) {
	nblocks := len(p.G.Blocks)
	lo = make([]int64, nblocks)
	hi = make([]int64, nblocks)
	has = make([]bool, nblocks)
	add := func(id int, a, b int64) {
		if !has[id] {
			lo[id], hi[id], has[id] = a, b, true
			return
		}
		if a < lo[id] {
			lo[id] = a
		}
		if b > hi[id] {
			hi[id] = b
		}
	}
	for i := len(p.D.Topo) - 1; i >= 0; i-- {
		v := p.D.Topo[i]
		for _, e := range p.D.Out[v.ID] {
			if !p.hot(e) {
				continue
			}
			var cur int64
			stopped := false
			for _, op := range p.Ops[e.ID] {
				switch op.Kind {
				case OpInc:
					cur += op.V
				case OpSet:
					stopped = true
				case OpCountR:
					add(v.ID, cur, cur)
				case OpCountRV:
					add(v.ID, cur+op.V, cur+op.V)
				case OpCountC:
					// Constant index: not register-based.
				}
				if stopped {
					break
				}
			}
			if !stopped && has[e.Dst.ID] {
				add(v.ID, cur+lo[e.Dst.ID], cur+hi[e.Dst.ID])
			}
		}
	}
	return lo, hi, has
}
