package instr

import (
	"errors"
	"fmt"

	"pathprof/internal/cfg"
	"pathprof/internal/flow"
	"pathprof/internal/pathnum"
	"pathprof/internal/placement"
	"pathprof/internal/telemetry"
)

// Build plans instrumentation for routine g under the given techniques
// and parameters. totalUnitFlow is the program-wide number of dynamic
// paths from the guiding profile, used by the global cold-edge
// criterion. The edge profile must already be applied to g's edges.
func Build(g *cfg.Graph, tech Techniques, par Params, totalUnitFlow int64) (*Plan, error) {
	d, err := cfg.BuildDAG(g)
	if err != nil {
		return nil, err
	}
	d.RefreshFreqs()
	p := &Plan{
		G: g, D: d, Tech: tech, Par: par,
		Cold:             make([]bool, len(d.Edges)),
		Disc:             make([]bool, len(d.Edges)),
		FinalGlobalRatio: par.GlobalColdRatio,
		Placement:        par.Placement,
	}

	// Min-cost edge-probe placement is planned for every routine,
	// instrumented or not: edge counting is orthogonal to the path
	// pipeline below, and skipped routines still need their edge
	// profiles recovered from sparse probes.
	if par.Placement == PlaceMinCost {
		spec, err := placement.Plan(g)
		if err != nil {
			return nil, err
		}
		p.Probes = spec
		p.emitf(telemetry.EvPlacement, nil, spec.DynamicProbeHits(g),
			"min-cost placement: %d probe(s) on %d edges", spec.NumProbes(), len(g.Edges))
	}

	// LC (Section 4.1): skip routines the edge profile already covers.
	if tech.LowCoverage {
		if cov := flow.Coverage(d, par.Metric); cov >= par.CoverageSkip {
			p.Reason = "low-coverage"
			p.emitf(telemetry.EvLCSkip, nil, flow.TotalFlow(d, par.Metric),
				"edge-profile coverage %.3f >= %.3f: routine not instrumented", cov, par.CoverageSkip)
			return p, nil
		}
	}

	// Cold-edge marking (Sections 3.2 and 4.2).
	if tech.ColdLocal {
		if tech.ColdOnlyToAvoidHash {
			// TPP: remove cold paths only when that turns a hash-table
			// routine into an array routine.
			if d.TotalPaths(nil, par.HashThreshold+1) > par.HashThreshold {
				marked := p.markLocalCold()
				if d.TotalPaths(p.excluded(), par.HashThreshold+1) > par.HashThreshold {
					p.Cold = make([]bool, len(d.Edges)) // still hashes: keep all paths
				} else {
					p.emitColdEdges(telemetry.EvColdLocal, marked, "local criterion (to avoid hashing)")
				}
			}
		} else {
			p.emitColdEdges(telemetry.EvColdLocal, p.markLocalCold(), "local criterion")
		}
	}
	if tech.GlobalCold {
		p.emitColdEdges(telemetry.EvColdGlobal,
			p.markGlobalCold(totalUnitFlow, par.GlobalColdRatio),
			"global criterion (ratio %.4g)", par.GlobalColdRatio)
	}

	// Obvious-loop disconnection (Section 3.2, after cold removal).
	if tech.ObviousPaths {
		p.disconnectObviousLoops()
	}

	order := pathnum.OrderBallLarus
	if tech.SmartNumber {
		order = pathnum.OrderByFreq
	}

	// Number paths; self-adjust the global criterion until the count
	// drops below the hashing threshold (Section 4.3).
	num, err := pathnum.Number(d, p.excluded(), order)
	for {
		tooMany := errors.Is(err, pathnum.ErrTooManyPaths)
		if err != nil && !tooMany {
			return nil, err
		}
		if !tooMany && num.N <= par.HashThreshold {
			break
		}
		if !tech.SelfAdjust || !tech.GlobalCold || p.SACIterations >= par.SelfAdjustMax {
			if tooMany {
				p.Reason = "too-many-paths"
				p.emitf(telemetry.EvSkip, nil, flow.TotalFlow(d, par.Metric),
					"too many paths after %d SAC iteration(s): routine not instrumented", p.SACIterations)
				return p, nil
			}
			break // hash it
		}
		p.SACIterations++
		p.FinalGlobalRatio *= par.SelfAdjustFactor
		newCold := p.markGlobalCold(totalUnitFlow, p.FinalGlobalRatio)
		if par.Trace != nil {
			var lost int64
			for _, e := range newCold {
				lost += e.Freq
			}
			p.emitf(telemetry.EvSACRound, nil, lost,
				"iteration %d: global ratio raised to %.4g, %d edge(s) newly cold",
				p.SACIterations, p.FinalGlobalRatio, len(newCold))
			p.emitColdEdges(telemetry.EvColdGlobal, newCold,
				"self-adjusted criterion (iteration %d)", p.SACIterations)
		}
		num, err = pathnum.Number(d, p.excluded(), order)
	}
	p.Num = num
	p.N = num.N

	if num.N == 0 {
		// Every path crosses a cold or disconnected edge; there is
		// nothing to count and poisoning protects nothing.
		p.Reason = "no-hot-paths"
		p.emitf(telemetry.EvSkip, nil, 0, "no hot paths survive cold removal")
		return p, nil
	}

	// All-obvious routines need no instrumentation: the edge profile
	// reproduces their path profile exactly (Section 3.2, Figure 4).
	if tech.ObviousPaths && num.AllObvious() {
		p.Reason = "all-obvious"
		p.attributeAllPaths()
		p.emitf(telemetry.EvObviousAttr, nil, flow.TotalFlow(d, par.Metric),
			"all-obvious routine: %d path(s) attributed from the edge profile", len(p.Attr))
		return p, nil
	}

	p.Hash = num.N > par.HashThreshold
	if p.Hash {
		p.emitf(telemetry.EvHashTable, nil, 0,
			"N=%d exceeds hash threshold %d: hash-table counters", num.N, par.HashThreshold)
	}
	if tech.SmartNumber && par.Trace != nil {
		var heavy *cfg.DAGEdge
		for _, e := range d.Edges {
			if heavy == nil || e.Freq > heavy.Freq {
				heavy = e
			}
		}
		p.emitf(telemetry.EvSPNOrder, heavy, heavy.Freq,
			"numbering ordered by measured edge frequency")
	}

	// Event counting (Section 3.1): move increments off the predicted
	// hot spanning tree. SPN (Section 4.5) predicts with the measured
	// profile; otherwise static heuristics.
	var w pathnum.Weights
	if tech.SmartNumber {
		w = pathnum.ProfileWeights(d)
	} else {
		w = pathnum.StaticWeights(d)
	}
	inc, chord := pathnum.EventCount(num, w)

	p.place(inc, chord)
	if tech.ObviousPaths {
		if err := p.removeObviousCounts(); err != nil {
			return nil, err
		}
	}
	p.poison()
	p.Instrumented = true
	return p, nil
}

// excluded returns the numbering exclusion set: cold plus disconnected
// edges.
func (p *Plan) excluded() []bool {
	ex := make([]bool, len(p.D.Edges))
	for i := range ex {
		ex[i] = p.Cold[i] || p.Disc[i]
	}
	return ex
}

// markLocalCold applies TPP's local criterion: an edge is cold when
// its frequency is below LocalColdRatio of its source's frequency.
// Blocks that never executed are skipped: the paths reaching them are
// already severed by the cold edges upstream. Returns the newly marked
// edges for decision tracing.
func (p *Plan) markLocalCold() []*cfg.DAGEdge {
	var marked []*cfg.DAGEdge
	for _, e := range p.D.Edges {
		src := p.D.NodeFreq(e.Src)
		if src <= 0 || p.Cold[e.ID] {
			continue
		}
		if float64(e.Freq) < p.Par.LocalColdRatio*float64(src) {
			p.Cold[e.ID] = true
			marked = append(marked, e)
		}
	}
	return marked
}

// markGlobalCold applies PPP's global criterion at the given ratio: an
// edge is cold when its frequency is below ratio * total program unit
// flow. Marking is monotone in ratio, so SAC re-marks on top; only the
// newly marked edges are returned, so each SAC round traces just its
// own damage.
func (p *Plan) markGlobalCold(totalUnitFlow int64, ratio float64) []*cfg.DAGEdge {
	if totalUnitFlow <= 0 {
		return nil
	}
	cut := ratio * float64(totalUnitFlow)
	var marked []*cfg.DAGEdge
	for _, e := range p.D.Edges {
		if p.Cold[e.ID] {
			continue
		}
		if float64(e.Freq) < cut {
			p.Cold[e.ID] = true
			marked = append(marked, e)
		}
	}
	return marked
}

// attributeAllPaths records every hot path of an all-obvious routine
// with its defining edge. The path count of an all-obvious routine is
// bounded by the edge count, so enumeration is cheap.
func (p *Plan) attributeAllPaths() {
	ex := p.excluded()
	paths := p.D.EnumeratePaths(ex, int(p.N)+1)
	for _, path := range paths {
		def := p.Num.DefiningEdge(path)
		if def == nil {
			// Cannot happen for all-obvious routines; guard anyway.
			continue
		}
		num, _ := p.Num.PathNumber(path)
		p.Attr = append(p.Attr, EdgeAttr{Num: num, Path: path, Edge: def})
	}
}

// removeObviousCounts drops constant counter updates: a count[c]++ on
// edge e means e has a unique hot prefix and suffix, i.e. it defines
// the single path numbered c, whose future frequency the edge profile
// already predicts as freq(e) (Section 4.4, Figure 5).
func (p *Plan) removeObviousCounts() error {
	for _, e := range p.D.Edges {
		ops := p.Ops[e.ID]
		if len(ops) != 1 || ops[0].Kind != OpCountC {
			continue
		}
		if p.Num.PathsThrough(e) != 1 {
			continue // defensive: only genuinely obvious paths
		}
		path, err := p.Num.Reconstruct(ops[0].V)
		if err != nil {
			return fmt.Errorf("instr: constant count %d not reconstructible in %s: %w",
				ops[0].V, p.G.Name, err)
		}
		p.Attr = append(p.Attr, EdgeAttr{Num: ops[0].V, Path: path, Edge: e})
		p.Ops[e.ID] = nil
		p.emitf(telemetry.EvObviousAttr, e, e.Freq,
			"obvious path %d: count dropped, attributed from the edge profile", ops[0].V)
	}
	return nil
}
