package instr_test

// Golden tests for the paper's worked examples: Figure 1 (the PP
// pipeline on a routine with a loop), Figure 3 (free poisoning of cold
// paths into [N, ...]), and Figure 4 (a routine whose paths are all
// obvious).

import (
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/instr"
)

// figure1Graph builds a routine in the spirit of Figure 1: a loop
// whose body branches, so the DAG (after breaking the back edge) has 8
// acyclic paths.
func figure1Graph() (*cfg.Graph, map[string]*cfg.Block) {
	g := cfg.New("fig1")
	bs := map[string]*cfg.Block{}
	for _, n := range []string{"entry", "h", "b1", "b2", "t", "exit"} {
		bs[n] = g.AddBlock(n)
	}
	g.Entry, g.Exit = bs["entry"], bs["exit"]
	conn := func(a, b string, f int64) {
		cfgtest.Connect(g, bs[a], bs[b]).Freq = f
	}
	conn("entry", "h", 100)
	conn("h", "b1", 700)
	conn("h", "b2", 300)
	conn("b1", "t", 700)
	conn("b2", "t", 300)
	conn("t", "h", 900) // back edge
	conn("t", "exit", 100)
	g.Calls = 100
	return g, bs
}

func TestFigure1PPPipeline(t *testing.T) {
	g, bs := figure1Graph()
	p := build(t, g, instr.PP(), 1000)
	if !p.Instrumented {
		t.Fatalf("PP must instrument: %s", p.Dump())
	}
	// Figure 1(c): N = 8 unique path numbers.
	if p.N != 8 {
		t.Fatalf("N = %d, want 8", p.N)
	}
	if p.Hash || p.TableSize != 8 {
		t.Errorf("hash=%v table=%d, want array of 8", p.Hash, p.TableSize)
	}
	checkPlan(t, p, "figure1")

	// Figure 1(g): converting back to a CFG moves dummy-edge
	// instrumentation to the back edge. The exit dummy must end in a
	// counter update (paths ending at the back edge are counted there)
	// and the entry dummy must re-initialize the register (paths
	// starting at the loop header).
	xd := p.D.ExitDummyFor(bs["t"])
	ed := p.D.EntryDummyFor(bs["h"])
	hasCount := false
	for _, op := range p.Ops[xd.ID] {
		if op.Kind == instr.OpCountR || op.Kind == instr.OpCountRV || op.Kind == instr.OpCountC {
			hasCount = true
		}
	}
	if !hasCount {
		t.Errorf("exit dummy carries no count: %s", p.Dump())
	}
	hasInit := false
	for _, op := range p.Ops[ed.ID] {
		if op.Kind == instr.OpSet {
			hasInit = true
		}
	}
	if !hasInit {
		t.Errorf("entry dummy carries no initialization: %s", p.Dump())
	}
}

// figure3Graph builds the Figure 3 shape: two diamonds in sequence,
// A -> {B, C} -> D -> {E, F} -> G, with A->B cold. 4 paths originally;
// 2 hot after removal.
func figure3Graph() (*cfg.Graph, map[string]*cfg.Block) {
	g := cfg.New("fig3")
	bs := map[string]*cfg.Block{}
	for _, n := range []string{"entry", "A", "B", "C", "D", "E", "F", "G", "exit"} {
		bs[n] = g.AddBlock(n)
	}
	g.Entry, g.Exit = bs["entry"], bs["exit"]
	conn := func(a, b string, f int64) {
		cfgtest.Connect(g, bs[a], bs[b]).Freq = f
	}
	conn("entry", "A", 1000)
	conn("A", "B", 10) // cold: 1% of A
	conn("A", "C", 990)
	conn("B", "D", 10)
	conn("C", "D", 990)
	conn("D", "E", 500)
	conn("D", "F", 500)
	conn("E", "G", 500)
	conn("F", "G", 500)
	conn("G", "exit", 1000)
	g.Calls = 1000
	return g, bs
}

// TestFigure3FreePoisoning mirrors Figure 3(e): after removing a cold
// edge, the remaining hot paths get [0, N) and the cold edge assigns
// the register so every cold continuation lands in [N, tableSize).
func TestFigure3FreePoisoning(t *testing.T) {
	g, bs := figure3Graph()
	tech := instr.Techniques{ColdLocal: true, FreePoison: true}
	p := build(t, g, tech, 1000)
	if !p.Instrumented {
		t.Fatalf("not instrumented: %s", p.Dump())
	}
	if p.N != 2 {
		t.Fatalf("N = %d, want 2 hot paths", p.N)
	}
	ab := p.D.Real(bs["A"], bs["B"])
	if !p.Cold[ab.ID] {
		t.Fatalf("A->B not cold: %s", p.Dump())
	}
	// The cold edge must carry exactly one poisoning assignment with a
	// value >= N.
	ops := p.Ops[ab.ID]
	if len(ops) != 1 || ops[0].Kind != instr.OpSet || ops[0].V < p.N {
		t.Fatalf("cold edge ops = %v, want r=<poison >= %d>", ops, p.N)
	}
	if p.PoisonCheck {
		t.Error("free poisoning must not use checks")
	}
	// Every execution through the cold edge must count in [N, table).
	excl := make([]bool, len(p.D.Edges))
	for _, path := range p.D.EnumeratePaths(excl, -1) {
		usesCold := false
		for _, e := range path {
			if p.Cold[e.ID] {
				usesCold = true
			}
		}
		events := simulate(p, path)
		if len(events) != 1 {
			t.Fatalf("path %s fired %d counts", path, len(events))
		}
		idx := events[0].index
		if usesCold {
			if idx < p.N || idx >= p.TableSize {
				t.Errorf("cold path %s counted at %d, want [%d,%d)", path, idx, p.N, p.TableSize)
			}
		} else {
			if idx < 0 || idx >= p.N {
				t.Errorf("hot path %s counted at %d, want [0,%d)", path, idx, p.N)
			}
		}
	}
	// The paper's bound: the table never exceeds 3N.
	if p.TableSize > 3*p.N {
		t.Errorf("table %d exceeds 3N = %d", p.TableSize, 3*p.N)
	}
}

// figure4Graph builds the Figure 4 shape: an else-if ladder,
// a -> {b, a2}; a2 -> {c, d}; b, c, d -> join. Each of the three paths
// owns its arm edge, so all are obvious.
func figure4Graph() (*cfg.Graph, map[string]*cfg.Block) {
	g := cfg.New("fig4")
	bs := map[string]*cfg.Block{}
	for _, n := range []string{"entry", "a", "b", "a2", "c", "d", "join", "exit"} {
		bs[n] = g.AddBlock(n)
	}
	g.Entry, g.Exit = bs["entry"], bs["exit"]
	conn := func(a, b string, f int64) {
		cfgtest.Connect(g, bs[a], bs[b]).Freq = f
	}
	conn("entry", "a", 100)
	conn("a", "b", 60)
	conn("a", "a2", 40)
	conn("b", "join", 60)
	conn("a2", "c", 30)
	conn("a2", "d", 10)
	conn("c", "join", 30)
	conn("d", "join", 10)
	conn("join", "exit", 100)
	g.Calls = 100
	return g, bs
}

// TestFigure4AllObvious mirrors Figure 4: every path has a defining
// edge, so TPP and PPP leave the routine uninstrumented and attribute
// each path to its defining edge.
func TestFigure4AllObvious(t *testing.T) {
	g, _ := figure4Graph()
	for _, tc := range []struct {
		name string
		tech instr.Techniques
	}{{"TPP", instr.TPP()}, {"PPP", func() instr.Techniques {
		x := instr.PPP()
		x.LowCoverage = false // let the obvious check decide, not LC
		return x
	}()}} {
		p := build(t, g, tc.tech, 100)
		if p.Instrumented || p.Reason != "all-obvious" {
			t.Errorf("%s: want all-obvious skip, got %s", tc.name, p.Dump())
			continue
		}
		if len(p.Attr) != 3 {
			t.Errorf("%s: attributed %d paths, want 3", tc.name, len(p.Attr))
		}
		for _, a := range p.Attr {
			if p.Num.PathsThrough(a.Edge) != 1 {
				t.Errorf("%s: attribution edge %s is not defining", tc.name, a.Edge)
			}
		}
	}

	// PP still instruments it (PP ignores obviousness).
	p := build(t, g, instr.PP(), 100)
	if !p.Instrumented {
		t.Error("PP must instrument the all-obvious routine")
	}
	checkPlan(t, p, "fig4-pp")
}
