package instr_test

// Golden-file tests pinning the planner's decision trace for the
// paper's worked examples: the JSONL export must be byte-stable run to
// run, and drift only with an intentional planner or event-format
// change. Regenerate with
//
//	go test ./internal/instr -run TestTraceGolden -update

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/instr"
	"pathprof/internal/telemetry"
)

func TestTraceGolden(t *testing.T) {
	cases := []struct {
		name  string
		graph func() (*cfg.Graph, map[string]*cfg.Block)
		tech  instr.Techniques
		total int64
	}{
		{"figure1-pp", figure1Graph, instr.PP(), 1000},
		{"figure1-ppp", figure1Graph, func() instr.Techniques {
			x := instr.PPP()
			x.LowCoverage = false
			return x
		}(), 1000},
		{"figure3-fp", figure3Graph, instr.Techniques{ColdLocal: true, FreePoison: true}, 1000},
		{"figure4-tpp", figure4Graph, instr.TPP(), 100},
		{"figure4-ppp", figure4Graph, instr.PPP(), 100},
	}
	jsonl := func(tb testing.TB, tc int) []byte {
		tb.Helper()
		c := cases[tc]
		g, _ := c.graph()
		par := instr.DefaultParams()
		par.Trace = telemetry.NewTrace(0)
		par.Unit = "golden/" + c.name
		if _, err := instr.Build(g, c.tech, par, c.total); err != nil {
			tb.Fatalf("Build: %v", err)
		}
		var buf bytes.Buffer
		if err := par.Trace.WriteJSONL(&buf); err != nil {
			tb.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes()
	}
	for i, tc := range cases {
		i, tc := i, tc
		t.Run(tc.name, func(t *testing.T) {
			got := jsonl(t, i)
			if again := jsonl(t, i); !bytes.Equal(got, again) {
				t.Error("two identical builds exported different traces")
			}
			path := filepath.Join("testdata", "trace-"+tc.name+".jsonl")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatalf("update: %v", err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("decision trace drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
