// Package ir defines the low-level intermediate representation that the
// mini-C front end (package lang / lower) compiles to and that the VM
// (package vm) executes. Routines are control-flow graphs of basic
// blocks holding simple three-address instructions over int64 virtual
// registers, with global scalars and fixed-size global arrays.
//
// The IR plays the role of Scale's low-level internal representation in
// the paper: path lengths are measured in IR statements, the inliner's
// size budgets are in IR statements, and the VM's cost model charges
// per executed IR instruction.
package ir

import (
	"fmt"
	"strings"

	"pathprof/internal/cfg"
)

// Opcode enumerates IR instructions.
type Opcode int

const (
	Const  Opcode = iota // Dst = Imm
	Mov                  // Dst = A
	Add                  // Dst = A + B
	Sub                  // Dst = A - B
	Mul                  // Dst = A * B
	Div                  // Dst = A / B (x/0 = 0 by definition)
	Mod                  // Dst = A % B (x%0 = 0 by definition)
	Neg                  // Dst = -A
	Not                  // Dst = (A == 0)
	Eq                   // Dst = (A == B)
	Ne                   // Dst = (A != B)
	Lt                   // Dst = (A < B)
	Le                   // Dst = (A <= B)
	Gt                   // Dst = (A > B)
	Ge                   // Dst = (A >= B)
	BAnd                 // Dst = A & B
	BOr                  // Dst = A | B
	BXor                 // Dst = A ^ B
	Shl                  // Dst = A << (B & 63)
	Shr                  // Dst = A >> (B & 63) (arithmetic)
	LoadG                // Dst = globals[Sym]
	StoreG               // globals[Sym] = A
	LoadA                // Dst = arrays[Sym][A] (index mod size)
	StoreA               // arrays[Sym][A] = B
	Call                 // Dst = call funcs[Sym](Args...)
	Print                // print A
)

var opNames = [...]string{
	Const: "const", Mov: "mov", Add: "add", Sub: "sub", Mul: "mul",
	Div: "div", Mod: "mod", Neg: "neg", Not: "not", Eq: "eq", Ne: "ne",
	Lt: "lt", Le: "le", Gt: "gt", Ge: "ge", BAnd: "and", BOr: "or",
	BXor: "xor", Shl: "shl", Shr: "shr", LoadG: "loadg", StoreG: "storeg",
	LoadA: "loada", StoreA: "storea", Call: "call", Print: "print",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// Instr is one IR instruction. Register operands are indices into the
// frame's register file; Sym indexes globals, arrays, or functions
// depending on the opcode.
type Instr struct {
	Op   Opcode
	Dst  int
	A, B int
	Imm  int64
	Sym  int
	Args []int
}

func (in Instr) String() string {
	switch in.Op {
	case Const:
		return fmt.Sprintf("r%d = %d", in.Dst, in.Imm)
	case Call:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		return fmt.Sprintf("r%d = call f%d(%s)", in.Dst, in.Sym, strings.Join(args, ", "))
	case LoadG:
		return fmt.Sprintf("r%d = g%d", in.Dst, in.Sym)
	case StoreG:
		return fmt.Sprintf("g%d = r%d", in.Sym, in.A)
	case LoadA:
		return fmt.Sprintf("r%d = a%d[r%d]", in.Dst, in.Sym, in.A)
	case StoreA:
		return fmt.Sprintf("a%d[r%d] = r%d", in.Sym, in.A, in.B)
	case Print:
		return fmt.Sprintf("print r%d", in.A)
	case Mov:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.A)
	case Neg, Not:
		return fmt.Sprintf("r%d = %s r%d", in.Dst, in.Op, in.A)
	default:
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Op, in.A, in.B)
	}
}

// TermKind enumerates block terminators.
type TermKind int

const (
	// Jump transfers to block To.
	Jump TermKind = iota
	// Branch transfers to To if register Cond is nonzero, else to Else.
	Branch
	// Ret returns register Ret (or 0 if Ret < 0) to the caller.
	Ret
)

// Term is a block terminator.
type Term struct {
	Kind TermKind
	Cond int
	To   int
	Else int
	Ret  int
}

func (t Term) String() string {
	switch t.Kind {
	case Jump:
		return fmt.Sprintf("jump b%d", t.To)
	case Branch:
		return fmt.Sprintf("branch r%d ? b%d : b%d", t.Cond, t.To, t.Else)
	case Ret:
		if t.Ret < 0 {
			return "ret"
		}
		return fmt.Sprintf("ret r%d", t.Ret)
	}
	return "?"
}

// Block is a basic block.
type Block struct {
	Index  int
	Name   string
	Instrs []Instr
	Term   Term
}

// LoopInfo records a syntactic loop from the front end, keyed by a
// stable ID ("func#ordinal") so profile-guided unrolling can target it
// across recompilations.
type LoopInfo struct {
	ID     string
	Header int    // header block index
	Kind   string // "for" or "while"
}

// Func is one routine.
type Func struct {
	Name    string
	NParams int
	NRegs   int
	Blocks  []*Block
	Entry   int
	Exit    int
	Loops   []LoopInfo
}

// NewBlock appends an empty block and returns it.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Index: len(f.Blocks), Name: name}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Size returns the number of IR statements in the routine (instructions
// plus terminators), the unit of the paper's inlining and unrolling
// budgets.
func (f *Func) Size() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs) + 1
	}
	return n
}

// CFG derives the control-flow graph of the routine. Block indices are
// preserved as cfg block IDs; block instruction counts include the
// terminator. A malformed routine (a branch whose arms coincide, which
// would create a parallel edge) is reported as an error rather than a
// panic, so hostile input degrades into a diagnostic.
func (f *Func) CFG() (*cfg.Graph, error) {
	g := cfg.New(f.Name)
	for _, b := range f.Blocks {
		name := b.Name
		if name == "" {
			name = fmt.Sprintf("b%d", b.Index)
		}
		nb := g.AddBlock(name)
		nb.Instrs = len(b.Instrs) + 1
	}
	for _, b := range f.Blocks {
		var err error
		switch b.Term.Kind {
		case Jump:
			_, err = g.Connect(g.Blocks[b.Index], g.Blocks[b.Term.To])
		case Branch:
			if _, err = g.Connect(g.Blocks[b.Index], g.Blocks[b.Term.To]); err == nil {
				_, err = g.Connect(g.Blocks[b.Index], g.Blocks[b.Term.Else])
			}
		}
		if err != nil {
			return nil, fmt.Errorf("ir %s b%d: %w", f.Name, b.Index, err)
		}
	}
	g.Entry = g.Blocks[f.Entry]
	g.Exit = g.Blocks[f.Exit]
	return g, nil
}

// Dump renders the routine as text.
func (f *Func) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d regs=%d entry=b%d exit=b%d)\n",
		f.Name, f.NParams, f.NRegs, f.Entry, f.Exit)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d", b.Index)
		if b.Name != "" {
			fmt.Fprintf(&sb, " (%s)", b.Name)
		}
		sb.WriteString(":\n")
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
		fmt.Fprintf(&sb, "  %s\n", b.Term)
	}
	return sb.String()
}

// Array is a global array declaration.
type Array struct {
	Name string
	Size int64
}

// Program is a compiled program.
type Program struct {
	Funcs       []*Func
	FuncIndex   map[string]int
	Globals     []string
	GlobalInit  []int64
	GlobalIndex map[string]int
	Arrays      []Array
	ArrayIndex  map[string]int
}

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *Func {
	i, ok := p.FuncIndex[name]
	if !ok {
		return nil
	}
	return p.Funcs[i]
}

// Size returns the total IR statement count of the program.
func (p *Program) Size() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.Size()
	}
	return n
}

// Dump renders the whole program.
func (p *Program) Dump() string {
	var sb strings.Builder
	for i, g := range p.Globals {
		fmt.Fprintf(&sb, "var %s = %d ; g%d\n", g, p.GlobalInit[i], i)
	}
	for i, a := range p.Arrays {
		fmt.Fprintf(&sb, "array %s[%d] ; a%d\n", a.Name, a.Size, i)
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.Dump())
	}
	return sb.String()
}

// Validate checks structural invariants of every routine: terminator
// targets in range, entry/exit designated, a Ret only on the exit
// block, and the derived CFG valid and reducible.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			t := b.Term
			check := func(idx int) error {
				if idx < 0 || idx >= len(f.Blocks) {
					return fmt.Errorf("ir %s b%d: target %d out of range", f.Name, b.Index, idx)
				}
				return nil
			}
			switch t.Kind {
			case Jump:
				if err := check(t.To); err != nil {
					return err
				}
			case Branch:
				if err := check(t.To); err != nil {
					return err
				}
				if err := check(t.Else); err != nil {
					return err
				}
				if t.To == t.Else {
					return fmt.Errorf("ir %s b%d: branch with equal targets", f.Name, b.Index)
				}
			case Ret:
				if b.Index != f.Exit {
					return fmt.Errorf("ir %s b%d: ret outside exit block", f.Name, b.Index)
				}
			}
		}
		if f.Blocks[f.Exit].Term.Kind != Ret {
			return fmt.Errorf("ir %s: exit block does not ret", f.Name)
		}
		g, err := f.CFG()
		if err != nil {
			return err
		}
		if err := g.Validate(); err != nil {
			return err
		}
		if err := g.CheckReducible(); err != nil {
			return err
		}
	}
	return nil
}
