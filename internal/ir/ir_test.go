package ir_test

import (
	"strings"
	"testing"

	"pathprof/internal/ir"
)

// buildDiamond constructs a minimal valid routine:
// entry -> a; a -> b|c; b,c -> exit-bound join; join is exit.
func buildDiamond() *ir.Func {
	f := &ir.Func{Name: "f", NRegs: 4}
	entry := f.NewBlock("entry")
	exit := f.NewBlock("exit")
	a := f.NewBlock("a")
	b := f.NewBlock("b")
	c := f.NewBlock("c")
	f.Entry, f.Exit = entry.Index, exit.Index

	entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.Const, Dst: 0, Imm: 7})
	entry.Term = ir.Term{Kind: ir.Jump, To: a.Index}
	a.Instrs = append(a.Instrs, ir.Instr{Op: ir.Const, Dst: 1, Imm: 1})
	a.Term = ir.Term{Kind: ir.Branch, Cond: 1, To: b.Index, Else: c.Index}
	b.Instrs = append(b.Instrs, ir.Instr{Op: ir.Add, Dst: 2, A: 0, B: 1})
	b.Term = ir.Term{Kind: ir.Jump, To: exit.Index}
	c.Instrs = append(c.Instrs, ir.Instr{Op: ir.Sub, Dst: 2, A: 0, B: 1})
	c.Term = ir.Term{Kind: ir.Jump, To: exit.Index}
	exit.Term = ir.Term{Kind: ir.Ret, Ret: 2}
	return f
}

func wrap(f *ir.Func) *ir.Program {
	return &ir.Program{
		Funcs:       []*ir.Func{f},
		FuncIndex:   map[string]int{f.Name: 0},
		GlobalIndex: map[string]int{},
		ArrayIndex:  map[string]int{},
	}
}

func TestFuncSizeAndCFG(t *testing.T) {
	f := buildDiamond()
	// 4 instructions + 5 terminators.
	if got := f.Size(); got != 9 {
		t.Errorf("Size = %d, want 9", got)
	}
	g, err := f.CFG()
	if err != nil {
		t.Fatalf("CFG: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("CFG invalid: %v", err)
	}
	if len(g.Edges) != 5 {
		t.Errorf("edges = %d, want 5", len(g.Edges))
	}
	if g.Entry.ID != f.Entry || g.Exit.ID != f.Exit {
		t.Error("entry/exit not preserved")
	}
	// Block instruction counts include the terminator.
	if g.Blocks[f.Entry].Instrs != 2 {
		t.Errorf("entry weight = %d, want 2", g.Blocks[f.Entry].Instrs)
	}
}

func TestValidateCatchesBadTerms(t *testing.T) {
	f := buildDiamond()
	p := wrap(f)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	// Out-of-range target.
	f.Blocks[2].Term = ir.Term{Kind: ir.Jump, To: 99}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("want out-of-range error, got %v", err)
	}

	// Branch with equal targets.
	f = buildDiamond()
	f.Blocks[2].Term = ir.Term{Kind: ir.Branch, Cond: 0, To: 3, Else: 3}
	if err := wrap(f).Validate(); err == nil || !strings.Contains(err.Error(), "equal targets") {
		t.Errorf("want equal-targets error, got %v", err)
	}

	// Ret outside the exit block.
	f = buildDiamond()
	f.Blocks[3].Term = ir.Term{Kind: ir.Ret, Ret: 0}
	if err := wrap(f).Validate(); err == nil || !strings.Contains(err.Error(), "ret outside exit") {
		t.Errorf("want ret-outside-exit error, got %v", err)
	}

	// Exit block must ret.
	f = buildDiamond()
	f.Blocks[1].Term = ir.Term{Kind: ir.Jump, To: 1}
	if err := wrap(f).Validate(); err == nil {
		t.Error("exit without ret accepted")
	}
}

func TestDumpRendersEveryOpcode(t *testing.T) {
	ops := []ir.Instr{
		{Op: ir.Const, Dst: 0, Imm: 42},
		{Op: ir.Mov, Dst: 1, A: 0},
		{Op: ir.Add, Dst: 2, A: 0, B: 1},
		{Op: ir.Neg, Dst: 3, A: 2},
		{Op: ir.Not, Dst: 3, A: 2},
		{Op: ir.LoadG, Dst: 1, Sym: 0},
		{Op: ir.StoreG, Sym: 0, A: 1},
		{Op: ir.LoadA, Dst: 1, Sym: 0, A: 2},
		{Op: ir.StoreA, Sym: 0, A: 2, B: 1},
		{Op: ir.Call, Dst: 1, Sym: 0, Args: []int{0, 2}},
		{Op: ir.Print, A: 1},
	}
	for _, in := range ops {
		if s := in.String(); s == "" || strings.Contains(s, "?") {
			t.Errorf("bad render for %v: %q", in.Op, s)
		}
	}
	if ir.Opcode(99).String() != "op99" {
		t.Error("unknown opcode rendering")
	}
	terms := []ir.Term{
		{Kind: ir.Jump, To: 3},
		{Kind: ir.Branch, Cond: 1, To: 2, Else: 4},
		{Kind: ir.Ret, Ret: -1},
		{Kind: ir.Ret, Ret: 2},
	}
	for _, tm := range terms {
		if s := tm.String(); s == "" || s == "?" {
			t.Errorf("bad term render: %q", s)
		}
	}
}

func TestProgramLookupAndDump(t *testing.T) {
	f := buildDiamond()
	p := wrap(f)
	p.Globals = []string{"g"}
	p.GlobalInit = []int64{5}
	p.GlobalIndex["g"] = 0
	p.Arrays = []ir.Array{{Name: "arr", Size: 8}}
	p.ArrayIndex["arr"] = 0

	if p.Func("f") != f {
		t.Error("Func lookup failed")
	}
	if p.Func("missing") != nil {
		t.Error("missing function lookup returned non-nil")
	}
	if p.Size() != f.Size() {
		t.Error("program size mismatch")
	}
	dump := p.Dump()
	for _, want := range []string{"var g = 5", "array arr[8]", "func f", "branch r1 ? b3 : b4", "ret r2"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}
