package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pathprof/internal/cfg"
	"pathprof/internal/profile"
	"pathprof/internal/serve"
	"pathprof/internal/snapshot"
	"pathprof/internal/telemetry"
)

// wirePath builds a placeholder path the way snapshot.Decode does:
// edges carrying only IDs.
func wirePath(ids ...int) cfg.Path {
	p := make(cfg.Path, len(ids))
	for i, id := range ids {
		p[i] = &cfg.DAGEdge{ID: id}
	}
	return p
}

// testSnap builds a small distinct snapshot per (emitter, n): edge
// counts and path counts vary, so every snapshot folds to a distinct
// fingerprint and merge order mistakes are visible.
func testSnap(emitter, n int) *profile.Snapshot {
	s := profile.NewSnapshot()
	ep := profile.NewEdgeProfile("work")
	ep.Add(1, 2, int64(10*emitter+n+1))
	ep.Add(2, 3, int64(n+1))
	ep.Calls = int64(emitter + 1)
	s.Edges["work"] = ep
	pp := profile.NewPathProfile("work")
	pp.Add(wirePath(1, 2), int64(emitter*7+n+1))
	pp.Add(wirePath(1, 3), int64(n+2))
	s.Paths["work"] = pp
	return s
}

func encodeSnap(emitter, n int) []byte { return snapshot.Encode(testSnap(emitter, n)) }

func newServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = serve.NewMemStore()
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func TestIngestAckIsDurable(t *testing.T) {
	store := serve.NewMemStore()
	s := newServer(t, serve.Config{Store: store})
	s.Start()

	snap := testSnap(0, 0)
	ack, code, err := s.Ingest(context.Background(), "app", "k1", snap)
	if err != nil {
		t.Fatalf("ingest: %v (code %d)", err, code)
	}
	if ack.Seq != 1 || ack.Deduped {
		t.Fatalf("ack = %+v, want seq 1, not deduped", ack)
	}

	// The ack promises durability: the store must already hold an
	// aggregate equal to the folded snapshot.
	data, err := store.Load("app")
	if err != nil {
		t.Fatalf("store has nothing despite ack: %v", err)
	}
	durable, err := snapshot.Decode(data)
	if err != nil {
		t.Fatalf("durable bytes corrupt: %v", err)
	}
	want := profile.NewSnapshot()
	want.MergeSnapshot(testSnap(0, 0))
	if durable.Fingerprint() != want.Fingerprint() {
		t.Errorf("durable fingerprint %016x != folded %016x", durable.Fingerprint(), want.Fingerprint())
	}
	if ack.Fingerprint != fmt.Sprintf("%016x", want.Fingerprint()) {
		t.Errorf("ack fingerprint %s != %016x", ack.Fingerprint, want.Fingerprint())
	}
}

func TestIngestDeduplicates(t *testing.T) {
	store := serve.NewMemStore()
	s := newServer(t, serve.Config{Store: store})
	s.Start()

	ctx := context.Background()
	first, _, err := s.Ingest(ctx, "app", "dup", testSnap(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := s.Ingest(ctx, "app", "dup", testSnap(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.Seq != first.Seq {
		t.Fatalf("retry ack = %+v, want deduped with seq %d", again, first.Seq)
	}
	if got := s.CommitLog("app"); len(got) != 1 {
		t.Fatalf("commit log has %d entries after a dedup, want 1: %+v", len(got), got)
	}
	// The aggregate folded the snapshot exactly once.
	want := profile.NewSnapshot()
	want.MergeSnapshot(testSnap(1, 1))
	if got := s.Aggregate("app"); got.Fingerprint() != want.Fingerprint() {
		t.Error("dedup double-counted the snapshot")
	}
}

func TestBackpressure429AndBoundedQueue(t *testing.T) {
	// Committer not started: the queue can only fill, never drain.
	s := newServer(t, serve.Config{QueueDepth: 4, RequestTimeout: 50 * time.Millisecond})

	var wg sync.WaitGroup
	codes := make(chan int, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, code, err := s.Ingest(context.Background(), "app", fmt.Sprintf("k%d", i), testSnap(i, 0))
			if err != nil {
				codes <- code
			}
		}(i)
	}
	wg.Wait()
	close(codes)

	var got429, got503 int
	for code := range codes {
		switch code {
		case 429:
			got429++
		case 503:
			got503++
		default:
			t.Errorf("unexpected code %d", code)
		}
	}
	// 4 fit in the queue (503 on commit-wait timeout), 12 bounce with
	// backpressure; the queue never grew past its bound.
	if got429 != 12 || got503 != 4 {
		t.Errorf("got %d x 429 and %d x 503, want 12 and 4", got429, got503)
	}
	if n := s.QueueLen(); n != 4 {
		t.Errorf("queue len %d, want the hard bound 4", n)
	}
}

// flakyStore fails its first n saves, then heals.
type flakyStore struct {
	serve.Store
	mu       sync.Mutex
	failures int
}

func (f *flakyStore) Save(tenant string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failures > 0 {
		f.failures--
		return fmt.Errorf("flaky: injected save failure")
	}
	return f.Store.Save(tenant, data)
}

func TestSaveFailureNacksWholeBatch(t *testing.T) {
	inner := serve.NewMemStore()
	store := &flakyStore{Store: inner, failures: 1}
	reg := telemetry.NewRegistry(1)
	s := newServer(t, serve.Config{Store: store, Registry: reg})
	s.Start()

	ctx := context.Background()
	_, code, err := s.Ingest(ctx, "app", "k1", testSnap(0, 0))
	if err == nil || code != 503 {
		t.Fatalf("ingest over failing store: code %d, err %v; want 503", code, err)
	}
	// Nothing acked, nothing durable, nothing half-merged in memory.
	if _, lerr := inner.Load("app"); lerr == nil {
		t.Error("store holds data for a nacked batch")
	}
	if got := s.CommitLog("app"); len(got) != 0 {
		t.Errorf("commit log %+v after a nack, want empty", got)
	}

	// The retry lands once the store heals, with seq 1 (nothing was
	// consumed by the failure).
	ack, _, err := s.Ingest(ctx, "app", "k1", testSnap(0, 0))
	if err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
	if ack.Seq != 1 || ack.Deduped {
		t.Fatalf("retry ack = %+v, want fresh seq 1", ack)
	}
	if v := reg.Counter("ppp_serve_store_save_errors_total", "").Value(); v != 1 {
		t.Errorf("save error counter = %d, want 1", v)
	}
}

func TestShutdownDrainsQueue(t *testing.T) {
	store := serve.NewMemStore()
	s := newServer(t, serve.Config{Store: store, QueueDepth: 64})
	s.Start()

	// Concurrent emitters; shutdown must commit everything acked and
	// everything queued.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				_, _, err := s.Ingest(context.Background(), "app", fmt.Sprintf("e%d-s%d", i, j), testSnap(i, j))
				if err != nil {
					t.Errorf("ingest e%d-s%d: %v", i, j, err)
				}
			}
		}(i)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	log := s.CommitLog("app")
	if len(log) != 32 {
		t.Fatalf("commit log has %d entries, want 32", len(log))
	}
	// The durable aggregate equals the fold of the log in commit order.
	want := profile.NewSnapshot()
	for _, e := range log {
		var emitter, n int
		if _, err := fmt.Sscanf(e.Key, "e%d-s%d", &emitter, &n); err != nil {
			t.Fatalf("unexpected key %q", e.Key)
		}
		want.MergeSnapshot(testSnap(emitter, n))
	}
	data, err := store.Load("app")
	if err != nil {
		t.Fatal(err)
	}
	durable, err := snapshot.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if durable.Fingerprint() != want.Fingerprint() {
		t.Errorf("durable %016x != log fold %016x", durable.Fingerprint(), want.Fingerprint())
	}

	// Draining refuses new ingest.
	if _, code, err := s.Ingest(context.Background(), "app", "late", testSnap(9, 9)); err == nil || code != 503 {
		t.Errorf("ingest while draining: code %d err %v, want 503", code, err)
	}
}

func TestHTTPIngestAndReads(t *testing.T) {
	reg := telemetry.NewRegistry(1)
	s := newServer(t, serve.Config{Registry: reg})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	client := &serve.Client{BaseURL: ts.URL}
	data := encodeSnap(2, 3)
	res, err := client.Publish(context.Background(), "app", "web-1", data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ack.Seq != 1 || res.Attempts != 1 {
		t.Fatalf("publish result = %+v", res)
	}

	// GET the merged aggregate: decodes, and matches the fold.
	got, fp, err := client.Fetch(context.Background(), "app")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := snapshot.Decode(got)
	if err != nil {
		t.Fatalf("served aggregate corrupt: %v", err)
	}
	want := profile.NewSnapshot()
	want.MergeSnapshot(testSnap(2, 3))
	if agg.Fingerprint() != want.Fingerprint() || fp != fmt.Sprintf("%016x", want.Fingerprint()) {
		t.Errorf("served %016x (header %s), want %016x", agg.Fingerprint(), fp, want.Fingerprint())
	}

	// Info, log, tenants, hot, healthz.
	resp, err := http.Get(ts.URL + "/v1/profiles/app/info")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != 200 || !strings.Contains(body, `"acked": 1`) {
		t.Errorf("info: %d %s", resp.StatusCode, body)
	}
	if log, err := client.FetchLog(context.Background(), "app"); err != nil || len(log) != 1 || log[0].Key != "web-1" {
		t.Errorf("log = %+v, %v", log, err)
	}
	resp, err = http.Get(ts.URL + "/v1/hot/app")
	if err != nil {
		t.Fatal(err)
	}
	if body = readBody(t, resp); resp.StatusCode != 200 || !strings.Contains(body, `"func": "work"`) {
		t.Errorf("hot: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	if body = readBody(t, resp); !strings.Contains(body, `"app"`) {
		t.Errorf("tenants: %s", body)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body = readBody(t, resp); resp.StatusCode != 200 || !strings.Contains(body, `"ok"`) {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	// The telemetry surface rides along and stays well-formed.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidatePrometheus(strings.NewReader(readBody(t, resp))); err != nil {
		t.Errorf("metrics exposition: %v", err)
	}
}

func TestHTTPQuarantineAndLimits(t *testing.T) {
	reg := telemetry.NewRegistry(1)
	s := newServer(t, serve.Config{Registry: reg, MaxSnapshotBytes: 256})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Corrupt bytes: 400, quarantined, never merged.
	resp, err := http.Post(ts.URL+"/v1/profiles/app", "application/octet-stream",
		strings.NewReader("not a snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	if readBody(t, resp); resp.StatusCode != 400 {
		t.Errorf("corrupt snapshot: status %d, want 400", resp.StatusCode)
	}

	// Oversized body: 413, quarantined.
	resp, err = http.Post(ts.URL+"/v1/profiles/app", "application/octet-stream",
		bytes.NewReader(make([]byte, 1024)))
	if err != nil {
		t.Fatal(err)
	}
	if readBody(t, resp); resp.StatusCode != 413 {
		t.Errorf("oversized snapshot: status %d, want 413", resp.StatusCode)
	}

	// Invalid tenant name: rejected before any state exists.
	resp, err = http.Post(ts.URL+"/v1/profiles/bad..name", "application/octet-stream",
		bytes.NewReader(encodeSnap(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if readBody(t, resp); resp.StatusCode != 400 {
		t.Errorf("invalid tenant: status %d, want 400", resp.StatusCode)
	}

	if v := reg.Counter("ppp_serve_ingest_quarantined_total", "").Value(); v != 2 {
		t.Errorf("quarantine counter = %d, want 2", v)
	}
	if s.Aggregate("app") != nil {
		t.Error("quarantined bytes reached an aggregate")
	}
}

func TestReadsShedUnderOverload(t *testing.T) {
	// Committer not started; fill the queue past the shed threshold.
	reg := telemetry.NewRegistry(1)
	s := newServer(t, serve.Config{Registry: reg, QueueDepth: 4, ShedThreshold: 0.5,
		RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _ = s.Ingest(context.Background(), "app", fmt.Sprintf("k%d", i), testSnap(i, 0))
		}(i)
	}
	wg.Wait() // all four timed out waiting, queue still holds them

	resp, err := http.Get(ts.URL + "/v1/profiles/app/info")
	if err != nil {
		t.Fatal(err)
	}
	if readBody(t, resp); resp.StatusCode != 503 {
		t.Errorf("read under overload: status %d, want 503 shed", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if v := reg.Counter("ppp_serve_shed_total", "").Value(); v < 1 {
		t.Errorf("shed counter = %d, want >= 1", v)
	}
	// Ingest still answers (with backpressure), ahead of reads.
	if _, code, err := s.Ingest(context.Background(), "app", "k9", testSnap(9, 0)); err == nil || code != 429 {
		t.Errorf("ingest over full queue: code %d err %v, want 429", code, err)
	}
}

func TestRestartServesRecoveredAggregate(t *testing.T) {
	dir := t.TempDir()
	store, err := serve.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(t, serve.Config{Store: store})
	s.Start()
	ack, _, err := s.Ingest(context.Background(), "app", "k1", testSnap(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A new process over the same directory serves the acked aggregate
	// without waiting for fresh ingest.
	store2, err := serve.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newServer(t, serve.Config{Store: store2})
	data, fp := s2.AggregateBytes("app")
	if data == nil || fp != ack.Fingerprint {
		t.Fatalf("restart: aggregate fp %q, want %q", fp, ack.Fingerprint)
	}
	info, ok := s2.Info("app")
	if !ok || info.Fingerprint != ack.Fingerprint {
		t.Errorf("restart info = %+v (ok=%v)", info, ok)
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
