package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pathprof/internal/faultinject"
	"pathprof/internal/profile"
	"pathprof/internal/serve"
	"pathprof/internal/snapshot"
	"pathprof/internal/telemetry"
)

// TestChaosDrill is the acceptance drill for the service's robustness
// story: 8 concurrent emitters publish distinct snapshots through a
// deterministic fault matrix — dropped connections (pre- and
// post-commit), stalled responses forcing client timeouts, torn store
// writes, and outright save failures — with bounded queues and
// backpressure in the path. The invariant under all of it:
//
//  1. every acknowledged snapshot appears in the commit log exactly
//     once (retries dedupe, drops lose nothing acked);
//  2. the served aggregate is BIT-identical to a fault-free fold of
//     the committed snapshots in commit-log order;
//  3. after a simulated crash (reopen the store directory, fresh
//     server), the recovered aggregate is still bit-identical.
func TestChaosDrill(t *testing.T) {
	const (
		tenant   = "drill"
		emitters = 8
		perEmit  = 4
	)
	dir := t.TempDir()
	store, err := serve.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultinject.Parse("seed=11,kind=conndrop+netstall+partialwrite+storefail,rate=0.15")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(1)
	s := newServer(t, serve.Config{
		Store:      store,
		QueueDepth: 32,
		BatchMax:   8,
		StallTime:  300 * time.Millisecond,
		Registry:   reg,
		Inject:     inj,
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Every snapshot is known up front, keyed by its idempotency key,
	// so the drill can refold whatever subset actually committed.
	published := map[string][]byte{}
	for i := 0; i < emitters; i++ {
		for j := 0; j < perEmit; j++ {
			published[fmt.Sprintf("e%d-s%d", i, j)] = encodeSnap(i, j)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var mu sync.Mutex
	acked := map[string]serve.Ack{}
	var wg sync.WaitGroup
	for i := 0; i < emitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &serve.Client{
				BaseURL:        ts.URL,
				MaxAttempts:    16,
				AttemptTimeout: 150 * time.Millisecond,
				Backoff:        serve.Backoff{Base: 5 * time.Millisecond, Max: 80 * time.Millisecond, Seed: uint64(i)},
			}
			for j := 0; j < perEmit; j++ {
				key := fmt.Sprintf("e%d-s%d", i, j)
				res, err := client.Publish(ctx, tenant, key, published[key])
				if err != nil {
					t.Errorf("emitter %d: publish %s: %v", i, key, err)
					continue
				}
				mu.Lock()
				acked[key] = res.Ack
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	// Drain: queued-but-unacked work commits before the server stops.
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// (1) Exactly-once: the commit log holds each committed key once,
	// every key is one we published, and every acked key committed.
	log := s.CommitLog(tenant)
	seen := map[string]bool{}
	for _, e := range log {
		if seen[e.Key] {
			t.Fatalf("key %s committed twice — retries double-counted", e.Key)
		}
		seen[e.Key] = true
		if _, ok := published[e.Key]; !ok {
			t.Fatalf("log holds unknown key %s", e.Key)
		}
	}
	for key := range acked { //ppp:allow(mapiter) — membership check only
		if !seen[key] {
			t.Errorf("acked key %s missing from the commit log", key)
		}
	}
	t.Logf("chaos drill: %d/%d acked, %d committed", len(acked), len(published), len(log))

	// (2) Bit-identity: a fault-free fold of the committed snapshots
	// in log order reproduces the served aggregate byte for byte.
	want := profile.NewSnapshot()
	for _, e := range log {
		one, err := snapshot.Decode(published[e.Key])
		if err != nil {
			t.Fatal(err)
		}
		want.MergeSnapshot(one)
	}
	wantBytes := snapshot.Encode(want)
	gotBytes, gotFP := s.AggregateBytes(tenant)
	if gotFP != fmt.Sprintf("%016x", want.Fingerprint()) {
		t.Errorf("served fingerprint %s != fault-free fold %016x", gotFP, want.Fingerprint())
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Error("served aggregate is not bit-identical to the fault-free fold")
	}

	// (3) Crash and recover: reopening the store directory (recovery
	// sweeps torn .tmp files the partial-write faults left behind) and
	// starting a fresh fault-free server serves the same bytes.
	store2, err := serve.OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	s2 := newServer(t, serve.Config{Store: store2})
	recovered, recoveredFP := s2.AggregateBytes(tenant)
	if recoveredFP != gotFP {
		t.Errorf("recovered fingerprint %s != pre-crash %s", recoveredFP, gotFP)
	}
	if !bytes.Equal(recovered, wantBytes) {
		t.Error("recovered aggregate is not bit-identical to the acked state")
	}

	// Accounting (writers have quiesced): every committed snapshot was
	// acked fresh exactly once, and no snapshot was quarantined.
	if v := reg.Counter("ppp_serve_ingest_acked_total", "").Value(); v != int64(len(log)) {
		t.Errorf("acked counter %d != %d committed", v, len(log))
	}
	if v := reg.Counter("ppp_serve_ingest_quarantined_total", "").Value(); v != 0 {
		t.Errorf("quarantined %d well-formed snapshots", v)
	}
	if v := reg.Counter("ppp_serve_store_save_errors_total", "").Value(); v > 0 {
		t.Logf("chaos drill: %d injected save failures survived", v)
	}
	var faults, stores int
	for _, e := range reg.Trace().Snapshot() {
		switch e.Kind {
		case telemetry.EvFaultInject:
			faults++
		case telemetry.EvStoreFault:
			stores++
		}
	}
	t.Logf("chaos drill: %d network faults, %d store faults traced", faults, stores)
	if faults+stores == 0 {
		t.Error("fault matrix injected nothing — the drill exercised no faults")
	}
}

// TestChaosDrillDeterministicOutcome reruns a small drill with the
// same seed and asserts the final aggregate is identical: the fault
// pattern is a pure function of the spec, not of scheduling.
func TestChaosDrillDeterministicOutcome(t *testing.T) {
	run := func() string {
		inj, err := faultinject.Parse("seed=3,kind=storefail,rate=0.3")
		if err != nil {
			t.Fatal(err)
		}
		s := newServer(t, serve.Config{Store: serve.NewMemStore(), Inject: inj, BatchMax: 1})
		s.Start()
		ctx := context.Background()
		for j := 0; j < 6; j++ {
			key := fmt.Sprintf("s%d", j)
			// Direct ingest with manual retry: a nacked save retries up
			// to 8 times; the per-ordinal fault stream makes the retry
			// count deterministic.
			for a := 0; a < 8; a++ {
				if _, _, err := s.Ingest(ctx, "app", key, testSnap(0, j)); err == nil {
					break
				}
			}
		}
		_, fp := s.AggregateBytes("app")
		return fp
	}
	a, b := run(), run()
	if a != b || a == "" {
		t.Fatalf("same seed, different outcomes: %q vs %q", a, b)
	}
}
