// Package serve is the multi-tenant profile service: many clients
// concurrently POST PPSNAP snapshots to per-program tenants, the
// server validates and folds them into per-tenant aggregates with the
// same deterministic merge the collector uses for shards, and serves
// merged snapshots, NET hot-path predictions, and instrumentation
// plans back out.
//
// Robustness is the organizing principle, not a feature flag:
//
//   - Acked implies durable. An ingest is acknowledged only after the
//     updated aggregate has been committed to the Store; a crash at
//     any moment loses nothing a client was told was accepted.
//   - Bounded everything. The ingest queue, request bodies, commit
//     batches, and per-request waits all have hard limits; overload
//     turns into 429/503 + Retry-After, never unbounded memory.
//   - Whole-request quarantine. A corrupt or oversized snapshot is
//     rejected and accounted; it never contaminates an aggregate
//     (mirroring replication's whole-shard quarantine).
//   - Graceful degradation. Under pressure the server sheds read and
//     plan traffic before ingest, and group commit stretches the
//     merge/save cadence so one fsync amortizes over a deeper queue.
package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"pathprof/internal/faultinject"
	"pathprof/internal/snapshot"
)

// Store abstracts where durable tenant aggregates live. Save's
// contract is the service's foundation: a nil error means the bytes
// are recoverable after a crash, so the server may acknowledge the
// snapshots folded into them. Implementations must tolerate torn
// writes from previous incarnations (recover on open, not on save).
type Store interface {
	// Save durably replaces tenant's aggregate bytes.
	Save(tenant string, data []byte) error
	// Load returns the last durably saved aggregate, or os.ErrNotExist
	// (possibly wrapped) when the tenant has none.
	Load(tenant string) ([]byte, error)
	// Tenants lists tenants with durable state, sorted.
	Tenants() ([]string, error)
}

// tenantNameRE is the safe-tenant-name alphabet: nothing that can
// traverse paths or surprise a filesystem.
var tenantNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ValidTenant reports whether name is an acceptable tenant name.
func ValidTenant(name string) bool {
	return tenantNameRE.MatchString(name) && !strings.Contains(name, "..")
}

// MemStore is the in-memory Store: durable only for the process
// lifetime, used by tests and by pppd -store mem. It still copies on
// both sides so callers cannot alias its buffers.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: map[string][]byte{}} }

// Save implements Store.
func (ms *MemStore) Save(tenant string, data []byte) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.m[tenant] = append([]byte(nil), data...)
	return nil
}

// Load implements Store.
func (ms *MemStore) Load(tenant string) ([]byte, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	data, ok := ms.m[tenant]
	if !ok {
		return nil, fmt.Errorf("serve: tenant %q: %w", tenant, os.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

// Tenants implements Store.
func (ms *MemStore) Tenants() ([]string, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]string, 0, len(ms.m))
	for t := range ms.m { //ppp:allow(mapiter) — sorted below
		out = append(out, t)
	}
	sort.Strings(out)
	return out, nil
}

// FileStore keeps one snapshot.Store per tenant under a directory:
//
//	<dir>/<tenant>.ppsnap        current aggregate
//	<dir>/<tenant>.ppsnap.prev   previous good aggregate
//	<dir>/<tenant>.ppsnap.tmp    in-flight write
//
// Saves inherit the atomic write + fsync + .prev rotation, and Open
// runs crash recovery over every tenant before serving: stale or torn
// .tmp files are rolled back and torn rotations are repaired, so the
// store always comes up at each tenant's last acknowledged aggregate.
type FileStore struct {
	dir string
	mu  sync.Mutex
}

const snapExt = ".ppsnap"

// OpenFileStore opens (creating if needed) a file-backed store rooted
// at dir and recovers every tenant from whatever a crash left behind.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	fs := &FileStore{dir: dir}
	if err := fs.recoverAll(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Dir returns the store's root directory.
func (fs *FileStore) Dir() string { return fs.dir }

func (fs *FileStore) pathOf(tenant string) string {
	return filepath.Join(fs.dir, tenant+snapExt)
}

// recoverAll rolls every tenant back to its last acknowledged state
// (see snapshot.Store.Recover) and validates that what remains
// decodes, falling back past torn primaries to .prev.
func (fs *FileStore) recoverAll() error {
	tenants, err := fs.Tenants()
	if err != nil {
		return err
	}
	// Tenants() only sees *.ppsnap primaries; a torn rotation leaves
	// only .prev/.tmp behind, so sweep those too.
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	seen := map[string]bool{}
	for _, t := range tenants {
		seen[t] = true
	}
	for _, e := range entries {
		name := e.Name()
		for _, suffix := range []string{snapExt + ".prev", snapExt + ".tmp"} {
			if t, ok := strings.CutSuffix(name, suffix); ok && !seen[t] {
				tenants = append(tenants, t)
				seen[t] = true
			}
		}
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		if _, err := snapshot.NewStore(fs.pathOf(t)).Recover(); err != nil {
			return fmt.Errorf("serve: store: recover %s: %w", t, err)
		}
	}
	return nil
}

// Save implements Store with crash-safe semantics: the bytes are
// fsynced, renamed into place, and the directory entry is fsynced
// before Save returns.
func (fs *FileStore) Save(tenant string, data []byte) error {
	if !ValidTenant(tenant) {
		return fmt.Errorf("serve: store: invalid tenant %q", tenant)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return snapshot.NewStore(fs.pathOf(tenant)).SaveBytes(data)
}

// Load implements Store, falling back past a torn or corrupt primary
// to the .prev rotation exactly as snapshot.Store does.
func (fs *FileStore) Load(tenant string) ([]byte, error) {
	if !ValidTenant(tenant) {
		return nil, fmt.Errorf("serve: store: invalid tenant %q", tenant)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st := snapshot.NewStore(fs.pathOf(tenant))
	data, err := os.ReadFile(st.Path())
	if err == nil {
		if _, derr := snapshot.Decode(data); derr == nil {
			return data, nil
		}
	}
	prev, perr := os.ReadFile(st.PrevPath())
	if perr == nil {
		if _, derr := snapshot.Decode(prev); derr == nil {
			return prev, nil
		}
	}
	if err == nil {
		err = fmt.Errorf("serve: store: tenant %q: primary and fallback both corrupt", tenant)
	} else if errors.Is(err, os.ErrNotExist) && !errors.Is(perr, os.ErrNotExist) {
		err = fmt.Errorf("serve: store: tenant %q: %w (fallback unusable: %v)", tenant, os.ErrNotExist, perr)
	}
	return nil, err
}

// Tenants implements Store.
func (fs *FileStore) Tenants() ([]string, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if t, ok := strings.CutSuffix(e.Name(), snapExt); ok && ValidTenant(t) {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out, nil
}

// tearTmp leaves a deliberately torn in-flight write behind, for
// partial-write fault injection: the bytes a real short write would
// strand in .tmp, which the next recovery must roll back past.
func (fs *FileStore) tearTmp(tenant string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st := snapshot.NewStore(fs.pathOf(tenant))
	_ = os.WriteFile(st.TmpPath(), data[:len(data)/2], 0o644)
}

// tearer is implemented by stores that can leave torn bytes behind
// when a partial-write fault fires.
type tearer interface {
	tearTmp(tenant string, data []byte)
}

// FaultStore wraps a Store with deterministic save-side fault
// injection: StoreFail makes Save fail with nothing written,
// PartialWrite makes it fail after tearing a write (when the inner
// store has anything to tear). The decision site is a pure function
// of (tenant, per-tenant save ordinal), so a fixed commit sequence
// yields a fixed fault pattern.
type FaultStore struct {
	Inner  Store
	Inject *faultinject.Injector

	mu       sync.Mutex
	ordinals map[string]uint64
}

// NewFaultStore wraps inner; a nil injector injects nothing.
func NewFaultStore(inner Store, inj *faultinject.Injector) *FaultStore {
	return &FaultStore{Inner: inner, Inject: inj, ordinals: map[string]uint64{}}
}

// ErrInjectedSave reports an injected save failure, so drills can
// tell injected faults from real ones.
var ErrInjectedSave = errors.New("serve: injected store fault")

func (f *FaultStore) site(tenant string) uint64 {
	f.mu.Lock()
	ord := f.ordinals[tenant]
	f.ordinals[tenant] = ord + 1
	f.mu.Unlock()
	return hash64(tenant) ^ ord
}

// Save implements Store.
func (f *FaultStore) Save(tenant string, data []byte) error {
	site := f.site(tenant)
	if f.Inject.Hit(faultinject.StoreFail, site) {
		return fmt.Errorf("%w: storefail at site %d", ErrInjectedSave, site)
	}
	if f.Inject.Hit(faultinject.PartialWrite, site) {
		if t, ok := f.Inner.(tearer); ok && len(data) > 1 {
			t.tearTmp(tenant, data)
		}
		return fmt.Errorf("%w: partial write at site %d", ErrInjectedSave, site)
	}
	return f.Inner.Save(tenant, data)
}

// Load implements Store.
func (f *FaultStore) Load(tenant string) ([]byte, error) { return f.Inner.Load(tenant) }

// Tenants implements Store.
func (f *FaultStore) Tenants() ([]string, error) { return f.Inner.Tenants() }

// hash64 is the FNV-1a fold used for fault sites and idempotency-key
// digests; stable across runs by construction.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
