package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pathprof/internal/profile"
	"pathprof/internal/serve"
	"pathprof/internal/telemetry"
)

// shiftedSnap builds a snapshot whose hot edges share nothing with
// testSnap: used to drive a tenant outside its drift envelope.
func shiftedSnap(scale int64) *profile.Snapshot {
	s := profile.NewSnapshot()
	ep := profile.NewEdgeProfile("work")
	ep.Add(7, 8, 5000*scale)
	ep.Add(8, 9, 4000*scale)
	ep.Calls = scale
	s.Edges["work"] = ep
	return s
}

func postSnapshot(t *testing.T, baseURL, tenant, key string, data []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/profiles/"+tenant, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-PPP-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", tenant, err)
	}
	return resp
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestStitchedTraceEndToEnd publishes one snapshot through the real
// client and asserts /trace.jsonl holds the full request lifecycle —
// client attempt, admission, queue wait, commit merge, store save,
// ack — stitched under one derived trace ID.
func TestStitchedTraceEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry(256)
	s := newServer(t, serve.Config{Registry: reg})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	client := &serve.Client{BaseURL: ts.URL, Spans: reg.Spans()}
	res, err := client.Publish(context.Background(), "app", "k1", encodeSnap(0, 0))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	wantTrace := serve.TraceIDForKey("k1")
	if res.TraceID != wantTrace {
		t.Fatalf("client trace ID %q, server derivation %q", res.TraceID, wantTrace)
	}
	if len(res.Timings) != 1 || res.Timings[0].Status != http.StatusOK {
		t.Fatalf("timings = %+v, want one 200 attempt", res.Timings)
	}

	code, body := get(t, ts.URL+"/trace.jsonl")
	if code != http.StatusOK {
		t.Fatalf("/trace.jsonl: status %d", code)
	}
	stages := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var ev struct {
			Trace string `json:"trace"`
			Stage string `json:"stage"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if ev.Trace == wantTrace {
			stages[ev.Stage] = true
		}
	}
	for _, want := range []string{"client-send", "admit", "queue-wait", "commit-merge", "store-save", "ack"} {
		if !stages[want] {
			t.Fatalf("trace %s missing stage %q; got %v", wantTrace, want, stages)
		}
	}
}

// TestDriftFiresOnShiftedTenant drives tenant "hot" outside its drift
// envelope while tenant "flat" re-publishes its original mix, and
// asserts /v1/drift reports exactly the shifted tenant as drifted.
func TestDriftFiresOnShiftedTenant(t *testing.T) {
	reg := telemetry.NewRegistry(256)
	s := newServer(t, serve.Config{Registry: reg})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()

	base := testSnap(0, 0)
	for _, tenant := range []string{"hot", "flat"} {
		if _, code, err := s.Ingest(ctx, tenant, "base", base); err != nil {
			t.Fatalf("%s base ingest: %v (code %d)", tenant, err, code)
		}
	}
	// The shifted tenant's mix moves to a disjoint hot set; the flat
	// tenant just sees more of the same.
	if _, code, err := s.Ingest(ctx, "hot", "shift", shiftedSnap(20)); err != nil {
		t.Fatalf("hot shift ingest: %v (code %d)", err, code)
	}
	if _, code, err := s.Ingest(ctx, "flat", "again", testSnap(0, 1)); err != nil {
		t.Fatalf("flat re-ingest: %v (code %d)", err, code)
	}

	readReport := func(tenant string) (rep struct {
		Drifted        bool    `json:"drifted"`
		FlowDivergence float64 `json:"flow_divergence"`
		Reason         string  `json:"reason"`
	}) {
		code, body := get(t, ts.URL+"/v1/drift/"+tenant)
		if code != http.StatusOK {
			t.Fatalf("/v1/drift/%s: status %d: %s", tenant, code, body)
		}
		if err := json.Unmarshal([]byte(body), &rep); err != nil {
			t.Fatalf("/v1/drift/%s: %v", tenant, err)
		}
		return rep
	}
	hot := readReport("hot")
	if !hot.Drifted {
		t.Fatalf("shifted tenant not drifted: %+v", hot)
	}
	flat := readReport("flat")
	if flat.Drifted {
		t.Fatalf("unshifted tenant drifted: %+v", flat)
	}
	if flat.FlowDivergence >= hot.FlowDivergence {
		t.Fatalf("flat divergence %v >= hot divergence %v", flat.FlowDivergence, hot.FlowDivergence)
	}

	// Unknown tenant has no report yet.
	if code, _ := get(t, ts.URL+"/v1/drift/nobody"); code != http.StatusNotFound {
		t.Fatalf("/v1/drift/nobody: status %d, want 404", code)
	}
}

// TestStageHistogramsInMetrics asserts the stage latency histograms
// and RED series appear in /metrics after traffic, and that the whole
// exposition passes the strict validator promcheck uses.
func TestStageHistogramsInMetrics(t *testing.T) {
	reg := telemetry.NewRegistry(256)
	s := newServer(t, serve.Config{Registry: reg})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postSnapshot(t, ts.URL, "app", "k1", encodeSnap(0, 0))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"ppp_serve_queue_wait_us_bucket",
		"ppp_serve_commit_merge_us_bucket",
		"ppp_serve_store_save_us_bucket",
		"ppp_serve_ack_e2e_us_bucket",
		`ppp_serve_http_requests_total{endpoint="ingest"}`,
		"ppp_span_events_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	if err := telemetry.ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition fails strict validation: %v", err)
	}
	// The e2e ack histogram saw exactly the one acked ingest.
	hist, ok := telemetry.ScrapeHistogram(body, "ppp_serve_ack_e2e_us")
	if !ok || hist.Count != 1 {
		t.Fatalf("ack-e2e histogram = %+v ok=%v, want count 1", hist, ok)
	}
}

// TestAccessLogFormat wires Config.AccessLog and checks the
// structured line for an ingest: tenant, endpoint, status, duration,
// and the derived trace ID.
func TestAccessLogFormat(t *testing.T) {
	var buf bytes.Buffer
	s := newServer(t, serve.Config{AccessLog: &buf})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postSnapshot(t, ts.URL, "app", "k1", encodeSnap(0, 0))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	line := strings.TrimSpace(buf.String())
	for _, want := range []string{
		"ppp-access tenant=app endpoint=ingest status=200",
		"dur_us=",
		"trace=" + serve.TraceIDForKey("k1"),
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log %q missing %q", line, want)
		}
	}
}

// TestDashboardRenders hits /debug/ppp after traffic and checks the
// service sections render, including the drift table.
func TestDashboardRenders(t *testing.T) {
	reg := telemetry.NewRegistry(256)
	s := newServer(t, serve.Config{Registry: reg})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, code, err := s.Ingest(context.Background(), "app", "k1", testSnap(0, 0)); err != nil {
		t.Fatalf("ingest: %v (code %d)", err, code)
	}
	code, body := get(t, ts.URL+"/debug/ppp")
	if code != http.StatusOK {
		t.Fatalf("/debug/ppp: status %d", code)
	}
	for _, want := range []string{"pppd", "Profile drift", "Service", "ppp_serve_ack_e2e_us"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/ppp missing %q", want)
		}
	}
}

// TestPublishErrorCarriesTimings asserts a failed publish surfaces
// per-attempt timing through the typed error, so pppload can report
// client-vs-server skew even for failures.
func TestPublishErrorCarriesTimings(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := &serve.Client{
		BaseURL:     ts.URL,
		MaxAttempts: 3,
		Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
	}
	_, err := c.Publish(context.Background(), "app", "k9", encodeSnap(0, 0))
	if err == nil {
		t.Fatal("publish against a 503 server succeeded")
	}
	var perr *serve.PublishError
	if !errors.As(err, &perr) {
		t.Fatalf("error %T is not a *PublishError: %v", err, err)
	}
	if perr.TraceID != serve.TraceIDForKey("k9") {
		t.Fatalf("PublishError trace %q", perr.TraceID)
	}
	if len(perr.Timings) != 3 {
		t.Fatalf("PublishError carries %d timings, want 3: %+v", len(perr.Timings), perr.Timings)
	}
	for i, tm := range perr.Timings {
		if tm.Attempt != i || tm.Status != http.StatusServiceUnavailable {
			t.Fatalf("timing %d = %+v, want attempt %d status 503", i, tm, i)
		}
	}
}
