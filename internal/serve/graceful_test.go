package serve_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"pathprof/internal/serve"
)

// TestGracefulDrainRunsHooks covers the shared shutdown path used by
// pppd, pppbench -serve, and pppc -serve: cancelling the context stops
// the listener, runs OnDrain hooks, and Wait returns nil on a clean
// drain.
func TestGracefulDrainRunsHooks(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var drained bool
	var log strings.Builder
	g := &serve.Graceful{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "ok")
		}),
		Drain:   2 * time.Second,
		OnDrain: []func(ctx context.Context) error{func(ctx context.Context) error { drained = true; return nil }},
		Log:     &log,
	}
	errc := g.Start(ln)

	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d before shutdown", resp.StatusCode)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.Wait(ctx, errc); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !drained {
		t.Error("OnDrain hook never ran")
	}
	if !strings.Contains(log.String(), "shutdown: clean") {
		t.Errorf("log missing clean-shutdown line: %q", log.String())
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestGracefulListenerErrorStillDrains: if the serve loop dies on its
// own, queued work still commits via the OnDrain hooks.
func TestGracefulListenerErrorStillDrains(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var drained bool
	g := &serve.Graceful{
		Handler: http.NotFoundHandler(),
		OnDrain: []func(ctx context.Context) error{func(ctx context.Context) error { drained = true; return nil }},
	}
	errc := g.Start(ln)
	ln.Close() // the listener dies out from under the server
	if err := g.Wait(context.Background(), errc); err == nil {
		t.Fatal("Wait swallowed the listener error")
	}
	if !drained {
		t.Error("OnDrain hook skipped after listener error")
	}
}
