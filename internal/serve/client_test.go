package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pathprof/internal/serve"
)

func TestBackoffScheduleDeterministic(t *testing.T) {
	b := serve.Backoff{Base: 50 * time.Millisecond, Max: 5 * time.Second, Seed: 42}
	var first []time.Duration
	for attempt := 0; attempt < 10; attempt++ {
		first = append(first, b.Delay("key-1", attempt))
	}
	for attempt := 0; attempt < 10; attempt++ {
		if again := b.Delay("key-1", attempt); again != first[attempt] {
			t.Fatalf("attempt %d: delay %v then %v — schedule is not deterministic", attempt, first[attempt], again)
		}
	}
	// Jitter stays inside [ceiling/2, ceiling] with the exponential
	// ceiling clamped at Max.
	ceiling := b.Base
	for attempt, d := range first {
		if d < ceiling/2 || d > ceiling {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, ceiling/2, ceiling)
		}
		if ceiling < b.Max {
			ceiling *= 2
		}
		if ceiling > b.Max {
			ceiling = b.Max
		}
	}
	// Distinct keys and seeds de-correlate (no thundering herd).
	if b.Delay("key-1", 3) == b.Delay("key-2", 3) &&
		b.Delay("key-1", 4) == b.Delay("key-2", 4) {
		t.Error("distinct keys share the whole schedule")
	}
}

// TestPublishBackoffFakeClock drives the full retry loop against a
// server that answers 429 twice then acks, with a fake clock standing
// in for Sleep: the waits the client would take are exactly the
// deterministic backoff schedule, and no real time is spent.
func TestPublishBackoffFakeClock(t *testing.T) {
	var mu sync.Mutex
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		_ = json.NewEncoder(w).Encode(serve.Ack{Tenant: "app", Seq: 7, Fingerprint: "00"})
	}))
	defer ts.Close()

	var slept []time.Duration
	c := &serve.Client{
		BaseURL: ts.URL,
		Backoff: serve.Backoff{Base: 100 * time.Millisecond, Max: time.Second, Seed: 9},
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	res, err := c.Publish(context.Background(), "app", "k", encodeSnap(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 || res.Ack.Seq != 7 {
		t.Fatalf("result = %+v, want 3 attempts, seq 7", res)
	}
	want := []time.Duration{c.Backoff.Delay("k", 0), c.Backoff.Delay("k", 1)}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("slept %v, want the backoff schedule %v", slept, want)
	}
}

func TestPublishPermanentErrorsDoNotRetry(t *testing.T) {
	var mu sync.Mutex
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		http.Error(w, "corrupt snapshot", http.StatusBadRequest)
	}))
	defer ts.Close()

	c := &serve.Client{BaseURL: ts.URL, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	if _, err := c.Publish(context.Background(), "app", "k", []byte("junk")); err == nil {
		t.Fatal("publish of quarantined bytes succeeded")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("client retried a permanent 400: %d attempts", calls)
	}
}

func TestPublishHonorsContextDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := &serve.Client{
		BaseURL:     ts.URL,
		MaxAttempts: 100,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the deadline lands while the client is backing off
			return ctx.Err()
		},
	}
	_, err := c.Publish(ctx, "app", "k", encodeSnap(0, 0))
	if err == nil {
		t.Fatal("publish outlived its context")
	}
	if got := fmt.Sprint(err); got == "" || ctx.Err() == nil {
		t.Errorf("unexpected error state: %v", err)
	}
}

func TestPublishExhaustsAttempts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer ts.Close()
	var slept int
	c := &serve.Client{
		BaseURL:     ts.URL,
		MaxAttempts: 3,
		Sleep:       func(ctx context.Context, d time.Duration) error { slept++; return nil },
	}
	if _, err := c.Publish(context.Background(), "app", "k", encodeSnap(0, 0)); err == nil {
		t.Fatal("publish succeeded against a permanently full queue")
	}
	if slept != 2 {
		t.Errorf("slept %d times for 3 attempts, want 2", slept)
	}
}
