package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pathprof/internal/core"
	"pathprof/internal/faultinject"
	"pathprof/internal/instr"
	"pathprof/internal/netprof"
	"pathprof/internal/planir"
	"pathprof/internal/snapshot"
	"pathprof/internal/telemetry"
)

// Handler returns the service's HTTP surface:
//
//	POST /v1/profiles/{tenant}       ingest a PPSNAP snapshot → Ack JSON
//	GET  /v1/profiles/{tenant}       merged aggregate as PPSNAP bytes
//	GET  /v1/profiles/{tenant}/info  aggregate summary JSON
//	GET  /v1/profiles/{tenant}/log   commit log JSON (the fold order)
//	GET  /v1/hot/{tenant}            NET hot-path predictions JSON
//	GET  /v1/plans/{tenant}          instrumentation plan IR (PPPLAN bytes)
//	GET  /v1/tenants                 tenant list JSON
//	GET  /healthz                    liveness + drain status
//	/metrics, /debug/..., /trace.*   telemetry exposition (when configured)
//
// The whole surface sits behind the chaos middleware so conndrop and
// netstall faults exercise every endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/profiles/{tenant}", s.handleIngest)
	mux.HandleFunc("GET /v1/profiles/{tenant}", s.handleSnapshot)
	mux.HandleFunc("GET /v1/profiles/{tenant}/info", s.handleInfo)
	mux.HandleFunc("GET /v1/profiles/{tenant}/log", s.handleLog)
	mux.HandleFunc("GET /v1/hot/{tenant}", s.handleHot)
	mux.HandleFunc("GET /v1/plans/{tenant}", s.handlePlans)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.Registry != nil {
		mux.Handle("/", s.cfg.Registry.Handler())
	}
	return s.chaos(mux)
}

// retryHint attaches the backpressure hint clients honor.
func (s *Server) retryHint(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
}

// shed refuses a read/plan request when ingest needs the headroom:
// the degradation ladder drops read traffic first, so writers keep
// making durable progress while the queue drains.
func (s *Server) shed(w http.ResponseWriter, r *http.Request) bool {
	if !s.overloaded() {
		return false
	}
	s.met.bump(s.met.shed)
	s.trace.Emit(telemetry.Event{
		Unit: "serve", Routine: r.PathValue("tenant"), Kind: telemetry.EvShed,
		Detail: "read shed under ingest overload: " + r.URL.Path,
	})
	s.retryHint(w)
	http.Error(w, "overloaded: read traffic shed while the ingest queue drains", http.StatusServiceUnavailable)
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	tenantName := r.PathValue("tenant")
	if !ValidTenant(tenantName) {
		http.Error(w, "invalid tenant name", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxSnapshotBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.quarantine(tenantName, fmt.Sprintf("oversized snapshot (> %d bytes)", s.cfg.MaxSnapshotBytes))
			http.Error(w, "snapshot exceeds size limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	snap, err := snapshot.Decode(body)
	if err != nil {
		// Whole-request quarantine: corrupt bytes never reach a merge,
		// and the rejection is accounted, not silent.
		s.quarantine(tenantName, "corrupt snapshot: "+err.Error())
		http.Error(w, "corrupt snapshot: "+err.Error(), http.StatusBadRequest)
		return
	}
	key := r.Header.Get("X-PPP-Key")
	if key == "" {
		// Content-derived idempotency: byte-identical retries dedupe
		// even from clients that never set a key.
		key = fmt.Sprintf("sha:%016x", hash64(string(body)))
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	ack, code, err := s.Ingest(ctx, tenantName, key, snap)
	if err != nil {
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			s.retryHint(w)
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, ack)
}

func (s *Server) quarantine(tenantName, detail string) {
	s.met.bump(s.met.quarantined)
	s.trace.Emit(telemetry.Event{
		Unit: "serve", Routine: tenantName, Kind: telemetry.EvQuarantine,
		Detail: detail,
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	data, fp := s.AggregateBytes(r.PathValue("tenant"))
	if data == nil {
		http.Error(w, "no aggregate for tenant", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-PPP-Fingerprint", fp)
	_, _ = w.Write(data)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	info, ok := s.Info(r.PathValue("tenant"))
	if !ok {
		http.Error(w, "unknown tenant", http.StatusNotFound)
		return
	}
	writeJSON(w, info)
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	log := s.CommitLog(r.PathValue("tenant"))
	if log == nil {
		log = []LogEntry{}
	}
	writeJSON(w, log)
}

func (s *Server) handleHot(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	agg := s.Aggregate(r.PathValue("tenant"))
	if agg == nil {
		http.Error(w, "no aggregate for tenant", http.StatusNotFound)
		return
	}
	threshold := int64(1)
	if t := r.URL.Query().Get("threshold"); t != "" {
		n, err := strconv.ParseInt(t, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad threshold", http.StatusBadRequest)
			return
		}
		threshold = n
	}
	exp := netprof.Expected(agg.Paths, threshold)
	if exp == nil {
		exp = []netprof.Expectation{}
	}
	writeJSON(w, exp)
}

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	tenantName := r.PathValue("tenant")
	if !ValidTenant(tenantName) || s.cfg.Program == nil {
		http.Error(w, "plan serving not configured for tenant", http.StatusNotFound)
		return
	}
	source, ok := s.cfg.Program(tenantName)
	if !ok {
		http.Error(w, "plan serving not configured for tenant", http.StatusNotFound)
		return
	}
	profiler := r.URL.Query().Get("profiler")
	if profiler == "" {
		profiler = "PPP"
	}
	var tech instr.Techniques
	found := false
	for _, p := range core.Profilers() {
		if p.Name == profiler {
			tech, found = p.Tech, true
			break
		}
	}
	if !found {
		http.Error(w, fmt.Sprintf("unknown profiler %q (want PP, TPP, or PPP)", profiler), http.StatusBadRequest)
		return
	}
	pl, err := instr.ParsePlacement(r.URL.Query().Get("placement"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	staged, err := s.stagedFor(tenantName, source)
	if err != nil {
		http.Error(w, "stage tenant program: "+err.Error(), http.StatusInternalServerError)
		return
	}
	// Guide planning with the live merged aggregate when one exists;
	// without one, fall back to the staging run's own profile.
	agg := s.Aggregate(tenantName)
	var plans map[string]*instr.Plan
	if agg != nil {
		plans, err = staged.PlansGuided(tenantName, tech, pl, agg.Edges)
	} else {
		plans, err = staged.PlansFor(tenantName, tech, pl)
	}
	if err != nil {
		http.Error(w, "build plans: "+err.Error(), http.StatusInternalServerError)
		return
	}
	prog := planir.FromPlans(plans)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-PPP-Plan-Fingerprint", fmt.Sprintf("%016x", prog.Fingerprint()))
	_, _ = w.Write(prog.Encode())
}

// stagedFor stages a tenant's program once and caches the result on
// the tenant; concurrent first requests serialize on the Once.
func (s *Server) stagedFor(tenantName, source string) (*core.Staged, error) {
	t := s.tenantFor(tenantName)
	t.stageOnce.Do(func() {
		t.staged, t.stageErr = core.NewPipeline(tenantName, source).Stage()
	})
	return t.staged, t.stageErr
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	writeJSON(w, s.TenantNames())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q,\"queue\":%d}\n", status, s.QueueLen())
}

// chaosSite derives the deterministic fault site for a request. The
// client's attempt counter participates, so a retry of a dropped
// request draws a fresh decision instead of dropping forever.
func chaosSite(r *http.Request) uint64 {
	return hash64(r.Method + " " + r.URL.Path + "#" +
		r.Header.Get("X-PPP-Key") + "#" + r.Header.Get("X-PPP-Attempt"))
}

// chaos wraps the surface with deterministic network fault injection.
// ConnDrop severs the connection without a response — before the
// handler runs (nothing committed; the retry is a fresh ingest) or
// after it (committed but unacked; the retry must dedupe), the phase
// chosen deterministically per site. NetStall buffers the response
// and sits on it past the client's attempt deadline.
func (s *Server) chaos(next http.Handler) http.Handler {
	inj := s.cfg.Inject
	if !inj.Active(faultinject.ConnDrop) && !inj.Active(faultinject.NetStall) {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		site := chaosSite(r)
		drop := inj.Hit(faultinject.ConnDrop, site)
		stall := inj.Hit(faultinject.NetStall, site)
		if drop && inj.Rand(faultinject.ConnDrop, site^0x9e37)&1 == 0 {
			s.emitChaos(r, "conndrop before processing")
			panic(http.ErrAbortHandler)
		}
		if !drop && !stall {
			next.ServeHTTP(w, r)
			return
		}
		// Buffer the response so the fault lands after the handler's
		// side effects (the commit) but before any byte reaches the
		// client.
		rec := &bufferedResponse{header: http.Header{}, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		if stall {
			s.emitChaos(r, "netstall holding response")
			time.Sleep(s.cfg.StallTime)
		}
		if drop {
			s.emitChaos(r, "conndrop after processing")
			panic(http.ErrAbortHandler)
		}
		rec.copyTo(w)
	})
}

func (s *Server) emitChaos(r *http.Request, detail string) {
	s.trace.Emit(telemetry.Event{
		Unit: "serve", Routine: r.PathValue("tenant"), Kind: telemetry.EvFaultInject,
		Detail: detail + ": " + r.Method + " " + r.URL.Path,
	})
}

// bufferedResponse captures a handler's response without forwarding
// it, so chaos faults can discard or delay a fully computed response.
type bufferedResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) { b.code = code }

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	for k, vs := range b.header { //ppp:allow(mapiter) — header write order is not semantic
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(b.code)
	_, _ = w.Write(b.body.Bytes())
}
