package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pathprof/internal/core"
	"pathprof/internal/faultinject"
	"pathprof/internal/instr"
	"pathprof/internal/netprof"
	"pathprof/internal/planir"
	"pathprof/internal/snapshot"
	"pathprof/internal/telemetry"
)

// Handler returns the service's HTTP surface:
//
//	POST /v1/profiles/{tenant}       ingest a PPSNAP snapshot → Ack JSON
//	GET  /v1/profiles/{tenant}       merged aggregate as PPSNAP bytes
//	GET  /v1/profiles/{tenant}/info  aggregate summary JSON
//	GET  /v1/profiles/{tenant}/log   commit log JSON (the fold order)
//	GET  /v1/hot/{tenant}            NET hot-path predictions JSON
//	GET  /v1/plans/{tenant}          instrumentation plan IR (PPPLAN bytes)
//	GET  /v1/drift/{tenant}          profile-drift report JSON
//	GET  /v1/tenants                 tenant list JSON
//	GET  /healthz                    liveness + drain status
//	GET  /debug/ppp                  live ops dashboard (HTML)
//	/metrics, /debug/..., /trace.*   telemetry exposition (when configured)
//
// The whole surface sits behind the observation middleware (RED
// metrics + access log) and then the chaos middleware, so conndrop
// and netstall faults exercise every endpoint and observed status
// codes are what the handler computed even when chaos discards the
// response.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/profiles/{tenant}", s.handleIngest)
	mux.HandleFunc("GET /v1/profiles/{tenant}", s.handleSnapshot)
	mux.HandleFunc("GET /v1/profiles/{tenant}/info", s.handleInfo)
	mux.HandleFunc("GET /v1/profiles/{tenant}/log", s.handleLog)
	mux.HandleFunc("GET /v1/hot/{tenant}", s.handleHot)
	mux.HandleFunc("GET /v1/plans/{tenant}", s.handlePlans)
	mux.HandleFunc("GET /v1/drift/{tenant}", s.handleDrift)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/ppp", s.handleDashboard)
	if s.cfg.Registry != nil {
		mux.Handle("/", s.cfg.Registry.Handler())
	}
	return s.chaos(s.observe(mux))
}

// TraceIDForKey derives the trace ID the service uses when a request
// carries no X-PPP-Trace header. Client and server compute the same
// derivation from the idempotency key, so retried attempts and their
// committer work share one trace even with no header propagation.
func TraceIDForKey(key string) string {
	return fmt.Sprintf("t%016x", hash64("trace\x00"+key))
}

// retryHint attaches the backpressure hint clients honor.
func (s *Server) retryHint(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
}

// shed refuses a read/plan request when ingest needs the headroom:
// the degradation ladder drops read traffic first, so writers keep
// making durable progress while the queue drains.
func (s *Server) shed(w http.ResponseWriter, r *http.Request) bool {
	if !s.overloaded() {
		return false
	}
	s.met.bump(s.met.shed)
	s.trace.Emit(telemetry.Event{
		Unit: "serve", Routine: r.PathValue("tenant"), Kind: telemetry.EvShed,
		Detail: "read shed under ingest overload: " + r.URL.Path,
	})
	s.retryHint(w)
	http.Error(w, "overloaded: read traffic shed while the ingest queue drains", http.StatusServiceUnavailable)
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	admitStart := time.Now()
	tenantName := r.PathValue("tenant")
	traceID := r.Header.Get("X-PPP-Trace")
	attempt, _ := strconv.Atoi(r.Header.Get("X-PPP-Attempt"))
	admitSpan := func(status int, detail string) {
		if traceID == "" {
			traceID = "t-unkeyed"
		}
		s.spans.Emit(telemetry.Span{
			Trace: traceID, Tenant: tenantName, Stage: telemetry.StageAdmit,
			Attempt: attempt, Status: status,
			DurUS: time.Since(admitStart).Microseconds(), Detail: detail,
		})
	}
	if !ValidTenant(tenantName) {
		http.Error(w, "invalid tenant name", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxSnapshotBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.quarantine(tenantName, fmt.Sprintf("oversized snapshot (> %d bytes)", s.cfg.MaxSnapshotBytes))
			admitSpan(http.StatusRequestEntityTooLarge, "oversized snapshot")
			http.Error(w, "snapshot exceeds size limit", http.StatusRequestEntityTooLarge)
			return
		}
		admitSpan(http.StatusBadRequest, "body read failed")
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	snap, err := snapshot.Decode(body)
	if err != nil {
		// Whole-request quarantine: corrupt bytes never reach a merge,
		// and the rejection is accounted, not silent.
		s.quarantine(tenantName, "corrupt snapshot: "+err.Error())
		admitSpan(http.StatusBadRequest, "corrupt snapshot")
		http.Error(w, "corrupt snapshot: "+err.Error(), http.StatusBadRequest)
		return
	}
	key := r.Header.Get("X-PPP-Key")
	if key == "" {
		// Content-derived idempotency: byte-identical retries dedupe
		// even from clients that never set a key.
		key = fmt.Sprintf("sha:%016x", hash64(string(body)))
	}
	if traceID == "" {
		// No propagated trace: derive one from the idempotency key so
		// retried attempts still stitch (the client derives the same).
		traceID = TraceIDForKey(key)
	}
	// Echo the effective trace ID so clients and the access log see
	// the ID the committer's spans will carry.
	w.Header().Set("X-PPP-Trace", traceID)
	admitSpan(0, "")
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	ack, code, err := s.ingest(ctx, tenantName, key, traceID, attempt, snap)
	if err != nil {
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			s.retryHint(w)
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, ack)
}

func (s *Server) quarantine(tenantName, detail string) {
	s.met.bump(s.met.quarantined)
	s.trace.Emit(telemetry.Event{
		Unit: "serve", Routine: tenantName, Kind: telemetry.EvQuarantine,
		Detail: detail,
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	data, fp := s.AggregateBytes(r.PathValue("tenant"))
	if data == nil {
		http.Error(w, "no aggregate for tenant", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-PPP-Fingerprint", fp)
	_, _ = w.Write(data)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	info, ok := s.Info(r.PathValue("tenant"))
	if !ok {
		http.Error(w, "unknown tenant", http.StatusNotFound)
		return
	}
	writeJSON(w, info)
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	log := s.CommitLog(r.PathValue("tenant"))
	if log == nil {
		log = []LogEntry{}
	}
	writeJSON(w, log)
}

func (s *Server) handleHot(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	agg := s.Aggregate(r.PathValue("tenant"))
	if agg == nil {
		http.Error(w, "no aggregate for tenant", http.StatusNotFound)
		return
	}
	threshold := int64(1)
	if t := r.URL.Query().Get("threshold"); t != "" {
		n, err := strconv.ParseInt(t, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad threshold", http.StatusBadRequest)
			return
		}
		threshold = n
	}
	exp := netprof.Expected(agg.Paths, threshold)
	if exp == nil {
		exp = []netprof.Expectation{}
	}
	writeJSON(w, exp)
}

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	tenantName := r.PathValue("tenant")
	if !ValidTenant(tenantName) || s.cfg.Program == nil {
		http.Error(w, "plan serving not configured for tenant", http.StatusNotFound)
		return
	}
	source, ok := s.cfg.Program(tenantName)
	if !ok {
		http.Error(w, "plan serving not configured for tenant", http.StatusNotFound)
		return
	}
	profiler := r.URL.Query().Get("profiler")
	if profiler == "" {
		profiler = "PPP"
	}
	var tech instr.Techniques
	found := false
	for _, p := range core.Profilers() {
		if p.Name == profiler {
			tech, found = p.Tech, true
			break
		}
	}
	if !found {
		http.Error(w, fmt.Sprintf("unknown profiler %q (want PP, TPP, or PPP)", profiler), http.StatusBadRequest)
		return
	}
	pl, err := instr.ParsePlacement(r.URL.Query().Get("placement"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	staged, err := s.stagedFor(tenantName, source)
	if err != nil {
		http.Error(w, "stage tenant program: "+err.Error(), http.StatusInternalServerError)
		return
	}
	// Guide planning with the live merged aggregate when one exists;
	// without one, fall back to the staging run's own profile.
	agg := s.Aggregate(tenantName)
	var plans map[string]*instr.Plan
	if agg != nil {
		plans, err = staged.PlansGuided(tenantName, tech, pl, agg.Edges)
	} else {
		plans, err = staged.PlansFor(tenantName, tech, pl)
	}
	if err != nil {
		http.Error(w, "build plans: "+err.Error(), http.StatusInternalServerError)
		return
	}
	if agg != nil {
		// The plans just served were built from this aggregate: freeze
		// it as the tenant's guide so drift is measured against what
		// the optimizer is actually acting on.
		s.drift.SetGuide(tenantName, agg.Edges, s.ackedSeq(tenantName))
	}
	prog := planir.FromPlans(plans)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-PPP-Plan-Fingerprint", fmt.Sprintf("%016x", prog.Fingerprint()))
	_, _ = w.Write(prog.Encode())
}

// stagedFor stages a tenant's program once and caches the result on
// the tenant; concurrent first requests serialize on the Once.
func (s *Server) stagedFor(tenantName, source string) (*core.Staged, error) {
	t := s.tenantFor(tenantName)
	t.stageOnce.Do(func() {
		t.staged, t.stageErr = core.NewPipeline(tenantName, source).Stage()
	})
	return t.staged, t.stageErr
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	writeJSON(w, s.TenantNames())
}

func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r) {
		return
	}
	rep, ok := s.drift.Report(r.PathValue("tenant"))
	if !ok {
		http.Error(w, "no drift report for tenant (no commits scored yet)", http.StatusNotFound)
		return
	}
	writeJSON(w, rep)
}

// handleDashboard serves the live ops view: service state and the
// per-tenant drift table first, then the generic registry sections
// (histogram quantiles, gauges, counters, recent trace events).
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	page := s.cfg.Registry.DashboardPage("pppd — profile service")
	service := telemetry.DashSection{
		Title: "Service",
		Cols:  []string{"queue depth", "queue cap", "draining", "tenants"},
		Rows: [][]string{{
			strconv.Itoa(s.QueueLen()), strconv.Itoa(cap(s.queue)),
			strconv.FormatBool(s.Draining()), strconv.Itoa(len(s.TenantNames())),
		}},
	}
	driftSec := telemetry.DashSection{
		Title: "Profile drift",
		Note:  "live aggregate vs the guide profile served plans were built on",
		Cols:  []string{"tenant", "state", "flow divergence", "hot overlap", "commits since replan", "secs since replan"},
	}
	for _, name := range s.drift.Tenants() {
		rep, ok := s.drift.Report(name)
		if !ok {
			continue
		}
		state := "ok"
		if rep.Drifted {
			state = "DRIFTED"
		}
		driftSec.Rows = append(driftSec.Rows, []string{
			rep.Tenant, state,
			strconv.FormatFloat(rep.FlowDivergence, 'f', 3, 64),
			strconv.FormatFloat(rep.HotOverlap, 'f', 3, 64),
			strconv.FormatUint(rep.CommitsSinceReplan, 10),
			strconv.FormatFloat(rep.SecsSinceReplan, 'f', 1, 64),
		})
	}
	front := []telemetry.DashSection{service}
	if len(driftSec.Rows) > 0 {
		front = append(front, driftSec)
	}
	page.Sections = append(front, page.Sections...)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := telemetry.RenderDashboard(w, page); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// endpointOf classifies a request for RED metrics and the access log.
// Go 1.22 has no Request.Pattern yet, so the classification is by
// method and path shape.
func endpointOf(r *http.Request) string {
	p := r.URL.Path
	switch {
	case r.Method == http.MethodPost && strings.HasPrefix(p, "/v1/profiles/"):
		return "ingest"
	case strings.HasPrefix(p, "/v1/profiles/") && strings.HasSuffix(p, "/info"):
		return "info"
	case strings.HasPrefix(p, "/v1/profiles/") && strings.HasSuffix(p, "/log"):
		return "log"
	case strings.HasPrefix(p, "/v1/profiles/"):
		return "snapshot"
	case strings.HasPrefix(p, "/v1/hot/"):
		return "hot"
	case strings.HasPrefix(p, "/v1/plans/"):
		return "plans"
	case strings.HasPrefix(p, "/v1/drift/"):
		return "drift"
	case p == "/v1/tenants":
		return "tenants"
	case p == "/healthz":
		return "healthz"
	case p == "/debug/ppp":
		return "dashboard"
	case p == "/metrics":
		return "metrics"
	case strings.HasPrefix(p, "/trace."):
		return "trace"
	case strings.HasPrefix(p, "/debug/"):
		return "debug"
	default:
		return "other"
	}
}

// redFor returns (creating if needed) the endpoint's RED series.
func (s *Server) redFor(endpoint string) *redSeries {
	s.redMu.Lock()
	defer s.redMu.Unlock()
	rs := s.red[endpoint]
	if rs == nil {
		reg := s.cfg.Registry
		label := fmt.Sprintf("{endpoint=%q}", endpoint)
		rs = &redSeries{
			requests: reg.Counter("ppp_serve_http_requests_total"+label,
				"HTTP requests by endpoint").Cell(0),
			errors: reg.Counter("ppp_serve_http_errors_total"+label,
				"HTTP responses with status >= 400 by endpoint").Cell(0),
			dur: reg.Histogram("ppp_serve_http_duration_us"+label,
				"HTTP request duration by endpoint, microseconds", usBounds).Cell(0),
		}
		s.red[endpoint] = rs
	}
	return rs
}

// statusWriter records the status a handler chose so middleware can
// observe it after the fact.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// observe wraps the surface with RED metrics and the structured
// access log. It runs inside the chaos middleware, so a discarded
// response still observes the status the handler computed. The Go
// 1.22 mux records path values on the request in place, so
// r.PathValue is readable here after next.ServeHTTP.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		durUS := time.Since(start).Microseconds()
		ep := endpointOf(r)
		rs := s.redFor(ep)
		s.met.bump(rs.requests)
		if sw.code >= 400 {
			s.met.bump(rs.errors)
		}
		s.met.observeHist(rs.dur, durUS)
		if s.cfg.AccessLog == nil {
			return
		}
		traceID := sw.Header().Get("X-PPP-Trace")
		if traceID == "" {
			traceID = r.Header.Get("X-PPP-Trace")
		}
		if traceID == "" {
			traceID = "-"
		}
		tenantName := r.PathValue("tenant")
		if tenantName == "" {
			tenantName = "-"
		}
		attempt := r.Header.Get("X-PPP-Attempt")
		if attempt == "" {
			attempt = "0"
		}
		fmt.Fprintf(s.cfg.AccessLog,
			"ppp-access tenant=%s endpoint=%s status=%d dur_us=%d trace=%s attempt=%s\n",
			tenantName, ep, sw.code, durUS, traceID, attempt)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q,\"queue\":%d}\n", status, s.QueueLen())
}

// chaosSite derives the deterministic fault site for a request. The
// client's attempt counter participates, so a retry of a dropped
// request draws a fresh decision instead of dropping forever.
func chaosSite(r *http.Request) uint64 {
	return hash64(r.Method + " " + r.URL.Path + "#" +
		r.Header.Get("X-PPP-Key") + "#" + r.Header.Get("X-PPP-Attempt"))
}

// chaos wraps the surface with deterministic network fault injection.
// ConnDrop severs the connection without a response — before the
// handler runs (nothing committed; the retry is a fresh ingest) or
// after it (committed but unacked; the retry must dedupe), the phase
// chosen deterministically per site. NetStall buffers the response
// and sits on it past the client's attempt deadline.
func (s *Server) chaos(next http.Handler) http.Handler {
	inj := s.cfg.Inject
	if !inj.Active(faultinject.ConnDrop) && !inj.Active(faultinject.NetStall) {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		site := chaosSite(r)
		drop := inj.Hit(faultinject.ConnDrop, site)
		stall := inj.Hit(faultinject.NetStall, site)
		if drop && inj.Rand(faultinject.ConnDrop, site^0x9e37)&1 == 0 {
			s.emitChaos(r, "conndrop before processing")
			panic(http.ErrAbortHandler)
		}
		if !drop && !stall {
			next.ServeHTTP(w, r)
			return
		}
		// Buffer the response so the fault lands after the handler's
		// side effects (the commit) but before any byte reaches the
		// client.
		rec := &bufferedResponse{header: http.Header{}, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		if stall {
			s.emitChaos(r, "netstall holding response")
			time.Sleep(s.cfg.StallTime)
		}
		if drop {
			s.emitChaos(r, "conndrop after processing")
			panic(http.ErrAbortHandler)
		}
		rec.copyTo(w)
	})
}

func (s *Server) emitChaos(r *http.Request, detail string) {
	s.trace.Emit(telemetry.Event{
		Unit: "serve", Routine: r.PathValue("tenant"), Kind: telemetry.EvFaultInject,
		Detail: detail + ": " + r.Method + " " + r.URL.Path,
	})
}

// bufferedResponse captures a handler's response without forwarding
// it, so chaos faults can discard or delay a fully computed response.
type bufferedResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) { b.code = code }

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	for k, vs := range b.header { //ppp:allow(mapiter) — header write order is not semantic
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(b.code)
	_, _ = w.Write(b.body.Bytes())
}
