package serve

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pathprof/internal/core"
	"pathprof/internal/drift"
	"pathprof/internal/faultinject"
	"pathprof/internal/profile"
	"pathprof/internal/snapshot"
	"pathprof/internal/telemetry"
)

// Config tunes the service's robustness envelope. The zero value is
// usable; New fills defaults.
type Config struct {
	// Store is where acked aggregates become durable. Required.
	Store Store
	// QueueDepth bounds the ingest queue; a full queue answers 429.
	// Default 256.
	QueueDepth int
	// BatchMax caps how many queued snapshots one commit folds; a
	// deeper queue stretches the save cadence up to this, so one
	// fsync amortizes over more acks. Default 64.
	BatchMax int
	// MaxSnapshotBytes caps an ingest body; larger requests are
	// quarantined with 413. Default 8 MiB.
	MaxSnapshotBytes int64
	// RequestTimeout bounds how long an ingest waits for its commit
	// before answering 503 (the commit may still land; the client's
	// retry is deduplicated). Default 10s.
	RequestTimeout time.Duration
	// ShedThreshold is the queue fill ratio at which read and plan
	// traffic sheds with 503 so ingest keeps its headroom. Default
	// 0.75.
	ShedThreshold float64
	// RetryAfter is the hint attached to 429/503 responses. Default 1s.
	RetryAfter time.Duration
	// StallTime is how long an injected netstall delays a response.
	// Default 250ms.
	StallTime time.Duration
	// Registry receives ingest/merge/shed/quarantine metrics and
	// decision-trace events; nil keeps every sink on its no-op path.
	Registry *telemetry.Registry
	// Inject drives deterministic network/store chaos (conndrop,
	// netstall, partialwrite, storefail); nil injects nothing. Store
	// faults apply only when Store is not already a FaultStore.
	Inject *faultinject.Injector
	// Program resolves a tenant to mini-C source for the plan-serving
	// endpoint; nil or !ok disables plan serving for that tenant.
	Program func(tenant string) (string, bool)
	// AccessLog receives one structured line per HTTP request (tenant,
	// endpoint, status, duration, trace ID, retry attempt); nil
	// disables access logging.
	AccessLog io.Writer
	// Drift tunes the profile-drift monitor; the zero value uses the
	// package defaults.
	Drift drift.Options
}

func (c *Config) fill() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	if c.MaxSnapshotBytes <= 0 {
		c.MaxSnapshotBytes = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.ShedThreshold <= 0 || c.ShedThreshold > 1 {
		c.ShedThreshold = 0.75
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.StallTime <= 0 {
		c.StallTime = 250 * time.Millisecond
	}
}

// Ack is the server's acknowledgement of one ingested snapshot: its
// commit sequence within the tenant (the fold order, which the
// acked-implies-durable drill replays) and the aggregate fingerprint
// after the commit that included it.
type Ack struct {
	Tenant      string `json:"tenant"`
	Seq         uint64 `json:"seq"`
	Fingerprint string `json:"fingerprint"`
	Deduped     bool   `json:"deduped,omitempty"`
}

// LogEntry records one committed ingest in fold order.
type LogEntry struct {
	Seq uint64 `json:"seq"`
	Key string `json:"key"`
}

// TenantInfo is the JSON shape of a tenant's aggregate summary.
type TenantInfo struct {
	Tenant      string   `json:"tenant"`
	Fingerprint string   `json:"fingerprint"`
	Acked       uint64   `json:"acked"`
	Bytes       int      `json:"bytes"`
	Routines    int      `json:"routines"`
	Saturated   []string `json:"saturated,omitempty"`
}

// tenant is one program's aggregate and its commit bookkeeping. All
// mutable fields are guarded by Server.mu; only the committer
// goroutine writes them after creation.
type tenant struct {
	name     string
	agg      *profile.Snapshot
	aggBytes []byte
	fp       uint64
	nextSeq  uint64
	seqs     map[string]uint64
	log      []LogEntry

	stageOnce sync.Once
	staged    *core.Staged
	stageErr  error
}

// ingestItem is one queued snapshot awaiting commit. traceID and
// attempt ride along so the committer's spans stitch to the client's;
// admitAt/enqueueAt anchor the ack-e2e and queue-wait measurements.
type ingestItem struct {
	tenant, key string
	snap        *profile.Snapshot
	done        chan ackResult

	traceID   string
	attempt   int
	admitAt   time.Time
	enqueueAt time.Time
}

type ackResult struct {
	ack  Ack
	code int
	err  error
}

// Server is the profile service. Construct with New, start the
// committer with Start, and stop with Shutdown.
type Server struct {
	cfg   Config
	queue chan *ingestItem
	quit  chan struct{}
	done  chan struct{}

	draining atomic.Bool
	started  atomic.Bool
	quitOnce sync.Once

	mu      sync.Mutex
	tenants map[string]*tenant

	met   serveMetrics
	trace *telemetry.Trace
	spans *telemetry.SpanRing
	drift *drift.Monitor

	redMu sync.Mutex
	red   map[string]*redSeries
}

// redSeries is one endpoint's RED triple: request count, error count,
// duration distribution.
type redSeries struct {
	requests, errors *telemetry.Cell
	dur              *telemetry.HistCell
}

// serveMetrics holds the service's telemetry cells. Cells are
// single-writer by contract, and the server's writers are many HTTP
// handler goroutines plus the committer, so every bump serializes
// through one mutex — these are request-rate counters, nowhere near a
// hot loop.
type serveMetrics struct {
	mu sync.Mutex

	ingest, acked, deduped, quarantined *telemetry.Cell
	backpressure, shed, waitTimeout     *telemetry.Cell
	saves, saveErrs, batches, merged    *telemetry.Cell

	queueDepth, tenants *telemetry.Gauge
	batchSize           *telemetry.HistCell

	queueWait, commitMerge *telemetry.HistCell
	storeSave, ackE2E      *telemetry.HistCell
}

func (m *serveMetrics) bump(c *telemetry.Cell) {
	m.mu.Lock()
	c.Inc()
	m.mu.Unlock()
}

func (m *serveMetrics) observeBatch(n int) {
	m.mu.Lock()
	m.batchSize.Observe(int64(n))
	m.mu.Unlock()
}

// observeHist records one value into a stage or endpoint histogram
// under the metrics mutex (same single-writer discipline as bump).
func (m *serveMetrics) observeHist(h *telemetry.HistCell, v int64) {
	m.mu.Lock()
	h.Observe(v)
	m.mu.Unlock()
}

// usBounds is the shared microsecond bucket layout for the stage and
// endpoint latency histograms: 50µs to 5s.
var usBounds = []int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
}

// New builds a Server. cfg.Store is required; everything else
// defaults sanely. When cfg.Inject carries store-fault kinds and the
// store is not already fault-wrapped, New wraps it so partialwrite/
// storefail drills need no extra wiring.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if _, wrapped := cfg.Store.(*FaultStore); !wrapped &&
		(cfg.Inject.Active(faultinject.StoreFail) || cfg.Inject.Active(faultinject.PartialWrite)) {
		cfg.Store = NewFaultStore(cfg.Store, cfg.Inject)
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *ingestItem, cfg.QueueDepth),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		tenants: map[string]*tenant{},
		red:     map[string]*redSeries{},
	}
	reg := cfg.Registry
	c := func(name, help string) *telemetry.Cell { return reg.Counter(name, help).Cell(0) }
	s.met.ingest = c("ppp_serve_ingest_requests_total", "snapshots POSTed (accepted into the pipeline or rejected)")
	s.met.acked = c("ppp_serve_ingest_acked_total", "snapshots acknowledged after a durable commit")
	s.met.deduped = c("ppp_serve_ingest_deduped_total", "retried snapshots answered from the idempotency log")
	s.met.quarantined = c("ppp_serve_ingest_quarantined_total", "corrupt or oversized snapshots quarantined")
	s.met.backpressure = c("ppp_serve_backpressure_total", "ingests refused with 429 because the queue was full")
	s.met.shed = c("ppp_serve_shed_total", "read/plan requests shed with 503 under overload")
	s.met.waitTimeout = c("ppp_serve_ingest_wait_timeouts_total", "ingests that timed out waiting for their commit")
	s.met.saves = c("ppp_serve_store_saves_total", "durable store saves attempted")
	s.met.saveErrs = c("ppp_serve_store_save_errors_total", "durable store saves that failed (batch not acked)")
	s.met.batches = c("ppp_serve_commit_batches_total", "group commits executed")
	s.met.merged = c("ppp_serve_commit_snapshots_total", "snapshots folded into aggregates")
	s.met.queueDepth = reg.Gauge("ppp_serve_queue_depth", "ingest queue depth at last enqueue/dequeue")
	s.met.tenants = reg.Gauge("ppp_serve_tenants", "tenants with in-memory state")
	s.met.batchSize = reg.Histogram("ppp_serve_commit_batch_size", "snapshots per group commit",
		[]int64{1, 2, 4, 8, 16, 32, 64, 128}).Cell(0)
	h := func(name, help string) *telemetry.HistCell { return reg.Histogram(name, help, usBounds).Cell(0) }
	s.met.queueWait = h("ppp_serve_queue_wait_us", "time an ingest spent in the bounded queue before its committer dequeued it, microseconds")
	s.met.commitMerge = h("ppp_serve_commit_merge_us", "time the committer spent cloning, folding, and encoding one tenant batch, microseconds")
	s.met.storeSave = h("ppp_serve_store_save_us", "time one durable store save took, microseconds")
	s.met.ackE2E = h("ppp_serve_ack_e2e_us", "admission-to-ack latency of successfully committed ingests, microseconds")
	if reg != nil {
		s.trace = reg.Trace()
		s.spans = reg.Spans()
	}
	s.drift = drift.NewMonitor(reg, cfg.Drift)
	return s, nil
}

// Start launches the committer goroutine. Idempotent.
func (s *Server) Start() {
	if s.started.Swap(true) {
		return
	}
	go s.committer()
}

// Shutdown drains cleanly: new ingest is refused, queued snapshots
// are committed, and the committer exits. Returns ctx.Err() if the
// drain deadline expires first (queued-but-uncommitted snapshots were
// never acked, so nothing acknowledged is lost even then).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if !s.started.Load() {
		return nil
	}
	s.quitOnce.Do(func() { close(s.quit) })
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueLen returns the current ingest queue depth (bounded by
// construction at Config.QueueDepth).
func (s *Server) QueueLen() int { return len(s.queue) }

// overloaded reports whether read traffic should shed: the ingest
// queue has crossed the shed threshold, so merge capacity goes to
// ingest first (reads degrade before writes are refused).
func (s *Server) overloaded() bool {
	return float64(len(s.queue)) >= s.cfg.ShedThreshold*float64(cap(s.queue))
}

// Ingest validates nothing (the HTTP layer already decoded snap) and
// runs the queue/commit/ack protocol: enqueue with backpressure, wait
// for the committer's durable ack. The returned int is an HTTP status
// for the error cases (429 full, 503 draining/timeout/save-failure).
func (s *Server) Ingest(ctx context.Context, tenantName, key string, snap *profile.Snapshot) (Ack, int, error) {
	return s.ingest(ctx, tenantName, key, TraceIDForKey(key), 0, snap)
}

// ingest is Ingest plus the trace identity the HTTP layer extracted
// (or derived) from the request, so committer spans stitch to the
// client's attempts.
func (s *Server) ingest(ctx context.Context, tenantName, key, traceID string, attempt int, snap *profile.Snapshot) (Ack, int, error) {
	s.met.bump(s.met.ingest)
	if s.draining.Load() {
		return Ack{}, 503, fmt.Errorf("serve: draining")
	}
	item := &ingestItem{
		tenant: tenantName, key: key, snap: snap, done: make(chan ackResult, 1),
		traceID: traceID, attempt: attempt, admitAt: time.Now(),
	}
	item.enqueueAt = item.admitAt
	select {
	case s.queue <- item:
		s.met.queueDepth.Set(float64(len(s.queue)))
	default:
		s.met.bump(s.met.backpressure)
		s.trace.Emit(telemetry.Event{
			Unit: "serve", Routine: tenantName, Kind: telemetry.EvShed,
			Detail: "ingest queue full: 429 backpressure",
		})
		return Ack{}, 429, fmt.Errorf("serve: ingest queue full")
	}
	wait := time.NewTimer(s.cfg.RequestTimeout)
	defer wait.Stop()
	select {
	case r := <-item.done:
		return r.ack, r.code, r.err
	case <-ctx.Done():
		s.met.bump(s.met.waitTimeout)
		return Ack{}, 503, fmt.Errorf("serve: %w while awaiting commit (retry is safe: acks are idempotent)", ctx.Err())
	case <-wait.C:
		s.met.bump(s.met.waitTimeout)
		return Ack{}, 503, fmt.Errorf("serve: commit wait exceeded %v (retry is safe: acks are idempotent)", s.cfg.RequestTimeout)
	}
}

// committer is the single goroutine that owns all aggregate mutation:
// it drains the queue in arrival order, group-commits per tenant, and
// acknowledges only after the store accepted the new aggregate.
func (s *Server) committer() {
	defer close(s.done)
	for {
		var first *ingestItem
		select {
		case first = <-s.queue:
		case <-s.quit:
			s.drainRemaining()
			return
		}
		s.commitBatch(s.collect(first))
	}
}

// collect drains up to BatchMax-1 more queued items without blocking:
// group commit's cadence degradation. An idle service commits every
// snapshot individually; a saturated one folds whole batches per
// save.
func (s *Server) collect(first *ingestItem) []*ingestItem {
	batch := []*ingestItem{first}
	for len(batch) < s.cfg.BatchMax {
		select {
		case it := <-s.queue:
			batch = append(batch, it)
		default:
			s.met.queueDepth.Set(float64(len(s.queue)))
			return batch
		}
	}
	s.met.queueDepth.Set(float64(len(s.queue)))
	return batch
}

// drainRemaining commits whatever shutdown left in the queue.
func (s *Server) drainRemaining() {
	for {
		select {
		case it := <-s.queue:
			s.commitBatch(s.collect(it))
		default:
			return
		}
	}
}

// commitBatch groups a batch by tenant (preserving per-tenant arrival
// order — the fold order clients' acks commit to) and commits tenants
// in name order for deterministic processing.
func (s *Server) commitBatch(batch []*ingestItem) {
	s.met.bump(s.met.batches)
	s.met.observeBatch(len(batch))
	dequeued := time.Now()
	for _, it := range batch {
		waitUS := dequeued.Sub(it.enqueueAt).Microseconds()
		s.met.observeHist(s.met.queueWait, waitUS)
		s.spans.Emit(telemetry.Span{
			Trace: it.traceID, Tenant: it.tenant, Stage: telemetry.StageQueueWait,
			Attempt: it.attempt, DurUS: waitUS,
		})
	}
	byTenant := map[string][]*ingestItem{}
	var order []string
	for _, it := range batch {
		if _, ok := byTenant[it.tenant]; !ok {
			order = append(order, it.tenant)
		}
		byTenant[it.tenant] = append(byTenant[it.tenant], it)
	}
	sort.Strings(order)
	for _, tn := range order {
		s.commitTenant(tn, byTenant[tn])
	}
}

// commitTenant folds one tenant's batch into a scratch copy of the
// aggregate, saves it, and only then swaps it in and acks — the
// transactional heart of acked-implies-durable. A failed save leaves
// the previous aggregate (in memory and on disk) untouched and nacks
// the whole batch, so clients retry and nothing half-merged can ever
// be served or double-counted.
func (s *Server) commitTenant(name string, items []*ingestItem) {
	t := s.tenantFor(name)

	// Partition into fresh items (to fold) and duplicates (answered
	// from the idempotency log). A duplicate of a fresh key in this
	// same batch rides along and acks with the fresh item's seq.
	var fresh []*ingestItem
	dupOf := map[*ingestItem]uint64{}      // committed duplicates → seq
	pending := map[string]*ingestItem{}    // batch-local key → fresh item
	pendingDup := map[*ingestItem]string{} // batch-local duplicates → key
	s.mu.Lock()
	for _, it := range items {
		if seq, ok := t.seqs[it.key]; ok {
			dupOf[it] = seq
			continue
		}
		if _, ok := pending[it.key]; ok {
			pendingDup[it] = it.key
			continue
		}
		pending[it.key] = it
		fresh = append(fresh, it)
	}
	aggBytes := t.aggBytes
	s.mu.Unlock()

	if len(fresh) == 0 {
		// Nothing to fold: every item was a known duplicate.
		s.mu.Lock()
		fp := t.fp
		s.mu.Unlock()
		for _, it := range items {
			s.met.bump(s.met.deduped)
			s.finish(it, ackResult{ack: Ack{Tenant: name, Seq: dupOf[it], Fingerprint: fpString(fp), Deduped: true}, code: 200})
		}
		return
	}

	mergeStart := time.Now()
	next, err := cloneAggregate(aggBytes)
	if err != nil {
		s.nack(name, items, fmt.Errorf("serve: aggregate clone: %w", err))
		return
	}
	for _, it := range fresh {
		next.MergeSnapshot(it.snap)
	}
	data := snapshot.Encode(next)
	mergeUS := time.Since(mergeStart).Microseconds()
	s.met.observeHist(s.met.commitMerge, mergeUS)
	for _, it := range fresh {
		s.spans.Emit(telemetry.Span{
			Trace: it.traceID, Tenant: name, Stage: telemetry.StageCommitMerge,
			Attempt: it.attempt, DurUS: mergeUS,
		})
	}
	s.met.bump(s.met.saves)
	saveStart := time.Now()
	saveErr := s.cfg.Store.Save(name, data)
	saveUS := time.Since(saveStart).Microseconds()
	s.met.observeHist(s.met.storeSave, saveUS)
	saveStatus, saveDetail := 0, ""
	if saveErr != nil {
		saveStatus, saveDetail = 503, "store save failed"
	}
	for _, it := range fresh {
		s.spans.Emit(telemetry.Span{
			Trace: it.traceID, Tenant: name, Stage: telemetry.StageStoreSave,
			Attempt: it.attempt, Status: saveStatus, DurUS: saveUS, Detail: saveDetail,
		})
	}
	if saveErr != nil {
		s.met.bump(s.met.saveErrs)
		s.trace.Emit(telemetry.Event{
			Unit: "serve", Routine: name, Kind: telemetry.EvStoreFault,
			Flow:   int64(len(fresh)),
			Detail: "store save failed; batch not acked: " + saveErr.Error(),
		})
		s.nackFresh(name, items, dupOf, saveErr)
		return
	}

	fp := next.Fingerprint()
	s.mu.Lock()
	t.agg = next
	t.aggBytes = data
	t.fp = fp
	seqOf := map[string]uint64{}
	for _, it := range fresh {
		t.nextSeq++
		t.seqs[it.key] = t.nextSeq
		t.log = append(t.log, LogEntry{Seq: t.nextSeq, Key: it.key})
		seqOf[it.key] = t.nextSeq
	}
	liveSeq := t.nextSeq
	s.mu.Unlock()

	// Re-score drift against the guide now that the new aggregate is
	// live. Only the committer mutates aggregates, so reading
	// next.Edges here races with nothing.
	s.drift.ObserveCommit(name, next.Edges, liveSeq)

	for _, it := range items {
		switch {
		case dupOf[it] != 0:
			s.met.bump(s.met.deduped)
			s.finish(it, ackResult{ack: Ack{Tenant: name, Seq: dupOf[it], Fingerprint: fpString(fp), Deduped: true}, code: 200})
		case pendingDup[it] != "":
			s.met.bump(s.met.deduped)
			s.finish(it, ackResult{ack: Ack{Tenant: name, Seq: seqOf[pendingDup[it]], Fingerprint: fpString(fp), Deduped: true}, code: 200})
		default:
			s.met.bump(s.met.acked)
			s.met.bump(s.met.merged)
			s.finish(it, ackResult{ack: Ack{Tenant: name, Seq: seqOf[it.key], Fingerprint: fpString(fp)}, code: 200})
		}
	}
}

// finish delivers one item's outcome: the ack-e2e histogram observes
// successful commits, the ack span records the outcome either way, and
// the waiting handler unblocks.
func (s *Server) finish(it *ingestItem, res ackResult) {
	e2eUS := time.Since(it.admitAt).Microseconds()
	if res.code == 200 {
		s.met.observeHist(s.met.ackE2E, e2eUS)
	}
	detail := ""
	if res.ack.Deduped {
		detail = "deduped"
	}
	s.spans.Emit(telemetry.Span{
		Trace: it.traceID, Tenant: it.tenant, Stage: telemetry.StageAck,
		Attempt: it.attempt, Status: res.code, DurUS: e2eUS, Detail: detail,
	})
	it.done <- res
}

// nack rejects every item of a batch with 503.
func (s *Server) nack(name string, items []*ingestItem, err error) {
	for _, it := range items {
		s.finish(it, ackResult{code: 503, err: err})
	}
}

// nackFresh rejects the items whose data did not become durable;
// already-committed duplicates still ack (their data is durable).
func (s *Server) nackFresh(name string, items []*ingestItem, dupOf map[*ingestItem]uint64, err error) {
	s.mu.Lock()
	fp := s.tenants[name].fp
	s.mu.Unlock()
	for _, it := range items {
		if seq, ok := dupOf[it]; ok {
			s.met.bump(s.met.deduped)
			s.finish(it, ackResult{ack: Ack{Tenant: name, Seq: seq, Fingerprint: fpString(fp), Deduped: true}, code: 200})
			continue
		}
		s.finish(it, ackResult{code: 503, err: fmt.Errorf("serve: durable save failed, not acked: %w", err)})
	}
}

// tenantFor returns (creating if needed) the tenant, seeding its
// aggregate from the durable store on first touch — the crash
// recovery path: whatever the store's last acknowledged aggregate
// was, the service resumes from it.
func (s *Server) tenantFor(name string) *tenant {
	s.mu.Lock()
	t := s.tenants[name]
	s.mu.Unlock()
	if t != nil {
		return t
	}
	t = &tenant{name: name, seqs: map[string]uint64{}}
	if data, err := s.cfg.Store.Load(name); err == nil {
		if snap, derr := snapshot.Decode(data); derr == nil {
			t.agg = snap
			t.aggBytes = data
			t.fp = snap.Fingerprint()
		}
	}
	s.mu.Lock()
	if cur := s.tenants[name]; cur != nil {
		t = cur
	} else {
		s.tenants[name] = t
		s.met.tenants.Set(float64(len(s.tenants)))
	}
	s.mu.Unlock()
	return t
}

// cloneAggregate deep-copies an aggregate via the codec (decode ∘
// encode is identity, so the clone folds and fingerprints exactly
// like the original). nil bytes clone to an empty snapshot.
func cloneAggregate(data []byte) (*profile.Snapshot, error) {
	if data == nil {
		return profile.NewSnapshot(), nil
	}
	return snapshot.Decode(data)
}

func fpString(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// lookup resolves a tenant for the read paths: in-memory state when
// it exists, else a lazy load from the durable store — so a restarted
// server serves every recovered aggregate without waiting for a fresh
// ingest. Unknown tenants stay nil (reads must not fabricate state).
// Commit logs and idempotency keys are per-process: a restart starts
// both fresh while the durable aggregate carries every acked commit.
func (s *Server) lookup(name string) *tenant {
	s.mu.Lock()
	t := s.tenants[name]
	s.mu.Unlock()
	if t != nil {
		return t
	}
	if !ValidTenant(name) {
		return nil
	}
	if _, err := s.cfg.Store.Load(name); err != nil {
		return nil
	}
	return s.tenantFor(name)
}

// AggregateBytes returns the current durable aggregate encoding for a
// tenant (nil when the tenant is unknown or empty), plus its
// fingerprint string.
func (s *Server) AggregateBytes(name string) ([]byte, string) {
	t := s.lookup(name)
	if t == nil {
		return nil, ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.aggBytes == nil {
		return nil, ""
	}
	return t.aggBytes, fpString(t.fp)
}

// Aggregate returns the decoded aggregate (nil when absent). The
// returned snapshot is the live one; callers must not mutate it.
func (s *Server) Aggregate(name string) *profile.Snapshot {
	t := s.lookup(name)
	if t == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return t.agg
}

// CommitLog returns a copy of the tenant's fold order.
func (s *Server) CommitLog(name string) []LogEntry {
	t := s.lookup(name)
	if t == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]LogEntry(nil), t.log...)
}

// Info summarizes a tenant's aggregate, or ok=false when unknown.
func (s *Server) Info(name string) (TenantInfo, bool) {
	t := s.lookup(name)
	if t == nil {
		return TenantInfo{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	info := TenantInfo{
		Tenant:      name,
		Fingerprint: fpString(t.fp),
		Acked:       t.nextSeq,
		Bytes:       len(t.aggBytes),
	}
	if t.agg != nil {
		info.Routines = len(t.agg.Edges)
		info.Saturated = t.agg.SaturatedRoutines()
	}
	return info, true
}

// Drift returns the server's profile-drift monitor.
func (s *Server) Drift() *drift.Monitor { return s.drift }

// ackedSeq returns the tenant's current commit sequence (0 when
// unknown).
func (s *Server) ackedSeq(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.tenants[name]; t != nil {
		return t.nextSeq
	}
	return 0
}

// TenantNames lists tenants with in-memory state plus tenants the
// durable store knows, sorted and deduplicated.
func (s *Server) TenantNames() []string {
	set := map[string]bool{}
	if names, err := s.cfg.Store.Tenants(); err == nil {
		for _, n := range names {
			set[n] = true
		}
	}
	s.mu.Lock()
	for n := range s.tenants { //ppp:allow(mapiter) — sorted below
		set[n] = true
	}
	s.mu.Unlock()
	out := make([]string, 0, len(set))
	for n := range set { //ppp:allow(mapiter) — sorted below
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
