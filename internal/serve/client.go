package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pathprof/internal/telemetry"
)

// Backoff computes deterministic jittered exponential retry delays.
// Delay is a pure function of (seed, key, attempt): a fixed seed and
// key sequence yields a fixed schedule, so retry behavior in drills
// and tests is exactly reproducible, while distinct keys still spread
// their retries apart (no thundering herd after a shared 429).
type Backoff struct {
	// Base is the attempt-0 ceiling; each attempt doubles it up to
	// Max. Defaults: 50ms base, 5s max.
	Base, Max time.Duration
	// Seed feeds the jitter hash.
	Seed uint64
}

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 50 * time.Millisecond
}

func (b Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return 5 * time.Second
}

// Delay returns the wait before retry number attempt (attempt 0 is
// the delay after the first failure) for the given idempotency key:
// exponential growth with deterministic jitter in [ceiling/2,
// ceiling].
func (b Backoff) Delay(key string, attempt int) time.Duration {
	ceiling := b.base()
	for i := 0; i < attempt && ceiling < b.max(); i++ {
		ceiling *= 2
	}
	if ceiling > b.max() {
		ceiling = b.max()
	}
	half := ceiling / 2
	if half <= 0 {
		return ceiling
	}
	r := hash64(fmt.Sprintf("%d\x00%s\x00%d", b.Seed, key, attempt))
	return half + time.Duration(r%uint64(half))
}

// Client publishes snapshots to a profile server with bounded,
// deadline-propagating retries. The zero value needs only BaseURL.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:9523".
	BaseURL string
	// HTTP is the transport; http.DefaultClient when nil.
	HTTP *http.Client
	// MaxAttempts bounds tries per publish (default 8).
	MaxAttempts int
	// AttemptTimeout bounds each individual attempt (default 5s),
	// within the caller's overall ctx deadline.
	AttemptTimeout time.Duration
	// Backoff paces the retries.
	Backoff Backoff
	// Sleep is swappable for fake-clock tests; time.Sleep when nil.
	// It must return early if ctx ends.
	Sleep func(ctx context.Context, d time.Duration) error
	// Spans receives one client-send span per publish attempt; nil
	// emits nothing.
	Spans *telemetry.SpanRing
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

func (c *Client) attemptTimeout() time.Duration {
	if c.AttemptTimeout > 0 {
		return c.AttemptTimeout
	}
	return 5 * time.Second
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// AttemptTiming is one publish attempt as the client observed it:
// how long it waited in backoff before sending, the round-trip time,
// and the outcome (HTTP status, or 0 with Err set for transport
// failures). Comparing RTT against the server's ack-e2e histogram
// exposes client-vs-server latency skew — queueing, transport, and
// chaos delays the server never sees.
type AttemptTiming struct {
	Attempt int           `json:"attempt"`
	Wait    time.Duration `json:"wait_ns"`
	RTT     time.Duration `json:"rtt_ns"`
	Status  int           `json:"status"`
	Err     string        `json:"err,omitempty"`
}

// PublishResult is the client-side view of a successful publish.
type PublishResult struct {
	Ack      Ack
	Attempts int
	// TraceID is the trace the attempts were published under (echoed
	// by the server on the ack).
	TraceID string
	// Timings records every attempt, successful last.
	Timings []AttemptTiming
}

// PublishError is a failed publish with its full attempt history, so
// callers can report where the time went even on failure.
type PublishError struct {
	Tenant, Key, TraceID string
	Attempts             int
	Timings              []AttemptTiming
	Err                  error
}

func (e *PublishError) Error() string { return e.Err.Error() }

func (e *PublishError) Unwrap() error { return e.Err }

// errPermanent marks a response retrying cannot fix.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }

func (e errPermanent) Unwrap() error { return e.err }

// Publish POSTs snapshot bytes to tenant, retrying transient failures
// (429/503, dropped connections, per-attempt timeouts) with jittered
// exponential backoff until the server acks, the ctx deadline passes,
// or attempts run out. key is the idempotency key: every retry
// carries the same key, so a snapshot whose ack was lost to a dropped
// connection is never double-counted.
func (c *Client) Publish(ctx context.Context, tenant, key string, data []byte) (PublishResult, error) {
	if key == "" {
		key = fmt.Sprintf("sha:%016x", hash64(string(data)))
	}
	// Same derivation the server uses when the header is missing, so
	// both sides agree on the trace even across lost responses.
	traceID := TraceIDForKey(key)
	url := c.BaseURL + "/v1/profiles/" + tenant
	var lastErr error
	var timings []AttemptTiming
	fail := func(err error) (PublishResult, error) {
		return PublishResult{}, &PublishError{
			Tenant: tenant, Key: key, TraceID: traceID,
			Attempts: len(timings), Timings: timings, Err: err,
		}
	}
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		var wait time.Duration
		if attempt > 0 {
			wait = c.Backoff.Delay(key, attempt-1)
			if err := c.sleep(ctx, wait); err != nil {
				return fail(fmt.Errorf("serve: publish %s: %w (last attempt: %v)", tenant, err, lastErr))
			}
		}
		sent := time.Now()
		ack, status, err := c.attempt(ctx, url, tenant, key, traceID, data, attempt)
		tm := AttemptTiming{Attempt: attempt, Wait: wait, RTT: time.Since(sent), Status: status}
		if err != nil {
			tm.Err = err.Error()
		}
		timings = append(timings, tm)
		c.Spans.Emit(telemetry.Span{
			Trace: traceID, Tenant: tenant, Stage: telemetry.StageClientSend,
			Attempt: attempt, Status: status, DurUS: tm.RTT.Microseconds(),
		})
		if err == nil {
			return PublishResult{Ack: ack, Attempts: attempt + 1, TraceID: traceID, Timings: timings}, nil
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return fail(fmt.Errorf("serve: publish %s: %w", tenant, perm.err))
		}
		lastErr = err
		if ctx.Err() != nil {
			return fail(fmt.Errorf("serve: publish %s: %w (last attempt: %v)", tenant, ctx.Err(), lastErr))
		}
	}
	return fail(fmt.Errorf("serve: publish %s: %d attempts exhausted: %w", tenant, c.maxAttempts(), lastErr))
}

// attempt is one try: deadline-bounded, carrying the idempotency key,
// the trace ID, and the attempt ordinal (which chaos middleware folds
// into its fault site, so injected drops do not repeat forever). The
// returned status is the HTTP code, or 0 for transport failures.
func (c *Client) attempt(ctx context.Context, url, tenant, key, traceID string, data []byte, attempt int) (Ack, int, error) {
	actx, cancel := context.WithTimeout(ctx, c.attemptTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return Ack{}, 0, errPermanent{err}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-PPP-Key", key)
	req.Header.Set("X-PPP-Attempt", strconv.Itoa(attempt))
	req.Header.Set("X-PPP-Trace", traceID)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Transport errors (dropped connection, attempt timeout) are
		// retryable: the commit may or may not have landed, and the
		// idempotency key makes the retry safe either way.
		return Ack{}, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Ack{}, resp.StatusCode, err
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		var ack Ack
		if err := json.Unmarshal(body, &ack); err != nil {
			return Ack{}, resp.StatusCode, fmt.Errorf("bad ack body: %w", err)
		}
		return ack, resp.StatusCode, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		return Ack{}, resp.StatusCode, fmt.Errorf("server %d: %s", resp.StatusCode, firstLine(body))
	default:
		// 400/404/413: the server quarantined or refused the request
		// itself; a retry would send the same bytes to the same fate.
		return Ack{}, resp.StatusCode, errPermanent{fmt.Errorf("server %d: %s", resp.StatusCode, firstLine(body))}
	}
}

// Fetch GETs the tenant's merged aggregate bytes (and fingerprint).
func (c *Client) Fetch(ctx context.Context, tenant string) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/profiles/"+tenant, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("serve: fetch %s: server %d: %s", tenant, resp.StatusCode, firstLine(body))
	}
	return body, resp.Header.Get("X-PPP-Fingerprint"), nil
}

// FetchLog GETs the tenant's commit log.
func (c *Client) FetchLog(ctx context.Context, tenant string) ([]LogEntry, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/profiles/"+tenant+"/log", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: fetch log %s: server %d: %s", tenant, resp.StatusCode, firstLine(body))
	}
	var log []LogEntry
	if err := json.Unmarshal(body, &log); err != nil {
		return nil, err
	}
	return log, nil
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	return string(b)
}
