package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Backoff computes deterministic jittered exponential retry delays.
// Delay is a pure function of (seed, key, attempt): a fixed seed and
// key sequence yields a fixed schedule, so retry behavior in drills
// and tests is exactly reproducible, while distinct keys still spread
// their retries apart (no thundering herd after a shared 429).
type Backoff struct {
	// Base is the attempt-0 ceiling; each attempt doubles it up to
	// Max. Defaults: 50ms base, 5s max.
	Base, Max time.Duration
	// Seed feeds the jitter hash.
	Seed uint64
}

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 50 * time.Millisecond
}

func (b Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return 5 * time.Second
}

// Delay returns the wait before retry number attempt (attempt 0 is
// the delay after the first failure) for the given idempotency key:
// exponential growth with deterministic jitter in [ceiling/2,
// ceiling].
func (b Backoff) Delay(key string, attempt int) time.Duration {
	ceiling := b.base()
	for i := 0; i < attempt && ceiling < b.max(); i++ {
		ceiling *= 2
	}
	if ceiling > b.max() {
		ceiling = b.max()
	}
	half := ceiling / 2
	if half <= 0 {
		return ceiling
	}
	r := hash64(fmt.Sprintf("%d\x00%s\x00%d", b.Seed, key, attempt))
	return half + time.Duration(r%uint64(half))
}

// Client publishes snapshots to a profile server with bounded,
// deadline-propagating retries. The zero value needs only BaseURL.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:9523".
	BaseURL string
	// HTTP is the transport; http.DefaultClient when nil.
	HTTP *http.Client
	// MaxAttempts bounds tries per publish (default 8).
	MaxAttempts int
	// AttemptTimeout bounds each individual attempt (default 5s),
	// within the caller's overall ctx deadline.
	AttemptTimeout time.Duration
	// Backoff paces the retries.
	Backoff Backoff
	// Sleep is swappable for fake-clock tests; time.Sleep when nil.
	// It must return early if ctx ends.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

func (c *Client) attemptTimeout() time.Duration {
	if c.AttemptTimeout > 0 {
		return c.AttemptTimeout
	}
	return 5 * time.Second
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PublishResult is the client-side view of a successful publish.
type PublishResult struct {
	Ack      Ack
	Attempts int
}

// errPermanent marks a response retrying cannot fix.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }

func (e errPermanent) Unwrap() error { return e.err }

// Publish POSTs snapshot bytes to tenant, retrying transient failures
// (429/503, dropped connections, per-attempt timeouts) with jittered
// exponential backoff until the server acks, the ctx deadline passes,
// or attempts run out. key is the idempotency key: every retry
// carries the same key, so a snapshot whose ack was lost to a dropped
// connection is never double-counted.
func (c *Client) Publish(ctx context.Context, tenant, key string, data []byte) (PublishResult, error) {
	if key == "" {
		key = fmt.Sprintf("sha:%016x", hash64(string(data)))
	}
	url := c.BaseURL + "/v1/profiles/" + tenant
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.Backoff.Delay(key, attempt-1)); err != nil {
				return PublishResult{}, fmt.Errorf("serve: publish %s: %w (last attempt: %v)", tenant, err, lastErr)
			}
		}
		ack, err := c.attempt(ctx, url, tenant, key, data, attempt)
		if err == nil {
			return PublishResult{Ack: ack, Attempts: attempt + 1}, nil
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return PublishResult{}, fmt.Errorf("serve: publish %s: %w", tenant, perm.err)
		}
		lastErr = err
		if ctx.Err() != nil {
			return PublishResult{}, fmt.Errorf("serve: publish %s: %w (last attempt: %v)", tenant, ctx.Err(), lastErr)
		}
	}
	return PublishResult{}, fmt.Errorf("serve: publish %s: %d attempts exhausted: %w", tenant, c.maxAttempts(), lastErr)
}

// attempt is one try: deadline-bounded, carrying the idempotency key
// and the attempt ordinal (which chaos middleware folds into its
// fault site, so injected drops do not repeat forever).
func (c *Client) attempt(ctx context.Context, url, tenant, key string, data []byte, attempt int) (Ack, error) {
	actx, cancel := context.WithTimeout(ctx, c.attemptTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return Ack{}, errPermanent{err}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-PPP-Key", key)
	req.Header.Set("X-PPP-Attempt", strconv.Itoa(attempt))
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Transport errors (dropped connection, attempt timeout) are
		// retryable: the commit may or may not have landed, and the
		// idempotency key makes the retry safe either way.
		return Ack{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Ack{}, err
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		var ack Ack
		if err := json.Unmarshal(body, &ack); err != nil {
			return Ack{}, fmt.Errorf("bad ack body: %w", err)
		}
		return ack, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		return Ack{}, fmt.Errorf("server %d: %s", resp.StatusCode, firstLine(body))
	default:
		// 400/404/413: the server quarantined or refused the request
		// itself; a retry would send the same bytes to the same fate.
		return Ack{}, errPermanent{fmt.Errorf("server %d: %s", resp.StatusCode, firstLine(body))}
	}
}

// Fetch GETs the tenant's merged aggregate bytes (and fingerprint).
func (c *Client) Fetch(ctx context.Context, tenant string) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/profiles/"+tenant, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("serve: fetch %s: server %d: %s", tenant, resp.StatusCode, firstLine(body))
	}
	return body, resp.Header.Get("X-PPP-Fingerprint"), nil
}

// FetchLog GETs the tenant's commit log.
func (c *Client) FetchLog(ctx context.Context, tenant string) ([]LogEntry, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/profiles/"+tenant+"/log", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: fetch log %s: server %d: %s", tenant, resp.StatusCode, firstLine(body))
	}
	var log []LogEntry
	if err := json.Unmarshal(body, &log); err != nil {
		return nil, err
	}
	return log, nil
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	return string(b)
}
